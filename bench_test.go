// Benchmark harness regenerating every table and figure of the thesis's
// evaluation (see DESIGN.md §4 for the experiment index):
//
//	BenchmarkTableI    — Table I rows (clustered sink groups)
//	BenchmarkTableII   — Table II rows (intermingled sink groups)
//	BenchmarkEXTBST    — the EXT-BST baseline rows of both tables
//	BenchmarkFig1      — zero-skew vs bounded-skew trade-off (Fig. 1)
//	BenchmarkFig2      — stitch vs simultaneous merging (Fig. 2)
//	BenchmarkAblation  — design-choice ablations (order, deferral, offsets)
//	BenchmarkSpiceLite — transient validation of the delay model (Ch. III)
//	BenchmarkSubstrate — micro-benchmarks of the geometry/delay kernels
//
// Wirelength, reduction versus EXT-BST, and measured skews are attached as
// benchmark metrics, so `go test -bench=. -benchmem` reproduces the numbers
// reported in EXPERIMENTS.md (absolute CPU differs from the thesis's 2006
// hardware; shapes are the comparison target).
package repro

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/ctree"
	"repro/internal/eval"
	"repro/internal/experiments"
	"repro/internal/geom"
	"repro/internal/obs"
	"repro/internal/rctree"
	"repro/internal/shard"
	"repro/internal/spicelite"
)

// benchCircuits returns the circuits exercised by table benchmarks: the full
// r1–r5 suite, or r1–r2 under -short.
func benchCircuits(b *testing.B) []bench.Spec {
	if testing.Short() {
		return bench.Suite()[:2]
	}
	return bench.Suite()
}

// extBaseline routes the EXT-BST row for a circuit (memoized per circuit).
var extCache = map[string]*core.Result{}

func extBaseline(b *testing.B, sp bench.Spec) *core.Result {
	if res, ok := extCache[sp.Name]; ok {
		return res
	}
	res, err := core.EXTBST(bench.Generate(sp), experiments.EXTBoundPs, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	extCache[sp.Name] = res
	return res
}

func benchTable(b *testing.B, grouping experiments.Grouping) {
	for _, sp := range benchCircuits(b) {
		base := bench.Generate(sp)
		ext := extBaseline(b, sp)
		for _, k := range experiments.GroupCounts {
			b.Run(fmt.Sprintf("%s/k=%d", sp.Name, k), func(b *testing.B) {
				var in *ctree.Instance
				if grouping == experiments.Clustered {
					in = bench.Clustered(base, k)
				} else {
					in = bench.Intermingled(base, k, sp.Seed*1000+int64(k))
				}
				var res *core.Result
				var err error
				for i := 0; i < b.N; i++ {
					res, err = core.Build(in, core.Options{IntraSkewBound: experiments.ASTIntraBoundPs})
					if err != nil {
						b.Fatal(err)
					}
				}
				rep := eval.Analyze(res.Root, in, core.DefaultModel(), in.Source)
				b.ReportMetric(res.Wirelength, "wirelen")
				b.ReportMetric(100*(ext.Wirelength-res.Wirelength)/ext.Wirelength, "reduction%")
				b.ReportMetric(rep.GlobalSkew, "maxskew_ps")
				b.ReportMetric(rep.MaxGroupSkew, "groupskew_ps")
			})
		}
	}
}

// BenchmarkTableI regenerates the AST-DME rows of thesis Table I.
func BenchmarkTableI(b *testing.B) { benchTable(b, experiments.Clustered) }

// BenchmarkTableII regenerates the AST-DME rows of thesis Table II.
func BenchmarkTableII(b *testing.B) { benchTable(b, experiments.Intermingled) }

// BenchmarkEXTBST regenerates the EXT-BST baseline rows of both tables.
func BenchmarkEXTBST(b *testing.B) {
	for _, sp := range benchCircuits(b) {
		b.Run(sp.Name, func(b *testing.B) {
			in := bench.Generate(sp)
			var res *core.Result
			var err error
			for i := 0; i < b.N; i++ {
				res, err = core.EXTBST(in, experiments.EXTBoundPs, core.Options{})
				if err != nil {
					b.Fatal(err)
				}
			}
			rep := eval.Analyze(res.Root, in, core.DefaultModel(), in.Source)
			b.ReportMetric(res.Wirelength, "wirelen")
			b.ReportMetric(rep.GlobalSkew, "maxskew_ps")
		})
	}
}

// BenchmarkFig1 regenerates the zero-skew versus bounded-skew comparison of
// thesis Fig. 1 (pathlength model).
func BenchmarkFig1(b *testing.B) {
	var res *experiments.Fig1Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.Fig1(1)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.ZSTWire, "zst_wire")
	b.ReportMetric(res.BSTWire, "bst_wire")
	b.ReportMetric(res.BSTSkew, "bst_skew")
}

// BenchmarkFig2 regenerates the stitch-versus-AST comparison of thesis
// Fig. 2 on an intermingled instance.
func BenchmarkFig2(b *testing.B) {
	var res *experiments.Fig2Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.Fig2(200, 4, 9)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.StitchWire, "stitch_wire")
	b.ReportMetric(res.ASTWire, "ast_wire")
	b.ReportMetric(res.SavingPct, "saving%")
}

// BenchmarkAblation measures the design-choice ablations of DESIGN.md §4 on
// one intermingled circuit.
func BenchmarkAblation(b *testing.B) {
	in := bench.Intermingled(bench.Small(300, 3), 6, 77)
	for _, ab := range experiments.Ablations() {
		b.Run(ab.Name, func(b *testing.B) {
			var wire, skew, gskew float64
			var err error
			for i := 0; i < b.N; i++ {
				wire, skew, gskew, err = experiments.RunAblation(in, ab)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(wire, "wirelen")
			b.ReportMetric(skew, "maxskew_ps")
			b.ReportMetric(gskew, "groupskew_ps")
		})
	}
}

// BenchmarkSpiceLite measures the transient RC validation used for the
// Ch. III delay-model argument.
func BenchmarkSpiceLite(b *testing.B) {
	in := bench.Small(60, 5)
	res, err := core.ZST(in, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	var sim *spicelite.Result
	for i := 0; i < b.N; i++ {
		sim, err = spicelite.Simulate(res.Root, in, spicelite.Params{
			ROhmPerUnit: 0.1, CFFPerUnit: 0.02,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	rep := eval.Analyze(res.Root, in, core.DefaultModel(), in.Source)
	b.ReportMetric(sim.Skew(), "transient_skew_ps")
	b.ReportMetric(rep.GlobalSkew, "elmore_skew_ps")
}

// BenchmarkOrderScaling measures end-to-end zero-skew routing with the
// all-pairs oracle pairer versus the spatial grid pairer (internal/spatial)
// at increasing sink counts, on both uniform and power-law-clustered
// placements, plus the sharded pipeline (internal/shard) over the grid at
// 4 shards — single-group, and grouped (intermingled 4 groups) with the
// pilot offset pass, the sharded-quality configuration whose seam skew the
// scale sweeps track. wirelen must agree between scan and grid at equal n
// (the differential tests pin exact equality); the sharded variants trade a
// small wirelength increase for partition concurrency (the differential
// tests pin skew, seam and envelope). pair_scans records the pairing work
// the grid makes sub-quadratic. Under -short only the smallest size runs
// (the CI smoke); the full run includes the 10k-sink instance backing the
// ≥10× speedup target.
func BenchmarkOrderScaling(b *testing.B) {
	sizes := []int{1000, 10000}
	if testing.Short() {
		sizes = []int{1000}
	}
	for _, dist := range []string{"uniform", "powerlaw"} {
		for _, n := range sizes {
			var in *ctree.Instance
			if dist == "uniform" {
				in = bench.Small(n, 9)
			} else {
				in = bench.PowerLaw(n, bench.PowerLawClusters, bench.PowerLawAlpha, 9)
			}
			grouped := bench.Intermingled(in, 4, 9000+int64(n))
			for _, pc := range []struct {
				name   string
				mode   core.PairerMode
				shards int
				groups bool
			}{
				{"scan", core.PairerScan, 0, false},
				{"grid", core.PairerGrid, 0, false},
				{"grid-sh4", core.PairerGrid, 4, false},
				{"grid-sh4-g4p", core.PairerGrid, 4, true},
			} {
				b.Run(fmt.Sprintf("%s/n=%d/pairer=%s", dist, n, pc.name), func(b *testing.B) {
					b.ReportAllocs()
					bin, opt := in, core.Options{SingleGroup: true, Pairer: pc.mode, Shards: pc.shards}
					if pc.groups {
						bin = grouped
						opt = core.Options{Pairer: pc.mode, Shards: pc.shards, Pilot: true}
					}
					var res *shard.Result
					var err error
					for i := 0; i < b.N; i++ {
						res, err = shard.Build(bin, opt)
						if err != nil {
							b.Fatal(err)
						}
					}
					b.StopTimer()
					b.ReportMetric(res.Wirelength, "wirelen")
					b.ReportMetric(float64(res.Stats.PairScans), "pair_scans")
					if pc.groups {
						rep := eval.Analyze(res.Root, bin, core.DefaultModel(), bin.Source)
						_, seam := eval.SeamSkew(rep, bin, res.Parts)
						b.ReportMetric(seam, "seam_skew_ps")
						b.ReportMetric(float64(res.PilotSinks), "pilot_sinks")
					}
				})
			}
		}
	}
}

// TestRouteAllocBudget bounds the allocations of a full 10k-sink zero-skew
// grid route, so allocation regressions on the large-instance hot path fail
// CI instead of surfacing as silent slowdowns. The flat sorted-slice delay
// representation plus the slab-backed grid buckets route 10k sinks in ~300
// allocations (arena, slab chunks, queue and grid bootstrap); the budgets
// leave headroom while staying far below the ~27k the map-based delay
// bookkeeping needed. AllocsPerRun pins GOMAXPROCS to 1, so the count
// excludes goroutine fan-out and is stable across CI machines.
//
// Three variants per distribution:
//   - untraced (Options.Trace == nil): pins the zero-cost-when-disabled
//     contract of internal/obs — the nil-trace no-op path must not add a
//     single allocation over the pre-obs baseline.
//   - traced: the same route with a preconstructed Trace attached. All span
//     storage lives in the arena allocated by NewWithCap (outside the
//     measured closure), so enabling tracing may add only the handful of
//     bookkeeping allocations the builder makes for wave/probe scratch.
//   - cancellation-armed: the same route under a live cancellable context
//     (Options.Ctx set). The per-round done-channel poll must be
//     allocation-free, so arming -timeout-style cancellation shares the
//     untraced budget exactly.
func TestRouteAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	const (
		budgetUntraced = 400 // observed ~300; tracing disabled must stay here
		budgetTraced   = 600 // arena preallocated: small fixed overhead only
	)
	for _, dist := range []string{"uniform", "powerlaw"} {
		var in *ctree.Instance
		if dist == "uniform" {
			in = bench.Small(10000, 9)
		} else {
			in = bench.PowerLaw(10000, bench.PowerLawClusters, bench.PowerLawAlpha, 9)
		}
		allocs := testing.AllocsPerRun(1, func() {
			if _, err := core.ZST(in, core.Options{Pairer: core.PairerGrid}); err != nil {
				t.Fatal(err)
			}
		})
		t.Logf("%s 10k route: %.0f allocs untraced", dist, allocs)
		if allocs > budgetUntraced {
			t.Errorf("%s 10k route allocations = %.0f, budget %d", dist, allocs, budgetUntraced)
		}

		// Traces are single-use (Close freezes them), so construct a fresh
		// arena per run; AllocsPerRun measures only the closure body, and the
		// arena is charged here deliberately — the budget proves it is the
		// dominant cost of enabling tracing.
		tracedAllocs := testing.AllocsPerRun(1, func() {
			tr := obs.NewWithCap("alloc-budget", 64)
			if _, err := core.ZST(in, core.Options{Pairer: core.PairerGrid, Trace: tr}); err != nil {
				t.Fatal(err)
			}
			tr.Close()
		})
		t.Logf("%s 10k route: %.0f allocs traced", dist, tracedAllocs)
		if tracedAllocs > budgetTraced {
			t.Errorf("%s 10k traced route allocations = %.0f, budget %d", dist, tracedAllocs, budgetTraced)
		}

		ctx, cancelRoute := context.WithCancel(context.Background())
		ctxAllocs := testing.AllocsPerRun(1, func() {
			if _, err := core.ZST(in, core.Options{Pairer: core.PairerGrid, Ctx: ctx}); err != nil {
				t.Fatal(err)
			}
		})
		cancelRoute()
		t.Logf("%s 10k route: %.0f allocs cancellation-armed", dist, ctxAllocs)
		if ctxAllocs > budgetUntraced {
			t.Errorf("%s 10k cancellation-armed route allocations = %.0f, budget %d", dist, ctxAllocs, budgetUntraced)
		}
	}
}

// BenchmarkSubstrate micro-benchmarks the geometry and delay kernels every
// merge exercises.
func BenchmarkSubstrate(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	rects := make([]geom.Rect, 256)
	octs := make([]geom.Octagon, 256)
	for i := range rects {
		p := geom.Point{X: r.Float64() * 1e5, Y: r.Float64() * 1e5}
		q := geom.Point{X: p.X + r.Float64()*1e3, Y: p.Y + r.Float64()*1e3}
		rects[i] = geom.Union(geom.RectFromPoint(p), geom.RectFromPoint(q))
		octs[i] = geom.SDR(geom.RectFromPoint(p), geom.RectFromPoint(q),
			geom.Dist(p, q), 0, geom.Dist(p, q))
	}
	b.Run("DistOO", func(b *testing.B) {
		var sink float64
		for i := 0; i < b.N; i++ {
			sink += geom.DistOO(octs[i%256], octs[(i+7)%256])
		}
		_ = sink
	})
	b.Run("SDR", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			a, c := rects[i%256], rects[(i+9)%256]
			d := geom.DistRR(a, c)
			_ = geom.SDR(a, c, d, 0, d)
		}
	})
	b.Run("ClosestPoints", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_, _ = geom.ClosestPoints(octs[i%256], octs[(i+3)%256])
		}
	})
	m := rctree.NewElmore(0.1, 0.02)
	b.Run("Balance", func(b *testing.B) {
		var sink float64
		for i := 0; i < b.N; i++ {
			mg := rctree.Balance(m, 1000+float64(i%100), 50, 200, 60, 300)
			sink += mg.Ea
		}
		_ = sink
	})
}
