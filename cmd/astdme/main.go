// Command astdme routes a clock routing instance with one of the
// implemented algorithms and reports wirelength and measured skews.
//
// Usage:
//
//	astdme -algo ast     -in inst.json            # AST-DME (the paper)
//	astdme -algo extbst  -bound 10 -in inst.json  # EXT-BST baseline
//	astdme -algo zst     -in inst.json            # greedy-DME zero skew
//	astdme -algo stitch  -in inst.json            # per-group trees + stitch
//	astdme -algo ast -svg out.svg -in inst.json   # also render the tree
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/ctree"
	"repro/internal/eval"
	"repro/internal/instio"
	"repro/internal/profutil"
	"repro/internal/stitch"
	"repro/internal/svgplot"
)

func main() {
	var (
		inPath     = flag.String("in", "", "instance JSON file (required)")
		algo       = flag.String("algo", "ast", "algorithm: ast | extbst | zst | stitch")
		bound      = flag.Float64("bound", 10, "skew bound in ps (extbst: global; ast: intra-group)")
		svgPath    = flag.String("svg", "", "write an SVG rendering of the embedded tree")
		regions    = flag.Bool("regions", false, "draw merging regions in the SVG")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write an allocation profile to this file at exit")
	)
	flag.Parse()
	if *inPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	stopProf, err := profutil.Start(*cpuprofile, *memprofile)
	if err != nil {
		fatal(err)
	}
	defer stopProf()
	in, err := instio.LoadInstance(*inPath)
	if err != nil {
		fatal(err)
	}

	var root *ctree.Node
	var wirelen float64
	switch *algo {
	case "ast":
		res, err := core.Build(in, core.Options{IntraSkewBound: *bound})
		if err != nil {
			fatal(err)
		}
		root, wirelen = res.Root, res.Wirelength
		fmt.Printf("stats: %v\n", res.Stats)
	case "extbst":
		res, err := core.EXTBST(in, *bound, core.Options{})
		if err != nil {
			fatal(err)
		}
		root, wirelen = res.Root, res.Wirelength
	case "zst":
		res, err := core.ZST(in, core.Options{})
		if err != nil {
			fatal(err)
		}
		root, wirelen = res.Root, res.Wirelength
	case "stitch":
		res, err := stitch.Build(in, stitch.Options{IntraSkewBound: *bound})
		if err != nil {
			fatal(err)
		}
		root, wirelen = res.Root, res.Wirelength
	default:
		fatal(fmt.Errorf("unknown algorithm %q", *algo))
	}

	if err := eval.CheckTree(root, in); err != nil {
		fatal(fmt.Errorf("tree validation failed: %w", err))
	}
	rep := eval.Analyze(root, in, core.DefaultModel(), in.Source)
	fmt.Printf("instance:         %s (%d sinks, %d groups)\n", in.Name, len(in.Sinks), in.NumGroups)
	fmt.Printf("algorithm:        %s\n", *algo)
	fmt.Printf("wirelength:       %.0f\n", wirelen)
	fmt.Printf("global skew:      %.2f ps\n", rep.GlobalSkew)
	fmt.Printf("max group skew:   %.2f ps\n", rep.MaxGroupSkew)
	fmt.Printf("delay range:      %.1f .. %.1f ps\n", rep.MinDelay, rep.MaxDelay)

	if *svgPath != "" {
		f, err := os.Create(*svgPath)
		if err != nil {
			fatal(err)
		}
		opt := svgplot.Options{Title: fmt.Sprintf("%s / %s", in.Name, *algo), ShowRegions: *regions}
		if err := svgplot.Render(f, root, in, opt); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("svg:              %s\n", *svgPath)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "astdme:", err)
	os.Exit(1)
}
