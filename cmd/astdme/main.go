// Command astdme routes a clock routing instance with one of the
// implemented algorithms and reports wirelength and measured skews.
//
// Usage:
//
//	astdme -algo ast     -in inst.json            # AST-DME (the paper)
//	astdme -algo extbst  -bound 10 -in inst.json  # EXT-BST baseline
//	astdme -algo zst     -in inst.json            # greedy-DME zero skew
//	astdme -algo stitch  -in inst.json            # per-group trees + stitch
//	astdme -algo zst -shards 4 -in inst.json      # sharded routing (internal/shard)
//	astdme -algo ast -shards 4 -pilot -in i.json  # sharded + pilot offset pass
//	astdme -algo ast -svg out.svg -in inst.json   # also render the tree
//	astdme -algo ast -trace out.json -in i.json   # phase trace + provenance
//	astdme -algo ast -timeout 30s -in i.json      # abort the build after 30s
//	astdme -algo zst -shards 4 -chaos 1 -in i.json # fault-injected dispatch
//	astdme -algo ast -shards 4 -workers 127.0.0.1:9301,127.0.0.1:9302 -in i.json
//	                                              # remote shard dispatch
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/ctree"
	"repro/internal/dispatch"
	"repro/internal/eval"
	"repro/internal/instio"
	"repro/internal/obs"
	"repro/internal/profutil"
	"repro/internal/shard"
	"repro/internal/stitch"
	"repro/internal/svgplot"
)

func main() {
	var (
		inPath     = flag.String("in", "", "instance JSON file (required)")
		algo       = flag.String("algo", "ast", "algorithm: ast | extbst | zst | stitch")
		bound      = flag.Float64("bound", 10, "skew bound in ps (extbst: global; ast: intra-group)")
		shards     = flag.Int("shards", 0, "spatial shards routed concurrently and stitched (0 = off; ast/extbst/zst only)")
		pilot      = flag.Bool("pilot", false, "pilot offset pass: pre-commit the inter-group offset contract and prescribe it to every shard (ast with -shards only)")
		svgPath    = flag.String("svg", "", "write an SVG rendering of the embedded tree")
		regions    = flag.Bool("regions", false, "draw merging regions in the SVG (requires -svg)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write an allocation profile to this file at exit")
		tracePath  = flag.String("trace", "", "write a JSON phase trace (spans, metrics, provenance) to this file (ast/extbst/zst only)")
		timeout    = flag.Duration("timeout", 0, "abort the build after this long, e.g. 30s (ast/extbst/zst only; 0 = unbounded)")
		chaosSeed  = flag.Int64("chaos", 0, "seeded fault injection into the shard dispatcher: panics, transient errors, stragglers (requires -shards; the routed tree stays bitwise identical)")
		workers    = flag.String("workers", "", "comma-separated routeworker addresses (host:port) to ship shard and pilot builds to (requires -shards; degrades to in-process on fleet loss)")
		cachePath  = flag.String("cache", "", "incremental-rebuild contract file: a sharded ast build writes it, -eco reads it and writes the chained contract back (requires -shards with -in, or -eco)")
		ecoPath    = flag.String("eco", "", "edit-script JSON (instio edits): incrementally re-route the cached instance from -cache instead of building from -in")
	)
	flag.Parse()
	if *inPath == "" && *ecoPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	// Flag-combination validation: refuse contradictory flags instead of
	// silently ignoring one of them.
	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
	if err := validateFlags(set, cliFlags{
		Algo:    *algo,
		Shards:  *shards,
		Pilot:   *pilot,
		Timeout: *timeout,
		Trace:   *tracePath,
		Workers: *workers,
		Cache:   *cachePath,
		Eco:     *ecoPath,
	}); err != nil {
		fatal(err)
	}

	stopProf, err := profutil.Start(*cpuprofile, *memprofile)
	if err != nil {
		fatal(err)
	}
	defer stopProf()
	var in *ctree.Instance
	var ecoCache *shard.EcoCache
	if *ecoPath != "" {
		// The instance comes out of the cached contract, not -in.
		blob, err := os.ReadFile(*cachePath)
		if err != nil {
			fatal(err)
		}
		if ecoCache, err = shard.UnmarshalEcoCache(blob); err != nil {
			fatal(err)
		}
		in = ecoCache.Instance
	} else {
		if in, err = instio.LoadInstance(*inPath); err != nil {
			fatal(err)
		}
	}
	if *pilot && in.NumGroups < 2 {
		// shard.Build would skip the pass (nothing to prescribe); refuse the
		// silently ignored flag like every other contradictory combination.
		fatal(fmt.Errorf("-pilot prescribes inter-group offsets, but %s has a single group; drop -pilot", in.Name))
	}

	// Construct the trace immediately before the routing work so its wall
	// time is the time being attributed (nil when -trace is off: the whole
	// pipeline then runs on the zero-cost disabled path).
	var tr *obs.Trace
	if *tracePath != "" {
		tr = obs.New("astdme")
		tr.SetProvenance(obs.CollectProvenance())
	}

	// -timeout maps to context cancellation: the merge loops check the
	// deadline once per round and unwind with a cancellation error.
	ctx := context.Background()
	if *timeout > 0 {
		var cancelBuild context.CancelFunc
		ctx, cancelBuild = context.WithTimeout(ctx, *timeout)
		defer cancelBuild()
	}
	var dopt dispatch.Options
	if set["chaos"] {
		n := *shards
		if n < 5 {
			n = 5 // the pilot phase dispatches up to 5 patch routes
		}
		plan := dispatch.SeededPlan(*chaosSeed, n, 2*time.Millisecond, "pilot", "shard")
		if *workers != "" {
			// Remote chaos also exercises the transport: seeded connection
			// drops and corrupted responses at the same (phase, task,
			// attempt) coordinates, all surfacing transient.
			plan = plan.Merge(dispatch.SeededNetPlan(*chaosSeed, n, "pilot", "shard"))
		}
		dopt.Faults = plan
	}
	var pool *dispatch.WorkerPool
	if *workers != "" {
		pool, err = dispatch.NewWorkerPool(strings.Split(*workers, ","), dispatch.PoolOptions{})
		if err != nil {
			fatal(err)
		}
		defer pool.Close()
		dopt.Remote = pool
	}

	var root *ctree.Node
	var wirelen float64
	var sharded *shard.Result
	switch {
	case *ecoPath != "":
		script, err := instio.LoadEdits(*ecoPath)
		if err != nil {
			fatal(err)
		}
		res, err := ecoCache.RebuildDispatch(script, shard.RebuildOptions{Trace: tr, Ctx: ctx}, dopt)
		if err != nil {
			fatal(buildFailure(err, *timeout))
		}
		in = res.Instance // the edited instance; everything below reports against it
		root, wirelen, sharded = res.Root, res.Wirelength, res
		fmt.Printf("stats: %v\n", res.Stats)
		fmt.Printf("eco:              %d edits, %d of %d shards rebuilt (%d reused)\n",
			len(script.Edits), len(res.EcoRebuilt), len(res.Shards), res.EcoReused)
		// Chain the contract: the next ECO rebuilds against the edited
		// instance without ever paying a full build.
		blob, err := res.Eco.Marshal()
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*cachePath, blob, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("cache:            %s (chained, %d bytes)\n", *cachePath, len(blob))
	case *algo == "ast":
		opt := core.Options{IntraSkewBound: *bound, Shards: *shards, Pilot: *pilot, Trace: tr, Ctx: ctx}
		var res *shard.Result
		if *cachePath != "" {
			res, err = shard.BuildEco(in, opt, dopt)
		} else {
			res, err = shard.BuildDispatch(in, opt, dopt)
		}
		if err != nil {
			fatal(buildFailure(err, *timeout))
		}
		root, wirelen, sharded = res.Root, res.Wirelength, res
		fmt.Printf("stats: %v\n", res.Stats)
		if *cachePath != "" {
			blob, err := res.Eco.Marshal()
			if err != nil {
				fatal(err)
			}
			if err := os.WriteFile(*cachePath, blob, 0o644); err != nil {
				fatal(err)
			}
			fmt.Printf("cache:            %s (%d bytes)\n", *cachePath, len(blob))
		}
	case *algo == "extbst":
		res, err := shard.BuildDispatch(in, core.Options{SingleGroup: true, GlobalBound: *bound, Shards: *shards, Trace: tr, Ctx: ctx}, dopt)
		if err != nil {
			fatal(buildFailure(err, *timeout))
		}
		root, wirelen, sharded = res.Root, res.Wirelength, res
	case *algo == "zst":
		res, err := shard.BuildDispatch(in, core.Options{SingleGroup: true, Shards: *shards, Trace: tr, Ctx: ctx}, dopt)
		if err != nil {
			fatal(buildFailure(err, *timeout))
		}
		root, wirelen, sharded = res.Root, res.Wirelength, res
	case *algo == "stitch":
		res, err := stitch.Build(in, stitch.Options{IntraSkewBound: *bound})
		if err != nil {
			fatal(err)
		}
		root, wirelen = res.Root, res.Wirelength
	default:
		fatal(fmt.Errorf("unknown algorithm %q", *algo))
	}

	checkRgn := tr.Begin("check")
	if err := eval.CheckTree(root, in); err != nil {
		fatal(fmt.Errorf("tree validation failed: %w", err))
	}
	checkRgn.End()
	rep := eval.AnalyzeTraced(tr, root, in, core.DefaultModel(), in.Source)
	tr.Close()
	fmt.Printf("instance:         %s (%d sinks, %d groups)\n", in.Name, len(in.Sinks), in.NumGroups)
	fmt.Printf("algorithm:        %s\n", *algo)
	fmt.Printf("wirelength:       %.0f\n", wirelen)
	fmt.Printf("global skew:      %.2f ps\n", rep.GlobalSkew)
	fmt.Printf("max group skew:   %.2f ps\n", rep.MaxGroupSkew)
	fmt.Printf("delay range:      %.1f .. %.1f ps\n", rep.MinDelay, rep.MaxDelay)
	if sharded != nil && len(sharded.Shards) > 0 {
		fmt.Printf("shards:           %d (stitch wire %.0f)\n", len(sharded.Shards), sharded.StitchWire)
		// Seam skew is the grouped sharded-quality metric; single-group
		// modes (zst/extbst) never promise it, so reporting it there would
		// present a meaningless regression.
		if *algo == "ast" && len(sharded.Parts) > 1 && in.NumGroups > 1 {
			_, seam := eval.SeamSkew(rep, in, sharded.Parts)
			fmt.Printf("seam group skew:  %.2f ps\n", seam)
		}
		if sharded.PilotSinks > 0 {
			fmt.Printf("pilot:            %d sinks routed, %d scans, offsets", sharded.PilotSinks, sharded.PilotStats.PairScans)
			for _, o := range sharded.PilotOffsets {
				fmt.Printf(" %.2f", o)
			}
			fmt.Println()
		}
		for i, si := range sharded.Shards {
			fmt.Printf("  shard %d:        %d sinks, wire %.0f, scans %d, rebuilds %d\n",
				i, si.Sinks, si.Wirelength, si.Stats.PairScans, si.Stats.GridRebuilds.Total())
		}
		if d := sharded.Dispatch; d.Retries+d.Hedges+d.PanicsRecovered+d.FaultsInjected+d.RemoteFallbacks+d.WorkersLost > 0 {
			fmt.Printf("dispatch:         %d retries, %d hedges, %d panics recovered, %d faults injected\n",
				d.Retries, d.Hedges, d.PanicsRecovered, d.FaultsInjected)
		}
		if pool != nil {
			d := sharded.Dispatch
			fmt.Printf("remote:           %d workers (%d healthy), %d fallbacks, %d lost\n",
				pool.Workers(), pool.Healthy(), d.RemoteFallbacks, d.WorkersLost)
		}
	}

	if *svgPath != "" {
		f, err := os.Create(*svgPath)
		if err != nil {
			fatal(err)
		}
		opt := svgplot.Options{Title: fmt.Sprintf("%s / %s", in.Name, *algo), ShowRegions: *regions}
		if err := svgplot.Render(f, root, in, opt); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("svg:              %s\n", *svgPath)
	}

	if tr != nil {
		if err := obs.WriteJSONFile(*tracePath, tr); err != nil {
			fatal(err)
		}
		fmt.Printf("trace:            %s\n", *tracePath)
		fmt.Printf("phases:           %s\n", tr.Report())
	}
}

// cliFlags carries the parsed flag values validateFlags cross-checks
// (set-ness travels separately, in the visit map, because several rules
// distinguish "explicitly given" from "default value").
type cliFlags struct {
	Algo    string
	Shards  int
	Pilot   bool
	Timeout time.Duration
	Trace   string
	Workers string
	Cache   string
	Eco     string
}

// validateFlags refuses contradictory flag combinations instead of silently
// ignoring one of them. Extracted from main so the rejection matrix is unit
// testable.
func validateFlags(set map[string]bool, f cliFlags) error {
	// The eco rules run first: with -eco, the cached contract owns the
	// sharding configuration, so its rejections name the actual conflict
	// rather than a generic sharding rule firing on a flag eco refuses
	// anyway.
	if set["eco"] {
		if f.Eco == "" {
			return fmt.Errorf("-eco needs an edit-script file")
		}
		if f.Cache == "" {
			return fmt.Errorf("-eco rebuilds against a cached contract and requires -cache (write one with -algo ast -shards N -cache file)")
		}
		if set["in"] {
			return fmt.Errorf("-eco routes the instance stored in the cached contract; drop -in")
		}
		if f.Algo != "ast" {
			return fmt.Errorf("-eco rebuilds a cached ast routing and requires -algo ast")
		}
		if set["shards"] || set["pilot"] {
			return fmt.Errorf("-shards and -pilot are fixed by the cached contract; drop them with -eco")
		}
		if set["chaos"] {
			return fmt.Errorf("-chaos is not supported with -eco yet; inject faults through a from-scratch sharded build")
		}
	}
	if set["cache"] && f.Eco == "" {
		if f.Cache == "" {
			return fmt.Errorf("-cache needs a file path")
		}
		if f.Algo != "ast" {
			return fmt.Errorf("-cache retains an incremental-rebuild contract for ast routings; -algo %s cannot write one", f.Algo)
		}
		if f.Shards == 0 {
			return fmt.Errorf("-cache retains per-shard subtrees and requires -shards ≥ 1")
		}
	}
	if set["regions"] && !set["svg"] {
		return fmt.Errorf("-regions draws into the SVG rendering and requires -svg")
	}
	if f.Shards > 0 && f.Algo == "stitch" {
		return fmt.Errorf("-shards applies to the core router (ast/extbst/zst); the stitch baseline builds per-group trees and cannot shard")
	}
	if set["bound"] && f.Algo == "zst" {
		return fmt.Errorf("-bound is meaningless for zst (exact zero skew); drop it or use -algo extbst")
	}
	if f.Trace != "" && f.Algo == "stitch" {
		return fmt.Errorf("-trace records the core router's phase timings (ast/extbst/zst); the stitch baseline is untraced")
	}
	if f.Pilot {
		if f.Algo != "ast" {
			return fmt.Errorf("-pilot aligns inter-group offsets across shards and requires -algo ast (%s has no groups to align)", f.Algo)
		}
		if f.Shards == 0 {
			return fmt.Errorf("-pilot requires -shards ≥ 1 (the pilot pass exists to align shard builds)")
		}
	}
	if set["timeout"] {
		if f.Timeout <= 0 {
			return fmt.Errorf("-timeout must be positive (got %v); drop it to run unbounded", f.Timeout)
		}
		if f.Algo == "stitch" {
			return fmt.Errorf("-timeout cancels the core router's merge loop (ast/extbst/zst); the stitch baseline does not observe it")
		}
	}
	if set["chaos"] && f.Shards == 0 {
		return fmt.Errorf("-chaos injects faults into the shard dispatcher and requires -shards ≥ 1")
	}
	if set["workers"] {
		if f.Workers == "" {
			return fmt.Errorf("-workers needs at least one host:port address")
		}
		if f.Shards == 0 && f.Eco == "" {
			return fmt.Errorf("-workers ships shard builds to routeworkers and requires -shards ≥ 1")
		}
	}
	return nil
}

// buildFailure maps a deadline-driven cancellation onto a one-line
// diagnosis naming the flag that armed it; every other error passes through.
func buildFailure(err error, timeout time.Duration) error {
	if errors.Is(err, context.DeadlineExceeded) {
		return fmt.Errorf("build cancelled after %s (-timeout)", timeout)
	}
	return err
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "astdme:", err)
	os.Exit(1)
}
