package main

import (
	"strings"
	"testing"
	"time"
)

func TestValidateFlags(t *testing.T) {
	cases := []struct {
		name string
		set  map[string]bool
		f    cliFlags
		want string // substring of the error, "" = accept
	}{
		{"defaults", nil, cliFlags{Algo: "ast"}, ""},
		{"regions without svg", map[string]bool{"regions": true}, cliFlags{Algo: "ast"}, "-svg"},
		{"shards with stitch", nil, cliFlags{Algo: "stitch", Shards: 4}, "cannot shard"},
		{"bound with zst", map[string]bool{"bound": true}, cliFlags{Algo: "zst"}, "zst"},
		{"trace with stitch", nil, cliFlags{Algo: "stitch", Trace: "t.json"}, "untraced"},
		{"pilot without ast", nil, cliFlags{Algo: "zst", Pilot: true, Shards: 2}, "-algo ast"},
		{"pilot without shards", nil, cliFlags{Algo: "ast", Pilot: true}, "-shards"},
		{"zero timeout", map[string]bool{"timeout": true}, cliFlags{Algo: "ast"}, "positive"},
		{"timeout with stitch", map[string]bool{"timeout": true}, cliFlags{Algo: "stitch", Timeout: time.Second}, "stitch"},
		{"chaos without shards", map[string]bool{"chaos": true}, cliFlags{Algo: "ast"}, "-shards"},
		{"workers empty value", map[string]bool{"workers": true}, cliFlags{Algo: "ast", Shards: 2}, "host:port"},
		{"workers without shards", map[string]bool{"workers": true}, cliFlags{Algo: "ast", Workers: "127.0.0.1:9"}, "-shards"},
		{"workers with shards", map[string]bool{"workers": true}, cliFlags{Algo: "ast", Shards: 2, Workers: "127.0.0.1:9"}, ""},
		{"workers with chaos and pilot", map[string]bool{"workers": true, "chaos": true},
			cliFlags{Algo: "ast", Shards: 4, Pilot: true, Workers: "a:1,b:2"}, ""},
	}
	for _, c := range cases {
		set := c.set
		if set == nil {
			set = map[string]bool{}
		}
		err := validateFlags(set, c.f)
		if c.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected rejection: %v", c.name, err)
			}
			continue
		}
		if err == nil {
			t.Errorf("%s: accepted, want error mentioning %q", c.name, c.want)
		} else if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}
