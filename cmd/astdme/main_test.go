package main

import (
	"strings"
	"testing"
	"time"
)

func TestValidateFlags(t *testing.T) {
	cases := []struct {
		name string
		set  map[string]bool
		f    cliFlags
		want string // substring of the error, "" = accept
	}{
		{"defaults", nil, cliFlags{Algo: "ast"}, ""},
		{"regions without svg", map[string]bool{"regions": true}, cliFlags{Algo: "ast"}, "-svg"},
		{"shards with stitch", nil, cliFlags{Algo: "stitch", Shards: 4}, "cannot shard"},
		{"bound with zst", map[string]bool{"bound": true}, cliFlags{Algo: "zst"}, "zst"},
		{"trace with stitch", nil, cliFlags{Algo: "stitch", Trace: "t.json"}, "untraced"},
		{"pilot without ast", nil, cliFlags{Algo: "zst", Pilot: true, Shards: 2}, "-algo ast"},
		{"pilot without shards", nil, cliFlags{Algo: "ast", Pilot: true}, "-shards"},
		{"zero timeout", map[string]bool{"timeout": true}, cliFlags{Algo: "ast"}, "positive"},
		{"timeout with stitch", map[string]bool{"timeout": true}, cliFlags{Algo: "stitch", Timeout: time.Second}, "stitch"},
		{"chaos without shards", map[string]bool{"chaos": true}, cliFlags{Algo: "ast"}, "-shards"},
		{"workers empty value", map[string]bool{"workers": true}, cliFlags{Algo: "ast", Shards: 2}, "host:port"},
		{"workers without shards", map[string]bool{"workers": true}, cliFlags{Algo: "ast", Workers: "127.0.0.1:9"}, "-shards"},
		{"workers with shards", map[string]bool{"workers": true}, cliFlags{Algo: "ast", Shards: 2, Workers: "127.0.0.1:9"}, ""},
		{"workers with chaos and pilot", map[string]bool{"workers": true, "chaos": true},
			cliFlags{Algo: "ast", Shards: 4, Pilot: true, Workers: "a:1,b:2"}, ""},
		{"eco empty value", map[string]bool{"eco": true}, cliFlags{Algo: "ast", Cache: "c.bin"}, "edit-script"},
		{"eco without cache", map[string]bool{"eco": true}, cliFlags{Algo: "ast", Eco: "e.json"}, "-cache"},
		{"eco with in", map[string]bool{"eco": true, "cache": true, "in": true},
			cliFlags{Algo: "ast", Eco: "e.json", Cache: "c.bin"}, "-in"},
		{"eco without ast", map[string]bool{"eco": true, "cache": true},
			cliFlags{Algo: "zst", Eco: "e.json", Cache: "c.bin"}, "-algo ast"},
		{"eco with shards", map[string]bool{"eco": true, "cache": true, "shards": true},
			cliFlags{Algo: "ast", Eco: "e.json", Cache: "c.bin", Shards: 4}, "cached contract"},
		{"eco with pilot", map[string]bool{"eco": true, "cache": true, "pilot": true},
			cliFlags{Algo: "ast", Eco: "e.json", Cache: "c.bin", Pilot: true}, "cached contract"},
		{"eco with chaos", map[string]bool{"eco": true, "cache": true, "chaos": true},
			cliFlags{Algo: "ast", Eco: "e.json", Cache: "c.bin"}, "-chaos"},
		{"eco with cache", map[string]bool{"eco": true, "cache": true},
			cliFlags{Algo: "ast", Eco: "e.json", Cache: "c.bin"}, ""},
		{"eco with workers", map[string]bool{"eco": true, "cache": true, "workers": true},
			cliFlags{Algo: "ast", Eco: "e.json", Cache: "c.bin", Workers: "a:1"}, ""},
		{"eco with timeout", map[string]bool{"eco": true, "cache": true, "timeout": true},
			cliFlags{Algo: "ast", Eco: "e.json", Cache: "c.bin", Timeout: time.Second}, ""},
		{"cache empty value", map[string]bool{"cache": true}, cliFlags{Algo: "ast", Shards: 2}, "file path"},
		{"cache without shards", map[string]bool{"cache": true}, cliFlags{Algo: "ast", Cache: "c.bin"}, "-shards"},
		{"cache without ast", map[string]bool{"cache": true}, cliFlags{Algo: "zst", Shards: 2, Cache: "c.bin"}, "ast"},
		{"cache write mode", map[string]bool{"cache": true}, cliFlags{Algo: "ast", Shards: 2, Cache: "c.bin"}, ""},
		{"cache write with pilot", map[string]bool{"cache": true}, cliFlags{Algo: "ast", Shards: 8, Pilot: true, Cache: "c.bin"}, ""},
	}
	for _, c := range cases {
		set := c.set
		if set == nil {
			set = map[string]bool{}
		}
		err := validateFlags(set, c.f)
		if c.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected rejection: %v", c.name, err)
			}
			continue
		}
		if err == nil {
			t.Errorf("%s: accepted, want error mentioning %q", c.name, c.want)
		} else if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}
