// Command compare runs one table of the evaluation and prints our measured
// numbers side by side with the thesis's reported ones (internal/paperdata),
// with per-row deltas — the raw material of EXPERIMENTS.md.
//
// Usage:
//
//	compare -table 2           # Table II, full suite
//	compare -table 1 -quick    # Table I, r1–r2
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
	"repro/internal/experiments"
	"repro/internal/paperdata"
)

func main() {
	var (
		table = flag.Int("table", 2, "thesis table: 1 (clustered) or 2 (intermingled)")
		quick = flag.Bool("quick", false, "run only r1–r2")
	)
	flag.Parse()

	grouping := experiments.Clustered
	paper := paperdata.TableI
	if *table == 2 {
		grouping = experiments.Intermingled
		paper = paperdata.TableII
	}
	circuits := bench.Suite()
	if *quick {
		circuits = circuits[:2]
	}

	rows, err := experiments.Table(grouping, circuits, experiments.GroupCounts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "compare:", err)
		os.Exit(1)
	}

	fmt.Printf("Table %d (%s): paper vs measured\n", *table, grouping)
	fmt.Printf("%-4s %3s %-8s | %12s %8s %6s | %12s %8s %6s | %8s\n",
		"ckt", "k", "algo", "paper wire", "red%", "skew", "ours wire", "red%", "skew", "Δwire%")
	for _, r := range rows {
		pr, ok := paperdata.Find(paper, r.Circuit, r.Groups, r.Algorithm)
		if !ok {
			continue
		}
		dWire := 100 * (r.Wirelen - pr.Wirelen) / pr.Wirelen
		fmt.Printf("%-4s %3d %-8s | %12.0f %7.2f%% %6.0f | %12.0f %7.2f%% %6.0f | %+7.2f%%\n",
			r.Circuit, r.Groups, r.Algorithm,
			pr.Wirelen, pr.ReductionPct, pr.MaxSkewPs,
			r.Wirelen, r.ReductionPct, r.MaxSkewPs, dWire)
	}
}
