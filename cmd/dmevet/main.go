// Command dmevet runs the determinism analyzer suite (internal/lint) over
// the given package patterns, in the style of a go vet multichecker. It
// exits 0 when the tree is clean, 1 when there are findings, and 2 when the
// packages cannot be loaded. Intentional findings are suppressed in source
// with a reasoned annotation on the offending line (or the line above):
//
//	//lint:nondet-ok <reason>
//
// Usage:
//
//	dmevet [-list] [packages]
//
// With no package arguments it checks ./...
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and their scopes, then exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: dmevet [-list] [packages]\n\nAnalyzers:\n")
		for _, a := range lint.Suite() {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()
	if *list {
		for _, a := range lint.Suite() {
			scope := "all packages"
			if len(a.Scope) > 0 {
				scope = fmt.Sprint(a.Scope)
			}
			tests := ""
			if a.IncludeTests {
				tests = " (including tests)"
			}
			fmt.Printf("%-12s %s\n%14s→ %s%s\n", a.Name, a.Doc, "", scope, tests)
		}
		return
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	units, err := lint.Load(".", patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dmevet: %v\n", err)
		os.Exit(2)
	}
	diags := lint.RunUnits(units, lint.Suite())
	cwd, _ := os.Getwd()
	for _, d := range diags {
		name := d.Pos.Filename
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, name); err == nil && !filepath.IsAbs(rel) {
				name = rel
			}
		}
		fmt.Printf("%s:%d:%d: %s (%s)\n", name, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "dmevet: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
