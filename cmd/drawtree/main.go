// Command drawtree renders side-by-side SVGs of the algorithms on one
// instance, the quickest way to *see* the thesis's Fig. 2 phenomenon: the
// stitch baseline's overlapping per-group trees versus AST-DME's shared
// routing.
//
// Usage:
//
//	drawtree -in inst.json -dir out/
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/ctree"
	"repro/internal/instio"
	"repro/internal/stitch"
	"repro/internal/svgplot"
)

func main() {
	var (
		inPath = flag.String("in", "", "instance JSON file (required)")
		outDir = flag.String("dir", ".", "output directory")
	)
	flag.Parse()
	if *inPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	in, err := instio.LoadInstance(*inPath)
	if err != nil {
		fatal(err)
	}

	type run struct {
		name string
		root *ctree.Node
		wire float64
	}
	var runs []run

	ast, err := core.Build(in, core.Options{IntraSkewBound: 10})
	if err != nil {
		fatal(err)
	}
	runs = append(runs, run{"ast-dme", ast.Root, ast.Wirelength})

	ext, err := core.EXTBST(in, 10, core.Options{})
	if err != nil {
		fatal(err)
	}
	runs = append(runs, run{"ext-bst", ext.Root, ext.Wirelength})

	st, err := stitch.Build(in, stitch.Options{})
	if err != nil {
		fatal(err)
	}
	runs = append(runs, run{"stitch", st.Root, st.Wirelength})

	for _, r := range runs {
		path := filepath.Join(*outDir, fmt.Sprintf("%s-%s.svg", in.Name, r.name))
		f, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		title := fmt.Sprintf("%s / %s — wire %.0f", in.Name, r.name, r.wire)
		if err := svgplot.Render(f, r.root, in, svgplot.Options{Title: title}); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("%-8s wire %12.0f -> %s\n", r.name, r.wire, path)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "drawtree:", err)
	os.Exit(1)
}
