// Command instancegen synthesizes clock routing benchmark instances: the
// r1–r5 suite of the thesis's experiments (see DESIGN.md §3 for the
// substitution rationale), the large-instance scaling circuits
// (l10k/l50k/l100k, 10k–100k sinks for the spatial pairing subsystem), or
// custom sizes, with clustered or intermingled sink groups and uniform or
// power-law-clustered sink placement.
//
// Usage:
//
//	instancegen -circuit r3 -groups 8 -mode intermingled -o r3k8.json
//	instancegen -sinks 500 -groups 4 -mode clustered -seed 7 -o custom.json
//	instancegen -circuit l100k -groups 16 -mode clustered -o l100k.json
//	instancegen -sinks 50000 -dist powerlaw -clusters 40 -alpha 1.5 -o hot.json
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
	"repro/internal/ctree"
	"repro/internal/instio"
)

func main() {
	var (
		circuit  = flag.String("circuit", "", "suite circuit name (r1..r5, l10k/l50k/l100k); overrides -sinks")
		sinks    = flag.Int("sinks", 300, "number of sinks for a custom instance")
		groups   = flag.Int("groups", 1, "number of sink groups")
		mode     = flag.String("mode", "intermingled", "grouping mode: clustered | intermingled")
		dist     = flag.String("dist", "uniform", "sink placement: uniform | powerlaw (power-law-sized clusters)")
		clusters = flag.Int("clusters", 32, "cluster count for -dist powerlaw")
		alpha    = flag.Float64("alpha", 1.5, "power-law exponent for -dist powerlaw cluster sizes")
		seed     = flag.Int64("seed", 1, "random seed for custom instances and intermingled grouping")
		out      = flag.String("o", "", "output file (default stdout)")
		perturb  = flag.Float64("perturb", 0, "also emit a seeded ECO edit script touching this fraction of the generated sinks (requires -edits)")
		edits    = flag.String("edits", "", "edit-script output file for -perturb")
	)
	flag.Parse()
	if (*perturb != 0) != (*edits != "") {
		fatal(fmt.Errorf("-perturb and -edits go together: the fraction sizes the script, the file receives it"))
	}

	n, sd := *sinks, *seed
	var sp bench.Spec
	haveSpec := *circuit != ""
	if haveSpec {
		var err error
		if sp, err = bench.BySuiteName(*circuit); err != nil {
			fatal(err)
		}
		n, sd = sp.Sinks, sp.Seed
	}

	var in *ctree.Instance
	switch *dist {
	case "uniform":
		if haveSpec {
			in = bench.Generate(sp) // preserves the circuit's calibrated die edge
		} else {
			in = bench.Small(n, sd)
		}
	case "powerlaw":
		in = bench.PowerLaw(n, *clusters, *alpha, sd)
	default:
		fatal(fmt.Errorf("unknown placement %q (want uniform | powerlaw)", *dist))
	}

	if *groups > 1 {
		switch *mode {
		case "clustered":
			in = bench.Clustered(in, *groups)
		case "intermingled":
			// Grouping is seeded by -seed even for named circuits, whose
			// placement seed is fixed by the suite spec.
			in = bench.Intermingled(in, *groups, *seed*101)
		default:
			fatal(fmt.Errorf("unknown mode %q", *mode))
		}
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := instio.WriteInstance(w, in); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s: %d sinks, %d groups\n", in.Name, len(in.Sinks), in.NumGroups)

	if *perturb != 0 {
		// A deterministic seeded edit script against the instance just
		// written: ECO benchmarks replay the exact same edits run over run
		// (the script is a pure function of instance, fraction and seed).
		sc, err := instio.Perturb(in, *perturb, *seed)
		if err != nil {
			fatal(err)
		}
		if err := instio.SaveEdits(*edits, sc); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s: %d edits (%s)\n", *edits, len(sc.Edits), sc.Name)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "instancegen:", err)
	os.Exit(1)
}
