// Command instancegen synthesizes clock routing benchmark instances: the
// r1–r5 suite of the thesis's experiments (see DESIGN.md §3 for the
// substitution rationale) or custom sizes, with clustered or intermingled
// sink groups.
//
// Usage:
//
//	instancegen -circuit r3 -groups 8 -mode intermingled -o r3k8.json
//	instancegen -sinks 500 -groups 4 -mode clustered -seed 7 -o custom.json
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
	"repro/internal/ctree"
	"repro/internal/instio"
)

func main() {
	var (
		circuit = flag.String("circuit", "", "suite circuit name (r1..r5); overrides -sinks")
		sinks   = flag.Int("sinks", 300, "number of sinks for a custom instance")
		groups  = flag.Int("groups", 1, "number of sink groups")
		mode    = flag.String("mode", "intermingled", "grouping mode: clustered | intermingled")
		seed    = flag.Int64("seed", 1, "random seed for custom instances and intermingled grouping")
		out     = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	var in *ctree.Instance
	if *circuit != "" {
		sp, err := bench.BySuiteName(*circuit)
		if err != nil {
			fatal(err)
		}
		in = bench.Generate(sp)
	} else {
		in = bench.Small(*sinks, *seed)
	}

	if *groups > 1 {
		switch *mode {
		case "clustered":
			in = bench.Clustered(in, *groups)
		case "intermingled":
			in = bench.Intermingled(in, *groups, *seed*101)
		default:
			fatal(fmt.Errorf("unknown mode %q", *mode))
		}
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := instio.WriteInstance(w, in); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s: %d sinks, %d groups\n", in.Name, len(in.Sinks), in.NumGroups)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "instancegen:", err)
	os.Exit(1)
}
