// Command routeworker is the remote-dispatch worker process: it serves the
// internal/wire worker protocol (POST /build executes one work unit, GET
// /healthz answers liveness probes) for a coordinator's
// dispatch.WorkerPool. Handler panics are contained per request (the
// process never crashes on a poisoned work unit), and SIGTERM/SIGINT drain
// gracefully: the listener closes immediately, in-flight builds run to
// completion within the -drain budget, then the process exits 0 — so a
// fleet rollover never turns into coordinator-visible failures beyond the
// connection errors the pool is built to absorb.
//
// Usage:
//
//	routeworker -listen 127.0.0.1:9301
//
// The bound address is printed to stdout as "listening on <addr>" once the
// listener is up (useful with -listen :0).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/wire"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:0", "host:port to serve the worker protocol on")
	drain := flag.Duration("drain", time.Minute, "how long a shutdown signal waits for in-flight builds")
	stall := flag.Duration("stall", 0, "artificial delay before executing each build (fault drills only)")
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "routeworker: unexpected arguments %v\n", flag.Args())
		os.Exit(2)
	}

	srv, err := wire.NewWorkerServer(*listen, wire.ServerOptions{Stall: *stall})
	if err != nil {
		fmt.Fprintf(os.Stderr, "routeworker: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("listening on %s\n", srv.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, os.Interrupt)
	drained := make(chan error, 1)
	go func() {
		s := <-sig
		fmt.Printf("routeworker: %v, draining (up to %v)\n", s, *drain)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		drained <- srv.Shutdown(ctx)
	}()

	if err := srv.Serve(); !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "routeworker: %v\n", err)
		os.Exit(1)
	}
	// Serve returned because Shutdown started; wait for the drain itself.
	if err := <-drained; err != nil {
		fmt.Fprintf(os.Stderr, "routeworker: drain: %v\n", err)
		os.Exit(1)
	}
}
