package main

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/wire"
)

// TestMain lets the test binary stand in for the routeworker executable:
// invoked with ROUTEWORKER_MAIN=1 it runs main() instead of the tests, so
// the process-level contracts (SIGTERM drain, exit codes) are tested on the
// real binary semantics without building a second artifact.
func TestMain(m *testing.M) {
	if os.Getenv("ROUTEWORKER_MAIN") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// startWorkerProc execs this test binary as a routeworker and returns the
// process and its bound address (parsed from the "listening on" line).
func startWorkerProc(t *testing.T, args ...string) (*exec.Cmd, string, *bytes.Buffer) {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "ROUTEWORKER_MAIN=1")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cmd.Process.Kill(); cmd.Wait() })
	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		t.Fatalf("worker printed nothing (stderr: %s)", stderr.String())
	}
	line := sc.Text()
	addr, ok := strings.CutPrefix(line, "listening on ")
	if !ok {
		t.Fatalf("unexpected first line %q", line)
	}
	go io.Copy(io.Discard, stdout) // keep the pipe drained past the first line
	return cmd, addr, &stderr
}

func waitExit(t *testing.T, cmd *exec.Cmd, within time.Duration) int {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err == nil {
			return 0
		}
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode()
		}
		t.Fatalf("wait: %v", err)
	case <-time.After(within):
		t.Fatalf("worker did not exit within %v", within)
	}
	return -1
}

// TestWorkerServesAndDrainsOnSIGTERM is the process-level drain contract:
// SIGTERM while a stalled build is in flight must let the build finish,
// answer it 200, and exit 0.
func TestWorkerServesAndDrainsOnSIGTERM(t *testing.T) {
	cmd, addr, stderr := startWorkerProc(t, "-stall", "300ms", "-drain", "10s")

	u := &wire.WorkUnit{
		Kind:     wire.KindBuild,
		Instance: bench.Small(60, 5),
	}
	reg, err := core.NewRegistry(u.Instance, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	u.Registry = reg.Snapshot()
	body, err := u.Encode()
	if err != nil {
		t.Fatal(err)
	}

	type resp struct {
		code int
		err  error
	}
	got := make(chan resp, 1)
	go func() {
		r, err := http.Post(fmt.Sprintf("http://%s/build", addr), "application/octet-stream", bytes.NewReader(body))
		if err != nil {
			got <- resp{err: err}
			return
		}
		defer r.Body.Close()
		io.Copy(io.Discard, r.Body)
		got <- resp{code: r.StatusCode}
	}()
	time.Sleep(100 * time.Millisecond) // request enters the stall window
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	r := <-got
	if r.err != nil {
		t.Fatalf("in-flight build dropped during drain: %v", r.err)
	}
	if r.code != http.StatusOK {
		t.Fatalf("in-flight build answered %d during drain, want 200", r.code)
	}
	if code := waitExit(t, cmd, 10*time.Second); code != 0 {
		t.Fatalf("worker exited %d after graceful drain (stderr: %s)", code, stderr.String())
	}
}

// TestWorkerExitsZeroOnIdleSIGTERM pins the trivial rollover path.
func TestWorkerExitsZeroOnIdleSIGTERM(t *testing.T) {
	cmd, addr, stderr := startWorkerProc(t)
	r, err := http.Get(fmt.Sprintf("http://%s/healthz", addr))
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", r.StatusCode)
	}
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if code := waitExit(t, cmd, 10*time.Second); code != 0 {
		t.Fatalf("idle worker exited %d (stderr: %s)", code, stderr.String())
	}
}

// TestWorkerRejectsPositionalArgs pins the CLI surface.
func TestWorkerRejectsPositionalArgs(t *testing.T) {
	cmd := exec.Command(os.Args[0], "extra")
	cmd.Env = append(os.Environ(), "ROUTEWORKER_MAIN=1")
	if err := cmd.Run(); err == nil {
		t.Fatal("positional args accepted")
	} else if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != 2 {
		t.Fatalf("exit = %v, want code 2", err)
	}
}

// TestWorkerSurvivesBadRequest drives a poisoned request through the real
// process: it must be refused (400) without taking the worker down. (Panic
// containment inside a decoded build is pinned at the handler level in
// internal/wire, where a panicking executor can be injected.)
func TestWorkerSurvivesBadRequest(t *testing.T) {
	cmd, addr, _ := startWorkerProc(t)
	r, err := http.Post(fmt.Sprintf("http://%s/build", addr), "application/octet-stream", strings.NewReader("garbage"))
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage = %d, want 400", r.StatusCode)
	}
	r, err = http.Get(fmt.Sprintf("http://%s/healthz", addr))
	if err != nil {
		t.Fatalf("worker died after bad request: %v", err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("healthz after bad request = %d", r.StatusCode)
	}
	cmd.Process.Signal(syscall.SIGTERM)
	waitExit(t, cmd, 10*time.Second)
}
