// Command sweep produces data for the parameter studies behind the figures
// of EXPERIMENTS.md:
//
//	sweep -mode bound      # bounded-skew wirelength vs skew bound (Fig. 1 curve)
//	sweep -mode groups     # AST-DME vs EXT-BST vs #groups, both groupings
//	sweep -mode difficulty # AST-DME gain vs degree of intermingling (Blend)
//	sweep -mode offsetfloat# wire/skew trade-off of the InterSkewBound knob
//	sweep -mode scale      # sinks vs CPU seconds vs wirelength, JSON series
//	sweep -mode eco        # incremental (ECO) rebuild vs from-scratch, JSON series
//
// The eco mode measures the incremental rerouting path longitudinally: for
// every sink count (-sizes), placement (-dist), shard count (-shardcounts)
// and edit fraction (-editfracs) it runs a retained piloted build, generates
// the deterministic seeded edit script (instio.Perturb, the same script
// instancegen -perturb would emit), rebuilds incrementally, then routes the
// edited instance from scratch on the same configuration — emitting the
// wall-clock speedup, dirty/reused shard counts and the eval-backed quality
// deltas (wire ratio, seam skew) as a JSON series for BENCH_eco.json.
// -groups k (default 4) shapes the instances; provenance and dispatch
// blocks ride along exactly as in the scale mode.
//
// The table modes accept -circuit (r1..r5, default r1) and write CSV to
// stdout. The scale mode routes zero-skew instances of increasing size
// (-sizes, -dist, -pairer, -shards; or -suite for the full LargeSuite,
// uniform and power-law) and emits a JSON series suitable for tracking the
// scaling trajectory in BENCH_*.json files across PRs — -out writes it to a
// file directly (e.g. -out BENCH_scale.json as a CI artifact). -groups k
// additionally routes an intermingled k-group AST-DME variant of every
// instance (optionally piloted with -pilot), appending points that carry
// the grouped sharded quality metrics — intra-group skew, residual seam
// skew, pilot cost — to the same series, so the artifact tracks them
// longitudinally. Every point carries run provenance (git SHA, GOMAXPROCS,
// CPU model, Go version, timestamp); -trace f.json additionally records a
// phase trace of every measured point (partition/pilot/shards/stitch/eval,
// merge-wave idle fraction) and embeds each point's phase summary in the
// series. Flags that the selected mode would ignore are rejected.
// All modes accept -cpuprofile/-memprofile for pprof output.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/ctree"
	"repro/internal/dispatch"
	"repro/internal/eval"
	"repro/internal/experiments"
	"repro/internal/instio"
	"repro/internal/obs"
	"repro/internal/profutil"
	"repro/internal/shard"
)

// scalePoint is one measurement of the -mode scale series.
type scalePoint struct {
	Sinks      int     `json:"sinks"`
	Dist       string  `json:"dist"`
	Pairer     string  `json:"pairer"`
	Shards     int     `json:"shards"`
	CPUSeconds float64 `json:"cpu_seconds"`
	Wirelength float64 `json:"wirelength"`
	PairScans  int64   `json:"pair_scans"`
	SkewPs     float64 `json:"skew_ps"`
	// Spatial-index rebuild counts by trigger (zero under the scan pairer).
	GridRebuilds     int `json:"grid_rebuilds"`
	RebuildsLiveDrop int `json:"rebuilds_live_drop"`
	RebuildsClamp    int `json:"rebuilds_edge_clamp"`
	RebuildsScanRate int `json:"rebuilds_scan_rate"`
	RebuildsCellWalk int `json:"rebuilds_cell_walk"`
	// Grouped-variant fields (-groups): the AST-DME run's group count, the
	// measured intra-group skew, the residual intra-group skew across shard
	// seams (the sharded-quality metric the pilot pass drives to zero), and
	// the pilot pass's cost. All zero on single-group points.
	Groups      int     `json:"groups,omitempty"`
	Pilot       bool    `json:"pilot,omitempty"`
	GroupSkewPs float64 `json:"group_skew_ps,omitempty"`
	SeamSkewPs  float64 `json:"seam_skew_ps,omitempty"`
	PilotSinks  int     `json:"pilot_sinks,omitempty"`
	PilotScans  int64   `json:"pilot_scans,omitempty"`
	// Provenance identifies the build and machine behind the measurement
	// (git SHA, GOMAXPROCS, CPU model, Go version, timestamp) — without it
	// the longitudinal trajectory is uninterpretable. Always set.
	Provenance *obs.Provenance `json:"provenance"`
	// Phases is the point's per-phase time attribution (-trace only).
	Phases *obs.Summary `json:"phases,omitempty"`
	// Dispatch surfaces the build's fault-handling counters (retries,
	// hedges, contained panics, remote fallbacks, workers lost); omitted
	// when the build dispatched undisturbed.
	Dispatch *dispatchPoint `json:"dispatch,omitempty"`
}

// dispatchPoint is a scalePoint's view of dispatch.Report: what fault
// tolerance cost the measured build.
type dispatchPoint struct {
	Retries         int `json:"retries,omitempty"`
	Hedges          int `json:"hedges,omitempty"`
	PanicsRecovered int `json:"panics_recovered,omitempty"`
	FaultsInjected  int `json:"faults_injected,omitempty"`
	RemoteFallbacks int `json:"remote_fallbacks,omitempty"`
	WorkersLost     int `json:"workers_lost,omitempty"`
}

// ecoPoint is one measurement of the -mode eco series: a retained build, an
// incremental rebuild of a seeded edit script, and the from-scratch build of
// the same edited instance it competes against.
type ecoPoint struct {
	Sinks    int     `json:"sinks"`
	Dist     string  `json:"dist"`
	Shards   int     `json:"shards"`
	Groups   int     `json:"groups"`
	Pilot    bool    `json:"pilot"`
	EditFrac float64 `json:"edit_frac"`
	Edits    int     `json:"edits"`
	// DirtyShards/ReusedShards pin how much of the cached contract the edit
	// script invalidated; the speedup story stands on reuse.
	DirtyShards  int `json:"dirty_shards"`
	ReusedShards int `json:"reused_shards"`
	// FullSeconds is the retained from-scratch build that produced the
	// cache; EcoSeconds the incremental rebuild; ScratchSeconds the
	// from-scratch sharded build of the edited instance — the run the
	// rebuild replaces. Speedup = ScratchSeconds / EcoSeconds.
	FullSeconds    float64 `json:"full_seconds"`
	EcoSeconds     float64 `json:"eco_seconds"`
	ScratchSeconds float64 `json:"scratch_seconds"`
	Speedup        float64 `json:"speedup"`
	// Quality of the incremental result against the from-scratch build of
	// the same edited instance: total wire ratio (eco/scratch) and the
	// grouped seam residuals of both.
	Wirelength        float64         `json:"wirelength"`
	WireRatio         float64         `json:"wire_ratio"`
	SeamSkewPs        float64         `json:"seam_skew_ps"`
	ScratchSeamSkewPs float64         `json:"scratch_seam_skew_ps"`
	GroupSkewPs       float64         `json:"group_skew_ps"`
	Provenance        *obs.Provenance `json:"provenance"`
	// Dispatch covers the incremental rebuild's dispatched shard builds.
	Dispatch *dispatchPoint `json:"dispatch,omitempty"`
}

// scaleInstance is one (instance, placement label) pair of the scale series.
type scaleInstance struct {
	in   *ctree.Instance
	dist string
}

func runScale(out io.Writer, sizes string, dist string, pairers string, seed int64, suite bool, shards, groups int, pilot bool, workers string, tracePath string, timeout time.Duration) {
	// -workers ships shard and pilot builds to routeworkers; a fleet that
	// cannot take a task degrades to in-process execution, which the
	// series' dispatch fields record.
	var dopt dispatch.Options
	if workers != "" {
		pool, err := dispatch.NewWorkerPool(strings.Split(workers, ","), dispatch.PoolOptions{})
		if err != nil {
			fatal(err)
		}
		defer pool.Close()
		dopt.Remote = pool
	}
	var insts []scaleInstance
	if suite {
		// The longitudinal series: every LargeSuite circuit, uniform and
		// power-law, under its spec-pinned seed.
		for _, sp := range bench.LargeSuite() {
			d := sp.Dist
			if d == "" {
				d = "uniform"
			}
			insts = append(insts, scaleInstance{in: bench.Generate(sp), dist: d})
		}
	} else {
		for _, f := range strings.Split(sizes, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil || n < 2 {
				fatal(fmt.Errorf("bad -sizes entry %q", f))
			}
			var in *ctree.Instance
			switch dist {
			case "uniform":
				in = bench.Small(n, seed)
			case "powerlaw":
				in = bench.PowerLaw(n, bench.PowerLawClusters, bench.PowerLawAlpha, seed)
			default:
				fatal(fmt.Errorf("bad -dist %q (want uniform | powerlaw)", dist))
			}
			insts = append(insts, scaleInstance{in: in, dist: dist})
		}
	}
	modes := map[string]core.PairerMode{
		"auto": core.PairerAuto, "scan": core.PairerScan, "grid": core.PairerGrid,
	}
	var runs []string
	if pairers == "both" {
		runs = []string{"scan", "grid"}
	} else {
		if _, ok := modes[pairers]; !ok {
			fatal(fmt.Errorf("bad -pairer %q (want auto | scan | grid | both)", pairers))
		}
		runs = []string{pairers}
	}
	// One trace root for the whole sweep when -trace is set: each measured
	// point records into its own child, so the trace file mirrors the series
	// point for point. Provenance is collected once — it is per-process.
	prov := obs.CollectProvenance()
	var root *obs.Trace
	if tracePath != "" {
		root = obs.New("sweep-scale")
		root.SetProvenance(prov)
	}

	// measure routes one configuration and appends its scalePoint: the
	// single code path constructing points keeps the single-group series and
	// the grouped variant's fields in lockstep.
	var series []scalePoint
	measure := func(in *ctree.Instance, dist, pm string, opt core.Options) {
		var tr *obs.Trace
		if root != nil {
			label := fmt.Sprintf("n=%d dist=%s pairer=%s shards=%d", len(in.Sinks), dist, pm, opt.Shards)
			if !opt.SingleGroup {
				label += fmt.Sprintf(" groups=%d pilot=%v", in.NumGroups, opt.Pilot)
			}
			tr = root.Child(label)
			opt.Trace = tr
		}
		// -timeout budgets each measured build independently: a point that
		// blows the budget aborts the sweep with a diagnosis naming it,
		// rather than hanging the series.
		if timeout > 0 {
			ctx, cancel := context.WithTimeout(context.Background(), timeout)
			defer cancel()
			opt.Ctx = ctx
		}
		start := time.Now()
		res, err := shard.BuildDispatch(in, opt, dopt)
		if err != nil {
			if errors.Is(err, context.DeadlineExceeded) {
				fatal(fmt.Errorf("scale: n=%d pairer=%s shards=%d build cancelled after %s (-timeout)", len(in.Sinks), pm, opt.Shards, timeout))
			}
			fatal(err)
		}
		elapsed := time.Since(start).Seconds()
		rep := eval.AnalyzeTraced(tr, res.Root, in, core.DefaultModel(), in.Source)
		tr.Close()
		rb := res.Stats.GridRebuilds
		pt := scalePoint{
			Sinks: len(in.Sinks), Dist: dist, Pairer: pm, Shards: opt.Shards,
			CPUSeconds: elapsed, Wirelength: res.Wirelength,
			PairScans: res.Stats.PairScans, SkewPs: rep.GlobalSkew,
			GridRebuilds: rb.Total(), RebuildsLiveDrop: rb.LiveDrop,
			RebuildsClamp: rb.EdgeClamp, RebuildsScanRate: rb.ScanRate,
			RebuildsCellWalk: rb.CellWalk,
			Provenance:       prov,
			Phases:           tr.Summary(), // nil when untraced
		}
		if !opt.SingleGroup {
			pt.Groups, pt.Pilot = in.NumGroups, opt.Pilot
			pt.GroupSkewPs = rep.MaxGroupSkew
			if len(res.Parts) > 1 {
				_, pt.SeamSkewPs = eval.SeamSkew(rep, in, res.Parts)
			}
			pt.PilotSinks, pt.PilotScans = res.PilotSinks, res.PilotStats.PairScans
		}
		if d := res.Dispatch; d.Retries+d.Hedges+d.PanicsRecovered+d.FaultsInjected+d.RemoteFallbacks+d.WorkersLost > 0 {
			pt.Dispatch = &dispatchPoint{
				Retries: d.Retries, Hedges: d.Hedges,
				PanicsRecovered: d.PanicsRecovered, FaultsInjected: d.FaultsInjected,
				RemoteFallbacks: d.RemoteFallbacks, WorkersLost: d.WorkersLost,
			}
		}
		series = append(series, pt)
		fmt.Fprintf(os.Stderr, "scale: n=%d dist=%s pairer=%s shards=%d groups=%d pilot=%v %.2fs wire=%.0f scans=%d rebuilds=%d/%d/%d/%d seam=%.3f pilot_sinks=%d\n",
			len(in.Sinks), dist, pm, opt.Shards, pt.Groups, pt.Pilot, elapsed, res.Wirelength,
			res.Stats.PairScans, rb.LiveDrop, rb.EdgeClamp, rb.ScanRate, rb.CellWalk,
			pt.SeamSkewPs, pt.PilotSinks)
	}
	for _, si := range insts {
		for _, pm := range runs {
			measure(si.in, si.dist, pm, core.Options{
				SingleGroup: true, Pairer: modes[pm], Shards: shards,
			})
			if groups > 1 {
				// The grouped variant: the same circuit under an intermingled
				// k-group structure, routed zero-bound AST-DME with the same
				// pairer/shard configuration (optionally piloted), so the
				// longitudinal artifact tracks grouped sharded quality — seam
				// skew and pilot cost — next to the single-group series.
				gin := bench.Intermingled(si.in, groups, seed*1000+int64(groups))
				measure(gin, si.dist, pm, core.Options{
					Pairer: modes[pm], Shards: shards, Pilot: pilot,
				})
			}
		}
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	if err := enc.Encode(series); err != nil {
		fatal(err)
	}
	if root != nil {
		root.Close()
		if err := obs.WriteJSONFile(tracePath, root); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "scale: trace written to %s\n", tracePath)
	}
}

// runEco measures the incremental rebuild path against from-scratch builds;
// see the package comment. Each (size, dist, shards, frac) point runs three
// routings: the retained build (cache producer), the incremental rebuild of
// the seeded edit script, and the from-scratch sharded build of the edited
// instance the rebuild is supposed to replace.
func runEco(out io.Writer, sizes, dist, editfracs, shardcounts string, groups int, seed int64, timeout time.Duration) {
	var dists []string
	switch dist {
	case "uniform", "powerlaw":
		dists = []string{dist}
	case "both":
		dists = []string{"uniform", "powerlaw"}
	default:
		fatal(fmt.Errorf("bad -dist %q (want uniform | powerlaw | both)", dist))
	}
	var fracs []float64
	for _, f := range strings.Split(editfracs, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil || v <= 0 || v > 1 {
			fatal(fmt.Errorf("bad -editfracs entry %q (want fractions in (0, 1])", f))
		}
		fracs = append(fracs, v)
	}
	var counts []int
	for _, f := range strings.Split(shardcounts, ",") {
		k, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || k < 1 {
			fatal(fmt.Errorf("bad -shardcounts entry %q", f))
		}
		counts = append(counts, k)
	}
	// -timeout budgets each routing independently, as in the scale mode.
	budget := func(opt *core.Options) context.CancelFunc {
		if timeout <= 0 {
			return func() {}
		}
		ctx, cancel := context.WithTimeout(context.Background(), timeout)
		opt.Ctx = ctx
		return cancel
	}
	prov := obs.CollectProvenance()
	var series []ecoPoint
	for _, d := range dists {
		for _, f := range strings.Split(sizes, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil || n < 2 {
				fatal(fmt.Errorf("bad -sizes entry %q", f))
			}
			var in *ctree.Instance
			if d == "uniform" {
				in = bench.Small(n, seed)
			} else {
				in = bench.PowerLaw(n, bench.PowerLawClusters, bench.PowerLawAlpha, seed)
			}
			if groups > 1 {
				in = bench.Intermingled(in, groups, seed*1000+int64(groups))
			}
			for _, k := range counts {
				opt := core.Options{Shards: k}
				if groups > 1 {
					opt.Pilot = true // the cached-contract config the rebuild preserves
				} else {
					opt.SingleGroup = true
				}
				fullOpt := opt
				cancel := budget(&fullOpt)
				start := time.Now()
				full, err := shard.BuildEco(in, fullOpt, dispatch.Options{})
				cancel()
				if err != nil {
					fatal(ecoFailure("retained build", n, d, k, err, timeout))
				}
				tFull := time.Since(start).Seconds()
				for _, frac := range fracs {
					sc, err := instio.Perturb(in, frac, seed)
					if err != nil {
						fatal(err)
					}
					var ropt shard.RebuildOptions
					rcancel := func() {}
					if timeout > 0 {
						var ctx context.Context
						ctx, rcancel = context.WithTimeout(context.Background(), timeout)
						ropt.Ctx = ctx
					}
					start = time.Now()
					res, err := full.Eco.RebuildDispatch(sc, ropt, dispatch.Options{})
					rcancel()
					if err != nil {
						fatal(ecoFailure(fmt.Sprintf("rebuild frac=%g", frac), n, d, k, err, timeout))
					}
					tEco := time.Since(start).Seconds()
					edited := res.Instance
					scratchOpt := opt
					scancel := budget(&scratchOpt)
					start = time.Now()
					scratch, err := shard.BuildDispatch(edited, scratchOpt, dispatch.Options{})
					scancel()
					if err != nil {
						fatal(ecoFailure(fmt.Sprintf("scratch frac=%g", frac), n, d, k, err, timeout))
					}
					tScratch := time.Since(start).Seconds()
					rep := eval.Analyze(res.Root, edited, core.DefaultModel(), edited.Source)
					pt := ecoPoint{
						Sinks: n, Dist: d, Shards: k, Groups: in.NumGroups, Pilot: opt.Pilot,
						EditFrac: frac, Edits: len(sc.Edits),
						DirtyShards: len(res.EcoRebuilt), ReusedShards: res.EcoReused,
						FullSeconds: tFull, EcoSeconds: tEco, ScratchSeconds: tScratch,
						Speedup:    tScratch / tEco,
						Wirelength: res.Wirelength,
						WireRatio:  res.Wirelength / scratch.Wirelength,
						Provenance: prov,
					}
					if groups > 1 && len(res.Parts) > 1 {
						pt.GroupSkewPs = rep.MaxGroupSkew
						_, pt.SeamSkewPs = eval.SeamSkew(rep, edited, res.Parts)
						srep := eval.Analyze(scratch.Root, edited, core.DefaultModel(), edited.Source)
						_, pt.ScratchSeamSkewPs = eval.SeamSkew(srep, edited, scratch.Parts)
					}
					if dr := res.Dispatch; dr.Retries+dr.Hedges+dr.PanicsRecovered+dr.FaultsInjected+dr.RemoteFallbacks+dr.WorkersLost > 0 {
						pt.Dispatch = &dispatchPoint{
							Retries: dr.Retries, Hedges: dr.Hedges,
							PanicsRecovered: dr.PanicsRecovered, FaultsInjected: dr.FaultsInjected,
							RemoteFallbacks: dr.RemoteFallbacks, WorkersLost: dr.WorkersLost,
						}
					}
					series = append(series, pt)
					fmt.Fprintf(os.Stderr, "eco: n=%d dist=%s shards=%d frac=%g edits=%d dirty=%d/%d full=%.2fs eco=%.3fs scratch=%.2fs speedup=%.1fx wire_ratio=%.4f seam=%.3g\n",
						n, d, k, frac, pt.Edits, pt.DirtyShards, k, tFull, tEco, tScratch, pt.Speedup, pt.WireRatio, pt.SeamSkewPs)
				}
			}
		}
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	if err := enc.Encode(series); err != nil {
		fatal(err)
	}
}

// ecoFailure labels a failed eco-mode routing with its configuration, and
// maps deadline cancellations onto the flag that armed them.
func ecoFailure(stage string, n int, dist string, shards int, err error, timeout time.Duration) error {
	if errors.Is(err, context.DeadlineExceeded) {
		return fmt.Errorf("eco: n=%d dist=%s shards=%d: %s cancelled after %s (-timeout)", n, dist, shards, stage, timeout)
	}
	return fmt.Errorf("eco: n=%d dist=%s shards=%d: %s: %w", n, dist, shards, stage, err)
}

func main() {
	var (
		mode       = flag.String("mode", "groups", "bound | groups | difficulty | offsetfloat | scale | eco")
		circuit    = flag.String("circuit", "r1", "table modes: suite circuit (r1..r5)")
		sizes      = flag.String("sizes", "1000,2000,5000,10000", "scale mode: comma-separated sink counts")
		dist       = flag.String("dist", "uniform", "scale mode: sink placement (uniform | powerlaw)")
		pairer     = flag.String("pairer", "grid", "scale mode: pairing engine (auto | scan | grid | both)")
		seed       = flag.Int64("seed", 9, "scale mode: instance seed")
		suite      = flag.Bool("suite", false, "scale mode: run the LargeSuite circuits (uniform + powerlaw) instead of -sizes/-dist")
		shards     = flag.Int("shards", 0, "scale mode: spatial shards routed concurrently and stitched (0 = off)")
		groups     = flag.Int("groups", 0, "scale mode: also route an intermingled k-group AST-DME variant of every instance, reporting group/seam skew (0 = off)")
		pilot      = flag.Bool("pilot", false, "scale mode: run the grouped variant with the pilot offset pass (requires -groups and -shards)")
		workers    = flag.String("workers", "", "scale mode: comma-separated routeworker addresses (host:port) to ship shard and pilot builds to (requires -shards)")
		outPath    = flag.String("out", "", "scale mode: write the JSON series to this file instead of stdout, e.g. -out BENCH_scale.json for a CI perf artifact")
		tracePath  = flag.String("trace", "", "scale mode: write a JSON phase trace of every measured point to this file (also embeds per-point phase summaries in the series)")
		timeout    = flag.Duration("timeout", 0, "scale mode: abort any single measured build after this long, e.g. 2m (0 = unbounded)")
		editfracs  = flag.String("editfracs", "0.001,0.01", "eco mode: comma-separated edit fractions, each sizing a seeded perturbation script")
		shardcnts  = flag.String("shardcounts", "8", "eco mode: comma-separated shard counts for the cached contract")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write an allocation profile to this file at exit")
	)
	flag.Parse()

	// Flag-combination validation: refuse flags the selected mode would
	// silently ignore, and contradictory scale configurations.
	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
	switch *mode {
	case "scale":
		if set["circuit"] {
			fatal(fmt.Errorf("-circuit selects a table-mode circuit; scale mode uses -sizes/-dist or -suite"))
		}
		for _, f := range []string{"editfracs", "shardcounts"} {
			if set[f] {
				fatal(fmt.Errorf("-%s applies to -mode eco only (current mode %q)", f, *mode))
			}
		}
		if *suite && (set["sizes"] || set["dist"] || set["seed"]) {
			fatal(fmt.Errorf("-suite runs the spec-pinned LargeSuite; it is mutually exclusive with -sizes/-dist/-seed"))
		}
		if *shards > 0 && (*pairer == "scan" || *pairer == "both") {
			fatal(fmt.Errorf("-shards targets scales where the O(n²) scan oracle is impractical; forcing -pairer %s alongside it is almost certainly unintended — drop one", *pairer))
		}
		if *groups == 1 || *groups < 0 {
			fatal(fmt.Errorf("-groups %d: the grouped variant needs ≥ 2 groups (0 = off)", *groups))
		}
		if *pilot {
			if *groups == 0 {
				fatal(fmt.Errorf("-pilot aligns inter-group offsets and applies to the grouped variant; add -groups"))
			}
			if *shards == 0 {
				fatal(fmt.Errorf("-pilot requires -shards ≥ 1 (the pilot pass exists to align shard builds)"))
			}
		}
		if set["timeout"] && *timeout <= 0 {
			fatal(fmt.Errorf("-timeout must be positive (got %v); drop it to run unbounded", *timeout))
		}
		if set["workers"] {
			if *workers == "" {
				fatal(fmt.Errorf("-workers needs at least one host:port address"))
			}
			if *shards == 0 {
				fatal(fmt.Errorf("-workers ships shard builds to routeworkers and requires -shards ≥ 1"))
			}
		}
	case "eco":
		// The eco series fixes the routing configuration by the cached
		// contract: grid pairing, pilot iff grouped, shard counts swept by
		// -shardcounts. Flags that would contradict that are refused rather
		// than silently ignored.
		for _, f := range []string{"circuit", "suite", "pairer", "pilot", "workers", "trace"} {
			if set[f] {
				fatal(fmt.Errorf("-%s does not apply to -mode eco (the eco series fixes the routing configuration; see -editfracs/-shardcounts)", f))
			}
		}
		if set["shards"] {
			fatal(fmt.Errorf("-shards belongs to -mode scale; the eco series sweeps -shardcounts"))
		}
		if set["timeout"] && *timeout <= 0 {
			fatal(fmt.Errorf("-timeout must be positive (got %v); drop it to run unbounded", *timeout))
		}
		if *groups == 1 || *groups < 0 {
			fatal(fmt.Errorf("-groups %d: the grouped eco series needs ≥ 2 groups (0 = single-group)", *groups))
		}
		if !set["groups"] {
			// Grouped + piloted is the contract the tentpole protects; make it
			// the default shape and let -groups 0 opt into the single-group run.
			*groups = 4
		}
	default:
		for _, f := range []string{"sizes", "dist", "pairer", "seed", "suite", "out", "groups", "pilot", "workers", "trace", "timeout"} {
			if set[f] {
				fatal(fmt.Errorf("-%s applies to -mode scale only (current mode %q)", f, *mode))
			}
		}
		for _, f := range []string{"editfracs", "shardcounts"} {
			if set[f] {
				fatal(fmt.Errorf("-%s applies to -mode eco only (current mode %q)", f, *mode))
			}
		}
		if *shards > 0 { // an explicit -shards 0 is the documented "off" and harmless
			fatal(fmt.Errorf("-shards applies to -mode scale only (current mode %q)", *mode))
		}
	}

	out := io.Writer(os.Stdout)
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}()
		out = f
	}

	stopProf, err := profutil.Start(*cpuprofile, *memprofile)
	if err != nil {
		fatal(err)
	}
	defer stopProf()

	if *mode == "scale" {
		runScale(out, *sizes, *dist, *pairer, *seed, *suite, *shards, *groups, *pilot, *workers, *tracePath, *timeout)
		return
	}
	if *mode == "eco" {
		runEco(out, *sizes, *dist, *editfracs, *shardcnts, *groups, *seed, *timeout)
		return
	}

	sp, err := bench.BySuiteName(*circuit)
	if err != nil {
		fatal(err)
	}
	base := bench.Generate(sp)

	switch *mode {
	case "bound":
		fmt.Println("bound_ps,wirelen,skew_ps")
		for _, bound := range []float64{0, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000} {
			res, err := core.EXTBST(base, bound, core.Options{})
			if err != nil {
				fatal(err)
			}
			rep := analyze(res, base)
			fmt.Printf("%g,%.0f,%.2f\n", bound, res.Wirelength, rep.GlobalSkew)
		}
	case "groups":
		ext, err := core.EXTBST(base, experiments.EXTBoundPs, core.Options{})
		if err != nil {
			fatal(err)
		}
		fmt.Println("grouping,k,wirelen,reduction_pct,maxskew_ps,groupskew_ps")
		for _, grouping := range []string{"clustered", "intermingled"} {
			for _, k := range []int{2, 4, 6, 8, 10, 12, 16} {
				var in *ctree.Instance
				if grouping == "clustered" {
					in = bench.Clustered(base, k)
				} else {
					in = bench.Intermingled(base, k, sp.Seed*1000+int64(k))
				}
				res, err := core.Build(in, core.Options{IntraSkewBound: experiments.ASTIntraBoundPs})
				if err != nil {
					fatal(err)
				}
				rep := analyze(res, in)
				fmt.Printf("%s,%d,%.0f,%.2f,%.1f,%.1f\n", grouping, k, res.Wirelength,
					100*(ext.Wirelength-res.Wirelength)/ext.Wirelength,
					rep.GlobalSkew, rep.MaxGroupSkew)
			}
		}
	case "difficulty":
		ext, err := core.EXTBST(base, experiments.EXTBoundPs, core.Options{})
		if err != nil {
			fatal(err)
		}
		fmt.Println("mix,wirelen,reduction_pct,maxskew_ps,groupskew_ps")
		for _, mix := range []float64{0, 0.1, 0.25, 0.5, 0.75, 1} {
			in := bench.Blend(base, 6, mix, sp.Seed*7)
			res, err := core.Build(in, core.Options{IntraSkewBound: experiments.ASTIntraBoundPs})
			if err != nil {
				fatal(err)
			}
			rep := analyze(res, in)
			fmt.Printf("%.2f,%.0f,%.2f,%.1f,%.1f\n", mix, res.Wirelength,
				100*(ext.Wirelength-res.Wirelength)/ext.Wirelength,
				rep.GlobalSkew, rep.MaxGroupSkew)
		}
	case "offsetfloat":
		in := bench.Intermingled(base, 6, sp.Seed*1000+6)
		fmt.Println("inter_window_ps,wirelen,maxskew_ps,groupskew_ps")
		for _, w := range []float64{0, 10, 20, 40, 80, 120} {
			res, err := core.Build(in, core.Options{
				IntraSkewBound: experiments.ASTIntraBoundPs, InterSkewBound: w,
			})
			if err != nil {
				fatal(err)
			}
			rep := analyze(res, in)
			fmt.Printf("%g,%.0f,%.1f,%.1f\n", w, res.Wirelength, rep.GlobalSkew, rep.MaxGroupSkew)
		}
	default:
		fatal(fmt.Errorf("unknown mode %q", *mode))
	}
}

func analyze(res *core.Result, in *ctree.Instance) *eval.Report {
	return eval.Analyze(res.Root, in, core.DefaultModel(), in.Source)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sweep:", err)
	os.Exit(1)
}
