// Command sweep produces CSV data for the parameter studies behind the
// figures of EXPERIMENTS.md:
//
//	sweep -mode bound      # bounded-skew wirelength vs skew bound (Fig. 1 curve)
//	sweep -mode groups     # AST-DME vs EXT-BST vs #groups, both groupings
//	sweep -mode difficulty # AST-DME gain vs degree of intermingling (Blend)
//	sweep -mode offsetfloat# wire/skew trade-off of the InterSkewBound knob
//
// All modes accept -circuit (r1..r5, default r1) and write CSV to stdout.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/ctree"
	"repro/internal/eval"
	"repro/internal/experiments"
)

func main() {
	var (
		mode    = flag.String("mode", "groups", "bound | groups | difficulty | offsetfloat")
		circuit = flag.String("circuit", "r1", "suite circuit (r1..r5)")
	)
	flag.Parse()

	sp, err := bench.BySuiteName(*circuit)
	if err != nil {
		fatal(err)
	}
	base := bench.Generate(sp)

	switch *mode {
	case "bound":
		fmt.Println("bound_ps,wirelen,skew_ps")
		for _, bound := range []float64{0, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000} {
			res, err := core.EXTBST(base, bound, core.Options{})
			if err != nil {
				fatal(err)
			}
			rep := analyze(res, base)
			fmt.Printf("%g,%.0f,%.2f\n", bound, res.Wirelength, rep.GlobalSkew)
		}
	case "groups":
		ext, err := core.EXTBST(base, experiments.EXTBoundPs, core.Options{})
		if err != nil {
			fatal(err)
		}
		fmt.Println("grouping,k,wirelen,reduction_pct,maxskew_ps,groupskew_ps")
		for _, grouping := range []string{"clustered", "intermingled"} {
			for _, k := range []int{2, 4, 6, 8, 10, 12, 16} {
				var in *ctree.Instance
				if grouping == "clustered" {
					in = bench.Clustered(base, k)
				} else {
					in = bench.Intermingled(base, k, sp.Seed*1000+int64(k))
				}
				res, err := core.Build(in, core.Options{IntraSkewBound: experiments.ASTIntraBoundPs})
				if err != nil {
					fatal(err)
				}
				rep := analyze(res, in)
				fmt.Printf("%s,%d,%.0f,%.2f,%.1f,%.1f\n", grouping, k, res.Wirelength,
					100*(ext.Wirelength-res.Wirelength)/ext.Wirelength,
					rep.GlobalSkew, rep.MaxGroupSkew)
			}
		}
	case "difficulty":
		ext, err := core.EXTBST(base, experiments.EXTBoundPs, core.Options{})
		if err != nil {
			fatal(err)
		}
		fmt.Println("mix,wirelen,reduction_pct,maxskew_ps,groupskew_ps")
		for _, mix := range []float64{0, 0.1, 0.25, 0.5, 0.75, 1} {
			in := bench.Blend(base, 6, mix, sp.Seed*7)
			res, err := core.Build(in, core.Options{IntraSkewBound: experiments.ASTIntraBoundPs})
			if err != nil {
				fatal(err)
			}
			rep := analyze(res, in)
			fmt.Printf("%.2f,%.0f,%.2f,%.1f,%.1f\n", mix, res.Wirelength,
				100*(ext.Wirelength-res.Wirelength)/ext.Wirelength,
				rep.GlobalSkew, rep.MaxGroupSkew)
		}
	case "offsetfloat":
		in := bench.Intermingled(base, 6, sp.Seed*1000+6)
		fmt.Println("inter_window_ps,wirelen,maxskew_ps,groupskew_ps")
		for _, w := range []float64{0, 10, 20, 40, 80, 120} {
			res, err := core.Build(in, core.Options{
				IntraSkewBound: experiments.ASTIntraBoundPs, InterSkewBound: w,
			})
			if err != nil {
				fatal(err)
			}
			rep := analyze(res, in)
			fmt.Printf("%g,%.0f,%.1f,%.1f\n", w, res.Wirelength, rep.GlobalSkew, rep.MaxGroupSkew)
		}
	default:
		fatal(fmt.Errorf("unknown mode %q", *mode))
	}
}

func analyze(res *core.Result, in *ctree.Instance) *eval.Report {
	return eval.Analyze(res.Root, in, core.DefaultModel(), in.Source)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sweep:", err)
	os.Exit(1)
}
