package main

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestRunScaleSurfacesRemoteFallbacks pins satellite coverage for the
// dispatch fields of the scale series: a sweep pointed at an unreachable
// worker fleet must still complete (graceful in-process degradation) and
// its JSON points must say so via dispatch.remote_fallbacks.
func TestRunScaleSurfacesRemoteFallbacks(t *testing.T) {
	var buf bytes.Buffer
	// Port 1 refuses connections; every shard task degrades in-process.
	runScale(&buf, "300", "uniform", "grid", 1, false, 2, 0, false, "127.0.0.1:1", "", 0)
	var series []scalePoint
	if err := json.Unmarshal(buf.Bytes(), &series); err != nil {
		t.Fatalf("series is not JSON: %v\n%s", err, buf.String())
	}
	if len(series) == 0 {
		t.Fatal("empty series")
	}
	for _, pt := range series {
		if pt.Dispatch == nil {
			t.Fatalf("point n=%d has no dispatch block despite a dead fleet", pt.Sinks)
		}
		if pt.Dispatch.RemoteFallbacks == 0 {
			t.Errorf("point n=%d: remote_fallbacks = 0, want > 0", pt.Sinks)
		}
		if pt.Wirelength <= 0 {
			t.Errorf("point n=%d: implausible wirelength %v", pt.Sinks, pt.Wirelength)
		}
	}
}

// TestRunScaleLocalHasNoDispatchBlock pins the omitempty contract: an
// undisturbed local sweep carries no dispatch noise in its points.
func TestRunScaleLocalHasNoDispatchBlock(t *testing.T) {
	var buf bytes.Buffer
	runScale(&buf, "300", "uniform", "grid", 1, false, 2, 0, false, "", "", 0)
	var series []scalePoint
	if err := json.Unmarshal(buf.Bytes(), &series); err != nil {
		t.Fatalf("series is not JSON: %v", err)
	}
	for _, pt := range series {
		if pt.Dispatch != nil {
			t.Errorf("point n=%d carries a dispatch block on a clean local run: %+v", pt.Sinks, pt.Dispatch)
		}
	}
}
