// Command tables regenerates the thesis's evaluation tables: Table I
// (clusters of sink groups) and Table II (intermingled sink groups), each
// comparing AST-DME against the EXT-BST baseline on the r1–r5 circuits.
//
// Usage:
//
//	tables              # both tables, full suite (minutes)
//	tables -table 2     # only Table II
//	tables -quick       # r1–r2 only (seconds), for smoke runs
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
	"repro/internal/experiments"
)

func main() {
	var (
		table   = flag.Int("table", 0, "which table to run: 1, 2, or 0 for both")
		quick   = flag.Bool("quick", false, "run only r1–r2")
		repeats = flag.Int("repeats", 1, "grouping seeds per intermingled row (means reported)")
	)
	flag.Parse()

	circuits := bench.Suite()
	if *quick {
		circuits = circuits[:2]
	}

	run := func(no int, grouping experiments.Grouping) {
		rows, err := experiments.TableRepeated(grouping, circuits, experiments.GroupCounts, *repeats)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tables:", err)
			os.Exit(1)
		}
		title := fmt.Sprintf("Table %s — EXT-BST vs AST-DME with %s sink groups (thesis Ch. VI)",
			roman(no), grouping)
		experiments.WriteTable(os.Stdout, title, rows)
		fmt.Println()
	}
	if *table == 0 || *table == 1 {
		run(1, experiments.Clustered)
	}
	if *table == 0 || *table == 2 {
		run(2, experiments.Intermingled)
	}
}

func roman(n int) string {
	if n == 1 {
		return "I"
	}
	return "II"
}
