// Clustered-groups scenario (thesis Table I): the die is cut into rectangles
// and sinks grouped by rectangle, so groups rarely interleave. AST-DME's
// freedom then appears mostly at cluster boundaries and the reductions stay
// small — the thesis's first experiment, reproduced here on one circuit with
// the inter-group offsets reported as the by-product skews S_{i,j}.
//
//	go run ./examples/clustered
package main

import (
	"fmt"
	"log"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/ctree"
	"repro/internal/eval"
)

func main() {
	base := bench.Small(400, 23)
	ext, err := core.EXTBST(base, 10, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("EXT-BST baseline: wire %.0f\n\n", ext.Wirelength)

	for _, k := range []int{4, 6, 8, 10} {
		in := bench.Clustered(base, k)
		ast, err := core.Build(in, core.Options{IntraSkewBound: 10})
		if err != nil {
			log.Fatal(err)
		}
		rep := eval.Analyze(ast.Root, in, core.DefaultModel(), in.Source)

		fmt.Printf("k=%2d: wire %.0f (%+.2f%% vs EXT-BST), global skew %.0f ps, worst group skew %.1f ps\n",
			k, ast.Wirelength, 100*(ext.Wirelength-ast.Wirelength)/ext.Wirelength,
			rep.GlobalSkew, rep.MaxGroupSkew)

		// Inter-group offsets: mean arrival per group relative to group 0 —
		// the S_{i,j} by-product the thesis formulates (Ch. II).
		means := groupMeans(rep, in)
		fmt.Printf("      group offsets vs G0 (ps):")
		for g := 1; g < k; g++ {
			fmt.Printf(" %+.0f", means[g]-means[0])
		}
		fmt.Println()
	}
}

func groupMeans(rep *eval.Report, in *ctree.Instance) []float64 {
	sum := make([]float64, in.NumGroups)
	cnt := make([]float64, in.NumGroups)
	for _, s := range in.Sinks {
		sum[s.Group] += rep.SinkDelay[s.ID]
		cnt[s.Group]++
	}
	for g := range sum {
		sum[g] /= cnt[g]
	}
	return sum
}
