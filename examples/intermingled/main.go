// Intermingled-groups scenario: the thesis's "difficult instances". Sweeps
// the number of randomly intermingled sink groups on one circuit, comparing
// AST-DME against EXT-BST and against the separate-trees-and-stitch approach
// of the prior work, and writes SVG renderings for visual comparison
// (stitch shows the wire overlap of thesis Fig. 2(a)).
//
//	go run ./examples/intermingled
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/ctree"
	"repro/internal/eval"
	"repro/internal/stitch"
	"repro/internal/svgplot"
)

func main() {
	base := bench.Small(300, 11)
	ext, err := core.EXTBST(base, 10, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("EXT-BST baseline: wire %.0f (global skew ≤ 10 ps)\n\n", ext.Wirelength)
	fmt.Printf("%7s %12s %12s %10s %10s %12s\n",
		"#groups", "AST wire", "stitch wire", "AST skew", "grp skew", "stitch/AST")

	for _, k := range []int{2, 4, 6, 8, 10} {
		in := bench.Intermingled(base, k, int64(k)*31)
		ast, err := core.Build(in, core.Options{IntraSkewBound: 10})
		if err != nil {
			log.Fatal(err)
		}
		st, err := stitch.Build(in, stitch.Options{})
		if err != nil {
			log.Fatal(err)
		}
		rep := eval.Analyze(ast.Root, in, core.DefaultModel(), in.Source)
		fmt.Printf("%7d %12.0f %12.0f %9.1f %9.1f %11.2fx\n",
			k, ast.Wirelength, st.Wirelength, rep.GlobalSkew, rep.MaxGroupSkew,
			st.Wirelength/ast.Wirelength)

		if k == 6 {
			writeSVG("intermingled-ast.svg", ast.Root, in, fmt.Sprintf("AST-DME k=%d wire %.0f", k, ast.Wirelength))
			writeSVG("intermingled-stitch.svg", st.Root, in, fmt.Sprintf("stitch k=%d wire %.0f", k, st.Wirelength))
		}
	}
	fmt.Println("\nSVGs written: intermingled-ast.svg, intermingled-stitch.svg")
	fmt.Println("(the stitch rendering shows the per-group tree overlap of thesis Fig. 2a)")
}

func writeSVG(path string, root *ctree.Node, in *ctree.Instance, title string) {
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := svgplot.Render(f, root, in, svgplot.Options{Title: title}); err != nil {
		log.Fatal(err)
	}
}
