// Quickstart: route a small associative-skew instance with AST-DME and
// compare it against the zero-skew (greedy-DME) and bounded-skew (EXT-BST)
// baselines.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/ctree"
	"repro/internal/eval"
)

func main() {
	// A 200-sink circuit with 5 sink groups randomly intermingled over the
	// die — the thesis's "difficult instances".
	base := bench.Small(200, 42)
	in := bench.Intermingled(base, 5, 7)

	fmt.Printf("instance: %d sinks, %d intermingled groups\n\n", len(in.Sinks), in.NumGroups)

	// Zero-skew baseline: every sink pair equalized exactly.
	zst, err := core.ZST(in, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	report("greedy-DME (zero skew)", zst, in)

	// Bounded-skew baseline: all sinks within 10 ps, groups ignored.
	ext, err := core.EXTBST(in, 10, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	report("EXT-BST (10 ps global)", ext, in)

	// AST-DME: skew bounded at 10 ps only within each group; the inter-group
	// skews float (the paper's associative skew).
	ast, err := core.Build(in, core.Options{IntraSkewBound: 10})
	if err != nil {
		log.Fatal(err)
	}
	report("AST-DME (10 ps per group)", ast, in)

	fmt.Printf("AST-DME wire vs zero-skew: %+.2f%%\n",
		100*(ast.Wirelength-zst.Wirelength)/zst.Wirelength)
	fmt.Printf("AST-DME wire vs EXT-BST:   %+.2f%%\n",
		100*(ast.Wirelength-ext.Wirelength)/ext.Wirelength)
}

func report(name string, res *core.Result, in *ctree.Instance) {
	rep := eval.Analyze(res.Root, in, core.DefaultModel(), in.Source)
	fmt.Printf("%-26s wire %10.0f  global skew %7.2f ps  worst group skew %6.2f ps\n",
		name, res.Wirelength, rep.GlobalSkew, rep.MaxGroupSkew)
}
