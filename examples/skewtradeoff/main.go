// Skew/wirelength trade-off (thesis Fig. 1): sweeps the global skew bound of
// bounded-skew routing from exact zero skew to effectively unconstrained and
// prints the resulting wirelength — the curve whose two endpoints Fig. 1
// contrasts (zero-skew wirelength 17 vs bounded-skew 16 on the thesis's toy
// example, reproduced exactly in the experiments package tests).
//
//	go run ./examples/skewtradeoff
package main

import (
	"fmt"
	"log"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/experiments"
)

func main() {
	// The thesis's toy example first, under the pathlength model.
	fig1, err := experiments.Fig1(1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("thesis Fig.1 instance (pathlength model):\n")
	fmt.Printf("  zero skew:        wire %.1f, skew %.1f\n", fig1.ZSTWire, fig1.ZSTSkew)
	fmt.Printf("  bounded skew (%g): wire %.1f, skew %.1f\n\n", fig1.Bound, fig1.BSTWire, fig1.BSTSkew)

	// The full curve on a realistic circuit under the Elmore model.
	in := bench.Small(400, 17)
	zstWire := 0.0
	fmt.Printf("bounded-skew trade-off, 400 sinks (Elmore model):\n")
	fmt.Printf("%10s %12s %12s %10s\n", "bound(ps)", "wire", "vs ZST", "skew(ps)")
	for _, bound := range []float64{0, 5, 10, 25, 50, 100, 250, 500, 1000, 2500} {
		res, err := core.EXTBST(in, bound, core.Options{})
		if err != nil {
			log.Fatal(err)
		}
		if bound == 0 {
			zstWire = res.Wirelength
		}
		rep := eval.Analyze(res.Root, in, core.DefaultModel(), in.Source)
		fmt.Printf("%10.0f %12.0f %+11.2f%% %10.1f\n",
			bound, res.Wirelength, 100*(res.Wirelength-zstWire)/zstWire, rep.GlobalSkew)
	}
	fmt.Println("\n(the relaxed bound buys wirelength — the BST mechanism AST-DME applies per group)")
}
