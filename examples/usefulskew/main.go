// Useful-skew scheduling: the thesis's introduction surveys prescribed-skew
// routing (its refs [6–8]) where inter-group skews are deliberately non-zero
// to improve operating frequency — e.g. giving a slow pipeline stage's
// capture registers a late clock. This example prescribes explicit
// inter-group offsets (core.Options.GroupOffsets, the thesis's Ch. II
// "specify the inter-group skew explicitly") and pairwise ranges
// (core.Options.PairConstraints), then verifies the routed tree realizes
// them.
//
//	go run ./examples/usefulskew
package main

import (
	"fmt"
	"log"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/eval"
)

func main() {
	// Three intermingled register groups: launch stage, a slow combinational
	// stage's capture registers (given +80 ps of useful skew), and a fast
	// stage's capture registers (clocked 40 ps early).
	in := bench.Intermingled(bench.Small(150, 31), 3, 17)
	targets := []float64{0, +80, -40}

	res, err := core.Build(in, core.Options{
		IntraSkewBound: 10,
		GroupOffsets:   targets,
	})
	if err != nil {
		log.Fatal(err)
	}
	rep := eval.Analyze(res.Root, in, core.DefaultModel(), in.Source)

	mean := make([]float64, in.NumGroups)
	cnt := make([]float64, in.NumGroups)
	for _, s := range in.Sinks {
		mean[s.Group] += rep.SinkDelay[s.ID]
		cnt[s.Group]++
	}
	for g := range mean {
		mean[g] /= cnt[g]
	}

	fmt.Printf("prescribed-skew routing, %d sinks, 3 groups, wire %.0f\n\n", len(in.Sinks), res.Wirelength)
	fmt.Printf("%-8s %12s %12s %12s %14s\n", "group", "target(ps)", "achieved", "error", "intra skew(ps)")
	for g := 0; g < in.NumGroups; g++ {
		achieved := mean[g] - mean[0]
		fmt.Printf("G%-7d %12.0f %12.1f %12.1f %14.1f\n",
			g, targets[g], achieved, achieved-targets[g], rep.GroupSkew[g])
	}

	// The same machinery accepts pairwise ranges instead of exact targets —
	// the "local bound" constraint form of the thesis's survey.
	res2, err := core.Build(in, core.Options{
		IntraSkewBound: 10,
		PairConstraints: []core.PairConstraint{
			{I: 0, J: 1, MinPs: 60, MaxPs: 100},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	rep2 := eval.Analyze(res2.Root, in, core.DefaultModel(), in.Source)
	m := rep2.PairSkews(in)
	fmt.Printf("\nwith a pairwise range instead (G1 − G0 ∈ [60,100] ps): measured range [%.1f, %.1f]\n",
		m[0][1][0], m[0][1][1])
}
