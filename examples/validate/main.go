// Delay-model validation (thesis Ch. III): routes a tree with the Elmore
// model, then re-simulates it with the spicelite transient RC solver and
// compares delays and skews — reproducing the thesis's argument that Elmore
// delay errors largely cancel when computing skew.
//
//	go run ./examples/validate
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/spicelite"
)

func main() {
	in := bench.Small(60, 5)
	res, err := core.ZST(in, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	rep := eval.Analyze(res.Root, in, core.DefaultModel(), in.Source)

	sim, err := spicelite.Simulate(res.Root, in, spicelite.Params{
		ROhmPerUnit: 0.1, CFFPerUnit: 0.02,
	})
	if err != nil {
		log.Fatal(err)
	}

	var maxErr, meanEl, meanTr float64
	for id := range in.Sinks {
		el, tr := rep.SinkDelay[id], sim.Delay[id]
		meanEl += el
		meanTr += tr
		maxErr = math.Max(maxErr, math.Abs(el-tr))
	}
	n := float64(len(in.Sinks))
	meanEl /= n
	meanTr /= n

	fmt.Printf("zero-skew tree, %d sinks, %d RC nodes simulated\n\n", len(in.Sinks), sim.Nodes)
	fmt.Printf("%-28s %12s %12s\n", "", "Elmore", "transient")
	fmt.Printf("%-28s %10.1f ps %10.1f ps\n", "mean sink delay", meanEl, meanTr)
	fmt.Printf("%-28s %10.2f ps %10.2f ps\n", "skew (max-min)", rep.GlobalSkew, sim.Skew())
	fmt.Printf("\nworst per-sink delay error: %.1f ps (%.1f%% of delay)\n",
		maxErr, 100*maxErr/meanTr)
	fmt.Printf("skew error:                 %.2f ps (%.3f%% of delay)\n",
		math.Abs(rep.GlobalSkew-sim.Skew()), 100*math.Abs(rep.GlobalSkew-sim.Skew())/meanTr)
	fmt.Println("\nthe delay error is large, the skew error tiny — the cancellation the")
	fmt.Println("thesis relies on to justify Elmore-based skew management (Ch. III)")
}
