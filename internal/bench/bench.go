// Package bench reconstructs the r1–r5 clock routing benchmark suite used by
// the thesis's experiments (originally from the bounded-skew literature) and
// provides the two sink-grouping generators of Chapter VI:
//
//   - Clustered: the die is divided into as many rectangles as groups and
//     sinks share a group iff they share a rectangle (experiment 1);
//   - Intermingled: sinks are assigned to groups uniformly at random, so
//     groups interpenetrate geometrically (experiment 2, the "difficult
//     instances").
//
// The original r1–r5 coordinate files are not available offline, so the
// instances are synthesized with the published sink counts, uniform-random
// sink placements over a die scaled with sqrt(n) (keeping wirelengths at the
// paper's order of magnitude), and random sink load capacitances, all under
// fixed seeds for reproducibility. See DESIGN.md §3 for why this preserves
// the paper's shape-level conclusions.
package bench

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/ctree"
	"repro/internal/geom"
)

// Spec describes one synthetic benchmark circuit.
type Spec struct {
	Name  string
	Sinks int
	// Side is the die edge length in layout units.
	Side float64
	// Seed fixes the pseudo-random placement.
	Seed int64
	// Dist selects the sink placement: "" or "uniform" for uniform-random
	// over the die, "powerlaw" for the clustered power-law placement
	// (PowerLaw with the standard 32 clusters at α = 1.5).
	Dist string
}

// Standard power-law placement parameters used by the "powerlaw" specs and
// the scale sweeps: 32 clusters with weight c^−1.5.
const (
	PowerLawClusters = 32
	PowerLawAlpha    = 1.5
)

// side returns the default die edge for n sinks: proportional to sqrt(n) so
// that average sink density — and thus wirelength per sink — matches across
// custom instances.
func side(n int) float64 { return 3200 * math.Sqrt(float64(n)) }

// Suite returns the five circuits with the thesis's sink counts
// (r1: 267 … r5: 3101). Die edges are calibrated per circuit so that the
// EXT-BST wirelengths land at the magnitudes the thesis reports (its Table I
// column 4: 1.07e6 for r1 up to 8.03e6 for r5); the original benchmarks'
// densities varied across circuits, so a single density constant cannot
// match all five.
func Suite() []Spec {
	specs := []Spec{
		{Name: "r1", Sinks: 267, Side: 52300},
		{Name: "r2", Sinks: 598, Side: 70900},
		{Name: "r3", Sinks: 862, Side: 74300},
		{Name: "r4", Sinks: 1903, Side: 99700},
		{Name: "r5", Sinks: 3101, Side: 115200},
	}
	for i := range specs {
		specs[i].Seed = int64(1000 + i)
	}
	return specs
}

// LargeSuite returns the large-instance scaling circuits introduced with
// the spatial pairing subsystem, an order of magnitude and more beyond the
// thesis's r5: 10k, 50k and 100k sinks uniform over a √n-scaled die
// (l10k/l50k/l100k), plus the power-law-clustered counterparts
// (p10k/p50k/p100k) that stress the spatial grid's cell adaptation — the
// clustered-placement gap the scale sweeps track longitudinally. These are
// the instances the sub-quadratic pairer exists for; the all-pairs oracle
// is impractical on them.
func LargeSuite() []Spec {
	return []Spec{
		{Name: "l10k", Sinks: 10_000, Side: side(10_000), Seed: 1100},
		{Name: "l50k", Sinks: 50_000, Side: side(50_000), Seed: 1101},
		{Name: "l100k", Sinks: 100_000, Side: side(100_000), Seed: 1102},
		{Name: "p10k", Sinks: 10_000, Side: side(10_000), Seed: 1100, Dist: "powerlaw"},
		{Name: "p50k", Sinks: 50_000, Side: side(50_000), Seed: 1101, Dist: "powerlaw"},
		{Name: "p100k", Sinks: 100_000, Side: side(100_000), Seed: 1102, Dist: "powerlaw"},
	}
}

// BySuiteName returns the named circuit spec ("r1".."r5", or the scaling
// instances l10k/l50k/l100k and p10k/p50k/p100k).
func BySuiteName(name string) (Spec, error) {
	for _, s := range append(Suite(), LargeSuite()...) {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("bench: unknown circuit %q (want r1..r5, l10k/l50k/l100k, or p10k/p50k/p100k)", name)
}

// Sink load capacitance range (fF), uniform.
const (
	minSinkCapFF = 5
	maxSinkCapFF = 50
)

// Generate materializes the circuit with a single sink group (group 0),
// honoring the spec's placement distribution. Use Clustered or Intermingled
// to impose a k-group structure.
func Generate(sp Spec) *ctree.Instance {
	if sp.Dist == "powerlaw" {
		edge := sp.Side
		if !(edge > 0) {
			edge = side(sp.Sinks)
		}
		in := powerLawSized(sp.Sinks, PowerLawClusters, PowerLawAlpha, sp.Seed, edge)
		in.Name = sp.Name
		return in
	}
	r := rand.New(rand.NewSource(sp.Seed))
	in := &ctree.Instance{
		Name:      sp.Name,
		Sinks:     make([]ctree.Sink, sp.Sinks),
		Source:    geom.Point{X: sp.Side / 2, Y: sp.Side / 2},
		NumGroups: 1,
	}
	for i := range in.Sinks {
		in.Sinks[i] = ctree.Sink{
			ID:    i,
			Loc:   geom.Point{X: r.Float64() * sp.Side, Y: r.Float64() * sp.Side},
			CapFF: minSinkCapFF + r.Float64()*(maxSinkCapFF-minSinkCapFF),
			Group: 0,
		}
	}
	return in
}

// gridShape factors k into rows×cols with rows ≤ cols and rows·cols = k,
// maximizing rows (squarest grid). Prime k degenerates to 1×k.
func gridShape(k int) (rows, cols int) {
	rows = 1
	for r := 2; r*r <= k; r++ {
		if k%r == 0 {
			rows = r
		}
	}
	return rows, k / rows
}

// Clustered returns a copy of the instance with k groups induced by dividing
// the die bounding box into a rows×cols rectangle grid (experiment 1 of the
// thesis: "if sinks are in the same rectangle space, they are in the same
// group"). Rare empty rectangles are filled by moving the nearest sink's
// group label, keeping every group non-empty.
func Clustered(base *ctree.Instance, k int) *ctree.Instance {
	in := clone(base)
	in.NumGroups = k
	if k == 1 {
		for i := range in.Sinks {
			in.Sinks[i].Group = 0
		}
		return in
	}
	rows, cols := gridShape(k)
	xmin, ymin, xmax, ymax := boundsOf(in)
	w := (xmax - xmin) / float64(cols)
	h := (ymax - ymin) / float64(rows)
	boxIdx := func(p geom.Point) int {
		c := int((p.X - xmin) / w)
		r := int((p.Y - ymin) / h)
		if c >= cols {
			c = cols - 1
		}
		if r >= rows {
			r = rows - 1
		}
		return r*cols + c
	}
	count := make([]int, k)
	for i := range in.Sinks {
		g := boxIdx(in.Sinks[i].Loc)
		in.Sinks[i].Group = g
		count[g]++
	}
	// Guarantee non-empty groups: steal the sink nearest each empty box's
	// center from a group that can spare one.
	for g := 0; g < k; g++ {
		if count[g] > 0 {
			continue
		}
		cx := xmin + (float64(g%cols)+0.5)*w
		cy := ymin + (float64(g/cols)+0.5)*h
		best, bestD := -1, math.Inf(1)
		for i := range in.Sinks {
			if count[in.Sinks[i].Group] <= 1 {
				continue
			}
			d := geom.Dist(in.Sinks[i].Loc, geom.Point{X: cx, Y: cy})
			if d < bestD {
				best, bestD = i, d
			}
		}
		count[in.Sinks[best].Group]--
		in.Sinks[best].Group = g
		count[g]++
	}
	in.Name = fmt.Sprintf("%s-clustered-k%d", base.Name, k)
	return in
}

// Intermingled returns a copy of the instance with k groups assigned by a
// seeded random shuffle with round-robin balancing, so every group spreads
// over the whole die (experiment 2 of the thesis, the difficult instances).
func Intermingled(base *ctree.Instance, k int, seed int64) *ctree.Instance {
	in := clone(base)
	in.NumGroups = k
	perm := rand.New(rand.NewSource(seed)).Perm(len(in.Sinks))
	for pos, i := range perm {
		in.Sinks[i].Group = pos % k
	}
	in.Name = fmt.Sprintf("%s-intermingled-k%d", base.Name, k)
	return in
}

// Blend returns a copy of the instance whose k groups interpolate between
// the two experiments: each sink keeps its Clustered group with probability
// 1−mix and is reassigned uniformly at random with probability mix. mix=0
// reproduces Clustered, mix=1 is statistically equivalent to Intermingled.
// The knob sweeps the "difficulty" axis of the thesis's title: instances get
// harder as the sink groups interpenetrate.
func Blend(base *ctree.Instance, k int, mix float64, seed int64) *ctree.Instance {
	if mix < 0 {
		mix = 0
	}
	if mix > 1 {
		mix = 1
	}
	in := Clustered(base, k)
	r := rand.New(rand.NewSource(seed))
	for i := range in.Sinks {
		if r.Float64() < mix {
			in.Sinks[i].Group = r.Intn(k)
		}
	}
	// Re-fill any group emptied by the reassignment.
	count := make([]int, k)
	for _, s := range in.Sinks {
		count[s.Group]++
	}
	for g := 0; g < k; g++ {
		for count[g] == 0 {
			i := r.Intn(len(in.Sinks))
			if count[in.Sinks[i].Group] > 1 {
				count[in.Sinks[i].Group]--
				in.Sinks[i].Group = g
				count[g]++
			}
		}
	}
	in.Name = fmt.Sprintf("%s-blend%.2f-k%d", base.Name, mix, k)
	return in
}

func clone(in *ctree.Instance) *ctree.Instance {
	out := *in
	out.Sinks = append([]ctree.Sink(nil), in.Sinks...)
	return &out
}

func boundsOf(in *ctree.Instance) (xmin, ymin, xmax, ymax float64) {
	xmin, ymin = math.Inf(1), math.Inf(1)
	xmax, ymax = math.Inf(-1), math.Inf(-1)
	for _, s := range in.Sinks {
		xmin = math.Min(xmin, s.Loc.X)
		xmax = math.Max(xmax, s.Loc.X)
		ymin = math.Min(ymin, s.Loc.Y)
		ymax = math.Max(ymax, s.Loc.Y)
	}
	return
}

// Small returns a small n-sink instance for tests and examples, uniform over
// a die sized for n, with a fixed seed.
func Small(n int, seed int64) *ctree.Instance {
	sp := Spec{Name: fmt.Sprintf("small%d", n), Sinks: n, Side: side(n), Seed: seed}
	return Generate(sp)
}

// PowerLaw generates an n-sink instance whose sinks concentrate around
// cluster centers with power-law populations: cluster c (1-based) receives
// weight c^−alpha, centers are uniform over a die sized for n, and members
// scatter around their center with Gaussian spread σ = side/(4·√clusters),
// clamped to the die. alpha in [1, 2] yields a few dense hot spots over a
// sparse background — the clustered placement of the large-instance scaling
// scenarios, as opposed to the uniform placement of Generate, and a
// stress case for the spatial grid's fixed cell size (hot cells hold many
// items, empty regions many empty cells). alpha = 0 degenerates to equal
// cluster sizes; clusters = 1 to a single Gaussian blob.
func PowerLaw(n, clusters int, alpha float64, seed int64) *ctree.Instance {
	return powerLawSized(n, clusters, alpha, seed, side(n))
}

// powerLawSized is PowerLaw on an explicit die edge (Generate passes the
// spec's Side so powerlaw and uniform specs compare on equal dies).
func powerLawSized(n, clusters int, alpha float64, seed int64, s float64) *ctree.Instance {
	if clusters < 1 {
		clusters = 1
	}
	r := rand.New(rand.NewSource(seed))
	centers := make([]geom.Point, clusters)
	for c := range centers {
		centers[c] = geom.Point{X: r.Float64() * s, Y: r.Float64() * s}
	}
	// Cumulative power-law weights for cluster sampling.
	cum := make([]float64, clusters)
	total := 0.0
	for c := 0; c < clusters; c++ {
		total += math.Pow(float64(c+1), -alpha)
		cum[c] = total
	}
	sigma := s / (4 * math.Sqrt(float64(clusters)))
	clamp := func(v float64) float64 { return math.Min(math.Max(v, 0), s) }
	in := &ctree.Instance{
		Name:      fmt.Sprintf("powerlaw%d-c%d", n, clusters),
		Sinks:     make([]ctree.Sink, n),
		Source:    geom.Point{X: s / 2, Y: s / 2},
		NumGroups: 1,
	}
	for i := range in.Sinks {
		u := r.Float64() * total
		c := sort.SearchFloat64s(cum, u)
		if c >= clusters {
			c = clusters - 1
		}
		in.Sinks[i] = ctree.Sink{
			ID: i,
			Loc: geom.Point{
				X: clamp(centers[c].X + r.NormFloat64()*sigma),
				Y: clamp(centers[c].Y + r.NormFloat64()*sigma),
			},
			CapFF: minSinkCapFF + r.Float64()*(maxSinkCapFF-minSinkCapFF),
			Group: 0,
		}
	}
	return in
}
