package bench

import (
	"math"
	"testing"

	"repro/internal/ctree"
	"repro/internal/geom"
)

func TestSuiteSinkCounts(t *testing.T) {
	want := map[string]int{"r1": 267, "r2": 598, "r3": 862, "r4": 1903, "r5": 3101}
	suite := Suite()
	if len(suite) != 5 {
		t.Fatalf("suite size = %d", len(suite))
	}
	for _, sp := range suite {
		if want[sp.Name] != sp.Sinks {
			t.Errorf("%s sinks = %d, want %d", sp.Name, sp.Sinks, want[sp.Name])
		}
		in := Generate(sp)
		if err := in.Validate(); err != nil {
			t.Errorf("%s invalid: %v", sp.Name, err)
		}
		if len(in.Sinks) != sp.Sinks {
			t.Errorf("%s generated %d sinks", sp.Name, len(in.Sinks))
		}
		for _, s := range in.Sinks {
			if s.Loc.X < 0 || s.Loc.X > sp.Side || s.Loc.Y < 0 || s.Loc.Y > sp.Side {
				t.Fatalf("%s sink outside die", sp.Name)
			}
			if s.CapFF < minSinkCapFF || s.CapFF > maxSinkCapFF {
				t.Fatalf("%s sink cap %v outside range", sp.Name, s.CapFF)
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	sp, err := BySuiteName("r1")
	if err != nil {
		t.Fatal(err)
	}
	a := Generate(sp)
	b := Generate(sp)
	for i := range a.Sinks {
		if a.Sinks[i] != b.Sinks[i] {
			t.Fatal("generation is not deterministic")
		}
	}
}

func TestBySuiteNameUnknown(t *testing.T) {
	if _, err := BySuiteName("r9"); err == nil {
		t.Error("unknown circuit accepted")
	}
}

func TestClusteredGroupsAreSpatial(t *testing.T) {
	base := Small(400, 5)
	for _, k := range []int{1, 4, 6, 8, 10} {
		in := Clustered(base, k)
		if err := in.Validate(); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if in.NumGroups != k {
			t.Fatalf("k=%d: NumGroups=%d", k, in.NumGroups)
		}
		sizes := in.GroupSizes()
		for g, n := range sizes {
			if n == 0 {
				t.Errorf("k=%d: group %d empty", k, g)
			}
		}
		if k == 1 {
			continue
		}
		// Spatial coherence: the average intra-group bounding box is much
		// smaller than the die.
		var area float64
		for g := 0; g < k; g++ {
			xmin, ymin := math.Inf(1), math.Inf(1)
			xmax, ymax := math.Inf(-1), math.Inf(-1)
			for _, s := range in.Sinks {
				if s.Group != g {
					continue
				}
				xmin = math.Min(xmin, s.Loc.X)
				xmax = math.Max(xmax, s.Loc.X)
				ymin = math.Min(ymin, s.Loc.Y)
				ymax = math.Max(ymax, s.Loc.Y)
			}
			area += (xmax - xmin) * (ymax - ymin)
		}
		dieX, dieY, dieX2, dieY2 := boundsOf(in)
		die := (dieX2 - dieX) * (dieY2 - dieY)
		if area/float64(k) > die/float64(k)*1.5 {
			t.Errorf("k=%d: clusters not spatially coherent (avg box %.3g vs die/k %.3g)",
				k, area/float64(k), die/float64(k))
		}
	}
}

func TestIntermingledGroupsAreBalancedAndSpread(t *testing.T) {
	base := Small(400, 6)
	for _, k := range []int{2, 4, 10} {
		in := Intermingled(base, k, 99)
		if err := in.Validate(); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		sizes := in.GroupSizes()
		for g, n := range sizes {
			if math.Abs(float64(n)-float64(len(in.Sinks))/float64(k)) > 1.5 {
				t.Errorf("k=%d: group %d size %d not balanced", k, g, n)
			}
		}
		// Intermingled: every group's bounding box spans most of the die.
		x1, y1, x2, y2 := boundsOf(in)
		for g := 0; g < k; g++ {
			xmin, ymin := math.Inf(1), math.Inf(1)
			xmax, ymax := math.Inf(-1), math.Inf(-1)
			for _, s := range in.Sinks {
				if s.Group != g {
					continue
				}
				xmin = math.Min(xmin, s.Loc.X)
				xmax = math.Max(xmax, s.Loc.X)
				ymin = math.Min(ymin, s.Loc.Y)
				ymax = math.Max(ymax, s.Loc.Y)
			}
			if (xmax-xmin) < 0.7*(x2-x1) || (ymax-ymin) < 0.7*(y2-y1) {
				t.Errorf("k=%d: group %d not spread over the die", k, g)
			}
		}
	}
}

func TestGroupingDoesNotMutateBase(t *testing.T) {
	base := Small(50, 7)
	orig := make([]int, 0, len(base.Sinks))
	for _, s := range base.Sinks {
		orig = append(orig, s.Group)
	}
	_ = Clustered(base, 4)
	_ = Intermingled(base, 4, 1)
	for i, s := range base.Sinks {
		if s.Group != orig[i] {
			t.Fatal("base instance mutated by grouping")
		}
	}
}

func TestGridShape(t *testing.T) {
	cases := map[int][2]int{4: {2, 2}, 6: {2, 3}, 8: {2, 4}, 10: {2, 5}, 9: {3, 3}, 7: {1, 7}}
	for k, want := range cases {
		r, c := gridShape(k)
		if r != want[0] || c != want[1] {
			t.Errorf("gridShape(%d) = %d×%d, want %d×%d", k, r, c, want[0], want[1])
		}
	}
}

func TestBlendInterpolates(t *testing.T) {
	base := Small(300, 8)
	for _, k := range []int{4, 6} {
		clustered := Clustered(base, k)
		zero := Blend(base, k, 0, 5)
		// mix=0 must reproduce the clustered assignment (before re-fill).
		diff := 0
		for i := range zero.Sinks {
			if zero.Sinks[i].Group != clustered.Sinks[i].Group {
				diff++
			}
		}
		if diff > 0 {
			t.Errorf("k=%d: Blend(0) differs from Clustered in %d sinks", k, diff)
		}
		// mix=1 must scatter: most sinks leave their home rectangle's group.
		one := Blend(base, k, 1, 5)
		moved := 0
		for i := range one.Sinks {
			if one.Sinks[i].Group != clustered.Sinks[i].Group {
				moved++
			}
		}
		if float64(moved) < 0.5*float64(len(base.Sinks)) {
			t.Errorf("k=%d: Blend(1) moved only %d sinks", k, moved)
		}
		for _, mix := range []float64{-1, 0.3, 2} {
			in := Blend(base, k, mix, 9)
			if err := in.Validate(); err != nil {
				t.Fatalf("k=%d mix=%v: %v", k, mix, err)
			}
		}
	}
}

func TestPowerLaw(t *testing.T) {
	in := PowerLaw(500, 16, 1.5, 7)
	if len(in.Sinks) != 500 || in.NumGroups != 1 {
		t.Fatalf("got %d sinks, %d groups", len(in.Sinks), in.NumGroups)
	}
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	// All sinks must land on the die.
	xmin, ymin, xmax, ymax := boundsOf(in)
	if xmin < 0 || ymin < 0 || xmax > in.Source.X*2+1 || ymax > in.Source.Y*2+1 {
		t.Errorf("sinks off-die: x[%v,%v] y[%v,%v]", xmin, xmax, ymin, ymax)
	}
	// Same seed reproduces, different seed differs.
	again := PowerLaw(500, 16, 1.5, 7)
	other := PowerLaw(500, 16, 1.5, 8)
	same, diff := true, false
	for i := range in.Sinks {
		if in.Sinks[i].Loc != again.Sinks[i].Loc {
			same = false
		}
		if in.Sinks[i].Loc != other.Sinks[i].Loc {
			diff = true
		}
	}
	if !same {
		t.Error("same seed did not reproduce")
	}
	if !diff {
		t.Error("different seed produced identical placement")
	}
	// Power-law concentration: the most crowded small neighborhood should
	// hold far more than the uniform share. Count sinks per die sixteenth.
	const g = 4
	counts := make([]int, g*g)
	w, h := (xmax-xmin)/g, (ymax-ymin)/g
	for _, s := range in.Sinks {
		cx := int((s.Loc.X - xmin) / w)
		cy := int((s.Loc.Y - ymin) / h)
		if cx >= g {
			cx = g - 1
		}
		if cy >= g {
			cy = g - 1
		}
		counts[cy*g+cx]++
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max < 2*len(in.Sinks)/(g*g) {
		t.Errorf("max cell population %d shows no clustering (uniform share %d)",
			max, len(in.Sinks)/(g*g))
	}
	// Degenerate knobs stay valid.
	if err := PowerLaw(50, 1, 0, 3).Validate(); err != nil {
		t.Errorf("clusters=1 alpha=0: %v", err)
	}
	if err := PowerLaw(50, 0, 2, 3).Validate(); err != nil {
		t.Errorf("clusters=0 clamps: %v", err)
	}
}

func TestLargeSuite(t *testing.T) {
	for _, sp := range LargeSuite() {
		if sp.Sinks < 10000 || sp.Side <= 0 {
			t.Errorf("%s: bad spec %+v", sp.Name, sp)
		}
		got, err := BySuiteName(sp.Name)
		if err != nil || got != sp {
			t.Errorf("BySuiteName(%s) = %+v, %v", sp.Name, got, err)
		}
	}
	// The r-suite lookups still work.
	if _, err := BySuiteName("r3"); err != nil {
		t.Error(err)
	}
	if _, err := BySuiteName("nope"); err == nil {
		t.Error("unknown name did not error")
	}
}

func TestLargeSuitePowerLawSpecs(t *testing.T) {
	for _, name := range []string{"p10k", "p50k", "p100k"} {
		sp, err := BySuiteName(name)
		if err != nil {
			t.Fatal(err)
		}
		if sp.Dist != "powerlaw" {
			t.Errorf("%s: Dist = %q, want powerlaw", name, sp.Dist)
		}
	}
	// Generate honors the spec's distribution, die edge and name.
	sp, _ := BySuiteName("p10k")
	sp.Sinks = 500 // shrink for test speed; placement logic is identical
	sp.Side = side(500)
	in := Generate(sp)
	if in.Name != "p10k" {
		t.Errorf("Name = %q, want p10k", in.Name)
	}
	if len(in.Sinks) != 500 {
		t.Errorf("sinks = %d, want 500", len(in.Sinks))
	}
	for _, s := range in.Sinks {
		if s.Loc.X < 0 || s.Loc.X > sp.Side || s.Loc.Y < 0 || s.Loc.Y > sp.Side {
			t.Fatalf("sink %d at %v outside the spec's %v die", s.ID, s.Loc, sp.Side)
		}
	}
	// A power-law placement is visibly more concentrated than uniform: on
	// the same die, its mean nearest-sink spacing is well below uniform's.
	uni := Generate(Spec{Name: "u", Sinks: 500, Side: sp.Side, Seed: sp.Seed})
	if p, u := meanNNSpacing(in), meanNNSpacing(uni); !(p < 0.8*u) {
		t.Errorf("powerlaw mean NN spacing %v not below uniform %v", p, u)
	}
}

// meanNNSpacing is the average L1 distance of each sink to its nearest
// neighbor (O(n²); test-sized inputs only).
func meanNNSpacing(in *ctree.Instance) float64 {
	total := 0.0
	for i := range in.Sinks {
		best := math.Inf(1)
		for j := range in.Sinks {
			if i == j {
				continue
			}
			if d := geom.Dist(in.Sinks[i].Loc, in.Sinks[j].Loc); d < best {
				best = d
			}
		}
		total += best
	}
	return total / float64(len(in.Sinks))
}
