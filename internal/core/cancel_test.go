package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/bench"
)

// TestBuildPreCancelledContext pins the cancellation contract at its
// sharpest: a context that is already dead aborts the build on its very
// first merge round, with an error that names the cancellation and unwraps
// to the context's own error. No partial tree leaks out.
func TestBuildPreCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	in := bench.Small(400, 3)
	res, err := Build(in, Options{SingleGroup: true, Ctx: ctx})
	if err == nil {
		t.Fatal("build under a dead context returned nil error")
	}
	if res != nil {
		t.Errorf("cancelled build leaked a result: %+v", res)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("error %v does not unwrap to context.Canceled", err)
	}
}

// TestBuildCancellationMidBuild cancels a 10k route mid-flight and requires
// the builder to notice within one merge round — promptly, not after
// finishing the instance. The generous wall bound only guards against a
// build that ignored the context entirely (a clean 10k route takes well
// under it, so the test stays meaningful on slow CI).
func TestBuildCancellationMidBuild(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	in := bench.Small(10_000, 9)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	start := time.Now()
	go func() {
		_, err := Build(in, Options{SingleGroup: true, Pairer: PairerGrid, Ctx: ctx})
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err != nil && !errors.Is(err, context.Canceled) {
			t.Errorf("mid-build cancel returned %v, want context.Canceled (or a clean finish)", err)
		}
		t.Logf("returned %v after %v", err, time.Since(start))
	case <-time.After(30 * time.Second):
		t.Fatal("build did not return within 30s of cancellation")
	}
}

// TestBuildDeadlineExceeded arms a deadline that cannot be met and checks
// the error is the deadline's, so -timeout callers can map it to a clean
// diagnosis via errors.Is.
func TestBuildDeadlineExceeded(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	in := bench.Small(10_000, 9)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	_, err := Build(in, Options{SingleGroup: true, Pairer: PairerGrid, Ctx: ctx})
	if err == nil {
		t.Skip("10k route beat a 5ms deadline; machine too fast for this guard")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("error %v does not unwrap to context.DeadlineExceeded", err)
	}
}

// TestBuildBackgroundContextFree pins that a nil or Background context takes
// the zero-cost path: the builder caches a nil done channel and the per-round
// check is a single nil comparison (the allocation side is pinned by the
// repo-level TestRouteAllocBudget).
func TestBuildBackgroundContextFree(t *testing.T) {
	in := bench.Small(200, 5)
	for _, ctx := range []context.Context{nil, context.Background()} {
		if ch := doneOf(ctx); ch != nil {
			t.Errorf("doneOf(%v) = %v, want nil", ctx, ch)
		}
		if _, err := Build(in, Options{SingleGroup: true, Ctx: ctx}); err != nil {
			t.Errorf("ctx=%v: %v", ctx, err)
		}
	}
}
