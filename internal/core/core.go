// Package core implements AST-DME, the associative-skew clock tree router of
// the reproduced thesis (Kim, "Associative Skew Clock Routing for Difficult
// Instances", Texas A&M, 2006), together with its degenerate single-group
// modes: exact zero-skew DME (greedy-DME) and bounded-skew BST routing, whose
// 10 ps-bound single-group form is the thesis's EXT-BST baseline.
//
// # Algorithm
//
// The router follows the AST-DME pseudocode of the thesis (Fig. 6). Starting
// from one subtree per sink, it repeatedly merges the minimum-cost pair of
// subtrees (see package order) until one tree remains, then embeds the tree
// top-down (DME). Four mechanisms carry the thesis's ideas:
//
// *Windows.* Writing X = WireDelay(ea,Ca) − WireDelay(eb,Cb) for the delay
// shift a merge applies between its two sides, each group g present in both
// subtrees constrains X to the window
//
//	[ Db(g).Hi − Da(g).Lo − B ,  Db(g).Lo − Da(g).Hi + B ]
//
// where B is the intra-group skew bound (0 in the thesis's formulation).
// Same-group merges (window a point at B=0) reproduce exact DME/Tsay
// merging; merges of subtrees from different groups (no window) are free and
// cost exactly the subtree distance — the shortest-distance-region merge of
// thesis Fig. 3; partially-shared merges (Figs. 4, 5) intersect the windows
// of all shared groups. Note the constraints are per *raw* group: merges of
// subtrees with disjoint group sets stay free even after other subtrees have
// related their groups, which is where the freedom on intermingled instances
// lives.
//
// *Deferred splits.* A merge whose window leaves slack does not commit the
// split of its wire between the two child edges; the node keeps the whole
// feasible sub-region of the SDR (an octagon; see geom.SDR) — the thesis's
// merging region, whose extent "implies a bounded range for the inter-group
// skew". The split is pinned only when the node is merged again: without
// constraints at the closest approach to the partner (the thesis's collapse
// of a merging region to its nearest boundary, Ch. V.E), otherwise by a
// joint search over both subtrees' split ranges that makes the shared
// windows intersect — "find an intersection between the feasible merging
// regions" (Fig. 5) — at the least committed cost.
//
// *Offset registry.* Whenever a node commits (resolves) while containing
// several groups, the relative offsets among those groups are fixed inside
// it; per thesis Ch. V.E.1 the groups involved "can be treated to form a new
// group G1∪G2∪G3". A weighted union-find registers the first-committed
// offset of every group pair, and merges of subtrees with *related* groups
// are leashed to the registered offsets within
// IntraSkewBound+InterSkewBound — without the leash, independently built
// subtrees commit contradictory offsets whose reconciliation cost grows
// without bound (measured during development; see DESIGN.md §2). Merges of
// subtrees with disjoint raw group sets remain completely free: the
// bottom-level freedom on intermingled instances.
//
// *Wire sneaking.* When the hard windows of a merge still conflict (two
// subtrees committed contradictory offsets), the generalized form of thesis
// Eqs. 5.1–5.3 elongates the incoming edges of the maximal pure-group
// subtrees of the offending group — coherently shifting that group alone —
// iterating the solve with full recomputation so the added snake capacitance
// is coupled back exactly (the thesis solves the uncoupled system once, for
// the single-edge case).
package core

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync/atomic"
	"time"

	"repro/internal/ctree"
	"repro/internal/geom"
	"repro/internal/obs"
	"repro/internal/order"
	"repro/internal/rctree"
	"repro/internal/spatial"
)

// PairerMode selects the nearest-neighbor engine behind the merging order.
type PairerMode int

const (
	// PairerAuto (the default) uses the spatial grid pairer above
	// GridPairerThreshold sinks whenever it is exact for the run's merge
	// key, and the all-pairs oracle otherwise.
	PairerAuto PairerMode = iota
	// PairerScan forces the all-pairs O(n²) oracle.
	PairerScan
	// PairerGrid forces the spatial grid pairer. The caller is responsible
	// for key soundness (key ≥ distance; see internal/spatial).
	PairerGrid
)

// GridPairerThreshold is the sink count at which PairerAuto switches from
// the all-pairs oracle to the spatial grid pairer. Below it the oracle's
// cache-friendly scan wins; above it the grid's sub-quadratic pairing does.
const GridPairerThreshold = 2048

// Options configures a routing run. The zero value routes associative-skew
// with zero intra-group bound under the default Elmore parameters.
type Options struct {
	// Model is the delay model; nil selects DefaultModel().
	Model rctree.Model
	// IntraSkewBound is the skew bound (ps) enforced within each group.
	// The thesis's formulation uses 0 (exact zero intra-group skew).
	IntraSkewBound float64
	// InterSkewBound is the extra window (ps) within which committed
	// inter-group offsets (the thesis's by-product skews S_{i,j}) may float
	// around their first-registered values: related groups are leashed to
	// within IntraSkewBound+InterSkewBound of the registered offsets. The
	// thesis's merging regions imply such a data-dependent bounded range
	// (Ch. V.D). The default 0 freezes offsets once committed, which keeps
	// intra-group skew at the bound; positive values trade bounded
	// intra-group degradation for extra placement freedom (ablation knob).
	// Values < 0 remove the leash entirely (documented to destabilize the
	// offset system; see DESIGN.md). Ignored in SingleGroup mode.
	InterSkewBound float64
	// SingleGroup ignores sink groups: all sinks form one group bounded by
	// GlobalBound. SingleGroup+GlobalBound=0 is greedy-DME (ZST);
	// SingleGroup+GlobalBound=10 is the thesis's EXT-BST baseline.
	SingleGroup bool
	// GlobalBound is the skew bound (ps) used in SingleGroup mode.
	GlobalBound float64
	// Order configures the merging order.
	Order order.Config
	// Pairer selects the nearest-neighbor engine of the merging order:
	// PairerAuto (grid above GridPairerThreshold when exact), PairerScan
	// (the all-pairs oracle), or PairerGrid (force the spatial grid).
	// Ignored when Order.Pairer is set explicitly. Auto never selects the
	// grid under DelayTargetBias or a custom Order.Key: both can push the
	// pair priority below the pair distance, which defeats the grid's
	// geometric pruning bound (see internal/spatial).
	Pairer PairerMode
	// PairerThreshold, when positive, overrides GridPairerThreshold as the
	// sink count at which PairerAuto switches to the spatial grid pairer
	// (0 selects the package default; forced modes ignore it). The sharded
	// pipeline divides the threshold by the shard count for its per-shard
	// sub-builds: the grid-vs-oracle trade-off is about total instance
	// scale, and comparing each shard's slice against the global constant
	// silently dropped mid-size sharded runs (e.g. 10k sinks at 8 shards)
	// onto the O(n²) scan oracle inside every shard.
	PairerThreshold int
	// DelayTargetBias, when positive, enables the delay-target merging-order
	// enhancement (thesis enhancement 2, after Chaturvedi–Hu): the pair
	// priority becomes cost − bias·(meanDelay_i + meanDelay_j). Units are
	// length per ps.
	DelayTargetBias float64
	// EndpointSplit disables split deferral at unconstrained merges and
	// commits the e=0 endpoint instead (ablation knob: quantifies the value
	// of keeping whole merging regions).
	EndpointSplit bool
	// PairConstraints optionally imposes inter-group skew ranges between
	// specific group pairs — the "local bound" / prescribed-skew constraint
	// forms of the thesis's introduction (its refs [5–7]); associative skew
	// plus such ranges covers the whole taxonomy the thesis surveys. Each
	// constraint is enforced through the merge windows whenever the two
	// groups arrive on opposite sides of a merge (best effort otherwise;
	// eval.PairSkews verifies the outcome).
	PairConstraints []PairConstraint
	// GroupOffsets, when non-nil, prescribes the inter-group skew targets
	// S_{0,g} explicitly (the thesis's Ch. II: "we need to specify the
	// inter-group skew S_{i,j} for all groups either implicitly or
	// explicitly"): entry g is the desired delay of group g's sinks minus
	// group 0's, in ps. Must have length NumGroups with entry 0 == 0. The
	// offsets are enforced within IntraSkewBound+InterSkewBound. Nil lets
	// the router commit offsets implicitly as merging proceeds (the
	// thesis's default).
	GroupOffsets []float64
	// MaxSneakIter caps the coupled wire-sneaking iterations per merge
	// (default 8).
	MaxSneakIter int
	// SneakCostCap aborts a sneak whose wire exceeds this multiple of the
	// merge distance, falling back to the least-violation compromise
	// (default 8).
	SneakCostCap float64
	// MergeWorkers is the number of goroutines executing the merge bodies of
	// each round's disjoint batch (window intersection, joint resolution,
	// delay evaluation, node construction). 0 (the default) selects
	// GOMAXPROCS; 1 forces fully serial execution. Any setting produces
	// bitwise-identical trees: batches are scheduled so concurrently
	// executed merges cannot observe each other's group-offset commitments,
	// and results are committed serially in batch order (see
	// builder.runBatch).
	MergeWorkers int
	// Shards, when ≥ 1, requests the spatially sharded build: the instance
	// is cut into Shards sub-instances routed concurrently and stitched
	// skew-aware at the top (see internal/shard). The sharded pipeline lives
	// above this package, so Build itself rejects Shards > 1 rather than
	// silently ignoring it; callers wanting sharding go through shard.Build,
	// which honors this field (0 = off, 1 = the sharded pipeline with a
	// single shard — bitwise-identical to the unsharded build).
	Shards int
	// Pilot requests the sharded pipeline's pilot offset pass: before the
	// concurrent shard builds, a deterministic per-group sink sample is
	// routed unsharded, the inter-group offsets it commits are read back
	// out of its registry (Registry.Offsets) and prescribed to every shard
	// and to the stitch through the GroupOffsets machinery — the thesis
	// frames the inter-group skews S_{i,j} as a global contract, specified
	// once, not k times independently (without the pilot, shards commit
	// contradictory offsets that only the stitch windows reconcile,
	// degrading residual intra-group skew at shard seams). Like Shards, the
	// pass lives in shard.Build; core.Build rejects the flag rather than
	// silently ignoring it. Incompatible with SingleGroup (no inter-group
	// offsets exist) and with explicit GroupOffsets (the caller already
	// prescribed the contract).
	Pilot bool
	// Trace, when non-nil, records the run's phase timings (the "route"
	// span with per-round merge-wave sub-spans) and exports the run's Stats
	// as metrics into the trace's registry. Tracing is purely observational:
	// a traced build is bitwise-identical to an untraced one, and a nil
	// Trace costs nothing on the hot path (see internal/obs's disabled-path
	// contract). A Trace is single-goroutine — concurrent sub-builds (the
	// sharded pipeline) give each build its own child trace; the parallel
	// merge wave's worker builders run untraced and report their rounds
	// through this coordinating builder.
	Trace *obs.Trace
	// Ctx, when non-nil, bounds the build: the merging loop checks it once
	// per round and Build/BuildSubtree/MergeRoots return a "build cancelled"
	// error wrapping ctx.Err() as soon as the current round commits, so a
	// cancelled build returns within one merge round. nil (or
	// context.Background(), whose Done channel is nil) costs nothing on the
	// hot path — the loop never reads a clock or allocates for the check.
	// Carried in Options rather than as a parameter so the sharded
	// pipeline's many stages thread one cancellation scope without widening
	// every signature; the dispatch layer overrides it per execution.
	Ctx context.Context
	// SneakProbe, when non-nil, records the leash/sneak loop's per-iteration
	// state (window bounds, infeasibility gap, sneak wire, and the
	// registry's per-group cumulative offsets) — the instrument for the
	// InterSkewBound W-sweep instability. Events carry a per-merge sequence
	// number; recording happens only on the coordinating builder, so runs
	// wanting complete capture set MergeWorkers to 1 (parallel wave workers
	// skip the probe rather than race on it). Like Trace, the probe is
	// purely observational and nil costs nothing.
	SneakProbe *obs.Probe
}

// PairConstraint bounds the signed inter-group skew delay(J) − delay(I)
// to [MinPs, MaxPs].
type PairConstraint struct {
	I, J         int
	MinPs, MaxPs float64
}

// DefaultModel returns the Elmore model used throughout the experiments:
// 0.1 Ω and 0.02 fF per unit length. The values are calibrated (DESIGN.md §3)
// so the synthetic r1–r5 instances see source-to-sink delays of tens of ns
// and leaf-level merge imbalances of tens of ps, matching the regime of the
// thesis's experiments where the 10 ps EXT-BST bound is tight.
func DefaultModel() rctree.Model { return rctree.NewElmore(0.1, 0.02) }

// Stats counts notable events of a routing run.
type Stats struct {
	// Merges is the total number of subtree merges (n−1).
	Merges int
	// SameGroup, CrossGroup, Shared classify merges by the thesis's cases:
	// both subtrees from one raw group / no shared raw group / some shared.
	SameGroup, CrossGroup, Shared int
	// Deferred counts merges that kept their split open over a region.
	Deferred int
	// GroupUnions counts group-pair offset registrations.
	GroupUnions int
	// MergeSnakes counts merges that snaked the new edges beyond distance d.
	MergeSnakes int
	// SneakEvents counts wire-sneaking adjustments on interior handle edges;
	// SneakWire is their total added wirelength.
	SneakEvents int
	SneakWire   float64
	// SneakIters counts leash/sneak loop iterations that attempted to close
	// an infeasible window gap (SneakEvents of them succeeded; the rest
	// aborted to a compromise). The iteration budget is MaxSneakIter per
	// merge.
	SneakIters int
	// PairScans is the number of candidate pair evaluations the merging
	// order performed — the work metric the spatial pairer drives
	// sub-quadratic (all-pairs pairing scans Θ(n²) of them per round).
	PairScans int64
	// GridRebuilds counts the spatial pairer's index rebuilds by trigger
	// (all zero under the all-pairs oracle). Like PairScans it is recorded
	// once per run from the pairing engine, not accumulated by merge bodies.
	GridRebuilds spatial.RebuildStats
	// SneakUnresolved counts merges where sneaking could not (affordably)
	// reconcile conflicting windows; the residual intra-group skew is then
	// observable via package eval.
	SneakUnresolved int
}

// add accumulates a worker's per-merge stat deltas. PairScans is excluded:
// it is recorded once per run from the order queue, not by merge bodies.
func (s *Stats) add(d Stats) {
	s.Merges += d.Merges
	s.SameGroup += d.SameGroup
	s.CrossGroup += d.CrossGroup
	s.Shared += d.Shared
	s.Deferred += d.Deferred
	s.GroupUnions += d.GroupUnions
	s.MergeSnakes += d.MergeSnakes
	s.SneakEvents += d.SneakEvents
	s.SneakWire += d.SneakWire
	s.SneakIters += d.SneakIters
	s.SneakUnresolved += d.SneakUnresolved
}

// AddRun accumulates a complete sub-build's stats into s, including the
// per-run engine metrics (PairScans, GridRebuilds) that the merge workers'
// per-batch deltas deliberately exclude — sub-builds own their pairing
// engines. Used by the sharded pipeline (internal/shard) to aggregate shard
// and stitch runs; keep it in sync with the fields of Stats.
func (s *Stats) AddRun(d Stats) {
	s.add(d)
	s.PairScans += d.PairScans
	s.GridRebuilds.Add(d.GridRebuilds)
}

// Result is a completed routing.
type Result struct {
	// Instance is the routed instance (with its original groups, even in
	// SingleGroup mode).
	Instance *ctree.Instance
	// Root is the embedded merge tree.
	Root *ctree.Node
	// SourceWire is the wirelength from the clock source to the tree root.
	SourceWire float64
	// Wirelength is the total committed wirelength including SourceWire.
	Wirelength float64
	// Options echoes the configuration used.
	Options Options
	// Stats describes the run.
	Stats Stats
}

// normalizeOptions applies defaults and validates the options against the
// instance. It is shared by Build, BuildSubtree and MergeRoots, and is
// idempotent, so the sharded pipeline may normalize once and pass the result
// through every stage.
func normalizeOptions(in *ctree.Instance, opt *Options) error {
	if opt.Model == nil {
		opt.Model = DefaultModel()
	}
	if opt.MaxSneakIter <= 0 {
		opt.MaxSneakIter = 8
	}
	if opt.SneakCostCap <= 0 {
		opt.SneakCostCap = 8
	}
	if opt.Shards < 0 {
		return fmt.Errorf("core: Shards = %d is negative", opt.Shards)
	}
	if opt.PairerThreshold < 0 {
		return fmt.Errorf("core: PairerThreshold = %d is negative", opt.PairerThreshold)
	}
	if opt.Pilot {
		if opt.SingleGroup {
			return fmt.Errorf("core: Pilot is incompatible with SingleGroup (no inter-group offsets to prescribe)")
		}
		if opt.GroupOffsets != nil {
			return fmt.Errorf("core: Pilot is incompatible with explicit GroupOffsets (the offset contract is already prescribed)")
		}
	}

	if opt.GroupOffsets != nil {
		if opt.SingleGroup {
			return fmt.Errorf("core: GroupOffsets is incompatible with SingleGroup")
		}
		if len(opt.GroupOffsets) != in.NumGroups {
			return fmt.Errorf("core: GroupOffsets has %d entries for %d groups",
				len(opt.GroupOffsets), in.NumGroups)
		}
		if opt.GroupOffsets[0] != 0 {
			return fmt.Errorf("core: GroupOffsets[0] must be 0 (the reference group)")
		}
	}

	if opt.Pairer == PairerGrid && opt.DelayTargetBias > 0 && opt.Order.Key == nil {
		// The bias subtracts delay terms from the default merge key, so the
		// key can drop below the pair distance and the grid's geometric
		// pruning bound no longer holds — no caller action can make it
		// sound, so refuse rather than silently return a different tree.
		return fmt.Errorf("core: PairerGrid is incompatible with DelayTargetBias (biased keys defeat grid pruning); use PairerScan or PairerAuto")
	}

	for _, pc := range opt.PairConstraints {
		if pc.I < 0 || pc.I >= in.NumGroups || pc.J < 0 || pc.J >= in.NumGroups || pc.I == pc.J {
			return fmt.Errorf("core: pair constraint (%d,%d) out of range", pc.I, pc.J)
		}
		if pc.MinPs > pc.MaxPs {
			return fmt.Errorf("core: pair constraint (%d,%d) has Min > Max", pc.I, pc.J)
		}
	}
	return nil
}

// Build routes the instance and returns the embedded tree.
func Build(in *ctree.Instance, opt Options) (*Result, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	if err := normalizeOptions(in, &opt); err != nil {
		return nil, err
	}
	if opt.Shards > 1 {
		// The sharded pipeline lives in internal/shard (it layers the
		// partitioner and top-level stitch over this package); refusing here
		// keeps the flag from being silently ignored.
		return nil, fmt.Errorf("core: Shards = %d requires the sharded builder; call shard.Build (core.Build routes unsharded)", opt.Shards)
	}
	if opt.Pilot {
		// Likewise for the pilot offset pass: it exists to align shard
		// builds, so requesting it on the unsharded path is a mistake worth
		// surfacing rather than ignoring.
		return nil, fmt.Errorf("core: Pilot requires the sharded pipeline; set Shards ≥ 1 and call shard.Build")
	}

	reg, err := NewRegistry(in, opt)
	if err != nil {
		return nil, err
	}
	b := &builder{opt: opt, in: in, uf: &reg.uf, done: doneOf(opt.Ctx)}
	b.initScratch()
	b.initSinkNodes(nil)
	b.route()
	if b.err != nil {
		return nil, b.err
	}
	b.finishRoot()
	b.stats.GroupUnions += reg.preUnions

	res := &Result{
		Instance:   in,
		Root:       b.root,
		SourceWire: geom.DistRP(b.root.Region, geom.ToUV(in.Source)),
		Options:    opt,
		Stats:      b.stats,
	}
	res.Wirelength = b.root.Wirelength() + res.SourceWire
	emb := opt.Trace.Begin("embed")
	res.Root.Embed(geom.ToUV(in.Source))
	emb.End()
	RecordStatsMetrics(opt.Trace, res.Stats)
	return res, nil
}

// Registry is a shareable group-offset registry: the committed-offset view
// (the weighted union-find of the thesis's by-product skews) detached from
// any one builder, so several sub-instance builds can route against a common
// base. The sharded pipeline freezes one base Registry during its concurrent
// phase and hands each shard a private Clone — sharing by frozen snapshot
// rather than by lock, which keeps the concurrent builds mutex-free and
// deterministic — then stitches on the base itself.
type Registry struct {
	uf groupUF
	// preUnions counts the prescribed-offset unions applied at construction
	// (reported once per run in Stats.GroupUnions, not once per shard).
	preUnions int
}

// NewRegistry returns a registry over the instance's groups with any
// prescribed Options.GroupOffsets pre-registered relative to group 0: every
// subsequent merge of related subtrees enforces the prescribed targets
// through the registry leash.
func NewRegistry(in *ctree.Instance, opt Options) (*Registry, error) {
	if err := normalizeOptions(in, &opt); err != nil {
		return nil, err
	}
	r := &Registry{uf: *newGroupUF(in.NumGroups)}
	if opt.GroupOffsets != nil {
		for g := 1; g < in.NumGroups; g++ {
			r.uf.union(0, g, opt.GroupOffsets[g])
			r.preUnions++
		}
	}
	return r, nil
}

// PreUnions reports the prescribed-offset unions applied at construction.
// Callers aggregating sub-build stats add it exactly once.
func (r *Registry) PreUnions() int { return r.preUnions }

// Groups returns the number of groups the registry was built over.
func (r *Registry) Groups() int { return len(r.uf.parent) }

// Offsets resolves the registry's committed inter-group offsets against
// group 0: entry g is the registered delay of group g's sinks minus group
// 0's, in ps — the explicit S_{0,g} form Options.GroupOffsets accepts, so
// offsets committed by one build can be prescribed verbatim to another
// (NewRegistry(in, Options{GroupOffsets: r.Offsets()}) round-trips). It
// errors when some group is not (transitively) related to group 0: the
// source build never committed that pair's offset, so no complete global
// contract exists yet and the caller must relate more groups first (the
// sharded pipeline's pilot pass falls back to routing a larger sample).
func (r *Registry) Offsets() ([]float64, error) {
	if len(r.uf.parent) == 0 {
		return nil, fmt.Errorf("core: Offsets over an empty registry")
	}
	root0, off0 := r.uf.find(0)
	out := make([]float64, len(r.uf.parent))
	for g := 1; g < len(out); g++ {
		rg, offg := r.uf.find(g)
		if rg != root0 {
			return nil, fmt.Errorf("core: groups %d and 0 are unrelated in the registry (no offset committed between them)", g)
		}
		// Normalized delays coincide under the leash: delay(g) − offg =
		// delay(0) − off0, so the registered inter-group skew S_{0,g} =
		// delay(g) − delay(0) = offg − off0.
		out[g] = offg - off0
	}
	return out, nil
}

// Clone returns an independent copy of the registry's committed state.
// Cloning is how concurrent sub-builds share a base view without locks: the
// base stays frozen while clones mutate privately.
func (r *Registry) Clone() *Registry {
	c := &Registry{preUnions: r.preUnions}
	r.uf.cloneInto(&c.uf)
	return c
}

// Subtree is the product of a sub-instance build (BuildSubtree) or a root
// stitch (MergeRoots): an unembedded subtree plus the stats of the merges
// that built it. A BuildSubtree root may still be Deferred — its final split
// is left open so a later MergeRoots can resolve it jointly against its
// stitch partners instead of pinning it blind.
type Subtree struct {
	Root  *ctree.Node
	Stats Stats
	// Trace is the build's trace node (Options.Trace echoed back; nil when
	// untraced) so pipeline stages can pass each sub-build's recorded
	// phases along with its product.
	Trace *obs.Trace
}

// BuildSubtree routes the sub-instance consisting of the given sink IDs
// (nil = all sinks) against the supplied registry, using exactly the same
// merge engine as Build. The caller owns instance validation and the
// registry's lifecycle; the returned root is not embedded and may be
// Deferred. Stats.GroupUnions excludes the registry's construction-time
// prescribed-offset unions (aggregate them once via Registry.PreUnions).
func BuildSubtree(in *ctree.Instance, sinkIDs []int, opt Options, reg *Registry) (*Subtree, error) {
	if err := normalizeOptions(in, &opt); err != nil {
		return nil, err
	}
	if reg.Groups() != in.NumGroups {
		return nil, fmt.Errorf("core: registry over %d groups for instance with %d", reg.Groups(), in.NumGroups)
	}
	if sinkIDs != nil && len(sinkIDs) == 0 {
		return nil, fmt.Errorf("core: BuildSubtree over an empty sink set")
	}
	for _, id := range sinkIDs {
		if id < 0 || id >= len(in.Sinks) {
			return nil, fmt.Errorf("core: BuildSubtree sink id %d out of range [0, %d)", id, len(in.Sinks))
		}
	}
	b := &builder{opt: opt, in: in, uf: &reg.uf, done: doneOf(opt.Ctx)}
	b.initScratch()
	b.initSinkNodes(sinkIDs)
	b.route()
	if b.err != nil {
		return nil, b.err
	}
	RecordStatsMetrics(opt.Trace, b.stats)
	return &Subtree{Root: b.root, Stats: b.stats, Trace: opt.Trace}, nil
}

// MergeRoots merges pre-built subtree roots into one tree under the full
// constraint machinery — shared-group windows, the registry leash, joint
// resolution of deferred roots, and wire sneaking — exactly as intra-build
// merges are performed, and resolves any final deferred split toward the
// instance source. This is the skew-aware generalization of the stitch
// baseline's unconstrained root merging (internal/stitch): where the
// baseline connects roots at bare distance, MergeRoots keeps enforcing the
// intra-group bound across the stitched seams. The returned root is not
// embedded; the roots' subtrees are adopted (and deferred roots committed)
// in place.
func MergeRoots(in *ctree.Instance, roots []*ctree.Node, opt Options, reg *Registry) (*Subtree, error) {
	if err := normalizeOptions(in, &opt); err != nil {
		return nil, err
	}
	if reg.Groups() != in.NumGroups {
		return nil, fmt.Errorf("core: registry over %d groups for instance with %d", reg.Groups(), in.NumGroups)
	}
	if len(roots) == 0 {
		return nil, fmt.Errorf("core: MergeRoots over no roots")
	}
	b := &builder{opt: opt, in: in, uf: &reg.uf, done: doneOf(opt.Ctx)}
	b.initScratch()
	b.initRootNodes(roots)
	b.route()
	if b.err != nil {
		return nil, b.err
	}
	b.finishRoot()
	RecordStatsMetrics(opt.Trace, b.stats)
	return &Subtree{Root: b.root, Stats: b.stats, Trace: opt.Trace}, nil
}

// doneOf returns ctx's cancellation channel; nil contexts (and
// context.Background, whose Done is nil) disable the per-round check
// entirely.
func doneOf(ctx context.Context) <-chan struct{} {
	if ctx == nil {
		return nil
	}
	return ctx.Done()
}

// ZST routes ignoring groups with exact zero global skew (greedy-DME).
func ZST(in *ctree.Instance, opt Options) (*Result, error) {
	opt.SingleGroup = true
	opt.GlobalBound = 0
	return Build(in, opt)
}

// EXTBST routes ignoring groups under a global skew bound — the thesis's
// extended greedy-BST baseline ("simply set bounded skew range as 10 ps and
// run the EXT-BST algorithm").
func EXTBST(in *ctree.Instance, boundPs float64, opt Options) (*Result, error) {
	opt.SingleGroup = true
	opt.GlobalBound = boundPs
	return Build(in, opt)
}

// groupUF is a weighted union-find over sink groups recording, softly, the
// first-committed delay offset of every related group pair. The normalized
// delay of group g is its subtree delay minus its cumulative offset, so two
// related groups compare on a common scale.
type groupUF struct {
	parent []int
	off    []float64
	// journal, when non-nil, records every union instead of only applying
	// it: parallel merge workers operate on private clones and their
	// recorded unions are replayed onto the shared registry at the serial
	// commit (see runBatch).
	journal *[]unionRec
}

// unionRec is one recorded union for deferred replay.
type unionRec struct {
	ra, rb int
	rel    float64
}

func newGroupUF(n int) *groupUF {
	u := &groupUF{parent: make([]int, n), off: make([]float64, n)}
	for i := range u.parent {
		u.parent[i] = i
	}
	return u
}

// cloneInto copies u's state into dst (reusing dst's backing arrays),
// giving a parallel merge worker a private view it may mutate.
func (u *groupUF) cloneInto(dst *groupUF) {
	dst.parent = append(dst.parent[:0], u.parent...)
	dst.off = append(dst.off[:0], u.off...)
}

// find returns g's union root and the cumulative offset of g relative to it.
// It deliberately does NOT compress paths: find is called from the merge-key
// closure, which the order queue's batch pairing evaluates from concurrent
// goroutines, so it must not mutate. Chains stay short (one link per union,
// and group counts are small), so the walk is cheap.
func (u *groupUF) find(g int) (root int, off float64) {
	for u.parent[g] != g {
		off += u.off[g]
		g = u.parent[g]
	}
	return g, off
}

// union merges the root rb into ra such that a group with normalized delay
// nb under rb gets normalized delay nb − rel under ra.
func (u *groupUF) union(ra, rb int, rel float64) {
	u.parent[rb] = ra
	u.off[rb] = rel
	if u.journal != nil {
		*u.journal = append(*u.journal, unionRec{ra: ra, rb: rb, rel: rel})
	}
}

// sneakScratch is a reusable buffer for one sneak plan.
type sneakScratch struct {
	handles []handle
	gammas  []float64
	plan    sneak
}

// delaySlabMin is the chunk size (entries) of the delay-set slab below.
const delaySlabMin = 4096

// delaySlab slab-allocates the backing storage of committed nodes' flat
// delay sets: merges reserve exact-capacity slices out of large chunks
// instead of allocating one map per node, which was the dominant allocation
// of large routes. Chunks are never freed individually — they live as long
// as the tree does. Each builder (including each parallel merge worker)
// owns a private slab, so reservations need no synchronization.
type delaySlab struct {
	groups []int32
	ivs    []rctree.Interval
}

// alloc reserves backing capacity for n delay entries and returns an empty
// DelaySet over it. Appending up to n entries stays within the reserved
// capacity and cannot reallocate or clobber neighboring reservations.
func (sl *delaySlab) alloc(n int) rctree.DelaySet {
	if cap(sl.groups)-len(sl.groups) < n {
		sz := delaySlabMin
		if n > sz {
			sz = n
		}
		sl.groups = make([]int32, 0, sz)
		sl.ivs = make([]rctree.Interval, 0, sz)
	}
	l := len(sl.groups)
	ds := rctree.DelaySet{
		Groups: sl.groups[l : l : l+n],
		Ivs:    sl.ivs[l : l : l+n],
	}
	sl.groups = sl.groups[:l+n]
	sl.ivs = sl.ivs[:l+n]
	return ds
}

// reclaim returns the unused tail of the most recent reservation to the
// slab — merges reserve the sum of both children's group counts but shared
// groups collapse, so on single-group runs half of every reservation would
// otherwise sit idle for the tree's lifetime — and pins the set's capacity
// to its length so no append through the committed set can ever reach the
// reclaimed space. Must be called before any subsequent alloc.
func (sl *delaySlab) reclaim(ds rctree.DelaySet) rctree.DelaySet {
	n := len(ds.Groups)
	sl.groups = sl.groups[:len(sl.groups)-(cap(ds.Groups)-n)]
	sl.ivs = sl.ivs[:len(sl.ivs)-(cap(ds.Ivs)-n)]
	return rctree.DelaySet{Groups: ds.Groups[:n:n], Ivs: ds.Ivs[:n:n]}
}

type builder struct {
	opt   Options
	in    *ctree.Instance
	uf    *groupUF
	nodes []*ctree.Node
	root  *ctree.Node
	stats Stats

	// Cancellation state: done is Options.Ctx's Done channel (nil when the
	// build is unbounded — Background's Done is already nil, so the per-round
	// check compiles down to one nil comparison), and err is the cancellation
	// error route() stopped on; the entry points surface it instead of a tree.
	done <-chan struct{}
	err  error

	// arena slab-allocates the tree nodes this builder constructs; b.nodes
	// points into it. Sink builds (initSinkNodes) put all 2n−1 nodes here;
	// root stitches (initRootNodes) only the k−1 internal nodes, with
	// arenaOff mapping node index to arena slot.
	arena    []ctree.Node
	arenaOff int

	// Reusable scratch for the allocation-heavy merge-body helpers. Worker
	// builders carry their own copies, so merge bodies never share scratch.
	normA, normB   rctree.DelaySet // normalize outputs (keyed by union root)
	delayA, delayB rctree.DelaySet // DelayAtBuf outputs (windowGap)
	sneakA, sneakB sneakScratch    // sneak plan buffers
	sharedBuf      []int           // SharedGroups output (one merge)
	unionBuf       []int           // UnionGroups staging (one merge)
	delays         delaySlab       // committed delay-set storage

	// Parallel batch execution state (main builder only).
	workers []mergeWorker
	tasks   []mergeTask
	rootsIn []bool // scratch: union roots written by scheduled batch writers

	// Observability state (main builder only; all of it is dead weight when
	// opt.Trace and opt.SneakProbe are nil — no field is touched then).
	// wave* accumulate the parallel merge wave's per-round idle accounting
	// for export as MetricWave* at the end of route; busyNS is the per-round
	// per-worker busy-time scratch; probeVals/probeSeq back the sneak probe.
	waveRounds   int
	waveBatchMax int
	waveSlotNS   int64
	waveIdleNS   int64
	busyNS       []int64
	probeVals    []float64
	probeSeq     int
}

// mergeTask is one merge of a round's disjoint batch.
type mergeTask struct {
	na, nb *ctree.Node
	out    *ctree.Node // preassigned arena slot
	wave   bool        // executable concurrently against the pre-batch registry
	writer bool        // may register group unions (needs a private registry)
	stats  Stats       // worker's stat delta (wave tasks)
	unions []unionRec  // worker's recorded unions (wave writer tasks)
}

// mergeWorker is the per-goroutine execution state of parallel batches: a
// builder clone with private scratch plus a reusable registry snapshot.
type mergeWorker struct {
	wb builder
	uf groupUF // private clone target for writer tasks
}

// boundOf returns the intra-group skew bound used for routing.
func (b *builder) boundOf() float64 {
	if b.opt.SingleGroup {
		return b.opt.GlobalBound
	}
	return b.opt.IntraSkewBound
}

// interBound returns the inter-group spread window, +Inf when disabled.
// In SingleGroup mode the single group's bound already covers everything.
func (b *builder) interBound() float64 {
	if b.opt.SingleGroup {
		return math.Inf(1)
	}
	if b.opt.InterSkewBound < 0 {
		return math.Inf(1)
	}
	return b.opt.InterSkewBound
}

// initScratch sizes the builder's reusable merge-body buffers.
func (b *builder) initScratch() {
	g := b.in.NumGroups
	b.normA = rctree.MakeDelaySet(g)
	b.normB = rctree.MakeDelaySet(g)
	b.delayA = rctree.MakeDelaySet(g)
	b.delayB = rctree.MakeDelaySet(g)
}

// normalizeInto aggregates a raw per-group delay set into per-union-root
// intervals on the registry's normalized (offset-corrected) scale, written
// into dst (reset first). dst is one of the builder's scratch sets; the
// result is valid until that set's next reuse.
func (b *builder) normalizeInto(dst *rctree.DelaySet, delay rctree.DelaySet) rctree.DelaySet {
	dst.Reset()
	for i := 0; i < delay.Len(); i++ {
		g, iv := delay.At(i)
		r, off := b.uf.find(g)
		dst.Insert(int32(r), iv.Shift(-off))
	}
	return *dst
}

// constraint identifies one hard window of a merge.
type constraint struct {
	// raw is true for an intra-group constraint on a shared raw group;
	// false for a consistency leash on a shared union root.
	raw bool
	// id is the raw group or the union root.
	id int
}

// forConstraints invokes f for every hard constraint of a merge between
// subtrees with the given raw delay maps:
//
//   - one window per shared raw group, at the intra-group bound B — the
//     thesis's skew constraints proper; and
//   - one window per shared union root on the registry-normalized scale, at
//     the leash bound B + W: the committed inter-group offsets of related
//     groups may float within the inter-group window W of their registered
//     values (the thesis's "bounded range" implied by its merging regions),
//     which keeps independently built subtrees consistent without freezing
//     the offsets outright.
//
// normalized reports whether the union-root pass ran, i.e. b.normA/b.normB
// now hold the normalized forms of da/db — windowGap reuses them for its
// misalignment term instead of normalizing the same inputs again.
func (b *builder) forConstraints(da, db rctree.DelaySet, shared []int,
	f func(c constraint, ia, ib rctree.Interval, bound float64)) (normalized bool) {
	bd := b.boundOf()
	for _, g := range shared {
		ia, _ := da.Get(g)
		ib, _ := db.Get(g)
		f(constraint{raw: true, id: g}, ia, ib, bd)
	}
	// Explicit inter-group pair constraints: delay(J) − delay(I) ∈ [lo, hi],
	// enforceable here when the two groups sit on opposite sides. With I on
	// side a and J on side b the post-merge difference is
	// (db[J]+wb) − (da[I]+wa) = (db[J] − da[I]) − X, giving the X window
	// [db[J].Hi − da[I].Lo − hi, db[J].Lo − da[I].Hi − lo]; mirrored when J
	// is on side a. Encoded through f by shifting the J interval: the window
	// formula f applies to (ia, ib, bound) is
	// [ib.Hi − ia.Lo − bound, ib.Lo − ia.Hi + bound], so passing
	// ib' = db[J] − (lo+hi)/2 and bound (hi−lo)/2 reproduces it exactly.
	for _, pc := range b.opt.PairConstraints {
		mid := (pc.MinPs + pc.MaxPs) / 2
		half := (pc.MaxPs - pc.MinPs) / 2
		if ia, ok := da.Get(pc.I); ok {
			if ib, ok := db.Get(pc.J); ok {
				f(constraint{raw: false, id: -1}, ia, ib.Shift(-mid), half)
			}
		}
		if ja, ok := da.Get(pc.J); ok {
			if ib, ok := db.Get(pc.I); ok {
				f(constraint{raw: false, id: -1}, ja.Shift(-mid), ib, half)
			}
		}
	}

	w := b.interBound()
	if math.IsInf(w, 1) {
		return false
	}
	na := b.normalizeInto(&b.normA, da)
	nb := b.normalizeInto(&b.normB, db)
	rctree.ForEachShared(na, nb, func(r int32, ia, ib rctree.Interval) {
		f(constraint{raw: false, id: int(r)}, ia, ib, bd+w)
	})
	return true
}

// slot returns the preassigned arena slot of node index id.
func (b *builder) slot(id int) *ctree.Node { return &b.arena[id-b.arenaOff] }

// initSinkNodes allocates the node arena and initializes the leaf nodes for
// the given sink IDs (nil = every sink of the instance, in ID order). Leaves
// keep their original Sink pointers and IDs, so a sub-instance build routes
// a subset in place — no instance cloning or sink transplanting.
func (b *builder) initSinkNodes(sinkIDs []int) {
	n := len(b.in.Sinks)
	if sinkIDs != nil {
		n = len(sinkIDs)
	}
	b.arena = make([]ctree.Node, 2*n-1)
	b.arenaOff = 0
	b.nodes = make([]*ctree.Node, 0, 2*n-1)
	// Leaves of one group are identical in Groups and Delay ({g: [0,0]}),
	// and node Group slices / Delay sets are never mutated in place (all
	// paths build replacements), so the leaves share interned instances —
	// the interning table below holds one Groups slice and one DelaySet per
	// group, and on large single-group (ZST) runs this removes three
	// allocations per sink.
	groupsIntern := make([][]int, b.in.NumGroups)
	delayIntern := make([]rctree.DelaySet, b.in.NumGroups)
	leafGroup := func(s *ctree.Sink) int {
		if b.opt.SingleGroup {
			return 0
		}
		return s.Group
	}
	for i := 0; i < n; i++ {
		id := i
		if sinkIDs != nil {
			id = sinkIDs[i]
		}
		s := &b.in.Sinks[id]
		g := leafGroup(s)
		if groupsIntern[g] == nil {
			groupsIntern[g] = []int{g}
			delayIntern[g] = rctree.PointDelaySet(g, rctree.PointInterval(0))
		}
		leaf := &b.arena[i]
		*leaf = ctree.Node{
			ID:     s.ID,
			Sink:   s,
			Region: geom.RectFromPoint(s.Loc),
			Cap:    s.CapFF,
			Groups: groupsIntern[g],
			Delay:  delayIntern[g],
		}
		b.nodes = append(b.nodes, leaf)
	}
}

// initRootNodes adopts pre-built subtree roots as the builder's initial
// items (the stitch form: MergeRoots); the arena only holds the k−1 internal
// nodes the stitch will create.
func (b *builder) initRootNodes(roots []*ctree.Node) {
	k := len(roots)
	b.arena = nil
	if k > 1 {
		b.arena = make([]ctree.Node, k-1)
	}
	b.arenaOff = k
	b.nodes = append(make([]*ctree.Node, 0, 2*k-1), roots...)
}

// route runs the merging loop over the builder's initial nodes (set by
// initSinkNodes or initRootNodes) down to a single root, which may be left
// Deferred — finishRoot commits it toward the source when the tree is final.
func (b *builder) route() {
	rgn := b.opt.Trace.Begin("route")
	defer rgn.End()
	n := len(b.nodes)
	if n == 1 {
		b.root = b.nodes[0]
		return
	}

	dist := func(i, j int) float64 {
		na, nb := b.nodes[i], b.nodes[j]
		if !na.Deferred && !nb.Deferred {
			// Committed regions are rectangles; their octagon lift has
			// redundant diagonal bounds (each diagonal gap is at most the
			// larger axis gap), so DistOO reduces to the much cheaper
			// rectangle distance. This is the hot call of every pairing
			// scan, and in zero-skew runs no node is ever deferred.
			return geom.DistRR(na.Region, nb.Region)
		}
		return geom.DistOO(na.ActiveRegion(), nb.ActiveRegion())
	}
	ocfg := b.opt.Order
	userKey := ocfg.Key != nil
	if ocfg.Key == nil {
		bias := b.opt.DelayTargetBias
		ocfg.Key = func(i, j int, d float64) float64 {
			k := b.mergeKey(i, j, d)
			if bias > 0 {
				di := b.overallOf(b.nodes[i])
				dj := b.overallOf(b.nodes[j])
				k -= bias * ((di.Lo+di.Hi)/2 + (dj.Lo+dj.Hi)/2)
			}
			return k
		}
	}
	if ocfg.Pairer == nil && b.useGridPairer(n, userKey) {
		// Index nodes by the u/v bounds of their active regions: the bound
		// distance under-estimates the true octagon distance, keeping the
		// grid's pruning sound, while dist/key stay exact. mergeKey only
		// ever adds non-negative snaking excess to the distance (the
		// delay-target bias, which can subtract, is excluded above), so
		// key ≥ dist holds and grid pairing is exact.
		box := func(id int) geom.Rect { return b.nodes[id].ActiveRegion().Bounds() }
		boxes := make([]geom.Rect, n)
		for i := range boxes {
			boxes[i] = box(i)
		}
		ocfg.Pairer = spatial.NewGridPairerFor(boxes, box, dist, ocfg.Key)
	}
	q := order.New(ocfg, n, dist)
	for {
		if b.done != nil {
			select {
			case <-b.done:
				b.err = fmt.Errorf("core: build cancelled: %w", b.opt.Ctx.Err())
				return
			default:
			}
		}
		batch := q.NextBatch()
		if len(batch) == 0 {
			break
		}
		b.runBatch(q, batch)
	}
	b.stats.PairScans = q.Scans()
	if gp, ok := ocfg.Pairer.(*spatial.GridPairer); ok {
		b.stats.GridRebuilds = gp.Index().Rebuilds()
	}
	if tr := b.opt.Trace; tr != nil {
		tr.Metric(obs.MetricPairingNS, float64(q.BatchTime().Nanoseconds()))
		if gp, ok := ocfg.Pairer.(*spatial.GridPairer); ok {
			tr.Metric(obs.MetricGridRebuildNS, float64(gp.Index().RebuildTime().Nanoseconds()))
		}
		if b.waveRounds > 0 {
			tr.Metric(obs.MetricWaveRounds, float64(b.waveRounds))
			tr.Metric(obs.MetricWaveSlotNS, float64(b.waveSlotNS))
			tr.Metric(obs.MetricWaveIdleNS, float64(b.waveIdleNS))
			tr.Metric(obs.MetricWaveBatchMax, float64(b.waveBatchMax))
		}
	}
	b.root = b.nodes[len(b.nodes)-1]
}

// finishRoot pins a still-deferred tree root at the split realizing its
// closest approach to the clock source.
func (b *builder) finishRoot() {
	if !b.root.Deferred {
		return
	}
	src := geom.OctFromUV(geom.ToUV(b.in.Source))
	q, _ := geom.ClosestPoints(b.root.DefRegion, src)
	b.resolve(b.root, geom.DistRP(b.root.Left.Region, q))
}

// minParallelBatch is the batch size below which runBatch stays serial: the
// scheduling pass and goroutine fan-out cost more than a handful of merge
// bodies.
const minParallelBatch = 8

// mergeWorkerCount resolves Options.MergeWorkers.
func (b *builder) mergeWorkerCount() int {
	if b.opt.MergeWorkers > 0 {
		return b.opt.MergeWorkers
	}
	return runtime.GOMAXPROCS(0)
}

// runBatch executes one round's disjoint merge batch and registers the
// results with the queue in batch order. Small batches (or MergeWorkers=1)
// run serially; larger ones fan the merge bodies out across workers and
// commit serially, which is bitwise-identical to the serial execution:
//
//   - The pairs of a batch share no subtree, so merge bodies only interact
//     through the group-offset registry (builder.uf).
//   - A scheduling pass walks the batch in order tracking, conservatively,
//     the set of union roots each merge may commit (a merge spanning ≥ 2
//     distinct roots may union them). A merge whose root set intersects a
//     prior writer's is deferred to the serial commit phase, where it runs
//     against the live registry exactly as the serial order would.
//   - Every other merge joins the parallel wave. Non-writers read the
//     shared registry (frozen during the wave); writers run on a private
//     clone, journaling their unions. Since no prior batch writer touched
//     their roots, the clone view equals the serial view over everything
//     the merge can read.
//   - The commit phase walks the batch in order: wave results adopt their
//     stat deltas and replay their journaled unions; deferred merges
//     execute serially in place. Node ids, queue registration and spatial
//     re-indexing all happen here, in batch order.
//
// Single-group runs (ZST, EXT-BST) and prescribed-offset runs have one
// union root for every merge, so the whole batch always waves.
func (b *builder) runBatch(q *order.Queue, batch []order.Pair) {
	base := len(b.nodes)
	if workers := b.mergeWorkerCount(); workers > 1 && len(batch) >= minParallelBatch {
		b.mergeBatchParallel(batch, base, workers)
	} else {
		for k, p := range batch {
			b.merge(b.nodes[p.I], b.nodes[p.J], b.slot(base+k))
		}
	}
	for k := range batch {
		c := b.slot(base + k)
		c.ID = base + k
		b.nodes = append(b.nodes, c)
		q.Merged(c.ID)
	}
}

// mergeBatchParallel is runBatch's parallel wave + serial commit (see the
// runBatch comment for the invariants). When traced it times the round's
// three sections — serial scheduling pass, parallel wave, serial commit —
// and accumulates the wave's idle accounting: over a round with W workers,
// slot time is (sched + wave + commit)·W and idle time is
// (sched + commit)·(W−1) plus the wave's internal imbalance (wave·W − Σbusy),
// so idle/slot across rounds is the fraction of worker capacity spent
// waiting on the serial sections or on uneven chunks.
func (b *builder) mergeBatchParallel(batch []order.Pair, base, workers int) {
	tr := b.opt.Trace
	var rgn obs.Region
	var tStart time.Time
	if tr != nil {
		rgn = tr.Begin("wave")
		tStart = obs.Now()
		if len(b.busyNS) < workers {
			b.busyNS = make([]int64, workers)
		}
		for i := range b.busyNS {
			b.busyNS[i] = 0
		}
	}
	// Scheduling pass: conservative registry-conflict analysis in batch
	// order, against the pre-batch registry (b.uf is not mutated here).
	multiRoot := !b.opt.SingleGroup && b.in.NumGroups > 1 && b.opt.GroupOffsets == nil
	if b.rootsIn == nil && multiRoot {
		b.rootsIn = make([]bool, b.in.NumGroups)
	}
	tasks := b.tasks[:0]
	for k, p := range batch {
		t := mergeTask{na: b.nodes[p.I], nb: b.nodes[p.J], out: b.slot(base + k), wave: true}
		if multiRoot {
			t.wave, t.writer = b.scheduleTask(t.na, t.nb)
		}
		tasks = append(tasks, t)
	}
	b.tasks = tasks
	if multiRoot {
		// Reset the written-roots scratch for the next batch.
		for i := range b.rootsIn {
			b.rootsIn[i] = false
		}
	}

	// Parallel wave over contiguous chunks; chunk w handles tasks[lo:hi].
	if b.workers == nil {
		b.workers = make([]mergeWorker, 0, workers)
	}
	for len(b.workers) < workers {
		w := mergeWorker{wb: builder{opt: b.opt, in: b.in}}
		// Workers run untraced: a Trace/Probe is single-goroutine, and the
		// coordinating builder owns the round's accounting.
		w.wb.opt.Trace = nil
		w.wb.opt.SneakProbe = nil
		w.wb.initScratch()
		b.workers = append(b.workers, w)
	}
	var tSched time.Time
	if tr != nil {
		tSched = obs.Now()
	}
	var next atomic.Int32
	order.ParallelChunksN(len(tasks), workers, 1, func(lo, hi int) {
		// ParallelChunksN launches at most `workers` chunks; the counter
		// keys each chunk to a private worker without assuming launch order.
		wi := next.Add(1) - 1
		w := &b.workers[wi]
		var tBusy time.Time
		if tr != nil {
			tBusy = obs.Now()
		}
		for k := lo; k < hi; k++ {
			t := &tasks[k]
			if !t.wave {
				continue
			}
			w.wb.stats = Stats{}
			if t.writer {
				b.uf.cloneInto(&w.uf)
				t.unions = t.unions[:0]
				w.uf.journal = &t.unions
				w.wb.uf = &w.uf
			} else {
				w.wb.uf = b.uf // read-only during the wave
			}
			w.wb.merge(t.na, t.nb, t.out)
			t.stats = w.wb.stats
		}
		if tr != nil {
			b.busyNS[wi] = obs.Since(tBusy).Nanoseconds()
		}
	})
	var tWave time.Time
	if tr != nil {
		tWave = obs.Now()
	}

	// Serial commit in batch order.
	for k := range tasks {
		t := &tasks[k]
		if t.wave {
			b.stats.add(t.stats)
			for _, u := range t.unions {
				// Replay raw: the recorded roots are untouched by every
				// other merge of this batch (scheduling invariant).
				b.uf.parent[u.rb] = u.ra
				b.uf.off[u.rb] = u.rel
			}
		} else {
			b.merge(t.na, t.nb, t.out)
		}
	}

	if tr != nil {
		w := int64(workers)
		sched := tSched.Sub(tStart).Nanoseconds()
		wave := tWave.Sub(tSched).Nanoseconds()
		commit := obs.Since(tWave).Nanoseconds()
		var busy int64
		for _, v := range b.busyNS[:workers] {
			busy += v
		}
		idle := (sched+commit)*(w-1) + (wave*w - busy)
		if idle < 0 {
			idle = 0 // clock skew between the chunk timers and the wave timer
		}
		slot := (sched + wave + commit) * w
		b.waveRounds++
		b.waveSlotNS += slot
		b.waveIdleNS += idle
		if len(batch) > b.waveBatchMax {
			b.waveBatchMax = len(batch)
		}
		idleFrac := 0.0
		if slot > 0 {
			idleFrac = float64(idle) / float64(slot)
		}
		rgn.Attr("batch", float64(len(batch))).
			Attr("workers", float64(workers)).
			Attr("idle_frac", idleFrac)
		rgn.End()
	}
}

// appendDistinctRoots appends the distinct union roots of the given groups
// to dst, linearly deduplicating (group counts are small, and a stack
// buffer beats a map on the hot paths that call this).
func (b *builder) appendDistinctRoots(dst []int, gs []int) []int {
	for _, g := range gs {
		r, _ := b.uf.find(g)
		dup := false
		for _, have := range dst {
			if have == r {
				dup = true
				break
			}
		}
		if !dup {
			dst = append(dst, r)
		}
	}
	return dst
}

// scheduleTask classifies one batch merge against the written-roots scratch:
// reports whether it can run in the parallel wave and whether it may write
// the registry. Must be called in batch order.
func (b *builder) scheduleTask(na, nb *ctree.Node) (wave, writer bool) {
	// Collect the distinct union roots of both subtrees' groups.
	var roots [16]int
	rs := b.appendDistinctRoots(b.appendDistinctRoots(roots[:0], na.Groups), nb.Groups)
	writer = len(rs) >= 2
	conflict := false
	for _, r := range rs {
		if b.rootsIn[r] {
			conflict = true
			break
		}
	}
	if conflict || writer {
		// Tail tasks are treated as writers too: they run against the live
		// registry and may commit unions among these roots.
		for _, r := range rs {
			b.rootsIn[r] = true
		}
	}
	return !conflict, writer
}

// resolve pins a deferred node and registers the group-offset commitments it
// makes with the soft registry.
func (b *builder) resolve(n *ctree.Node, e float64) {
	if !n.Deferred {
		return
	}
	n.Resolve(b.opt.Model, e)
	b.registerOffsets(n)
}

// registerOffsets records, for a just-committed node spanning several
// groups, the first-seen relative offsets between previously unrelated
// groups (thesis Ch. V.E.1: the involved groups form a new merged group).
func (b *builder) registerOffsets(n *ctree.Node) {
	var haveFirst bool
	var firstRoot int
	var firstNorm float64
	for i := 0; i < n.Delay.Len(); i++ { // ascending group: keeps runs deterministic
		g, iv := n.Delay.At(i)
		r, off := b.uf.find(g)
		norm := (iv.Lo+iv.Hi)/2 - off
		if !haveFirst {
			haveFirst, firstRoot, firstNorm = true, r, norm
			continue
		}
		if r == firstRoot {
			continue
		}
		b.uf.union(firstRoot, r, norm-firstNorm)
		b.stats.GroupUnions++
	}
}

// overallOf returns the node's overall delay interval; for deferred nodes it
// evaluates the midpoint split without committing it.
func (b *builder) overallOf(n *ctree.Node) rctree.Interval {
	if !n.Deferred {
		return n.OverallDelay()
	}
	m := b.opt.Model
	e := mid(n.SplitRange())
	l := n.Left.OverallDelay().Shift(m.WireDelay(e, n.Left.Cap))
	r := n.Right.OverallDelay().Shift(m.WireDelay(n.DefD-e, n.Right.Cap))
	return rctree.Cover(l, r)
}

// mergeKey estimates the wirelength a merge of nodes i and j would commit:
// their region distance plus, when they share a group, the snaking excess
// implied by their current delay imbalance. Using this as the greedy merging
// cost (instead of bare distance) reproduces greedy-DME's minimum-cost order
// and prevents delay-imbalanced pairings that fat deferred regions would
// otherwise chain together.
func (b *builder) mergeKey(i, j int, d float64) float64 {
	// In exact zero-skew single-group mode no region is ever fat, chaining
	// cannot occur, and the classic distance order is empirically better.
	if b.opt.SingleGroup && b.opt.GlobalBound == 0 {
		return d
	}
	na, nb := b.nodes[i], b.nodes[j]
	var bound float64
	switch {
	case len(ctree.SharedGroups(na.Groups, nb.Groups)) > 0:
		bound = b.boundOf()
	case b.relatedRoots(na, nb):
		bound = b.boundOf() + b.interBound()
	default:
		return d
	}
	if math.IsInf(bound, 1) {
		return d
	}
	m := b.opt.Model
	ia := b.overallOf(na)
	ib := b.overallOf(nb)
	xLo := ib.Hi - ia.Lo - bound
	xHi := ib.Lo - ia.Hi + bound
	x0 := -m.WireDelay(d, nb.Cap)
	xd := m.WireDelay(d, na.Cap)
	switch {
	case xHi < x0:
		return d + math.Max(math.Max(m.ExtendForDelay(nb.Cap, -xHi), d)-d, 0)
	case xLo > xd:
		return d + math.Max(math.Max(m.ExtendForDelay(na.Cap, xLo), d)-d, 0)
	default:
		return d
	}
}

// merge performs one AST-DME merge of subtrees a and b (thesis Fig. 6,
// steps 4–7), constructing the new subtree root in c (a preassigned arena
// slot; c.ID is set by the caller at commit).
func (b *builder) merge(na, nb *ctree.Node, c *ctree.Node) {
	m := b.opt.Model
	bound := b.boundOf()
	b.sharedBuf = ctree.AppendSharedGroups(b.sharedBuf[:0], na.Groups, nb.Groups)
	shared := b.sharedBuf
	b.stats.Merges++
	switch {
	case len(shared) == 0:
		b.stats.CrossGroup++
	case len(na.Groups) == 1 && len(nb.Groups) == 1:
		b.stats.SameGroup++
	default:
		b.stats.Shared++
	}

	// Pin any deferred splits. With constraints between the pair the splits
	// are chosen jointly so the windows intersect at the least committed
	// cost; otherwise the closest approach decides.
	if na.Deferred || nb.Deferred {
		if len(shared) > 0 || (!math.IsInf(b.interBound(), 1) && b.relatedRoots(na, nb)) {
			b.jointResolve(na, nb, shared, bound)
		} else {
			qa, qb := geom.ClosestPoints(na.ActiveRegion(), nb.ActiveRegion())
			if na.Deferred {
				b.resolve(na, geom.DistRP(na.Left.Region, qa))
			}
			if nb.Deferred {
				b.resolve(nb, geom.DistRP(nb.Left.Region, qb))
			}
		}
	}

	// Intersect the hard windows (shared raw groups + inter-group window),
	// wire-sneaking when they conflict (thesis Fig. 5 / Eqs. 5.1–5.3).
	xLo, xHi, compromised := b.intersectWindows(na, nb, shared)

	d := geom.DistRR(na.Region, nb.Region)
	*c = ctree.Node{
		Left: na, Right: nb,
		Cap:    na.Cap + nb.Cap,
		Groups: b.unionGroups(na, nb),
	}

	eLo, eHi, snaked := b.splitWindow(na, nb, d, xLo, xHi, compromised)
	if snaked {
		b.stats.MergeSnakes++
	}
	const widthEps = 1e-9
	if !snaked && eHi-eLo > widthEps*(1+d) {
		// Keep the whole feasible sub-region of the SDR; the split commits
		// when this node is next merged (or at the tree root).
		c.Deferred = true
		c.DefD = d
		c.DefELo, c.DefEHi = eLo, eHi
		c.DefRegion = geom.SDR(na.Region, nb.Region, d, eLo, eHi)
		c.Cap += m.WireCap(d)
		b.stats.Deferred++
	} else {
		ea, eb := eLo, d-eLo
		if snaked {
			// splitWindow returns committed lengths through eLo/eHi when
			// snaking: eLo is ea, eHi is eb.
			ea, eb = eLo, eHi
		}
		c.EdgeL, c.EdgeR = ea, eb
		c.Region = geom.MergeLocus(na.Region, nb.Region, ea, eb)
		c.Cap += m.WireCap(ea) + m.WireCap(eb)
		wa := m.WireDelay(ea, na.Cap)
		wb := m.WireDelay(eb, nb.Cap)
		ds := b.delays.alloc(na.Delay.Len() + nb.Delay.Len())
		rctree.MergeDelaysInto(&ds, na.Delay, wa, nb.Delay, wb)
		c.Delay = b.delays.reclaim(ds)
		b.registerOffsets(c)
	}
}

func mid(lo, hi float64) float64 { return (lo + hi) / 2 }

// unionGroups returns the sorted union of the children's group sets,
// sharing the child's slice when one side covers the other (always, in
// single-group runs) — group slices are never mutated in place, so sharing
// is safe and saves an allocation on the vast majority of merges.
func (b *builder) unionGroups(na, nb *ctree.Node) []int {
	b.unionBuf = ctree.AppendUnionGroups(b.unionBuf[:0], na.Groups, nb.Groups)
	u := b.unionBuf
	switch {
	case len(u) == len(na.Groups):
		return na.Groups // union ⊇ a and same length ⇒ equal
	case len(u) == len(nb.Groups):
		return nb.Groups
	default:
		return append([]int(nil), u...)
	}
}

// windowGap evaluates candidate splits (ea, eb) of the two nodes against the
// upcoming merge. It returns the infeasibility gap (ps) of the intersected
// hard-window system (0 when the windows intersect) and the cost the merge
// would commit: the candidate distance, plus any snaking excess needed to
// reach the window, minus a small preference for wide residual windows.
func (b *builder) windowGap(na, nb *ctree.Node, shared []int, bound, ea, eb float64) (gap, cost, misalign float64) {
	m := b.opt.Model
	da := na.DelayAtBuf(m, ea, &b.delayA)
	db := nb.DelayAtBuf(m, eb, &b.delayB)
	xLo, xHi := math.Inf(-1), math.Inf(1)
	normalized := b.forConstraints(da, db, shared, func(_ constraint, ia, ib rctree.Interval, bd float64) {
		if lo := ib.Hi - ia.Lo - bd; lo > xLo {
			xLo = lo
		}
		if hi := ib.Lo - ia.Hi + bd; hi < xHi {
			xHi = hi
		}
	})
	gap = math.Max(xLo-xHi, 0)
	d := geom.DistRR(na.RectAt(ea), nb.RectAt(eb))
	cost = d

	// Tertiary criterion: the merge applies a single shift X to all shared
	// union roots, so if the per-root required shifts disagree, whatever X
	// is chosen commits offsets away from their registered values. The
	// spread of the required shifts measures that inevitable drift; small
	// spread keeps the global offset system consistent and cheap.
	{
		// forConstraints already normalized da/db into the scratch sets
		// when the leash is active; recompute only when it did not.
		va, vb := b.normA, b.normB
		if !normalized {
			va = b.normalizeInto(&b.normA, da)
			vb = b.normalizeInto(&b.normB, db)
		}
		lo, hi := math.Inf(1), math.Inf(-1)
		rctree.ForEachShared(va, vb, func(_ int32, ia, ib rctree.Interval) {
			s := (ib.Lo+ib.Hi)/2 - (ia.Lo+ia.Hi)/2
			lo = math.Min(lo, s)
			hi = math.Max(hi, s)
		})
		if hi > lo {
			misalign = hi - lo
		}
	}

	// Snaking excess: wire beyond d needed to shift X into the hard window.
	capA, capB := na.Cap, nb.Cap
	x0 := -m.WireDelay(d, capB)
	xd := m.WireDelay(d, capA)
	switch {
	case xHi < x0:
		cost += math.Max(m.ExtendForDelay(capB, -xHi), d) - d
	case xLo > xd:
		cost += math.Max(m.ExtendForDelay(capA, xLo), d) - d
	default:
		// Prefer keeping a wide residual window: subtract the overlap width
		// mapped to split units, weighted well below one wire unit so it
		// only breaks ties among near-equal costs.
		overlap := math.Min(xHi, xd) - math.Max(xLo, x0)
		slope := m.WireDelay(d, capA) + m.WireDelay(d, capB)
		if d > 0 && slope > 0 && !math.IsInf(overlap, 1) {
			cost -= 0.01 * d * math.Min(overlap/slope, 1)
		}
	}
	return gap, cost, misalign
}

// relatedRoots reports whether the registry relates any group of na to any
// group of nb. It is called from the merge key, i.e. from concurrent pairing
// goroutines, so it only reads the registry.
func (b *builder) relatedRoots(na, nb *ctree.Node) bool {
	var buf [16]int
	roots := b.appendDistinctRoots(buf[:0], na.Groups)
	for _, g := range nb.Groups {
		r, _ := b.uf.find(g)
		for _, have := range roots {
			if have == r {
				return true
			}
		}
	}
	return false
}

// jointResolve pins the deferred splits of na and nb so the hard windows of
// the upcoming merge intersect if at all possible, minimizing
// (infeasibility gap, committed cost) lexicographically: a coarse grid
// search followed by alternating golden-section polish per axis.
func (b *builder) jointResolve(na, nb *ctree.Node, shared []int, bound float64) {
	aLo, aHi := na.SplitRange()
	bLo, bHi := nb.SplitRange()
	bestA, bestB := mid(aLo, aHi), mid(bLo, bHi)
	bestGap, bestCost, bestMis := b.windowGap(na, nb, shared, bound, bestA, bestB)

	consider := func(ea, eb float64) {
		gap, cost, mis := b.windowGap(na, nb, shared, bound, ea, eb)
		epsG := 1e-9 * (1 + bestGap)
		epsC := 1e-6 * (1 + math.Abs(bestCost))
		switch {
		case gap < bestGap-epsG,
			gap <= bestGap+epsG && cost < bestCost-epsC,
			gap <= bestGap+epsG && cost <= bestCost+epsC && mis < bestMis:
			bestGap, bestCost, bestMis = gap, cost, mis
			bestA, bestB = ea, eb
		}
	}

	const coarse = 13
	samples := func(lo, hi float64) []float64 {
		if hi-lo <= 0 {
			return []float64{lo}
		}
		out := make([]float64, coarse)
		for i := range out {
			out[i] = lo + (hi-lo)*float64(i)/float64(coarse-1)
		}
		return out
	}
	for _, ea := range samples(aLo, aHi) {
		for _, eb := range samples(bLo, bHi) {
			consider(ea, eb)
		}
	}

	// Alternating golden-section polish per axis, on the same lexicographic
	// (gap, cost, misalignment) criterion.
	golden := func(lo, hi float64, f func(float64) (float64, float64, float64)) float64 {
		if hi-lo <= 0 {
			return lo
		}
		const phi = 0.6180339887498949
		x1 := hi - phi*(hi-lo)
		x2 := lo + phi*(hi-lo)
		f1g, f1c, f1m := f(x1)
		f2g, f2c, f2m := f(x2)
		better := func(g1, c1, m1, g2, c2, m2 float64) bool {
			if g1 != g2 {
				return g1 < g2
			}
			if c1 != c2 {
				return c1 < c2
			}
			return m1 < m2
		}
		for it := 0; it < 40 && hi-lo > 1e-9*(1+hi); it++ {
			if better(f1g, f1c, f1m, f2g, f2c, f2m) {
				hi, x2, f2g, f2c, f2m = x2, x1, f1g, f1c, f1m
				x1 = hi - phi*(hi-lo)
				f1g, f1c, f1m = f(x1)
			} else {
				lo, x1, f1g, f1c, f1m = x1, x2, f2g, f2c, f2m
				x2 = lo + phi*(hi-lo)
				f2g, f2c, f2m = f(x2)
			}
		}
		return mid(lo, hi)
	}
	for round := 0; round < 2; round++ {
		if na.Deferred {
			ea := golden(aLo, aHi, func(e float64) (float64, float64, float64) {
				return b.windowGap(na, nb, shared, bound, e, bestB)
			})
			consider(ea, bestB)
		}
		if nb.Deferred {
			eb := golden(bLo, bHi, func(e float64) (float64, float64, float64) {
				return b.windowGap(na, nb, shared, bound, bestA, e)
			})
			consider(bestA, eb)
		}
	}

	b.resolve(na, bestA)
	b.resolve(nb, bestB)
}

// handle is a snaking site: a tree edge whose subtree is pure in the target
// group, together with the resistance of the path from the routing subtree's
// root down to the edge (needed to solve the elongation exactly).
type handle struct {
	ref ctree.EdgeRef
	rUp float64
}

// appendCoverHandles appends to dst the incoming edges of the maximal
// pure-g subtrees of n: elongating all of them by the same delay shifts the
// whole group coherently (the generalized wire-sneaking handle of thesis
// Fig. 5). Appends nothing when n itself is pure (no interior edge covers
// the group). dst is a reusable scratch buffer: callers own its lifetime.
func appendCoverHandles(dst []handle, m rctree.Model, n *ctree.Node, g int) []handle {
	if _, pure := n.PureGroup(); pure || n.IsLeaf() {
		return dst
	}
	var walk func(parent *ctree.Node, rUp float64)
	walk = func(parent *ctree.Node, rUp float64) {
		for _, side := range []ctree.Side{ctree.SideL, ctree.SideR} {
			ref := ctree.EdgeRef{Parent: parent, Side: side}
			child := ref.Child()
			if !child.HasGroup(g) {
				continue
			}
			if pg, pure := child.PureGroup(); pure && pg == g {
				dst = append(dst, handle{ref: ref, rUp: rUp})
				continue
			}
			if !child.IsLeaf() {
				walk(child, rUp+m.WireRes(ref.Len()))
			}
		}
	}
	walk(n, 0)
	return dst
}

// intersectWindows intersects the feasible X windows of all shared raw
// groups. On conflict it elongates the cover-handle edges of the offending
// group (wire sneaking) inside whichever subtree can shift it more cheaply,
// recomputing that subtree exactly and iterating until the intersection is
// feasible, the wire cost cap is hit, or iterations run out. compromised
// reports that the returned (degenerate) window is a least-violation
// compromise rather than a satisfiable constraint.
func (b *builder) intersectWindows(na, nb *ctree.Node, shared []int) (xLo, xHi float64, compromised bool) {
	m := b.opt.Model
	budget := b.opt.SneakCostCap * (geom.DistRR(na.Region, nb.Region) + 1)
	probe := b.opt.SneakProbe
	seq := 0
	if probe != nil {
		b.probeSeq++
		seq = b.probeSeq
	}
	for iter := 0; ; iter++ {
		xLo, xHi := math.Inf(-1), math.Inf(1)
		var gLo, gHi constraint
		b.forConstraints(na.Delay, nb.Delay, shared, func(c constraint, ia, ib rctree.Interval, bd float64) {
			if lo := ib.Hi - ia.Lo - bd; lo > xLo {
				xLo, gLo = lo, c
			}
			if hi := ib.Lo - ia.Hi + bd; hi < xHi {
				xHi, gHi = hi, c
			}
		})
		if math.IsInf(xLo, -1) && math.IsInf(xHi, 1) {
			return xLo, xHi, false // no constraints at all
		}
		gap := xLo - xHi
		eps := 1e-9 * (1 + math.Abs(xLo) + math.Abs(xHi))
		if probe != nil {
			probe.Record("window", seq, iter, gap, xLo, xHi, 0, b.probeOffsets())
		}
		if gap <= eps || iter >= b.opt.MaxSneakIter || gLo == gHi {
			if gap > 0 {
				if gap > eps {
					b.stats.SneakUnresolved++
				}
				// Least-violation compromise: any X between the crossed
				// bounds violates at most gap; keep the middle half of that
				// range (max violation 3·gap/4 instead of gap/2 at the
				// midpoint) so the merge retains region freedom instead of
				// collapsing to a point and starving later merges.
				return xHi + gap/4, xLo - gap/4, gap > eps
			}
			return xLo, xHi, false
		}
		b.stats.SneakIters++
		// Close the gap: either slow constraint gHi on nb's side (raises its
		// window ceiling) or slow gLo on na's side (lowers its floor).
		// Pick the cheaper available cover.
		planB := b.sneakPlan(nb, gHi, gap, &b.sneakB)
		planA := b.sneakPlan(na, gLo, gap, &b.sneakA)
		plan, sub := planB, nb
		if planB == nil || (planA != nil && planA.wire < planB.wire) {
			plan, sub = planA, na
		}
		if plan == nil || plan.wire > budget {
			b.stats.SneakUnresolved++
			c := (xLo + xHi) / 2
			return c, c, true
		}
		// Apply tentatively and verify progress: the added snake capacitance
		// perturbs every delay in the subtree through shared ancestor
		// resistance, and when that crosstalk rivals the intended shift the
		// sneak cannot converge — revert and fall back to the compromise.
		for i, h := range plan.handles {
			h.ref.AddLen(plan.gammas[i])
		}
		sub.Recompute(m)
		if newGap := b.currentGap(na, nb, shared); newGap > 0.7*gap {
			for i, h := range plan.handles {
				h.ref.AddLen(-plan.gammas[i])
			}
			sub.Recompute(m)
			if probe != nil {
				probe.Record("revert", seq, iter, newGap, xLo, xHi, plan.wire, nil)
			}
			b.stats.SneakUnresolved++
			c := (xLo + xHi) / 2
			return c, c, true
		}
		if probe != nil {
			probe.Record("sneak", seq, iter, gap, xLo, xHi, plan.wire, nil)
		}
		budget -= plan.wire
		b.stats.SneakEvents++
		b.stats.SneakWire += plan.wire
	}
}

// probeOffsets snapshots the registry's per-group cumulative offsets (each
// group's offset to its union root) into the probe scratch for one
// ProbeEvent.Vals record.
func (b *builder) probeOffsets() []float64 {
	if b.probeVals == nil {
		b.probeVals = make([]float64, b.in.NumGroups)
	}
	for g := range b.probeVals {
		_, b.probeVals[g] = b.uf.find(g)
	}
	return b.probeVals
}

// currentGap recomputes the window infeasibility of the pair in place.
func (b *builder) currentGap(na, nb *ctree.Node, shared []int) float64 {
	xLo, xHi := math.Inf(-1), math.Inf(1)
	b.forConstraints(na.Delay, nb.Delay, shared, func(_ constraint, ia, ib rctree.Interval, bd float64) {
		if lo := ib.Hi - ia.Lo - bd; lo > xLo {
			xLo = lo
		}
		if hi := ib.Lo - ia.Hi + bd; hi < xHi {
			xHi = hi
		}
	})
	if math.IsInf(xLo, -1) {
		return 0
	}
	return math.Max(xLo-xHi, 0)
}

// sneak is a set of edge elongations that coherently delays one constraint's
// sinks inside a subtree. Its slices alias a sneakScratch buffer: a plan is
// valid until that buffer's next reuse, which is fine because plans are
// applied (or discarded) within the same intersectWindows iteration.
type sneak struct {
	handles []handle
	gammas  []float64
	wire    float64
}

// sneakPlan computes the edge elongations that add `delay` ps to every sink
// governed by constraint c in subtree n, or nil when no cover exists. For a
// raw-group constraint the cover is the group's maximal pure subtrees; for a
// union-root leash it is the union of the covers of all member groups
// present in n. buf provides the plan's backing storage.
func (b *builder) sneakPlan(n *ctree.Node, c constraint, delay float64, buf *sneakScratch) *sneak {
	m := b.opt.Model
	hs := buf.handles[:0]
	if c.raw {
		hs = appendCoverHandles(hs, m, n, c.id)
	} else {
		for _, g := range n.Groups {
			if r, _ := b.uf.find(g); r == c.id {
				hs = appendCoverHandles(hs, m, n, g)
			}
		}
	}
	buf.handles = hs
	if len(hs) == 0 {
		return nil
	}
	buf.plan = sneak{handles: hs, gammas: buf.gammas[:0]}
	p := &buf.plan
	for _, h := range hs {
		gam := m.ElongationFor(delay, h.ref.Len(), h.ref.Child().Cap, h.rUp)
		p.gammas = append(p.gammas, gam)
		p.wire += gam
	}
	buf.gammas = p.gammas
	return p
}

// splitWindow maps the X-shift window [xLo, xHi] (possibly infinite) into
// split space for a merge across distance d. Without snaking it returns the
// feasible split window (eLo, eHi, false) ⊆ [0, d] — width zero for exact
// merges, positive width when slack remains (the node then stays deferred
// over a sub-SDR). When the window lies outside the achievable span it
// returns the minimal committed snaked lengths (ea, eb, true).
func (b *builder) splitWindow(na, nb *ctree.Node, d, xLo, xHi float64, compromised bool) (float64, float64, bool) {
	m := b.opt.Model
	if compromised && d > 0 {
		// The window is a least-violation compromise of conflicting
		// constraints. Honoring it through moderate snaking keeps the
		// violation small, but spending extreme wire on an already
		// unattainable target is pointless: beyond the sneak cost cap,
		// clamp into the achievable span and accept the larger violation.
		x0 := -m.WireDelay(d, nb.Cap)
		xd := m.WireDelay(d, na.Cap)
		budget := b.opt.SneakCostCap * (d + 1)
		switch {
		case xLo > xd && m.ExtendForDelay(na.Cap, math.Min(xLo, xHi))-d > budget,
			xHi < x0 && m.ExtendForDelay(nb.Cap, -math.Max(xHi, xLo))-d > budget:
			x := math.Min(math.Max(math.Min(xLo, xHi), x0), xd)
			xLo, xHi = x, x
		default:
			// Normalize the possibly inverted compromise range.
			if xLo > xHi {
				xLo, xHi = xHi, xLo
			}
		}
	}
	if b.opt.EndpointSplit && math.IsInf(xLo, -1) && math.IsInf(xHi, 1) {
		// Ablation: unconstrained merges commit the e=0 endpoint instead of
		// keeping the whole shortest-distance region.
		return 0, 0, false
	}

	if d <= 0 {
		switch {
		case xLo > 0:
			return math.Max(m.ExtendForDelay(na.Cap, xLo), d), 0, true
		case xHi < 0:
			return 0, math.Max(m.ExtendForDelay(nb.Cap, -xHi), d), true
		default:
			return 0, 0, false
		}
	}

	x0 := -m.WireDelay(d, nb.Cap) // X at e=0
	xd := m.WireDelay(d, na.Cap)  // X at e=d
	switch {
	case xHi < x0:
		// Must shift below what the span allows: all wire on B plus snake.
		return 0, math.Max(m.ExtendForDelay(nb.Cap, -xHi), d), true
	case xLo > xd:
		return math.Max(m.ExtendForDelay(na.Cap, xLo), d), 0, true
	default:
		eLo, eHi := 0.0, d
		if xLo > x0 {
			eLo = m.SplitForDiff(d, na.Cap, nb.Cap, xLo)
		}
		if xHi < xd {
			eHi = m.SplitForDiff(d, na.Cap, nb.Cap, xHi)
		}
		eLo = math.Min(math.Max(eLo, 0), d)
		eHi = math.Min(math.Max(eHi, eLo), d)
		return eLo, eHi, false
	}
}

// useGridPairer decides whether PairerAuto (or a forced mode) selects the
// spatial grid engine for this run.
func (b *builder) useGridPairer(n int, userKey bool) bool {
	switch b.opt.Pairer {
	case PairerGrid:
		return true
	case PairerScan:
		return false
	default:
		thr := b.opt.PairerThreshold
		if thr <= 0 {
			thr = GridPairerThreshold
		}
		return n >= thr && b.opt.DelayTargetBias == 0 && !userKey
	}
}

// String summarizes the stats.
func (s Stats) String() string {
	return fmt.Sprintf("merges=%d (same=%d cross=%d shared=%d deferred=%d unions=%d) snakes=%d sneaks=%d/%d iters (+%.0f wire, %d unresolved) scans=%d rebuilds=%d (drop=%d clamp=%d rate=%d walk=%d)",
		s.Merges, s.SameGroup, s.CrossGroup, s.Shared, s.Deferred, s.GroupUnions,
		s.MergeSnakes, s.SneakEvents, s.SneakIters, s.SneakWire, s.SneakUnresolved, s.PairScans,
		s.GridRebuilds.Total(), s.GridRebuilds.LiveDrop, s.GridRebuilds.EdgeClamp,
		s.GridRebuilds.ScanRate, s.GridRebuilds.CellWalk)
}
