package core

import (
	"math"
	"testing"

	"repro/internal/bench"
	"repro/internal/ctree"
	"repro/internal/eval"
	"repro/internal/geom"
	"repro/internal/order"
	"repro/internal/rctree"
)

// route builds and returns the measured report for an instance.
func route(t *testing.T, in *ctree.Instance, opt Options) (*Result, *eval.Report) {
	t.Helper()
	res, err := Build(in, opt)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if err := eval.CheckTree(res.Root, in); err != nil {
		t.Fatalf("CheckTree: %v", err)
	}
	m := opt.Model
	if m == nil {
		m = DefaultModel()
	}
	rep := eval.Analyze(res.Root, in, m, in.Source)
	if math.Abs(rep.TotalWire-res.Wirelength) > 1e-6*(1+res.Wirelength) {
		t.Fatalf("wirelength mismatch: eval %v vs result %v", rep.TotalWire, res.Wirelength)
	}
	return res, rep
}

func TestZSTExactZeroSkew(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		for _, n := range []int{2, 3, 10, 60} {
			in := bench.Small(n, seed)
			_, rep := route(t, in, Options{SingleGroup: true})
			if rep.Sinks != n {
				t.Fatalf("n=%d: reached %d sinks", n, rep.Sinks)
			}
			if rep.GlobalSkew > 1e-6*(1+rep.MaxDelay) {
				t.Errorf("n=%d seed=%d: ZST skew = %v ps (max delay %v)", n, seed, rep.GlobalSkew, rep.MaxDelay)
			}
		}
	}
}

func TestZSTGreedyOrderAlsoZeroSkew(t *testing.T) {
	in := bench.Small(40, 7)
	_, rep := route(t, in, Options{SingleGroup: true, Order: order.Config{Strategy: order.Greedy}})
	if rep.GlobalSkew > 1e-6*(1+rep.MaxDelay) {
		t.Errorf("greedy ZST skew = %v", rep.GlobalSkew)
	}
}

func TestEXTBSTRespectsBound(t *testing.T) {
	for _, bound := range []float64{0, 5, 10, 50} {
		in := bench.Small(80, 4)
		res, err := EXTBST(in, bound, Options{})
		if err != nil {
			t.Fatal(err)
		}
		rep := eval.Analyze(res.Root, in, DefaultModel(), in.Source)
		if rep.GlobalSkew > bound+1e-6*(1+bound+rep.MaxDelay) {
			t.Errorf("bound %v: skew %v", bound, rep.GlobalSkew)
		}
	}
}

func TestBSTWirelenDecreasesWithBound(t *testing.T) {
	// Larger skew bounds must not cost more wire. Per-instance results
	// wobble a few percent (greedy order, grid-resolved splits), so compare
	// seed aggregates with a loose monotonicity tolerance and require a
	// clear overall drop from exact zero skew to a nearly-unbounded skew.
	seeds := []int64{3, 9, 21, 33, 45}
	total := func(bound float64) float64 {
		var sum float64
		for _, seed := range seeds {
			res, err := EXTBST(bench.Small(120, seed), bound, Options{})
			if err != nil {
				t.Fatal(err)
			}
			sum += res.Wirelength
		}
		return sum
	}
	bounds := []float64{0, 10, 50, 200, 1000}
	prevMin := math.Inf(1)
	var first, last float64
	for i, bd := range bounds {
		w := total(bd)
		if i == 0 {
			first = w
		}
		last = w
		if w > prevMin*1.05 {
			t.Errorf("bound %v: aggregate wire %v well above previous best %v", bd, w, prevMin)
		}
		prevMin = math.Min(prevMin, w)
	}
	if last >= first {
		t.Errorf("unbounded skew wire %v not below zero-skew wire %v", last, first)
	}
}

func TestASTZeroIntraGroupSkew(t *testing.T) {
	for _, k := range []int{2, 3, 5} {
		for _, seed := range []int64{1, 5, 9} {
			in := bench.Intermingled(bench.Small(90, seed), k, seed*31)
			res, rep := route(t, in, Options{})
			tol := 1e-6 * (1 + rep.MaxDelay)
			if res.Stats.SneakUnresolved == 0 && rep.MaxGroupSkew > tol {
				t.Errorf("k=%d seed=%d: intra-group skew %v ps (stats %v)",
					k, seed, rep.MaxGroupSkew, res.Stats)
			}
			// Even with unresolved sneaks the residual must stay tiny
			// relative to total delay.
			if rep.MaxGroupSkew > 0.02*(1+rep.MaxDelay) {
				t.Errorf("k=%d seed=%d: excessive intra-group skew %v (max delay %v)",
					k, seed, rep.MaxGroupSkew, rep.MaxDelay)
			}
		}
	}
}

func TestASTCompetitiveWithEXTBSTOnIntermingled(t *testing.T) {
	// AST-DME relaxes EXT-BST's inter-group constraints, so across seeds its
	// wirelength should track EXT-BST closely (the heuristics do not
	// guarantee per-instance dominance; see EXPERIMENTS.md). Assert the
	// aggregate stays within a few percent and never degenerates.
	var astSum, extSum float64
	for _, seed := range []int64{3, 4, 5, 6} {
		in0 := bench.Small(150, seed)
		ext, err := EXTBST(in0, 10, Options{})
		if err != nil {
			t.Fatal(err)
		}
		in := bench.Intermingled(in0, 6, 77*seed)
		ast, err := Build(in, Options{IntraSkewBound: 10})
		if err != nil {
			t.Fatal(err)
		}
		astSum += ast.Wirelength
		extSum += ext.Wirelength
	}
	if astSum > extSum*1.08 {
		t.Errorf("AST-DME aggregate wire %v far above EXT-BST %v", astSum, extSum)
	}
}

func TestASTSingleGroupMatchesZST(t *testing.T) {
	// With one group, AST-DME must behave exactly like zero-skew DME.
	in := bench.Small(70, 8) // NumGroups = 1
	ast, err := Build(in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	zst, err := ZST(in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ast.Wirelength-zst.Wirelength) > 1e-9*(1+zst.Wirelength) {
		t.Errorf("AST(1 group) wire %v != ZST wire %v", ast.Wirelength, zst.Wirelength)
	}
	if ast.Stats.CrossGroup != 0 || ast.Stats.Shared != 0 {
		t.Errorf("single-group AST saw cross/shared merges: %v", ast.Stats)
	}
}

func TestASTBoundedIntraGroup(t *testing.T) {
	in := bench.Intermingled(bench.Small(80, 12), 3, 5)
	res, err := Build(in, Options{IntraSkewBound: 20})
	if err != nil {
		t.Fatal(err)
	}
	rep := eval.Analyze(res.Root, in, DefaultModel(), in.Source)
	// Exact enforcement is promised only when every window conflict was
	// reconciled; unresolved conflicts degrade gracefully (bounded leakage).
	allow := 20 + 1e-6*(20+rep.MaxDelay)
	if res.Stats.SneakUnresolved > 0 {
		allow = 2*20 + 0.01*rep.MaxDelay
	}
	if rep.MaxGroupSkew > allow {
		t.Errorf("intra-group skew %v exceeds allowance %v (stats %v)", rep.MaxGroupSkew, allow, res.Stats)
	}
	res0, err := Build(in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Wirelength > res0.Wirelength*1.05 {
		t.Errorf("bounded intra-group wire %v far above zero-bound wire %v", res.Wirelength, res0.Wirelength)
	}
}

func TestMergeDifferentGroupsUsesSDR(t *testing.T) {
	// Two sinks from different groups: the merge costs exactly their
	// distance and the merge region spans between them (thesis Fig. 3).
	in := &ctree.Instance{
		Name: "fig3",
		Sinks: []ctree.Sink{
			{ID: 0, Loc: geom.Point{X: 0, Y: 0}, CapFF: 10, Group: 0},
			{ID: 1, Loc: geom.Point{X: 30, Y: 40}, CapFF: 10, Group: 1},
		},
		Source:    geom.Point{X: 0, Y: 0},
		NumGroups: 2,
	}
	res, err := Build(in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.CrossGroup != 1 {
		t.Fatalf("stats: %v", res.Stats)
	}
	wantTree := 70.0 // Manhattan distance, no snaking allowed for free merges
	if math.Abs(res.Root.Wirelength()-wantTree) > 1e-9 {
		t.Errorf("tree wire = %v, want %v", res.Root.Wirelength(), wantTree)
	}
	if res.Stats.MergeSnakes != 0 {
		t.Error("cross-group merge snaked")
	}
}

func TestSharedInstance1GroupUnion(t *testing.T) {
	// Thesis Fig. 4: Ta,Td from G1; Tb from G2; Te from G3. After merging
	// (Ta,Tb) and (Td,Te), merging the results must equalize G1's delays,
	// and the final tree must hold zero skew within G1.
	in := &ctree.Instance{
		Name: "fig4",
		Sinks: []ctree.Sink{
			{ID: 0, Loc: geom.Point{X: 0, Y: 0}, CapFF: 10, Group: 0},   // a ∈ G1
			{ID: 1, Loc: geom.Point{X: 10, Y: 0}, CapFF: 10, Group: 1},  // b ∈ G2
			{ID: 2, Loc: geom.Point{X: 100, Y: 0}, CapFF: 10, Group: 0}, // d ∈ G1
			{ID: 3, Loc: geom.Point{X: 110, Y: 0}, CapFF: 10, Group: 2}, // e ∈ G3
		},
		Source:    geom.Point{X: 55, Y: 0},
		NumGroups: 3,
	}
	res, err := Build(in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep := eval.Analyze(res.Root, in, DefaultModel(), in.Source)
	if rep.GroupSkew[0] > 1e-9*(1+rep.MaxDelay) {
		t.Errorf("G1 skew = %v", rep.GroupSkew[0])
	}
	if res.Stats.Shared == 0 {
		t.Errorf("expected a partially-shared merge, stats %v", res.Stats)
	}
}

func TestSharedInstance2WireSneaking(t *testing.T) {
	// Thesis Fig. 5: Ta,Td ∈ G1 and Tb,Te ∈ G2 with both groups shared at
	// the final merge. Arrange asymmetric distances so the two groups'
	// feasible windows conflict, forcing wire sneaking — and verify both
	// groups still end at (near-)zero skew.
	in := &ctree.Instance{
		Name: "fig5",
		Sinks: []ctree.Sink{
			{ID: 0, Loc: geom.Point{X: 0, Y: 0}, CapFF: 10, Group: 0},   // a
			{ID: 1, Loc: geom.Point{X: 40, Y: 0}, CapFF: 10, Group: 1},  // b
			{ID: 2, Loc: geom.Point{X: 300, Y: 0}, CapFF: 10, Group: 0}, // d
			{ID: 3, Loc: geom.Point{X: 460, Y: 0}, CapFF: 10, Group: 1}, // e
		},
		Source:    geom.Point{X: 200, Y: 0},
		NumGroups: 2,
	}
	res, err := Build(in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep := eval.Analyze(res.Root, in, DefaultModel(), in.Source)
	tol := 1e-6 * (1 + rep.MaxDelay)
	if rep.MaxGroupSkew > tol {
		t.Errorf("intra-group skew %v after sneaking (stats %v)", rep.MaxGroupSkew, res.Stats)
	}
	if res.Stats.SneakEvents == 0 {
		t.Logf("note: windows did not conflict (stats %v); geometry may allow direct solve", res.Stats)
	}
}

func TestDelayTargetBiasStillValid(t *testing.T) {
	in := bench.Intermingled(bench.Small(60, 2), 3, 9)
	res, err := Build(in, Options{DelayTargetBias: 5})
	if err != nil {
		t.Fatal(err)
	}
	rep := eval.Analyze(res.Root, in, DefaultModel(), in.Source)
	if rep.MaxGroupSkew > 0.02*(1+rep.MaxDelay) {
		t.Errorf("intra-group skew %v with delay-target order", rep.MaxGroupSkew)
	}
}

func TestEndpointSplitAblationValid(t *testing.T) {
	in := bench.Intermingled(bench.Small(60, 6), 3, 4)
	res, err := Build(in, Options{EndpointSplit: true})
	if err != nil {
		t.Fatal(err)
	}
	rep := eval.Analyze(res.Root, in, DefaultModel(), in.Source)
	if rep.MaxGroupSkew > 0.05*(1+rep.MaxDelay) {
		t.Errorf("intra-group skew %v with endpoint split", rep.MaxGroupSkew)
	}
}

func TestLinearModelZST(t *testing.T) {
	in := bench.Small(30, 3)
	res, err := ZST(in, Options{Model: rctree.Linear{}})
	if err != nil {
		t.Fatal(err)
	}
	rep := eval.Analyze(res.Root, in, rctree.Linear{}, in.Source)
	if rep.GlobalSkew > 1e-6*(1+rep.MaxDelay) {
		t.Errorf("linear ZST skew %v", rep.GlobalSkew)
	}
}

func TestSingleSinkInstance(t *testing.T) {
	in := &ctree.Instance{
		Name:      "one",
		Sinks:     []ctree.Sink{{ID: 0, Loc: geom.Point{X: 3, Y: 4}, CapFF: 10}},
		Source:    geom.Point{X: 0, Y: 0},
		NumGroups: 1,
	}
	res, err := Build(in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Wirelength != 7 {
		t.Errorf("wire = %v, want 7 (source to sink)", res.Wirelength)
	}
}

func TestInvalidInstanceRejected(t *testing.T) {
	in := &ctree.Instance{Name: "bad", NumGroups: 1}
	if _, err := Build(in, Options{}); err == nil {
		t.Error("empty instance accepted")
	}
}

func TestPrescribedGroupOffsets(t *testing.T) {
	in := bench.Intermingled(bench.Small(90, 14), 3, 8)
	targets := []float64{0, 80, -40}
	res, err := Build(in, Options{IntraSkewBound: 10, GroupOffsets: targets})
	if err != nil {
		t.Fatal(err)
	}
	rep := eval.Analyze(res.Root, in, DefaultModel(), in.Source)
	// Mean delay per group must track the prescribed offsets within the
	// enforcement window (intra bound + compromise slack).
	mean := make([]float64, in.NumGroups)
	cnt := make([]float64, in.NumGroups)
	for _, s := range in.Sinks {
		mean[s.Group] += rep.SinkDelay[s.ID]
		cnt[s.Group]++
	}
	for g := range mean {
		mean[g] /= cnt[g]
	}
	for g := 1; g < in.NumGroups; g++ {
		got := mean[g] - mean[0]
		if math.Abs(got-targets[g]) > 25 {
			t.Errorf("group %d offset = %.1f ps, want %.1f ± 25", g, got, targets[g])
		}
	}
	if rep.MaxGroupSkew > 3*10 {
		t.Errorf("intra-group skew %v", rep.MaxGroupSkew)
	}
}

func TestPrescribedGroupOffsetsValidation(t *testing.T) {
	in := bench.Intermingled(bench.Small(20, 1), 2, 1)
	if _, err := Build(in, Options{GroupOffsets: []float64{0}}); err == nil {
		t.Error("wrong length accepted")
	}
	if _, err := Build(in, Options{GroupOffsets: []float64{5, 0}}); err == nil {
		t.Error("non-zero reference accepted")
	}
	if _, err := Build(in, Options{SingleGroup: true, GroupOffsets: []float64{0, 1}}); err == nil {
		t.Error("SingleGroup with offsets accepted")
	}
}

func TestPairConstraintsEnforced(t *testing.T) {
	in := bench.Intermingled(bench.Small(80, 6), 3, 12)
	pc := []PairConstraint{
		{I: 0, J: 1, MinPs: 40, MaxPs: 60}, // group 1 arrives 40..60 ps after group 0
		{I: 0, J: 2, MinPs: -30, MaxPs: 0}, // group 2 arrives up to 30 ps before group 0
	}
	res, err := Build(in, Options{IntraSkewBound: 10, PairConstraints: pc})
	if err != nil {
		t.Fatal(err)
	}
	rep := eval.Analyze(res.Root, in, DefaultModel(), in.Source)
	mean := make([]float64, in.NumGroups)
	cnt := make([]float64, in.NumGroups)
	for _, s := range in.Sinks {
		mean[s.Group] += rep.SinkDelay[s.ID]
		cnt[s.Group]++
	}
	for g := range mean {
		mean[g] /= cnt[g]
	}
	check := func(i, j int, lo, hi float64) {
		got := mean[j] - mean[i]
		slack := 25.0 // best-effort enforcement + compromise leakage allowance
		if got < lo-slack || got > hi+slack {
			t.Errorf("pair (%d,%d): mean offset %.1f outside [%g,%g]±%g", i, j, got, lo, hi, slack)
		}
	}
	check(0, 1, 40, 60)
	check(0, 2, -30, 0)
	// The skew-range matrix brackets the mean offsets.
	m := rep.PairSkews(in)
	if m[0][1][0] > mean[1]-mean[0] || m[0][1][1] < mean[1]-mean[0] {
		t.Errorf("PairSkews range %v does not bracket mean offset %.1f", m[0][1], mean[1]-mean[0])
	}
}

func TestPairConstraintsValidation(t *testing.T) {
	in := bench.Intermingled(bench.Small(20, 1), 2, 1)
	bad := [][]PairConstraint{
		{{I: 0, J: 5, MinPs: 0, MaxPs: 1}},
		{{I: 1, J: 1, MinPs: 0, MaxPs: 1}},
		{{I: 0, J: 1, MinPs: 2, MaxPs: 1}},
	}
	for _, pc := range bad {
		if _, err := Build(in, Options{PairConstraints: pc}); err == nil {
			t.Errorf("accepted %+v", pc)
		}
	}
}

// TestRegistryOffsets pins the offset-extraction contract of the sharded
// pipeline's pilot pass: a registry whose build committed offsets resolves
// every group against group 0 in the GroupOffsets form; prescribing those
// offsets to a fresh registry round-trips bitwise; and a registry with
// unrelated groups reports an error instead of fabricating a contract.
func TestRegistryOffsets(t *testing.T) {
	in := bench.Intermingled(bench.Small(300, 7), 4, 21)
	reg, err := NewRegistry(in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Offsets(); err == nil {
		t.Error("fresh registry (no committed offsets) returned a contract, want error")
	}
	sub, err := BuildSubtree(in, nil, Options{}, reg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := MergeRoots(in, []*ctree.Node{sub.Root}, Options{}, reg); err != nil {
		t.Fatal(err)
	}
	offs, err := reg.Offsets()
	if err != nil {
		t.Fatalf("Offsets after a full build: %v", err)
	}
	if len(offs) != in.NumGroups || offs[0] != 0 {
		t.Fatalf("offsets %v: want %d entries with entry 0 == 0", offs, in.NumGroups)
	}
	round, err := NewRegistry(in, Options{GroupOffsets: offs})
	if err != nil {
		t.Fatalf("NewRegistry(Offsets()): %v", err)
	}
	if round.PreUnions() != in.NumGroups-1 {
		t.Errorf("round-trip registry registered %d pre-unions, want %d", round.PreUnions(), in.NumGroups-1)
	}
	got, err := round.Offsets()
	if err != nil {
		t.Fatalf("round-trip Offsets: %v", err)
	}
	for g := range offs {
		if math.Float64bits(got[g]) != math.Float64bits(offs[g]) {
			t.Errorf("offset[%d] did not round-trip: %v vs %v", g, got[g], offs[g])
		}
	}
}

// TestPilotOptionRejections pins the flag-compatibility rules of the pilot
// offset pass: core.Build refuses it outright (it lives in shard.Build), and
// it cannot combine with SingleGroup or an explicit GroupOffsets contract.
func TestPilotOptionRejections(t *testing.T) {
	in := bench.Intermingled(bench.Small(40, 3), 2, 5)
	if _, err := Build(in, Options{Pilot: true}); err == nil {
		t.Error("core.Build accepted Pilot instead of directing to shard.Build")
	}
	if _, err := NewRegistry(in, Options{Pilot: true, SingleGroup: true}); err == nil {
		t.Error("Pilot + SingleGroup accepted")
	}
	if _, err := NewRegistry(in, Options{Pilot: true, GroupOffsets: []float64{0, 1}}); err == nil {
		t.Error("Pilot + explicit GroupOffsets accepted")
	}
	if _, err := Build(in, Options{PairerThreshold: -1}); err == nil {
		t.Error("negative PairerThreshold accepted")
	}
}
