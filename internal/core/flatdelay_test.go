package core

import (
	"fmt"
	"hash/fnv"
	"math"
	"testing"

	"repro/internal/bench"
	"repro/internal/ctree"
	"repro/internal/eval"
	"repro/internal/order"
)

// hashDelays folds the bit patterns of every per-sink delay into one FNV-64a
// digest, in sink-ID order: any single-ULP drift in any sink's delay changes
// the digest.
func hashDelays(ds []float64) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, d := range ds {
		bits := math.Float64bits(d)
		for i := 0; i < 8; i++ {
			buf[i] = byte(bits >> (8 * i))
		}
		h.Write(buf[:])
	}
	return h.Sum64()
}

// TestFlatDelayMatchesMapBaseline pins the flat sorted-slice delay
// representation bitwise to the behavior of the map-based implementation it
// replaced: the wirelength bits and the per-sink delay digest below were
// recorded from the last map-based build (commit 45acbe1) on these exact
// instances, across all three batching strategies, ZST and grouped AST-DME,
// at 1 and 4 merge workers. The flat build must reproduce every one of them
// exactly — the representation change is not allowed to move a single bit
// of any routed tree.
func TestFlatDelayMatchesMapBaseline(t *testing.T) {
	zst := bench.Small(600, 21)
	grouped := bench.Intermingled(bench.Small(400, 33), 4, 99)
	golden := []struct {
		inst      string
		strategy  order.Strategy
		workers   int
		wireBits  uint64
		delayHash uint64
	}{
		{"zst", order.Multi, 1, 0x414296d0dd5b8f80, 0xdec0bd6930b8fb07},
		{"zst", order.Multi, 4, 0x414296d0dd5b8f80, 0xdec0bd6930b8fb07},
		{"zst", order.Greedy, 1, 0x41430837095ad6e4, 0x6b80f108b7b8c1b6},
		{"zst", order.Greedy, 4, 0x41430837095ad6e4, 0x6b80f108b7b8c1b6},
		{"zst", order.GreedyBatch, 1, 0x4149688d40a36590, 0x9cd6f2d8aec76065},
		{"zst", order.GreedyBatch, 4, 0x4149688d40a36590, 0x9cd6f2d8aec76065},
		{"grouped", order.Multi, 1, 0x4139ccbe875e55da, 0xe7123630ad067931},
		{"grouped", order.Multi, 4, 0x4139ccbe875e55da, 0xe7123630ad067931},
		{"grouped", order.Greedy, 1, 0x413ce17e677c3108, 0x79c49fbb85a3a9ef},
		{"grouped", order.Greedy, 4, 0x413ce17e677c3108, 0x79c49fbb85a3a9ef},
		{"grouped", order.GreedyBatch, 1, 0x414170495504222e, 0x6a7f78a009858da5},
		{"grouped", order.GreedyBatch, 4, 0x414170495504222e, 0x6a7f78a009858da5},
	}
	for _, tc := range golden {
		label := fmt.Sprintf("%s/strategy=%v/workers=%d", tc.inst, tc.strategy, tc.workers)
		var in *ctree.Instance
		var res *Result
		var err error
		switch tc.inst {
		case "zst":
			in = zst
			res, err = ZST(in, Options{MergeWorkers: tc.workers, Order: order.Config{Strategy: tc.strategy}})
		default:
			in = grouped
			res, err = Build(in, Options{IntraSkewBound: 0, MergeWorkers: tc.workers, Order: order.Config{Strategy: tc.strategy}})
		}
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		if bits := math.Float64bits(res.Wirelength); bits != tc.wireBits {
			t.Errorf("%s: wirelength bits 0x%016x (%v), want 0x%016x (%v)",
				label, bits, res.Wirelength, tc.wireBits, math.Float64frombits(tc.wireBits))
		}
		rep := eval.Analyze(res.Root, in, DefaultModel(), in.Source)
		if h := hashDelays(rep.SinkDelay); h != tc.delayHash {
			t.Errorf("%s: per-sink delay digest 0x%016x, want 0x%016x", label, h, tc.delayHash)
		}
	}
}
