package core

import (
	"math"
	"testing"

	"repro/internal/bench"
	"repro/internal/ctree"
	"repro/internal/eval"
	"repro/internal/geom"
	"repro/internal/rctree"
)

// TestDeterminism: identical inputs must give bit-identical routings — the
// algorithm contains no randomness, and map iteration order must not leak
// into results (a class of bug Go makes easy to introduce).
func TestDeterminism(t *testing.T) {
	in := bench.Intermingled(bench.Small(120, 5), 6, 9)
	var wires []float64
	for trial := 0; trial < 3; trial++ {
		res, err := Build(in, Options{IntraSkewBound: 10})
		if err != nil {
			t.Fatal(err)
		}
		wires = append(wires, res.Wirelength)
	}
	if wires[0] != wires[1] || wires[1] != wires[2] {
		t.Errorf("non-deterministic wirelengths: %v", wires)
	}
}

// TestStatsCoherence: the run statistics must account for every merge.
func TestStatsCoherence(t *testing.T) {
	in := bench.Intermingled(bench.Small(100, 8), 4, 3)
	res, err := Build(in, Options{IntraSkewBound: 10})
	if err != nil {
		t.Fatal(err)
	}
	s := res.Stats
	if s.Merges != len(in.Sinks)-1 {
		t.Errorf("merges = %d, want %d", s.Merges, len(in.Sinks)-1)
	}
	if s.SameGroup+s.CrossGroup+s.Shared != s.Merges {
		t.Errorf("classification %d+%d+%d != %d", s.SameGroup, s.CrossGroup, s.Shared, s.Merges)
	}
	if s.Deferred > s.Merges || s.MergeSnakes > s.Merges {
		t.Errorf("implausible stats %+v", s)
	}
	if s.SneakWire < 0 || (s.SneakEvents == 0 && s.SneakWire != 0) {
		t.Errorf("sneak accounting %+v", s)
	}
}

// TestNodeInvariants walks the final tree checking the structural contracts
// the builder relies on: committed caps match a recomputation, regions are
// non-empty, every internal node is resolved, and per-group delay maps agree
// with the independent evaluator.
func TestNodeInvariants(t *testing.T) {
	m := DefaultModel()
	in := bench.Intermingled(bench.Small(90, 2), 5, 11)
	res, err := Build(in, Options{IntraSkewBound: 10})
	if err != nil {
		t.Fatal(err)
	}
	res.Root.Visit(func(n *ctree.Node) {
		if n.Deferred {
			t.Fatalf("node %d still deferred in final tree", n.ID)
		}
		if n.Region.IsEmpty() {
			t.Fatalf("node %d empty region", n.ID)
		}
		if len(n.Groups) == 0 || n.Delay.IsZero() {
			t.Fatalf("node %d missing group state", n.ID)
		}
		for _, g := range n.Groups {
			if _, ok := n.Delay.Get(g); !ok {
				t.Fatalf("node %d group %d missing delay", n.ID, g)
			}
		}
	})
	// Cap bookkeeping vs full recomputation.
	wantCap := res.Root.Cap
	res.Root.Recompute(m)
	if math.Abs(res.Root.Cap-wantCap) > 1e-6*(1+wantCap) {
		t.Errorf("cap drift: %v vs recomputed %v", wantCap, res.Root.Cap)
	}
	// Delay sets vs evaluator.
	rep := eval.Analyze(res.Root, in, m, in.Source)
	for i := 0; i < res.Root.Delay.Len(); i++ {
		g, iv := res.Root.Delay.At(i)
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, s := range in.Sinks {
			if s.Group == g {
				lo = math.Min(lo, rep.SinkDelay[s.ID])
				hi = math.Max(hi, rep.SinkDelay[s.ID])
			}
		}
		if math.Abs(lo-iv.Lo) > 1e-6*(1+hi) || math.Abs(hi-iv.Hi) > 1e-6*(1+hi) {
			t.Errorf("group %d: bookkept %v vs measured [%v,%v]", g, iv, lo, hi)
		}
	}
}

// TestCrossGroupMergesNeverSnake: merges without shared groups or registry
// relations cost exactly the region distance (thesis Fig. 3).
func TestCrossGroupMergesNeverSnake(t *testing.T) {
	// All-distinct groups: every merge is a free SDR merge.
	in := bench.Small(50, 6)
	in.NumGroups = len(in.Sinks)
	for i := range in.Sinks {
		in.Sinks[i].Group = i
	}
	res, err := Build(in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.MergeSnakes != 0 || res.Stats.SneakEvents != 0 {
		t.Errorf("free merges snaked: %v", res.Stats)
	}
	if res.Stats.CrossGroup != res.Stats.Merges {
		t.Errorf("expected all cross merges: %v", res.Stats)
	}
}

// TestWirelengthLowerBound: no routing may beat half the cost of connecting
// each sink to the source directly divided by fan... use the weaker bound
// that total wire must at least reach the bounding box semi-perimeter.
func TestWirelengthLowerBound(t *testing.T) {
	in := bench.Small(80, 10)
	res, err := ZST(in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	xmin, ymin := math.Inf(1), math.Inf(1)
	xmax, ymax := math.Inf(-1), math.Inf(-1)
	for _, s := range in.Sinks {
		xmin = math.Min(xmin, s.Loc.X)
		xmax = math.Max(xmax, s.Loc.X)
		ymin = math.Min(ymin, s.Loc.Y)
		ymax = math.Max(ymax, s.Loc.Y)
	}
	if res.Wirelength < (xmax-xmin)+(ymax-ymin) {
		t.Errorf("wire %v below bounding-box semi-perimeter %v",
			res.Wirelength, (xmax-xmin)+(ymax-ymin))
	}
}

// TestModelsAgreeOnStructure: the engine must work identically well under
// the pathlength model (the prior work's metric). Bounds are expressed in
// the model's delay unit — ps for Elmore, length units for pathlength — so
// the intra-group bound must scale accordingly.
func TestModelsAgreeOnStructure(t *testing.T) {
	in := bench.Intermingled(bench.Small(60, 4), 3, 2)
	cases := []struct {
		m     rctree.Model
		bound float64
	}{
		{rctree.Linear{}, 500}, // length units ≈ a sixth of the sink spacing scale
		{DefaultModel(), 10},   // ps
	}
	for _, c := range cases {
		res, err := Build(in, Options{Model: c.m, IntraSkewBound: c.bound})
		if err != nil {
			t.Fatalf("%s: %v", c.m.Name(), err)
		}
		if err := eval.CheckTree(res.Root, in); err != nil {
			t.Fatalf("%s: %v", c.m.Name(), err)
		}
		rep := eval.Analyze(res.Root, in, c.m, in.Source)
		if rep.MaxGroupSkew > 3*c.bound {
			t.Errorf("%s: group skew %v for bound %v", c.m.Name(), rep.MaxGroupSkew, c.bound)
		}
	}
}

// TestSourcePlacementIndependence: the thesis notes the bottom-up procedure
// is independent of the source location; only the source connection and the
// root split react to it.
func TestSourcePlacementIndependence(t *testing.T) {
	in1 := bench.Small(70, 13)
	in2 := *in1
	in2.Sinks = append([]ctree.Sink(nil), in1.Sinks...)
	in2.Source = geom.Point{X: 0, Y: 0}

	r1, err := ZST(in1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := ZST(&in2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	tree1 := r1.Root.Wirelength()
	tree2 := r2.Root.Wirelength()
	if math.Abs(tree1-tree2) > 1e-9*(1+tree1) {
		t.Errorf("tree wirelength depends on source: %v vs %v", tree1, tree2)
	}
	if r1.SourceWire == r2.SourceWire {
		t.Log("note: source wires happen to coincide")
	}
}

// TestLargeInstanceSmoke routes an r3-sized intermingled instance end to end
// under -short-friendly time and validates the result.
func TestLargeInstanceSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	sp, err := bench.BySuiteName("r3")
	if err != nil {
		t.Fatal(err)
	}
	in := bench.Intermingled(bench.Generate(sp), 8, 3)
	res, err := Build(in, Options{IntraSkewBound: 10})
	if err != nil {
		t.Fatal(err)
	}
	if err := eval.CheckTree(res.Root, in); err != nil {
		t.Fatal(err)
	}
	rep := eval.Analyze(res.Root, in, DefaultModel(), in.Source)
	if rep.Sinks != 862 {
		t.Fatalf("sinks %d", rep.Sinks)
	}
	if rep.MaxGroupSkew > 40 {
		t.Errorf("group skew %v", rep.MaxGroupSkew)
	}
}
