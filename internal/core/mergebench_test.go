package core

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/ctree"
	"repro/internal/order"
)

// mergeSequence extracts the merge order of a routed tree: internal node
// ids are assigned densely in merge order, so ordering internal nodes by id
// and reading their children's ids reproduces the exact (i, j) sequence.
func mergeSequence(in *ctree.Instance, root *ctree.Node) [][2]int {
	n := len(in.Sinks)
	byID := make([]*ctree.Node, 2*n-1)
	root.Visit(func(nd *ctree.Node) { byID[nd.ID] = nd })
	seq := make([][2]int, 0, n-1)
	for id := n; id < len(byID); id++ {
		nd := byID[id]
		seq = append(seq, [2]int{nd.Left.ID, nd.Right.ID})
	}
	return seq
}

// replayMerges executes exactly the recorded merge bodies — no pairing, no
// queue — reproducing the serial build of the same tree.
func replayMerges(in *ctree.Instance, opt Options, seq [][2]int) *builder {
	b := &builder{opt: opt, in: in, uf: newGroupUF(in.NumGroups)}
	b.initScratch()
	b.initNodes()
	base := len(b.nodes)
	for k, p := range seq {
		c := &b.arena[base+k]
		b.merge(b.nodes[p[0]], b.nodes[p[1]], c)
		c.ID = base + k
		b.nodes = append(b.nodes, c)
	}
	return b
}

// BenchmarkMergeBodies isolates the merge-body cost — window intersection,
// joint resolution, Elmore bookkeeping, node construction — from the
// pairing cost that BenchmarkOrderScaling includes: the merge sequence is
// recorded once from a routed instance and then replayed without any
// nearest-neighbor machinery. ReportAllocs makes the allocation weight of
// the bodies themselves visible.
func BenchmarkMergeBodies(b *testing.B) {
	cases := []struct {
		name string
		in   *ctree.Instance
		opt  Options
	}{
		{
			name: "zst/n=1000",
			in:   bench.Small(1000, 9),
			opt:  Options{SingleGroup: true, Model: DefaultModel(), MaxSneakIter: 8, SneakCostCap: 8},
		},
		{
			name: "ast-intermingled/n=400",
			in:   bench.Intermingled(bench.Small(400, 33), 4, 99),
			opt:  Options{Model: DefaultModel(), MaxSneakIter: 8, SneakCostCap: 8},
		},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			ref, err := Build(tc.in, Options{
				SingleGroup: tc.opt.SingleGroup,
				Order:       order.Config{},
			})
			if err != nil {
				b.Fatal(err)
			}
			seq := mergeSequence(tc.in, ref.Root)
			b.ReportAllocs()
			b.ResetTimer()
			var last *builder
			for i := 0; i < b.N; i++ {
				last = replayMerges(tc.in, tc.opt, seq)
			}
			b.StopTimer()
			root := last.nodes[len(last.nodes)-1]
			b.ReportMetric(root.Wirelength(), "replay_wirelen")
		})
	}
}
