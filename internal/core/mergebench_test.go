package core

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/ctree"
	"repro/internal/order"
	"repro/internal/rctree"
)

// mergeSequence extracts the merge order of a routed tree: internal node
// ids are assigned densely in merge order, so ordering internal nodes by id
// and reading their children's ids reproduces the exact (i, j) sequence.
func mergeSequence(in *ctree.Instance, root *ctree.Node) [][2]int {
	n := len(in.Sinks)
	byID := make([]*ctree.Node, 2*n-1)
	root.Visit(func(nd *ctree.Node) { byID[nd.ID] = nd })
	seq := make([][2]int, 0, n-1)
	for id := n; id < len(byID); id++ {
		nd := byID[id]
		seq = append(seq, [2]int{nd.Left.ID, nd.Right.ID})
	}
	return seq
}

// replayMerges executes exactly the recorded merge bodies — no pairing, no
// queue — reproducing the serial build of the same tree.
func replayMerges(in *ctree.Instance, opt Options, seq [][2]int) *builder {
	b := &builder{opt: opt, in: in, uf: newGroupUF(in.NumGroups)}
	b.initScratch()
	b.initSinkNodes(nil)
	base := len(b.nodes)
	for k, p := range seq {
		c := &b.arena[base+k]
		b.merge(b.nodes[p[0]], b.nodes[p[1]], c)
		c.ID = base + k
		b.nodes = append(b.nodes, c)
	}
	return b
}

// BenchmarkMergeBodies isolates the merge-body cost — window intersection,
// joint resolution, Elmore bookkeeping, node construction — from the
// pairing cost that BenchmarkOrderScaling includes: the merge sequence is
// recorded once from a routed instance and then replayed without any
// nearest-neighbor machinery. ReportAllocs makes the allocation weight of
// the bodies themselves visible.
func BenchmarkMergeBodies(b *testing.B) {
	cases := []struct {
		name string
		in   *ctree.Instance
		opt  Options
	}{
		{
			name: "zst/n=1000",
			in:   bench.Small(1000, 9),
			opt:  Options{SingleGroup: true, Model: DefaultModel(), MaxSneakIter: 8, SneakCostCap: 8},
		},
		{
			name: "ast-intermingled/n=400",
			in:   bench.Intermingled(bench.Small(400, 33), 4, 99),
			opt:  Options{Model: DefaultModel(), MaxSneakIter: 8, SneakCostCap: 8},
		},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			ref, err := Build(tc.in, Options{
				SingleGroup: tc.opt.SingleGroup,
				Order:       order.Config{},
			})
			if err != nil {
				b.Fatal(err)
			}
			seq := mergeSequence(tc.in, ref.Root)
			b.ReportAllocs()
			b.ResetTimer()
			var last *builder
			for i := 0; i < b.N; i++ {
				last = replayMerges(tc.in, tc.opt, seq)
			}
			b.StopTimer()
			root := last.nodes[len(last.nodes)-1]
			b.ReportMetric(root.Wirelength(), "replay_wirelen")
		})
	}
}

// BenchmarkDelayMerge isolates the delay-merge kernel itself — the top
// entry of BenchmarkMergeBodies profiles before the flat representation.
// Group counts cover the ZST case (1 group, the large-instance hot path),
// a typical AST run (8 groups, half shared) and a wide one (64 groups).
// With the destination reserved from a slab, the steady state must be
// allocation-free (ReportAllocs makes any regression visible).
func BenchmarkDelayMerge(b *testing.B) {
	for _, tc := range []struct {
		name   string
		ga, gb []int32
	}{
		{"shared1", []int32{0}, []int32{0}},
		{"g8-half-shared", []int32{0, 1, 2, 3, 4, 5, 6, 7}, []int32{4, 5, 6, 7, 8, 9, 10, 11}},
		{"g64-disjoint", mkGroups(0, 64), mkGroups(64, 64)},
	} {
		b.Run(tc.name, func(b *testing.B) {
			mk := func(gs []int32) rctree.DelaySet {
				s := rctree.MakeDelaySet(len(gs))
				for i, g := range gs {
					s.Push(g, rctree.Interval{Lo: float64(i), Hi: float64(i + 1)})
				}
				return s
			}
			sa, sb := mk(tc.ga), mk(tc.gb)
			dst := rctree.MakeDelaySet(len(tc.ga) + len(tc.gb))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rctree.MergeDelaysInto(&dst, sa, 3.5, sb, 4.25)
			}
			if dst.Len() == 0 {
				b.Fatal("empty merge")
			}
		})
	}
}

func mkGroups(base, n int) []int32 {
	gs := make([]int32, n)
	for i := range gs {
		gs[i] = int32(base + i)
	}
	return gs
}

// TestMergeBodiesReplayAllocBudget bounds the allocations of the replayed
// merge bodies (no pairing machinery), catching representation regressions
// at the merge-body level with a cheap test: the flat-delay build replays
// the 1000-sink ZST sequence in ~1.5k allocations (node arena chunks, slab
// chunks, queue-free replay); the map-based representation needed ~5 per
// merge. The budget leaves ~2× headroom.
func TestMergeBodiesReplayAllocBudget(t *testing.T) {
	const budget = 3000
	in := bench.Small(1000, 9)
	opt := Options{SingleGroup: true, Model: DefaultModel(), MaxSneakIter: 8, SneakCostCap: 8}
	ref, err := Build(in, Options{SingleGroup: true})
	if err != nil {
		t.Fatal(err)
	}
	seq := mergeSequence(in, ref.Root)
	allocs := testing.AllocsPerRun(1, func() {
		replayMerges(in, opt, seq)
	})
	if allocs > budget {
		t.Errorf("merge-body replay allocations = %.0f, budget %d", allocs, budget)
	}
}
