package core

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/obs"
)

// TestTracedBuildBitwiseIdentical: tracing is purely observational — a
// traced build (with a sneak probe armed, serial and parallel) reproduces
// the untraced build exactly.
func TestTracedBuildBitwiseIdentical(t *testing.T) {
	in := bench.Intermingled(bench.Small(400, 3), 4, 11)
	for _, workers := range []int{1, 4} {
		opt := Options{IntraSkewBound: 0, MergeWorkers: workers}
		plain, err := Build(in, opt)
		if err != nil {
			t.Fatal(err)
		}
		opt.Trace = obs.New("test")
		opt.SneakProbe = obs.NewProbe("sneak", 4096, 4096*in.NumGroups)
		traced, err := Build(in, opt)
		if err != nil {
			t.Fatal(err)
		}
		if traced.Wirelength != plain.Wirelength {
			t.Fatalf("workers=%d: traced wirelength %v != untraced %v", workers, traced.Wirelength, plain.Wirelength)
		}
		if traced.Stats != plain.Stats {
			t.Fatalf("workers=%d: traced stats %+v != untraced %+v", workers, traced.Stats, plain.Stats)
		}
		sameTree(t, "traced@", plain.Root, traced.Root)
	}
}

// TestTracedBuildRecordsPhasesAndMetrics: a traced Build records the route
// and embed spans, exports every Stats field as a metric, and — with the
// parallel wave forced on — the per-round merge-wave accounting.
func TestTracedBuildRecordsPhasesAndMetrics(t *testing.T) {
	in := bench.Intermingled(bench.Small(600, 5), 4, 13)
	tr := obs.New("test")
	res, err := Build(in, Options{MergeWorkers: 4, Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	tr.Close()

	s := tr.Summary()
	names := map[string]bool{}
	for _, p := range s.Phases {
		names[p.Name] = true
	}
	if !names["route"] || !names["embed"] {
		t.Fatalf("top-level phases missing route/embed: %+v", s.Phases)
	}

	// Stats export by reflection: spot-check scalar and nested names.
	if v, ok := tr.MetricValue("merges"); !ok || int(v) != res.Stats.Merges {
		t.Fatalf("merges metric = %v, %v; want %d", v, ok, res.Stats.Merges)
	}
	if v, ok := tr.MetricValue("pair_scans"); !ok || int64(v) != res.Stats.PairScans {
		t.Fatalf("pair_scans metric = %v, %v; want %d", v, ok, res.Stats.PairScans)
	}
	if _, ok := tr.MetricValue("grid_rebuilds_live_drop"); !ok {
		t.Fatal("nested GridRebuilds fields not exported")
	}
	if _, ok := tr.MetricValue("sneak_iters"); !ok {
		t.Fatal("sneak_iters not exported")
	}
	if _, ok := tr.MetricValue(obs.MetricPairingNS); !ok {
		t.Fatal("pairing_ns not recorded")
	}

	// Merge-wave accounting (MergeWorkers=4 with 600 sinks guarantees
	// batches above minParallelBatch).
	if s.MergeWave == nil {
		t.Fatal("merge-wave summary missing on a MergeWorkers=4 build")
	}
	if s.MergeWave.Rounds < 1 || s.MergeWave.BatchMax < minParallelBatch {
		t.Fatalf("wave summary implausible: %+v", s.MergeWave)
	}
	if f := s.MergeWave.IdleFrac; f < 0 || f > 1 {
		t.Fatalf("idle fraction %v outside [0,1]", f)
	}
}

// TestSneakProbeRecordsIterations: on an instance known to sneak (the
// probe's reason to exist), the armed probe sees window evaluations and the
// recorded offsets vector spans every group.
func TestSneakProbeRecordsIterations(t *testing.T) {
	in := bench.Intermingled(bench.Small(300, 9), 6, 17)
	p := obs.NewProbe("sneak", 1<<14, (1<<14)*in.NumGroups)
	res, err := Build(in, Options{MergeWorkers: 1, SneakProbe: p})
	if err != nil {
		t.Fatal(err)
	}
	ev := p.Events()
	if len(ev) == 0 {
		t.Fatal("probe recorded nothing")
	}
	var windows, sneaks int
	for _, e := range ev {
		switch e.Label {
		case "window":
			windows++
			if len(e.Vals) != in.NumGroups {
				t.Fatalf("window event offsets len %d, want %d groups", len(e.Vals), in.NumGroups)
			}
		case "sneak", "revert":
			sneaks++
			if e.Wire <= 0 {
				t.Fatalf("%s event with non-positive wire %v", e.Label, e.Wire)
			}
		default:
			t.Fatalf("unknown probe label %q", e.Label)
		}
	}
	if windows == 0 {
		t.Fatal("no window evaluations recorded")
	}
	// SneakIters counts gap-closing iterations; each applied one records a
	// "sneak" (or "revert") event unless the plan/budget aborted first, so
	// iterations bound the sneak events from above.
	if res.Stats.SneakIters < sneaks {
		t.Fatalf("SneakIters %d < recorded sneak events %d", res.Stats.SneakIters, sneaks)
	}
	if res.Stats.SneakEvents > 0 && sneaks == 0 {
		t.Fatalf("build sneaked %d times but the probe saw none", res.Stats.SneakEvents)
	}
}
