package core

import (
	"reflect"
	"strings"

	"repro/internal/obs"
)

// RecordStatsMetrics exports every field of s into the trace's metric
// registry: snake_case names (Merges → "merges", PairScans → "pair_scans"),
// nested stat structs flattened with their field name as a prefix
// (GridRebuilds.LiveDrop → "grid_rebuilds_live_drop"). The walk is by
// reflection so a new Stats field is exported without anyone remembering to
// — the counter registry absorbs Stats by construction, not by a hand-kept
// mirror. No-op on a nil trace. Metrics accumulate by name, so repeated
// sub-builds recording into one trace (the pilot's patches) sum.
func RecordStatsMetrics(tr *obs.Trace, s Stats) {
	if tr == nil {
		return
	}
	recordStructMetrics(tr, "", reflect.ValueOf(s))
}

func recordStructMetrics(tr *obs.Trace, prefix string, v reflect.Value) {
	t := v.Type()
	for i := 0; i < t.NumField(); i++ {
		fv := v.Field(i)
		name := prefix + snakeCase(t.Field(i).Name)
		switch fv.Kind() {
		case reflect.Struct:
			recordStructMetrics(tr, name+"_", fv)
		case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
			tr.Metric(name, float64(fv.Int()))
		case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
			tr.Metric(name, float64(fv.Uint()))
		case reflect.Float32, reflect.Float64:
			tr.Metric(name, fv.Float())
		}
	}
}

// snakeCase converts a Go field name to snake_case: an underscore before
// every upper-case letter that follows a lower-case one ("PairScans" →
// "pair_scans"; acronym runs stay together).
func snakeCase(name string) string {
	var b strings.Builder
	b.Grow(len(name) + 4)
	prevLower := false
	for _, r := range name {
		if r >= 'A' && r <= 'Z' {
			if prevLower {
				b.WriteByte('_')
			}
			b.WriteRune(r - 'A' + 'a')
			prevLower = false
		} else {
			b.WriteRune(r)
			prevLower = r >= 'a' && r <= 'z'
		}
	}
	return b.String()
}
