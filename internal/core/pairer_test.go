package core

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/eval"
	"repro/internal/order"
	"repro/internal/spatial"
)

// statsEqualModuloScans compares run stats ignoring the pairing-engine
// bookkeeping — PairScans and GridRebuilds — which legitimately differs
// between the oracle and the grid (that difference is the whole point of
// the grid). Everything the merge bodies produce must agree exactly.
func statsEqualModuloScans(a, b Stats) bool {
	a.PairScans, b.PairScans = 0, 0
	a.GridRebuilds, b.GridRebuilds = spatial.RebuildStats{}, spatial.RebuildStats{}
	return a == b
}

// TestGridPairerDifferentialZST: forcing the spatial grid pairer must
// reproduce the all-pairs oracle's zero-skew tree exactly — same wirelength
// bit for bit, same merge statistics — on a seeded (tie-free) instance, for
// both merging strategies.
func TestGridPairerDifferentialZST(t *testing.T) {
	in := bench.Small(700, 21)
	for _, st := range []order.Strategy{order.Multi, order.Greedy} {
		opts := func(pm PairerMode) Options {
			return Options{Pairer: pm, Order: order.Config{Strategy: st}}
		}
		scan, err := ZST(in, opts(PairerScan))
		if err != nil {
			t.Fatal(err)
		}
		grid, err := ZST(in, opts(PairerGrid))
		if err != nil {
			t.Fatal(err)
		}
		if scan.Wirelength != grid.Wirelength {
			t.Errorf("strategy %v: wirelength %v (scan) != %v (grid)", st, scan.Wirelength, grid.Wirelength)
		}
		if !statsEqualModuloScans(scan.Stats, grid.Stats) {
			t.Errorf("strategy %v: stats differ:\n scan: %v\n grid: %v", st, scan.Stats, grid.Stats)
		}
		if grid.Stats.PairScans <= 0 || scan.Stats.PairScans <= 0 {
			t.Errorf("strategy %v: pair scans not recorded (scan=%d grid=%d)",
				st, scan.Stats.PairScans, grid.Stats.PairScans)
		}
		if grid.Stats.PairScans >= scan.Stats.PairScans {
			t.Errorf("strategy %v: grid scans %d not below oracle scans %d",
				st, grid.Stats.PairScans, scan.Stats.PairScans)
		}
		rep := eval.Analyze(grid.Root, in, DefaultModel(), in.Source)
		if rep.GlobalSkew > 1e-6 {
			t.Errorf("strategy %v: grid tree skew %v, want 0", st, rep.GlobalSkew)
		}
	}
}

// TestGridPairerDifferentialAST extends the differential to full AST-DME
// with sink groups: the snaking-aware merge key still dominates the
// distance, so the grid must remain exact.
func TestGridPairerDifferentialAST(t *testing.T) {
	base := bench.Small(400, 33)
	for _, grouping := range []string{"clustered", "intermingled"} {
		var in = bench.Clustered(base, 4)
		if grouping == "intermingled" {
			in = bench.Intermingled(base, 4, 99)
		}
		for _, st := range []order.Strategy{order.Multi, order.Greedy} {
			opts := func(pm PairerMode) Options {
				return Options{IntraSkewBound: 0, Pairer: pm, Order: order.Config{Strategy: st}}
			}
			scan, err := Build(in, opts(PairerScan))
			if err != nil {
				t.Fatal(err)
			}
			grid, err := Build(in, opts(PairerGrid))
			if err != nil {
				t.Fatal(err)
			}
			if scan.Wirelength != grid.Wirelength {
				t.Errorf("%s/%v: wirelength %v (scan) != %v (grid)",
					grouping, st, scan.Wirelength, grid.Wirelength)
			}
			if !statsEqualModuloScans(scan.Stats, grid.Stats) {
				t.Errorf("%s/%v: stats differ:\n scan: %v\n grid: %v", grouping, st, scan.Stats, grid.Stats)
			}
		}
	}
}

// TestPairerAutoSelection: auto mode must keep the oracle under the
// threshold and under key modes the grid cannot prune exactly.
func TestPairerAutoSelection(t *testing.T) {
	b := &builder{opt: Options{}}
	if b.useGridPairer(GridPairerThreshold, false) != true {
		t.Error("auto at threshold: want grid")
	}
	if b.useGridPairer(GridPairerThreshold-1, false) != false {
		t.Error("auto below threshold: want scan")
	}
	if b.useGridPairer(GridPairerThreshold, true) != false {
		t.Error("auto with user key: want scan")
	}
	b = &builder{opt: Options{DelayTargetBias: 0.5}}
	if b.useGridPairer(GridPairerThreshold, false) != false {
		t.Error("auto with delay bias: want scan (key may drop below distance)")
	}
	// PairerThreshold overrides the package default in both directions —
	// the sharded pipeline scales it by the shard count so per-shard
	// sub-builds keep the grid on mid-size instances.
	b = &builder{opt: Options{PairerThreshold: 100}}
	if b.useGridPairer(100, false) != true {
		t.Error("auto at overridden threshold: want grid")
	}
	if b.useGridPairer(99, false) != false {
		t.Error("auto below overridden threshold: want scan")
	}
	b = &builder{opt: Options{PairerThreshold: GridPairerThreshold * 2}}
	if b.useGridPairer(GridPairerThreshold, false) != false {
		t.Error("auto below a raised threshold: want scan")
	}
	b = &builder{opt: Options{Pairer: PairerGrid}}
	if b.useGridPairer(10, false) != true {
		t.Error("forced grid: want grid")
	}
	b = &builder{opt: Options{Pairer: PairerScan}}
	if b.useGridPairer(1<<20, false) != false {
		t.Error("forced scan: want scan")
	}
	// Forcing the grid together with the biased key is unsound and must be
	// refused outright rather than silently mis-pruned.
	_, err := Build(bench.Small(20, 4), Options{Pairer: PairerGrid, DelayTargetBias: 0.5})
	if err == nil {
		t.Error("PairerGrid + DelayTargetBias: want error, got nil")
	}
}
