package core

import (
	"fmt"
	"math"
	"runtime"
	"testing"

	"repro/internal/bench"
	"repro/internal/ctree"
	"repro/internal/order"
)

// sameTree recursively compares topology and every committed quantity of
// two merge trees: sink identity at leaves, bitwise edge lengths, regions
// and per-group delay intervals. Any difference fails the test with a path.
func sameTree(t *testing.T, label string, a, b *ctree.Node) {
	t.Helper()
	if (a == nil) != (b == nil) {
		t.Fatalf("%s: nil mismatch", label)
	}
	if a == nil {
		return
	}
	if a.IsLeaf() != b.IsLeaf() {
		t.Fatalf("%s: leaf/internal mismatch", label)
	}
	if a.IsLeaf() {
		if a.Sink.ID != b.Sink.ID {
			t.Fatalf("%s: sink %d != %d", label, a.Sink.ID, b.Sink.ID)
		}
		return
	}
	if a.EdgeL != b.EdgeL || a.EdgeR != b.EdgeR {
		t.Fatalf("%s: edges (%v,%v) != (%v,%v)", label, a.EdgeL, a.EdgeR, b.EdgeL, b.EdgeR)
	}
	if a.Region != b.Region {
		t.Fatalf("%s: regions differ", label)
	}
	if !a.Delay.Equal(b.Delay) {
		t.Fatalf("%s: delay sets differ: %v vs %v", label, a.Delay, b.Delay)
	}
	sameTree(t, label+"L", a.Left, b.Left)
	sameTree(t, label+"R", a.Right, b.Right)
}

// statsEqualModuloSneakWire compares stats exactly except SneakWire, whose
// serial accumulation order differs from the committed per-merge deltas by
// float rounding only.
func statsEqualModuloSneakWire(a, b Stats) bool {
	wa, wb := a.SneakWire, b.SneakWire
	a.SneakWire, b.SneakWire = 0, 0
	return a == b && math.Abs(wa-wb) <= 1e-6*(1+math.Abs(wa))
}

// TestParallelMergeDifferential: executing the merge bodies across workers
// must reproduce the serial build exactly — bitwise wirelength, identical
// topology and stats — for both pairing engines, all batching strategies,
// and ZST as well as grouped AST-DME runs.
func TestParallelMergeDifferential(t *testing.T) {
	zst := bench.Small(600, 21)
	grouped := bench.Intermingled(bench.Small(400, 33), 4, 99)
	clustered := bench.Clustered(bench.Small(400, 33), 6)
	cases := []struct {
		name string
		run  func(workers int, st order.Strategy) (*Result, error)
	}{
		{"zst/grid", func(w int, st order.Strategy) (*Result, error) {
			return ZST(zst, Options{Pairer: PairerGrid, MergeWorkers: w, Order: order.Config{Strategy: st}})
		}},
		{"zst/scan", func(w int, st order.Strategy) (*Result, error) {
			return ZST(zst, Options{Pairer: PairerScan, MergeWorkers: w, Order: order.Config{Strategy: st}})
		}},
		{"ast-intermingled", func(w int, st order.Strategy) (*Result, error) {
			return Build(grouped, Options{IntraSkewBound: 0, MergeWorkers: w, Order: order.Config{Strategy: st}})
		}},
		{"ast-clustered", func(w int, st order.Strategy) (*Result, error) {
			return Build(clustered, Options{IntraSkewBound: 0, MergeWorkers: w, Order: order.Config{Strategy: st}})
		}},
	}
	strategies := []order.Strategy{order.Multi, order.Greedy, order.GreedyBatch}
	for _, tc := range cases {
		for _, st := range strategies {
			serial, err := tc.run(1, st)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{2, 4, runtime.NumCPU() + 1} {
				label := fmt.Sprintf("%s/strategy=%v/workers=%d", tc.name, st, workers)
				par, err := tc.run(workers, st)
				if err != nil {
					t.Fatal(err)
				}
				if par.Wirelength != serial.Wirelength {
					t.Errorf("%s: wirelength %v != serial %v", label, par.Wirelength, serial.Wirelength)
				}
				if !statsEqualModuloSneakWire(par.Stats, serial.Stats) {
					t.Errorf("%s: stats differ:\n par:    %v\n serial: %v", label, par.Stats, serial.Stats)
				}
				sameTree(t, label+"@", serial.Root, par.Root)
			}
		}
	}
}

// TestParallelMergeAcrossGOMAXPROCS pins the default configuration
// (MergeWorkers 0 ⇒ GOMAXPROCS) to the serial build at several GOMAXPROCS
// settings, covering the acceptance matrix {1, 4, NumCPU}.
func TestParallelMergeAcrossGOMAXPROCS(t *testing.T) {
	in := bench.Intermingled(bench.Small(500, 7), 5, 11)
	serial, err := Build(in, Options{IntraSkewBound: 0, MergeWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	old := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(old)
	for _, procs := range []int{1, 4, runtime.NumCPU()} {
		runtime.GOMAXPROCS(procs)
		res, err := Build(in, Options{IntraSkewBound: 0})
		if err != nil {
			t.Fatal(err)
		}
		label := fmt.Sprintf("GOMAXPROCS=%d", procs)
		if res.Wirelength != serial.Wirelength {
			t.Errorf("%s: wirelength %v != serial %v", label, res.Wirelength, serial.Wirelength)
		}
		if !statsEqualModuloSneakWire(res.Stats, serial.Stats) {
			t.Errorf("%s: stats differ:\n got:    %v\n serial: %v", label, res.Stats, serial.Stats)
		}
		sameTree(t, label+"@", serial.Root, res.Root)
	}
}

// TestMergeWorkersWithGroupOffsets covers the prescribed-offset mode, whose
// pre-unioned registry must let every batch wave in parallel.
func TestMergeWorkersWithGroupOffsets(t *testing.T) {
	in := bench.Intermingled(bench.Small(300, 3), 3, 17)
	offsets := []float64{0, 120, -80}
	serial, err := Build(in, Options{IntraSkewBound: 0, GroupOffsets: offsets, MergeWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Build(in, Options{IntraSkewBound: 0, GroupOffsets: offsets, MergeWorkers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if par.Wirelength != serial.Wirelength {
		t.Errorf("wirelength %v != serial %v", par.Wirelength, serial.Wirelength)
	}
	sameTree(t, "offsets@", serial.Root, par.Root)
}
