package core

import "fmt"

// RegistrySnapshot is a Registry's committed state in an exportable,
// serializable form: the weighted union-find's parent links and cumulative
// offsets, plus the construction-time prescribed-union count. It exists for
// the remote-dispatch wire format (internal/wire): the sharded pipeline
// freezes a base registry, ships its snapshot inside every work unit, and a
// worker reconstructs an equivalent private registry with
// NewRegistryFromSnapshot — the remote analogue of Registry.Clone, with the
// same bitwise-determinism guarantee (offsets are copied verbatim, never
// recomputed).
type RegistrySnapshot struct {
	Parent    []int
	Off       []float64
	PreUnions int
}

// Snapshot exports the registry's committed state. The result shares no
// storage with the registry; later commits do not show through.
func (r *Registry) Snapshot() RegistrySnapshot {
	return RegistrySnapshot{
		Parent:    append([]int(nil), r.uf.parent...),
		Off:       append([]float64(nil), r.uf.off...),
		PreUnions: r.preUnions,
	}
}

// NewRegistryFromSnapshot reconstructs a registry from a snapshot,
// validating it defensively (snapshots may arrive over the network): the
// parent links must stay in range and form a forest — a cycle would hang
// every registry lookup, so it is rejected here rather than trusted.
func NewRegistryFromSnapshot(s RegistrySnapshot) (*Registry, error) {
	n := len(s.Parent)
	if n == 0 {
		return nil, fmt.Errorf("core: registry snapshot with no groups")
	}
	if len(s.Off) != n {
		return nil, fmt.Errorf("core: registry snapshot with %d parents but %d offsets", n, len(s.Off))
	}
	if s.PreUnions < 0 || s.PreUnions > n {
		return nil, fmt.Errorf("core: registry snapshot with %d prescribed unions over %d groups", s.PreUnions, n)
	}
	for g, p := range s.Parent {
		if p < 0 || p >= n {
			return nil, fmt.Errorf("core: registry snapshot parent[%d] = %d out of range", g, p)
		}
	}
	for g := range s.Parent {
		// Walk to the root with a step budget: any walk longer than n links
		// revisits a node, i.e. the links contain a cycle.
		cur := g
		for steps := 0; s.Parent[cur] != cur; steps++ {
			if steps >= n {
				return nil, fmt.Errorf("core: registry snapshot parent links contain a cycle through group %d", g)
			}
			cur = s.Parent[cur]
		}
	}
	r := &Registry{preUnions: s.PreUnions}
	r.uf.parent = append([]int(nil), s.Parent...)
	r.uf.off = append([]float64(nil), s.Off...)
	return r, nil
}
