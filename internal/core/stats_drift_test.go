package core

import (
	"reflect"
	"testing"

	"repro/internal/spatial"
)

// fillDistinct sets every numeric leaf field of v (recursing into nested
// structs) to a distinct non-zero value, returning the next seed.
func fillDistinct(v reflect.Value, seed int) int {
	for i := 0; i < v.NumField(); i++ {
		f := v.Field(i)
		switch f.Kind() {
		case reflect.Struct:
			seed = fillDistinct(f, seed)
		case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
			f.SetInt(int64(seed))
			seed++
		case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
			f.SetUint(uint64(seed))
			seed++
		case reflect.Float32, reflect.Float64:
			f.SetFloat(float64(seed) + 0.5)
			seed++
		default:
			panic("Stats has a field kind fillDistinct cannot seed: " + f.Kind().String())
		}
	}
	return seed
}

// TestStatsAddRunCoversEveryField enforces the "keep it in sync" contract of
// Stats.add/AddRun by construction: fill a Stats with distinct non-zero
// values in every leaf field, accumulate it twice with AddRun, and require
// every leaf to have exactly doubled. A newly added Stats field that add or
// AddRun forgets stays at its filled value instead of doubling and fails
// here by name.
func TestStatsAddRunCoversEveryField(t *testing.T) {
	var d Stats
	fillDistinct(reflect.ValueOf(&d).Elem(), 1)

	got := d // start from one copy, accumulate the same delta once more
	got.AddRun(d)

	var checkDoubled func(prefix string, g, w reflect.Value)
	checkDoubled = func(prefix string, g, w reflect.Value) {
		for i := 0; i < g.NumField(); i++ {
			name := prefix + g.Type().Field(i).Name
			gf, wf := g.Field(i), w.Field(i)
			switch gf.Kind() {
			case reflect.Struct:
				checkDoubled(name+".", gf, wf)
			case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
				if gf.Int() != 2*wf.Int() {
					t.Errorf("Stats.%s not accumulated by AddRun: got %d, want %d", name, gf.Int(), 2*wf.Int())
				}
			case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
				if gf.Uint() != 2*wf.Uint() {
					t.Errorf("Stats.%s not accumulated by AddRun: got %d, want %d", name, gf.Uint(), 2*wf.Uint())
				}
			case reflect.Float32, reflect.Float64:
				if gf.Float() != 2*wf.Float() {
					t.Errorf("Stats.%s not accumulated by AddRun: got %g, want %g", name, gf.Float(), 2*wf.Float())
				}
			}
		}
	}
	checkDoubled("", reflect.ValueOf(got), reflect.ValueOf(d))
}

// TestStatsAddExcludesOnlyEngineMetrics pins add's documented contract: it
// accumulates every Stats field except the per-run engine metrics PairScans
// and GridRebuilds, and nothing else is silently excluded.
func TestStatsAddExcludesOnlyEngineMetrics(t *testing.T) {
	var d Stats
	fillDistinct(reflect.ValueOf(&d).Elem(), 1)

	var got Stats
	got.add(d)

	want := d
	want.PairScans = 0
	want.GridRebuilds = spatial.RebuildStats{}
	if got != want {
		t.Errorf("Stats.add mismatch:\n got  %+v\nwant %+v", got, want)
	}
}
