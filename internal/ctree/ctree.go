// Package ctree defines the clock-routing problem instance (sinks, groups,
// source) and the merge-tree node representation shared by every router in
// this repository (DME, BST, EXT-BST, AST-DME, stitch baseline).
//
// A Node represents a subtree produced by bottom-up deferred merging. Until
// top-down embedding, a node's position is a locus (geom.Rect); the wire
// lengths of its two child edges, however, are committed at merge time and
// may exceed the geometric child distance (wire snaking).
//
// # Delay bookkeeping
//
// Each node carries, per sink group present in its subtree, the Interval of
// root-to-sink delays of that group's sinks (a zero intra-group skew
// constraint keeps each group's interval degenerate). The bookkeeping is a
// flat rctree.DelaySet — parallel group-id/interval slices sorted by group —
// rather than a map: merging two children is one linear pass over both
// sorted sets (rctree.MergeDelaysInto), lookups are binary searches, and
// iteration is always in ascending group order, so no map-iteration order
// can leak into results. The flat sets also slab-allocate: routers that
// build millions of nodes back them with arena slices instead of one map
// (plus buckets) per node, which is where the bulk of a large route's
// allocations used to come from. Delay sets are never mutated in place once
// committed — all paths build replacements — so leaves of one group may
// share one interned set, and any code holding a DelaySet may keep it
// across merges.
package ctree

import (
	"fmt"
	"sort"

	"repro/internal/geom"
	"repro/internal/rctree"
)

// Sink is a clock sink (register / flip-flop clock pin).
type Sink struct {
	// ID is the index of the sink within its instance.
	ID int
	// Loc is the physical pin location.
	Loc geom.Point
	// CapFF is the sink input capacitance in fF.
	CapFF float64
	// Group is the associative-skew group this sink belongs to.
	Group int
}

// Instance is a complete associative-skew clock routing instance.
type Instance struct {
	// Name identifies the instance in reports (e.g. "r3").
	Name string
	// Sinks is the sink set; Sink.ID must equal the slice index.
	Sinks []Sink
	// Source is the clock source location.
	Source geom.Point
	// NumGroups is the number of sink groups; Sink.Group ∈ [0, NumGroups).
	NumGroups int
}

// Validate checks internal consistency of the instance.
func (in *Instance) Validate() error {
	if len(in.Sinks) == 0 {
		return fmt.Errorf("instance %q: no sinks", in.Name)
	}
	if in.NumGroups <= 0 {
		return fmt.Errorf("instance %q: NumGroups = %d", in.Name, in.NumGroups)
	}
	seen := make([]bool, in.NumGroups)
	for i, s := range in.Sinks {
		if s.ID != i {
			return fmt.Errorf("instance %q: sink %d has ID %d", in.Name, i, s.ID)
		}
		if s.Group < 0 || s.Group >= in.NumGroups {
			return fmt.Errorf("instance %q: sink %d group %d out of range", in.Name, i, s.Group)
		}
		if s.CapFF < 0 {
			return fmt.Errorf("instance %q: sink %d negative cap", in.Name, i)
		}
		seen[s.Group] = true
	}
	for g, ok := range seen {
		if !ok {
			return fmt.Errorf("instance %q: group %d has no sinks", in.Name, g)
		}
	}
	return nil
}

// GroupSizes returns the number of sinks per group.
func (in *Instance) GroupSizes() []int {
	n := make([]int, in.NumGroups)
	for _, s := range in.Sinks {
		n[s.Group]++
	}
	return n
}

// Side selects one of a node's two child edges.
type Side int

// Child edge selectors.
const (
	SideL Side = iota
	SideR
)

// EdgeRef identifies a tree edge as (parent node, side). It is used as a
// wire-snaking "handle": elongating the referenced edge delays exactly the
// sinks below it.
type EdgeRef struct {
	Parent *Node
	Side   Side
}

// Len returns the committed length of the referenced edge.
func (e EdgeRef) Len() float64 {
	if e.Side == SideL {
		return e.Parent.EdgeL
	}
	return e.Parent.EdgeR
}

// Child returns the node below the referenced edge.
func (e EdgeRef) Child() *Node {
	if e.Side == SideL {
		return e.Parent.Left
	}
	return e.Parent.Right
}

// AddLen elongates the referenced edge by g ≥ 0 (wire snaking).
func (e EdgeRef) AddLen(g float64) {
	if e.Side == SideL {
		e.Parent.EdgeL += g
	} else {
		e.Parent.EdgeR += g
	}
}

// Node is a merge-tree node: a leaf wraps a single sink; an internal node
// records the merge of its two children with committed edge lengths.
type Node struct {
	// ID is unique within one routing run (leaves use sink IDs).
	ID int
	// Sink is non-nil for leaves.
	Sink *Sink
	// Left and Right are the merged children (nil for leaves).
	Left, Right *Node
	// EdgeL and EdgeR are the committed wire lengths from this node to each
	// child; they include snaking and thus may exceed the geometric distance.
	EdgeL, EdgeR float64
	// Region is the feasible placement locus of this node.
	Region geom.Rect
	// Cap is the total downstream capacitance (fF): sink caps plus wire cap
	// of all edges strictly below this node.
	Cap float64
	// Groups lists, sorted ascending, the sink groups present in the subtree.
	Groups []int
	// Delay holds, for each group in Groups, the interval of root-to-sink
	// delays of that group's sinks (ps), as a flat group-sorted set whose
	// group ids mirror Groups exactly.
	Delay rctree.DelaySet
	// Handles maps a group to the snaking handle edge for that group, when
	// one exists: the highest edge in the subtree below which lie exactly the
	// subtree's sinks of that group.
	Handles map[int]EdgeRef
	// Loc is the embedded location; valid once Placed is true.
	Loc    geom.UV
	Placed bool

	// Deferred marks a node whose split of the committed merge wire DefD
	// between its two child edges is not yet pinned: the node's feasible
	// placement locus is the octagonal DefRegion (a shortest-distance
	// region), every point q of which corresponds to the split
	// e = dist(q, Left.Region) ∈ [DefELo, DefEHi]. EdgeL/EdgeR, Region and
	// Delay become valid only after Resolve. Only the roots of active
	// (unmerged) subtrees are ever deferred.
	Deferred       bool
	DefD           float64
	DefELo, DefEHi float64
	DefRegion      geom.Octagon
}

// NewLeaf builds the leaf node for a sink. (core's arena path constructs
// its leaves inline instead, to intern the Groups/Delay structures.)
func NewLeaf(s *Sink) *Node {
	return &Node{
		ID:     s.ID,
		Sink:   s,
		Region: geom.RectFromPoint(s.Loc),
		Cap:    s.CapFF,
		Groups: []int{s.Group},
		Delay:  rctree.PointDelaySet(s.Group, rctree.PointInterval(0)),
	}
}

// IsLeaf reports whether the node wraps a sink.
func (n *Node) IsLeaf() bool { return n.Sink != nil }

// ActiveRegion returns the node's current feasible placement locus: the
// octagonal deferred region while the split is open, otherwise the committed
// rectangle.
func (n *Node) ActiveRegion() geom.Octagon {
	if n.Deferred {
		return n.DefRegion
	}
	return geom.OctFromRect(n.Region)
}

// Resolve pins a deferred node's split at e ∈ [DefELo, DefEHi] (clamped),
// committing the child edge lengths, the placement rectangle and the exact
// per-group delay map. Resolving a non-deferred node is a no-op.
func (n *Node) Resolve(m rctree.Model, e float64) {
	if !n.Deferred {
		return
	}
	if e < n.DefELo {
		e = n.DefELo
	}
	if e > n.DefEHi {
		e = n.DefEHi
	}
	n.EdgeL, n.EdgeR = e, n.DefD-e
	n.Region = geom.MergeLocus(n.Left.Region, n.Right.Region, n.EdgeL, n.EdgeR)
	n.Delay = mergedDelay(m, n)
	n.Deferred = false
}

// ResolveToward pins a deferred node at the split realizing the closest
// approach of its deferred region to the target region, then returns the
// node's (now committed) placement rectangle. Non-deferred nodes return
// their rectangle unchanged.
func (n *Node) ResolveToward(m rctree.Model, target geom.Octagon) geom.Rect {
	if n.Deferred {
		q, _ := geom.ClosestPoints(n.DefRegion, target)
		n.Resolve(m, geom.DistRP(n.Left.Region, q))
	}
	return n.Region
}

// DelayAt returns the per-group delay set a deferred node would commit at
// split e, without committing it. For resolved nodes it returns the current
// set. The result must not be mutated.
func (n *Node) DelayAt(m rctree.Model, e float64) rctree.DelaySet {
	if !n.Deferred {
		return n.Delay
	}
	buf := rctree.MakeDelaySet(len(n.Groups))
	return n.DelayAtBuf(m, e, &buf)
}

// DelayAtBuf is DelayAt evaluating into buf (reset first), so hot callers
// — the split searches of joint resolution evaluate hundreds of candidate
// splits per merge — can reuse one buffer instead of allocating per call.
// For resolved nodes it returns the committed set and leaves buf untouched.
// The result must not be mutated and is valid until buf's next reuse.
func (n *Node) DelayAtBuf(m rctree.Model, e float64, buf *rctree.DelaySet) rctree.DelaySet {
	if !n.Deferred {
		return n.Delay
	}
	mergedDelayInto(buf, m, n.Left, n.Right, e, n.DefD-e)
	return *buf
}

// RectAt returns the placement rectangle a deferred node would commit at
// split e. For resolved nodes it returns the committed rectangle.
func (n *Node) RectAt(e float64) geom.Rect {
	if !n.Deferred {
		return n.Region
	}
	return geom.MergeLocus(n.Left.Region, n.Right.Region, e, n.DefD-e)
}

// SplitRange returns the feasible split window ([0,0] for resolved nodes).
func (n *Node) SplitRange() (lo, hi float64) {
	if !n.Deferred {
		return 0, 0
	}
	return n.DefELo, n.DefEHi
}

// mergedDelay computes a node's per-group delay set from its resolved
// children and committed edges.
func mergedDelay(m rctree.Model, n *Node) rctree.DelaySet {
	d := rctree.MakeDelaySet(len(n.Groups))
	mergedDelayInto(&d, m, n.Left, n.Right, n.EdgeL, n.EdgeR)
	return d
}

// mergedDelayInto merges the per-group delay intervals of children left and
// right, joined through edges of the given lengths, into d (reset first).
func mergedDelayInto(d *rctree.DelaySet, m rctree.Model, left, right *Node, edgeL, edgeR float64) {
	wl := m.WireDelay(edgeL, left.Cap)
	wr := m.WireDelay(edgeR, right.Cap)
	rctree.MergeDelaysInto(d, left.Delay, wl, right.Delay, wr)
}

// HasGroup reports whether group g occurs in the subtree.
func (n *Node) HasGroup(g int) bool {
	i := sort.SearchInts(n.Groups, g)
	return i < len(n.Groups) && n.Groups[i] == g
}

// PureGroup returns (g, true) when every sink of the subtree belongs to the
// single group g.
func (n *Node) PureGroup() (int, bool) {
	if len(n.Groups) == 1 {
		return n.Groups[0], true
	}
	return -1, false
}

// OverallDelay returns the interval covering all sink delays of the subtree.
func (n *Node) OverallDelay() rctree.Interval {
	return n.Delay.Overall()
}

// UnionGroups merges two sorted group slices.
func UnionGroups(a, b []int) []int {
	return AppendUnionGroups(make([]int, 0, len(a)+len(b)), a, b)
}

// AppendUnionGroups appends the sorted union of a and b to dst, letting hot
// callers reuse a scratch buffer.
func AppendUnionGroups(dst, a, b []int) []int {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			dst = append(dst, a[i])
			i++
		case a[i] > b[j]:
			dst = append(dst, b[j])
			j++
		default:
			dst = append(dst, a[i])
			i++
			j++
		}
	}
	dst = append(dst, a[i:]...)
	dst = append(dst, b[j:]...)
	return dst
}

// SharedGroups returns the sorted intersection of two sorted group slices.
func SharedGroups(a, b []int) []int {
	return AppendSharedGroups(nil, a, b)
}

// AppendSharedGroups appends the sorted intersection of a and b to dst,
// letting hot callers reuse a scratch buffer.
func AppendSharedGroups(dst, a, b []int) []int {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			dst = append(dst, a[i])
			i++
			j++
		}
	}
	return dst
}

// Wirelength returns the total committed wirelength of the subtree
// (excluding any source-to-root connection).
func (n *Node) Wirelength() float64 {
	if n == nil || n.IsLeaf() {
		return 0
	}
	return n.EdgeL + n.EdgeR + n.Left.Wirelength() + n.Right.Wirelength()
}

// CountNodes returns the number of nodes in the subtree.
func (n *Node) CountNodes() int {
	if n == nil {
		return 0
	}
	return 1 + n.Left.CountNodes() + n.Right.CountNodes()
}

// Visit walks the subtree pre-order.
func (n *Node) Visit(f func(*Node)) {
	if n == nil {
		return
	}
	f(n)
	n.Left.Visit(f)
	n.Right.Visit(f)
}

// Sinks appends all sinks of the subtree to dst and returns it.
func (n *Node) Sinks(dst []*Sink) []*Sink {
	if n == nil {
		return dst
	}
	if n.IsLeaf() {
		return append(dst, n.Sink)
	}
	return n.Right.Sinks(n.Left.Sinks(dst))
}

// Recompute rebuilds Cap and Delay for the subtree bottom-up from the
// committed edge lengths, using the given delay model. It is called after
// structural modifications such as wire snaking on an interior edge, where
// the added wire capacitance perturbs delays along shared ancestor paths.
func (n *Node) Recompute(m rctree.Model) {
	if n.IsLeaf() {
		n.Cap = n.Sink.CapFF
		n.Delay = rctree.PointDelaySet(n.Sink.Group, rctree.PointInterval(0))
		return
	}
	n.Left.Recompute(m)
	n.Right.Recompute(m)
	n.Cap = n.Left.Cap + n.Right.Cap + m.WireCap(n.EdgeL) + m.WireCap(n.EdgeR)
	n.Delay = mergedDelay(m, n)
}

// Embed performs the DME top-down embedding: the subtree root is placed at
// the point of its region nearest to `toward` (typically the clock source or
// the already-placed parent), and children are placed recursively toward
// their parent's location. Committed edge lengths are untouched; they remain
// ≥ the embedded geometric distances by construction.
func (n *Node) Embed(toward geom.UV) {
	n.Loc = n.Region.ClosestPointTo(toward)
	n.Placed = true
	if n.IsLeaf() {
		return
	}
	n.Left.Embed(n.Loc)
	n.Right.Embed(n.Loc)
}
