package ctree

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/geom"
	"repro/internal/rctree"
)

func sink(id int, x, y, cap float64, group int) Sink {
	return Sink{ID: id, Loc: geom.Point{X: x, Y: y}, CapFF: cap, Group: group}
}

func TestInstanceValidate(t *testing.T) {
	ok := Instance{
		Name:      "ok",
		Sinks:     []Sink{sink(0, 0, 0, 1, 0), sink(1, 1, 1, 1, 1)},
		NumGroups: 2,
	}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid instance rejected: %v", err)
	}
	bad := []Instance{
		{Name: "empty", NumGroups: 1},
		{Name: "badid", Sinks: []Sink{sink(5, 0, 0, 1, 0)}, NumGroups: 1},
		{Name: "badgroup", Sinks: []Sink{sink(0, 0, 0, 1, 3)}, NumGroups: 2},
		{Name: "negcap", Sinks: []Sink{sink(0, 0, 0, -1, 0)}, NumGroups: 1},
		{Name: "emptygroup", Sinks: []Sink{sink(0, 0, 0, 1, 0)}, NumGroups: 2},
	}
	for _, in := range bad {
		if err := in.Validate(); err == nil {
			t.Errorf("instance %q accepted", in.Name)
		}
	}
}

func TestGroupSizes(t *testing.T) {
	in := Instance{
		Sinks:     []Sink{sink(0, 0, 0, 1, 0), sink(1, 1, 1, 1, 1), sink(2, 2, 2, 1, 1)},
		NumGroups: 2,
	}
	if got := in.GroupSizes(); !reflect.DeepEqual(got, []int{1, 2}) {
		t.Errorf("GroupSizes = %v", got)
	}
}

func TestUnionSharedGroups(t *testing.T) {
	cases := []struct {
		a, b, union, shared []int
	}{
		{[]int{0}, []int{1}, []int{0, 1}, nil},
		{[]int{0, 2}, []int{1, 2, 3}, []int{0, 1, 2, 3}, []int{2}},
		{[]int{1, 2}, []int{1, 2}, []int{1, 2}, []int{1, 2}},
		{nil, []int{5}, []int{5}, nil},
	}
	for _, c := range cases {
		if got := UnionGroups(c.a, c.b); !reflect.DeepEqual(got, c.union) {
			t.Errorf("UnionGroups(%v,%v) = %v, want %v", c.a, c.b, got, c.union)
		}
		if got := SharedGroups(c.a, c.b); !reflect.DeepEqual(got, c.shared) {
			t.Errorf("SharedGroups(%v,%v) = %v, want %v", c.a, c.b, got, c.shared)
		}
	}
}

// buildTwoLevel constructs ((s0,s1),(s2)) manually with the given edges.
func buildTwoLevel(m rctree.Model) (*Node, []*Sink) {
	s0 := &Sink{ID: 0, Loc: geom.Point{X: 0, Y: 0}, CapFF: 10, Group: 0}
	s1 := &Sink{ID: 1, Loc: geom.Point{X: 10, Y: 0}, CapFF: 10, Group: 0}
	s2 := &Sink{ID: 2, Loc: geom.Point{X: 5, Y: 8}, CapFF: 20, Group: 1}
	l0, l1, l2 := NewLeaf(s0), NewLeaf(s1), NewLeaf(s2)
	a := &Node{ID: 3, Left: l0, Right: l1, EdgeL: 5, EdgeR: 5,
		Groups: []int{0}, Region: geom.MergeLocus(l0.Region, l1.Region, 5, 5)}
	root := &Node{ID: 4, Left: a, Right: l2, EdgeL: 4, EdgeR: 4,
		Groups: []int{0, 1}, Region: geom.MergeLocus(a.Region, l2.Region, 4, 4)}
	root.Recompute(m)
	return root, []*Sink{s0, s1, s2}
}

func TestRecompute(t *testing.T) {
	m := rctree.NewElmore(0.03, 0.02)
	root, _ := buildTwoLevel(m)
	wantCap := 10 + 10 + 20 + m.WireCap(5+5+4+4)
	if math.Abs(root.Cap-wantCap) > 1e-9 {
		t.Errorf("root cap = %v, want %v", root.Cap, wantCap)
	}
	// Group 0 delay: wire(4, capA) + wire(5, 10); symmetric edges → point interval.
	capA := 20 + m.WireCap(10)
	want0 := m.WireDelay(4, capA) + m.WireDelay(5, 10)
	iv0, _ := root.Delay.Get(0)
	if iv0.Width() > 1e-12 || math.Abs(iv0.Lo-want0) > 1e-9 {
		t.Errorf("group 0 delay = %v, want point %v", iv0, want0)
	}
	want1 := m.WireDelay(4, 20.0)
	if iv1, _ := root.Delay.Get(1); math.Abs(iv1.Lo-want1) > 1e-9 || iv1.Width() > 1e-12 {
		t.Errorf("group 1 delay = %v, want point %v", iv1, want1)
	}
	if root.Wirelength() != 18 {
		t.Errorf("wirelength = %v, want 18", root.Wirelength())
	}
	if root.CountNodes() != 5 {
		t.Errorf("CountNodes = %v", root.CountNodes())
	}
}

func TestSnakeHandleChangesOnlyThatGroupPlusUpstreamCap(t *testing.T) {
	m := rctree.NewElmore(0.03, 0.02)
	root, _ := buildTwoLevel(m)
	before0, _ := root.Delay.Get(0)
	before1, _ := root.Delay.Get(1)
	// Snake the edge to sink 2 (the pure group-1 child of the root).
	h := EdgeRef{Parent: root, Side: SideR}
	h.AddLen(3)
	root.Recompute(m)
	after1, _ := root.Delay.Get(1)
	if after1.Lo <= before1.Lo {
		t.Errorf("group 1 delay should increase: %v -> %v", before1, after1)
	}
	// Group 0 is unaffected: the snaked edge is not on its path and the extra
	// cap sits below the root (no shared ancestor edge inside the subtree).
	after0, _ := root.Delay.Get(0)
	if math.Abs(after0.Lo-before0.Lo) > 1e-12 {
		t.Errorf("group 0 delay moved: %v -> %v", before0, after0)
	}
}

func TestEdgeRefAccessors(t *testing.T) {
	m := rctree.Linear{}
	root, _ := buildTwoLevel(m)
	l := EdgeRef{Parent: root, Side: SideL}
	r := EdgeRef{Parent: root, Side: SideR}
	if l.Len() != 4 || r.Len() != 4 {
		t.Errorf("edge lengths %v %v", l.Len(), r.Len())
	}
	if l.Child() != root.Left || r.Child() != root.Right {
		t.Error("child accessors wrong")
	}
	l.AddLen(2)
	if root.EdgeL != 6 {
		t.Errorf("AddLen failed: %v", root.EdgeL)
	}
}

func TestEmbedPlacesWithinRegionsAndDistances(t *testing.T) {
	m := rctree.NewElmore(0.03, 0.02)
	root, _ := buildTwoLevel(m)
	src := geom.ToUV(geom.Point{X: 5, Y: 100})
	root.Embed(src)
	root.Visit(func(n *Node) {
		if !n.Placed {
			t.Fatal("node not placed")
		}
		if !n.Region.Contains(n.Loc) {
			t.Fatalf("node %d placed outside region", n.ID)
		}
		if n.IsLeaf() {
			want := geom.ToUV(n.Sink.Loc)
			if geom.DistUV(n.Loc, want) > 1e-9 {
				t.Fatalf("leaf %d not at sink", n.ID)
			}
			return
		}
		if d := geom.DistUV(n.Loc, n.Left.Loc); d > n.EdgeL+1e-9 {
			t.Fatalf("node %d left edge %v shorter than placement distance %v", n.ID, n.EdgeL, d)
		}
		if d := geom.DistUV(n.Loc, n.Right.Loc); d > n.EdgeR+1e-9 {
			t.Fatalf("node %d right edge %v shorter than placement distance %v", n.ID, n.EdgeR, d)
		}
	})
}

func TestOverallDelayAndQueries(t *testing.T) {
	m := rctree.NewElmore(0.03, 0.02)
	root, sinks := buildTwoLevel(m)
	all := root.OverallDelay()
	for i := 0; i < root.Delay.Len(); i++ {
		g, iv := root.Delay.At(i)
		if iv.Lo < all.Lo-1e-12 || iv.Hi > all.Hi+1e-12 {
			t.Errorf("group %d interval %v outside overall %v", g, iv, all)
		}
	}
	if !root.HasGroup(0) || !root.HasGroup(1) || root.HasGroup(2) {
		t.Error("HasGroup wrong")
	}
	if _, pure := root.PureGroup(); pure {
		t.Error("root should not be pure")
	}
	if g, pure := root.Left.PureGroup(); !pure || g != 0 {
		t.Error("left subtree should be pure group 0")
	}
	got := root.Sinks(nil)
	if len(got) != len(sinks) {
		t.Errorf("Sinks len = %d", len(got))
	}
}
