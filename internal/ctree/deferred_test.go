package ctree

import (
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/rctree"
)

// deferredPair builds a deferred node over two leaves with a full split
// window for testing the deferral API.
func deferredPair(m rctree.Model) (*Node, *Node, *Node) {
	s0 := &Sink{ID: 0, Loc: geom.Point{X: 0, Y: 0}, CapFF: 10, Group: 0}
	s1 := &Sink{ID: 1, Loc: geom.Point{X: 100, Y: 0}, CapFF: 30, Group: 1}
	l0, l1 := NewLeaf(s0), NewLeaf(s1)
	d := geom.DistRR(l0.Region, l1.Region)
	n := &Node{
		ID: 2, Left: l0, Right: l1,
		Groups:   []int{0, 1},
		Cap:      l0.Cap + l1.Cap + m.WireCap(d),
		Deferred: true,
		DefD:     d, DefELo: 0, DefEHi: d,
		DefRegion: geom.SDR(l0.Region, l1.Region, d, 0, d),
	}
	return n, l0, l1
}

func TestDeferredAccessors(t *testing.T) {
	m := rctree.NewElmore(0.1, 0.02)
	n, l0, l1 := deferredPair(m)

	lo, hi := n.SplitRange()
	if lo != 0 || hi != 100 {
		t.Fatalf("split range [%v,%v]", lo, hi)
	}
	if reg := n.ActiveRegion(); reg.IsEmpty() {
		t.Fatal("empty active region")
	}
	// RectAt at each extreme touches the corresponding leaf.
	r0 := n.RectAt(0)
	if geom.DistRR(r0, l0.Region) > 1e-9 {
		t.Errorf("RectAt(0) not at left leaf")
	}
	rd := n.RectAt(100)
	if geom.DistRR(rd, l1.Region) > 1e-9 {
		t.Errorf("RectAt(d) not at right leaf")
	}

	// DelayAt is consistent with a Resolve at the same split.
	for _, e := range []float64{0, 25, 50, 100} {
		want := n.DelayAt(m, e)
		clone, _, _ := deferredPair(m)
		clone.Resolve(m, e)
		for i := 0; i < clone.Delay.Len(); i++ {
			g, iv := clone.Delay.At(i)
			if w, ok := want.Get(g); !ok || math.Abs(w.Lo-iv.Lo) > 1e-9 || math.Abs(w.Hi-iv.Hi) > 1e-9 {
				t.Fatalf("e=%v group %d: DelayAt %v vs resolved %v", e, g, w, iv)
			}
		}
	}
}

func TestResolveCommitsConsistentState(t *testing.T) {
	m := rctree.NewElmore(0.1, 0.02)
	n, _, _ := deferredPair(m)
	n.Resolve(m, 40)
	if n.Deferred {
		t.Fatal("still deferred")
	}
	if n.EdgeL != 40 || n.EdgeR != 60 {
		t.Fatalf("edges %v/%v", n.EdgeL, n.EdgeR)
	}
	if n.Region.IsEmpty() {
		t.Fatal("empty region after resolve")
	}
	// Cap was committed at deferral and must match a recompute.
	want := n.Cap
	n.Recompute(m)
	if math.Abs(n.Cap-want) > 1e-9 {
		t.Errorf("cap %v vs recomputed %v", want, n.Cap)
	}
	// Resolving again is a no-op.
	n.EdgeL = 41
	n.Resolve(m, 10)
	if n.EdgeL != 41 {
		t.Error("second resolve mutated node")
	}
}

func TestResolveClampsSplit(t *testing.T) {
	m := rctree.NewElmore(0.1, 0.02)
	n, _, _ := deferredPair(m)
	n.DefELo, n.DefEHi = 20, 70
	n.Resolve(m, 500)
	if n.EdgeL != 70 {
		t.Errorf("split not clamped: %v", n.EdgeL)
	}
	n2, _, _ := deferredPair(m)
	n2.DefELo, n2.DefEHi = 20, 70
	n2.Resolve(m, -3)
	if n2.EdgeL != 20 {
		t.Errorf("split not clamped low: %v", n2.EdgeL)
	}
}

func TestResolveTowardPicksNearestBoundary(t *testing.T) {
	m := rctree.NewElmore(0.1, 0.02)
	n, l0, l1 := deferredPair(m)
	// Target sitting on the left leaf: resolution should commit e ≈ 0.
	target := geom.OctFromRect(l0.Region)
	rect := n.ResolveToward(m, target)
	if geom.DistRR(rect, l0.Region) > 1e-6 {
		t.Errorf("resolved rect %v not at left leaf", rect)
	}
	if n.EdgeL > 1e-6 {
		t.Errorf("split %v, want ≈0", n.EdgeL)
	}
	_ = l1
}

func TestDelayAtResolvedNodeReturnsCurrentSet(t *testing.T) {
	m := rctree.NewElmore(0.1, 0.02)
	n, _, _ := deferredPair(m)
	n.Resolve(m, 50)
	got := n.DelayAt(m, 999) // argument ignored for resolved nodes
	if !got.Equal(n.Delay) {
		t.Fatalf("DelayAt %v vs committed %v", got, n.Delay)
	}
}
