package dispatch

import (
	"sync"
	"time"
)

// Clock abstracts the coordinator's time source — backoff sleeps, hedge
// deadlines, duration measurement, and the worker pool's health cadence all
// go through it — so the retry/hedge unit tests run on a FakeClock instead
// of real sleeps. The zero Options use the wall clock; production code never
// constructs anything else.
type Clock interface {
	Now() time.Time
	// NewTimer returns a timer that fires once after d. Its Stop/Reset
	// follow time.Timer semantics: Stop reports whether the timer was still
	// pending (callers drain C after a false return before reusing it), and
	// Reset re-arms a stopped-and-drained timer.
	NewTimer(d time.Duration) Timer
}

// Timer is the subset of time.Timer the coordinator uses.
type Timer interface {
	C() <-chan time.Time
	Stop() bool
	Reset(d time.Duration) bool
}

// wallClock is the real time source.
type wallClock struct{}

func (wallClock) Now() time.Time                 { return time.Now() }
func (wallClock) NewTimer(d time.Duration) Timer { return wallTimer{time.NewTimer(d)} }

type wallTimer struct{ t *time.Timer }

func (w wallTimer) C() <-chan time.Time        { return w.t.C }
func (w wallTimer) Stop() bool                 { return w.t.Stop() }
func (w wallTimer) Reset(d time.Duration) bool { return w.t.Reset(d) }

// FakeClock is a manually driven Clock for tests. Time only moves through
// Advance, or — with AutoAdvance — jumps straight to each new timer's
// deadline the moment it is armed, so code whose only waits are timer
// sleeps runs "as fast as time can pass" with zero real sleeping and no
// flakiness. Safe for concurrent use (the coordinator arms timers from
// several goroutines).
type FakeClock struct {
	mu     sync.Mutex
	now    time.Time
	timers []*fakeTimer
	auto   bool
}

// NewFakeClock returns a fake clock at an arbitrary fixed epoch.
func NewFakeClock() *FakeClock {
	return &FakeClock{now: time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)}
}

// SetAutoAdvance toggles auto-advance: when on, arming a timer immediately
// advances the clock to its deadline and fires it.
func (c *FakeClock) SetAutoAdvance(on bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.auto = on
}

// Now returns the fake current time.
func (c *FakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// NewTimer arms a fake timer firing at Now()+d.
func (c *FakeClock) NewTimer(d time.Duration) Timer {
	c.mu.Lock()
	defer c.mu.Unlock()
	t := &fakeTimer{clk: c, c: make(chan time.Time, 1)}
	c.timers = append(c.timers, t)
	c.armLocked(t, d)
	return t
}

// Advance moves the clock forward by d, firing due timers in deadline order.
func (c *FakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	target := c.now.Add(d)
	for {
		t := c.earliestLocked(target)
		if t == nil {
			break
		}
		c.now = t.deadline
		c.fireLocked(t)
	}
	c.now = target
}

// Pending reports how many timers are armed and not yet fired.
func (c *FakeClock) Pending() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, t := range c.timers {
		if t.active {
			n++
		}
	}
	return n
}

func (c *FakeClock) earliestLocked(upTo time.Time) *fakeTimer {
	var best *fakeTimer
	for _, t := range c.timers {
		if !t.active || t.deadline.After(upTo) {
			continue
		}
		if best == nil || t.deadline.Before(best.deadline) {
			best = t
		}
	}
	return best
}

func (c *FakeClock) armLocked(t *fakeTimer, d time.Duration) {
	t.active = true
	t.deadline = c.now.Add(d)
	if c.auto {
		if t.deadline.After(c.now) {
			c.now = t.deadline
		}
		// Fire every timer the jump made due, earliest first, so relative
		// ordering between concurrent sleeps stays sensible.
		for {
			due := c.earliestLocked(c.now)
			if due == nil {
				break
			}
			c.fireLocked(due)
		}
	}
}

func (c *FakeClock) fireLocked(t *fakeTimer) {
	t.active = false
	select {
	case t.c <- t.deadline:
	default:
	}
}

// fakeTimer mirrors time.Timer semantics on the fake clock: the channel is
// buffered, Stop reports whether the timer was still pending, and a fired
// value stays in the channel until drained.
type fakeTimer struct {
	clk      *FakeClock
	c        chan time.Time
	deadline time.Time
	active   bool
}

func (t *fakeTimer) C() <-chan time.Time { return t.c }

func (t *fakeTimer) Stop() bool {
	t.clk.mu.Lock()
	defer t.clk.mu.Unlock()
	was := t.active
	t.active = false
	return was
}

func (t *fakeTimer) Reset(d time.Duration) bool {
	t.clk.mu.Lock()
	defer t.clk.mu.Unlock()
	was := t.active
	t.clk.armLocked(t, d)
	return was
}
