package dispatch

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

func TestFakeClockAdvanceFiresInDeadlineOrder(t *testing.T) {
	c := NewFakeClock()
	t1 := c.NewTimer(3 * time.Second)
	t2 := c.NewTimer(time.Second)
	if got := c.Pending(); got != 2 {
		t.Fatalf("pending = %d, want 2", got)
	}
	c.Advance(2 * time.Second)
	select {
	case <-t2.C():
	default:
		t.Fatal("t2 (1s) did not fire after Advance(2s)")
	}
	select {
	case <-t1.C():
		t.Fatal("t1 (3s) fired after Advance(2s)")
	default:
	}
	c.Advance(2 * time.Second)
	select {
	case <-t1.C():
	default:
		t.Fatal("t1 (3s) did not fire after Advance(4s total)")
	}
	if got := c.Pending(); got != 0 {
		t.Fatalf("pending = %d, want 0", got)
	}
}

func TestFakeClockTimerSemantics(t *testing.T) {
	c := NewFakeClock()
	tm := c.NewTimer(time.Second)
	// Stop on a pending timer reports true and prevents firing.
	if !tm.Stop() {
		t.Fatal("Stop on pending timer = false")
	}
	c.Advance(2 * time.Second)
	select {
	case <-tm.C():
		t.Fatal("stopped timer fired")
	default:
	}
	// Stop on an already-fired timer reports false (time.Timer contract);
	// the fired value stays in the channel until drained.
	tm.Reset(time.Second)
	c.Advance(time.Second)
	if tm.Stop() {
		t.Fatal("Stop on fired timer = true")
	}
	select {
	case <-tm.C():
	default:
		t.Fatal("fired value lost")
	}
	// Reset re-arms relative to the current fake now.
	tm.Reset(time.Minute)
	c.Advance(59 * time.Second)
	select {
	case <-tm.C():
		t.Fatal("reset timer fired early")
	default:
	}
	c.Advance(time.Second)
	select {
	case <-tm.C():
	default:
		t.Fatal("reset timer did not fire at its deadline")
	}
}

func TestFakeClockAutoAdvance(t *testing.T) {
	c := NewFakeClock()
	c.SetAutoAdvance(true)
	before := c.Now()
	tm := c.NewTimer(time.Hour)
	select {
	case <-tm.C():
	default:
		t.Fatal("auto-advance did not fire the timer on arming")
	}
	if got := c.Now().Sub(before); got != time.Hour {
		t.Fatalf("auto-advance moved the clock by %v, want 1h", got)
	}
}

// TestBackoffOnFakeClock pins the clock seam end to end: a run with hour-long
// backoffs completes instantly in wall time, while the fake clock records
// that the coordinator really slept the full schedule.
func TestBackoffOnFakeClock(t *testing.T) {
	clk := NewFakeClock()
	clk.SetAutoAdvance(true)
	start := clk.Now()
	var calls atomic.Int32
	r := RunnerFunc(func(ctx context.Context, tk Task) (any, error) {
		if calls.Add(1) < 3 {
			return nil, MarkTransient(errors.New("flaky"))
		}
		return "done", nil
	})
	wallStart := time.Now()
	vals, rep, err := Run(nil, 1, r, Options{
		Phase:        "t",
		BackoffBase:  time.Hour,
		BackoffMax:   3 * time.Hour,
		DisableHedge: true,
		Clock:        clk,
	})
	if err != nil {
		t.Fatal(err)
	}
	if wall := time.Since(wallStart); wall > 30*time.Second {
		t.Fatalf("fake-clock run took %v of wall time", wall)
	}
	if vals[0].(string) != "done" || rep.Retries != 2 {
		t.Fatalf("vals=%v retries=%d, want done/2", vals[0], rep.Retries)
	}
	// Attempt 1 backs off 1h, attempt 2 backs off 2h: the fake clock must
	// have advanced at least 3h of simulated time.
	if elapsed := clk.Now().Sub(start); elapsed < 3*time.Hour {
		t.Fatalf("fake elapsed = %v, want ≥ 3h of simulated backoff", elapsed)
	}
}

// TestHedgeOnFakeClock drives the hedging machinery without real stragglers:
// the slow task's first attempt blocks until its hedge duplicate has
// delivered, which can only happen if the fake clock satisfied the hedge
// deadline.
func TestHedgeOnFakeClock(t *testing.T) {
	clk := NewFakeClock()
	clk.SetAutoAdvance(true)
	release := make(chan struct{})
	var hedged atomic.Int32
	r := RunnerFunc(func(ctx context.Context, tk Task) (any, error) {
		if tk.Index == 3 && !tk.Hedged {
			<-release // the straggler: parks until the hedge wins
			return "slow", nil
		}
		if tk.Hedged {
			hedged.Add(1)
			defer close(release)
		}
		return "fast", nil
	})
	vals, rep, err := Run(nil, 4, r, Options{
		Phase:       "t",
		BackoffBase: time.Microsecond,
		BackoffMax:  time.Microsecond,
		HedgeSlack:  time.Hour, // only the fake clock can afford this
		Clock:       clk,
	})
	if err != nil {
		t.Fatal(err)
	}
	if hedged.Load() == 0 || rep.Hedges == 0 {
		t.Fatalf("no hedge launched (report %+v)", rep)
	}
	if vals[3].(string) != "fast" {
		t.Fatalf("task 3 result = %v, want the hedge's", vals[3])
	}
}
