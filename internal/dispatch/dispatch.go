// Package dispatch executes the sharded pipeline's sub-builds as retryable
// tasks behind a Runner interface — the fault-tolerance layer between
// shard.Build and the engines that execute its work. Two transports
// implement it: the in-process runner (a closure over core.BuildSubtree)
// and the RemoteRunner, which ships work units to a WorkerPool of HTTP
// routeworker processes and degrades gracefully back to the in-process
// runner when the fleet cannot take a task (see remote.go). The coordinator
// is transport-agnostic.
//
// The coordinator owns four failure disciplines, all leaning on the
// determinism contract (a sub-build is a pure function of its inputs, so any
// re-execution is bitwise-identical to the original):
//
//   - Panic containment: a panic inside a task execution becomes a
//     *PanicError carrying the phase, task index, attempt and stack — never a
//     process crash. Deterministic code would panic again on retry, but a
//     worker crash is transient from the coordinator's seat (the future net
//     transport maps worker loss to exactly this error), so panics classify
//     as Transient by default.
//   - Retry with capped exponential backoff: a failed attempt whose error
//     classifies Transient relaunches after Base·2^(attempt−1), capped at
//     Max, up to MaxAttempts total executions. Deterministic failures
//     (option conflicts, validation errors — anything unmarked) classify
//     Permanent and fail the run fast.
//   - Hedged straggler re-dispatch: once at least half the tasks have
//     completed, a still-running task older than
//     quantile(completed durations)·HedgeFactor + HedgeSlack gets one (and
//     only one) duplicate execution; the first result wins and the loser is
//     cancelled. Safe precisely because executions are deterministic.
//   - Cancellation: every execution runs under a context derived from the
//     caller's; cancelling the caller's context cancels all executions, and
//     core's merge loop checks it once per round.
//
// FaultPlan is the deterministic fault-injection harness: panics, errors and
// delays pinned at (phase, task, attempt) coordinates, so the acceptance
// tests can replay exact failure schedules and pin bitwise-identical output.
package dispatch

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime/debug"
	"sort"
	"time"

	"repro/internal/obs"
)

// Task identifies one execution of a dispatched work unit: task Index of the
// batch, 0-based Attempt (retries and hedges increment it), and whether this
// execution is a hedged duplicate racing an earlier attempt.
type Task struct {
	Index   int
	Attempt int
	Hedged  bool
}

// Runner executes task attempts. Run must be safe for concurrent calls and
// must treat every execution as independent (fresh private state per call):
// the coordinator may run a hedge concurrently with the attempt it duplicates.
// The returned value is the task's result; the first successful execution of
// a task wins.
type Runner interface {
	Run(ctx context.Context, t Task) (any, error)
}

// RunnerFunc adapts a function to the Runner interface.
type RunnerFunc func(ctx context.Context, t Task) (any, error)

// Run implements Runner.
func (f RunnerFunc) Run(ctx context.Context, t Task) (any, error) { return f(ctx, t) }

// Class is an error's retry classification.
type Class int

const (
	// Transient errors are worth retrying (worker crashes, injected faults,
	// anything marked via MarkTransient).
	Transient Class = iota
	// Permanent errors fail the run fast (deterministic failures: option
	// conflicts, validation errors, cancellation).
	Permanent
)

// classed wraps an error with an explicit classification.
type classed struct {
	err   error
	class Class
}

func (e *classed) Error() string { return e.err.Error() }
func (e *classed) Unwrap() error { return e.err }

// MarkTransient marks err as retryable for DefaultClassify.
func MarkTransient(err error) error { return &classed{err: err, class: Transient} }

// MarkPermanent marks err as fail-fast for DefaultClassify.
func MarkPermanent(err error) error { return &classed{err: err, class: Permanent} }

// DefaultClassify is the default error-classification hook: explicit marks
// win, recovered panics are Transient (a deterministic panic recurs and
// exhausts MaxAttempts quickly, but a crashed worker is transient from the
// coordinator's seat), cancellation is Permanent, and every unmarked error is
// Permanent — in-process failures are deterministic, so retrying them only
// replays the failure.
func DefaultClassify(err error) Class {
	var c *classed
	if errors.As(err, &c) {
		return c.class
	}
	var pe *PanicError
	if errors.As(err, &pe) {
		return Transient
	}
	return Permanent
}

// PanicError is a contained panic: the phase and task coordinates it fired
// at, the recovered value, and the goroutine stack captured at recovery.
type PanicError struct {
	Phase   string
	Index   int // task index; -1 for single-phase Protect recoveries
	Attempt int
	Value   any
	Stack   []byte
}

func (e *PanicError) Error() string {
	if e.Index < 0 {
		return fmt.Sprintf("dispatch: panic in %s: %v\n%s", e.Phase, e.Value, e.Stack)
	}
	return fmt.Sprintf("dispatch: panic in %s task %d (attempt %d): %v\n%s",
		e.Phase, e.Index, e.Attempt, e.Value, e.Stack)
}

// TaskError is a task's terminal failure: the last error after Attempts
// executions of task Index, with no retry budget (or reason) left.
type TaskError struct {
	Phase    string
	Index    int
	Attempts int
	Err      error
}

func (e *TaskError) Error() string {
	return fmt.Sprintf("dispatch: %s task %d failed after %d attempt(s): %v",
		e.Phase, e.Index, e.Attempts, e.Err)
}

func (e *TaskError) Unwrap() error { return e.Err }

// Protect runs f with panic containment for serial pipeline phases (the
// stitch, the partition, pilot aggregation): a panic becomes a *PanicError
// naming the phase instead of crashing the process.
func Protect(phase string, f func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Phase: phase, Index: -1, Value: r, Stack: debug.Stack()}
		}
	}()
	return f()
}

// Coordinator defaults.
const (
	DefaultMaxAttempts = 3
	DefaultBackoffBase = 5 * time.Millisecond
	DefaultBackoffMax  = 250 * time.Millisecond
	DefaultHedgeQuant  = 0.5
	DefaultHedgeFactor = 4.0
	DefaultHedgeSlack  = 25 * time.Millisecond
)

// Options configures one Run.
type Options struct {
	// Phase names this dispatch in errors, spans and FaultPlan coordinates
	// (e.g. "shard", "pilot"). Default "task".
	Phase string
	// Workers caps concurrently running executions; 0 runs every task at
	// once (the in-process default: shard counts are small and the builds
	// themselves fan out internally).
	Workers int
	// MaxAttempts bounds executions per task, the first included (default 3).
	// Hedges are the one sanctioned overrun: a task may see MaxAttempts
	// failures plus its single hedge.
	MaxAttempts int
	// BackoffBase/BackoffMax shape the capped exponential retry backoff:
	// attempt k (1-based retry) waits min(Base·2^(k−1), Max).
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// Classify maps an execution error to a Class; nil uses DefaultClassify.
	Classify func(error) Class
	// HedgeQuantile/HedgeFactor/HedgeSlack set the straggler deadline:
	// quantile(completed durations, q)·factor + slack, evaluated once at
	// least max(1, n/2) siblings have completed. Defaults 0.5 / 4 / 25ms.
	HedgeQuantile float64
	HedgeFactor   float64
	HedgeSlack    time.Duration
	// DisableHedge turns straggler re-dispatch off.
	DisableHedge bool
	// Faults, when non-nil, injects the plan's deterministic faults into
	// matching (Phase, task, attempt) executions.
	Faults *FaultPlan
	// Trace, when non-nil, receives dispatch_* metrics and zero-length
	// event spans (retry/hedge/panic, with task coordinates as attributes).
	// Only the coordinator goroutine touches it.
	Trace *obs.Trace
	// Clock overrides the coordinator's time source (backoff sleeps, hedge
	// deadlines, duration measurement). Nil uses the wall clock; tests use
	// a FakeClock so retry/hedge suites run without real sleeps.
	Clock Clock
	// Remote, when non-nil, is the HTTP worker pool dispatch-aware
	// pipelines route their executions through: shard.BuildDispatch wraps
	// its phase runners in pool.Runner(...) when the field is set. Run
	// itself never reads it — the coordinator stays transport-agnostic and
	// sees a RemoteRunner as just another Runner.
	Remote *WorkerPool
}

// Report counts what fault handling cost during a Run. The same counts are
// exported as obs metrics when Options.Trace is set.
type Report struct {
	Tasks           int
	Attempts        int
	Retries         int
	Hedges          int
	PanicsRecovered int
	FaultsInjected  int
	// RemoteFallbacks counts executions that degraded to the in-process
	// runner because no healthy remote worker could take them; WorkersLost
	// counts workers blacklisted after consecutive failures during the run.
	// Both zero on all-local dispatches.
	RemoteFallbacks int
	WorkersLost     int
}

// Add accumulates another dispatch's report (shard.Build sums its pilot and
// shard phases into one per-run report).
func (r *Report) Add(o Report) {
	r.Tasks += o.Tasks
	r.Attempts += o.Attempts
	r.Retries += o.Retries
	r.Hedges += o.Hedges
	r.PanicsRecovered += o.PanicsRecovered
	r.FaultsInjected += o.FaultsInjected
	r.RemoteFallbacks += o.RemoteFallbacks
	r.WorkersLost += o.WorkersLost
}

// Fault is one injected failure: an optional straggler delay, then either a
// panic or an error — or, for remote transports, a network fault. Delay
// composes with Panic/Err (a straggler that then crashes); all fields zero
// is a no-op. The coordinator injects Panic/Err/Delay itself; Drop and
// Corrupt are transport coordinates a RemoteRunner applies (a dropped
// connection before the request, or response bytes corrupted in transit so
// decoding fails) — both surface as Transient errors, so the retry
// machinery drives re-dispatch. On an all-local dispatch net faults are
// inert.
type Fault struct {
	Panic   bool
	Err     error
	Delay   time.Duration
	Drop    bool
	Corrupt bool
}

// faultKey pins a fault to (phase, task, attempt) coordinates.
type faultKey struct {
	phase         string
	task, attempt int
}

// FaultPlan is the deterministic fault-injection harness: a set of faults at
// exact (phase, task, attempt) coordinates. Construction is not synchronized;
// build the plan fully before handing it to Run (executions only read it).
type FaultPlan struct {
	faults map[faultKey]Fault
}

// NewFaultPlan returns an empty plan.
func NewFaultPlan() *FaultPlan { return &FaultPlan{faults: map[faultKey]Fault{}} }

// PanicAt injects a panic into the given execution.
func (p *FaultPlan) PanicAt(phase string, task, attempt int) *FaultPlan {
	return p.add(phase, task, attempt, Fault{Panic: true})
}

// ErrorAt injects err into the given execution. Wrap with MarkTransient to
// make the default classifier retry it.
func (p *FaultPlan) ErrorAt(phase string, task, attempt int, err error) *FaultPlan {
	return p.add(phase, task, attempt, Fault{Err: err})
}

// DelayAt makes the given execution straggle by d before running.
func (p *FaultPlan) DelayAt(phase string, task, attempt int, d time.Duration) *FaultPlan {
	f := p.faults[faultKey{phase, task, attempt}]
	f.Delay = d
	return p.add(phase, task, attempt, f)
}

// DropAt makes a remote transport drop the connection for the given
// execution (a Transient error before any request is sent).
func (p *FaultPlan) DropAt(phase string, task, attempt int) *FaultPlan {
	f := p.faults[faultKey{phase, task, attempt}]
	f.Drop = true
	return p.add(phase, task, attempt, f)
}

// CorruptAt makes a remote transport corrupt the response bytes of the
// given execution before decoding (a decode failure classified Transient).
func (p *FaultPlan) CorruptAt(phase string, task, attempt int) *FaultPlan {
	f := p.faults[faultKey{phase, task, attempt}]
	f.Corrupt = true
	return p.add(phase, task, attempt, f)
}

// Merge folds every fault of o into p (union per coordinate: flags OR, the
// longer delay wins, p's error wins when both plans set one). It lets the
// chaos harness layer a seeded net-fault plan over a seeded local plan.
func (p *FaultPlan) Merge(o *FaultPlan) *FaultPlan {
	if o == nil {
		return p
	}
	if p.faults == nil {
		p.faults = map[faultKey]Fault{}
	}
	for k, f := range o.faults {
		prev := p.faults[k]
		prev.Panic = prev.Panic || f.Panic
		if prev.Err == nil {
			prev.Err = f.Err
		}
		if f.Delay > prev.Delay {
			prev.Delay = f.Delay
		}
		prev.Drop = prev.Drop || f.Drop
		prev.Corrupt = prev.Corrupt || f.Corrupt
		p.faults[k] = prev
	}
	return p
}

func (p *FaultPlan) add(phase string, task, attempt int, f Fault) *FaultPlan {
	if p.faults == nil {
		p.faults = map[faultKey]Fault{}
	}
	prev := p.faults[faultKey{phase, task, attempt}]
	if f.Delay == 0 {
		f.Delay = prev.Delay
	}
	p.faults[faultKey{phase, task, attempt}] = f
	return p
}

// Len reports the number of planned faults.
func (p *FaultPlan) Len() int {
	if p == nil {
		return 0
	}
	return len(p.faults)
}

// at returns the fault planned for the given coordinates, if any.
func (p *FaultPlan) at(phase string, task, attempt int) (Fault, bool) {
	if p == nil || p.faults == nil {
		return Fault{}, false
	}
	f, ok := p.faults[faultKey{phase, task, attempt}]
	return f, ok
}

// ErrInjected is the base error of SeededPlan's transient faults.
var ErrInjected = errors.New("dispatch: injected transient fault")

// SeededPlan generates a survivable random plan over n tasks per phase:
// roughly half the tasks fail their first attempt (panic or transient
// error), a few fail the retry too (still under the default MaxAttempts),
// and a couple straggle by delay. A default-policy dispatch always completes
// under the plan; it exists to prove the output is bitwise-unchanged while
// every recovery path fires.
func SeededPlan(seed int64, n int, delay time.Duration, phases ...string) *FaultPlan {
	rng := rand.New(rand.NewSource(seed))
	p := NewFaultPlan()
	for _, phase := range phases {
		for i := 0; i < n; i++ {
			switch r := rng.Float64(); {
			case r < 0.25:
				p.PanicAt(phase, i, 0)
			case r < 0.45:
				p.ErrorAt(phase, i, 0, MarkTransient(fmt.Errorf("%w (%s task %d)", ErrInjected, phase, i)))
			case r < 0.60:
				// Two consecutive faults: the second retry must still land.
				p.ErrorAt(phase, i, 0, MarkTransient(fmt.Errorf("%w (%s task %d)", ErrInjected, phase, i)))
				p.PanicAt(phase, i, 1)
			}
			if delay > 0 && rng.Float64() < 0.25 {
				p.DelayAt(phase, i, 0, delay)
			}
		}
	}
	return p
}

// SeededNetPlan generates a survivable random plan of network faults over n
// tasks per phase: dropped connections and corrupted responses at attempts
// 0 and 1 only, so even layered over a SeededPlan (whose faults also stop
// at attempt 1) the third attempt of every task is clean and a
// default-policy dispatch always completes. Applied by remote transports
// only; merge it into a local plan with Merge for chaos runs that exercise
// both fault families at once.
func SeededNetPlan(seed int64, n int, phases ...string) *FaultPlan {
	rng := rand.New(rand.NewSource(seed))
	p := NewFaultPlan()
	for _, phase := range phases {
		for i := 0; i < n; i++ {
			switch r := rng.Float64(); {
			case r < 0.25:
				p.DropAt(phase, i, 0)
			case r < 0.40:
				p.CorruptAt(phase, i, 0)
			case r < 0.50:
				// Two consecutive net faults: the second retry must land.
				p.DropAt(phase, i, 0)
				p.CorruptAt(phase, i, 1)
			}
		}
	}
	return p
}

// launch is one scheduled execution: the task coordinates plus the backoff
// the worker sleeps before running.
type launch struct {
	t       Task
	backoff time.Duration
}

// event is one finished execution reported back to the coordinator.
type event struct {
	t   Task
	val any
	err error
	dur time.Duration
}

// taskState is the coordinator's view of one task.
type taskState struct {
	done     bool
	attempts int // executions launched (retries and hedges included)
	running  int // executions currently in flight
	hedged   bool
	started  time.Time // launch time of the oldest in-flight execution
	cancels  map[int]context.CancelFunc
	lastErr  error
}

// runObserver lets a dispatch-package runner report run-scoped state (the
// RemoteRunner's fallback and worker-loss journals) into the Report and the
// trace after the drain, on the coordinator goroutine — the only place the
// single-goroutine trace contract allows. Unexported on purpose: outside
// runners cannot inject into the report.
type runObserver interface {
	observeRun(rep *Report, tr *obs.Trace)
}

// coord is the single-goroutine coordinator state of one Run.
type coord struct {
	o        Options
	clock    Clock
	runner   Runner
	runCtx   context.Context
	events   chan event
	tasks    []taskState
	results  []any
	pending  []launch
	inflight int
	done     int
	durs     []time.Duration // completed winners' durations (hedge baseline)
	rep      Report
	failErr  error
}

// Run executes n tasks through the runner under the options' fault policy
// and returns the per-task results in index order. On failure it cancels the
// outstanding executions, waits for them to drain (no execution outlives
// Run), and returns the first terminal *TaskError. A nil ctx is Background.
func Run(ctx context.Context, n int, r Runner, o Options) ([]any, Report, error) {
	if n < 0 {
		return nil, Report{}, fmt.Errorf("dispatch: %d tasks", n)
	}
	if o.Phase == "" {
		o.Phase = "task"
	}
	if o.Workers <= 0 {
		o.Workers = n
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = DefaultMaxAttempts
	}
	if o.BackoffBase <= 0 {
		o.BackoffBase = DefaultBackoffBase
	}
	if o.BackoffMax <= 0 {
		o.BackoffMax = DefaultBackoffMax
	}
	if o.Classify == nil {
		o.Classify = DefaultClassify
	}
	if o.HedgeQuantile <= 0 || o.HedgeQuantile > 1 {
		o.HedgeQuantile = DefaultHedgeQuant
	}
	if o.HedgeFactor <= 0 {
		o.HedgeFactor = DefaultHedgeFactor
	}
	if o.HedgeSlack <= 0 {
		o.HedgeSlack = DefaultHedgeSlack
	}
	if o.Clock == nil {
		o.Clock = wallClock{}
	}
	if ctx == nil {
		ctx = context.Background()
	}
	rep := Report{Tasks: n}
	if n == 0 {
		return nil, rep, nil
	}
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	c := &coord{
		o:       o,
		clock:   o.Clock,
		runner:  r,
		runCtx:  runCtx,
		events:  make(chan event),
		tasks:   make([]taskState, n),
		results: make([]any, n),
		rep:     rep,
	}
	for i := range c.tasks {
		c.tasks[i].cancels = map[int]context.CancelFunc{}
		c.pending = append(c.pending, launch{t: Task{Index: i}})
	}
	c.fill()

	// The event loop: receive completions, and — when a hedge deadline is
	// computable — race them against a timer armed for the earliest
	// straggler. Spurious timer fires are harmless (due-ness re-validates).
	timer := c.clock.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C()
	}
	for c.done < n && c.failErr == nil {
		var timerC <-chan time.Time
		if wait, ok := c.nextHedgeWait(); ok {
			timer.Reset(wait)
			timerC = timer.C()
		}
		select {
		case ev := <-c.events:
			c.handle(ev)
		case <-timerC:
			timerC = nil
			c.launchDueHedges()
		}
		if timerC != nil && !timer.Stop() {
			<-timer.C()
		}
	}

	// Drain: cancel whatever is still running (hedge losers after success,
	// everything after failure) and wait it out, so no execution goroutine —
	// or its writes into caller-owned state like child traces — outlives Run.
	cancel()
	c.pending = nil
	for c.inflight > 0 {
		ev := <-c.events
		c.inflight--
		c.tasks[ev.t.Index].running--
	}
	// After the drain no execution can journal further; fold run-scoped
	// runner state (remote fallbacks, lost workers) into the report and
	// trace on this, the coordinator goroutine.
	if ob, ok := r.(runObserver); ok {
		ob.observeRun(&c.rep, o.Trace)
	}
	if c.failErr != nil {
		return nil, c.rep, c.failErr
	}
	return c.results, c.rep, nil
}

// fill launches pending executions while worker slots are free.
func (c *coord) fill() {
	for len(c.pending) > 0 && c.inflight < c.o.Workers && c.failErr == nil {
		l := c.pending[0]
		c.pending = c.pending[1:]
		c.launch(l)
	}
}

// launch starts one execution goroutine.
func (c *coord) launch(l launch) {
	ts := &c.tasks[l.t.Index]
	ts.attempts++
	ts.running++
	if ts.running == 1 {
		ts.started = c.clock.Now()
	}
	if _, ok := c.o.Faults.at(c.o.Phase, l.t.Index, l.t.Attempt); ok {
		c.rep.FaultsInjected++
		c.o.Trace.Metric(obs.MetricDispatchFaults, 1)
	}
	ectx, ecancel := context.WithCancel(c.runCtx)
	ts.cancels[l.t.Attempt] = ecancel
	c.inflight++
	c.rep.Attempts++
	go c.exec(ectx, l)
}

// exec runs one execution on its own goroutine: backoff sleep, fault
// injection, the runner itself — all under panic containment — then reports
// the outcome. It always sends exactly one event.
func (c *coord) exec(ctx context.Context, l launch) {
	start := c.clock.Now()
	var val any
	var err error
	func() {
		defer func() {
			if r := recover(); r != nil {
				err = &PanicError{
					Phase:   c.o.Phase,
					Index:   l.t.Index,
					Attempt: l.t.Attempt,
					Value:   r,
					Stack:   debug.Stack(),
				}
			}
		}()
		if err = sleepCtx(ctx, l.backoff, c.clock); err != nil {
			return
		}
		if f, ok := c.o.Faults.at(c.o.Phase, l.t.Index, l.t.Attempt); ok {
			if err = sleepCtx(ctx, f.Delay, c.clock); err != nil {
				return
			}
			if f.Panic {
				panic(fmt.Sprintf("injected fault (%s task %d attempt %d)", c.o.Phase, l.t.Index, l.t.Attempt))
			}
			if f.Err != nil {
				err = f.Err
				return
			}
		}
		val, err = c.runner.Run(ctx, l.t)
	}()
	c.events <- event{t: l.t, val: val, err: err, dur: c.clock.Now().Sub(start)}
}

// handle processes one completion on the coordinator goroutine.
func (c *coord) handle(ev event) {
	c.inflight--
	ts := &c.tasks[ev.t.Index]
	ts.running--
	if cancelExec := ts.cancels[ev.t.Attempt]; cancelExec != nil {
		cancelExec()
		delete(ts.cancels, ev.t.Attempt)
	}
	if ts.done {
		// A hedge loser (or a post-win cancellation echo): first result won.
		c.fill()
		return
	}
	if ev.err == nil {
		ts.done = true
		c.results[ev.t.Index] = ev.val
		c.done++
		c.durs = append(c.durs, ev.dur)
		for _, cancelExec := range ts.cancels {
			cancelExec() // the racing sibling lost
		}
		c.fill()
		return
	}

	var pe *PanicError
	if errors.As(ev.err, &pe) {
		c.rep.PanicsRecovered++
		c.o.Trace.Metric(obs.MetricDispatchPanics, 1)
		c.o.Trace.Begin("dispatch_panic").
			Attr("task", float64(ev.t.Index)).
			Attr("attempt", float64(ev.t.Attempt)).End()
	}
	ts.lastErr = ev.err
	if ts.running > 0 {
		// A racing sibling is still in flight; it may yet win. Defer the
		// retry-vs-fail decision to its completion.
		c.fill()
		return
	}
	if c.o.Classify(ev.err) == Transient && ts.attempts < c.o.MaxAttempts {
		backoff := c.backoffFor(ts.attempts)
		c.rep.Retries++
		c.o.Trace.Metric(obs.MetricDispatchRetries, 1)
		c.o.Trace.Begin("dispatch_retry").
			Attr("task", float64(ev.t.Index)).
			Attr("attempt", float64(ts.attempts)).
			Attr("backoff_ms", float64(backoff)/float64(time.Millisecond)).End()
		c.pending = append(c.pending, launch{
			t:       Task{Index: ev.t.Index, Attempt: ts.attempts},
			backoff: backoff,
		})
		c.fill()
		return
	}
	c.failErr = &TaskError{Phase: c.o.Phase, Index: ev.t.Index, Attempts: ts.attempts, Err: ev.err}
}

// backoffFor returns the capped exponential backoff before retry number k
// (1-based): min(Base·2^(k−1), Max).
func (c *coord) backoffFor(k int) time.Duration {
	d := c.o.BackoffBase
	for i := 1; i < k && d < c.o.BackoffMax; i++ {
		d *= 2
	}
	if d > c.o.BackoffMax {
		d = c.o.BackoffMax
	}
	return d
}

// hedgeDelay returns the current straggler deadline relative to an
// execution's start, once enough siblings completed to define one.
func (c *coord) hedgeDelay() (time.Duration, bool) {
	if c.o.DisableHedge || len(c.durs) == 0 {
		return 0, false
	}
	minDone := len(c.tasks) / 2
	if minDone < 1 {
		minDone = 1
	}
	if c.done < minDone {
		return 0, false
	}
	q := quantileDur(c.durs, c.o.HedgeQuantile)
	return time.Duration(float64(q)*c.o.HedgeFactor) + c.o.HedgeSlack, true
}

// nextHedgeWait returns how long until the earliest running, unhedged task
// crosses the straggler deadline.
func (c *coord) nextHedgeWait() (time.Duration, bool) {
	hd, ok := c.hedgeDelay()
	if !ok {
		return 0, false
	}
	now := c.clock.Now()
	found := false
	var min time.Duration
	for i := range c.tasks {
		ts := &c.tasks[i]
		if ts.done || ts.hedged || ts.running == 0 {
			continue
		}
		w := ts.started.Add(hd).Sub(now)
		if !found || w < min {
			found, min = true, w
		}
	}
	if min < 0 {
		min = 0
	}
	return min, found
}

// launchDueHedges dispatches one duplicate execution for every running task
// past the straggler deadline (at most one hedge per task, ever).
func (c *coord) launchDueHedges() {
	hd, ok := c.hedgeDelay()
	if !ok {
		return
	}
	now := c.clock.Now()
	for i := range c.tasks {
		ts := &c.tasks[i]
		if ts.done || ts.hedged || ts.running == 0 {
			continue
		}
		if now.Sub(ts.started) < hd {
			continue
		}
		ts.hedged = true
		c.rep.Hedges++
		c.o.Trace.Metric(obs.MetricDispatchHedges, 1)
		c.o.Trace.Begin("dispatch_hedge").
			Attr("task", float64(i)).
			Attr("attempt", float64(ts.attempts)).
			Attr("age_ms", float64(now.Sub(ts.started))/float64(time.Millisecond)).End()
		c.pending = append(c.pending, launch{t: Task{Index: i, Attempt: ts.attempts, Hedged: true}})
	}
	c.fill()
}

// quantileDur returns the q-quantile of the given durations (nearest-rank).
func quantileDur(durs []time.Duration, q float64) time.Duration {
	s := append([]time.Duration(nil), durs...)
	sort.Slice(s, func(a, b int) bool { return s[a] < s[b] })
	idx := int(q*float64(len(s))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}

// sleepCtx sleeps d on the given clock, waking early (with the context's
// error) on cancellation. d ≤ 0 only polls the context.
func sleepCtx(ctx context.Context, d time.Duration, clk Clock) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := clk.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C():
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
