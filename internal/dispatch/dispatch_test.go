package dispatch

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
)

// fastOpts keeps retry backoff out of test wall time.
func fastOpts(phase string) Options {
	return Options{Phase: phase, BackoffBase: time.Microsecond, BackoffMax: 10 * time.Microsecond}
}

func TestRunReturnsResultsInOrder(t *testing.T) {
	r := RunnerFunc(func(ctx context.Context, tk Task) (any, error) {
		return tk.Index * 10, nil
	})
	vals, rep, err := Run(nil, 8, r, fastOpts("t"))
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range vals {
		if v.(int) != i*10 {
			t.Errorf("result[%d] = %v, want %d", i, v, i*10)
		}
	}
	if rep.Tasks != 8 || rep.Attempts != 8 || rep.Retries != 0 || rep.Hedges != 0 || rep.PanicsRecovered != 0 {
		t.Errorf("clean run report = %+v", rep)
	}
}

func TestRunZeroTasks(t *testing.T) {
	vals, rep, err := Run(nil, 0, RunnerFunc(func(context.Context, Task) (any, error) {
		t.Error("runner called for empty dispatch")
		return nil, nil
	}), Options{})
	if err != nil || len(vals) != 0 || rep.Tasks != 0 {
		t.Fatalf("empty dispatch: vals=%v rep=%+v err=%v", vals, rep, err)
	}
}

func TestRetryTransientSucceeds(t *testing.T) {
	var calls atomic.Int32
	r := RunnerFunc(func(ctx context.Context, tk Task) (any, error) {
		if tk.Index == 2 && tk.Attempt == 0 {
			return nil, MarkTransient(errors.New("flaky"))
		}
		calls.Add(1)
		return "ok", nil
	})
	vals, rep, err := Run(nil, 4, r, fastOpts("t"))
	if err != nil {
		t.Fatal(err)
	}
	if vals[2].(string) != "ok" {
		t.Errorf("retried task result = %v", vals[2])
	}
	if rep.Retries != 1 || rep.Attempts != 5 {
		t.Errorf("report = %+v, want 1 retry / 5 attempts", rep)
	}
}

func TestPermanentFailsFast(t *testing.T) {
	base := errors.New("bad options")
	r := RunnerFunc(func(ctx context.Context, tk Task) (any, error) {
		if tk.Index == 1 {
			return nil, base
		}
		return nil, nil
	})
	_, rep, err := Run(nil, 3, r, fastOpts("t"))
	if err == nil {
		t.Fatal("permanent failure did not surface")
	}
	var te *TaskError
	if !errors.As(err, &te) {
		t.Fatalf("error %T, want *TaskError", err)
	}
	if te.Index != 1 || te.Attempts != 1 || te.Phase != "t" {
		t.Errorf("TaskError = %+v, want task 1 after exactly 1 attempt", te)
	}
	if !errors.Is(err, base) {
		t.Error("TaskError does not unwrap to the runner's error")
	}
	if rep.Retries != 0 {
		t.Errorf("permanent failure retried: %+v", rep)
	}
}

func TestMarkPermanentOverridesPanicClass(t *testing.T) {
	pe := &PanicError{Phase: "t", Index: 0, Value: "boom"}
	if DefaultClassify(pe) != Transient {
		t.Error("bare PanicError should classify Transient")
	}
	if DefaultClassify(MarkPermanent(fmt.Errorf("wrap: %w", pe))) != Permanent {
		t.Error("explicit MarkPermanent should win over the panic rule")
	}
	if DefaultClassify(MarkTransient(errors.New("x"))) != Transient {
		t.Error("MarkTransient ignored")
	}
	if DefaultClassify(errors.New("plain")) != Permanent {
		t.Error("unmarked errors must be Permanent")
	}
	if DefaultClassify(context.Canceled) != Permanent {
		t.Error("cancellation must be Permanent")
	}
}

func TestPanicContainedAndRetried(t *testing.T) {
	r := RunnerFunc(func(ctx context.Context, tk Task) (any, error) {
		if tk.Index == 0 && tk.Attempt == 0 {
			panic("worker exploded")
		}
		return tk.Index, nil
	})
	vals, rep, err := Run(nil, 2, r, fastOpts("t"))
	if err != nil {
		t.Fatal(err)
	}
	if vals[0].(int) != 0 {
		t.Errorf("panicked task result = %v", vals[0])
	}
	if rep.PanicsRecovered != 1 || rep.Retries != 1 {
		t.Errorf("report = %+v, want 1 panic recovered + 1 retry", rep)
	}
}

func TestPanicEveryAttemptFailsWithoutCrash(t *testing.T) {
	r := RunnerFunc(func(ctx context.Context, tk Task) (any, error) {
		panic(fmt.Sprintf("always (attempt %d)", tk.Attempt))
	})
	o := fastOpts("t")
	o.MaxAttempts = 3
	_, rep, err := Run(nil, 1, r, o)
	var te *TaskError
	if !errors.As(err, &te) || te.Attempts != 3 {
		t.Fatalf("err = %v, want TaskError after 3 attempts", err)
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("terminal error does not unwrap to *PanicError: %v", err)
	}
	if pe.Phase != "t" || pe.Index != 0 || pe.Attempt != 2 {
		t.Errorf("PanicError coordinates = %+v", pe)
	}
	if len(pe.Stack) == 0 {
		t.Error("PanicError carries no stack")
	}
	if rep.PanicsRecovered != 3 || rep.Retries != 2 {
		t.Errorf("report = %+v, want 3 panics / 2 retries", rep)
	}
}

func TestProtect(t *testing.T) {
	err := Protect("stitch", func() error { panic("seam") })
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Phase != "stitch" || pe.Index != -1 {
		t.Fatalf("Protect returned %v, want *PanicError{Phase: stitch, Index: -1}", err)
	}
	base := errors.New("plain failure")
	if got := Protect("stitch", func() error { return base }); got != base {
		t.Errorf("Protect altered a plain error: %v", got)
	}
	if got := Protect("stitch", func() error { return nil }); got != nil {
		t.Errorf("Protect invented an error: %v", got)
	}
}

func TestFaultPlanCoordinates(t *testing.T) {
	plan := NewFaultPlan().
		PanicAt("t", 0, 0).
		ErrorAt("t", 1, 0, MarkTransient(ErrInjected)).
		DelayAt("t", 1, 0, time.Millisecond). // composes with the error
		DelayAt("t", 2, 0, time.Millisecond)
	if plan.Len() != 3 {
		t.Fatalf("plan.Len() = %d, want 3", plan.Len())
	}
	f, ok := plan.at("t", 1, 0)
	if !ok || f.Err == nil || f.Delay != time.Millisecond {
		t.Errorf("composed fault = %+v", f)
	}
	if _, ok := plan.at("other", 0, 0); ok {
		t.Error("fault leaked across phases")
	}

	var executions atomic.Int32
	r := RunnerFunc(func(ctx context.Context, tk Task) (any, error) {
		executions.Add(1)
		return tk.Index, nil
	})
	vals, rep, err := Run(nil, 3, r, Options{Phase: "t", Faults: plan, BackoffBase: time.Microsecond, BackoffMax: time.Microsecond, DisableHedge: true})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range vals {
		if v.(int) != i {
			t.Errorf("result[%d] = %v under faults", i, v)
		}
	}
	if rep.FaultsInjected != 3 || rep.PanicsRecovered != 1 || rep.Retries != 2 {
		t.Errorf("report = %+v, want 3 faults / 1 panic / 2 retries", rep)
	}
}

func TestSeededPlanDeterministicAndSurvivable(t *testing.T) {
	a := SeededPlan(7, 8, time.Millisecond, "shard")
	b := SeededPlan(7, 8, time.Millisecond, "shard")
	if a.Len() != b.Len() {
		t.Fatalf("same seed, different plans: %d vs %d faults", a.Len(), b.Len())
	}
	for k, f := range a.faults {
		g, ok := b.faults[k]
		if !ok || g.Panic != f.Panic || (g.Err == nil) != (f.Err == nil) || g.Delay != f.Delay {
			t.Fatalf("same seed, different fault at %+v: %+v vs %+v", k, f, g)
		}
	}
	for seed := int64(1); seed <= 5; seed++ {
		plan := SeededPlan(seed, 8, 0, "shard")
		r := RunnerFunc(func(ctx context.Context, tk Task) (any, error) { return tk.Index, nil })
		o := fastOpts("shard")
		o.Faults = plan
		vals, _, err := Run(nil, 8, r, o)
		if err != nil {
			t.Fatalf("seed %d: default policy did not survive the plan: %v", seed, err)
		}
		for i, v := range vals {
			if v.(int) != i {
				t.Fatalf("seed %d: result[%d] = %v", seed, i, v)
			}
		}
	}
}

func TestHedgeStragglerFirstResultWins(t *testing.T) {
	// Task 3's first attempt straggles until cancelled; its hedge (and every
	// other task) returns promptly. The dispatcher must hedge exactly once,
	// take the hedge's result, and cancel the straggler on the way out.
	straggled := make(chan struct{})
	r := RunnerFunc(func(ctx context.Context, tk Task) (any, error) {
		if tk.Index == 3 && tk.Attempt == 0 {
			defer close(straggled)
			<-ctx.Done()
			return nil, ctx.Err()
		}
		return tk.Index, nil
	})
	o := Options{
		Phase:         "t",
		HedgeQuantile: 0.5,
		HedgeFactor:   1,
		HedgeSlack:    time.Millisecond,
	}
	vals, rep, err := Run(nil, 4, r, o)
	if err != nil {
		t.Fatal(err)
	}
	if vals[3].(int) != 3 {
		t.Errorf("straggler result = %v, want the hedge's 3", vals[3])
	}
	if rep.Hedges != 1 {
		t.Errorf("Hedges = %d, want exactly 1", rep.Hedges)
	}
	if rep.Attempts != 5 {
		t.Errorf("Attempts = %d, want 5 (one extra for the single hedge)", rep.Attempts)
	}
	select {
	case <-straggled:
	default:
		t.Error("straggling execution outlived Run")
	}
}

func TestHedgeAtMostOncePerTask(t *testing.T) {
	// The straggler ignores its hedge too; both executions block until the
	// run context dies. A second hedge for the same task must never launch.
	r := RunnerFunc(func(ctx context.Context, tk Task) (any, error) {
		if tk.Index == 0 {
			<-ctx.Done()
			return nil, ctx.Err()
		}
		return tk.Index, nil
	})
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	o := Options{
		Phase:         "t",
		HedgeQuantile: 0.5,
		HedgeFactor:   1,
		HedgeSlack:    time.Millisecond,
	}
	_, rep, err := Run(ctx, 3, r, o)
	if err == nil {
		t.Fatal("a task whose every execution hangs should fail on cancellation")
	}
	if rep.Hedges > 1 {
		t.Errorf("Hedges = %d, want at most 1 per task", rep.Hedges)
	}
	if rep.Hedges == 0 {
		// The hedge deadline is milliseconds against a 1s context; missing it
		// means the coordinator was starved for the whole second (loaded CI),
		// not that hedging is broken — the ≤1 bound above is the contract.
		t.Log("hedge never fired before cancellation (starved scheduler?)")
	}
}

func TestCancellationUnwindsRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	r := RunnerFunc(func(c context.Context, tk Task) (any, error) {
		if tk.Index == 0 {
			cancel() // first task pulls the plug on the whole dispatch
		}
		<-c.Done()
		return nil, c.Err()
	})
	start := time.Now()
	_, _, err := Run(ctx, 4, r, Options{Phase: "t", DisableHedge: true})
	if err == nil {
		t.Fatal("cancelled dispatch returned nil error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("error %v does not unwrap to context.Canceled", err)
	}
	// Generous against race-detector slowdown and loaded CI: the point is
	// that unwinding is bounded at all, not a latency target.
	if elapsed := time.Since(start); elapsed > 20*time.Second {
		t.Errorf("cancellation took %v to unwind", elapsed)
	}
}

func TestBackoffCappedExponential(t *testing.T) {
	c := &coord{o: Options{BackoffBase: 5 * time.Millisecond, BackoffMax: 35 * time.Millisecond}}
	want := []time.Duration{
		5 * time.Millisecond,  // retry 1
		10 * time.Millisecond, // retry 2
		20 * time.Millisecond, // retry 3
		35 * time.Millisecond, // retry 4 would be 40ms: capped
		35 * time.Millisecond,
	}
	for i, w := range want {
		if got := c.backoffFor(i + 1); got != w {
			t.Errorf("backoffFor(%d) = %v, want %v", i+1, got, w)
		}
	}
}

func TestQuantileDur(t *testing.T) {
	durs := []time.Duration{40, 10, 30, 20} // unsorted on purpose
	if got := quantileDur(durs, 0.5); got != 20 {
		t.Errorf("median = %v, want 20", got)
	}
	if got := quantileDur(durs, 1); got != 40 {
		t.Errorf("max quantile = %v, want 40", got)
	}
	if got := quantileDur([]time.Duration{7}, 0.5); got != 7 {
		t.Errorf("singleton quantile = %v, want 7", got)
	}
	if durs[0] != 40 {
		t.Error("quantileDur mutated its input")
	}
}

func TestDispatchMetricsOnTrace(t *testing.T) {
	plan := NewFaultPlan().
		PanicAt("t", 0, 0).
		ErrorAt("t", 1, 0, MarkTransient(ErrInjected))
	tr := obs.New("dispatch-test")
	r := RunnerFunc(func(ctx context.Context, tk Task) (any, error) { return tk.Index, nil })
	o := fastOpts("t")
	o.Faults = plan
	o.Trace = tr
	_, rep, err := Run(nil, 2, r, o)
	if err != nil {
		t.Fatal(err)
	}
	tr.Close()
	for name, want := range map[string]int{
		obs.MetricDispatchRetries: rep.Retries,
		obs.MetricDispatchPanics:  rep.PanicsRecovered,
		obs.MetricDispatchFaults:  rep.FaultsInjected,
	} {
		got, ok := tr.MetricValue(name)
		if !ok || got != float64(want) {
			t.Errorf("%s = %v (found %v), report says %d", name, got, ok, want)
		}
	}
}

// TestDispatchAllocOverhead pins the fault layer's own cost: a clean (no
// fault, no retry, no hedge) dispatch is a fixed per-task overhead —
// goroutine, context, bookkeeping — independent of what the tasks do, so
// wrapping shard builds in the dispatcher adds nothing per route.
func TestDispatchAllocOverhead(t *testing.T) {
	const perTaskBudget = 40 // observed ~20 allocs/task; headroom for runtime drift
	r := RunnerFunc(func(ctx context.Context, tk Task) (any, error) { return nil, nil })
	o := Options{Phase: "t", DisableHedge: true}
	for _, n := range []int{4, 16} {
		allocs := testing.AllocsPerRun(10, func() {
			if _, _, err := Run(nil, n, r, o); err != nil {
				t.Fatal(err)
			}
		})
		t.Logf("n=%d: %.1f allocs/run (%.1f per task)", n, allocs, allocs/float64(n))
		if allocs > float64(n*perTaskBudget) {
			t.Errorf("n=%d dispatch allocations = %.0f, budget %d", n, allocs, n*perTaskBudget)
		}
	}
}
