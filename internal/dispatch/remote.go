package dispatch

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
)

// Remote transport defaults.
const (
	DefaultHealthPeriod   = 2 * time.Second
	DefaultHealthTimeout  = time.Second
	DefaultRequestTimeout = 2 * time.Minute
	DefaultBlacklistAfter = 3
)

// maxResponseBytes bounds a worker response read (a defensive cap far above
// any real subtree encoding, not a tuning knob).
const maxResponseBytes = 1 << 30

// Worker HTTP endpoints, shared between the pool and the worker handler
// (internal/wire serves them; cmd/routeworker hosts that handler).
const (
	PathBuild   = "/build"
	PathHealthz = "/healthz"
)

// PoolOptions configures a WorkerPool. The zero value selects the defaults
// above.
type PoolOptions struct {
	// HealthPeriod is the cadence of the background health loop, which
	// probes every worker's /healthz: consecutive probe or request failures
	// blacklist a worker, and a successful probe of a blacklisted worker
	// reinstates it. HealthTimeout bounds one probe.
	HealthPeriod  time.Duration
	HealthTimeout time.Duration
	// RequestTimeout caps one build request; the effective per-request
	// deadline is the earlier of it and the task context's own deadline.
	RequestTimeout time.Duration
	// BlacklistAfter is the consecutive-failure count that blacklists a
	// worker (requests and failed probes both count; any success resets).
	BlacklistAfter int
	// Clock drives the health cadence (tests use a FakeClock); nil = wall.
	Clock Clock
	// Client overrides the HTTP client (tests); nil uses a private default.
	Client *http.Client
}

// poolWorker is one worker endpoint's pool-side state, guarded by the
// pool's mutex.
type poolWorker struct {
	url      string
	inflight int
	fails    int // consecutive failures (requests and probes)
	black    bool
}

// WorkerPool tracks a fleet of routeworker endpoints: health, consecutive-
// failure blacklisting with probed reinstatement, and least-loaded worker
// selection. It is the fleet-state half of remote dispatch; RemoteRunner
// (built with Runner) is the per-phase transport over it. Safe for
// concurrent use; one pool is typically shared by every dispatched phase of
// a run.
type WorkerPool struct {
	o      PoolOptions
	clock  Clock
	client *http.Client

	mu      sync.Mutex
	workers []*poolWorker
	rr      int
	lost    int

	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once
}

// NewWorkerPool builds a pool over the given worker addresses ("host:port"
// or full "http://..." URLs) and starts its health loop. Close releases it.
func NewWorkerPool(addrs []string, o PoolOptions) (*WorkerPool, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("dispatch: worker pool needs at least one worker address")
	}
	if o.HealthPeriod <= 0 {
		o.HealthPeriod = DefaultHealthPeriod
	}
	if o.HealthTimeout <= 0 {
		o.HealthTimeout = DefaultHealthTimeout
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = DefaultRequestTimeout
	}
	if o.BlacklistAfter <= 0 {
		o.BlacklistAfter = DefaultBlacklistAfter
	}
	if o.Clock == nil {
		o.Clock = wallClock{}
	}
	p := &WorkerPool{
		o:      o,
		clock:  o.Clock,
		client: o.Client,
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	if p.client == nil {
		p.client = &http.Client{}
	}
	seen := map[string]bool{}
	for _, a := range addrs {
		u := strings.TrimSpace(a)
		if u == "" {
			return nil, fmt.Errorf("dispatch: empty worker address")
		}
		if !strings.Contains(u, "://") {
			u = "http://" + u
		}
		u = strings.TrimRight(u, "/")
		if seen[u] {
			return nil, fmt.Errorf("dispatch: duplicate worker address %s", u)
		}
		seen[u] = true
		p.workers = append(p.workers, &poolWorker{url: u})
	}
	go p.healthLoop()
	return p, nil
}

// Close stops the health loop. Outstanding requests are unaffected.
func (p *WorkerPool) Close() {
	p.stopOnce.Do(func() { close(p.stop) })
	<-p.done
}

// Workers returns the fleet size.
func (p *WorkerPool) Workers() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.workers)
}

// Healthy returns the number of workers currently not blacklisted.
func (p *WorkerPool) Healthy() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, w := range p.workers {
		if !w.black {
			n++
		}
	}
	return n
}

// WorkersLost returns the cumulative count of blacklist transitions (a
// reinstated worker that fails again counts again — each loss is an event).
func (p *WorkerPool) WorkersLost() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.lost
}

// pick reserves the least-loaded healthy worker not in skip (round-robin
// among ties) and returns nil when none qualifies — the caller's cue to
// degrade to local execution. Pair every pick with a release.
func (p *WorkerPool) pick(skip map[*poolWorker]bool) *poolWorker {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := len(p.workers)
	var best *poolWorker
	for i := 0; i < n; i++ {
		w := p.workers[(p.rr+i)%n]
		if w.black || skip[w] {
			continue
		}
		if best == nil || w.inflight < best.inflight {
			best = w
		}
	}
	if best == nil {
		return nil
	}
	p.rr = (p.rr + 1) % n
	best.inflight++
	return best
}

func (p *WorkerPool) release(w *poolWorker) {
	p.mu.Lock()
	defer p.mu.Unlock()
	w.inflight--
}

// succeed resets a worker's consecutive-failure count (and reinstates it if
// a concurrent path blacklisted it — a live worker is a healthy worker).
func (p *WorkerPool) succeed(w *poolWorker) {
	p.mu.Lock()
	defer p.mu.Unlock()
	w.fails = 0
	w.black = false
}

// fail counts one failure against the worker, blacklisting it at the
// configured threshold.
func (p *WorkerPool) fail(w *poolWorker) {
	p.mu.Lock()
	defer p.mu.Unlock()
	w.fails++
	if !w.black && w.fails >= p.o.BlacklistAfter {
		w.black = true
		p.lost++
	}
}

// healthLoop probes the fleet at the configured cadence until Close.
func (p *WorkerPool) healthLoop() {
	defer close(p.done)
	t := p.clock.NewTimer(p.o.HealthPeriod)
	defer t.Stop()
	for {
		select {
		case <-p.stop:
			return
		case <-t.C():
			// A panicking probe round must not crash the process (the pool
			// outlives any single build): contain it and let the next tick
			// retry — worker state is simply one round staler.
			_ = Protect("healthloop", func() error { p.probeAll(); return nil })
			t.Reset(p.o.HealthPeriod)
		}
	}
}

// probeAll GETs every worker's /healthz: a failure counts toward the
// blacklist like a request failure; a success resets the count and
// reinstates a blacklisted worker.
func (p *WorkerPool) probeAll() {
	p.mu.Lock()
	ws := append([]*poolWorker(nil), p.workers...)
	p.mu.Unlock()
	for _, w := range ws {
		if p.probe(w) {
			p.succeed(w)
		} else {
			p.fail(w)
		}
	}
}

func (p *WorkerPool) probe(w *poolWorker) bool {
	ctx, cancel := context.WithTimeout(context.Background(), p.o.HealthTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, w.url+PathHealthz, nil)
	if err != nil {
		return false
	}
	resp, err := p.client.Do(req)
	if err != nil {
		return false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// post sends one build request to w under the per-request deadline (the
// earlier of the task context's own deadline and RequestTimeout) and
// returns the response body and status.
func (p *WorkerPool) post(ctx context.Context, w *poolWorker, body []byte) (data []byte, status int, err error) {
	rctx, cancel := context.WithTimeout(ctx, p.o.RequestTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodPost, w.url+PathBuild, bytes.NewReader(body))
	if err != nil {
		return nil, 0, err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := p.client.Do(req)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	data, err = io.ReadAll(io.LimitReader(resp.Body, maxResponseBytes+1))
	if err != nil {
		return nil, 0, err
	}
	if len(data) > maxResponseBytes {
		return nil, 0, fmt.Errorf("response exceeds %d bytes", maxResponseBytes)
	}
	return data, resp.StatusCode, nil
}

// RemoteConfig parameterizes one phase's remote transport.
type RemoteConfig struct {
	// Phase names the dispatch for FaultPlan net-fault coordinates and
	// error messages.
	Phase string
	// Encode serializes one task into the work-unit bytes POSTed to a
	// worker; Decode parses a worker's response into the task result the
	// pipeline expects. Both are supplied by the pipeline (internal/shard
	// closes them over internal/wire) so this package stays codec-agnostic.
	Encode func(t Task) ([]byte, error)
	Decode func(data []byte) (any, error)
	// Local is the in-process runner executions degrade to when no healthy
	// worker can take them. Required: graceful degradation is the contract,
	// not an option.
	Local Runner
	// Faults, when non-nil, supplies Drop/Corrupt net faults at
	// (Phase, task, attempt) coordinates.
	Faults *FaultPlan
}

// RemoteRunner executes tasks on the pool's workers over HTTP. Failure
// discipline, in order: an injected Drop surfaces Transient immediately (the
// coordinator's retry machinery drives re-dispatch); a transport-level
// failure (connection refused/reset, request deadline) counts against the
// worker and fails over to the next healthy worker within the same
// execution; a worker 500 (contained handler panic) does the same; a worker
// 422 (deterministic build failure) returns Permanent untouched; an
// undecodable response — corruption in transit, injected or real — returns
// Transient without blaming the worker. When no healthy worker remains for
// the execution, it transparently degrades to the Local runner and journals
// the fallback; the journal is folded into Report/trace after the run
// drains (observeRun, on the coordinator goroutine).
type RemoteRunner struct {
	pool     *WorkerPool
	cfg      RemoteConfig
	mu       sync.Mutex
	fbTasks  []Task
	lostBase int
}

// Runner builds the phase transport over the pool. cfg.Local and the codec
// callbacks are required.
func (p *WorkerPool) Runner(cfg RemoteConfig) (*RemoteRunner, error) {
	if cfg.Encode == nil || cfg.Decode == nil {
		return nil, fmt.Errorf("dispatch: RemoteConfig needs Encode and Decode")
	}
	if cfg.Local == nil {
		return nil, fmt.Errorf("dispatch: RemoteConfig needs a Local fallback runner")
	}
	if cfg.Phase == "" {
		cfg.Phase = "task"
	}
	return &RemoteRunner{pool: p, cfg: cfg, lostBase: p.WorkersLost()}, nil
}

// Run implements Runner.
func (r *RemoteRunner) Run(ctx context.Context, t Task) (any, error) {
	f, _ := r.cfg.Faults.at(r.cfg.Phase, t.Index, t.Attempt)
	var body []byte
	encoded := false
	var tried map[*poolWorker]bool
	for {
		w := r.pool.pick(tried)
		if w == nil {
			break
		}
		if f.Drop {
			// The injected connection drop: attributed to the picked worker
			// like a real drop would be, surfaced Transient so the retry
			// machinery re-dispatches at the next attempt's coordinates.
			r.pool.release(w)
			r.pool.fail(w)
			return nil, MarkTransient(fmt.Errorf("dispatch: injected connection drop to %s (%s task %d attempt %d)",
				w.url, r.cfg.Phase, t.Index, t.Attempt))
		}
		if !encoded {
			var err error
			if body, err = r.cfg.Encode(t); err != nil {
				r.pool.release(w)
				// Encoding is deterministic; retrying replays the failure.
				return nil, fmt.Errorf("dispatch: encode %s task %d: %w", r.cfg.Phase, t.Index, err)
			}
			encoded = true
		}
		data, status, err := r.pool.post(ctx, w, body)
		r.pool.release(w)
		if err != nil {
			r.pool.fail(w)
			if ctx.Err() != nil {
				return nil, ctx.Err() // caller cancelled; do not mask it
			}
			if tried == nil {
				tried = map[*poolWorker]bool{}
			}
			tried[w] = true
			continue // fail over to the next healthy worker
		}
		switch status {
		case http.StatusOK:
			r.pool.succeed(w)
			if f.Corrupt {
				data = corruptResponse(data)
			}
			out, err := r.cfg.Decode(data)
			if err != nil {
				return nil, MarkTransient(fmt.Errorf("dispatch: undecodable response from %s (%s task %d attempt %d): %w",
					w.url, r.cfg.Phase, t.Index, t.Attempt, err))
			}
			return out, nil
		case http.StatusUnprocessableEntity:
			// The worker is fine; the build itself failed deterministically.
			r.pool.succeed(w)
			return nil, fmt.Errorf("dispatch: worker %s: %s", w.url, strings.TrimSpace(string(data)))
		default:
			// A contained worker panic (500) or other server-side trouble.
			r.pool.fail(w)
			if tried == nil {
				tried = map[*poolWorker]bool{}
			}
			tried[w] = true
			continue
		}
	}
	// Graceful degradation: no healthy worker could take the task. The
	// build completes locally; the journaled fallback surfaces on the
	// report and trace after the run drains.
	r.mu.Lock()
	r.fbTasks = append(r.fbTasks, t)
	r.mu.Unlock()
	return r.cfg.Local.Run(ctx, t)
}

// corruptResponse flips bits spread through the payload so decoding fails
// (at worst the trailing checksum catches it).
func corruptResponse(data []byte) []byte {
	out := append([]byte(nil), data...)
	if len(out) == 0 {
		return out
	}
	step := len(out)/8 + 1
	for i := 0; i < len(out); i += step {
		out[i] ^= 0xA5
	}
	return out
}

// observeRun implements runObserver: it folds the run's journaled
// degradation events into the report and emits the matching metrics and
// event spans. Run (dispatch.go) calls it once after the drain, on the
// coordinator goroutine — the only goroutine allowed to touch the trace.
func (r *RemoteRunner) observeRun(rep *Report, tr *obs.Trace) {
	r.mu.Lock()
	fbs := r.fbTasks
	r.fbTasks = nil
	r.mu.Unlock()
	lost := r.pool.WorkersLost() - r.lostBase
	r.lostBase += lost

	rep.RemoteFallbacks += len(fbs)
	rep.WorkersLost += lost
	for _, t := range fbs {
		tr.Metric(obs.MetricDispatchRemoteFallbacks, 1)
		tr.Begin("dispatch_remote_fallback").
			Attr("task", float64(t.Index)).
			Attr("attempt", float64(t.Attempt)).End()
	}
	if lost > 0 {
		tr.Metric(obs.MetricDispatchWorkersLost, float64(lost))
		tr.Begin("dispatch_worker_lost").Attr("count", float64(lost)).End()
	}
}
