package dispatch

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
)

// testWorker is a minimal worker endpoint: healthy unless told otherwise,
// answering /build with a canned body and status.
type testWorker struct {
	srv     *httptest.Server
	healthy atomic.Bool
	status  atomic.Int32
	body    atomic.Value // string
	builds  atomic.Int32
}

func newTestWorker(t *testing.T) *testWorker {
	t.Helper()
	w := &testWorker{}
	w.healthy.Store(true)
	w.status.Store(http.StatusOK)
	w.body.Store("result")
	mux := http.NewServeMux()
	mux.HandleFunc(PathHealthz, func(rw http.ResponseWriter, r *http.Request) {
		if !w.healthy.Load() {
			http.Error(rw, "down", http.StatusServiceUnavailable)
			return
		}
		rw.Write([]byte("ok\n"))
	})
	mux.HandleFunc(PathBuild, func(rw http.ResponseWriter, r *http.Request) {
		w.builds.Add(1)
		st := int(w.status.Load())
		if st != http.StatusOK {
			http.Error(rw, "nope", st)
			return
		}
		rw.Write([]byte(w.body.Load().(string)))
	})
	w.srv = httptest.NewServer(mux)
	t.Cleanup(w.srv.Close)
	return w
}

func testPool(t *testing.T, o PoolOptions, urls ...string) *WorkerPool {
	t.Helper()
	if o.HealthPeriod == 0 {
		// Keep the background health loop out of the way unless a test
		// drives it explicitly through a fake clock.
		o.HealthPeriod = time.Hour
		o.Clock = NewFakeClock()
	}
	p, err := NewWorkerPool(urls, o)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	return p
}

func echoConfig(local Runner) RemoteConfig {
	return RemoteConfig{
		Phase:  "t",
		Encode: func(tk Task) ([]byte, error) { return []byte("work"), nil },
		Decode: func(data []byte) (any, error) {
			if string(data) != "result" {
				return nil, errors.New("garbled")
			}
			return "remote", nil
		},
		Local: local,
	}
}

func localConst(v any) Runner {
	return RunnerFunc(func(ctx context.Context, tk Task) (any, error) { return v, nil })
}

func TestRemoteRunnerExecutesRemotely(t *testing.T) {
	w := newTestWorker(t)
	p := testPool(t, PoolOptions{}, w.srv.URL)
	r, err := p.Runner(echoConfig(localConst("local")))
	if err != nil {
		t.Fatal(err)
	}
	out, err := r.Run(context.Background(), Task{})
	if err != nil {
		t.Fatal(err)
	}
	if out.(string) != "remote" {
		t.Fatalf("out = %v, want remote execution", out)
	}
	if w.builds.Load() != 1 {
		t.Fatalf("worker saw %d builds, want 1", w.builds.Load())
	}
}

// TestRemoteRunnerFailsOverWithinOneExecution pins intra-execution failover:
// a dead first worker must not consume a coordinator retry — the same Run
// call walks to the next healthy worker.
func TestRemoteRunnerFailsOverWithinOneExecution(t *testing.T) {
	dead := httptest.NewServer(http.NewServeMux())
	deadURL := dead.URL
	dead.Close() // the port now refuses connections
	live := newTestWorker(t)
	p := testPool(t, PoolOptions{}, deadURL, live.srv.URL)
	r, err := p.Runner(echoConfig(localConst("local")))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		out, err := r.Run(context.Background(), Task{Index: i})
		if err != nil {
			t.Fatal(err)
		}
		if out.(string) != "remote" {
			t.Fatalf("task %d fell back to %v despite a healthy worker", i, out)
		}
	}
}

func TestRemoteRunnerFallsBackWhenFleetDown(t *testing.T) {
	dead := httptest.NewServer(http.NewServeMux())
	deadURL := dead.URL
	dead.Close()
	p := testPool(t, PoolOptions{}, deadURL)
	r, err := p.Runner(echoConfig(localConst("local")))
	if err != nil {
		t.Fatal(err)
	}
	out, err := r.Run(context.Background(), Task{Index: 2, Attempt: 1})
	if err != nil {
		t.Fatal(err)
	}
	if out.(string) != "local" {
		t.Fatalf("out = %v, want graceful local fallback", out)
	}
	// The journaled fallback folds into the report and trace on observe.
	var rep Report
	tr := obs.New("t")
	r.observeRun(&rep, tr)
	tr.Close()
	if rep.RemoteFallbacks != 1 {
		t.Fatalf("RemoteFallbacks = %d, want 1", rep.RemoteFallbacks)
	}
	if got, _ := tr.MetricValue(obs.MetricDispatchRemoteFallbacks); got != 1 {
		t.Fatalf("trace metric %s = %v, want 1", obs.MetricDispatchRemoteFallbacks, got)
	}
	// A second observe must not double-count.
	r.observeRun(&rep, nil)
	if rep.RemoteFallbacks != 1 {
		t.Fatalf("RemoteFallbacks after re-observe = %d, want 1", rep.RemoteFallbacks)
	}
}

func TestRemoteRunner422IsPermanent(t *testing.T) {
	w := newTestWorker(t)
	w.status.Store(http.StatusUnprocessableEntity)
	p := testPool(t, PoolOptions{}, w.srv.URL)
	r, err := p.Runner(echoConfig(localConst("local")))
	if err != nil {
		t.Fatal(err)
	}
	_, err = r.Run(context.Background(), Task{})
	if err == nil {
		t.Fatal("422 returned no error")
	}
	if DefaultClassify(err) != Permanent {
		t.Fatalf("422 classified %v, want Permanent (deterministic build failure)", DefaultClassify(err))
	}
	// A deterministic failure does not blame the worker.
	if p.Healthy() != 1 {
		t.Fatalf("healthy = %d after 422, want 1", p.Healthy())
	}
}

func TestRemoteRunnerCorruptResponseIsTransient(t *testing.T) {
	w := newTestWorker(t)
	p := testPool(t, PoolOptions{}, w.srv.URL)
	cfg := echoConfig(localConst("local"))
	cfg.Faults = (&FaultPlan{}).CorruptAt("t", 0, 0)
	r, err := p.Runner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, err = r.Run(context.Background(), Task{Index: 0, Attempt: 0})
	if err == nil {
		t.Fatal("corrupted response decoded cleanly")
	}
	if DefaultClassify(err) != Transient {
		t.Fatalf("undecodable response classified %v, want Transient", DefaultClassify(err))
	}
	// The next attempt has no fault coordinate and succeeds remotely.
	out, err := r.Run(context.Background(), Task{Index: 0, Attempt: 1})
	if err != nil || out.(string) != "remote" {
		t.Fatalf("clean attempt = (%v, %v), want remote success", out, err)
	}
}

func TestRemoteRunnerDropFaultIsTransient(t *testing.T) {
	w := newTestWorker(t)
	p := testPool(t, PoolOptions{}, w.srv.URL)
	cfg := echoConfig(localConst("local"))
	cfg.Faults = (&FaultPlan{}).DropAt("t", 1, 0)
	r, err := p.Runner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, err = r.Run(context.Background(), Task{Index: 1, Attempt: 0})
	if err == nil || DefaultClassify(err) != Transient {
		t.Fatalf("injected drop = %v (%v), want Transient error", err, DefaultClassify(err))
	}
	if w.builds.Load() != 0 {
		t.Fatal("injected drop reached the worker")
	}
}

// TestPoolBlacklistAndReinstate drives the health loop on a fake clock
// through a worker's death and recovery.
func TestPoolBlacklistAndReinstate(t *testing.T) {
	w := newTestWorker(t)
	clk := NewFakeClock()
	p := testPool(t, PoolOptions{
		HealthPeriod:   time.Minute,
		BlacklistAfter: 2,
		Clock:          clk,
	}, w.srv.URL)
	waitHealthy := func(want int) {
		t.Helper()
		for i := 0; i < 200; i++ {
			if p.Healthy() == want {
				return
			}
			clk.Advance(time.Minute)
			time.Sleep(2 * time.Millisecond) // the probe itself is real I/O
		}
		t.Fatalf("healthy = %d, want %d", p.Healthy(), want)
	}
	if p.Healthy() != 1 {
		t.Fatalf("healthy = %d at start", p.Healthy())
	}
	w.healthy.Store(false)
	waitHealthy(0)
	if p.WorkersLost() != 1 {
		t.Fatalf("WorkersLost = %d after blacklist, want 1", p.WorkersLost())
	}
	w.healthy.Store(true)
	waitHealthy(1)
	if p.WorkersLost() != 1 {
		t.Fatalf("WorkersLost = %d after reinstatement, want 1 (losses are events, not state)", p.WorkersLost())
	}
}

func TestPoolRejectsBadAddresses(t *testing.T) {
	if _, err := NewWorkerPool(nil, PoolOptions{}); err == nil {
		t.Error("empty fleet accepted")
	}
	if _, err := NewWorkerPool([]string{"a:1", "a:1"}, PoolOptions{}); err == nil {
		t.Error("duplicate address accepted")
	}
	if _, err := NewWorkerPool([]string{" "}, PoolOptions{}); err == nil {
		t.Error("blank address accepted")
	}
	p, err := NewWorkerPool([]string{"127.0.0.1:9"}, PoolOptions{HealthPeriod: time.Hour, Clock: NewFakeClock()})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if !strings.HasPrefix(p.workers[0].url, "http://") {
		t.Errorf("bare host:port not normalized: %s", p.workers[0].url)
	}
}
