// Package dme is a standalone, textbook implementation of the classic
// Deferred-Merge Embedding algorithm for exact zero-skew clock trees
// (Chao–Hsu–Ho–Boese–Kahng 1992; Tsay 1991; greedy order after Edahiro
// 1993): bottom-up merging-segment construction followed by top-down
// embedding.
//
// The package intentionally duplicates none of internal/core's machinery —
// no deferred regions, no constraint windows, no octagons — so it serves as
// an independent oracle: differential tests verify that core's ZST mode and
// this implementation both achieve exact zero skew and comparable
// wirelength on the same instances, guarding the much more general engine
// against regressions in its degenerate case.
//
// Above gridThreshold sinks the nearest-neighbor queries go through the
// uniform bucket grid of internal/spatial (segments are exact rectangles, so
// the grid ranking is exact and results are identical to the linear scan —
// a differential test pins this). Small instances keep the pure scan, so the
// oracle role for core's tests is untouched by the index.
package dme

import (
	"math"

	"repro/internal/ctree"
	"repro/internal/geom"
	"repro/internal/rctree"
	"repro/internal/spatial"
)

// gridThreshold is the sink count at which mergeAll switches its
// nearest-neighbor queries from the linear scan to the spatial grid.
const gridThreshold = 512

// Node is a subtree in the classic DME sense: a merging segment (a Manhattan
// arc, kept as a degenerate-or-thin geom.Rect), the exact zero-skew delay of
// every sink beneath it, and the downstream capacitance.
type Node struct {
	// Seg is the merging segment.
	Seg geom.Rect
	// Delay is the (equal) root-to-sink delay of all sinks below (ps).
	Delay float64
	// Cap is the downstream capacitance (fF).
	Cap float64
	// EdgeL, EdgeR are the committed child wire lengths.
	EdgeL, EdgeR float64
	// Left, Right are the children; Sink is set for leaves.
	Left, Right *Node
	Sink        *ctree.Sink
	// Loc is the embedded location (valid after Embed).
	Loc geom.UV
}

// Result is a routed zero-skew tree.
type Result struct {
	Root *Node
	// Wirelength includes the source connection.
	Wirelength float64
	SourceWire float64
}

// Build constructs an exact zero-skew tree for the instance, ignoring sink
// groups, under the given delay model.
func Build(in *ctree.Instance, m rctree.Model) (*Result, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	active := make([]*Node, 0, len(in.Sinks))
	for i := range in.Sinks {
		s := &in.Sinks[i]
		active = append(active, &Node{
			Seg:  geom.RectFromPoint(s.Loc),
			Cap:  s.CapFF,
			Sink: s,
		})
	}

	// Greedy nearest-pair merging via a lazy pairing heap (segment
	// distances never change while both endpoints live).
	root := mergeAll(active, m, len(active) >= gridThreshold)

	res := &Result{Root: root}
	res.SourceWire = geom.DistRP(root.Seg, geom.ToUV(in.Source))
	res.Wirelength = wirelength(root) + res.SourceWire
	embed(root, geom.ToUV(in.Source))
	return res, nil
}

// merge combines two subtrees with the exact zero-skew split (Tsay).
func merge(a, b *Node, m rctree.Model) *Node {
	d := geom.DistRR(a.Seg, b.Seg)
	mg := rctree.Balance(m, d, a.Delay, a.Cap, b.Delay, b.Cap)
	return &Node{
		Seg:   geom.MergeLocus(a.Seg, b.Seg, mg.Ea, mg.Eb),
		Delay: a.Delay + m.WireDelay(mg.Ea, a.Cap),
		Cap:   a.Cap + b.Cap + m.WireCap(mg.Ea) + m.WireCap(mg.Eb),
		EdgeL: mg.Ea, EdgeR: mg.Eb,
		Left: a, Right: b,
	}
}

// pqItem is a candidate pair keyed by segment distance.
type pqItem struct {
	d    float64
	i, j int
}

// pq is a slice-backed min-heap of candidate pairs: unlike container/heap
// it boxes nothing, so the ~4n pushes of a run allocate only the slice's
// amortized growth.
type pq []pqItem

func (p pq) less(a, b int) bool { return p[a].d < p[b].d }

func (p *pq) push(it pqItem) {
	*p = append(*p, it)
	h := *p
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

func (p *pq) pop() pqItem {
	h := *p
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h = h[:last]
	*p = h
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		least := i
		if l < last && h.less(l, least) {
			least = l
		}
		if r < last && h.less(r, least) {
			least = r
		}
		if least == i {
			break
		}
		h[i], h[least] = h[least], h[i]
		i = least
	}
	return top
}

// segScorer adapts the node list to spatial.Keyer, so grid queries run
// without per-call closure allocations. nodes points at mergeAll's slice
// (which reallocates as it grows).
type segScorer struct {
	nodes *[]*Node
}

func (s segScorer) PairKey(self, cand int) float64 {
	ns := *s.nodes
	return geom.DistRR(ns[self].Seg, ns[cand].Seg)
}

// mergeAll drains the items into one tree. useGrid answers the
// nearest-segment queries from the bucket grid instead of a linear scan;
// both paths produce identical trees (segments are exact rectangles, and a
// differential test pins the equality).
func mergeAll(items []*Node, m rctree.Model, useGrid bool) *Node {
	if len(items) == 1 {
		return items[0]
	}
	nodes := append([]*Node(nil), items...)
	alive := make([]bool, len(nodes), 2*len(nodes))
	for i := range alive {
		alive[i] = true
	}
	dist := func(i, j int) float64 { return geom.DistRR(nodes[i].Seg, nodes[j].Seg) }
	h := make(pq, 0, 2*len(nodes))

	var idx *spatial.Index
	scorer := segScorer{nodes: &nodes}
	if useGrid {
		boxes := make([]geom.Rect, len(nodes))
		for i := range nodes {
			boxes[i] = nodes[i].Seg
		}
		idx = spatial.New(spatial.DensityCell(boxes))
		idx.InsertAll(boxes)
	}
	pushNN := func(i int) {
		best, bestD := -1, math.Inf(1)
		if idx != nil {
			best, bestD, _ = idx.NearestScored(i, scorer)
		} else {
			for j := range nodes {
				if j != i && alive[j] {
					if d := dist(i, j); d < bestD {
						best, bestD = j, d
					}
				}
			}
		}
		if best >= 0 {
			h.push(pqItem{d: bestD, i: i, j: best})
		}
	}
	for i := range nodes {
		pushNN(i)
	}
	live := len(nodes)
	for live > 1 {
		it := h.pop()
		switch {
		case alive[it.i] && alive[it.j]:
			alive[it.i], alive[it.j] = false, false
			if idx != nil {
				idx.Delete(it.i)
				idx.Delete(it.j)
			}
			c := merge(nodes[it.i], nodes[it.j], m)
			nodes = append(nodes, c)
			alive = append(alive, true)
			if idx != nil {
				idx.Insert(len(nodes)-1, c.Seg)
			}
			pushNN(len(nodes) - 1)
			live--
		case alive[it.i]:
			pushNN(it.i)
		case alive[it.j]:
			pushNN(it.j)
		}
	}
	return nodes[len(nodes)-1]
}

func wirelength(n *Node) float64 {
	if n == nil || n.Sink != nil {
		return 0
	}
	return n.EdgeL + n.EdgeR + wirelength(n.Left) + wirelength(n.Right)
}

// embed performs the top-down embedding toward the given point.
func embed(n *Node, toward geom.UV) {
	n.Loc = n.Seg.ClosestPointTo(toward)
	if n.Sink != nil {
		return
	}
	embed(n.Left, n.Loc)
	embed(n.Right, n.Loc)
}

// SinkDelays evaluates the Elmore delay to every sink from the tree root
// using the committed edge lengths, independently of the Delay bookkeeping.
func (r *Result) SinkDelays(m rctree.Model, nSinks int) []float64 {
	out := make([]float64, nSinks)
	caps := map[*Node]float64{}
	var capOf func(n *Node) float64
	capOf = func(n *Node) float64 {
		if n.Sink != nil {
			caps[n] = n.Sink.CapFF
			return caps[n]
		}
		c := capOf(n.Left) + capOf(n.Right) + m.WireCap(n.EdgeL) + m.WireCap(n.EdgeR)
		caps[n] = c
		return c
	}
	capOf(r.Root)
	var walk func(n *Node, t float64)
	walk = func(n *Node, t float64) {
		if n.Sink != nil {
			out[n.Sink.ID] = t
			return
		}
		walk(n.Left, t+m.WireDelay(n.EdgeL, caps[n.Left]))
		walk(n.Right, t+m.WireDelay(n.EdgeR, caps[n.Right]))
	}
	walk(r.Root, 0)
	return out
}

// Skew returns max−min over the evaluated sink delays.
func (r *Result) Skew(m rctree.Model, nSinks int) float64 {
	d := r.SinkDelays(m, nSinks)
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, t := range d {
		lo = math.Min(lo, t)
		hi = math.Max(hi, t)
	}
	return hi - lo
}
