package dme

import (
	"math"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/rctree"
)

var model = rctree.NewElmore(0.1, 0.02)

func TestExactZeroSkew(t *testing.T) {
	for _, n := range []int{2, 5, 30, 150} {
		for _, seed := range []int64{1, 2, 3} {
			in := bench.Small(n, seed)
			res, err := Build(in, model)
			if err != nil {
				t.Fatal(err)
			}
			delays := res.SinkDelays(model, n)
			if len(delays) != n {
				t.Fatalf("n=%d: %d delays", n, len(delays))
			}
			if skew := res.Skew(model, n); skew > 1e-6*(1+delays[0]) {
				t.Errorf("n=%d seed=%d: skew = %v ps", n, seed, skew)
			}
		}
	}
}

func TestLinearModelZeroSkew(t *testing.T) {
	in := bench.Small(50, 4)
	res, err := Build(in, rctree.Linear{})
	if err != nil {
		t.Fatal(err)
	}
	if skew := res.Skew(rctree.Linear{}, 50); skew > 1e-9 {
		t.Errorf("linear skew = %v", skew)
	}
}

func TestDelayBookkeepingMatchesEvaluation(t *testing.T) {
	in := bench.Small(80, 7)
	res, err := Build(in, model)
	if err != nil {
		t.Fatal(err)
	}
	delays := res.SinkDelays(model, 80)
	for _, d := range delays {
		if math.Abs(d-res.Root.Delay) > 1e-6*(1+d) {
			t.Fatalf("evaluated delay %v != bookkept %v", d, res.Root.Delay)
		}
	}
}

func TestEmbeddingRespectsEdgeLengths(t *testing.T) {
	in := bench.Small(60, 9)
	res, err := Build(in, model)
	if err != nil {
		t.Fatal(err)
	}
	var walk func(n *Node)
	walk = func(n *Node) {
		if n.Sink != nil {
			if d := geom.DistUV(n.Loc, geom.ToUV(n.Sink.Loc)); d > 1e-9 {
				t.Fatalf("sink %d off pin by %v", n.Sink.ID, d)
			}
			return
		}
		if d := geom.DistUV(n.Loc, n.Left.Loc); d > n.EdgeL+1e-6 {
			t.Fatalf("left edge %v < embedded %v", n.EdgeL, d)
		}
		if d := geom.DistUV(n.Loc, n.Right.Loc); d > n.EdgeR+1e-6 {
			t.Fatalf("right edge %v < embedded %v", n.EdgeR, d)
		}
		walk(n.Left)
		walk(n.Right)
	}
	walk(res.Root)
}

// TestDifferentialAgainstCore cross-checks the general engine's degenerate
// zero-skew mode against this independent implementation: both must achieve
// zero skew, and their wirelengths must agree within the tolerance expected
// from their different merge orders.
func TestDifferentialAgainstCore(t *testing.T) {
	for _, seed := range []int64{1, 5, 11, 23} {
		in := bench.Small(120, seed)
		classic, err := Build(in, model)
		if err != nil {
			t.Fatal(err)
		}
		engine, err := core.ZST(in, core.Options{Model: model})
		if err != nil {
			t.Fatal(err)
		}
		if skew := classic.Skew(model, len(in.Sinks)); skew > 1e-6*classic.Root.Delay {
			t.Errorf("seed %d: classic skew %v", seed, skew)
		}
		ratio := engine.Wirelength / classic.Wirelength
		if ratio < 0.85 || ratio > 1.15 {
			t.Errorf("seed %d: engine wire %v vs classic %v (ratio %.3f) — implementations diverged",
				seed, engine.Wirelength, classic.Wirelength, ratio)
		}
	}
}

func TestSingleSink(t *testing.T) {
	in := bench.Small(1, 1)
	res, err := Build(in, model)
	if err != nil {
		t.Fatal(err)
	}
	want := geom.Dist(in.Sinks[0].Loc, in.Source)
	if math.Abs(res.Wirelength-want) > 1e-9 {
		t.Errorf("wire = %v, want %v", res.Wirelength, want)
	}
}

func TestInvalidRejected(t *testing.T) {
	in := bench.Small(5, 1)
	in.NumGroups = 0
	if _, err := Build(in, model); err == nil {
		t.Error("invalid instance accepted")
	}
}

// TestGridMatchesScanNN: the spatial-grid nearest-neighbor path (engaged
// above gridThreshold in Build) must produce exactly the tree the linear
// scan produces, on an instance large enough for the grid to matter.
func TestGridMatchesScanNN(t *testing.T) {
	in := bench.Small(gridThreshold+37, 17)
	mk := func(useGrid bool) *Node {
		active := make([]*Node, 0, len(in.Sinks))
		for i := range in.Sinks {
			s := &in.Sinks[i]
			active = append(active, &Node{
				Seg:  geom.RectFromPoint(s.Loc),
				Cap:  s.CapFF,
				Sink: s,
			})
		}
		return mergeAll(active, model, useGrid)
	}
	scanRoot := mk(false)
	gridRoot := mk(true)
	if sw, gw := wirelength(scanRoot), wirelength(gridRoot); sw != gw {
		t.Errorf("wirelength %v (scan) != %v (grid)", sw, gw)
	}
	// The whole merge structure must match, not just the totals.
	var walk func(a, b *Node)
	walk = func(a, b *Node) {
		if (a.Sink == nil) != (b.Sink == nil) {
			t.Fatal("tree shapes differ")
		}
		if a.Sink != nil {
			if a.Sink.ID != b.Sink.ID {
				t.Fatalf("leaf %d (scan) != %d (grid)", a.Sink.ID, b.Sink.ID)
			}
			return
		}
		if a.Seg != b.Seg || a.EdgeL != b.EdgeL || a.EdgeR != b.EdgeR {
			t.Fatalf("node mismatch: %+v vs %+v", a.Seg, b.Seg)
		}
		walk(a.Left, b.Left)
		walk(a.Right, b.Right)
	}
	walk(scanRoot, gridRoot)
}
