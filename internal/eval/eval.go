// Package eval independently analyzes a routed clock tree. It recomputes
// downstream capacitances and Elmore delays from the committed edge lengths
// alone — deliberately not reusing any delay bookkeeping kept by the routers
// — so tests can cross-check the routers' incremental state, and experiment
// tables report measured (not assumed) skews.
package eval

import (
	"fmt"
	"math"

	"repro/internal/ctree"
	"repro/internal/geom"
	"repro/internal/obs"
	"repro/internal/rctree"
)

// Report holds the measured properties of a routed tree.
type Report struct {
	// TreeWire is the committed wirelength of the tree (excluding the
	// source-to-root connection); SourceWire the latter; TotalWire their sum.
	TreeWire, SourceWire, TotalWire float64
	// SinkDelay maps sink ID to its Elmore delay (ps) from the tree root.
	SinkDelay []float64
	// GlobalSkew is max−min over all sink delays.
	GlobalSkew float64
	// GroupSkew is the per-group delay spread; MaxGroupSkew its maximum —
	// the quantity the associative-skew constraint bounds.
	GroupSkew    []float64
	MaxGroupSkew float64
	// MinDelay/MaxDelay are the extreme sink delays.
	MinDelay, MaxDelay float64
	// Sinks is the number of sinks reached.
	Sinks int
}

// Analyze measures the routed tree against its instance. source is the clock
// source location used for SourceWire.
func Analyze(root *ctree.Node, in *ctree.Instance, m rctree.Model, source geom.Point) *Report {
	r := &Report{
		SinkDelay: make([]float64, len(in.Sinks)),
		GroupSkew: make([]float64, in.NumGroups),
		MinDelay:  math.Inf(1),
		MaxDelay:  math.Inf(-1),
	}
	for i := range r.SinkDelay {
		r.SinkDelay[i] = math.NaN()
	}
	caps := make(map[*ctree.Node]float64)
	var capOf func(n *ctree.Node) float64
	capOf = func(n *ctree.Node) float64 {
		if n.IsLeaf() {
			caps[n] = n.Sink.CapFF
			return caps[n]
		}
		c := capOf(n.Left) + capOf(n.Right) + m.WireCap(n.EdgeL) + m.WireCap(n.EdgeR)
		caps[n] = c
		return c
	}
	capOf(root)

	var walk func(n *ctree.Node, t float64)
	walk = func(n *ctree.Node, t float64) {
		if n.IsLeaf() {
			r.SinkDelay[n.Sink.ID] = t
			r.MinDelay = math.Min(r.MinDelay, t)
			r.MaxDelay = math.Max(r.MaxDelay, t)
			r.Sinks++
			return
		}
		walk(n.Left, t+m.WireDelay(n.EdgeL, caps[n.Left]))
		walk(n.Right, t+m.WireDelay(n.EdgeR, caps[n.Right]))
	}
	walk(root, 0)

	r.GlobalSkew = r.MaxDelay - r.MinDelay
	gmin := make([]float64, in.NumGroups)
	gmax := make([]float64, in.NumGroups)
	for g := range gmin {
		gmin[g], gmax[g] = math.Inf(1), math.Inf(-1)
	}
	for i, s := range in.Sinks {
		d := r.SinkDelay[i]
		if math.IsNaN(d) {
			continue
		}
		gmin[s.Group] = math.Min(gmin[s.Group], d)
		gmax[s.Group] = math.Max(gmax[s.Group], d)
	}
	for g := range r.GroupSkew {
		if gmax[g] >= gmin[g] {
			r.GroupSkew[g] = gmax[g] - gmin[g]
			r.MaxGroupSkew = math.Max(r.MaxGroupSkew, r.GroupSkew[g])
		}
	}
	r.TreeWire = root.Wirelength()
	r.SourceWire = geom.DistRP(root.Region, geom.ToUV(source))
	r.TotalWire = r.TreeWire + r.SourceWire
	return r
}

// AnalyzeTraced is Analyze wrapped in an "eval" span on tr, recording the
// headline measurements (global and max-group skew in ps, sinks reached) as
// span attributes so a trace file carries the run's outcome alongside its
// time attribution. A nil tr makes it exactly Analyze.
func AnalyzeTraced(tr *obs.Trace, root *ctree.Node, in *ctree.Instance, m rctree.Model, source geom.Point) *Report {
	rgn := tr.Begin("eval")
	r := Analyze(root, in, m, source)
	rgn.Attr("global_skew_ps", r.GlobalSkew).
		Attr("max_group_skew_ps", r.MaxGroupSkew).
		Attr("sinks", float64(r.Sinks))
	rgn.End()
	return r
}

// SeamSkew measures the residual intra-group skew across partition seams:
// perGroup[g] is the largest delay difference between two of group g's sinks
// routed in different parts (shards), and maxSeam the maximum over groups.
// This is the seam-quality metric of the sharded pipeline (internal/shard):
// within one shard the intra-group windows bound the spread directly, so
// whatever skew a sharded build leaks beyond an unsharded one lives across
// seams — shards that committed contradictory inter-group offsets force the
// stitch to reconcile them, and the residue lands here. A group confined to
// one part (or unreached) contributes 0. parts is the sink-ID partition in
// shard.Result.Parts form; sinks absent from every part are ignored.
func SeamSkew(r *Report, in *ctree.Instance, parts [][]int) (perGroup []float64, maxSeam float64) {
	g, k := in.NumGroups, len(parts)
	perGroup = make([]float64, g)
	if k < 2 {
		return perGroup, 0
	}
	partOf := make([]int, len(in.Sinks))
	for i := range partOf {
		partOf[i] = -1
	}
	for p, ids := range parts {
		for _, id := range ids {
			partOf[id] = p
		}
	}
	// Per-(group, part) delay extrema.
	lo := make([]float64, g*k)
	hi := make([]float64, g*k)
	for i := range lo {
		lo[i], hi[i] = math.Inf(1), math.Inf(-1)
	}
	for _, s := range in.Sinks {
		p := partOf[s.ID]
		d := r.SinkDelay[s.ID]
		if p < 0 || math.IsNaN(d) {
			continue
		}
		c := s.Group*k + p
		lo[c] = math.Min(lo[c], d)
		hi[c] = math.Max(hi[c], d)
	}
	for gi := 0; gi < g; gi++ {
		// The seam spread max over part pairs a ≠ b of hi[a] − lo[b] needs,
		// for each a, the smallest lo over the *other* parts: track the two
		// smallest minima so the part holding the global minimum compares
		// against the runner-up.
		min1, min2, minAt := math.Inf(1), math.Inf(1), -1
		for p := 0; p < k; p++ {
			switch v := lo[gi*k+p]; {
			case v < min1:
				min2, min1, minAt = min1, v, p
			case v < min2:
				min2 = v
			}
		}
		for p := 0; p < k; p++ {
			h := hi[gi*k+p]
			if math.IsInf(h, -1) {
				continue
			}
			other := min1
			if p == minAt {
				other = min2
			}
			if !math.IsInf(other, 1) && h-other > perGroup[gi] {
				perGroup[gi] = h - other
			}
		}
		maxSeam = math.Max(maxSeam, perGroup[gi])
	}
	return perGroup, maxSeam
}

// CheckTree verifies structural invariants of a routed, embedded tree:
// every sink reached exactly once, every node placed inside its region,
// leaves at their sink locations, and committed edge lengths no shorter than
// the embedded child distances. It returns the first violation found.
func CheckTree(root *ctree.Node, in *ctree.Instance) error {
	seen := make([]int, len(in.Sinks))
	var err error
	root.Visit(func(n *ctree.Node) {
		if err != nil {
			return
		}
		if n.IsLeaf() {
			if n.Sink.ID < 0 || n.Sink.ID >= len(seen) {
				err = fmt.Errorf("leaf with bad sink id %d", n.Sink.ID)
				return
			}
			seen[n.Sink.ID]++
			if n.Placed {
				if d := geom.DistUV(n.Loc, geom.ToUV(n.Sink.Loc)); d > 1e-6 {
					err = fmt.Errorf("sink %d embedded %g away from pin", n.Sink.ID, d)
				}
			}
			return
		}
		if (n.Left == nil) != (n.Right == nil) {
			err = fmt.Errorf("node %d has exactly one child", n.ID)
			return
		}
		if n.EdgeL < 0 || n.EdgeR < 0 {
			err = fmt.Errorf("node %d negative edge", n.ID)
			return
		}
		if n.Placed {
			if !n.Region.Inflate(1e-6).Contains(n.Loc) {
				err = fmt.Errorf("node %d placed outside region", n.ID)
				return
			}
			tol := 1e-6 * (1 + n.EdgeL + n.EdgeR)
			if d := geom.DistUV(n.Loc, n.Left.Loc); n.Left.Placed && d > n.EdgeL+tol {
				err = fmt.Errorf("node %d: left distance %g exceeds edge %g", n.ID, d, n.EdgeL)
				return
			}
			if d := geom.DistUV(n.Loc, n.Right.Loc); n.Right.Placed && d > n.EdgeR+tol {
				err = fmt.Errorf("node %d: right distance %g exceeds edge %g", n.ID, d, n.EdgeR)
			}
		}
	})
	if err != nil {
		return err
	}
	for id, c := range seen {
		if c != 1 {
			return fmt.Errorf("sink %d reached %d times", id, c)
		}
	}
	return nil
}

// PairSkews returns the matrix of inter-group skew ranges implied by the
// measured sink delays: entry [i][j] is the interval of delay(j)−delay(i)
// over all sink pairs, i.e. [min_j − max_i, max_j − min_i]. It verifies
// prescribed inter-group constraints (core.PairConstraint) and reports the
// by-product offsets S_{i,j} of the thesis's formulation.
func (r *Report) PairSkews(in *ctree.Instance) [][][2]float64 {
	gmin := make([]float64, in.NumGroups)
	gmax := make([]float64, in.NumGroups)
	for g := range gmin {
		gmin[g], gmax[g] = math.Inf(1), math.Inf(-1)
	}
	for _, s := range in.Sinks {
		d := r.SinkDelay[s.ID]
		if math.IsNaN(d) {
			continue
		}
		gmin[s.Group] = math.Min(gmin[s.Group], d)
		gmax[s.Group] = math.Max(gmax[s.Group], d)
	}
	out := make([][][2]float64, in.NumGroups)
	for i := range out {
		out[i] = make([][2]float64, in.NumGroups)
		for j := range out[i] {
			out[i][j] = [2]float64{gmin[j] - gmax[i], gmax[j] - gmin[i]}
		}
	}
	return out
}
