package eval

import (
	"math"
	"testing"

	"repro/internal/ctree"
	"repro/internal/geom"
	"repro/internal/rctree"
)

// hand-built tree: ((s0,s1) at node a, s2) at root, with known edges.
func buildKnown(m rctree.Model) (*ctree.Node, *ctree.Instance) {
	in := &ctree.Instance{
		Name: "known",
		Sinks: []ctree.Sink{
			{ID: 0, Loc: geom.Point{X: 0, Y: 0}, CapFF: 10, Group: 0},
			{ID: 1, Loc: geom.Point{X: 10, Y: 0}, CapFF: 10, Group: 0},
			{ID: 2, Loc: geom.Point{X: 5, Y: 8}, CapFF: 20, Group: 1},
		},
		Source:    geom.Point{X: 5, Y: 20},
		NumGroups: 2,
	}
	l0 := ctree.NewLeaf(&in.Sinks[0])
	l1 := ctree.NewLeaf(&in.Sinks[1])
	l2 := ctree.NewLeaf(&in.Sinks[2])
	a := &ctree.Node{ID: 3, Left: l0, Right: l1, EdgeL: 5, EdgeR: 5,
		Groups: []int{0}, Region: geom.MergeLocus(l0.Region, l1.Region, 5, 5)}
	root := &ctree.Node{ID: 4, Left: a, Right: l2, EdgeL: 6, EdgeR: 6,
		Groups: []int{0, 1}, Region: geom.MergeLocus(a.Region, l2.Region, 6, 6)}
	root.Recompute(m)
	root.Embed(geom.ToUV(in.Source))
	return root, in
}

func TestAnalyzeKnownTree(t *testing.T) {
	m := rctree.NewElmore(0.1, 0.02)
	root, in := buildKnown(m)
	rep := Analyze(root, in, m, in.Source)

	if rep.Sinks != 3 {
		t.Fatalf("sinks = %d", rep.Sinks)
	}
	if rep.TreeWire != 22 {
		t.Errorf("tree wire = %v, want 22", rep.TreeWire)
	}
	// Hand-compute group 0 delay: edge(6, capA)+edge(5, 10).
	capA := 20 + m.WireCap(10)
	want0 := m.WireDelay(6, capA) + m.WireDelay(5, 10)
	if math.Abs(rep.SinkDelay[0]-want0) > 1e-12 {
		t.Errorf("sink 0 delay = %v, want %v", rep.SinkDelay[0], want0)
	}
	if rep.SinkDelay[0] != rep.SinkDelay[1] {
		t.Error("symmetric sinks should have equal delay")
	}
	want2 := m.WireDelay(6, 20)
	if math.Abs(rep.SinkDelay[2]-want2) > 1e-12 {
		t.Errorf("sink 2 delay = %v, want %v", rep.SinkDelay[2], want2)
	}
	if math.Abs(rep.GlobalSkew-math.Abs(want0-want2)) > 1e-12 {
		t.Errorf("global skew = %v", rep.GlobalSkew)
	}
	if rep.GroupSkew[0] != 0 || rep.GroupSkew[1] != 0 {
		t.Errorf("group skews = %v", rep.GroupSkew)
	}
	if rep.MaxGroupSkew != 0 {
		t.Errorf("max group skew = %v", rep.MaxGroupSkew)
	}
	if rep.TotalWire != rep.TreeWire+rep.SourceWire {
		t.Error("total wire mismatch")
	}
}

func TestAnalyzeMatchesNodeBookkeeping(t *testing.T) {
	m := rctree.NewElmore(0.1, 0.02)
	root, in := buildKnown(m)
	rep := Analyze(root, in, m, in.Source)
	// The independent evaluator must agree with the node Delay sets.
	for i := 0; i < root.Delay.Len(); i++ {
		g, iv := root.Delay.At(i)
		var lo, hi float64 = math.Inf(1), math.Inf(-1)
		for _, s := range in.Sinks {
			if s.Group != g {
				continue
			}
			lo = math.Min(lo, rep.SinkDelay[s.ID])
			hi = math.Max(hi, rep.SinkDelay[s.ID])
		}
		if math.Abs(lo-iv.Lo) > 1e-9 || math.Abs(hi-iv.Hi) > 1e-9 {
			t.Errorf("group %d: eval [%v,%v] vs node %v", g, lo, hi, iv)
		}
	}
}

func TestCheckTreeAcceptsValid(t *testing.T) {
	m := rctree.NewElmore(0.1, 0.02)
	root, in := buildKnown(m)
	if err := CheckTree(root, in); err != nil {
		t.Errorf("valid tree rejected: %v", err)
	}
}

func TestCheckTreeDetectsViolations(t *testing.T) {
	m := rctree.NewElmore(0.1, 0.02)

	root, in := buildKnown(m)
	root.EdgeL = -1
	if err := CheckTree(root, in); err == nil {
		t.Error("negative edge accepted")
	}

	root, in = buildKnown(m)
	root.EdgeR = 0.5 // shorter than the embedded distance to s2
	if err := CheckTree(root, in); err == nil {
		t.Error("edge shorter than embedding accepted")
	}

	root, in = buildKnown(m)
	root.Right = root.Left.Left // duplicates sink 0, drops sink 2
	if err := CheckTree(root, in); err == nil {
		t.Error("duplicated sink accepted")
	}
}

func TestPairSkews(t *testing.T) {
	m := rctree.NewElmore(0.1, 0.02)
	root, in := buildKnown(m)
	rep := Analyze(root, in, m, in.Source)
	ps := rep.PairSkews(in)
	if len(ps) != in.NumGroups || len(ps[0]) != in.NumGroups {
		t.Fatalf("matrix shape %dx%d", len(ps), len(ps[0]))
	}
	// Diagonal: [−spread, +spread] = [0,0] for the zero-spread groups here.
	for g := 0; g < in.NumGroups; g++ {
		if ps[g][g][0] != -rep.GroupSkew[g] || ps[g][g][1] != rep.GroupSkew[g] {
			t.Errorf("diagonal %d: %v", g, ps[g][g])
		}
	}
	// Antisymmetry: range(i,j) = −reverse(range(j,i)).
	for i := 0; i < in.NumGroups; i++ {
		for j := 0; j < in.NumGroups; j++ {
			if ps[i][j][0] != -ps[j][i][1] || ps[i][j][1] != -ps[j][i][0] {
				t.Errorf("not antisymmetric at (%d,%d): %v vs %v", i, j, ps[i][j], ps[j][i])
			}
		}
	}
	// Known offset: group 1 delay − group 0 delay.
	want := rep.SinkDelay[2] - rep.SinkDelay[0]
	if math.Abs(ps[0][1][0]-want) > 1e-9 || math.Abs(ps[0][1][1]-want) > 1e-9 {
		t.Errorf("pair (0,1) = %v, want point %v", ps[0][1], want)
	}
}

// TestSeamSkew pins the seam metric on hand-built reports: only sink pairs
// of one group split across different parts count, the part holding both a
// group's extremes compares against the best *other* part, and degenerate
// inputs (single part, single-part groups, unreached sinks) contribute 0.
func TestSeamSkew(t *testing.T) {
	in := &ctree.Instance{
		Name:      "seams",
		NumGroups: 3,
		Sinks: []ctree.Sink{
			{ID: 0, Group: 0}, {ID: 1, Group: 0}, {ID: 2, Group: 0}, {ID: 3, Group: 0},
			{ID: 4, Group: 1}, {ID: 5, Group: 1},
			{ID: 6, Group: 2}, {ID: 7, Group: 2},
		},
	}
	rep := &Report{SinkDelay: []float64{
		// Group 0: extremes 100 and 190 both in part 0 (sinks 0, 1); part 1
		// holds 140 and 150 — the seam spread is 190−140 = 50, not 90.
		100, 190, 140, 150,
		// Group 1: split 10 vs 14 across parts — seam spread 4.
		10, 14,
		// Group 2: sink 7 unreached, leaving one reached sink — no seam.
		20, math.NaN(),
	}}
	parts := [][]int{{0, 1, 4, 6}, {2, 3, 5, 7}}
	perGroup, max := SeamSkew(rep, in, parts)
	if len(perGroup) != 3 {
		t.Fatalf("perGroup has %d entries, want 3", len(perGroup))
	}
	if got, want := perGroup[0], 50.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("group 0 seam %v, want %v (extremes share a part)", got, want)
	}
	if got, want := perGroup[1], 4.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("group 1 seam %v, want %v", got, want)
	}
	if perGroup[2] != 0 {
		t.Errorf("group 2 seam %v, want 0 (no cross-part pair)", perGroup[2])
	}
	if max != 50 {
		t.Errorf("max seam %v, want 50", max)
	}
	// A single part has no seams at all.
	if _, m := SeamSkew(rep, in, [][]int{{0, 1, 2, 3, 4, 5, 6, 7}}); m != 0 {
		t.Errorf("single part: max seam %v, want 0", m)
	}
}
