// Package experiments regenerates the evaluation of the thesis: Table I
// (clusters of sink groups), Table II (intermingled sink groups), the
// figure-level comparisons (Figs. 1 and 2), and the ablation studies of the
// design choices called out in DESIGN.md. It is shared by cmd/tables and the
// repository-level benchmarks.
package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/ctree"
	"repro/internal/eval"
	"repro/internal/geom"
	"repro/internal/order"
	"repro/internal/rctree"
	"repro/internal/stitch"
)

// ASTIntraBoundPs is the intra-group skew bound used for the AST-DME rows,
// matching the 10 ps bound of the EXT-BST baseline rows (see EXPERIMENTS.md
// for why the comparison fixes both constraints at the same tightness).
const ASTIntraBoundPs = 10

// EXTBoundPs is the global skew bound of the EXT-BST baseline, from the
// thesis: "we simply set bounded skew range as 10ps".
const EXTBoundPs = 10

// Row is one line of Table I or Table II.
type Row struct {
	Circuit   string
	Sinks     int
	Groups    int
	Algorithm string
	// Wirelen is the total committed wirelength.
	Wirelen float64
	// ReductionPct is the wirelength reduction versus the circuit's EXT-BST
	// row (positive = shorter than EXT-BST), the paper's Reduction column.
	ReductionPct float64
	// MaxSkewPs is the measured global skew — the paper's Maximum Skew
	// column (for AST-DME this is dominated by the floating inter-group
	// offsets).
	MaxSkewPs float64
	// MaxGroupSkewPs is the measured worst intra-group skew, the quantity
	// the associative constraint bounds (not reported by the paper; listed
	// for verifiability).
	MaxGroupSkewPs float64
	// CPUSeconds is the wall-clock routing time.
	CPUSeconds float64
}

// GroupCounts are the per-circuit group counts of both tables.
var GroupCounts = []int{4, 6, 8, 10}

// Grouping selects how sink groups are imposed on a circuit.
type Grouping int

// The two experiments of thesis Ch. VI.
const (
	Clustered Grouping = iota
	Intermingled
)

func (g Grouping) String() string {
	if g == Clustered {
		return "clustered"
	}
	return "intermingled"
}

// groupInstance applies the grouping for a given group count.
func groupInstance(base *ctree.Instance, g Grouping, k int, seed int64) *ctree.Instance {
	if g == Clustered {
		return bench.Clustered(base, k)
	}
	return bench.Intermingled(base, k, seed)
}

// Table runs one full table (thesis Table I for Clustered, Table II for
// Intermingled) over the given circuits and group counts. Each circuit
// contributes one EXT-BST row (1 group) followed by AST-DME rows per k.
func Table(grouping Grouping, circuits []bench.Spec, groups []int) ([]Row, error) {
	return TableRepeated(grouping, circuits, groups, 1)
}

// TableRepeated is Table with `repeats` grouping seeds per (circuit, k) row,
// reporting the across-seed mean of each metric. The thesis's tables are
// single runs; replication quantifies the heuristic's seed variance (a few
// percent of wirelength — comparable to the clustered reductions it
// reports). For Clustered groupings the assignment is deterministic, so
// repeats > 1 changes nothing and a single run is performed.
func TableRepeated(grouping Grouping, circuits []bench.Spec, groups []int, repeats int) ([]Row, error) {
	if repeats < 1 {
		repeats = 1
	}
	var rows []Row
	for _, sp := range circuits {
		base := bench.Generate(sp)

		start := time.Now()
		ext, err := core.EXTBST(base, EXTBoundPs, core.Options{})
		if err != nil {
			return nil, fmt.Errorf("EXT-BST on %s: %w", sp.Name, err)
		}
		extSecs := time.Since(start).Seconds()
		extRep := eval.Analyze(ext.Root, base, core.DefaultModel(), base.Source)
		rows = append(rows, Row{
			Circuit: sp.Name, Sinks: sp.Sinks, Groups: 1, Algorithm: "EXT-BST",
			Wirelen: ext.Wirelength, MaxSkewPs: extRep.GlobalSkew,
			MaxGroupSkewPs: extRep.MaxGroupSkew, CPUSeconds: extSecs,
		})

		for _, k := range groups {
			reps := repeats
			if grouping == Clustered {
				reps = 1
			}
			var acc Row
			for rep := 0; rep < reps; rep++ {
				in := groupInstance(base, grouping, k, sp.Seed*1000+int64(k)+int64(rep)*7919)
				start = time.Now()
				ast, err := core.Build(in, core.Options{IntraSkewBound: ASTIntraBoundPs})
				if err != nil {
					return nil, fmt.Errorf("AST-DME on %s k=%d: %w", sp.Name, k, err)
				}
				secs := time.Since(start).Seconds()
				r := eval.Analyze(ast.Root, in, core.DefaultModel(), in.Source)
				acc.Wirelen += ast.Wirelength
				acc.MaxSkewPs += r.GlobalSkew
				acc.MaxGroupSkewPs += r.MaxGroupSkew
				acc.CPUSeconds += secs
			}
			n := float64(reps)
			rows = append(rows, Row{
				Circuit: sp.Name, Sinks: sp.Sinks, Groups: k, Algorithm: "AST-DME",
				Wirelen:      acc.Wirelen / n,
				ReductionPct: 100 * (ext.Wirelength - acc.Wirelen/n) / ext.Wirelength,
				MaxSkewPs:    acc.MaxSkewPs / n, MaxGroupSkewPs: acc.MaxGroupSkewPs / n,
				CPUSeconds: acc.CPUSeconds / n,
			})
		}
	}
	return rows, nil
}

// WriteTable renders rows in the layout of the thesis's tables.
func WriteTable(w io.Writer, title string, rows []Row) {
	fmt.Fprintf(w, "%s\n", title)
	fmt.Fprintf(w, "%-8s %7s %7s %-9s %12s %10s %9s %10s %8s\n",
		"Circuit", "#sinks", "#groups", "Algorithm", "Wirelen", "Reduction", "MaxSkew", "GroupSkew", "CPU(s)")
	last := ""
	for _, r := range rows {
		circuit := r.Circuit
		if circuit == last {
			circuit = ""
		} else {
			last = r.Circuit
		}
		red := ""
		if r.Algorithm != "EXT-BST" {
			red = fmt.Sprintf("%.2f%%", r.ReductionPct)
		}
		fmt.Fprintf(w, "%-8s %7d %7d %-9s %12.0f %10s %8.0f %10.1f %8.2f\n",
			circuit, r.Sinks, r.Groups, r.Algorithm, r.Wirelen, red,
			r.MaxSkewPs, r.MaxGroupSkewPs, r.CPUSeconds)
	}
}

// Fig1Result compares zero-skew against bounded-skew routing on the 4-sink
// pathlength-model instance mirroring thesis Fig. 1.
type Fig1Result struct {
	ZSTWire, ZSTSkew float64
	BSTWire, BSTSkew float64
	Bound            float64
}

// Fig1Instance is a 4-sink instance under the pathlength model whose exact
// zero-skew tree needs 17 units of wire (one snaked edge) while a
// bounded-skew tree at bound 1 needs 16, mirroring the 17-vs-16 comparison
// of thesis Fig. 1. (The thesis's exact coordinates are not recoverable from
// the scanned figure; this instance reproduces the phenomenon with
// hand-checkable numbers.)
func Fig1Instance() *ctree.Instance {
	return &ctree.Instance{
		Name: "fig1",
		Sinks: []ctree.Sink{
			{ID: 0, Loc: geom.Point{X: 0, Y: 0}, CapFF: 1, Group: 0},
			{ID: 1, Loc: geom.Point{X: 4, Y: 0}, CapFF: 1, Group: 0},
			{ID: 2, Loc: geom.Point{X: 3, Y: 5}, CapFF: 1, Group: 0},
			{ID: 3, Loc: geom.Point{X: 3, Y: -5}, CapFF: 1, Group: 0},
		},
		Source:    geom.Point{X: 0, Y: 0},
		NumGroups: 1,
	}
}

// Fig1 runs the comparison.
func Fig1(bound float64) (*Fig1Result, error) {
	in := Fig1Instance()
	lin := rctree.Linear{}
	zst, err := core.ZST(in, core.Options{Model: lin})
	if err != nil {
		return nil, err
	}
	zstRep := eval.Analyze(zst.Root, in, lin, in.Source)
	bst, err := core.EXTBST(in, bound, core.Options{Model: lin})
	if err != nil {
		return nil, err
	}
	bstRep := eval.Analyze(bst.Root, in, lin, in.Source)
	return &Fig1Result{
		ZSTWire: zst.Root.Wirelength(), ZSTSkew: zstRep.GlobalSkew,
		BSTWire: bst.Root.Wirelength(), BSTSkew: bstRep.GlobalSkew,
		Bound: bound,
	}, nil
}

// Fig2Result compares the separate-trees-and-stitch approach against
// AST-DME's simultaneous merging on intermingled groups (thesis Fig. 2).
type Fig2Result struct {
	StitchWire, ASTWire float64
	SavingPct           float64
}

// Fig2 runs the comparison on an n-sink, k-group intermingled instance.
func Fig2(n, k int, seed int64) (*Fig2Result, error) {
	in := bench.Intermingled(bench.Small(n, seed), k, seed*3)
	st, err := stitch.Build(in, stitch.Options{})
	if err != nil {
		return nil, err
	}
	ast, err := core.Build(in, core.Options{IntraSkewBound: ASTIntraBoundPs})
	if err != nil {
		return nil, err
	}
	return &Fig2Result{
		StitchWire: st.Wirelength,
		ASTWire:    ast.Wirelength,
		SavingPct:  100 * (st.Wirelength - ast.Wirelength) / st.Wirelength,
	}, nil
}

// Ablation describes one configuration of the ablation study.
type Ablation struct {
	Name string
	Opt  core.Options
}

// Ablations returns the configurations exercising the design choices of
// DESIGN.md §4 (merging order, delay-target bias, region deferral).
func Ablations() []Ablation {
	greedy := core.Options{IntraSkewBound: ASTIntraBoundPs,
		Order: order.Config{Strategy: order.Greedy}}
	return []Ablation{
		{Name: "default-multi", Opt: core.Options{IntraSkewBound: ASTIntraBoundPs}},
		{Name: "greedy-order", Opt: greedy},
		{Name: "delay-target", Opt: core.Options{IntraSkewBound: ASTIntraBoundPs, DelayTargetBias: 1}},
		{Name: "endpoint-split", Opt: core.Options{IntraSkewBound: ASTIntraBoundPs, EndpointSplit: true}},
		{Name: "offset-float-60", Opt: core.Options{IntraSkewBound: ASTIntraBoundPs, InterSkewBound: 60}},
	}
}

// RunAblation routes the instance under one configuration and reports
// wirelength and measured skews.
func RunAblation(in *ctree.Instance, ab Ablation) (wire, maxSkew, groupSkew float64, err error) {
	res, err := core.Build(in, ab.Opt)
	if err != nil {
		return 0, 0, 0, err
	}
	m := ab.Opt.Model
	if m == nil {
		m = core.DefaultModel()
	}
	rep := eval.Analyze(res.Root, in, m, in.Source)
	return res.Wirelength, rep.GlobalSkew, rep.MaxGroupSkew, nil
}
