package experiments

import (
	"math"
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/ctree"
	"repro/internal/geom"
	"repro/internal/rctree"
)

func TestTableSmall(t *testing.T) {
	// A miniature table run exercising the full pipeline on small circuits.
	circuits := []bench.Spec{
		{Name: "t1", Sinks: 60, Side: 3200 * 8, Seed: 11},
		{Name: "t2", Sinks: 90, Side: 3200 * 10, Seed: 12},
	}
	for _, grouping := range []Grouping{Clustered, Intermingled} {
		rows, err := Table(grouping, circuits, []int{2, 4})
		if err != nil {
			t.Fatalf("%v: %v", grouping, err)
		}
		if len(rows) != 2*(1+2) {
			t.Fatalf("%v: %d rows", grouping, len(rows))
		}
		for _, r := range rows {
			if r.Wirelen <= 0 || r.CPUSeconds < 0 {
				t.Errorf("%v: bad row %+v", grouping, r)
			}
			if r.Algorithm == "EXT-BST" {
				if r.MaxSkewPs > EXTBoundPs*1.001 {
					t.Errorf("%v: EXT-BST skew %v exceeds bound", grouping, r.MaxSkewPs)
				}
			} else if r.MaxGroupSkewPs > 3*ASTIntraBoundPs {
				t.Errorf("%v: AST-DME intra-group skew %v way above bound %v",
					grouping, r.MaxGroupSkewPs, ASTIntraBoundPs)
			}
		}
		var sb strings.Builder
		WriteTable(&sb, "test", rows)
		if !strings.Contains(sb.String(), "EXT-BST") || !strings.Contains(sb.String(), "AST-DME") {
			t.Error("table text missing algorithms")
		}
	}
}

// TestFig1Exact reproduces the 17-versus-16 wirelength comparison of thesis
// Fig. 1 with hand-built merges under the pathlength model: subtree A (two
// sinks 4 apart, internal delay 2) and subtree B (two sinks 10 apart,
// internal delay 5) merge at coincident merging segments, so exact zero skew
// snakes 3 extra units (total 4+10+3 = 17) while a skew bound of 1 snakes
// only 2 (total 16).
func TestFig1Exact(t *testing.T) {
	lin := rctree.Linear{}
	s := func(x, y float64) geom.Rect { return geom.RectFromPoint(geom.Point{X: x, Y: y}) }

	// Subtree A: sinks (0,0) and (4,0) → arc through (2,0), delay 2.
	a0, a1 := s(0, 0), s(4, 0)
	mgA := rctree.Balance(lin, geom.DistRR(a0, a1), 0, 1, 0, 1)
	if mgA.Total() != 4 {
		t.Fatalf("A wire = %v", mgA.Total())
	}
	msA := geom.MergeLocus(a0, a1, mgA.Ea, mgA.Eb)

	// Subtree B: sinks (2,5) and (2,−5) → point (2,0), delay 5.
	b0, b1 := s(2, 5), s(2, -5)
	mgB := rctree.Balance(lin, geom.DistRR(b0, b1), 0, 1, 0, 1)
	if mgB.Total() != 10 {
		t.Fatalf("B wire = %v", mgB.Total())
	}
	msB := geom.MergeLocus(b0, b1, mgB.Ea, mgB.Eb)

	d := geom.DistRR(msA, msB)
	if d != 0 {
		t.Fatalf("merging segments should touch, d = %v", d)
	}

	// Zero skew: A (delay 2) must be slowed to 5 → snake 3 → total 17.
	zst := rctree.Balance(lin, d, 2, 2, 5, 2)
	totalZST := mgA.Total() + mgB.Total() + zst.Total()
	if totalZST != 17 {
		t.Errorf("ZST wirelength = %v, want 17 (thesis Fig. 1a)", totalZST)
	}
	if da, db := 2+zst.Ea, 5+zst.Eb; da != db {
		t.Errorf("ZST skew %v", da-db)
	}

	// Bounded skew 1: snake only 2 → total 16.
	bst := rctree.BoundedBalance(lin, d,
		rctree.PointInterval(2), 2, rctree.PointInterval(5), 2, 1)
	totalBST := mgA.Total() + mgB.Total() + bst.Total()
	if totalBST != 16 {
		t.Errorf("BST wirelength = %v, want 16 (thesis Fig. 1b)", totalBST)
	}
	iv := rctree.MergedInterval(lin, bst, rctree.PointInterval(2), 2, rctree.PointInterval(5), 2)
	if iv.Width() > 1 {
		t.Errorf("BST skew %v exceeds bound 1", iv.Width())
	}
}

func TestFig1RouterLevel(t *testing.T) {
	res, err := Fig1(1)
	if err != nil {
		t.Fatal(err)
	}
	if res.ZSTSkew > 1e-9 {
		t.Errorf("ZST skew = %v", res.ZSTSkew)
	}
	if res.BSTSkew > res.Bound+1e-9 {
		t.Errorf("BST skew = %v exceeds bound %v", res.BSTSkew, res.Bound)
	}
	if res.BSTWire > res.ZSTWire {
		t.Errorf("BST wire %v above ZST wire %v", res.BSTWire, res.ZSTWire)
	}
	t.Logf("Fig.1 router-level: ZST %v / skew %v vs BST %v / skew %v",
		res.ZSTWire, res.ZSTSkew, res.BSTWire, res.BSTSkew)
}

func TestFig2SavesWire(t *testing.T) {
	res, err := Fig2(100, 4, 9)
	if err != nil {
		t.Fatal(err)
	}
	if res.ASTWire >= res.StitchWire {
		t.Errorf("AST %v not below stitch %v", res.ASTWire, res.StitchWire)
	}
	if res.SavingPct < 5 {
		t.Errorf("saving %.1f%% too small for intermingled groups", res.SavingPct)
	}
	t.Logf("Fig.2: stitch=%.0f ast=%.0f saving=%.1f%%", res.StitchWire, res.ASTWire, res.SavingPct)
}

func TestAblationsRun(t *testing.T) {
	in := bench.Intermingled(bench.Small(80, 2), 4, 7)
	var wires []float64
	for _, ab := range Ablations() {
		wire, skew, gskew, err := RunAblation(in, ab)
		if err != nil {
			t.Fatalf("%s: %v", ab.Name, err)
		}
		if wire <= 0 || math.IsNaN(skew) || math.IsNaN(gskew) {
			t.Errorf("%s: bad results %v %v %v", ab.Name, wire, skew, gskew)
		}
		wires = append(wires, wire)
	}
	// Sanity: ablations differ from the default (they change real behavior).
	distinct := 0
	for _, w := range wires[1:] {
		if math.Abs(w-wires[0]) > 1e-9 {
			distinct++
		}
	}
	if distinct == 0 {
		t.Error("no ablation changed the result")
	}
}

func TestGroupInstanceModes(t *testing.T) {
	base := bench.Small(60, 3)
	c := groupInstance(base, Clustered, 4, 1)
	i := groupInstance(base, Intermingled, 4, 1)
	if c.NumGroups != 4 || i.NumGroups != 4 {
		t.Fatal("wrong group counts")
	}
	var ctr *ctree.Instance = c
	_ = ctr
	if Clustered.String() != "clustered" || Intermingled.String() != "intermingled" {
		t.Error("grouping names")
	}
}

func TestTableRepeatedAveraging(t *testing.T) {
	circuits := []bench.Spec{{Name: "t1", Sinks: 50, Side: 3200 * 7, Seed: 4}}
	single, err := TableRepeated(Intermingled, circuits, []int{3}, 1)
	if err != nil {
		t.Fatal(err)
	}
	multi, err := TableRepeated(Intermingled, circuits, []int{3}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(single) != 2 || len(multi) != 2 {
		t.Fatalf("rows %d/%d", len(single), len(multi))
	}
	// Baselines are identical; the averaged AST row generally differs from a
	// single seed (different grouping assignments).
	if single[0].Wirelen != multi[0].Wirelen {
		t.Error("baseline should not depend on repeats")
	}
	if multi[1].Wirelen <= 0 {
		t.Error("averaged row empty")
	}
	// Clustered grouping is deterministic: repeats must not change anything.
	c1, err := TableRepeated(Clustered, circuits, []int{3}, 1)
	if err != nil {
		t.Fatal(err)
	}
	c3, err := TableRepeated(Clustered, circuits, []int{3}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if c1[1].Wirelen != c3[1].Wirelen {
		t.Error("clustered rows should be repeat-invariant")
	}
}
