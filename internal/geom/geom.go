// Package geom provides Manhattan-plane geometry for deferred-merge
// clock-tree embedding (DME, BST, AST-DME).
//
// All merging loci are represented in the 45°-rotated coordinate space
//
//	u = x + y,  v = x − y
//
// where the Manhattan (L1) distance of the physical plane becomes the
// Chebyshev (L∞) distance. Under this duality:
//
//   - a point stays a point;
//   - a Manhattan arc (a ±45° segment, the classic DME "merging segment")
//     becomes an axis-parallel segment;
//   - a tilted rectangular region (TRR) becomes an axis-aligned rectangle;
//   - inflating a locus by radius r (Minkowski sum with an L1 ball)
//     becomes growing a rectangle by r on every side;
//   - the intersection of two inflated loci is again a rectangle.
//
// Consequently a single type, Rect, represents every merging locus the
// routing algorithms need, and all constructions are exact.
package geom

import (
	"fmt"
	"math"
)

// Point is a location in the physical Manhattan plane.
type Point struct {
	X, Y float64
}

// UV is a location in the 45°-rotated plane (u = x+y, v = x−y).
type UV struct {
	U, V float64
}

// ToUV rotates a physical point into uv-space.
func ToUV(p Point) UV { return UV{U: p.X + p.Y, V: p.X - p.Y} }

// ToXY rotates a uv-space point back to the physical plane.
func ToXY(q UV) Point { return Point{X: (q.U + q.V) / 2, Y: (q.U - q.V) / 2} }

// Dist returns the Manhattan (L1) distance between two physical points.
func Dist(a, b Point) float64 {
	return math.Abs(a.X-b.X) + math.Abs(a.Y-b.Y)
}

// DistUV returns the Chebyshev (L∞) distance between two uv-space points,
// which equals the Manhattan distance of the corresponding physical points.
func DistUV(a, b UV) float64 {
	return math.Max(math.Abs(a.U-b.U), math.Abs(a.V-b.V))
}

// Rect is an axis-aligned, possibly degenerate rectangle in uv-space.
// It is the universal merging locus: a physical point (both extents zero),
// a Manhattan arc (one extent zero), or a tilted rectangular region.
//
// A Rect with ULo > UHi or VLo > VHi is empty; use IsEmpty to test.
type Rect struct {
	ULo, UHi, VLo, VHi float64
}

// RectFromPoint returns the degenerate rectangle holding one physical point.
func RectFromPoint(p Point) Rect {
	q := ToUV(p)
	return Rect{ULo: q.U, UHi: q.U, VLo: q.V, VHi: q.V}
}

// RectFromUV returns the degenerate rectangle holding one uv point.
func RectFromUV(q UV) Rect {
	return Rect{ULo: q.U, UHi: q.U, VLo: q.V, VHi: q.V}
}

// IsEmpty reports whether the rectangle contains no point.
func (r Rect) IsEmpty() bool { return r.ULo > r.UHi || r.VLo > r.VHi }

// IsPoint reports whether the rectangle is a single point.
func (r Rect) IsPoint() bool { return r.ULo == r.UHi && r.VLo == r.VHi }

// IsSegment reports whether the rectangle is a (non-point) Manhattan arc,
// i.e. degenerate in exactly one dimension.
func (r Rect) IsSegment() bool {
	return !r.IsEmpty() && !r.IsPoint() && (r.ULo == r.UHi || r.VLo == r.VHi)
}

// Width returns the u-extent (non-negative for non-empty rectangles).
func (r Rect) Width() float64 { return r.UHi - r.ULo }

// Height returns the v-extent (non-negative for non-empty rectangles).
func (r Rect) Height() float64 { return r.VHi - r.VLo }

// Center returns the uv-space center of the rectangle.
func (r Rect) Center() UV { return UV{U: (r.ULo + r.UHi) / 2, V: (r.VLo + r.VHi) / 2} }

// Inflate grows the rectangle by d on every side (Minkowski sum with the
// L∞ ball of radius d, i.e. the L1 ball in physical space). Negative d
// shrinks; the result may become empty.
func (r Rect) Inflate(d float64) Rect {
	return Rect{ULo: r.ULo - d, UHi: r.UHi + d, VLo: r.VLo - d, VHi: r.VHi + d}
}

// Intersect returns the intersection of two rectangles. ok is false when the
// intersection is empty.
func Intersect(a, b Rect) (Rect, bool) {
	out := Rect{
		ULo: math.Max(a.ULo, b.ULo), UHi: math.Min(a.UHi, b.UHi),
		VLo: math.Max(a.VLo, b.VLo), VHi: math.Min(a.VHi, b.VHi),
	}
	return out, !out.IsEmpty()
}

// gap1 returns the 1-D distance between intervals [alo,ahi] and [blo,bhi]
// (zero when they overlap).
func gap1(alo, ahi, blo, bhi float64) float64 {
	if g := blo - ahi; g > 0 {
		return g
	}
	if g := alo - bhi; g > 0 {
		return g
	}
	return 0
}

// DistRR returns the minimum Manhattan distance between any point of a and
// any point of b (the L∞ gap in uv-space). Both rectangles must be non-empty.
func DistRR(a, b Rect) float64 {
	du := gap1(a.ULo, a.UHi, b.ULo, b.UHi)
	dv := gap1(a.VLo, a.VHi, b.VLo, b.VHi)
	return math.Max(du, dv)
}

// DistRP returns the minimum Manhattan distance from rectangle r to uv point q.
func DistRP(r Rect, q UV) float64 {
	return DistRR(r, RectFromUV(q))
}

// clamp1 clamps x into [lo, hi].
func clamp1(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// ClosestPointTo returns the point of r nearest (in L∞/uv, equivalently
// L1/xy) to q. When q is inside r it returns q itself.
func (r Rect) ClosestPointTo(q UV) UV {
	return UV{U: clamp1(q.U, r.ULo, r.UHi), V: clamp1(q.V, r.VLo, r.VHi)}
}

// Contains reports whether uv point q lies in r (boundary inclusive).
func (r Rect) Contains(q UV) bool {
	return q.U >= r.ULo && q.U <= r.UHi && q.V >= r.VLo && q.V <= r.VHi
}

// ContainsRect reports whether b lies entirely within r.
func (r Rect) ContainsRect(b Rect) bool {
	return b.ULo >= r.ULo && b.UHi <= r.UHi && b.VLo >= r.VLo && b.VHi <= r.VHi
}

// Union returns the bounding box of a and b.
func Union(a, b Rect) Rect {
	return Rect{
		ULo: math.Min(a.ULo, b.ULo), UHi: math.Max(a.UHi, b.UHi),
		VLo: math.Min(a.VLo, b.VLo), VHi: math.Max(a.VHi, b.VHi),
	}
}

// MergeLocus returns the locus of merge points at distance ≤ ea from a and
// ≤ eb from b, i.e. inflate(a,ea) ∩ inflate(b,eb). When ea+eb equals the
// rectangle distance DistRR(a,b) every point of the locus is at distance
// exactly ea from a and eb from b; with ea+eb greater (wire snaking) the
// locus is fatter and the committed wire lengths remain ea and eb by
// detouring. The caller must ensure ea+eb ≥ DistRR(a,b); the result is then
// guaranteed non-empty (up to floating-point rounding, which is absorbed by
// a tiny epsilon re-inflation).
func MergeLocus(a, b Rect, ea, eb float64) Rect {
	out, ok := Intersect(a.Inflate(ea), b.Inflate(eb))
	if !ok {
		// ea+eb ≥ dist should guarantee non-emptiness; re-inflate by the
		// tiny deficit caused by rounding so downstream code always has a
		// valid locus.
		eps := math.Max(DistRR(a, b)-(ea+eb), 0) + 1e-9*(1+math.Abs(ea)+math.Abs(eb))
		out, _ = Intersect(a.Inflate(ea+eps), b.Inflate(eb+eps))
	}
	return out
}

// Corners returns the four physical-plane corners of the rectangle in order
// (ULo,VLo), (UHi,VLo), (UHi,VHi), (ULo,VHi). For degenerate rectangles some
// corners coincide.
func (r Rect) Corners() [4]Point {
	return [4]Point{
		ToXY(UV{U: r.ULo, V: r.VLo}),
		ToXY(UV{U: r.UHi, V: r.VLo}),
		ToXY(UV{U: r.UHi, V: r.VHi}),
		ToXY(UV{U: r.ULo, V: r.VHi}),
	}
}

// String renders the rectangle for diagnostics.
func (r Rect) String() string {
	if r.IsEmpty() {
		return "Rect(empty)"
	}
	return fmt.Sprintf("Rect(u[%.6g,%.6g] v[%.6g,%.6g])", r.ULo, r.UHi, r.VLo, r.VHi)
}

// BoundingBox returns the axis-aligned physical-plane bounding box
// (xmin, ymin, xmax, ymax) of the rectangle.
func (r Rect) BoundingBox() (xmin, ymin, xmax, ymax float64) {
	c := r.Corners()
	xmin, ymin = math.Inf(1), math.Inf(1)
	xmax, ymax = math.Inf(-1), math.Inf(-1)
	for _, p := range c {
		xmin = math.Min(xmin, p.X)
		xmax = math.Max(xmax, p.X)
		ymin = math.Min(ymin, p.Y)
		ymax = math.Max(ymax, p.Y)
	}
	return xmin, ymin, xmax, ymax
}
