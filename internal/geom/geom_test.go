package geom

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestRoundTripUV(t *testing.T) {
	pts := []Point{{0, 0}, {1, 2}, {-3.5, 7.25}, {1e6, -2e6}}
	for _, p := range pts {
		q := ToXY(ToUV(p))
		if !almostEq(p.X, q.X, 1e-12) || !almostEq(p.Y, q.Y, 1e-12) {
			t.Errorf("round trip %v -> %v", p, q)
		}
	}
}

func TestDistDuality(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		a, b := Point{ax, ay}, Point{bx, by}
		return almostEq(Dist(a, b), DistUV(ToUV(a), ToUV(b)), 1e-9*(1+Dist(a, b)))
	}
	cfg := &quick.Config{MaxCount: 500, Values: smallFloats(4)}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// smallFloats generates n float64 arguments bounded to a sane range so that
// tolerance-based comparisons stay meaningful.
func smallFloats(n int) func([]reflect.Value, *rand.Rand) {
	return func(args []reflect.Value, r *rand.Rand) {
		for i := 0; i < n; i++ {
			args[i] = reflect.ValueOf((r.Float64() - 0.5) * 2e6)
		}
	}
}

func TestDistManhattan(t *testing.T) {
	if got := Dist(Point{0, 0}, Point{3, 4}); got != 7 {
		t.Errorf("Dist = %v, want 7", got)
	}
	if got := Dist(Point{-1, -1}, Point{-4, 3}); got != 7 {
		t.Errorf("Dist = %v, want 7", got)
	}
}

func TestRectBasics(t *testing.T) {
	p := Point{2, 3}
	r := RectFromPoint(p)
	if !r.IsPoint() {
		t.Fatalf("RectFromPoint not a point: %v", r)
	}
	if r.IsEmpty() || r.IsSegment() {
		t.Fatalf("point rect misclassified: %v", r)
	}
	back := ToXY(r.Center())
	if !almostEq(back.X, p.X, 1e-12) || !almostEq(back.Y, p.Y, 1e-12) {
		t.Errorf("center round trip: %v", back)
	}

	seg := Rect{ULo: 0, UHi: 4, VLo: 1, VHi: 1}
	if !seg.IsSegment() {
		t.Errorf("expected segment: %v", seg)
	}
	empty := Rect{ULo: 1, UHi: 0, VLo: 0, VHi: 1}
	if !empty.IsEmpty() {
		t.Errorf("expected empty: %v", empty)
	}
}

func TestInflateIntersect(t *testing.T) {
	a := RectFromPoint(Point{0, 0})
	b := RectFromPoint(Point{10, 0})
	d := DistRR(a, b)
	if d != 10 {
		t.Fatalf("DistRR = %v, want 10", d)
	}
	// Split the distance: locus must be non-empty and at the right distances.
	for _, ea := range []float64{0, 2.5, 5, 10} {
		eb := d - ea
		m := MergeLocus(a, b, ea, eb)
		if m.IsEmpty() {
			t.Fatalf("empty locus at ea=%v", ea)
		}
		if !almostEq(DistRR(m, a), ea, 1e-9) || !almostEq(DistRR(m, b), eb, 1e-9) {
			t.Errorf("locus distances: to a %v (want %v), to b %v (want %v)",
				DistRR(m, a), ea, DistRR(m, b), eb)
		}
	}
}

func TestMergeLocusProperty(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 2000; i++ {
		a := randomRect(r)
		b := randomRect(r)
		d := DistRR(a, b)
		frac := r.Float64()
		ea := frac * d
		m := MergeLocus(a, b, ea, d-ea)
		if m.IsEmpty() {
			t.Fatalf("iter %d: empty merge locus d=%v ea=%v a=%v b=%v", i, d, ea, a, b)
		}
		// Every point of the locus is within ea of a and d-ea of b.
		tol := 1e-6 * (1 + d)
		if DistRR(m, a) > ea+tol || DistRR(m, b) > d-ea+tol {
			t.Fatalf("iter %d: locus too far: %v %v", i, DistRR(m, a), DistRR(m, b))
		}
		// With ea+eb == d exactly, distances are achieved exactly.
		if d > 0 && (DistRR(m, a) < ea-tol || DistRR(m, b) < (d-ea)-tol) {
			t.Fatalf("iter %d: locus too close: got %v want %v / got %v want %v",
				i, DistRR(m, a), ea, DistRR(m, b), d-ea)
		}
	}
}

func TestMergeLocusSnaking(t *testing.T) {
	a := RectFromPoint(Point{0, 0})
	b := RectFromPoint(Point{4, 0})
	m := MergeLocus(a, b, 6, 6) // ea+eb exceeds distance: fat locus
	if m.IsEmpty() {
		t.Fatal("snaked locus empty")
	}
	if DistRR(m, a) != 0 || DistRR(m, b) != 0 {
		// With radii larger than the gap both originals are inside the locus.
		t.Errorf("expected both endpoints covered, got %v %v", DistRR(m, a), DistRR(m, b))
	}
}

func randomRect(r *rand.Rand) Rect {
	u := (r.Float64() - 0.5) * 1e4
	v := (r.Float64() - 0.5) * 1e4
	w := r.Float64() * 100
	h := r.Float64() * 100
	switch r.Intn(4) {
	case 0: // point
		return Rect{ULo: u, UHi: u, VLo: v, VHi: v}
	case 1: // horizontal segment
		return Rect{ULo: u, UHi: u + w, VLo: v, VHi: v}
	case 2: // vertical segment
		return Rect{ULo: u, UHi: u, VLo: v, VHi: v + h}
	default:
		return Rect{ULo: u, UHi: u + w, VLo: v, VHi: v + h}
	}
}

func TestClosestPoint(t *testing.T) {
	r := Rect{ULo: 0, UHi: 10, VLo: 0, VHi: 10}
	cases := []struct {
		q, want UV
	}{
		{UV{5, 5}, UV{5, 5}},
		{UV{-3, 5}, UV{0, 5}},
		{UV{12, 15}, UV{10, 10}},
		{UV{5, -1}, UV{5, 0}},
	}
	for _, c := range cases {
		got := r.ClosestPointTo(c.q)
		if got != c.want {
			t.Errorf("ClosestPointTo(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestClosestPointIsOptimal(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 1000; i++ {
		rect := randomRect(r)
		q := UV{U: (r.Float64() - 0.5) * 2e4, V: (r.Float64() - 0.5) * 2e4}
		cp := rect.ClosestPointTo(q)
		if !rect.Contains(cp) {
			t.Fatalf("closest point %v not in rect %v", cp, rect)
		}
		want := DistRP(rect, q)
		if !almostEq(DistUV(cp, q), want, 1e-9*(1+want)) {
			t.Fatalf("closest point distance %v != rect distance %v", DistUV(cp, q), want)
		}
		// No random sample inside the rect does better.
		for j := 0; j < 20; j++ {
			s := UV{
				U: rect.ULo + r.Float64()*rect.Width(),
				V: rect.VLo + r.Float64()*rect.Height(),
			}
			if DistUV(s, q) < DistUV(cp, q)-1e-9 {
				t.Fatalf("sample %v beats closest point %v", s, cp)
			}
		}
	}
}

func TestDistRRSymmetryAndTriangle(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for i := 0; i < 1000; i++ {
		a, b, c := randomRect(r), randomRect(r), randomRect(r)
		if !almostEq(DistRR(a, b), DistRR(b, a), 1e-12) {
			t.Fatal("DistRR not symmetric")
		}
		// Point-to-point special case agrees with DistUV.
		p, q := a.Center(), b.Center()
		if !almostEq(DistRR(RectFromUV(p), RectFromUV(q)), DistUV(p, q), 1e-12) {
			t.Fatal("point DistRR mismatch")
		}
		_ = c
	}
}

func TestUnionContains(t *testing.T) {
	a := Rect{ULo: 0, UHi: 1, VLo: 0, VHi: 1}
	b := Rect{ULo: 5, UHi: 6, VLo: -2, VHi: 0}
	u := Union(a, b)
	if !u.ContainsRect(a) || !u.ContainsRect(b) {
		t.Errorf("union %v does not contain inputs", u)
	}
	if u != (Rect{ULo: 0, UHi: 6, VLo: -2, VHi: 1}) {
		t.Errorf("union = %v", u)
	}
}

func TestCornersAreValidPreimages(t *testing.T) {
	rect := Rect{ULo: 0, UHi: 4, VLo: -2, VHi: 2}
	for _, p := range rect.Corners() {
		q := ToUV(p)
		if !rect.Contains(q) {
			t.Errorf("corner %v maps to %v outside rect", p, q)
		}
	}
	xmin, ymin, xmax, ymax := rect.BoundingBox()
	if xmin > xmax || ymin > ymax {
		t.Errorf("bad bbox %v %v %v %v", xmin, ymin, xmax, ymax)
	}
}

func TestDegenerateMerge(t *testing.T) {
	// Merging a rect with itself at zero distance returns the rect.
	a := Rect{ULo: 1, UHi: 3, VLo: 1, VHi: 1}
	m := MergeLocus(a, a, 0, 0)
	if m != a {
		t.Errorf("self merge = %v, want %v", m, a)
	}
}
