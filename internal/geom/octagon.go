package geom

import (
	"fmt"
	"math"
)

// Octagon is a convex region in uv-space bounded in the four octilinear
// directions: u, v, s = u+v and t = u−v. It generalizes Rect (which bounds
// only u and v) and is the natural shape of the shortest-distance region
// (SDR) between two rectangles under the L∞ metric — the "merging region" of
// bounded-skew and associative-skew routing.
//
// The family is closed under intersection and under inflation by an L∞ ball
// (u and v bounds grow by r; s and t bounds grow by 2r). An octagon should
// be canonicalized with Close before geometric queries.
type Octagon struct {
	ULo, UHi float64
	VLo, VHi float64
	SLo, SHi float64 // bounds on u+v
	TLo, THi float64 // bounds on u−v
}

// OctFromRect lifts a rectangle to an octagon with tight diagonal bounds.
func OctFromRect(r Rect) Octagon {
	return Octagon{
		ULo: r.ULo, UHi: r.UHi,
		VLo: r.VLo, VHi: r.VHi,
		SLo: r.ULo + r.VLo, SHi: r.UHi + r.VHi,
		TLo: r.ULo - r.VHi, THi: r.UHi - r.VLo,
	}
}

// OctFromUV returns the degenerate octagon holding one point.
func OctFromUV(q UV) Octagon { return OctFromRect(RectFromUV(q)) }

// IsEmpty reports whether the (closed) octagon contains no point. Call Close
// first when the octagon was built by intersection.
func (o Octagon) IsEmpty() bool {
	return o.ULo > o.UHi || o.VLo > o.VHi || o.SLo > o.SHi || o.TLo > o.THi
}

// Close tightens all eight bounds to their canonical (mutually consistent)
// values. For the two-variable octagonal constraint system the fixed point
// is reached within a few passes; Close runs three, which property tests
// confirm suffices.
func (o Octagon) Close() Octagon {
	for pass := 0; pass < 3; pass++ {
		// s = u+v and t = u−v derived bounds.
		o.SLo = math.Max(o.SLo, o.ULo+o.VLo)
		o.SHi = math.Min(o.SHi, o.UHi+o.VHi)
		o.TLo = math.Max(o.TLo, o.ULo-o.VHi)
		o.THi = math.Min(o.THi, o.UHi-o.VLo)
		// u = (s+t)/2 and via single sums.
		o.ULo = math.Max(o.ULo, (o.SLo+o.TLo)/2)
		o.UHi = math.Min(o.UHi, (o.SHi+o.THi)/2)
		o.ULo = math.Max(o.ULo, math.Max(o.SLo-o.VHi, o.TLo+o.VLo))
		o.UHi = math.Min(o.UHi, math.Min(o.SHi-o.VLo, o.THi+o.VHi))
		// v = (s−t)/2 and via single sums.
		o.VLo = math.Max(o.VLo, (o.SLo-o.THi)/2)
		o.VHi = math.Min(o.VHi, (o.SHi-o.TLo)/2)
		o.VLo = math.Max(o.VLo, math.Max(o.SLo-o.UHi, o.ULo-o.THi))
		o.VHi = math.Min(o.VHi, math.Min(o.SHi-o.ULo, o.UHi-o.TLo))
	}
	// Snap intervals inverted only by rounding (the derived bounds above can
	// differ from the direct ones in the last bits for degenerate shapes).
	snap(&o.ULo, &o.UHi)
	snap(&o.VLo, &o.VHi)
	snap(&o.SLo, &o.SHi)
	snap(&o.TLo, &o.THi)
	return o
}

// snap collapses an interval inverted by a rounding-level amount to its
// midpoint, leaving genuinely empty intervals untouched.
func snap(lo, hi *float64) {
	if *lo > *hi && *lo-*hi <= 1e-9*(1+math.Abs(*lo)+math.Abs(*hi)) {
		m := (*lo + *hi) / 2
		*lo, *hi = m, m
	}
}

// Bounds returns the octagon's u/v bounding rectangle, dropping the
// diagonal constraints. DistRR over Bounds lower-bounds DistOO, which is
// what spatial-index pruning requires.
func (o Octagon) Bounds() Rect {
	return Rect{ULo: o.ULo, UHi: o.UHi, VLo: o.VLo, VHi: o.VHi}
}

// Inflate returns the Minkowski sum with the L∞ ball of radius r ≥ 0
// (equivalently, the set of points within Manhattan distance r in xy-space).
func (o Octagon) Inflate(r float64) Octagon {
	return Octagon{
		ULo: o.ULo - r, UHi: o.UHi + r,
		VLo: o.VLo - r, VHi: o.VHi + r,
		SLo: o.SLo - 2*r, SHi: o.SHi + 2*r,
		TLo: o.TLo - 2*r, THi: o.THi + 2*r,
	}
}

// IntersectOct intersects two octagons; ok is false when empty.
func IntersectOct(a, b Octagon) (Octagon, bool) {
	out := Octagon{
		ULo: math.Max(a.ULo, b.ULo), UHi: math.Min(a.UHi, b.UHi),
		VLo: math.Max(a.VLo, b.VLo), VHi: math.Min(a.VHi, b.VHi),
		SLo: math.Max(a.SLo, b.SLo), SHi: math.Min(a.SHi, b.SHi),
		TLo: math.Max(a.TLo, b.TLo), THi: math.Min(a.THi, b.THi),
	}.Close()
	return out, !out.IsEmpty()
}

// ContainsUV reports whether q lies in the octagon (boundary inclusive,
// within tol).
func (o Octagon) ContainsUV(q UV, tol float64) bool {
	s, t := q.U+q.V, q.U-q.V
	return q.U >= o.ULo-tol && q.U <= o.UHi+tol &&
		q.V >= o.VLo-tol && q.V <= o.VHi+tol &&
		s >= o.SLo-tol && s <= o.SHi+tol &&
		t >= o.TLo-tol && t <= o.THi+tol
}

// DistOO returns the minimum L∞ distance between two non-empty closed
// octagons: the least r with a.Inflate(r) ∩ b non-empty, which for closed
// operands is the largest of the four per-direction interval gaps (diagonal
// gaps halved, since diagonal bounds grow at twice the inflation rate).
func DistOO(a, b Octagon) float64 {
	du := gap1(a.ULo, a.UHi, b.ULo, b.UHi)
	dv := gap1(a.VLo, a.VHi, b.VLo, b.VHi)
	ds := gap1(a.SLo, a.SHi, b.SLo, b.SHi) / 2
	dt := gap1(a.TLo, a.THi, b.TLo, b.THi) / 2
	return math.Max(math.Max(du, dv), math.Max(ds, dt))
}

// DistOP returns the minimum L∞ distance from octagon o to point q.
func DistOP(o Octagon, q UV) float64 { return DistOO(o, OctFromUV(q)) }

// AnyPoint returns a point of the closed, non-empty octagon, as close to
// pref as the constraints allow (exact for points inside; otherwise a
// boundary point near the projection of pref).
func (o Octagon) AnyPoint(pref UV) UV {
	u := clamp1(pref.U, o.ULo, o.UHi)
	// v must satisfy its own box plus the diagonal bounds at this u.
	vlo := math.Max(o.VLo, math.Max(o.SLo-u, u-o.THi))
	vhi := math.Min(o.VHi, math.Min(o.SHi-u, u-o.TLo))
	if vlo > vhi {
		// u is outside the feasible u-projection (possible only through
		// rounding, since Close makes projections exact): nudge u into the
		// interval where the v-window is non-empty.
		// vlo(u) decreasing pieces vs vhi(u): solve by clamping u against
		// the crossing points of each constraint pair.
		uMin := math.Max(o.ULo, math.Max(o.SLo-o.VHi, o.TLo+o.VLo))
		uMax := math.Min(o.UHi, math.Min(o.SHi-o.VLo, o.THi+o.VHi))
		u = clamp1(u, uMin, uMax)
		vlo = math.Max(o.VLo, math.Max(o.SLo-u, u-o.THi))
		vhi = math.Min(o.VHi, math.Min(o.SHi-u, u-o.TLo))
		if vlo > vhi { // fully degenerate: fall back to the midpoint
			vm := (vlo + vhi) / 2
			return UV{U: u, V: vm}
		}
	}
	return UV{U: u, V: clamp1(pref.V, vlo, vhi)}
}

// ClosestPoints returns a pair (qa ∈ a, qb ∈ b) realizing DistOO(a, b).
func ClosestPoints(a, b Octagon) (UV, UV) {
	r := DistOO(a, b)
	bc := UV{U: (b.ULo + b.UHi) / 2, V: (b.VLo + b.VHi) / 2}
	ia, ok := IntersectOct(a, b.Inflate(r))
	if !ok { // rounding: widen minimally
		ia, _ = IntersectOct(a, b.Inflate(r*(1+1e-12)+1e-9))
	}
	qa := ia.AnyPoint(bc)
	r2 := DistOP(b, qa)
	ib, ok := IntersectOct(b, OctFromUV(qa).Inflate(r2))
	if !ok {
		ib, _ = IntersectOct(b, OctFromUV(qa).Inflate(r2*(1+1e-12)+1e-9))
	}
	qb := ib.AnyPoint(qa)
	return qa, qb
}

// SDR returns the shortest-distance region between rectangles a and b,
// restricted to split parameters e = dist(q, a) in [eLo, eHi] ⊆ [0, d] where
// d = DistRR(a, b): the union over e of MergeLocus(a, b, e, d−e). Every
// point q of the SDR satisfies dist(q,a) + dist(q,b) = d with
// dist(q,a) ∈ [eLo, eHi], so the split a later resolution commits is read
// directly off the chosen point.
func SDR(a, b Rect, d, eLo, eHi float64) Octagon {
	eLo = clamp1(eLo, 0, d)
	eHi = clamp1(eHi, eLo, d)
	// Candidate breakpoints of the piecewise-linear corner trajectories.
	cands := []float64{eLo, eHi}
	addBreak := func(x float64) {
		if x > eLo && x < eHi {
			cands = append(cands, x)
		}
	}
	addBreak((a.ULo - b.ULo + d) / 2)
	addBreak((b.UHi - a.UHi + d) / 2)
	addBreak((a.VLo - b.VLo + d) / 2)
	addBreak((b.VHi - a.VHi + d) / 2)

	o := Octagon{
		ULo: math.Inf(1), UHi: math.Inf(-1),
		VLo: math.Inf(1), VHi: math.Inf(-1),
		SLo: math.Inf(1), SHi: math.Inf(-1),
		TLo: math.Inf(1), THi: math.Inf(-1),
	}
	for _, e := range cands {
		r := MergeLocus(a, b, e, d-e)
		o.ULo = math.Min(o.ULo, r.ULo)
		o.UHi = math.Max(o.UHi, r.UHi)
		o.VLo = math.Min(o.VLo, r.VLo)
		o.VHi = math.Max(o.VHi, r.VHi)
		o.SLo = math.Min(o.SLo, r.ULo+r.VLo)
		o.SHi = math.Max(o.SHi, r.UHi+r.VHi)
		o.TLo = math.Min(o.TLo, r.ULo-r.VHi)
		o.THi = math.Max(o.THi, r.UHi-r.VLo)
	}
	return o.Close()
}

// String renders the octagon for diagnostics.
func (o Octagon) String() string {
	if o.IsEmpty() {
		return "Oct(empty)"
	}
	return fmt.Sprintf("Oct(u[%.6g,%.6g] v[%.6g,%.6g] s[%.6g,%.6g] t[%.6g,%.6g])",
		o.ULo, o.UHi, o.VLo, o.VHi, o.SLo, o.SHi, o.TLo, o.THi)
}
