package geom

import (
	"math"
	"math/rand"
	"testing"
)

// randomOct builds a random non-empty octagon by intersecting a random rect
// with a random diagonal band around one of the rect's points.
func randomOct(r *rand.Rand) Octagon {
	rect := randomRect(r)
	o := OctFromRect(rect)
	// Narrow the diagonal bounds around a random interior point, keeping the
	// octagon non-empty.
	u := rect.ULo + r.Float64()*rect.Width()
	v := rect.VLo + r.Float64()*rect.Height()
	s, t := u+v, u-v
	if r.Intn(2) == 0 {
		w := r.Float64() * 50
		o.SLo = math.Max(o.SLo, s-w)
		o.SHi = math.Min(o.SHi, s+w)
	}
	if r.Intn(2) == 0 {
		w := r.Float64() * 50
		o.TLo = math.Max(o.TLo, t-w)
		o.THi = math.Min(o.THi, t+w)
	}
	return o.Close()
}

// samplePoints draws points of a closed octagon via AnyPoint with random
// preferences.
func samplePoints(o Octagon, r *rand.Rand, n int) []UV {
	pts := make([]UV, 0, n)
	for i := 0; i < n; i++ {
		pref := UV{
			U: o.ULo + r.Float64()*(o.UHi-o.ULo+1) - 0.5,
			V: o.VLo + r.Float64()*(o.VHi-o.VLo+1) - 0.5,
		}
		pts = append(pts, o.AnyPoint(pref))
	}
	return pts
}

func TestOctFromRectRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		rect := randomRect(r)
		o := OctFromRect(rect)
		c := o.Close()
		const tol = 1e-6
		if math.Abs(c.ULo-o.ULo) > tol || math.Abs(c.UHi-o.UHi) > tol ||
			math.Abs(c.VLo-o.VLo) > tol || math.Abs(c.VHi-o.VHi) > tol ||
			math.Abs(c.SLo-o.SLo) > tol || math.Abs(c.SHi-o.SHi) > tol ||
			math.Abs(c.TLo-o.TLo) > tol || math.Abs(c.THi-o.THi) > tol {
			t.Fatalf("OctFromRect not closed: %v vs %v", o, c)
		}
		if c.IsEmpty() {
			t.Fatalf("rect lift empty: %v", rect)
		}
	}
}

func TestOctCloseIdempotent(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 1000; i++ {
		o := randomOct(r)
		c := o.Close()
		cc := c.Close()
		const tol = 1e-9
		if math.Abs(c.ULo-cc.ULo) > tol || math.Abs(c.SHi-cc.SHi) > tol ||
			math.Abs(c.TLo-cc.TLo) > tol || math.Abs(c.VHi-cc.VHi) > tol {
			t.Fatalf("Close not idempotent: %v vs %v", c, cc)
		}
	}
}

func TestAnyPointInsideOctagon(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 1000; i++ {
		o := randomOct(r)
		for _, q := range samplePoints(o, r, 10) {
			if !o.ContainsUV(q, 1e-6) {
				t.Fatalf("AnyPoint %v outside %v", q, o)
			}
		}
	}
}

func TestAnyPointReturnsPrefWhenInside(t *testing.T) {
	o := OctFromRect(Rect{ULo: 0, UHi: 10, VLo: 0, VHi: 10}).Close()
	q := o.AnyPoint(UV{U: 4, V: 5})
	if q != (UV{U: 4, V: 5}) {
		t.Errorf("AnyPoint moved interior pref: %v", q)
	}
}

func TestDistOOAgainstSampling(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for i := 0; i < 400; i++ {
		a, b := randomOct(r), randomOct(r)
		want := DistOO(a, b)
		// No sampled pair may be closer than the formula (formula is a lower
		// bound by construction; sampling also checks achievability loosely).
		best := math.Inf(1)
		pa := samplePoints(a, r, 40)
		pb := samplePoints(b, r, 40)
		for _, qa := range pa {
			for _, qb := range pb {
				if d := DistUV(qa, qb); d < best {
					best = d
				}
			}
		}
		if best < want-1e-6*(1+want) {
			t.Fatalf("sampled distance %v below formula %v\na=%v\nb=%v", best, want, a, b)
		}
	}
}

func TestClosestPointsRealizeDistance(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 2000; i++ {
		a, b := randomOct(r), randomOct(r)
		want := DistOO(a, b)
		qa, qb := ClosestPoints(a, b)
		tol := 1e-6 * (1 + want)
		if !a.ContainsUV(qa, tol) {
			t.Fatalf("qa %v outside a %v", qa, a)
		}
		if !b.ContainsUV(qb, tol) {
			t.Fatalf("qb %v outside b %v", qb, b)
		}
		if d := DistUV(qa, qb); math.Abs(d-want) > tol {
			t.Fatalf("closest pair distance %v != %v\na=%v\nb=%v", d, want, a, b)
		}
	}
}

func TestInflateDistanceConsistency(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	for i := 0; i < 1000; i++ {
		a, b := randomOct(r), randomOct(r)
		d := DistOO(a, b)
		if d == 0 {
			continue
		}
		if _, ok := IntersectOct(a.Inflate(d*1.0000001+1e-9), b); !ok {
			t.Fatalf("inflate by distance misses: d=%v\na=%v\nb=%v", d, a, b)
		}
		if _, ok := IntersectOct(a.Inflate(d*0.999), b); ok {
			t.Fatalf("inflate below distance intersects: d=%v", d)
		}
	}
}

func TestSDRMembership(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 800; i++ {
		a, b := randomRect(r), randomRect(r)
		d := DistRR(a, b)
		if d == 0 {
			continue
		}
		eLo := r.Float64() * d
		eHi := eLo + r.Float64()*(d-eLo)
		o := SDR(a, b, d, eLo, eHi)
		if o.IsEmpty() {
			t.Fatalf("empty SDR d=%v", d)
		}
		tol := 1e-6 * (1 + d)
		// Octagon points lie on the SDR: dist sums to d with e in range.
		for _, q := range samplePoints(o, r, 25) {
			ea := DistRP(a, geomUV(q))
			eb := DistRP(b, geomUV(q))
			if ea+eb > d+tol {
				t.Fatalf("SDR point %v has slack sum %v > d %v", q, ea+eb, d)
			}
			if ea < eLo-tol || ea > eHi+tol {
				t.Fatalf("SDR point %v has e=%v outside [%v,%v]", q, ea, eLo, eHi)
			}
		}
		// Conversely every per-split locus lies inside the octagon.
		for j := 0; j < 8; j++ {
			e := eLo + r.Float64()*(eHi-eLo)
			locus := MergeLocus(a, b, e, d-e)
			corners := []UV{
				{locus.ULo, locus.VLo}, {locus.UHi, locus.VLo},
				{locus.ULo, locus.VHi}, {locus.UHi, locus.VHi},
			}
			for _, q := range corners {
				if !o.ContainsUV(q, tol) {
					t.Fatalf("locus corner %v (e=%v) outside SDR %v", q, e, o)
				}
			}
		}
	}
}

// geomUV is the identity; it exists to make the call sites above readable.
func geomUV(q UV) UV { return q }

func TestSDRFullRangeEqualsClassicSDR(t *testing.T) {
	// For two points, the full SDR is the "bounding diamond": every point q
	// with Dist(q,a)+Dist(q,b) = d.
	a := RectFromPoint(Point{0, 0})
	b := RectFromPoint(Point{10, 4})
	d := DistRR(a, b)
	o := SDR(a, b, d, 0, d)
	r := rand.New(rand.NewSource(8))
	for i := 0; i < 300; i++ {
		q := UV{U: r.Float64()*30 - 8, V: r.Float64()*30 - 8}
		in := o.ContainsUV(q, 1e-9)
		sum := DistRP(a, q) + DistRP(b, q)
		if in && sum > d+1e-6 {
			t.Fatalf("octagon point %v not on SDR (sum %v, d %v)", q, sum, d)
		}
		if !in && sum <= d-1e-6 {
			t.Fatalf("SDR point %v missing from octagon (sum %v, d %v)", q, sum, d)
		}
	}
}

func TestDistOPMatchesRectCase(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	for i := 0; i < 500; i++ {
		rect := randomRect(r)
		q := UV{U: (r.Float64() - 0.5) * 2e4, V: (r.Float64() - 0.5) * 2e4}
		want := DistRP(rect, q)
		got := DistOP(OctFromRect(rect), q)
		if math.Abs(got-want) > 1e-9*(1+want) {
			t.Fatalf("DistOP %v != DistRP %v", got, want)
		}
	}
}
