package geom

import (
	"math"
	"math/rand"
	"testing"
)

// TestIntersectOctAgainstMembership: a point is in the intersection iff it
// is in both operands.
func TestIntersectOctAgainstMembership(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for i := 0; i < 800; i++ {
		a, b := randomOct(r), randomOct(r)
		c, ok := IntersectOct(a, b)
		pts := append(samplePoints(a, r, 12), samplePoints(b, r, 12)...)
		if ok {
			pts = append(pts, samplePoints(c, r, 12)...)
		}
		for _, q := range pts {
			inA, inB := a.ContainsUV(q, 1e-9), b.ContainsUV(q, 1e-9)
			inC := ok && c.ContainsUV(q, 1e-6)
			if inA && inB && !inC {
				t.Fatalf("point %v in both operands but not intersection\na=%v\nb=%v\nc=%v", q, a, b, c)
			}
			if inC && (!a.ContainsUV(q, 1e-6) || !b.ContainsUV(q, 1e-6)) {
				t.Fatalf("intersection point %v outside an operand", q)
			}
		}
	}
}

// TestInflateContains: inflating by r covers every point within distance r.
func TestInflateContains(t *testing.T) {
	r := rand.New(rand.NewSource(32))
	for i := 0; i < 600; i++ {
		o := randomOct(r)
		d := r.Float64() * 100
		infl := o.Inflate(d)
		for _, q := range samplePoints(o, r, 8) {
			// Perturb q by up to d in L∞.
			p := UV{
				U: q.U + (r.Float64()*2-1)*d,
				V: q.V + (r.Float64()*2-1)*d,
			}
			if !infl.ContainsUV(p, 1e-6) {
				t.Fatalf("inflate(%v) misses %v at distance ≤ %v", o, p, d)
			}
		}
	}
}

// TestDistTriangleOverOctagons: octagon distance obeys a triangle-style
// relation through sampled points.
func TestDistTriangleOverOctagons(t *testing.T) {
	r := rand.New(rand.NewSource(33))
	for i := 0; i < 500; i++ {
		a, b := randomOct(r), randomOct(r)
		d := DistOO(a, b)
		qa := samplePoints(a, r, 6)
		qb := samplePoints(b, r, 6)
		for j := range qa {
			for k := range qb {
				if got := DistUV(qa[j], qb[k]); got < d-1e-6*(1+d) {
					t.Fatalf("sampled pair closer (%v) than DistOO (%v)", got, d)
				}
			}
		}
	}
}

// TestUnionIsLeastBoundingRect: Union contains both inputs and no smaller
// rectangle does.
func TestUnionIsLeastBoundingRect(t *testing.T) {
	r := rand.New(rand.NewSource(34))
	for i := 0; i < 500; i++ {
		a, b := randomRect(r), randomRect(r)
		u := Union(a, b)
		if !u.ContainsRect(a) || !u.ContainsRect(b) {
			t.Fatal("union misses an input")
		}
		// Each side of u is supported by a or b.
		if u.ULo != math.Min(a.ULo, b.ULo) || u.UHi != math.Max(a.UHi, b.UHi) ||
			u.VLo != math.Min(a.VLo, b.VLo) || u.VHi != math.Max(a.VHi, b.VHi) {
			t.Fatalf("union not tight: %v of %v, %v", u, a, b)
		}
	}
}

// TestSDRShrinksWithWindow: restricting the split window shrinks the SDR.
func TestSDRShrinksWithWindow(t *testing.T) {
	r := rand.New(rand.NewSource(35))
	for i := 0; i < 400; i++ {
		a, b := randomRect(r), randomRect(r)
		d := DistRR(a, b)
		if d == 0 {
			continue
		}
		full := SDR(a, b, d, 0, d)
		lo := r.Float64() * d / 2
		hi := lo + r.Float64()*(d-lo)
		sub := SDR(a, b, d, lo, hi)
		for _, q := range samplePoints(sub, r, 10) {
			if !full.ContainsUV(q, 1e-6*(1+d)) {
				t.Fatalf("restricted SDR point %v escapes the full SDR", q)
			}
		}
	}
}

// TestBoundingBoxCoversCorners: physical bounding box covers every corner.
func TestBoundingBoxCoversCorners(t *testing.T) {
	r := rand.New(rand.NewSource(36))
	for i := 0; i < 300; i++ {
		rect := randomRect(r)
		xmin, ymin, xmax, ymax := rect.BoundingBox()
		for _, p := range rect.Corners() {
			if p.X < xmin-1e-9 || p.X > xmax+1e-9 || p.Y < ymin-1e-9 || p.Y > ymax+1e-9 {
				t.Fatalf("corner %v outside bbox", p)
			}
		}
	}
}
