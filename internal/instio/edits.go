package instio

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"
	"sort"

	"repro/internal/ctree"
	"repro/internal/geom"
)

// Edit operations. An edit script is the instio-level description of an
// engineering change order (ECO): a small batch of sink mutations against a
// previously routed instance, the input of the incremental rebuild path
// (shard.EcoCache.Rebuild).
const (
	// OpMove relocates sink Sink to (X, Y).
	OpMove = "move"
	// OpReload changes sink Sink's load capacitance to CapFF.
	OpReload = "reload"
	// OpAdd creates a new sink at (X, Y) with capacitance CapFF in group
	// Group. Added sinks take ids after the surviving sinks, in script order
	// (Remap.Added reports them).
	OpAdd = "add"
	// OpRemove deletes sink Sink; surviving sinks are renumbered densely
	// (Remap.OldToNew reports the mapping).
	OpRemove = "remove"
)

// Edit is one validated edit. Sink targets a sink of the instance the script
// is applied to (move/reload/remove); Loc, CapFF and Group carry the
// op-specific payload.
type Edit struct {
	Op    string
	Sink  int
	Loc   geom.Point
	CapFF float64
	Group int
}

// EditScript is a parsed, structurally valid edit script. Instance-dependent
// validation (sink ids in range, groups surviving) happens in Apply, which
// is where an instance first appears.
type EditScript struct {
	Name  string
	Edits []Edit
}

// Remap records how Apply renumbered sink identity: OldToNew[old] is the
// edited instance's id of the original sink old, or -1 when it was removed;
// Added lists the new ids of added sinks in script order. With no removals
// OldToNew is the identity and added sinks extend it densely.
type Remap struct {
	OldToNew []int
	Added    []int
}

// jsonEdit is the on-disk edit record. Optional fields are pointers so a
// missing field is distinguishable from an explicit zero: every op requires
// exactly its own payload fields, and a field the op would silently ignore
// is rejected like any other contradictory input.
type jsonEdit struct {
	Op    string   `json:"op"`
	Sink  *int     `json:"sink,omitempty"`
	X     *float64 `json:"x,omitempty"`
	Y     *float64 `json:"y,omitempty"`
	CapFF *float64 `json:"cap_ff,omitempty"`
	Group *int     `json:"group,omitempty"`
}

// jsonEditScript is the on-disk edit-script format.
type jsonEditScript struct {
	Name  string     `json:"name"`
	Edits []jsonEdit `json:"edits"`
}

// WriteEdits serializes an edit script as indented JSON.
func WriteEdits(w io.Writer, sc *EditScript) error {
	if err := checkScript(sc); err != nil {
		return err
	}
	js := jsonEditScript{Name: sc.Name, Edits: make([]jsonEdit, len(sc.Edits))}
	for i, e := range sc.Edits {
		je := jsonEdit{Op: e.Op}
		x, y, cap, sink, group := e.Loc.X, e.Loc.Y, e.CapFF, e.Sink, e.Group
		switch e.Op {
		case OpMove:
			je.Sink, je.X, je.Y = &sink, &x, &y
		case OpReload:
			je.Sink, je.CapFF = &sink, &cap
		case OpAdd:
			je.X, je.Y, je.CapFF, je.Group = &x, &y, &cap, &group
		case OpRemove:
			je.Sink = &sink
		}
		js.Edits[i] = je
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(js)
}

// ReadEdits parses and structurally validates an edit script: known ops
// only, each op carrying exactly its payload fields, finite coordinates and
// positive capacitances, non-negative sink ids, and at most one edit per
// targeted sink (a duplicate is almost certainly a script-generation bug,
// and order-dependent semantics would make dirty-set reasoning fragile).
// Whether a targeted sink exists is checked by Apply, against an instance.
func ReadEdits(r io.Reader) (*EditScript, error) {
	var js jsonEditScript
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&js); err != nil {
		return nil, fmt.Errorf("instio: %w", err)
	}
	if len(js.Edits) == 0 {
		return nil, fmt.Errorf("instio: edit script %q has no edits", js.Name)
	}
	sc := &EditScript{Name: js.Name, Edits: make([]Edit, len(js.Edits))}
	targeted := map[int]bool{}
	for i, je := range js.Edits {
		e := Edit{Op: je.Op}
		need := func(field string, ok bool) error {
			if !ok {
				return fmt.Errorf("instio: edit %d (%s) is missing %q", i, je.Op, field)
			}
			return nil
		}
		refuse := func(field string, present bool) error {
			if present {
				return fmt.Errorf("instio: edit %d (%s) does not take %q", i, je.Op, field)
			}
			return nil
		}
		var checks []error
		switch je.Op {
		case OpMove:
			checks = append(checks, need("sink", je.Sink != nil), need("x", je.X != nil), need("y", je.Y != nil),
				refuse("cap_ff", je.CapFF != nil), refuse("group", je.Group != nil))
		case OpReload:
			checks = append(checks, need("sink", je.Sink != nil), need("cap_ff", je.CapFF != nil),
				refuse("x", je.X != nil), refuse("y", je.Y != nil), refuse("group", je.Group != nil))
		case OpAdd:
			checks = append(checks, need("x", je.X != nil), need("y", je.Y != nil), need("cap_ff", je.CapFF != nil),
				need("group", je.Group != nil), refuse("sink", je.Sink != nil))
		case OpRemove:
			checks = append(checks, need("sink", je.Sink != nil), refuse("x", je.X != nil),
				refuse("y", je.Y != nil), refuse("cap_ff", je.CapFF != nil), refuse("group", je.Group != nil))
		default:
			return nil, fmt.Errorf("instio: edit %d has unknown op %q", i, je.Op)
		}
		for _, err := range checks {
			if err != nil {
				return nil, err
			}
		}
		if je.Sink != nil {
			e.Sink = *je.Sink
		}
		if je.X != nil {
			e.Loc.X = *je.X
		}
		if je.Y != nil {
			e.Loc.Y = *je.Y
		}
		if je.CapFF != nil {
			e.CapFF = *je.CapFF
		}
		if je.Group != nil {
			e.Group = *je.Group
		}
		sc.Edits[i] = e
	}
	if err := checkScript(sc); err != nil {
		return nil, err
	}
	for i, e := range sc.Edits {
		if e.Op != OpAdd {
			if targeted[e.Sink] {
				return nil, fmt.Errorf("instio: edit %d targets sink %d twice", i, e.Sink)
			}
			targeted[e.Sink] = true
		}
	}
	return sc, nil
}

// checkScript applies the instance-independent edit invariants, shared by
// the reader and the writer (a hand-built script must not serialize if the
// reader would refuse it back).
func checkScript(sc *EditScript) error {
	if len(sc.Edits) == 0 {
		return fmt.Errorf("instio: edit script %q has no edits", sc.Name)
	}
	bad := func(f float64) bool { return math.IsNaN(f) || math.IsInf(f, 0) }
	for i, e := range sc.Edits {
		switch e.Op {
		case OpMove, OpAdd:
			if bad(e.Loc.X) || bad(e.Loc.Y) {
				return fmt.Errorf("instio: edit %d (%s) has a non-finite location (%v, %v)", i, e.Op, e.Loc.X, e.Loc.Y)
			}
		case OpReload, OpRemove:
		default:
			return fmt.Errorf("instio: edit %d has unknown op %q", i, e.Op)
		}
		if e.Op == OpReload || e.Op == OpAdd {
			if bad(e.CapFF) || e.CapFF <= 0 {
				return fmt.Errorf("instio: edit %d (%s) has capacitance %v (want finite > 0)", i, e.Op, e.CapFF)
			}
		}
		if e.Op != OpAdd && e.Sink < 0 {
			return fmt.Errorf("instio: edit %d targets negative sink id %d", i, e.Sink)
		}
		if e.Op == OpAdd && e.Group < 0 {
			return fmt.Errorf("instio: edit %d adds into negative group %d", i, e.Group)
		}
	}
	return nil
}

// Apply validates the script against an instance and produces the edited
// instance plus the identity remap. The input is not mutated. Removed sinks
// leave a dense renumbering behind (ctree requires Sink.ID == index); an
// edit set that empties a group is rejected — the routing contract has no
// tree for a groupless instance, so such an ECO forces a full re-spec, not
// an incremental rebuild.
func (sc *EditScript) Apply(in *ctree.Instance) (*ctree.Instance, *Remap, error) {
	// An empty script is a valid no-op ECO (Apply then renumbers nothing);
	// a non-empty script must satisfy the structural invariants first.
	if len(sc.Edits) > 0 {
		if err := checkScript(sc); err != nil {
			return nil, nil, err
		}
	}
	n := len(in.Sinks)
	sinks := append([]ctree.Sink(nil), in.Sinks...)
	removed := make([]bool, n)
	targeted := make([]bool, n)
	adds := 0
	for i, e := range sc.Edits {
		if e.Op != OpAdd {
			if e.Sink < 0 || e.Sink >= n {
				return nil, nil, fmt.Errorf("instio: edit %d targets unknown sink %d (instance has %d)", i, e.Sink, n)
			}
			if targeted[e.Sink] {
				return nil, nil, fmt.Errorf("instio: edit %d targets sink %d twice", i, e.Sink)
			}
			targeted[e.Sink] = true
		}
		switch e.Op {
		case OpMove:
			sinks[e.Sink].Loc = e.Loc
		case OpReload:
			sinks[e.Sink].CapFF = e.CapFF
		case OpRemove:
			removed[e.Sink] = true
		case OpAdd:
			if e.Group < 0 || e.Group >= in.NumGroups {
				return nil, nil, fmt.Errorf("instio: edit %d adds into group %d (instance has %d)", i, e.Group, in.NumGroups)
			}
			adds++
		}
	}
	rm := &Remap{OldToNew: make([]int, n)}
	out := &ctree.Instance{
		Name:      in.Name,
		Source:    in.Source,
		NumGroups: in.NumGroups,
		Sinks:     make([]ctree.Sink, 0, n+adds),
	}
	if sc.Name != "" {
		out.Name = in.Name + "+" + sc.Name
	}
	for old := 0; old < n; old++ {
		if removed[old] {
			rm.OldToNew[old] = -1
			continue
		}
		s := sinks[old]
		s.ID = len(out.Sinks)
		rm.OldToNew[old] = s.ID
		out.Sinks = append(out.Sinks, s)
	}
	for _, e := range sc.Edits {
		if e.Op != OpAdd {
			continue
		}
		id := len(out.Sinks)
		rm.Added = append(rm.Added, id)
		out.Sinks = append(out.Sinks, ctree.Sink{ID: id, Loc: e.Loc, CapFF: e.CapFF, Group: e.Group})
	}
	if err := out.Validate(); err != nil {
		return nil, nil, fmt.Errorf("instio: edited instance invalid: %w", err)
	}
	if err := checkFinite(out); err != nil {
		return nil, nil, err
	}
	return out, rm, nil
}

// LoadEdits reads an edit-script file.
func LoadEdits(path string) (*EditScript, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadEdits(f)
}

// SaveEdits writes an edit-script file.
func SaveEdits(path string, sc *EditScript) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteEdits(f, sc); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Perturb fractions: how a generated ECO splits its edit budget across the
// four ops. Real ECOs are dominated by placement moves, with load changes a
// distant second and cell addition/deletion rare.
const (
	perturbMoveFrac   = 0.70
	perturbReloadFrac = 0.15
	perturbAddFrac    = 0.10
)

// Perturb generates a deterministic seeded edit script editing roughly
// frac·len(Sinks) sinks (at least one edit). The edits are spatially
// clustered — a focal sink is drawn at random and the edits target its
// nearest neighbors — because an engineering change order touches a block,
// not a uniform sample of the die: clustered edits are what leave most of a
// sharded routing's partition clean, which is the workload the incremental
// rebuild path exists for. The op mix is moves-dominated (see the perturb
// fractions above); moved and added sinks land within a die-scaled radius of
// the focal sink. The script is a pure function of (instance, frac, seed).
func Perturb(in *ctree.Instance, frac float64, seed int64) (*EditScript, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	if math.IsNaN(frac) || frac <= 0 || frac > 1 {
		return nil, fmt.Errorf("instio: perturb fraction %v out of (0, 1]", frac)
	}
	n := len(in.Sinks)
	budget := int(frac * float64(n))
	if budget < 1 {
		budget = 1
	}
	rng := rand.New(rand.NewSource(seed))
	focal := in.Sinks[rng.Intn(n)].Loc

	// Rank sinks by Manhattan distance to the focal point, ties by id, and
	// take the budget's worth as the edit neighborhood.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		da, db := geom.Dist(in.Sinks[order[a]].Loc, focal), geom.Dist(in.Sinks[order[b]].Loc, focal)
		if da != db {
			return da < db
		}
		return order[a] < order[b]
	})

	moves := int(perturbMoveFrac * float64(budget))
	reloads := int(perturbReloadFrac * float64(budget))
	adds := int(perturbAddFrac * float64(budget))
	removes := budget - moves - reloads - adds
	if moves == 0 {
		moves, removes = 1, 0 // tiny budgets: a single move is the minimal ECO
	}
	targets := order
	if len(targets) > moves+reloads+removes {
		targets = targets[:moves+reloads+removes]
	}
	// Never remove so much that a group could empty: cap removals at a
	// quarter of the neighborhood and drop them entirely on tiny instances.
	if removes > len(targets)/4 {
		removes = len(targets) / 4
	}

	// The displacement radius scales with the neighborhood, not the die:
	// edits stay inside the block they perturb.
	radius := 0.0
	for _, id := range targets {
		if d := geom.Dist(in.Sinks[id].Loc, focal); d > radius {
			radius = d
		}
	}
	if radius == 0 {
		radius = 1
	}
	jitter := func() geom.Point {
		return geom.Point{
			X: focal.X + (rng.Float64()*2-1)*radius,
			Y: focal.Y + (rng.Float64()*2-1)*radius,
		}
	}

	sc := &EditScript{Name: fmt.Sprintf("perturb-%g-%d", frac, seed)}
	i := 0
	for ; i < moves && i < len(targets); i++ {
		sc.Edits = append(sc.Edits, Edit{Op: OpMove, Sink: targets[i], Loc: jitter()})
	}
	for ; i < moves+reloads && i < len(targets); i++ {
		c := in.Sinks[targets[i]].CapFF
		sc.Edits = append(sc.Edits, Edit{Op: OpReload, Sink: targets[i], CapFF: c * (0.5 + rng.Float64())})
	}
	groupLeft := in.GroupSizes()
	for ; i < moves+reloads+removes && i < len(targets); i++ {
		// A removal that would empty its group invalidates the routing
		// contract outright (Apply rejects it); degrade it to a move.
		if g := in.Sinks[targets[i]].Group; groupLeft[g] > 1 {
			groupLeft[g]--
			sc.Edits = append(sc.Edits, Edit{Op: OpRemove, Sink: targets[i]})
		} else {
			sc.Edits = append(sc.Edits, Edit{Op: OpMove, Sink: targets[i], Loc: jitter()})
		}
	}
	for a := 0; a < adds; a++ {
		near := &in.Sinks[targets[rng.Intn(len(targets))]]
		sc.Edits = append(sc.Edits, Edit{Op: OpAdd, Loc: jitter(), CapFF: near.CapFF, Group: near.Group})
	}
	return sc, nil
}
