package instio

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/geom"
)

// TestReadEditsRejects pins the structural validation of the edit-script
// parser: unknown ops, missing or contradictory payload fields, non-finite
// numbers, negative ids, duplicate targets and empty scripts all die as
// parse errors naming the edit — never as a wrong dirty set three layers
// down.
func TestReadEditsRejects(t *testing.T) {
	cases := map[string]string{
		"unknown op":        `{"edits":[{"op":"swap","sink":0}]}`,
		"empty script":      `{"edits":[]}`,
		"no edits key":      `{"name":"x"}`,
		"move without x":    `{"edits":[{"op":"move","sink":0,"y":1}]}`,
		"move without sink": `{"edits":[{"op":"move","x":1,"y":1}]}`,
		"move with cap":     `{"edits":[{"op":"move","sink":0,"x":1,"y":1,"cap_ff":2}]}`,
		"reload without":    `{"edits":[{"op":"reload","sink":0}]}`,
		"reload with loc":   `{"edits":[{"op":"reload","sink":0,"cap_ff":1,"x":3}]}`,
		"add with sink":     `{"edits":[{"op":"add","sink":0,"x":1,"y":1,"cap_ff":1,"group":0}]}`,
		"add without group": `{"edits":[{"op":"add","x":1,"y":1,"cap_ff":1}]}`,
		"remove with x":     `{"edits":[{"op":"remove","sink":0,"x":1}]}`,
		"inf move":          `{"edits":[{"op":"move","sink":0,"x":1e999,"y":0}]}`,
		"zero cap":          `{"edits":[{"op":"reload","sink":0,"cap_ff":0}]}`,
		"negative cap":      `{"edits":[{"op":"add","x":1,"y":1,"cap_ff":-2,"group":0}]}`,
		"negative sink":     `{"edits":[{"op":"remove","sink":-1}]}`,
		"negative group":    `{"edits":[{"op":"add","x":1,"y":1,"cap_ff":1,"group":-1}]}`,
		"duplicate target":  `{"edits":[{"op":"move","sink":3,"x":1,"y":1},{"op":"remove","sink":3}]}`,
		"unknown field":     `{"edits":[{"op":"remove","sink":0,"why":"because"}]}`,
	}
	for name, c := range cases {
		if _, err := ReadEdits(strings.NewReader(c)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestEditsRoundTrip: a valid script survives write→read unchanged, and a
// hand-built script the reader would refuse does not serialize.
func TestEditsRoundTrip(t *testing.T) {
	sc := &EditScript{Name: "rt", Edits: []Edit{
		{Op: OpMove, Sink: 2, Loc: geom.Point{X: 4.5, Y: -1}},
		{Op: OpReload, Sink: 0, CapFF: 2.25},
		{Op: OpRemove, Sink: 1},
		{Op: OpAdd, Loc: geom.Point{X: 0, Y: 9}, CapFF: 1.5, Group: 1},
	}}
	var buf bytes.Buffer
	if err := WriteEdits(&buf, sc); err != nil {
		t.Fatal(err)
	}
	again, err := ReadEdits(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if again.Name != sc.Name || len(again.Edits) != len(sc.Edits) {
		t.Fatalf("round trip changed the script: %+v", again)
	}
	for i := range sc.Edits {
		if again.Edits[i] != sc.Edits[i] {
			t.Errorf("edit %d changed: %+v vs %+v", i, again.Edits[i], sc.Edits[i])
		}
	}
	buf.Reset()
	if err := WriteEdits(&buf, &EditScript{Edits: []Edit{{Op: OpReload, Sink: 0, CapFF: -1}}}); err == nil {
		t.Error("invalid script serialized")
	}
}

// TestApplyRenumbers pins the remap contract: removals leave a dense
// renumbering, additions extend it, payloads land on the right sinks, and
// the input instance is never mutated.
func TestApplyRenumbers(t *testing.T) {
	in := bench.Intermingled(bench.Small(6, 3), 2, 11)
	before := in.Sinks[0].CapFF
	sc := &EditScript{Name: "eco", Edits: []Edit{
		{Op: OpRemove, Sink: 2},
		{Op: OpMove, Sink: 4, Loc: geom.Point{X: 100, Y: 200}},
		{Op: OpReload, Sink: 0, CapFF: 7},
		{Op: OpAdd, Loc: geom.Point{X: 3, Y: 3}, CapFF: 2, Group: 1},
		{Op: OpAdd, Loc: geom.Point{X: 4, Y: 4}, CapFF: 3, Group: 0},
	}}
	out, rm, err := sc.Apply(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Sinks) != 7 {
		t.Fatalf("edited instance has %d sinks, want 7", len(out.Sinks))
	}
	want := []int{0, 1, -1, 2, 3, 4}
	for old, ns := range rm.OldToNew {
		if ns != want[old] {
			t.Errorf("OldToNew[%d] = %d, want %d", old, ns, want[old])
		}
	}
	if len(rm.Added) != 2 || rm.Added[0] != 5 || rm.Added[1] != 6 {
		t.Errorf("Added = %v, want [5 6]", rm.Added)
	}
	for i, s := range out.Sinks {
		if s.ID != i {
			t.Errorf("sink %d carries id %d", i, s.ID)
		}
	}
	if out.Sinks[3].Loc != (geom.Point{X: 100, Y: 200}) {
		t.Errorf("move lost after renumbering: %+v", out.Sinks[3])
	}
	if out.Sinks[0].CapFF != 7 {
		t.Errorf("reload lost: %+v", out.Sinks[0])
	}
	if out.Sinks[5].Group != 1 || out.Sinks[6].CapFF != 3 {
		t.Errorf("adds wrong: %+v %+v", out.Sinks[5], out.Sinks[6])
	}
	if out.Name != in.Name+"+eco" {
		t.Errorf("edited name %q", out.Name)
	}
	if in.Sinks[0].CapFF != before || len(in.Sinks) != 6 {
		t.Error("Apply mutated its input")
	}
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}

	// The empty script is a valid no-op ECO: identity remap, equal sinks.
	noop, nrm, err := (&EditScript{}).Apply(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(noop.Sinks) != len(in.Sinks) || len(nrm.Added) != 0 {
		t.Fatalf("noop apply changed the instance")
	}
	for old, ns := range nrm.OldToNew {
		if ns != old {
			t.Fatalf("noop remap not identity at %d: %d", old, ns)
		}
	}
}

// TestApplyRejects covers the instance-dependent failures: unknown sinks,
// out-of-range groups, and the edit set that empties a group (the routing
// contract has no tree for a groupless instance).
func TestApplyRejects(t *testing.T) {
	in := bench.Intermingled(bench.Small(6, 3), 3, 11)
	if _, _, err := (&EditScript{Edits: []Edit{{Op: OpMove, Sink: 6, Loc: geom.Point{X: 1, Y: 1}}}}).Apply(in); err == nil {
		t.Error("unknown sink accepted")
	}
	if _, _, err := (&EditScript{Edits: []Edit{{Op: OpAdd, Loc: geom.Point{X: 1, Y: 1}, CapFF: 1, Group: 3}}}).Apply(in); err == nil {
		t.Error("out-of-range group accepted")
	}
	// Remove every sink of one group.
	var empty []Edit
	for _, s := range in.Sinks {
		if s.Group == 1 {
			empty = append(empty, Edit{Op: OpRemove, Sink: s.ID})
		}
	}
	if _, _, err := (&EditScript{Edits: empty}).Apply(in); err == nil {
		t.Error("emptied group accepted")
	}
}

// TestPerturbDeterministic pins the benchmark generator: the script is a
// pure function of (instance, frac, seed), applies cleanly, serializes, and
// scales with the fraction.
func TestPerturbDeterministic(t *testing.T) {
	in := bench.Intermingled(bench.Small(500, 7), 4, 13)
	a, err := Perturb(in, 0.02, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Perturb(in, 0.02, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Edits) != len(b.Edits) {
		t.Fatalf("same seed produced %d and %d edits", len(a.Edits), len(b.Edits))
	}
	for i := range a.Edits {
		if a.Edits[i] != b.Edits[i] {
			t.Fatalf("same seed diverged at edit %d: %+v vs %+v", i, a.Edits[i], b.Edits[i])
		}
	}
	if c, _ := Perturb(in, 0.02, 43); c != nil && len(c.Edits) == len(a.Edits) {
		same := true
		for i := range c.Edits {
			if c.Edits[i] != a.Edits[i] {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical scripts")
		}
	}
	if want := int(0.02 * 500); len(a.Edits) < want/2 || len(a.Edits) > 2*want {
		t.Errorf("budget: %d edits for frac 0.02 of 500 sinks", len(a.Edits))
	}
	if _, _, err := a.Apply(in); err != nil {
		t.Fatalf("perturb script does not apply: %v", err)
	}
	var buf bytes.Buffer
	if err := WriteEdits(&buf, a); err != nil {
		t.Fatalf("perturb script does not serialize: %v", err)
	}
	if _, err := ReadEdits(&buf); err != nil {
		t.Fatalf("perturb script does not re-read: %v", err)
	}
	// The minimal ECO: a tiny fraction still produces at least one edit.
	tiny, err := Perturb(in, 1e-9, 1)
	if err != nil || len(tiny.Edits) == 0 {
		t.Fatalf("tiny fraction: %v, %d edits", err, len(tiny.Edits))
	}
	if _, err := Perturb(in, 0, 1); err == nil {
		t.Error("zero fraction accepted")
	}
	if _, err := Perturb(in, 1.5, 1); err == nil {
		t.Error("fraction above 1 accepted")
	}
}

// FuzzReadEdits asserts the edit-script parser never panics on arbitrary
// input, that anything it accepts survives a write→read round trip
// unchanged, and that applying an accepted script to an instance fails
// cleanly or produces a valid edited instance — never a panic.
func FuzzReadEdits(f *testing.F) {
	in := bench.Intermingled(bench.Small(12, 4), 2, 7)
	seed, err := Perturb(in, 0.4, 3)
	if err != nil {
		f.Fatal(err)
	}
	var seedBuf bytes.Buffer
	if err := WriteEdits(&seedBuf, seed); err != nil {
		f.Fatal(err)
	}
	f.Add(seedBuf.String())
	f.Add(`{"name":"s","edits":[{"op":"move","sink":0,"x":1,"y":2}]}`)
	f.Add(`{"edits":[{"op":"add","x":0,"y":0,"cap_ff":1,"group":0}]}`)
	f.Add(`{"edits":[{"op":"remove","sink":11}]}`)
	f.Add(`{"edits":[{}]}`)
	f.Fuzz(func(t *testing.T, data string) {
		sc, err := ReadEdits(strings.NewReader(data)) // must never panic
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteEdits(&buf, sc); err != nil {
			t.Fatalf("accepted script fails to write: %v", err)
		}
		again, err := ReadEdits(&buf)
		if err != nil {
			t.Fatalf("written script fails to re-read: %v", err)
		}
		if again.Name != sc.Name || len(again.Edits) != len(sc.Edits) {
			t.Fatal("round trip changed the script header")
		}
		for i := range sc.Edits {
			if again.Edits[i] != sc.Edits[i] {
				t.Fatalf("round trip changed edit %d: %+v vs %+v", i, again.Edits[i], sc.Edits[i])
			}
		}
		out, rm, err := sc.Apply(in) // must never panic; errors are fine
		if err != nil {
			return
		}
		if err := out.Validate(); err != nil {
			t.Fatalf("accepted apply produced invalid instance: %v", err)
		}
		if len(rm.OldToNew) != len(in.Sinks) {
			t.Fatalf("remap covers %d of %d sinks", len(rm.OldToNew), len(in.Sinks))
		}
	})
}
