// Package instio serializes clock routing instances and routing results as
// JSON, the interchange format of the cmd/ tools (instancegen → astdme →
// drawtree).
package instio

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"

	"repro/internal/ctree"
	"repro/internal/geom"
)

// jsonSink mirrors ctree.Sink with stable field names. ID is optional on
// input: when any sink carries one, all must, and together they must form a
// permutation of 0..n-1 — the file then pins each sink's identity explicitly
// and ReadInstance orders sinks by it. Files without ids take positional
// identity (sink i gets ID i), which is also what WriteInstance emits.
type jsonSink struct {
	ID    *int    `json:"id,omitempty"`
	X     float64 `json:"x"`
	Y     float64 `json:"y"`
	CapFF float64 `json:"cap_ff"`
	Group int     `json:"group"`
}

// jsonInstance is the on-disk instance format.
type jsonInstance struct {
	Name      string     `json:"name"`
	SourceX   float64    `json:"source_x"`
	SourceY   float64    `json:"source_y"`
	NumGroups int        `json:"num_groups"`
	Sinks     []jsonSink `json:"sinks"`
}

// checkFinite rejects NaN and ±Inf coordinates at the boundary: every
// geometric routine downstream assumes finite arithmetic, and a NaN that
// slips in surfaces later as an inexplicable empty merging region rather
// than a parse error naming the sink.
func checkFinite(in *ctree.Instance) error {
	bad := func(f float64) bool { return math.IsNaN(f) || math.IsInf(f, 0) }
	if bad(in.Source.X) || bad(in.Source.Y) {
		return fmt.Errorf("instio: non-finite source location (%v, %v)", in.Source.X, in.Source.Y)
	}
	for i := range in.Sinks {
		s := &in.Sinks[i]
		if bad(s.Loc.X) || bad(s.Loc.Y) {
			return fmt.Errorf("instio: sink %d has a non-finite location (%v, %v)", s.ID, s.Loc.X, s.Loc.Y)
		}
		if bad(s.CapFF) {
			return fmt.Errorf("instio: sink %d has a non-finite capacitance %v", s.ID, s.CapFF)
		}
	}
	return nil
}

// WriteInstance serializes an instance as indented JSON.
func WriteInstance(w io.Writer, in *ctree.Instance) error {
	if err := in.Validate(); err != nil {
		return err
	}
	if err := checkFinite(in); err != nil {
		return err
	}
	ji := jsonInstance{
		Name:      in.Name,
		SourceX:   in.Source.X,
		SourceY:   in.Source.Y,
		NumGroups: in.NumGroups,
		Sinks:     make([]jsonSink, len(in.Sinks)),
	}
	for i, s := range in.Sinks {
		ji.Sinks[i] = jsonSink{X: s.Loc.X, Y: s.Loc.Y, CapFF: s.CapFF, Group: s.Group}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(ji)
}

// ReadInstance parses and validates an instance: structural validation
// (ctree.Instance.Validate — non-empty, coherent groups), finite
// coordinates, and — when the file carries explicit sink ids — id
// uniqueness and completeness, with sinks reordered into id order.
func ReadInstance(r io.Reader) (*ctree.Instance, error) {
	var ji jsonInstance
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&ji); err != nil {
		return nil, fmt.Errorf("instio: %w", err)
	}
	if len(ji.Sinks) == 0 {
		return nil, fmt.Errorf("instio: instance %q has no sinks", ji.Name)
	}
	in := &ctree.Instance{
		Name:      ji.Name,
		Source:    geom.Point{X: ji.SourceX, Y: ji.SourceY},
		NumGroups: ji.NumGroups,
		Sinks:     make([]ctree.Sink, len(ji.Sinks)),
	}
	withID := 0
	for _, s := range ji.Sinks {
		if s.ID != nil {
			withID++
		}
	}
	if withID > 0 && withID < len(ji.Sinks) {
		return nil, fmt.Errorf("instio: %d of %d sinks carry an explicit id; ids are all-or-nothing", withID, len(ji.Sinks))
	}
	seen := make([]bool, len(ji.Sinks))
	for i, s := range ji.Sinks {
		id := i
		if withID > 0 {
			id = *s.ID
			if id < 0 || id >= len(ji.Sinks) {
				return nil, fmt.Errorf("instio: sink id %d out of range [0, %d)", id, len(ji.Sinks))
			}
		}
		if seen[id] {
			return nil, fmt.Errorf("instio: duplicate sink id %d", id)
		}
		seen[id] = true
		in.Sinks[id] = ctree.Sink{
			ID:    id,
			Loc:   geom.Point{X: s.X, Y: s.Y},
			CapFF: s.CapFF,
			Group: s.Group,
		}
	}
	if err := in.Validate(); err != nil {
		return nil, fmt.Errorf("instio: %w", err)
	}
	if err := checkFinite(in); err != nil {
		return nil, err
	}
	return in, nil
}

// LoadInstance reads an instance file.
func LoadInstance(path string) (*ctree.Instance, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadInstance(f)
}

// SaveInstance writes an instance file.
func SaveInstance(path string, in *ctree.Instance) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteInstance(f, in); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
