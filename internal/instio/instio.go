// Package instio serializes clock routing instances and routing results as
// JSON, the interchange format of the cmd/ tools (instancegen → astdme →
// drawtree).
package instio

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"repro/internal/ctree"
	"repro/internal/geom"
)

// jsonSink mirrors ctree.Sink with stable field names.
type jsonSink struct {
	X     float64 `json:"x"`
	Y     float64 `json:"y"`
	CapFF float64 `json:"cap_ff"`
	Group int     `json:"group"`
}

// jsonInstance is the on-disk instance format.
type jsonInstance struct {
	Name      string     `json:"name"`
	SourceX   float64    `json:"source_x"`
	SourceY   float64    `json:"source_y"`
	NumGroups int        `json:"num_groups"`
	Sinks     []jsonSink `json:"sinks"`
}

// WriteInstance serializes an instance as indented JSON.
func WriteInstance(w io.Writer, in *ctree.Instance) error {
	if err := in.Validate(); err != nil {
		return err
	}
	ji := jsonInstance{
		Name:      in.Name,
		SourceX:   in.Source.X,
		SourceY:   in.Source.Y,
		NumGroups: in.NumGroups,
		Sinks:     make([]jsonSink, len(in.Sinks)),
	}
	for i, s := range in.Sinks {
		ji.Sinks[i] = jsonSink{X: s.Loc.X, Y: s.Loc.Y, CapFF: s.CapFF, Group: s.Group}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(ji)
}

// ReadInstance parses and validates an instance.
func ReadInstance(r io.Reader) (*ctree.Instance, error) {
	var ji jsonInstance
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&ji); err != nil {
		return nil, fmt.Errorf("instio: %w", err)
	}
	in := &ctree.Instance{
		Name:      ji.Name,
		Source:    geom.Point{X: ji.SourceX, Y: ji.SourceY},
		NumGroups: ji.NumGroups,
		Sinks:     make([]ctree.Sink, len(ji.Sinks)),
	}
	for i, s := range ji.Sinks {
		in.Sinks[i] = ctree.Sink{
			ID:    i,
			Loc:   geom.Point{X: s.X, Y: s.Y},
			CapFF: s.CapFF,
			Group: s.Group,
		}
	}
	if err := in.Validate(); err != nil {
		return nil, fmt.Errorf("instio: %w", err)
	}
	return in, nil
}

// LoadInstance reads an instance file.
func LoadInstance(path string) (*ctree.Instance, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadInstance(f)
}

// SaveInstance writes an instance file.
func SaveInstance(path string, in *ctree.Instance) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteInstance(f, in); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
