package instio

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/bench"
)

func TestRoundTrip(t *testing.T) {
	in := bench.Intermingled(bench.Small(40, 9), 4, 3)
	var buf bytes.Buffer
	if err := WriteInstance(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadInstance(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if out.Name != in.Name || out.NumGroups != in.NumGroups || out.Source != in.Source {
		t.Errorf("header mismatch: %+v vs %+v", out, in)
	}
	if len(out.Sinks) != len(in.Sinks) {
		t.Fatalf("sink count mismatch")
	}
	for i := range in.Sinks {
		if out.Sinks[i] != in.Sinks[i] {
			t.Errorf("sink %d mismatch: %+v vs %+v", i, out.Sinks[i], in.Sinks[i])
		}
	}
}

func TestFileRoundTrip(t *testing.T) {
	in := bench.Small(10, 1)
	path := filepath.Join(t.TempDir(), "inst.json")
	if err := SaveInstance(path, in); err != nil {
		t.Fatal(err)
	}
	out, err := LoadInstance(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Sinks) != 10 {
		t.Errorf("loaded %d sinks", len(out.Sinks))
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	cases := []string{
		`not json`,
		`{"name":"x","num_groups":0,"sinks":[]}`,
		`{"name":"x","num_groups":1,"sinks":[{"x":0,"y":0,"cap_ff":1,"group":5}]}`,
		`{"unknown_field":1}`,
	}
	for _, c := range cases {
		if _, err := ReadInstance(strings.NewReader(c)); err == nil {
			t.Errorf("accepted %q", c)
		}
	}
}

func TestWriteRejectsInvalid(t *testing.T) {
	in := bench.Small(5, 1)
	in.NumGroups = 0
	var buf bytes.Buffer
	if err := WriteInstance(&buf, in); err == nil {
		t.Error("invalid instance written")
	}
}
