package instio

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/bench"
)

// TestReadRejectsNonFinite pins the boundary checks added for remote
// dispatch: NaN/Inf must die as a parse error naming the field, not as an
// empty merging region three layers down.
func TestReadRejectsNonFinite(t *testing.T) {
	cases := map[string]string{
		"inf sink x":   `{"name":"x","source_x":0,"source_y":0,"num_groups":1,"sinks":[{"x":-1e999,"y":0,"cap_ff":1,"group":0}]}`,
		"inf source":   `{"name":"x","source_x":1e999,"source_y":0,"num_groups":1,"sinks":[{"x":0,"y":0,"cap_ff":1,"group":0}]}`,
		"huge exp cap": `{"name":"x","source_x":0,"source_y":0,"num_groups":1,"sinks":[{"x":0,"y":0,"cap_ff":1e999,"group":0}]}`,
	}
	for name, c := range cases {
		if _, err := ReadInstance(strings.NewReader(c)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	// Non-finite values that survive JSON parsing (encoding/json rejects
	// bare NaN/Infinity literals, but a loaded instance can still be
	// mutated) are caught on write too.
	in := bench.Small(5, 1)
	in.Sinks[2].CapFF = math.NaN()
	var buf bytes.Buffer
	if err := WriteInstance(&buf, in); err == nil || !strings.Contains(err.Error(), "non-finite") {
		t.Errorf("NaN cap written: %v", err)
	}
	in = bench.Small(5, 1)
	in.Source.X = math.Inf(1)
	buf.Reset()
	if err := WriteInstance(&buf, in); err == nil || !strings.Contains(err.Error(), "non-finite") {
		t.Errorf("Inf source written: %v", err)
	}
}

func TestReadRejectsEmptyInstance(t *testing.T) {
	_, err := ReadInstance(strings.NewReader(`{"name":"empty","num_groups":1,"sinks":[]}`))
	if err == nil || !strings.Contains(err.Error(), "no sinks") {
		t.Fatalf("empty instance: %v", err)
	}
}

func TestReadSinkIDs(t *testing.T) {
	base := `{"name":"x","source_x":0,"source_y":0,"num_groups":1,"sinks":[%s]}`
	read := func(sinks string) error {
		_, err := ReadInstance(strings.NewReader(strings.Replace(base, "%s", sinks, 1)))
		return err
	}
	if err := read(`{"id":1,"x":1,"y":0,"cap_ff":1,"group":0},{"id":0,"x":2,"y":0,"cap_ff":1,"group":0}`); err != nil {
		t.Errorf("valid permuted ids rejected: %v", err)
	}
	// Reordering: the sink with id 0 must land in slot 0.
	in, err := ReadInstance(strings.NewReader(strings.Replace(base,
		"%s", `{"id":1,"x":1,"y":0,"cap_ff":1,"group":0},{"id":0,"x":2,"y":0,"cap_ff":1,"group":0}`, 1)))
	if err != nil {
		t.Fatal(err)
	}
	if in.Sinks[0].Loc.X != 2 || in.Sinks[1].Loc.X != 1 {
		t.Errorf("sinks not reordered by id: %+v", in.Sinks)
	}
	if err := read(`{"id":0,"x":1,"y":0,"cap_ff":1,"group":0},{"id":0,"x":2,"y":0,"cap_ff":1,"group":0}`); err == nil ||
		!strings.Contains(err.Error(), "duplicate sink id") {
		t.Errorf("duplicate id: %v", err)
	}
	if err := read(`{"id":0,"x":1,"y":0,"cap_ff":1,"group":0},{"id":5,"x":2,"y":0,"cap_ff":1,"group":0}`); err == nil ||
		!strings.Contains(err.Error(), "out of range") {
		t.Errorf("out-of-range id: %v", err)
	}
	if err := read(`{"id":0,"x":1,"y":0,"cap_ff":1,"group":0},{"x":2,"y":0,"cap_ff":1,"group":0}`); err == nil ||
		!strings.Contains(err.Error(), "all-or-nothing") {
		t.Errorf("partial ids: %v", err)
	}
	if err := read(`{"id":-1,"x":1,"y":0,"cap_ff":1,"group":0},{"id":0,"x":2,"y":0,"cap_ff":1,"group":0}`); err == nil {
		t.Error("negative id accepted")
	}
}

// FuzzReadInstance asserts the loader never panics on arbitrary input, and
// that anything it accepts survives a write→read round trip unchanged —
// the property remote dispatch leans on when instances cross processes.
func FuzzReadInstance(f *testing.F) {
	var seedBuf bytes.Buffer
	if err := WriteInstance(&seedBuf, bench.Intermingled(bench.Small(12, 4), 2, 7)); err != nil {
		f.Fatal(err)
	}
	f.Add(seedBuf.String())
	f.Add(`{"name":"x","source_x":0,"source_y":0,"num_groups":1,"sinks":[{"x":0,"y":0,"cap_ff":1,"group":0}]}`)
	f.Add(`{"name":"x","num_groups":1,"sinks":[{"id":0,"x":null,"y":0,"cap_ff":1,"group":0}]}`)
	f.Add(`{"sinks":[{}]}`)
	f.Fuzz(func(t *testing.T, data string) {
		in, err := ReadInstance(strings.NewReader(data)) // must never panic
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteInstance(&buf, in); err != nil {
			t.Fatalf("accepted instance fails to write: %v", err)
		}
		again, err := ReadInstance(&buf)
		if err != nil {
			t.Fatalf("written instance fails to re-read: %v", err)
		}
		if again.Name != in.Name || again.Source != in.Source || again.NumGroups != in.NumGroups ||
			len(again.Sinks) != len(in.Sinks) {
			t.Fatal("round trip changed the instance header")
		}
		for i := range in.Sinks {
			if again.Sinks[i] != in.Sinks[i] {
				t.Fatalf("round trip changed sink %d: %+v vs %+v", i, again.Sinks[i], in.Sinks[i])
			}
		}
	})
}
