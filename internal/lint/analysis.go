// Package lint is dmevet's static-analysis suite: a set of analyzers that
// enforce the repo's determinism contract at the call site, before a
// violation can reach a differential test. Every load-bearing guarantee in
// this codebase — parallel merge waves, sharded builds, remote dispatch over
// internal/wire, ECO rebuilds — rests on the invariant that a sub-build is a
// pure function of its inputs and any re-execution is bitwise-identical.
// The analyzers encode the ways that invariant is silently broken in Go:
// map iteration order (maprange), wall-clock reads (wallclock), the shared
// global math/rand source (seededrand), text-formatted floats on the wire
// (rawfloat), and unprotected goroutines (goprotect).
//
// The framework mirrors the golang.org/x/tools/go/analysis API shape
// (Analyzer / Pass / Diagnostic, an analysistest-style fixture harness with
// "// want" expectations) but is self-contained on the standard library:
// packages are loaded via `go list -export` and type-checked with the
// stdlib gc importer, so the suite builds offline with zero dependencies.
// Swapping the vendored shim for the real x/tools framework is a mechanical
// change if the dependency ever becomes available.
//
// Intentional findings are suppressed with an annotation on the offending
// line (or the line directly above):
//
//	//lint:nondet-ok <reason>
//
// The reason is mandatory: an annotation without one does not suppress.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one determinism rule and how to check it.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics.
	Name string
	// Doc is the one-paragraph rule statement.
	Doc string
	// Scope restricts the analyzer to packages whose import path matches
	// one of these suffixes (path == s or path ends with "/"+s). A nil
	// Scope means every package.
	Scope []string
	// IncludeTests extends the analyzer to _test.go files. Analyzers that
	// guard build results leave this false: tests are the dynamic
	// enforcement layer and may legitimately iterate maps or read clocks.
	IncludeTests bool
	// Run reports findings on one package via pass.Reportf.
	Run func(*Pass)
}

// A Diagnostic is one finding, position-resolved.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// A Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	// PkgPath is the effective import path used for scope matching (test
	// variants report the path of the package under test).
	PkgPath string

	diags []Diagnostic
	notes map[string]map[int]string // filename -> line -> annotation reason
}

// AnnotationMarker is the suppression directive prefix, without "//".
const AnnotationMarker = "lint:nondet-ok"

// newPass builds a Pass and indexes //lint:nondet-ok annotations.
func newPass(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, path string) *Pass {
	p := &Pass{Analyzer: a, Fset: fset, Files: files, Pkg: pkg, Info: info, PkgPath: path,
		notes: make(map[string]map[int]string)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//"+AnnotationMarker)
				if !ok {
					continue
				}
				if text != "" && text[0] != ' ' && text[0] != '\t' {
					continue // a different directive, e.g. lint:nondet-okay
				}
				pos := fset.Position(c.Pos())
				byLine := p.notes[pos.Filename]
				if byLine == nil {
					byLine = make(map[int]string)
					p.notes[pos.Filename] = byLine
				}
				byLine[pos.Line] = strings.TrimSpace(text)
			}
		}
	}
	return p
}

// Reportf records a finding unless the offending line (or the line directly
// above it) carries a reasoned //lint:nondet-ok annotation. An annotation
// without a reason does not suppress; the finding is reported with a note.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	at := p.Fset.Position(pos)
	if byLine, ok := p.notes[at.Filename]; ok {
		for _, line := range []int{at.Line, at.Line - 1} {
			reason, ok := byLine[line]
			if !ok {
				continue
			}
			if reason != "" {
				return // suppressed, with a recorded reason
			}
			p.diags = append(p.diags, Diagnostic{Pos: at, Analyzer: p.Analyzer.Name,
				Message: fmt.Sprintf(format, args...) + " (the lint:nondet-ok annotation is missing its reason)"})
			return
		}
	}
	p.diags = append(p.diags, Diagnostic{Pos: at, Analyzer: p.Analyzer.Name,
		Message: fmt.Sprintf(format, args...)})
}

// DeterministicPackages are the packages bound by the bitwise-determinism
// contract: everything that computes, encodes, or orders build results.
var DeterministicPackages = []string{
	"internal/core",
	"internal/shard",
	"internal/wire",
	"internal/ctree",
	"internal/rctree",
	"internal/order",
	"internal/spatial",
	"internal/stitch",
	"internal/instio",
}

// Suite returns the dmevet analyzers in reporting order.
func Suite() []*Analyzer {
	return []*Analyzer{MapRange, WallClock, SeededRand, RawFloat, GoProtect}
}

// inScope reports whether pkgPath matches the scope suffix list.
func inScope(scope []string, pkgPath string) bool {
	if len(scope) == 0 {
		return true
	}
	for _, s := range scope {
		if pkgPath == s || strings.HasSuffix(pkgPath, "/"+s) {
			return true
		}
	}
	return false
}

// RunUnits applies every analyzer to every unit it scopes to and returns
// the findings sorted by position. Analyzers with IncludeTests run on the
// test-augmented variant of a package when one exists (it contains the base
// files too) plus any external _test package; the rest run on base units
// only, so test files never reach them.
func RunUnits(units []*Unit, analyzers []*Analyzer) []Diagnostic {
	hasTestVariant := make(map[string]bool)
	for _, u := range units {
		if u.Kind == UnitTest {
			hasTestVariant[u.Path] = true
		}
	}
	var diags []Diagnostic
	for _, a := range analyzers {
		for _, u := range units {
			switch u.Kind {
			case UnitBase:
				if a.IncludeTests && hasTestVariant[u.Path] {
					continue // the test variant supersedes the base files
				}
			case UnitTest, UnitXTest:
				if !a.IncludeTests {
					continue
				}
			}
			if !inScope(a.Scope, u.Path) {
				continue
			}
			pass := newPass(a, u.Fset, u.Files, u.Pkg, u.Info, u.Path)
			a.Run(pass)
			diags = append(diags, pass.diags...)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

// unparen strips any number of enclosing parentheses.
func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// calleeFunc resolves the called function or method of a call expression,
// or nil for builtins, conversions, and indirect calls through variables.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// isPkgFunc reports whether fn is the package-level function pkgPath.name
// (receiver-less, so methods on package types never match).
func isPkgFunc(fn *types.Func, pkgPath, name string) bool {
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != pkgPath || fn.Name() != name {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}
