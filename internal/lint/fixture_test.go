package lint

// The analysistest-style fixture harness: each analyzer is run over a
// self-contained package under testdata/src/<fixture>/ whose source carries
// expectations as trailing comments:
//
//	time.Now() // want "call to time.Now"
//
// The quoted string is a regexp matched against diagnostics reported on
// that line. Every want must be matched by a diagnostic and every
// diagnostic by a want, so each fixture pins both directions: the analyzer
// catches the violation, and it stays quiet on the sanctioned idioms and
// reasoned //lint:nondet-ok suppressions around it.

import (
	"go/ast"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

var wantRe = regexp.MustCompile("// want (\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`)")

// loadFixture parses and type-checks testdata/src/<fixture> as package
// pkgPath, resolving imports (stdlib and repro/...) through go list export
// data.
func loadFixture(t *testing.T, fixture, pkgPath string) *Unit {
	t.Helper()
	dir := filepath.Join("testdata", "src", fixture)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading fixture dir: %v", err)
	}
	var names []string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	if len(names) == 0 {
		t.Fatalf("fixture %s has no .go files", fixture)
	}
	// Resolve the fixture's imports to export data via the go command. The
	// fixture is not part of the module's package graph (testdata is
	// invisible to go list), so its imports are listed explicitly.
	fset := token.NewFileSet()
	seen := map[string]bool{}
	var imports []string
	for _, name := range names {
		f, err := parseOnly(fset, filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("parsing fixture: %v", err)
		}
		for _, imp := range f.Imports {
			path, _ := strconv.Unquote(imp.Path.Value)
			if path != "" && !seen[path] {
				seen[path] = true
				imports = append(imports, path)
			}
		}
	}
	exports := map[string]string{}
	if len(imports) > 0 {
		units, err := listExports(".", imports)
		if err != nil {
			t.Fatalf("resolving fixture imports: %v", err)
		}
		exports = units
	}
	u, err := typeCheck(token.NewFileSet(), pkgPath, dir, names, exports, nil)
	if err != nil {
		t.Fatalf("type-checking fixture %s: %v", fixture, err)
	}
	return u
}

// runFixture applies the analyzer to the fixture package and diffs its
// diagnostics against the // want expectations.
func runFixture(t *testing.T, a *Analyzer, fixture string) {
	t.Helper()
	u := loadFixture(t, fixture, "repro/fixture/"+fixture)
	pass := newPass(a, u.Fset, u.Files, u.Pkg, u.Info, u.Path)
	a.Run(pass)

	type want struct {
		file string
		line int
		re   *regexp.Regexp
		hit  bool
	}
	var wants []*want
	for _, f := range u.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				for _, m := range wantRe.FindAllStringSubmatch(c.Text, -1) {
					pat, err := strconv.Unquote(m[1])
					if err != nil {
						t.Fatalf("bad want pattern %s: %v", m[1], err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("bad want regexp %q: %v", pat, err)
					}
					pos := u.Fset.Position(c.Pos())
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	for _, d := range pass.diags {
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic at %s:%d: %s", filepath.Base(d.Pos.Filename), d.Pos.Line, d.Message)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("no diagnostic at %s:%d matching %q", filepath.Base(w.file), w.line, w.re)
		}
	}
}

// parseOnly parses one file without type-checking (for import discovery).
func parseOnly(fset *token.FileSet, path string) (*ast.File, error) {
	return parseFixtureFile(fset, path)
}

func TestMapRangeFixture(t *testing.T)   { runFixture(t, MapRange, "maprange") }
func TestWallClockFixture(t *testing.T)  { runFixture(t, WallClock, "wallclock") }
func TestSeededRandFixture(t *testing.T) { runFixture(t, SeededRand, "seededrand") }
func TestRawFloatFixture(t *testing.T)   { runFixture(t, RawFloat, "rawfloat") }
func TestGoProtectFixture(t *testing.T)  { runFixture(t, GoProtect, "goprotect") }
