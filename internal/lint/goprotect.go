package lint

import (
	"go/ast"
	"go/types"
)

// GoProtect requires every goroutine spawned in internal/dispatch,
// internal/shard and internal/order to route panics back to the caller
// instead of crashing the process: the fault-tolerance contract ("a shard
// that panics on every attempt yields an error, never a crash") only holds
// if no go statement can escape the containment seams. A goroutine is
// protected when its body — the spawned function literal, or the
// same-package function it calls — reaches dispatch.Protect or installs a
// deferred recover (the order.WorkerPanic funnel pattern); one level of
// same-package indirection is followed so `go c.exec(...)` and
// `go func() { w.run() }()` both resolve.
var GoProtect = &Analyzer{
	Name:  "goprotect",
	Doc:   "every go statement in dispatch/shard/order must contain panics via dispatch.Protect or a deferred recover",
	Scope: []string{"internal/dispatch", "internal/shard", "internal/order"},
	Run:   runGoProtect,
}

func runGoProtect(p *Pass) {
	// Map package-level functions and methods to their bodies so a go'd
	// call into the same package can be checked at its definition.
	bodies := make(map[types.Object]*ast.BlockStmt)
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				if obj := p.Info.Defs[fd.Name]; obj != nil {
					bodies[obj] = fd.Body
				}
			}
		}
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			body := p.spawnedBody(gs.Call, bodies)
			if body == nil || !p.isProtected(body, bodies, map[*ast.BlockStmt]bool{}) {
				p.Reportf(gs.Go, "go statement spawns an unprotected goroutine: a panic here crashes the whole process; route it through dispatch.Protect or a deferred recover (the order.WorkerPanic funnel), or annotate //lint:nondet-ok <reason>")
			}
			return true // nested go statements inside the body get their own visit
		})
	}
}

// spawnedBody resolves the body the goroutine will execute: an inline
// function literal, or a function/method defined in this package.
func (p *Pass) spawnedBody(call *ast.CallExpr, bodies map[types.Object]*ast.BlockStmt) *ast.BlockStmt {
	if lit, ok := unparen(call.Fun).(*ast.FuncLit); ok {
		return lit.Body
	}
	if fn := calleeFunc(p.Info, call); fn != nil {
		return bodies[fn]
	}
	return nil
}

// isProtected reports whether body contains panic containment: a deferred
// recover (inline literal or a same-package function that recovers), or a
// call to dispatch.Protect. Direct calls into same-package functions are
// followed one body at a time with a visited guard, so a thin wrapper
// around a protected worker loop counts.
func (p *Pass) isProtected(body *ast.BlockStmt, bodies map[types.Object]*ast.BlockStmt, visited map[*ast.BlockStmt]bool) bool {
	if body == nil || visited[body] {
		return false
	}
	visited[body] = true
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.GoStmt:
			// A nested goroutine's containment does not protect this one:
			// recover never crosses a goroutine boundary. It gets its own
			// GoProtect visit.
			return false
		case *ast.DeferStmt:
			switch fun := unparen(n.Call.Fun).(type) {
			case *ast.FuncLit:
				if containsRecover(p.Info, fun.Body) {
					found = true
				}
			default:
				if p.isProtectCall(n.Call) {
					found = true
				} else if fn := calleeFunc(p.Info, n.Call); fn != nil {
					if b := bodies[fn]; b != nil && containsRecover(p.Info, b) {
						found = true
					}
				}
			}
		case *ast.CallExpr:
			if p.isProtectCall(n) {
				found = true
			} else if fn := calleeFunc(p.Info, n); fn != nil {
				if b := bodies[fn]; b != nil && p.isProtected(b, bodies, visited) {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// isProtectCall reports whether call invokes dispatch.Protect (matched by
// package name so the rule holds inside internal/dispatch itself).
func (p *Pass) isProtectCall(call *ast.CallExpr) bool {
	fn := calleeFunc(p.Info, call)
	return fn != nil && fn.Name() == "Protect" && fn.Pkg() != nil && fn.Pkg().Name() == "dispatch"
}

// containsRecover reports whether body calls the recover builtin.
func containsRecover(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.GoStmt); ok {
			return false // a nested goroutine's recover is its own
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if id, ok := unparen(call.Fun).(*ast.Ident); ok {
				if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "recover" {
					found = true
				}
			}
		}
		return !found
	})
	return found
}
