package lint

import (
	"strings"
	"testing"
)

// TestSuiteCleanOnTree is the acceptance gate: the dmevet suite — exactly
// what `go run ./cmd/dmevet ./...` executes — reports zero findings on the
// merged tree. Every intentional finding must be fixed or carry a reasoned
// //lint:nondet-ok annotation for this to pass.
func TestSuiteCleanOnTree(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module")
	}
	units, err := Load("../..", []string{"./..."})
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if len(units) < 20 {
		t.Fatalf("suspiciously few units loaded: %d", len(units))
	}
	for _, d := range RunUnits(units, Suite()) {
		t.Errorf("%s:%d:%d: %s (%s)", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
	}
}

// TestScopeSelection pins that RunUnits applies analyzer scopes: the same
// violating code is reported when its package path is inside the
// deterministic set and ignored when it is not.
func TestScopeSelection(t *testing.T) {
	u := loadFixture(t, "wallclock", "x/internal/core")
	u.Kind = UnitBase
	if diags := RunUnits([]*Unit{u}, []*Analyzer{WallClock}); len(diags) == 0 {
		t.Errorf("wallclock in internal/core scope: want findings, got none")
	}
	out := loadFixture(t, "wallclock", "x/internal/svgplot")
	out.Kind = UnitBase
	if diags := RunUnits([]*Unit{out}, []*Analyzer{WallClock}); len(diags) != 0 {
		t.Errorf("wallclock outside scope: want no findings, got %d", len(diags))
	}
}

// TestTestFileSelection pins the test-variant rules: analyzers without
// IncludeTests never see UnitTest/UnitXTest units, and analyzers with it
// prefer the augmented variant over the base unit so base files are not
// double-reported.
func TestTestFileSelection(t *testing.T) {
	u := loadFixture(t, "wallclock", "x/internal/core")
	u.Kind = UnitTest
	if diags := RunUnits([]*Unit{u}, []*Analyzer{WallClock}); len(diags) != 0 {
		t.Errorf("wallclock on a test unit: want no findings, got %d", len(diags))
	}

	base := loadFixture(t, "seededrand", "x/pkg")
	base.Kind = UnitBase
	aug := loadFixture(t, "seededrand", "x/pkg")
	aug.Kind = UnitTest
	both := RunUnits([]*Unit{base, aug}, []*Analyzer{SeededRand})
	onlyBase := RunUnits([]*Unit{base}, []*Analyzer{SeededRand})
	if len(both) != len(onlyBase) || len(both) == 0 {
		t.Errorf("augmented variant should supersede base: got %d findings vs %d", len(both), len(onlyBase))
	}
}

// TestInScope pins the suffix-matching boundary rules.
func TestInScope(t *testing.T) {
	cases := []struct {
		scope []string
		path  string
		want  bool
	}{
		{nil, "anything", true},
		{[]string{"internal/core"}, "repro/internal/core", true},
		{[]string{"internal/core"}, "internal/core", true},
		{[]string{"internal/core"}, "repro/internal/coreutils", false},
		{[]string{"internal/core"}, "repro/internal/score", false},
		{[]string{"internal/wire"}, "repro/internal/wire", true},
	}
	for _, c := range cases {
		if got := inScope(c.scope, c.path); got != c.want {
			t.Errorf("inScope(%v, %q) = %v, want %v", c.scope, c.path, got, c.want)
		}
	}
}

// TestBasePath pins go list's test-variant suffix stripping.
func TestBasePath(t *testing.T) {
	if got := basePath("repro/internal/core [repro/internal/core.test]"); got != "repro/internal/core" {
		t.Errorf("basePath = %q", got)
	}
	if got := basePath("repro/internal/core"); got != "repro/internal/core" {
		t.Errorf("basePath = %q", got)
	}
}

// TestSuiteShape pins the advertised analyzer set: five analyzers, each
// documented, with the scopes the determinism contract names.
func TestSuiteShape(t *testing.T) {
	suite := Suite()
	if len(suite) != 5 {
		t.Fatalf("suite has %d analyzers, want 5", len(suite))
	}
	byName := map[string]*Analyzer{}
	for _, a := range suite {
		if a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %s missing doc or run", a.Name)
		}
		byName[a.Name] = a
	}
	for _, name := range []string{"maprange", "wallclock", "seededrand", "rawfloat", "goprotect"} {
		if byName[name] == nil {
			t.Errorf("missing analyzer %s", name)
		}
	}
	if a := byName["seededrand"]; a != nil && (!a.IncludeTests || a.Scope != nil) {
		t.Errorf("seededrand must cover every package including tests")
	}
	if a := byName["rawfloat"]; a != nil && !strings.Contains(strings.Join(a.Scope, ","), "internal/wire") {
		t.Errorf("rawfloat must scope to internal/wire, got %v", a.Scope)
	}
	if a := byName["maprange"]; a != nil && len(a.Scope) != len(DeterministicPackages) {
		t.Errorf("maprange must scope to the deterministic packages")
	}
}
