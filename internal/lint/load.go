package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// UnitKind distinguishes the three compilations go list produces per
// package under -test.
type UnitKind int

const (
	// UnitBase is the package's non-test files.
	UnitBase UnitKind = iota
	// UnitTest is the test-augmented variant: base files plus in-package
	// _test.go files, type-checked together.
	UnitTest
	// UnitXTest is the external test package (package foo_test).
	UnitXTest
)

// A Unit is one type-checked compilation ready for analysis.
type Unit struct {
	// Path is the effective import path for scope matching: test variants
	// carry the path of the package under test.
	Path  string
	Kind  UnitKind
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	Dir         string
	ImportPath  string
	ForTest     string
	Export      string
	Standard    bool
	DepOnly     bool
	GoFiles     []string
	TestGoFiles []string
	ImportMap   map[string]string
	Error       *struct{ Err string }
}

// Load resolves patterns (e.g. "./...") relative to dir, builds export data
// for every dependency via the go command, and type-checks each matched
// package — plus its test-augmented and external-test variants — with the
// stdlib gc importer. It is the offline, dependency-free equivalent of
// go/packages.Load(LoadAllSyntax).
func Load(dir string, patterns []string) ([]*Unit, error) {
	args := append([]string{"list", "-e", "-export", "-deps", "-test", "-json=Dir,ImportPath,ForTest,Export,Standard,DepOnly,GoFiles,TestGoFiles,ImportMap,Error"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("lint: go list: %v", err)
	}
	var pkgs []*listPkg
	dec := json.NewDecoder(out)
	for {
		p := new(listPkg)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			cmd.Wait()
			return nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	if err := cmd.Wait(); err != nil {
		return nil, fmt.Errorf("lint: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	exports := make(map[string]string)
	roots := make(map[string]bool)
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard && p.ForTest == "" && !strings.HasSuffix(p.ImportPath, ".test") {
			roots[p.ImportPath] = true
		}
	}

	fset := token.NewFileSet()
	var units []*Unit
	for _, p := range pkgs {
		if p.Standard || strings.HasSuffix(p.ImportPath, ".test") {
			continue
		}
		if p.Error != nil {
			return nil, fmt.Errorf("lint: %s: %s", p.ImportPath, p.Error.Err)
		}
		var kind UnitKind
		var path string
		var files []string
		switch {
		case p.ForTest == "":
			if !roots[p.ImportPath] {
				continue
			}
			kind, path, files = UnitBase, p.ImportPath, p.GoFiles
		case roots[p.ForTest]:
			// The test-augmented variant's GoFiles already holds base plus
			// in-package _test.go files.
			path = p.ForTest
			if strings.HasSuffix(basePath(p.ImportPath), "_test") {
				kind = UnitXTest
			} else {
				kind = UnitTest
			}
			files = p.GoFiles
		default:
			continue
		}
		if len(files) == 0 {
			continue
		}
		u, err := typeCheck(fset, path, p.Dir, files, exports, p.ImportMap)
		if err != nil {
			return nil, fmt.Errorf("lint: %s: %v", p.ImportPath, err)
		}
		u.Kind = kind
		units = append(units, u)
	}
	return units, nil
}

// basePath strips go list's " [foo.test]" disambiguation suffix.
func basePath(importPath string) string {
	if i := strings.IndexByte(importPath, ' '); i >= 0 {
		return importPath[:i]
	}
	return importPath
}

// listExports resolves the given import paths (plus all their
// dependencies) to compiled export data files. Used by the fixture harness
// to type-check testdata packages that go list cannot see.
func listExports(dir string, importPaths []string) (map[string]string, error) {
	args := append([]string{"list", "-e", "-export", "-deps", "-json=ImportPath,Export,Error"}, importPaths...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list -export: %v\n%s", err, stderr.String())
	}
	exports := make(map[string]string)
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		p := new(listPkg)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("lint: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return exports, nil
}

// parseFixtureFile parses one file with the loader's standard mode.
func parseFixtureFile(fset *token.FileSet, path string) (*ast.File, error) {
	return parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
}

// typeCheck parses files from pkgDir and type-checks them as package path,
// resolving imports through export data (importMap translates source import
// paths to test-variant keys when the package under test is augmented).
func typeCheck(fset *token.FileSet, path, pkgDir string, fileNames []string, exports map[string]string, importMap map[string]string) (*Unit, error) {
	var files []*ast.File
	for _, name := range fileNames {
		f, err := parser.ParseFile(fset, filepath.Join(pkgDir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	lookup := func(importPath string) (io.ReadCloser, error) {
		if mapped, ok := importMap[importPath]; ok {
			importPath = mapped
		}
		exp, ok := exports[importPath]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", importPath)
		}
		return os.Open(exp)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	var typeErr error
	conf := types.Config{
		Importer: importer.ForCompiler(fset, "gc", lookup),
		Error: func(err error) {
			if typeErr == nil {
				typeErr = err
			}
		},
	}
	pkg, _ := conf.Check(basePath(path), fset, files, info)
	if typeErr != nil {
		return nil, typeErr
	}
	return &Unit{Path: basePath(path), Fset: fset, Files: files, Pkg: pkg, Info: info}, nil
}
