package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapRange forbids ranging over a map in the deterministic packages: map
// iteration order is randomized per execution, so any map range whose body
// order matters silently breaks the bitwise-determinism contract. The
// collect-and-sort idiom is recognized and allowed: a range body that only
// appends the key (and/or value) to a slice which is later passed to a
// sort/slices call in the same function. Anything else needs the
// //lint:nondet-ok annotation with a reason explaining why order cannot
// reach build results.
var MapRange = &Analyzer{
	Name:  "maprange",
	Doc:   "forbid map iteration in deterministic packages unless keys are collected and sorted",
	Scope: DeterministicPackages,
	Run:   runMapRange,
}

func runMapRange(p *Pass) {
	for _, f := range p.Files {
		ast.Walk(mapRangeVisitor{p: p}, f)
	}
}

// mapRangeVisitor walks a file carrying the body of the innermost enclosing
// function, so each map range can be checked against the sorts that follow
// it in the same function.
type mapRangeVisitor struct {
	p    *Pass
	encl *ast.BlockStmt
}

func (v mapRangeVisitor) Visit(n ast.Node) ast.Visitor {
	switch n := n.(type) {
	case *ast.FuncDecl:
		return mapRangeVisitor{p: v.p, encl: n.Body}
	case *ast.FuncLit:
		return mapRangeVisitor{p: v.p, encl: n.Body}
	case *ast.RangeStmt:
		v.p.checkMapRange(n, v.encl)
	}
	return v
}

func (p *Pass) checkMapRange(rs *ast.RangeStmt, encl *ast.BlockStmt) {
	tv, ok := p.Info.Types[rs.X]
	if !ok || tv.Type == nil {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	// `for range m` binds neither key nor value: the body runs len(m)
	// times in no particular order it can observe.
	if rs.Key == nil && rs.Value == nil {
		return
	}
	if p.isCollectAndSort(rs, encl) {
		return
	}
	p.Reportf(rs.For, "range over map %s: iteration order is nondeterministic; collect the keys into a slice and sort it, or annotate //lint:nondet-ok <reason>", types.ExprString(rs.X))
}

// isCollectAndSort recognizes the sanctioned idiom:
//
//	for k := range m { keys = append(keys, k) }
//	sort.Ints(keys)            // or any sort./slices. call taking keys
//
// The body must be exactly one append of the iteration variables into a
// slice, and that slice must reach a sort or slices call later in the same
// function.
func (p *Pass) isCollectAndSort(rs *ast.RangeStmt, encl *ast.BlockStmt) bool {
	if rs.Body == nil || len(rs.Body.List) != 1 {
		return false
	}
	assign, ok := rs.Body.List[0].(*ast.AssignStmt)
	if !ok || len(assign.Lhs) != 1 || len(assign.Rhs) != 1 {
		return false
	}
	lhs, ok := unparen(assign.Lhs[0]).(*ast.Ident)
	if !ok {
		return false
	}
	dest := p.Info.Uses[lhs]
	if dest == nil {
		dest = p.Info.Defs[lhs]
	}
	call, ok := unparen(assign.Rhs[0]).(*ast.CallExpr)
	if !ok || len(call.Args) < 2 {
		return false
	}
	if fun, ok := unparen(call.Fun).(*ast.Ident); !ok || fun.Name != "append" {
		return false
	} else if b, ok := p.Info.Uses[fun].(*types.Builtin); !ok || b.Name() != "append" {
		return false
	}
	first, ok := unparen(call.Args[0]).(*ast.Ident)
	if !ok || dest == nil || p.Info.Uses[first] != dest {
		return false
	}
	// Every appended value must be an iteration variable, so the slice
	// holds exactly the keys/values and nothing order-dependent.
	iterVars := make(map[types.Object]bool)
	for _, e := range []ast.Expr{rs.Key, rs.Value} {
		if e == nil {
			continue
		}
		if id, ok := unparen(e).(*ast.Ident); ok {
			if obj := p.Info.Defs[id]; obj != nil {
				iterVars[obj] = true
			} else if obj := p.Info.Uses[id]; obj != nil {
				iterVars[obj] = true // `k = range m` over a pre-declared var
			}
		}
	}
	for _, arg := range call.Args[1:] {
		id, ok := unparen(arg).(*ast.Ident)
		if !ok || !iterVars[p.Info.Uses[id]] {
			return false
		}
	}
	return p.sortedAfter(dest, rs.End(), encl)
}

// sortedAfter reports whether dest is passed to a sort. or slices. function
// after pos within body.
func (p *Pass) sortedAfter(dest types.Object, pos token.Pos, body *ast.BlockStmt) bool {
	if body == nil {
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos {
			return true
		}
		fn := calleeFunc(p.Info, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if pkg := fn.Pkg().Path(); pkg != "sort" && pkg != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if id, ok := unparen(arg).(*ast.Ident); ok && p.Info.Uses[id] == dest {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
