package lint

import (
	"go/ast"
	"go/types"
)

// RawFloat enforces internal/wire's "floats travel as raw bits" rule: a
// float crosses the codec as math.Float64bits / Float64frombits, never via
// text formatting or a direct binary.Write, so that decode(encode(x)) is
// bitwise x for every value including -0, subnormals and NaN payloads.
// Flagged: strconv float conversions, binary.Write/Read of float-bearing
// values, and the value-producing fmt functions applied to floats.
// fmt.Errorf and the Print family stay available for diagnostics — error
// text never crosses the codec.
var RawFloat = &Analyzer{
	Name:  "rawfloat",
	Doc:   "in internal/wire, floats must cross the codec as math.Float64bits raw bits",
	Scope: []string{"internal/wire"},
	Run:   runRawFloat,
}

// rawFloatStrconv are the strconv float<->text conversions.
var rawFloatStrconv = map[string]bool{
	"FormatFloat": true,
	"AppendFloat": true,
	"ParseFloat":  true,
}

// rawFloatFmt are the fmt functions whose output can reach the codec (they
// produce or write a value rather than printing a diagnostic).
var rawFloatFmt = map[string]bool{
	"Sprintf": true, "Sprint": true, "Sprintln": true,
	"Fprintf": true, "Fprint": true, "Fprintln": true,
	"Appendf": true, "Append": true, "Appendln": true,
}

func runRawFloat(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(p.Info, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			name := fn.Name()
			switch fn.Pkg().Path() {
			case "strconv":
				if rawFloatStrconv[name] {
					p.Reportf(call.Pos(), "strconv.%s formats a float as text: floats cross the wire as raw bits (math.Float64bits/Float64frombits) so decode(encode(x)) stays bitwise", name)
				}
			case "encoding/binary":
				if (name == "Write" || name == "Read") && len(call.Args) == 3 {
					if t := p.exprType(call.Args[2]); t != nil && containsFloat(t, nil) {
						p.Reportf(call.Pos(), "binary.%s of float-bearing %s: floats cross the wire as raw bits (math.Float64bits/Float64frombits), not direct binary encoding", name, t.String())
					}
				}
			case "fmt":
				if !rawFloatFmt[name] {
					return true
				}
				for _, arg := range call.Args {
					t := p.exprType(arg)
					if t == nil {
						continue
					}
					if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsFloat != 0 {
						p.Reportf(call.Pos(), "fmt.%s formats a float as text: floats cross the wire as raw bits; text formatting of floats is reserved for diagnostics (fmt.Errorf, the Print family)", name)
						break
					}
				}
			}
			return true
		})
	}
}

// exprType returns the (defaulted) type of e, or nil.
func (p *Pass) exprType(e ast.Expr) types.Type {
	tv, ok := p.Info.Types[e]
	if !ok || tv.Type == nil {
		return nil
	}
	return types.Default(tv.Type)
}

// containsFloat walks t for any float component (through pointers, slices,
// arrays, maps, channels and struct fields, with a cycle guard).
func containsFloat(t types.Type, seen map[types.Type]bool) bool {
	if seen[t] {
		return false
	}
	if seen == nil {
		seen = make(map[types.Type]bool)
	}
	seen[t] = true
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return u.Info()&(types.IsFloat|types.IsComplex) != 0
	case *types.Pointer:
		return containsFloat(u.Elem(), seen)
	case *types.Slice:
		return containsFloat(u.Elem(), seen)
	case *types.Array:
		return containsFloat(u.Elem(), seen)
	case *types.Map:
		return containsFloat(u.Key(), seen) || containsFloat(u.Elem(), seen)
	case *types.Chan:
		return containsFloat(u.Elem(), seen)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsFloat(u.Field(i).Type(), seen) {
				return true
			}
		}
	}
	return false
}
