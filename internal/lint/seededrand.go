package lint

import (
	"go/ast"
	"go/types"
)

// SeededRand forbids the top-level math/rand functions everywhere,
// including tests: they draw from the process-global source, so two runs —
// or two goroutine interleavings — see different streams. Every random
// draw in this repo is explicitly seeded (bench specs, instancegen,
// FaultPlan.SeededPlan); the rule keeps it that way. Constructors that
// build a seeded generator (rand.New, rand.NewSource, rand.NewZipf, and the
// v2 NewPCG/NewChaCha8) are the sanctioned entry points, and methods on a
// *rand.Rand are always fine.
var SeededRand = &Analyzer{
	Name:         "seededrand",
	Doc:          "forbid the global math/rand source; require explicitly seeded *rand.Rand",
	IncludeTests: true,
	Run:          runSeededRand,
}

// seededRandConstructors are the receiver-less math/rand functions that
// construct a generator rather than draw from the global source.
var seededRandConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true, // math/rand/v2
}

func runSeededRand(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(p.Info, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			if path := fn.Pkg().Path(); path != "math/rand" && path != "math/rand/v2" {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true // a method on *rand.Rand: explicitly seeded by construction
			}
			if seededRandConstructors[fn.Name()] {
				return true
			}
			p.Reportf(call.Pos(), "top-level %s.%s draws from the shared global source and is not reproducible; use an explicitly seeded generator (rand.New(rand.NewSource(seed)))", fn.Pkg().Path(), fn.Name())
			return true
		})
	}
}
