// Fixture for the goprotect analyzer: every spawned goroutine must contain
// panics — via dispatch.Protect or a deferred recover — so no goroutine
// can crash the process.
package fixtures

import (
	"runtime/debug"

	"repro/internal/dispatch"
)

// bad spawns an opaque function with no containment: reported.
func bad(f func()) {
	go f() // want `unprotected goroutine`
}

// badLit spawns a literal with no containment: reported.
func badLit(ch chan<- int) {
	go func() { // want `unprotected goroutine`
		ch <- 1
	}()
}

// protectedLit routes the body through dispatch.Protect: allowed.
func protectedLit(errs chan<- error, f func() error) {
	go func() {
		errs <- dispatch.Protect("fixture", f)
	}()
}

// workerPanic mirrors order.WorkerPanic's funnel: the deferred recover
// captures the panic and hands it to the caller. Allowed.
type workerPanic struct {
	val   any
	stack []byte
}

func funneled(f func(), done chan<- *workerPanic) {
	go func() {
		defer func() {
			if r := recover(); r != nil {
				done <- &workerPanic{val: r, stack: debug.Stack()}
				return
			}
			done <- nil
		}()
		f()
	}()
}

// worker carries its own containment, so spawning it — directly or through
// a thin wrapper — is allowed.
func worker() {
	defer func() { _ = recover() }()
}

func viaDecl() {
	go worker()
}

func viaWrapper() {
	go func() { worker() }()
}

// nested: the inner goroutine's recover does not protect the outer body —
// recover never crosses a goroutine boundary — so the outer go is
// reported and the inner one is fine.
func nested(f func()) {
	go func() { // want `unprotected goroutine`
		go func() {
			defer func() { _ = recover() }()
			f()
		}()
		f()
	}()
}

// annotated spawns without containment but says why: suppressed.
func annotated(f func()) {
	go f() //lint:nondet-ok fixture: f is panic-free by construction
}
