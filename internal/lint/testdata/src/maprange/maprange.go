// Fixture for the maprange analyzer: map iteration in a deterministic
// package must collect-and-sort, carry a reasoned annotation, or be
// reported.
package fixtures

import (
	"fmt"
	"slices"
	"sort"
)

// bad iterates a map with an order-sensitive body: reported.
func bad(m map[int]string) {
	for k, v := range m { // want "range over map m"
		fmt.Println(k, v)
	}
}

// collectSorted is the sanctioned idiom: keys into a slice, then sorted.
func collectSorted(m map[int]string) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// collectSlicesSorted uses the slices package: equally sanctioned.
func collectSlicesSorted(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	return keys
}

// collectSortSlice sorts with a comparator: still sanctioned.
func collectSortSlice(m map[int]float64) []int {
	keys := []int{}
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] > keys[j] })
	return keys
}

// collectUnsorted collects the keys but never sorts them: the slice order
// is still the map's iteration order, so it is reported.
func collectUnsorted(m map[int]string) []int {
	keys := []int{}
	for k := range m { // want "range over map m"
		keys = append(keys, k)
	}
	return keys
}

// countOnly binds neither key nor value: the body cannot observe an order.
func countOnly(m map[int]string) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// annotated is order-independent and says why: suppressed.
func annotated(m map[int]string) int {
	n := 0
	//lint:nondet-ok summing lengths is commutative; order cannot reach the result
	for _, v := range m {
		n += len(v)
	}
	return n
}

// annotatedNoReason has a bare annotation: not suppressed, and the report
// says what is missing.
func annotatedNoReason(m map[int]string) int {
	n := 0
	//lint:nondet-ok
	for k := range m { // want "missing its reason"
		n += k
	}
	return n
}
