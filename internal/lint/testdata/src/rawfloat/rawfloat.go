// Fixture for the rawfloat analyzer: floats cross the codec as
// math.Float64bits raw bits — never as text, never via direct
// binary.Write — so decode(encode(x)) is bitwise x.
package fixtures

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
	"strconv"
)

// badFormat renders a float as text: reported.
func badFormat(x float64) string {
	return strconv.FormatFloat(x, 'g', -1, 64) // want `strconv.FormatFloat`
}

// badParse reads a float from text: reported.
func badParse(s string) (float64, error) {
	return strconv.ParseFloat(s, 64) // want `strconv.ParseFloat`
}

// badBinary writes a float directly: reported.
func badBinary(buf *bytes.Buffer, x float64) error {
	return binary.Write(buf, binary.LittleEndian, x) // want `binary.Write of float-bearing`
}

// sample carries a float inside a struct: still reported.
type sample struct {
	ID uint32
	V  float64
}

func badBinaryStruct(buf *bytes.Buffer, s sample) error {
	return binary.Write(buf, binary.LittleEndian, s) // want `binary.Write of float-bearing`
}

// header is float-free, so binary.Write of it is allowed.
type header struct {
	Magic uint32
	Count uint16
}

func okBinary(buf *bytes.Buffer, h header) error {
	return binary.Write(buf, binary.LittleEndian, h)
}

// badSprintf formats a float into a value that can reach the codec:
// reported.
func badSprintf(x float64) string {
	return fmt.Sprintf("%.17g", x) // want `fmt.Sprintf formats a float`
}

// okErrorf builds a diagnostic: error text never crosses the codec.
func okErrorf(x float64) error {
	return fmt.Errorf("value %g out of range", x)
}

// rawBits is the approved crossing: bit-exact both ways.
func rawBits(x float64) uint64 {
	return math.Float64bits(x)
}

func fromBits(b uint64) float64 {
	return math.Float64frombits(b)
}

// annotated formats with a recorded reason: suppressed.
func annotated(x float64) string {
	return strconv.FormatFloat(x, 'g', -1, 64) //lint:nondet-ok fixture: human-readable dump, not the codec path
}
