// Fixture for the seededrand analyzer: no draws from math/rand's shared
// global source, anywhere; explicitly seeded *rand.Rand is the rule.
package fixtures

import "math/rand"

// badIntn draws from the global source: reported.
func badIntn() int {
	return rand.Intn(10) // want `top-level math/rand.Intn`
}

// badFloat64 likewise: reported.
func badFloat64() float64 {
	return rand.Float64() // want `top-level math/rand.Float64`
}

// badShuffle mutates through the global source: reported.
func badShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `top-level math/rand.Shuffle`
}

// seeded builds an explicit generator — the constructors are the
// sanctioned entry points, and every method on the result is fine.
func seeded(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	r.Shuffle(4, func(i, j int) {})
	return r.Intn(10)
}

// annotated draws globally with a recorded reason: suppressed.
func annotated() int {
	return rand.Int() //lint:nondet-ok fixture: jitter for a log sampler, never a build input
}
