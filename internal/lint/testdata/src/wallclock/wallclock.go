// Fixture for the wallclock analyzer: wall-clock reads in a deterministic
// package must go through the obs seam or carry a reasoned annotation.
package fixtures

import (
	"time"

	"repro/internal/obs"
)

// badNow reads the wall clock directly: reported.
func badNow() time.Time {
	return time.Now() // want "call to time.Now"
}

// badSince is a disguised Now: reported.
func badSince(t time.Time) time.Duration {
	return time.Since(t) // want "call to time.Since"
}

// badSleep stalls on real time, escaping fake-clock tests: reported.
func badSleep(d time.Duration) {
	time.Sleep(d) // want "call to time.Sleep"
}

// badTimer is a timer-flavored sleep: reported.
func badTimer(d time.Duration) *time.Timer {
	return time.NewTimer(d) // want "call to time.NewTimer"
}

// seam routes the read through internal/obs, the approved observability
// timer seam: allowed.
func seam() time.Duration {
	start := obs.Now()
	return obs.Since(start)
}

// construction of time values is not a clock read: allowed.
var epoch = time.Unix(0, 0)

// arithmetic on time values is not a clock read: allowed.
func arithmetic(t time.Time, d time.Duration) time.Time {
	return t.Add(d)
}

// annotated reads the clock with a recorded reason: suppressed.
func annotated() time.Time {
	return time.Now() //lint:nondet-ok fixture: feeds a log line, never a build result
}
