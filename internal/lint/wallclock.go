package lint

import (
	"go/ast"
)

// WallClock forbids wall-clock reads and sleeps in the deterministic
// packages. Timing that leaks into a build result breaks bitwise
// re-execution (retries, hedges and remote dispatch all re-run sub-builds),
// and a direct time.Sleep in engine code escapes the dispatch.Clock seam
// that lets fake-clock tests run hour-scale schedules in milliseconds. The
// approved seams live outside these packages: dispatch.Clock for schedule
// timing and internal/obs (obs.Now/obs.Since) for observability timers that
// feed trace metrics but never build results.
var WallClock = &Analyzer{
	Name:  "wallclock",
	Doc:   "forbid time.Now/Since/Sleep and timer constructors in deterministic packages",
	Scope: DeterministicPackages,
	Run:   runWallClock,
}

var wallClockFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Sleep":     true,
	"Until":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
}

func runWallClock(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(p.Info, call)
			if fn == nil || !wallClockFuncs[fn.Name()] || !isPkgFunc(fn, "time", fn.Name()) {
				return true
			}
			p.Reportf(call.Pos(), "call to time.%s in a deterministic package: wall-clock reads belong behind dispatch.Clock or the internal/obs timer seam so timing can never reach build results; annotate //lint:nondet-ok <reason> if it provably cannot", fn.Name())
			return true
		})
	}
}
