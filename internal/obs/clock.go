package obs

import "time"

// Now and Since are the sanctioned monotonic-clock reads for the
// deterministic packages (core, order, spatial, ...): engine timers that
// feed trace metrics — pairing_ns, grid_rebuild_ns, the merge-wave
// idle/slot accounting — read the clock through this seam, never through
// the time package directly. The seam makes the rule statically checkable
// (dmevet's wallclock analyzer flags direct time.Now/time.Since in those
// packages) and keeps the contract auditable: everything that flows out of
// obs.Now is observability, and nothing downstream of it may influence a
// build result. Schedule timing — backoff, hedging, health probes — uses
// dispatch.Clock instead, which fake-clock tests can substitute.

// Now reads the monotonic clock for an observability timer.
func Now() time.Time { return time.Now() }

// Since returns the elapsed time since an obs.Now read.
func Since(t time.Time) time.Duration { return time.Since(t) }
