package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
	"time"
)

// Phase is one top-level phase of a Summary: the summed duration of every
// top-level span with the same name (Count is how many there were).
type Phase struct {
	Name  string  `json:"name"`
	MS    float64 `json:"ms"`
	Count int     `json:"count"`
}

// WaveSummary aggregates the parallel merge wave's per-round accounting
// (recorded as MetricWave* metrics by the router) over a trace and its
// descendants. IdleFrac is idle worker-time over total worker-time of the
// parallel rounds: the fraction spent waiting on the serial
// conflict-scheduling pass, the serial commit, and wave-internal load
// imbalance.
type WaveSummary struct {
	Rounds   int     `json:"rounds"`
	BatchMax int     `json:"batch_max"`
	IdleFrac float64 `json:"idle_frac"`
}

// Summary is the compact phase breakdown of a trace: wall time, the
// top-level phases in first-seen order with their share of the wall, and the
// merge wave's aggregate idle fraction when parallel rounds ran. It is what
// sweep embeds per point into the BENCH_*.json series and what Report
// renders for humans.
type Summary struct {
	Label  string  `json:"label"`
	WallMS float64 `json:"wall_ms"`
	// CoveredMS is the summed duration of the top-level spans — the wall
	// time the trace attributes to a named phase. covered/wall is the
	// accounting coverage the acceptance tests pin (≥ 95% on a full build).
	CoveredMS float64      `json:"covered_ms"`
	Phases    []Phase      `json:"phases"`
	MergeWave *WaveSummary `json:"merge_wave,omitempty"`
}

func ms(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }

// Summary computes the trace's phase breakdown (nil on a nil trace).
func (t *Trace) Summary() *Summary {
	if t == nil {
		return nil
	}
	s := &Summary{Label: t.label, WallMS: ms(t.Wall())}
	for i := range t.spans {
		sp := &t.spans[i]
		if sp.parent != -1 {
			continue
		}
		d := ms(sp.dur)
		s.CoveredMS += d
		found := false
		for j := range s.Phases {
			if s.Phases[j].Name == sp.name {
				s.Phases[j].MS += d
				s.Phases[j].Count++
				found = true
				break
			}
		}
		if !found {
			s.Phases = append(s.Phases, Phase{Name: sp.name, MS: d, Count: 1})
		}
	}
	if slot, ok := t.MetricValue(MetricWaveSlotNS); ok && slot > 0 {
		idle, _ := t.MetricValue(MetricWaveIdleNS)
		rounds, _ := t.MetricValue(MetricWaveRounds)
		// BatchMax accumulates across traces under Metric's by-name sum, so
		// take the per-trace maximum explicitly.
		s.MergeWave = &WaveSummary{
			Rounds:   int(rounds),
			BatchMax: int(t.maxMetric(MetricWaveBatchMax)),
			IdleFrac: idle / slot,
		}
	}
	return s
}

// maxMetric returns the maximum value the named metric holds in this trace
// or any descendant (0 when absent).
func (t *Trace) maxMetric(name string) float64 {
	if t == nil {
		return 0
	}
	var m float64
	for i := range t.metrics {
		if t.metrics[i].Name == name && t.metrics[i].Val > m {
			m = t.metrics[i].Val
		}
	}
	for _, c := range t.children {
		if v := c.maxMetric(name); v > m {
			m = v
		}
	}
	return m
}

// Report renders the trace's phase breakdown as one human-readable line,
// e.g.
//
//	astdme: wall 1.52s (98.7% attributed) | partition 0.6% | pilot 21.3% | shards 52.0% | stitch 23.1% | eval 1.7% | merge-wave idle 14.2% over 211 rounds
//
// Returns "" on a nil trace.
func (t *Trace) Report() string {
	s := t.Summary()
	if s == nil {
		return ""
	}
	var b strings.Builder
	cov := 0.0
	if s.WallMS > 0 {
		cov = 100 * s.CoveredMS / s.WallMS
	}
	fmt.Fprintf(&b, "%s: wall %.3fs (%.1f%% attributed)", s.Label, s.WallMS/1e3, cov)
	for _, p := range s.Phases {
		pct := 0.0
		if s.WallMS > 0 {
			pct = 100 * p.MS / s.WallMS
		}
		fmt.Fprintf(&b, " | %s %.1f%%", p.Name, pct)
	}
	if w := s.MergeWave; w != nil {
		fmt.Fprintf(&b, " | merge-wave idle %.1f%% over %d rounds", 100*w.IdleFrac, w.Rounds)
	}
	return b.String()
}

// jsonSpan is the exported form of one span subtree.
type jsonSpan struct {
	Name     string             `json:"name"`
	StartMS  float64            `json:"start_ms"`
	DurMS    float64            `json:"dur_ms"`
	Attrs    map[string]float64 `json:"attrs,omitempty"`
	Children []jsonSpan         `json:"children,omitempty"`
}

// jsonProbe is the exported form of an armed probe.
type jsonProbe struct {
	Name    string       `json:"name"`
	Dropped int          `json:"dropped,omitempty"`
	Events  []ProbeEvent `json:"events"`
}

// jsonTrace is the exported form of a trace node.
type jsonTrace struct {
	Label        string             `json:"label"`
	Start        time.Time          `json:"start"`
	WallMS       float64            `json:"wall_ms"`
	Summary      *Summary           `json:"summary,omitempty"`
	Spans        []jsonSpan         `json:"spans,omitempty"`
	Metrics      map[string]float64 `json:"metrics,omitempty"`
	DroppedSpans int                `json:"dropped_spans,omitempty"`
	Probes       []jsonProbe        `json:"probes,omitempty"`
	Children     []jsonTrace        `json:"children,omitempty"`
	Provenance   *Provenance        `json:"provenance,omitempty"`
}

// export converts the trace into its JSON form. Span offsets are relative to
// each trace's own epoch; child traces carry their own epoch in Start.
func (t *Trace) export() jsonTrace {
	jt := jsonTrace{
		Label:        t.label,
		Start:        t.epoch,
		WallMS:       ms(t.Wall()),
		Summary:      t.Summary(),
		DroppedSpans: t.dropped,
		Provenance:   t.prov,
	}
	if len(t.metrics) > 0 {
		jt.Metrics = make(map[string]float64, len(t.metrics))
		for _, m := range t.metrics {
			jt.Metrics[m.Name] = m.Val
		}
	}
	// Rebuild the span tree from the flat arena: spans are stored in Begin
	// order, so a single pass with a per-span slot map suffices.
	slots := make([]*jsonSpan, len(t.spans))
	var roots []jsonSpan
	// Two passes: count children per parent first so slices don't move under
	// the slot pointers as siblings append.
	childCount := make([]int, len(t.spans))
	nroots := 0
	for i := range t.spans {
		if p := t.spans[i].parent; p >= 0 {
			childCount[p]++
		} else {
			nroots++
		}
	}
	roots = make([]jsonSpan, 0, nroots)
	for i := range t.spans {
		sp := &t.spans[i]
		js := jsonSpan{
			Name:    sp.name,
			StartMS: ms(sp.start.Sub(t.epoch)),
			DurMS:   ms(sp.dur),
		}
		if sp.nattrs > 0 {
			js.Attrs = make(map[string]float64, sp.nattrs)
			for _, a := range sp.attrs[:sp.nattrs] {
				js.Attrs[a.Key] = a.Val
			}
		}
		if childCount[i] > 0 {
			js.Children = make([]jsonSpan, 0, childCount[i])
		}
		if sp.parent >= 0 {
			parent := slots[sp.parent]
			parent.Children = append(parent.Children, js)
			slots[i] = &parent.Children[len(parent.Children)-1]
		} else {
			roots = append(roots, js)
			slots[i] = &roots[len(roots)-1]
		}
	}
	jt.Spans = roots
	for _, p := range t.probes {
		jt.Probes = append(jt.Probes, jsonProbe{Name: p.name, Dropped: p.dropped, Events: p.events})
	}
	for _, c := range t.children {
		jt.Children = append(jt.Children, c.export())
	}
	return jt
}

// WriteJSON writes the trace (spans, metrics, probes, children, provenance)
// as indented JSON. Writing a nil trace is an error: the caller asked for a
// trace file but recorded nothing.
func WriteJSON(w io.Writer, t *Trace) error {
	if t == nil {
		return fmt.Errorf("obs: WriteJSON on a nil trace")
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t.export())
}

// WriteJSONFile writes the trace to path via WriteJSON.
func WriteJSONFile(path string, t *Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteJSON(f, t); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
