// Package obs is the engine's observability layer: a lightweight,
// zero-cost-when-disabled tracing and metrics subsystem the routing pipeline
// (core build, sharded build, pilot pass, stitch, eval) threads through
// itself so every optimization claim can be judged against a measured
// phase-level time attribution instead of end-to-end wall clock alone.
//
// # Span semantics
//
// A Trace records a hierarchy of named wall-time spans. Begin opens a span
// nested under the currently open one (spans form a stack; End closes in
// LIFO order) and returns a Region handle; up to maxAttrs numeric attributes
// may be attached to an open span via Region.Attr. Span storage is a
// preallocated fixed-capacity arena: once it fills, further Begin calls
// record nothing (the drop count is exported), so tracing a run of any size
// has bounded memory and — crucially — performs zero allocations after the
// trace is constructed. Spans are for phases and rounds, not per-merge
// events; per-iteration data goes through a Probe.
//
// # The disabled-path contract
//
// Every method is nil-safe: calling Begin/End/Attr/Metric/Child/Summary on a
// nil *Trace (or the zero Region) is a no-op that performs no allocations
// and no clock reads. Instrumented code therefore threads a possibly-nil
// *Trace unconditionally and never guards call sites; the hot-path
// allocation budget (~300 allocs for a 10k route, pinned by
// TestRouteAllocBudget) is untouched when tracing is off. Tracing is purely
// observational either way: it must never change routing decisions, so a
// traced build is bitwise identical to an untraced one.
//
// # Concurrency
//
// A Trace is single-goroutine. Concurrent pipeline stages (shard builds)
// each record into a private child trace created with Child *before* the
// fan-out; the parent adopts the children for export. Metrics accumulate by
// name (Metric adds to an existing entry), so repeated sub-builds recording
// into one trace — the pilot's patch routes, for example — sum naturally.
package obs

import "time"

// DefaultSpanCap is the span-arena capacity of New. At ~150 bytes per span a
// trace costs ~300 KB, enough for the pipeline phases plus per-round
// merge-wave spans of large routes; overflow drops spans (counted) rather
// than growing.
const DefaultSpanCap = 2048

// maxAttrs is the number of numeric attributes a span can carry.
const maxAttrs = 4

// Attr is one numeric span attribute.
type Attr struct {
	Key string
	Val float64
}

// Metric is one named counter/gauge of a trace's metric registry.
type Metric struct {
	Name string
	Val  float64
}

// Names of the metrics the router records, shared here so core (which
// writes them) and Summary (which aggregates them) agree without an import
// cycle. The merge-wave pair slot/idle are nanosecond totals: slot is
// (sched + wave + commit) × workers summed over parallel rounds, idle the
// worker-nanoseconds spent waiting on the serial conflict-scheduling pass
// and serial commit plus wave-internal load imbalance, so idle/slot is the
// wave's aggregate idle fraction.
const (
	MetricWaveRounds    = "merge_wave_rounds"
	MetricWaveSlotNS    = "merge_wave_slot_ns"
	MetricWaveIdleNS    = "merge_wave_idle_ns"
	MetricWaveBatchMax  = "merge_wave_batch_max"
	MetricPairingNS     = "pairing_ns"
	MetricGridRebuildNS = "grid_rebuild_ns"
	// Dispatch fault-handling counters (internal/dispatch): retries
	// scheduled after transient failures, hedged straggler duplicates,
	// panics contained into per-task errors, and planned faults injected
	// (FaultPlan runs only). Recorded on the dispatching trace, so sharded
	// runs sum the pilot and shard phases via MetricValue.
	MetricDispatchRetries = "dispatch_retries"
	MetricDispatchHedges  = "dispatch_hedges"
	MetricDispatchPanics  = "dispatch_panics_recovered"
	MetricDispatchFaults  = "dispatch_faults_injected"
	// Remote-dispatch degradation counters: executions that fell back to
	// the in-process runner because no healthy worker could take them, and
	// workers blacklisted after consecutive failures. Zero on all-local
	// runs and on remote runs where the fleet stayed healthy.
	MetricDispatchRemoteFallbacks = "dispatch_remote_fallbacks"
	MetricDispatchWorkersLost     = "dispatch_workers_lost"
)

// span is one recorded region. Fixed-size (inline attrs) so the arena is a
// single allocation.
type span struct {
	name   string
	start  time.Time
	dur    time.Duration
	parent int32
	nattrs uint8
	attrs  [maxAttrs]Attr
}

// Trace is a single-goroutine hierarchical phase recorder. The zero value is
// not usable; construct with New/NewWithCap, or receive nil for "disabled".
type Trace struct {
	label    string
	epoch    time.Time
	closed   time.Time
	spans    []span
	stack    []int32
	metrics  []Metric
	children []*Trace
	probes   []*Probe
	prov     *Provenance
	dropped  int
}

// New returns an enabled trace with the default span capacity. The trace's
// epoch — the zero point of span offsets and of Wall — is the call time, so
// construct the trace immediately before the work it should account for.
func New(label string) *Trace { return NewWithCap(label, DefaultSpanCap) }

// NewWithCap is New with an explicit span-arena capacity.
func NewWithCap(label string, spanCap int) *Trace {
	if spanCap < 1 {
		spanCap = 1
	}
	return &Trace{
		label:   label,
		epoch:   time.Now(),
		spans:   make([]span, 0, spanCap),
		stack:   make([]int32, 0, 16),
		metrics: make([]Metric, 0, 32),
	}
}

// Label returns the trace's label ("" on nil).
func (t *Trace) Label() string {
	if t == nil {
		return ""
	}
	return t.label
}

// Enabled reports whether the trace records anything (false on nil).
func (t *Trace) Enabled() bool { return t != nil }

// Region is a handle to an open span. The zero Region (and any Region from a
// nil trace or a full arena) is inert: Attr and End on it are no-ops.
type Region struct {
	t  *Trace
	id int32
}

// Begin opens a span named name under the currently open span and returns
// its Region. On a nil trace, or once the span arena is full (the drop is
// counted), it returns an inert Region.
func (t *Trace) Begin(name string) Region {
	if t == nil {
		return Region{}
	}
	if len(t.spans) == cap(t.spans) {
		t.dropped++
		return Region{}
	}
	parent := int32(-1)
	if n := len(t.stack); n > 0 {
		parent = t.stack[n-1]
	}
	id := int32(len(t.spans))
	t.spans = append(t.spans, span{name: name, start: time.Now(), parent: parent})
	t.stack = append(t.stack, id)
	return Region{t: t, id: id}
}

// Attr attaches a numeric attribute to the region's span (up to maxAttrs;
// later ones are dropped). Returns the region for chaining.
func (r Region) Attr(key string, v float64) Region {
	if r.t == nil {
		return r
	}
	sp := &r.t.spans[r.id]
	if int(sp.nattrs) < maxAttrs {
		sp.attrs[sp.nattrs] = Attr{Key: key, Val: v}
		sp.nattrs++
	}
	return r
}

// End closes the region's span, recording its duration. Spans close in LIFO
// order; an out-of-order End still records its own duration and removes the
// span from the open stack wherever it sits.
func (r Region) End() {
	t := r.t
	if t == nil {
		return
	}
	sp := &t.spans[r.id]
	sp.dur = time.Since(sp.start)
	for i := len(t.stack) - 1; i >= 0; i-- {
		if t.stack[i] == r.id {
			t.stack = append(t.stack[:i], t.stack[i+1:]...)
			break
		}
	}
}

// Child creates, adopts and returns a child trace (nil on a nil receiver).
// Children are how concurrent stages record without sharing: create the
// child on the parent's goroutine before the fan-out, hand it to exactly one
// goroutine, and Close it when that stage's work is done.
func (t *Trace) Child(label string) *Trace {
	if t == nil {
		return nil
	}
	c := NewWithCap(label, cap(t.spans))
	t.children = append(t.children, c)
	return c
}

// Metric adds v to the named metric, creating it at v if absent. Accumulation
// by name makes repeated sub-builds recording into one trace (pilot patches)
// sum; first-record order is preserved for export.
func (t *Trace) Metric(name string, v float64) {
	if t == nil {
		return
	}
	for i := range t.metrics {
		if t.metrics[i].Name == name {
			t.metrics[i].Val += v
			return
		}
	}
	t.metrics = append(t.metrics, Metric{Name: name, Val: v})
}

// MetricValue returns the named metric's value summed over this trace and
// all descendants (0, false when absent everywhere).
func (t *Trace) MetricValue(name string) (float64, bool) {
	if t == nil {
		return 0, false
	}
	var v float64
	found := false
	for i := range t.metrics {
		if t.metrics[i].Name == name {
			v += t.metrics[i].Val
			found = true
		}
	}
	for _, c := range t.children {
		if cv, ok := c.MetricValue(name); ok {
			v += cv
			found = true
		}
	}
	return v, found
}

// AttachProbe adopts an armed probe for export alongside the trace.
func (t *Trace) AttachProbe(p *Probe) {
	if t == nil || p == nil {
		return
	}
	t.probes = append(t.probes, p)
}

// SetProvenance attaches run provenance (exported on the trace root).
func (t *Trace) SetProvenance(p *Provenance) {
	if t == nil {
		return
	}
	t.prov = p
}

// Close fixes the trace's wall time at now − epoch. Idempotent; an unclosed
// trace reports wall time up to the moment it is read instead.
func (t *Trace) Close() {
	if t == nil || !t.closed.IsZero() {
		return
	}
	t.closed = time.Now()
}

// Wall returns the trace's wall time: Close time minus epoch, or time since
// epoch when the trace is still open (0 on nil).
func (t *Trace) Wall() time.Duration {
	if t == nil {
		return 0
	}
	if !t.closed.IsZero() {
		return t.closed.Sub(t.epoch)
	}
	return time.Since(t.epoch)
}

// Dropped reports how many Begin calls the full span arena rejected.
func (t *Trace) Dropped() int {
	if t == nil {
		return 0
	}
	return t.dropped
}

// Children returns the adopted child traces (nil on nil).
func (t *Trace) Children() []*Trace {
	if t == nil {
		return nil
	}
	return t.children
}

// Probe records per-iteration samples of an instrumented loop — the
// router's leash/sneak iteration, primarily — into preallocated storage.
// Like spans, a full probe drops further records (counted) rather than
// growing, and all methods are nil-safe no-ops on a nil *Probe. A Probe is
// single-goroutine: the router records only from its coordinating builder
// (set MergeWorkers=1 for complete capture; see core.Options.SneakProbe).
type Probe struct {
	name    string
	events  []ProbeEvent
	vals    []float64 // backing slab for ProbeEvent.Vals
	dropped int
}

// ProbeEvent is one recorded iteration. The scalar fields are generic slots
// the instrumented site defines; for the sneak loop: Gap is the window
// infeasibility, Lo/Hi the intersected X-window bounds, Wire the sneak wire
// applied this iteration, and Vals the registry's per-group committed
// offsets at the time of the merge.
type ProbeEvent struct {
	Label string    `json:"label"`
	Seq   int       `json:"seq"`
	Iter  int       `json:"iter"`
	Gap   float64   `json:"gap"`
	Lo    float64   `json:"lo"`
	Hi    float64   `json:"hi"`
	Wire  float64   `json:"wire"`
	Vals  []float64 `json:"vals,omitempty"`
}

// NewProbe returns an armed probe holding up to capEvents events with room
// for capVals float64 values across all events' Vals.
func NewProbe(name string, capEvents, capVals int) *Probe {
	if capEvents < 1 {
		capEvents = 1
	}
	if capVals < 0 {
		capVals = 0
	}
	return &Probe{
		name:   name,
		events: make([]ProbeEvent, 0, capEvents),
		vals:   make([]float64, 0, capVals),
	}
}

// Record appends one event, copying vals into the probe's slab. Once events
// or slab capacity is exhausted the record is dropped (counted). Nil-safe.
func (p *Probe) Record(label string, seq, iter int, gap, lo, hi, wire float64, vals []float64) {
	if p == nil {
		return
	}
	if len(p.events) == cap(p.events) || cap(p.vals)-len(p.vals) < len(vals) {
		p.dropped++
		return
	}
	var vs []float64
	if len(vals) > 0 {
		l := len(p.vals)
		p.vals = append(p.vals, vals...)
		vs = p.vals[l:len(p.vals):len(p.vals)]
	}
	p.events = append(p.events, ProbeEvent{
		Label: label, Seq: seq, Iter: iter,
		Gap: gap, Lo: lo, Hi: hi, Wire: wire, Vals: vs,
	})
}

// Name returns the probe's name ("" on nil).
func (p *Probe) Name() string {
	if p == nil {
		return ""
	}
	return p.name
}

// Events returns the recorded events (nil on nil). The slice and the events'
// Vals alias probe-internal storage; treat as read-only.
func (p *Probe) Events() []ProbeEvent {
	if p == nil {
		return nil
	}
	return p.events
}

// Dropped reports how many Record calls were rejected for capacity.
func (p *Probe) Dropped() int {
	if p == nil {
		return 0
	}
	return p.dropped
}
