package obs

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

// TestNilTraceNoOps: the disabled-path contract — every method on a nil
// trace/probe and on the zero Region is a safe no-op, with zero allocations.
func TestNilTraceNoOps(t *testing.T) {
	var tr *Trace
	var p *Probe
	allocs := testing.AllocsPerRun(100, func() {
		r := tr.Begin("x").Attr("k", 1)
		r.End()
		tr.Metric("m", 1)
		if tr.Child("c") != nil {
			t.Fatal("nil trace Child must be nil")
		}
		tr.AttachProbe(nil)
		tr.SetProvenance(nil)
		tr.Close()
		_ = tr.Wall()
		_ = tr.Label()
		_ = tr.Enabled()
		_ = tr.Dropped()
		_ = tr.Children()
		_, _ = tr.MetricValue("m")
		p.Record("l", 0, 0, 0, 0, 0, 0, nil)
		_ = p.Events()
		_ = p.Name()
		_ = p.Dropped()
	})
	if allocs != 0 {
		t.Fatalf("nil-trace path allocated: %v allocs/op", allocs)
	}
	if tr.Summary() != nil {
		t.Fatal("nil trace Summary must be nil")
	}
	if tr.Report() != "" {
		t.Fatal("nil trace Report must be empty")
	}
}

// TestEnabledTraceNoAllocsAfterConstruction: Begin/Attr/End/Metric on an
// enabled trace reuse the preallocated arenas.
func TestEnabledTraceNoAllocsAfterConstruction(t *testing.T) {
	tr := NewWithCap("t", 4096)
	tr.Metric("m", 0) // pre-create the metric entry
	allocs := testing.AllocsPerRun(1000, func() {
		r := tr.Begin("phase").Attr("a", 1).Attr("b", 2)
		r.End()
		tr.Metric("m", 1)
	})
	if allocs != 0 {
		t.Fatalf("enabled-trace span path allocated: %v allocs/op", allocs)
	}
}

func TestSpanNesting(t *testing.T) {
	tr := New("t")
	outer := tr.Begin("outer")
	inner := tr.Begin("inner")
	inner.End()
	sibling := tr.Begin("inner2")
	sibling.End()
	outer.End()
	top := tr.Begin("top2")
	top.End()
	tr.Close()

	if got := len(tr.spans); got != 4 {
		t.Fatalf("spans = %d, want 4", got)
	}
	wantParents := []int32{-1, 0, 0, -1}
	for i, want := range wantParents {
		if tr.spans[i].parent != want {
			t.Errorf("span %d (%s) parent = %d, want %d", i, tr.spans[i].name, tr.spans[i].parent, want)
		}
	}
	if len(tr.stack) != 0 {
		t.Errorf("stack not empty after all Ends: %v", tr.stack)
	}
	for i := range tr.spans {
		if tr.spans[i].dur < 0 {
			t.Errorf("span %d negative duration", i)
		}
	}
}

func TestSpanCapacityDrops(t *testing.T) {
	tr := NewWithCap("t", 2)
	tr.Begin("a").End()
	tr.Begin("b").End()
	r := tr.Begin("c") // arena full: inert
	r.Attr("k", 1)
	r.End()
	if got := tr.Dropped(); got != 1 {
		t.Fatalf("dropped = %d, want 1", got)
	}
	if got := len(tr.spans); got != 2 {
		t.Fatalf("spans = %d, want 2", got)
	}
}

func TestAttrLimit(t *testing.T) {
	tr := New("t")
	r := tr.Begin("s")
	for i := 0; i < maxAttrs+3; i++ {
		r.Attr("k", float64(i))
	}
	r.End()
	if got := int(tr.spans[0].nattrs); got != maxAttrs {
		t.Fatalf("nattrs = %d, want %d", got, maxAttrs)
	}
}

func TestMetricAccumulationAndChildren(t *testing.T) {
	tr := New("root")
	tr.Metric("m", 2)
	tr.Metric("m", 3)
	c1 := tr.Child("c1")
	c1.Metric("m", 10)
	c2 := tr.Child("c2")
	c2.Metric("m", 100)
	c2.Metric("other", 7)

	if v, ok := tr.MetricValue("m"); !ok || v != 115 {
		t.Fatalf("MetricValue(m) = %v, %v; want 115, true", v, ok)
	}
	if v, ok := tr.MetricValue("other"); !ok || v != 7 {
		t.Fatalf("MetricValue(other) = %v, %v; want 7, true", v, ok)
	}
	if _, ok := tr.MetricValue("absent"); ok {
		t.Fatal("MetricValue(absent) found")
	}
	if got := len(tr.Children()); got != 2 {
		t.Fatalf("children = %d, want 2", got)
	}
}

func TestSummaryAndReport(t *testing.T) {
	tr := New("run")
	a := tr.Begin("build")
	time.Sleep(2 * time.Millisecond)
	a.End()
	b := tr.Begin("eval")
	time.Sleep(time.Millisecond)
	b.End()
	// Merge-wave metrics: 4 workers, 25% idle.
	tr.Metric(MetricWaveRounds, 3)
	tr.Metric(MetricWaveSlotNS, 4e6)
	tr.Metric(MetricWaveIdleNS, 1e6)
	tr.Metric(MetricWaveBatchMax, 17)
	tr.Close()

	s := tr.Summary()
	if s.Label != "run" {
		t.Fatalf("label = %q", s.Label)
	}
	if len(s.Phases) != 2 || s.Phases[0].Name != "build" || s.Phases[1].Name != "eval" {
		t.Fatalf("phases = %+v", s.Phases)
	}
	if s.CoveredMS <= 0 || s.CoveredMS > s.WallMS {
		t.Fatalf("covered %v of wall %v", s.CoveredMS, s.WallMS)
	}
	if s.MergeWave == nil {
		t.Fatal("merge-wave summary missing")
	}
	if s.MergeWave.Rounds != 3 || s.MergeWave.BatchMax != 17 {
		t.Fatalf("wave = %+v", s.MergeWave)
	}
	if got := s.MergeWave.IdleFrac; got < 0.249 || got > 0.251 {
		t.Fatalf("idle frac = %v, want 0.25", got)
	}

	rep := tr.Report()
	for _, want := range []string{"run:", "build", "eval", "merge-wave idle"} {
		if !bytes.Contains([]byte(rep), []byte(want)) {
			t.Errorf("report %q missing %q", rep, want)
		}
	}
}

func TestProbeRecordAndCapacity(t *testing.T) {
	p := NewProbe("sneak", 2, 4)
	p.Record("window", 1, 0, 5.0, -1, 1, 0, []float64{0, 2.5})
	p.Record("sneak", 1, 1, 0.0, -1, 1, 3.5, []float64{0, 2.5})
	p.Record("window", 2, 0, 1, 0, 0, 0, nil) // events full
	if got := p.Dropped(); got != 1 {
		t.Fatalf("dropped = %d, want 1", got)
	}
	ev := p.Events()
	if len(ev) != 2 {
		t.Fatalf("events = %d, want 2", len(ev))
	}
	if ev[0].Label != "window" || ev[0].Gap != 5.0 || len(ev[0].Vals) != 2 || ev[0].Vals[1] != 2.5 {
		t.Fatalf("event 0 = %+v", ev[0])
	}
	if ev[1].Label != "sneak" || ev[1].Wire != 3.5 {
		t.Fatalf("event 1 = %+v", ev[1])
	}

	// Vals slab exhaustion drops too.
	p2 := NewProbe("x", 8, 3)
	p2.Record("a", 0, 0, 0, 0, 0, 0, []float64{1, 2})
	p2.Record("b", 0, 0, 0, 0, 0, 0, []float64{3, 4})
	if p2.Dropped() != 1 || len(p2.Events()) != 1 {
		t.Fatalf("slab-full: dropped=%d events=%d", p2.Dropped(), len(p2.Events()))
	}
}

func TestWriteJSON(t *testing.T) {
	tr := New("run")
	outer := tr.Begin("shards").Attr("count", 2)
	inner := tr.Begin("wave").Attr("batch", 9)
	inner.End()
	outer.End()
	tr.Metric("pair_scans", 123)
	c := tr.Child("shard0")
	c.Begin("route").End()
	c.Metric("pair_scans", 7)
	c.Close()
	p := NewProbe("sneak", 4, 8)
	p.Record("window", 1, 0, 2, -1, 1, 0, []float64{0, 1})
	tr.AttachProbe(p)
	tr.SetProvenance(&Provenance{GoVersion: "gotest", GOMAXPROCS: 1, NumCPU: 1, OS: "linux", Arch: "amd64", Timestamp: "2026-01-01T00:00:00Z"})
	tr.Close()

	var buf bytes.Buffer
	if err := WriteJSON(&buf, tr); err != nil {
		t.Fatal(err)
	}
	var out struct {
		Label   string   `json:"label"`
		WallMS  float64  `json:"wall_ms"`
		Summary *Summary `json:"summary"`
		Spans   []struct {
			Name     string             `json:"name"`
			Attrs    map[string]float64 `json:"attrs"`
			Children []struct {
				Name  string             `json:"name"`
				Attrs map[string]float64 `json:"attrs"`
			} `json:"children"`
		} `json:"spans"`
		Metrics map[string]float64 `json:"metrics"`
		Probes  []struct {
			Name   string       `json:"name"`
			Events []ProbeEvent `json:"events"`
		} `json:"probes"`
		Children []struct {
			Label   string             `json:"label"`
			Metrics map[string]float64 `json:"metrics"`
		} `json:"children"`
		Provenance *Provenance `json:"provenance"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if out.Label != "run" || out.Summary == nil {
		t.Fatalf("label/summary: %+v", out)
	}
	if len(out.Spans) != 1 || out.Spans[0].Name != "shards" || out.Spans[0].Attrs["count"] != 2 {
		t.Fatalf("spans: %+v", out.Spans)
	}
	if len(out.Spans[0].Children) != 1 || out.Spans[0].Children[0].Name != "wave" || out.Spans[0].Children[0].Attrs["batch"] != 9 {
		t.Fatalf("nested span: %+v", out.Spans[0].Children)
	}
	if out.Metrics["pair_scans"] != 123 {
		t.Fatalf("metrics: %+v", out.Metrics)
	}
	if len(out.Children) != 1 || out.Children[0].Label != "shard0" || out.Children[0].Metrics["pair_scans"] != 7 {
		t.Fatalf("children: %+v", out.Children)
	}
	if len(out.Probes) != 1 || out.Probes[0].Name != "sneak" || len(out.Probes[0].Events) != 1 {
		t.Fatalf("probes: %+v", out.Probes)
	}
	if out.Provenance == nil || out.Provenance.GoVersion != "gotest" {
		t.Fatalf("provenance: %+v", out.Provenance)
	}

	if err := WriteJSON(&buf, nil); err == nil {
		t.Fatal("WriteJSON(nil) must error")
	}
}

func TestCollectProvenance(t *testing.T) {
	p := CollectProvenance()
	if p.GoVersion == "" || p.GOMAXPROCS < 1 || p.NumCPU < 1 || p.OS == "" || p.Arch == "" {
		t.Fatalf("incomplete provenance: %+v", p)
	}
	if _, err := time.Parse(time.RFC3339, p.Timestamp); err != nil {
		t.Fatalf("timestamp %q not RFC3339: %v", p.Timestamp, err)
	}
}
