package obs

import (
	"os"
	"os/exec"
	"runtime"
	"runtime/debug"
	"strings"
	"time"
)

// Provenance identifies the build and machine a run executed on, so a
// BENCH_*.json point (or a trace file) stays interpretable after the fact:
// a wall-clock regression means nothing without knowing the commit, the core
// count, and the CPU the number came from.
type Provenance struct {
	GitSHA     string `json:"git_sha,omitempty"`
	GitDirty   bool   `json:"git_dirty,omitempty"`
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	CPUModel   string `json:"cpu_model,omitempty"`
	OS         string `json:"os"`
	Arch       string `json:"arch"`
	Timestamp  string `json:"timestamp"`
}

// CollectProvenance gathers the current process's run provenance. The git
// SHA comes from the binary's embedded VCS stamp when present (`go build` of
// a repo checkout) and falls back to asking `git` directly, which covers
// `go run` and test binaries; it is "" when neither source is available.
func CollectProvenance() *Provenance {
	p := &Provenance{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		OS:         runtime.GOOS,
		Arch:       runtime.GOARCH,
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		CPUModel:   cpuModel(),
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				p.GitSHA = s.Value
			case "vcs.modified":
				p.GitDirty = s.Value == "true"
			}
		}
	}
	if p.GitSHA == "" {
		if out, err := exec.Command("git", "rev-parse", "HEAD").Output(); err == nil {
			p.GitSHA = strings.TrimSpace(string(out))
		}
	}
	return p
}

// cpuModel returns the CPU model string ("" when undeterminable). Linux-only
// by design: the longitudinal bench artifacts are produced on Linux CI.
func cpuModel() string {
	data, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(data), "\n") {
		if name, ok := strings.CutPrefix(line, "model name"); ok {
			if _, val, ok := strings.Cut(name, ":"); ok {
				return strings.TrimSpace(val)
			}
		}
	}
	return ""
}
