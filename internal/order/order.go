// Package order implements the bottom-up merging order for DME-family clock
// routers: the minimum merging-cost scheme of greedy-DME (Edahiro 1993),
// optionally with the two enhancements named in the thesis (Ch. V.F):
//
//  1. simultaneous multiple mergings per round, which cuts the number of
//     nearest-neighbor recomputations and hence runtime; and
//  2. a delay-target-aware priority that merges subtrees with large delays
//     first, reducing delay-target imbalance and thus wire snaking.
//
// The queue works on abstract item indices: the router supplies a distance
// function (typically geom.DistRR over node regions) and, after each merge,
// registers the replacement item. Distances between two live items never
// change during a run (regions are committed at creation), which the greedy
// strategy exploits for a simple lazy-deletion pairing heap.
package order

import (
	"container/heap"
	"math"
	"sort"
)

// Strategy selects how aggressively merges are batched.
type Strategy int

const (
	// Multi (the default) performs simultaneous multiple mergings — the
	// thesis's enhancement 1, after Edahiro: each round it computes the
	// nearest-neighbor pairing of all live items and merges the shortest
	// disjoint fraction of those pairs before re-pairing.
	Multi Strategy = iota
	// Greedy merges exactly one globally minimum-cost pair at a time
	// (classic greedy-DME order).
	Greedy
)

// Config parameterizes a Queue.
type Config struct {
	// Strategy selects Greedy or Multi (default Greedy).
	Strategy Strategy
	// BatchFraction is the fraction of live items merged per Multi round,
	// in (0, 0.5]; 0 selects the default 0.5.
	BatchFraction float64
	// Key optionally overrides the pair priority. It receives the two item
	// indices and their distance and returns the priority (lower merges
	// first). Nil means priority = distance. Used for the delay-target
	// enhancement.
	Key func(i, j int, dist float64) float64
}

// Queue produces the sequence of merges. Item indices 0..n-1 are the initial
// items; Merged registers replacement items with increasing indices.
type Queue struct {
	cfg   Config
	dist  func(i, j int) float64
	alive []bool
	live  int

	// Greedy state.
	h pairHeap

	// Multi state.
	batch   []pair
	age     []int // rounds an item has survived unmerged (anti-starvation)
	pending int   // merges issued since last batch build whose results are not yet registered
}

// starveRounds is the number of Multi rounds an item may go unmerged before
// it is force-paired regardless of cost. Without this, items whose pairings
// all look expensive (e.g. delay-imbalanced leftovers) lose their preferred
// partners every round and end up absorbing the mismatch at the tree root,
// where it is most expensive.
const starveRounds = 3

type pair struct {
	key  float64
	i, j int
}

type pairHeap []pair

func (h pairHeap) Len() int            { return len(h) }
func (h pairHeap) Less(a, b int) bool  { return h[a].key < h[b].key }
func (h pairHeap) Swap(a, b int)       { h[a], h[b] = h[b], h[a] }
func (h *pairHeap) Push(x interface{}) { *h = append(*h, x.(pair)) }
func (h *pairHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// New builds a queue over n initial items with the given distance function.
func New(cfg Config, n int, dist func(i, j int) float64) *Queue {
	if cfg.BatchFraction <= 0 || cfg.BatchFraction > 0.5 {
		cfg.BatchFraction = 0.5
	}
	q := &Queue{cfg: cfg, dist: dist, alive: make([]bool, 0, 2*n), live: n}
	for i := 0; i < n; i++ {
		q.alive = append(q.alive, true)
		q.age = append(q.age, 0)
	}
	if cfg.Strategy == Greedy {
		for i := 0; i < n; i++ {
			q.pushNN(i)
		}
	}
	return q
}

// key returns the pair priority.
func (q *Queue) key(i, j int, d float64) float64 {
	if q.cfg.Key != nil {
		return q.cfg.Key(i, j, d)
	}
	return d
}

// pushNN finds item i's best partner among live items and pushes the pair.
func (q *Queue) pushNN(i int) {
	best, bestKey := -1, math.Inf(1)
	for j := range q.alive {
		if j == i || !q.alive[j] {
			continue
		}
		k := q.key(i, j, q.dist(i, j))
		if k < bestKey {
			best, bestKey = j, k
		}
	}
	if best >= 0 {
		heap.Push(&q.h, pair{key: bestKey, i: i, j: best})
	}
}

// Next returns the next pair of live items to merge. ok is false when fewer
// than two items remain. The caller must mark the result of the merge with
// Merged before the subsequent Next (Greedy) or after draining the current
// batch (Multi).
func (q *Queue) Next() (i, j int, ok bool) {
	if q.live < 2 {
		return 0, 0, false
	}
	if q.cfg.Strategy == Greedy {
		return q.nextGreedy()
	}
	return q.nextMulti()
}

func (q *Queue) nextGreedy() (int, int, bool) {
	for q.h.Len() > 0 {
		p := heap.Pop(&q.h).(pair)
		ai, aj := q.alive[p.i], q.alive[p.j]
		switch {
		case ai && aj:
			q.alive[p.i], q.alive[p.j] = false, false
			q.live -= 2
			return p.i, p.j, true
		case ai:
			q.pushNN(p.i) // partner died: refresh
		case aj:
			q.pushNN(p.j)
		}
	}
	return 0, 0, false
}

func (q *Queue) nextMulti() (int, int, bool) {
	if len(q.batch) == 0 {
		q.buildBatch()
		if len(q.batch) == 0 {
			return 0, 0, false
		}
	}
	p := q.batch[0]
	q.batch = q.batch[1:]
	q.alive[p.i], q.alive[p.j] = false, false
	q.live -= 2
	q.pending++
	return p.i, p.j, true
}

// buildBatch computes the nearest-neighbor pairing of all live items and
// keeps the shortest disjoint pairs, at least one and at most
// ceil(live/2 · 2·BatchFraction).
func (q *Queue) buildBatch() {
	var ids []int
	for i, a := range q.alive {
		if a {
			ids = append(ids, i)
		}
	}
	if len(ids) < 2 {
		return
	}
	cand := make([]pair, 0, len(ids))
	for _, i := range ids {
		best, bestKey := -1, math.Inf(1)
		for _, j := range ids {
			if i == j {
				continue
			}
			k := q.key(i, j, q.dist(i, j))
			if k < bestKey {
				best, bestKey = j, k
			}
		}
		cand = append(cand, pair{key: bestKey, i: i, j: best})
	}
	sort.Slice(cand, func(a, b int) bool { return cand[a].key < cand[b].key })
	limit := int(math.Ceil(float64(len(ids)) * q.cfg.BatchFraction))
	if limit < 1 {
		limit = 1
	}
	used := make(map[int]bool, 2*limit)
	for _, p := range cand {
		if len(q.batch) >= limit {
			break
		}
		if used[p.i] || used[p.j] {
			continue
		}
		used[p.i], used[p.j] = true, true
		q.batch = append(q.batch, p)
	}
	// Anti-starvation: force-pair long-waiting items with their best still
	// unmatched partner, beyond the batch limit.
	for _, i := range ids {
		if used[i] || q.age[i] < starveRounds {
			continue
		}
		best, bestKey := -1, math.Inf(1)
		for _, j := range ids {
			if j == i || used[j] {
				continue
			}
			if k := q.key(i, j, q.dist(i, j)); k < bestKey {
				best, bestKey = j, k
			}
		}
		if best >= 0 {
			used[i], used[best] = true, true
			q.batch = append(q.batch, pair{key: bestKey, i: i, j: best})
		}
	}
	// Items left unmatched this round age by one.
	for _, i := range ids {
		if !used[i] {
			q.age[i]++
		}
	}
}

// Merged registers the item that replaced the most recent merge(s). Items
// must be registered with strictly increasing indices equal to len(alive).
func (q *Queue) Merged(newID int) {
	if newID != len(q.alive) {
		panic("order: Merged called with non-sequential id")
	}
	q.alive = append(q.alive, true)
	q.age = append(q.age, 0)
	q.live++
	if q.cfg.Strategy == Greedy {
		q.pushNN(newID)
	} else if q.pending > 0 {
		q.pending--
	}
}

// Live returns the number of live (unmerged) items.
func (q *Queue) Live() int { return q.live }
