// Package order implements the bottom-up merging order for DME-family clock
// routers: the minimum merging-cost scheme of greedy-DME (Edahiro 1993),
// optionally with the two enhancements named in the thesis (Ch. V.F):
//
//  1. simultaneous multiple mergings per round, which cuts the number of
//     nearest-neighbor recomputations and hence runtime; and
//  2. a delay-target-aware priority that merges subtrees with large delays
//     first, reducing delay-target imbalance and thus wire snaking.
//
// The queue works on abstract item indices: the router supplies a distance
// function (typically geom.DistRR over node regions) and, after each merge,
// registers the replacement item. Distances between two live items never
// change during a run (regions are committed at creation), which the greedy
// strategy exploits for a simple lazy-deletion pairing heap.
//
// # Pairers
//
// All nearest-partner queries go through the pluggable Pairer interface.
// The built-in implementation (Config.Pairer == nil) is the all-pairs scan:
// exact for any key function and O(n) per query, which makes every round of
// the Multi strategy O(n²) — the oracle that caps practical instances at a
// few thousand sinks. Sub-quadratic engines (see internal/spatial for the
// uniform-grid pairer after Edahiro's bucket decomposition) plug in through
// Config.Pairer and must reproduce the oracle's results exactly on tie-free
// inputs; differential tests in internal/spatial enforce this.
//
// Batch pairing (NearestAll) may shard its queries across goroutines. All
// results are written by position and ties break toward the smallest item
// index, so merge sequences are reproducible across GOMAXPROCS settings.
//
// # Batched consumption
//
// NextBatch exposes each round's disjoint merge set at once, which lets the
// router execute the merge bodies concurrently (the pairs of one batch never
// share a subtree) and commit results in batch order. Next remains the
// one-pair-at-a-time view of the same sequence; mixing the two mid-run is
// supported, and both produce identical merge orders.
package order

import (
	"fmt"
	"math"
	"runtime"
	"runtime/debug"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Strategy selects how aggressively merges are batched.
type Strategy int

const (
	// Multi (the default) performs simultaneous multiple mergings — the
	// thesis's enhancement 1, after Edahiro: each round it computes the
	// nearest-neighbor pairing of all live items and merges the shortest
	// disjoint fraction of those pairs before re-pairing.
	Multi Strategy = iota
	// Greedy merges exactly one globally minimum-cost pair at a time
	// (classic greedy-DME order).
	Greedy
	// GreedyBatch drains successive disjoint minimum pairs from the greedy
	// heap into a batch before refreshing, amortizing the nearest-neighbor
	// recomputations of new nodes into one parallel batch query per round.
	// Unlike Greedy, nodes created within a batch cannot pair until the next
	// round (the Multi trade-off at Greedy-like selection quality); unlike
	// Multi, no full re-pairing of the live set happens per round.
	GreedyBatch
)

// Pair is a candidate merge: item I paired with its best partner J at
// priority Key. J is -1 when no partner exists.
type Pair struct {
	Key  float64
	I, J int
}

// Pairer is the nearest-partner engine behind a Queue. Contract:
//
//   - Insert and Delete maintain the live set; item ids are never reused and
//     only grow. Both are called from a single goroutine.
//   - Nearest returns the live partner j ≠ id minimizing the pair key. Exact
//     key ties break toward the smallest j, so results are deterministic.
//     ok is false when no candidate remains.
//   - NearestAll is the batch form over a slice of live ids. It may shard the
//     queries across goroutines but must return, at each position, exactly
//     what Nearest(ids[t]) would (J = -1 when no partner exists). The
//     returned slice may alias an internal buffer: it is valid only until
//     the next NearestAll call.
//   - Scans reports the cumulative number of candidate key evaluations — the
//     pairing-work metric recorded by the scaling benchmarks.
type Pairer interface {
	Insert(id int)
	Delete(id int)
	Nearest(id int) (Pair, bool)
	NearestAll(ids []int) []Pair
	Scans() int64
}

// Config parameterizes a Queue.
type Config struct {
	// Strategy selects Multi (the default), Greedy, or GreedyBatch.
	Strategy Strategy
	// BatchFraction is the fraction of live items merged per Multi or
	// GreedyBatch round, in (0, 0.5]; 0 selects the default 0.5.
	BatchFraction float64
	// Key optionally overrides the pair priority. It receives the two item
	// indices and their distance and returns the priority (lower merges
	// first). Nil means priority = distance. Used for the delay-target
	// enhancement. Batch pairing evaluates Key from concurrent goroutines,
	// so it must be safe for concurrent calls (pure functions are; closures
	// that memoize or otherwise mutate shared state are not).
	Key func(i, j int, dist float64) float64
	// Pairer overrides the nearest-partner engine. Nil selects the built-in
	// all-pairs scan (the exact O(n²)-per-round oracle). Sub-quadratic
	// engines must satisfy the Pairer contract; note that grid pairers prune
	// on geometric lower bounds and therefore require Key ≥ distance for
	// every pair (see internal/spatial).
	Pairer Pairer
}

// Queue produces the sequence of merges. Item indices 0..n-1 are the initial
// items; Merged registers replacement items with increasing indices.
type Queue struct {
	cfg    Config
	dist   func(i, j int) float64
	pairer Pairer
	alive  []bool
	live   int

	// Greedy / GreedyBatch state.
	h     pairHeap
	fresh []int // GreedyBatch: ids inserted since the last heap refresh

	// Multi / GreedyBatch state.
	batch  []Pair
	cursor int   // batch[:cursor] already handed out by Next
	age    []int // rounds an item has survived unmerged (anti-starvation)

	// Reused per-round scratch (buildBatch, NextBatch).
	ids  []int
	used []bool
	out  []Pair

	// batchTime accumulates wall time spent inside NextBatch — the pairing
	// and batch-selection cost of the run, separable from the merge bodies.
	// Measured unconditionally (two clock reads per round, no allocations)
	// and read back through BatchTime by traced callers.
	batchTime time.Duration
}

// starveRounds is the number of Multi rounds an item may go unmerged before
// it is force-paired regardless of cost. Without this, items whose pairings
// all look expensive (e.g. delay-imbalanced leftovers) lose their preferred
// partners every round and end up absorbing the mismatch at the tree root,
// where it is most expensive.
const starveRounds = 3

// pairLess is the (Key, I, J) strict total order used everywhere a set of
// candidate pairs is ranked: the index tie-breaks keep Greedy's heap pops
// and Multi's batch selection deterministic under exact key ties.
func pairLess(a, b Pair) bool {
	if a.Key != b.Key {
		return a.Key < b.Key
	}
	if a.I != b.I {
		return a.I < b.I
	}
	return a.J < b.J
}

// pairHeap is a slice-backed binary min-heap ordered by pairLess. It avoids
// the interface{} boxing of container/heap (one allocation per Push/Pop) and
// is preallocated to the initial item count: the steady-state heap holds one
// candidate per live item plus transient stale entries.
type pairHeap struct{ s []Pair }

func (h *pairHeap) len() int { return len(h.s) }

func (h *pairHeap) push(p Pair) {
	h.s = append(h.s, p)
	i := len(h.s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !pairLess(h.s[i], h.s[parent]) {
			break
		}
		h.s[i], h.s[parent] = h.s[parent], h.s[i]
		i = parent
	}
}

func (h *pairHeap) pop() Pair {
	top := h.s[0]
	last := len(h.s) - 1
	h.s[0] = h.s[last]
	h.s = h.s[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		least := i
		if l < last && pairLess(h.s[l], h.s[least]) {
			least = l
		}
		if r < last && pairLess(h.s[r], h.s[least]) {
			least = r
		}
		if least == i {
			break
		}
		h.s[i], h.s[least] = h.s[least], h.s[i]
		i = least
	}
	return top
}

// New builds a queue over n initial items with the given distance function.
func New(cfg Config, n int, dist func(i, j int) float64) *Queue {
	if cfg.BatchFraction <= 0 || cfg.BatchFraction > 0.5 {
		cfg.BatchFraction = 0.5
	}
	q := &Queue{cfg: cfg, dist: dist, alive: make([]bool, 0, 2*n), live: n}
	q.pairer = cfg.Pairer
	if q.pairer == nil {
		q.pairer = &scanPairer{dist: dist, key: q.key}
	}
	for i := 0; i < n; i++ {
		q.alive = append(q.alive, true)
		q.age = append(q.age, 0)
		q.pairer.Insert(i)
	}
	if cfg.Strategy == Greedy || cfg.Strategy == GreedyBatch {
		q.h.s = make([]Pair, 0, 2*n)
		ids := make([]int, n)
		for i := range ids {
			ids[i] = i
		}
		for _, p := range q.pairer.NearestAll(ids) {
			if p.J >= 0 {
				q.h.push(p)
			}
		}
	}
	return q
}

// key returns the pair priority.
func (q *Queue) key(i, j int, d float64) float64 {
	if q.cfg.Key != nil {
		return q.cfg.Key(i, j, d)
	}
	return d
}

// pushNN finds item i's best partner among live items and pushes the pair.
func (q *Queue) pushNN(i int) {
	if p, ok := q.pairer.Nearest(i); ok {
		q.h.push(p)
	}
}

// Next returns the next pair of live items to merge. ok is false when fewer
// than two items remain. The caller must mark the result of the merge with
// Merged before the subsequent Next (Greedy) or after draining the current
// batch (Multi, GreedyBatch).
func (q *Queue) Next() (i, j int, ok bool) {
	switch q.cfg.Strategy {
	case Greedy:
		if q.live < 2 {
			return 0, 0, false
		}
		return q.nextGreedy()
	case GreedyBatch:
		// GreedyBatch retires the whole batch at selection, so pending
		// batch pairs must be served before consulting the live count.
		if q.cursor >= len(q.batch) {
			if q.live < 2 {
				return 0, 0, false
			}
			q.selectGreedyBatch()
			if len(q.batch) == 0 {
				return 0, 0, false
			}
		}
		p := q.batch[q.cursor]
		q.cursor++
		return p.I, p.J, true
	default:
		if q.cursor >= len(q.batch) && q.live < 2 {
			return 0, 0, false
		}
		return q.nextMulti()
	}
}

// NextBatch returns the next round's batch of disjoint merges, retiring all
// its items, or nil when fewer than two items remain. Under Greedy the batch
// always holds a single pair; under Multi and GreedyBatch it holds the whole
// round. The pairs of one batch never share an item, so the caller may
// execute the merge bodies concurrently; results must be registered with
// Merged in batch order. The returned slice is valid until the next
// NextBatch or Next call.
func (q *Queue) NextBatch() []Pair {
	start := obs.Now()
	out := q.nextBatch()
	q.batchTime += obs.Since(start)
	return out
}

// BatchTime reports the accumulated wall time of all NextBatch calls: the
// run's pairing/selection cost. Greedy's incremental heap refreshes inside
// Merged are not included (Greedy is not the batched strategies' path).
func (q *Queue) BatchTime() time.Duration { return q.batchTime }

func (q *Queue) nextBatch() []Pair {
	switch q.cfg.Strategy {
	case Greedy:
		if q.live < 2 {
			return nil
		}
		i, j, ok := q.nextGreedy()
		if !ok {
			return nil
		}
		q.out = append(q.out[:0], Pair{I: i, J: j})
		return q.out
	case GreedyBatch:
		if q.cursor >= len(q.batch) {
			if q.live < 2 {
				return nil
			}
			q.selectGreedyBatch()
		}
		rest := q.batch[q.cursor:] // pairs were retired at selection
		q.cursor = len(q.batch)
		return rest
	default:
		if q.cursor >= len(q.batch) {
			if q.live < 2 {
				return nil
			}
			q.buildBatch()
			if len(q.batch) == 0 {
				return nil
			}
		}
		rest := q.batch[q.cursor:]
		q.cursor = len(q.batch)
		for _, p := range rest {
			q.retire(p.I, p.J)
		}
		return rest
	}
}

// retire marks both items of a chosen pair dead, here and in the pairer.
func (q *Queue) retire(i, j int) {
	q.alive[i], q.alive[j] = false, false
	q.pairer.Delete(i)
	q.pairer.Delete(j)
	q.live -= 2
}

func (q *Queue) nextGreedy() (int, int, bool) {
	for q.h.len() > 0 {
		p := q.h.pop()
		ai, aj := q.alive[p.I], q.alive[p.J]
		switch {
		case ai && aj:
			q.retire(p.I, p.J)
			return p.I, p.J, true
		case ai:
			q.pushNN(p.I) // partner died: refresh
		case aj:
			q.pushNN(p.J)
		}
	}
	return 0, 0, false
}

func (q *Queue) nextMulti() (int, int, bool) {
	if q.cursor >= len(q.batch) {
		q.buildBatch()
		if len(q.batch) == 0 {
			return 0, 0, false
		}
	}
	p := q.batch[q.cursor]
	q.cursor++
	q.retire(p.I, p.J)
	return p.I, p.J, true
}

// selectGreedyBatch drains up to ceil(live·BatchFraction) disjoint minimum
// pairs from the greedy heap into q.batch, retiring them. Before selecting,
// the nearest partners of all nodes registered since the last round are
// computed in one batch query — the batched form of Greedy's per-merge heap
// refresh, which shards across CPUs instead of issuing sequential queries.
func (q *Queue) selectGreedyBatch() {
	q.batch = q.batch[:0]
	q.cursor = 0
	if len(q.fresh) > 0 {
		for _, p := range q.pairer.NearestAll(q.fresh) {
			if p.J >= 0 {
				q.h.push(p)
			}
		}
		q.fresh = q.fresh[:0]
	}
	limit := int(math.Ceil(float64(q.live) * q.cfg.BatchFraction))
	if limit < 1 {
		limit = 1
	}
	for len(q.batch) < limit && q.h.len() > 0 {
		p := q.h.pop()
		ai, aj := q.alive[p.I], q.alive[p.J]
		switch {
		case ai && aj:
			q.retire(p.I, p.J)
			q.batch = append(q.batch, p)
		case ai:
			q.pushNN(p.I)
		case aj:
			q.pushNN(p.J)
		}
	}
}

// buildBatch computes the nearest-neighbor pairing of all live items and
// keeps the shortest disjoint pairs, at least one and at most
// ceil(live/2 · 2·BatchFraction). The pairing itself runs through the
// pairer's batch query (parallelizable); the final disjoint selection is a
// deterministic sequential sweep in (key, index) order.
func (q *Queue) buildBatch() {
	q.batch = q.batch[:0]
	q.cursor = 0
	ids := q.ids[:0]
	for i, a := range q.alive {
		if a {
			ids = append(ids, i)
		}
	}
	q.ids = ids
	if len(ids) < 2 {
		return
	}
	all := q.pairer.NearestAll(ids)
	cand := all[:0]
	for _, p := range all {
		if p.J >= 0 {
			cand = append(cand, p)
		}
	}
	// pairLess is a strict total order over the candidates (one entry per
	// item), so the sorted sequence — and hence the selected batch — is
	// reproducible regardless of sort stability or pairing parallelism.
	// (slices.SortFunc, unlike sort.Slice, builds no reflect swapper: this
	// sort runs every Multi round and stays allocation-free.)
	slices.SortFunc(cand, func(a, b Pair) int {
		switch {
		case pairLess(a, b):
			return -1
		case pairLess(b, a):
			return 1
		default:
			return 0
		}
	})
	limit := int(math.Ceil(float64(len(ids)) * q.cfg.BatchFraction))
	if limit < 1 {
		limit = 1
	}
	for len(q.used) < len(q.alive) {
		q.used = append(q.used, false)
	}
	used := q.used
	for _, i := range ids {
		used[i] = false
	}
	// Anti-starvation first: force-pair long-waiting items before the normal
	// selection can claim their partners. Running this after the selection
	// (the original order) leaves a starved item stranded whenever the
	// round's disjoint pairing covers every other item, which on odd-sized
	// rounds is exactly the starved item's fate. The partner is chosen by
	// raw distance, not key: the key penalty is what starved the item in the
	// first place, and the rule merges it "regardless of cost". Starved
	// items are rare, so the O(live) scan here does not affect scaling.
	for _, i := range ids {
		if used[i] || q.age[i] < starveRounds {
			continue
		}
		best, bestD := -1, math.Inf(1)
		for _, j := range ids {
			if j == i || used[j] {
				continue
			}
			if d := q.dist(i, j); d < bestD || (d == bestD && j < best) {
				best, bestD = j, d
			}
		}
		if best >= 0 {
			used[i], used[best] = true, true
			q.batch = append(q.batch, Pair{Key: bestD, I: i, J: best})
		}
	}
	for _, p := range cand {
		if len(q.batch) >= limit {
			break
		}
		if used[p.I] || used[p.J] {
			continue
		}
		used[p.I], used[p.J] = true, true
		q.batch = append(q.batch, p)
	}
	// Items left unmatched this round age by one.
	for _, i := range ids {
		if !used[i] {
			q.age[i]++
		}
	}
}

// Merged registers the item that replaced the most recent merge(s). Items
// must be registered with strictly increasing indices equal to len(alive).
func (q *Queue) Merged(newID int) {
	if newID != len(q.alive) {
		panic("order: Merged called with non-sequential id")
	}
	q.alive = append(q.alive, true)
	q.age = append(q.age, 0)
	q.live++
	q.pairer.Insert(newID)
	switch q.cfg.Strategy {
	case Greedy:
		q.pushNN(newID)
	case GreedyBatch:
		q.fresh = append(q.fresh, newID)
	}
}

// Live returns the number of live (unmerged) items.
func (q *Queue) Live() int { return q.live }

// Scans reports the cumulative number of candidate key evaluations performed
// by the pairer — the pairing-work metric of the scaling benchmarks.
func (q *Queue) Scans() int64 { return q.pairer.Scans() }

// scanPairer is the built-in oracle engine: a linear scan over all live
// items per query. Exact for any key function.
type scanPairer struct {
	alive []bool
	dist  func(i, j int) float64
	key   func(i, j int, d float64) float64
	out   []Pair
	scans atomic.Int64
}

func (p *scanPairer) Insert(id int) {
	for len(p.alive) <= id {
		p.alive = append(p.alive, false)
	}
	p.alive[id] = true
}

func (p *scanPairer) Delete(id int) {
	if id >= 0 && id < len(p.alive) {
		p.alive[id] = false
	}
}

func (p *scanPairer) Nearest(i int) (Pair, bool) {
	best, bestKey := -1, math.Inf(1)
	var n int64
	for j := range p.alive {
		if j == i || !p.alive[j] {
			continue
		}
		n++
		k := p.key(i, j, p.dist(i, j))
		if k < bestKey || (k == bestKey && j < best) {
			best, bestKey = j, k
		}
	}
	p.scans.Add(n)
	if best < 0 {
		return Pair{I: i, J: -1}, false
	}
	return Pair{Key: bestKey, I: i, J: best}, true
}

func (p *scanPairer) NearestAll(ids []int) []Pair {
	if cap(p.out) < len(ids) {
		p.out = make([]Pair, len(ids))
	}
	out := p.out[:len(ids)]
	ParallelChunks(len(ids), func(lo, hi int) {
		for t := lo; t < hi; t++ {
			out[t], _ = p.Nearest(ids[t])
		}
	})
	return out
}

func (p *scanPairer) Scans() int64 { return p.scans.Load() }

// parallelMin is the batch size below which ParallelChunks runs inline:
// under ~a couple hundred queries the goroutine fan-out costs more than the
// scan itself.
const parallelMin = 192

// ParallelChunks splits [0, n) into contiguous chunks, one per available
// CPU, and calls f(lo, hi) for each — inline when n is small. Callers write
// results by position, so output is deterministic regardless of scheduling.
// Shared by the built-in scan pairer and external engines (internal/spatial).
func ParallelChunks(n int, f func(lo, hi int)) {
	ParallelChunksN(n, runtime.GOMAXPROCS(0), parallelMin, f)
}

// WorkerPanic is a panic captured on a ParallelChunks worker goroutine and
// re-raised on the calling goroutine. A panic left on a spawned goroutine is
// unrecoverable anywhere else and kills the process; funneling it through
// the caller lets a recover at the phase boundary (the dispatch layer's
// panic containment) turn it into an error instead. Value is the original
// panic value, Stack the worker goroutine's stack at capture.
type WorkerPanic struct {
	Value any
	Stack []byte
}

func (w *WorkerPanic) Error() string {
	return fmt.Sprintf("order: parallel worker panicked: %v\n%s", w.Value, w.Stack)
}

// ParallelChunksN is ParallelChunks with an explicit worker count and inline
// threshold: n below minInline (or workers ≤ 1) runs f(0, n) on the calling
// goroutine. Used by the router's parallel merge executor, whose worker
// count is an option rather than GOMAXPROCS. A panicking chunk does not kill
// the process: the remaining chunks finish, then the first captured panic is
// re-raised on the calling goroutine as a *WorkerPanic (the inline path lets
// the panic propagate directly — it is already on the caller).
func ParallelChunksN(n, workers, minInline int, f func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if n < minInline || workers <= 1 {
		f(0, n)
		return
	}
	if workers > n {
		workers = n
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	var panicMu sync.Mutex
	var panicked *WorkerPanic
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicMu.Lock()
					if panicked == nil {
						panicked = &WorkerPanic{Value: r, Stack: debug.Stack()}
					}
					panicMu.Unlock()
				}
			}()
			f(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
}
