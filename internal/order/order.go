// Package order implements the bottom-up merging order for DME-family clock
// routers: the minimum merging-cost scheme of greedy-DME (Edahiro 1993),
// optionally with the two enhancements named in the thesis (Ch. V.F):
//
//  1. simultaneous multiple mergings per round, which cuts the number of
//     nearest-neighbor recomputations and hence runtime; and
//  2. a delay-target-aware priority that merges subtrees with large delays
//     first, reducing delay-target imbalance and thus wire snaking.
//
// The queue works on abstract item indices: the router supplies a distance
// function (typically geom.DistRR over node regions) and, after each merge,
// registers the replacement item. Distances between two live items never
// change during a run (regions are committed at creation), which the greedy
// strategy exploits for a simple lazy-deletion pairing heap.
//
// # Pairers
//
// All nearest-partner queries go through the pluggable Pairer interface.
// The built-in implementation (Config.Pairer == nil) is the all-pairs scan:
// exact for any key function and O(n) per query, which makes every round of
// the Multi strategy O(n²) — the oracle that caps practical instances at a
// few thousand sinks. Sub-quadratic engines (see internal/spatial for the
// uniform-grid pairer after Edahiro's bucket decomposition) plug in through
// Config.Pairer and must reproduce the oracle's results exactly on tie-free
// inputs; differential tests in internal/spatial enforce this.
//
// Batch pairing (NearestAll) may shard its queries across goroutines. All
// results are written by position and ties break toward the smallest item
// index, so merge sequences are reproducible across GOMAXPROCS settings.
package order

import (
	"container/heap"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
)

// Strategy selects how aggressively merges are batched.
type Strategy int

const (
	// Multi (the default) performs simultaneous multiple mergings — the
	// thesis's enhancement 1, after Edahiro: each round it computes the
	// nearest-neighbor pairing of all live items and merges the shortest
	// disjoint fraction of those pairs before re-pairing.
	Multi Strategy = iota
	// Greedy merges exactly one globally minimum-cost pair at a time
	// (classic greedy-DME order).
	Greedy
)

// Pair is a candidate merge: item I paired with its best partner J at
// priority Key. J is -1 when no partner exists.
type Pair struct {
	Key  float64
	I, J int
}

// Pairer is the nearest-partner engine behind a Queue. Contract:
//
//   - Insert and Delete maintain the live set; item ids are never reused and
//     only grow. Both are called from a single goroutine.
//   - Nearest returns the live partner j ≠ id minimizing the pair key. Exact
//     key ties break toward the smallest j, so results are deterministic.
//     ok is false when no candidate remains.
//   - NearestAll is the batch form over a slice of live ids. It may shard the
//     queries across goroutines but must return, at each position, exactly
//     what Nearest(ids[t]) would (J = -1 when no partner exists).
//   - Scans reports the cumulative number of candidate key evaluations — the
//     pairing-work metric recorded by the scaling benchmarks.
type Pairer interface {
	Insert(id int)
	Delete(id int)
	Nearest(id int) (Pair, bool)
	NearestAll(ids []int) []Pair
	Scans() int64
}

// Config parameterizes a Queue.
type Config struct {
	// Strategy selects Multi (the default) or Greedy.
	Strategy Strategy
	// BatchFraction is the fraction of live items merged per Multi round,
	// in (0, 0.5]; 0 selects the default 0.5.
	BatchFraction float64
	// Key optionally overrides the pair priority. It receives the two item
	// indices and their distance and returns the priority (lower merges
	// first). Nil means priority = distance. Used for the delay-target
	// enhancement. Batch pairing evaluates Key from concurrent goroutines,
	// so it must be safe for concurrent calls (pure functions are; closures
	// that memoize or otherwise mutate shared state are not).
	Key func(i, j int, dist float64) float64
	// Pairer overrides the nearest-partner engine. Nil selects the built-in
	// all-pairs scan (the exact O(n²)-per-round oracle). Sub-quadratic
	// engines must satisfy the Pairer contract; note that grid pairers prune
	// on geometric lower bounds and therefore require Key ≥ distance for
	// every pair (see internal/spatial).
	Pairer Pairer
}

// Queue produces the sequence of merges. Item indices 0..n-1 are the initial
// items; Merged registers replacement items with increasing indices.
type Queue struct {
	cfg    Config
	dist   func(i, j int) float64
	pairer Pairer
	alive  []bool
	live   int

	// Greedy state.
	h pairHeap

	// Multi state.
	batch   []Pair
	age     []int // rounds an item has survived unmerged (anti-starvation)
	pending int   // merges issued since last batch build whose results are not yet registered
}

// starveRounds is the number of Multi rounds an item may go unmerged before
// it is force-paired regardless of cost. Without this, items whose pairings
// all look expensive (e.g. delay-imbalanced leftovers) lose their preferred
// partners every round and end up absorbing the mismatch at the tree root,
// where it is most expensive.
const starveRounds = 3

// pairLess is the (Key, I, J) strict total order used everywhere a set of
// candidate pairs is ranked: the index tie-breaks keep Greedy's heap pops
// and Multi's batch selection deterministic under exact key ties.
func pairLess(a, b Pair) bool {
	if a.Key != b.Key {
		return a.Key < b.Key
	}
	if a.I != b.I {
		return a.I < b.I
	}
	return a.J < b.J
}

// pairHeap orders candidates by pairLess.
type pairHeap []Pair

func (h pairHeap) Len() int            { return len(h) }
func (h pairHeap) Less(a, b int) bool  { return pairLess(h[a], h[b]) }
func (h pairHeap) Swap(a, b int)       { h[a], h[b] = h[b], h[a] }
func (h *pairHeap) Push(x interface{}) { *h = append(*h, x.(Pair)) }
func (h *pairHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// New builds a queue over n initial items with the given distance function.
func New(cfg Config, n int, dist func(i, j int) float64) *Queue {
	if cfg.BatchFraction <= 0 || cfg.BatchFraction > 0.5 {
		cfg.BatchFraction = 0.5
	}
	q := &Queue{cfg: cfg, dist: dist, alive: make([]bool, 0, 2*n), live: n}
	q.pairer = cfg.Pairer
	if q.pairer == nil {
		q.pairer = &scanPairer{dist: dist, key: q.key}
	}
	for i := 0; i < n; i++ {
		q.alive = append(q.alive, true)
		q.age = append(q.age, 0)
		q.pairer.Insert(i)
	}
	if cfg.Strategy == Greedy {
		ids := make([]int, n)
		for i := range ids {
			ids[i] = i
		}
		for _, p := range q.pairer.NearestAll(ids) {
			if p.J >= 0 {
				heap.Push(&q.h, p)
			}
		}
	}
	return q
}

// key returns the pair priority.
func (q *Queue) key(i, j int, d float64) float64 {
	if q.cfg.Key != nil {
		return q.cfg.Key(i, j, d)
	}
	return d
}

// pushNN finds item i's best partner among live items and pushes the pair.
func (q *Queue) pushNN(i int) {
	if p, ok := q.pairer.Nearest(i); ok {
		heap.Push(&q.h, p)
	}
}

// Next returns the next pair of live items to merge. ok is false when fewer
// than two items remain. The caller must mark the result of the merge with
// Merged before the subsequent Next (Greedy) or after draining the current
// batch (Multi).
func (q *Queue) Next() (i, j int, ok bool) {
	if q.live < 2 {
		return 0, 0, false
	}
	if q.cfg.Strategy == Greedy {
		return q.nextGreedy()
	}
	return q.nextMulti()
}

// retire marks both items of a chosen pair dead, here and in the pairer.
func (q *Queue) retire(i, j int) {
	q.alive[i], q.alive[j] = false, false
	q.pairer.Delete(i)
	q.pairer.Delete(j)
	q.live -= 2
}

func (q *Queue) nextGreedy() (int, int, bool) {
	for q.h.Len() > 0 {
		p := heap.Pop(&q.h).(Pair)
		ai, aj := q.alive[p.I], q.alive[p.J]
		switch {
		case ai && aj:
			q.retire(p.I, p.J)
			return p.I, p.J, true
		case ai:
			q.pushNN(p.I) // partner died: refresh
		case aj:
			q.pushNN(p.J)
		}
	}
	return 0, 0, false
}

func (q *Queue) nextMulti() (int, int, bool) {
	if len(q.batch) == 0 {
		q.buildBatch()
		if len(q.batch) == 0 {
			return 0, 0, false
		}
	}
	p := q.batch[0]
	q.batch = q.batch[1:]
	q.retire(p.I, p.J)
	q.pending++
	return p.I, p.J, true
}

// buildBatch computes the nearest-neighbor pairing of all live items and
// keeps the shortest disjoint pairs, at least one and at most
// ceil(live/2 · 2·BatchFraction). The pairing itself runs through the
// pairer's batch query (parallelizable); the final disjoint selection is a
// deterministic sequential sweep in (key, index) order.
func (q *Queue) buildBatch() {
	var ids []int
	for i, a := range q.alive {
		if a {
			ids = append(ids, i)
		}
	}
	if len(ids) < 2 {
		return
	}
	all := q.pairer.NearestAll(ids)
	cand := all[:0]
	for _, p := range all {
		if p.J >= 0 {
			cand = append(cand, p)
		}
	}
	// pairLess is a strict total order over the candidates (one entry per
	// item), so the sorted sequence — and hence the selected batch — is
	// reproducible regardless of sort stability or pairing parallelism.
	sort.Slice(cand, func(a, b int) bool { return pairLess(cand[a], cand[b]) })
	limit := int(math.Ceil(float64(len(ids)) * q.cfg.BatchFraction))
	if limit < 1 {
		limit = 1
	}
	used := make(map[int]bool, 2*limit)
	// Anti-starvation first: force-pair long-waiting items before the normal
	// selection can claim their partners. Running this after the selection
	// (the original order) leaves a starved item stranded whenever the
	// round's disjoint pairing covers every other item, which on odd-sized
	// rounds is exactly the starved item's fate. The partner is chosen by
	// raw distance, not key: the key penalty is what starved the item in the
	// first place, and the rule merges it "regardless of cost". Starved
	// items are rare, so the O(live) scan here does not affect scaling.
	for _, i := range ids {
		if used[i] || q.age[i] < starveRounds {
			continue
		}
		best, bestD := -1, math.Inf(1)
		for _, j := range ids {
			if j == i || used[j] {
				continue
			}
			if d := q.dist(i, j); d < bestD || (d == bestD && j < best) {
				best, bestD = j, d
			}
		}
		if best >= 0 {
			used[i], used[best] = true, true
			q.batch = append(q.batch, Pair{Key: bestD, I: i, J: best})
		}
	}
	for _, p := range cand {
		if len(q.batch) >= limit {
			break
		}
		if used[p.I] || used[p.J] {
			continue
		}
		used[p.I], used[p.J] = true, true
		q.batch = append(q.batch, p)
	}
	// Items left unmatched this round age by one.
	for _, i := range ids {
		if !used[i] {
			q.age[i]++
		}
	}
}

// Merged registers the item that replaced the most recent merge(s). Items
// must be registered with strictly increasing indices equal to len(alive).
func (q *Queue) Merged(newID int) {
	if newID != len(q.alive) {
		panic("order: Merged called with non-sequential id")
	}
	q.alive = append(q.alive, true)
	q.age = append(q.age, 0)
	q.live++
	q.pairer.Insert(newID)
	if q.cfg.Strategy == Greedy {
		q.pushNN(newID)
	} else if q.pending > 0 {
		q.pending--
	}
}

// Live returns the number of live (unmerged) items.
func (q *Queue) Live() int { return q.live }

// Scans reports the cumulative number of candidate key evaluations performed
// by the pairer — the pairing-work metric of the scaling benchmarks.
func (q *Queue) Scans() int64 { return q.pairer.Scans() }

// scanPairer is the built-in oracle engine: a linear scan over all live
// items per query. Exact for any key function.
type scanPairer struct {
	alive []bool
	dist  func(i, j int) float64
	key   func(i, j int, d float64) float64
	scans atomic.Int64
}

func (p *scanPairer) Insert(id int) {
	for len(p.alive) <= id {
		p.alive = append(p.alive, false)
	}
	p.alive[id] = true
}

func (p *scanPairer) Delete(id int) {
	if id >= 0 && id < len(p.alive) {
		p.alive[id] = false
	}
}

func (p *scanPairer) Nearest(i int) (Pair, bool) {
	best, bestKey := -1, math.Inf(1)
	var n int64
	for j := range p.alive {
		if j == i || !p.alive[j] {
			continue
		}
		n++
		k := p.key(i, j, p.dist(i, j))
		if k < bestKey || (k == bestKey && j < best) {
			best, bestKey = j, k
		}
	}
	p.scans.Add(n)
	if best < 0 {
		return Pair{I: i, J: -1}, false
	}
	return Pair{Key: bestKey, I: i, J: best}, true
}

func (p *scanPairer) NearestAll(ids []int) []Pair {
	out := make([]Pair, len(ids))
	ParallelChunks(len(ids), func(lo, hi int) {
		for t := lo; t < hi; t++ {
			out[t], _ = p.Nearest(ids[t])
		}
	})
	return out
}

func (p *scanPairer) Scans() int64 { return p.scans.Load() }

// parallelMin is the batch size below which ParallelChunks runs inline:
// under ~a couple hundred queries the goroutine fan-out costs more than the
// scan itself.
const parallelMin = 192

// ParallelChunks splits [0, n) into contiguous chunks, one per available
// CPU, and calls f(lo, hi) for each — inline when n is small. Callers write
// results by position, so output is deterministic regardless of scheduling.
// Shared by the built-in scan pairer and external engines (internal/spatial).
func ParallelChunks(n int, f func(lo, hi int)) {
	workers := runtime.GOMAXPROCS(0)
	if n < parallelMin || workers <= 1 {
		if n > 0 {
			f(0, n)
		}
		return
	}
	if workers > n {
		workers = n
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			f(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
