package order

import (
	"math"
	"math/rand"
	"testing"
)

// runAll drains the queue simulating merges; dist of a merged item is the
// midpoint of its parts (1-D toy metric). Returns the merge sequence.
func runAll(t *testing.T, cfg Config, pos []float64) [][2]int {
	t.Helper()
	coords := append([]float64(nil), pos...)
	dist := func(i, j int) float64 { return math.Abs(coords[i] - coords[j]) }
	q := New(cfg, len(pos), dist)
	var seq [][2]int
	for {
		i, j, ok := q.Next()
		if !ok {
			break
		}
		if i == j {
			t.Fatal("self merge")
		}
		seq = append(seq, [2]int{i, j})
		coords = append(coords, (coords[i]+coords[j])/2)
		q.Merged(len(coords) - 1)
	}
	return seq
}

func TestGreedyMergesAll(t *testing.T) {
	pos := []float64{0, 10, 11, 50, 52, 100}
	seq := runAll(t, Config{Strategy: Greedy}, pos)
	if len(seq) != len(pos)-1 {
		t.Fatalf("merges = %d, want %d", len(seq), len(pos)-1)
	}
	// First merge must be the globally closest pair (10, 11).
	first := seq[0]
	if !(first == [2]int{1, 2} || first == [2]int{2, 1}) {
		t.Errorf("first merge = %v, want {1,2}", first)
	}
}

func TestMultiMergesAll(t *testing.T) {
	for _, frac := range []float64{0, 0.25, 0.5} {
		pos := []float64{3, 1, 4, 1.5, 9, 2.6, 5, 3.5, 8, 9.7}
		seq := runAll(t, Config{Strategy: Multi, BatchFraction: frac}, pos)
		if len(seq) != len(pos)-1 {
			t.Fatalf("frac %v: merges = %d, want %d", frac, len(seq), len(pos)-1)
		}
	}
}

func TestEachItemMergedOnce(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for _, st := range []Strategy{Greedy, Multi} {
		pos := make([]float64, 64)
		for i := range pos {
			pos[i] = r.Float64() * 1000
		}
		seq := runAll(t, Config{Strategy: st}, pos)
		used := map[int]bool{}
		for _, p := range seq {
			for _, x := range p {
				if used[x] {
					t.Fatalf("strategy %v: item %d merged twice", st, x)
				}
				used[x] = true
			}
		}
		// All original items participate; exactly one final item never merges.
		total := 2*len(pos) - 1
		unused := 0
		for i := 0; i < total; i++ {
			if !used[i] {
				unused++
			}
		}
		if unused != 1 {
			t.Fatalf("strategy %v: %d unmerged items, want 1", st, unused)
		}
	}
}

func TestTwoItems(t *testing.T) {
	for _, st := range []Strategy{Greedy, Multi} {
		seq := runAll(t, Config{Strategy: st}, []float64{1, 2})
		if len(seq) != 1 {
			t.Fatalf("strategy %v: merges = %d", st, len(seq))
		}
	}
}

func TestSingleItemNoMerge(t *testing.T) {
	q := New(Config{}, 1, func(i, j int) float64 { return 0 })
	if _, _, ok := q.Next(); ok {
		t.Error("single item should not merge")
	}
}

func TestCustomKeyChangesOrder(t *testing.T) {
	// Three items where distance favors (0,1) but the key biases toward
	// merging item 2 (simulating a large delay target) first.
	pos := []float64{0, 1, 5, 5.5}
	delay := map[int]float64{0: 0, 1: 0, 2: 100, 3: 100}
	cfg := Config{Strategy: Greedy, Key: func(i, j int, d float64) float64 {
		return d - 0.1*(delay[i]+delay[j])
	}}
	coords := append([]float64(nil), pos...)
	dist := func(i, j int) float64 { return math.Abs(coords[i] - coords[j]) }
	q := New(cfg, len(pos), dist)
	i, j, ok := q.Next()
	if !ok {
		t.Fatal("no merge")
	}
	if !(i == 2 && j == 3 || i == 3 && j == 2) {
		t.Errorf("first merge = (%d,%d), want the delayed pair (2,3)", i, j)
	}
}

func TestGreedyPicksShortestAmongRemaining(t *testing.T) {
	// A line of points; greedy must never merge a pair while a strictly
	// closer live pair exists at that moment.
	r := rand.New(rand.NewSource(5))
	pos := make([]float64, 32)
	for i := range pos {
		pos[i] = r.Float64() * 1e4
	}
	coords := append([]float64(nil), pos...)
	dist := func(i, j int) float64 { return math.Abs(coords[i] - coords[j]) }
	q := New(Config{Strategy: Greedy}, len(pos), dist)
	alive := map[int]bool{}
	for i := range pos {
		alive[i] = true
	}
	for {
		i, j, ok := q.Next()
		if !ok {
			break
		}
		got := dist(i, j)
		// Verify global minimality over the live set (i, j excluded already
		// by Next, so temporarily restore).
		alive[i], alive[j] = true, true
		best := math.Inf(1)
		for a := range alive {
			for b := range alive {
				if a < b && alive[a] && alive[b] {
					if d := dist(a, b); d < best {
						best = d
					}
				}
			}
		}
		if got > best+1e-9 {
			t.Fatalf("merged pair at distance %v while pair at %v existed", got, best)
		}
		delete(alive, i)
		delete(alive, j)
		coords = append(coords, (coords[i]+coords[j])/2)
		id := len(coords) - 1
		q.Merged(id)
		alive[id] = true
	}
}

func TestGreedyBatchMergesAll(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	pos := make([]float64, 100)
	for i := range pos {
		pos[i] = r.Float64() * 1e4
	}
	for _, frac := range []float64{0, 0.1, 0.5} {
		seq := runAll(t, Config{Strategy: GreedyBatch, BatchFraction: frac}, pos)
		if len(seq) != len(pos)-1 {
			t.Fatalf("frac %v: merges = %d, want %d", frac, len(seq), len(pos)-1)
		}
		used := map[int]bool{}
		for _, p := range seq {
			for _, x := range p {
				if used[x] {
					t.Fatalf("item %d merged twice", x)
				}
				used[x] = true
			}
		}
	}
	// The first merge of the first batch is the globally closest pair.
	seq := runAll(t, Config{Strategy: GreedyBatch}, []float64{0, 10, 11, 50, 52, 100})
	if first := seq[0]; !(first == [2]int{1, 2} || first == [2]int{2, 1}) {
		t.Errorf("first merge = %v, want {1,2}", first)
	}
}

// drainBatches consumes a queue through NextBatch, simulating merges with
// the same 1-D midpoint metric as runAll.
func drainBatches(t *testing.T, cfg Config, pos []float64) [][2]int {
	t.Helper()
	coords := append([]float64(nil), pos...)
	dist := func(i, j int) float64 { return math.Abs(coords[i] - coords[j]) }
	q := New(cfg, len(pos), dist)
	var seq [][2]int
	for {
		batch := q.NextBatch()
		if len(batch) == 0 {
			break
		}
		// Batch pairs must be disjoint (the parallel-execution contract).
		seen := map[int]bool{}
		for _, p := range batch {
			if seen[p.I] || seen[p.J] {
				t.Fatalf("batch reuses an item: %v", batch)
			}
			seen[p.I], seen[p.J] = true, true
		}
		for _, p := range batch {
			seq = append(seq, [2]int{p.I, p.J})
			coords = append(coords, (coords[p.I]+coords[p.J])/2)
			q.Merged(len(coords) - 1)
		}
	}
	return seq
}

// TestNextBatchMatchesNext: the batched view must yield exactly the merge
// sequence of the one-at-a-time view, for every strategy.
func TestNextBatchMatchesNext(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	pos := make([]float64, 120)
	for i := range pos {
		pos[i] = r.Float64() * 1e4
	}
	for _, st := range []Strategy{Greedy, Multi, GreedyBatch} {
		one := runAll(t, Config{Strategy: st}, pos)
		batched := drainBatches(t, Config{Strategy: st}, pos)
		if len(one) != len(batched) {
			t.Fatalf("strategy %v: %d merges (Next) vs %d (NextBatch)", st, len(one), len(batched))
		}
		for k := range one {
			if one[k] != batched[k] {
				t.Fatalf("strategy %v: merge %d = %v (Next) vs %v (NextBatch)", st, k, one[k], batched[k])
			}
		}
	}
}

// TestParallelChunksPanicPropagates pins the goroutine-panic funnel: a panic
// on any worker chunk must surface as a *WorkerPanic re-raised on the calling
// goroutine (where a phase-boundary recover can contain it), never die on the
// spawned goroutine and kill the process — and the sibling chunks must all
// have finished before it is re-raised.
func TestParallelChunksPanicPropagates(t *testing.T) {
	const n = 1024
	var ran [n]bool
	var recovered any
	func() {
		defer func() { recovered = recover() }()
		ParallelChunksN(n, 4, 1, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				ran[i] = true
			}
			if lo == 0 {
				panic("chunk zero exploded")
			}
		})
	}()
	wp, ok := recovered.(*WorkerPanic)
	if !ok {
		t.Fatalf("recovered %T (%v), want *WorkerPanic", recovered, recovered)
	}
	if wp.Value != "chunk zero exploded" {
		t.Errorf("WorkerPanic.Value = %v", wp.Value)
	}
	if len(wp.Stack) == 0 {
		t.Error("WorkerPanic carries no worker stack")
	}
	for i, r := range ran {
		if !r {
			t.Fatalf("chunk containing %d never finished before the re-raise", i)
		}
	}

	// The inline path (workers ≤ 1) keeps the raw panic: it is already on the
	// calling goroutine, so wrapping it would only bury the original value.
	var inline any
	func() {
		defer func() { inline = recover() }()
		ParallelChunksN(8, 1, 1, func(lo, hi int) { panic("inline") })
	}()
	if inline != "inline" {
		t.Errorf("inline path panic = %v, want the raw value", inline)
	}
}
