package order

import (
	"math"
	"testing"
)

// TestAntiStarvation constructs the pathology the rule exists for: one item
// whose pairings are all heavily penalized by the key. Without force-pairing
// it would survive to the very last merge; with the rule it must be merged
// within a few rounds of becoming starved.
func TestAntiStarvation(t *testing.T) {
	const n = 32
	const pariah = 0
	coords := make([]float64, 0, 2*n)
	for i := 0; i < n; i++ {
		coords = append(coords, float64(i))
	}
	dist := func(i, j int) float64 { return math.Abs(coords[i] - coords[j]) }
	key := func(i, j int, d float64) float64 {
		if i == pariah || j == pariah {
			return d + 1e9 // everything involving the pariah looks terrible
		}
		return d
	}
	q := New(Config{Strategy: Multi, Key: key}, n, dist)
	mergeIdx := 0
	pariahMergedAt := -1
	for {
		i, j, ok := q.Next()
		if !ok {
			break
		}
		if i == pariah || j == pariah {
			pariahMergedAt = mergeIdx
		}
		coords = append(coords, (coords[i]+coords[j])/2)
		q.Merged(len(coords) - 1)
		mergeIdx++
	}
	if pariahMergedAt < 0 {
		t.Fatal("pariah never merged")
	}
	// Without anti-starvation the pariah merges last (index n−2 = 30).
	// Rounds shrink the live set by ~half; after starveRounds rounds the
	// pariah must be force-paired, well before the end.
	if pariahMergedAt >= n-2 {
		t.Errorf("pariah merged at index %d (the final merge) — starved", pariahMergedAt)
	}
	t.Logf("pariah merged at %d of %d", pariahMergedAt, n-1)
}

// TestAgesResetOnMerge: merged replacements start with age zero.
func TestAgesResetOnMerge(t *testing.T) {
	coords := []float64{0, 1, 100, 101}
	dist := func(i, j int) float64 { return math.Abs(coords[i] - coords[j]) }
	q := New(Config{Strategy: Multi}, 4, dist)
	i, j, ok := q.Next()
	if !ok {
		t.Fatal("no merge")
	}
	coords = append(coords, (coords[i]+coords[j])/2)
	q.Merged(len(coords) - 1)
	if got := q.age[len(coords)-1]; got != 0 {
		t.Errorf("new item age = %d", got)
	}
}
