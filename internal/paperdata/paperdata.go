// Package paperdata embeds the numbers the thesis reports in its evaluation
// (Tables I and II), as machine-readable records. They drive the
// paper-versus-measured comparisons of cmd/compare and EXPERIMENTS.md and
// keep the reproduction's target values under test.
package paperdata

// Row is one line of a thesis table.
type Row struct {
	Circuit string
	Sinks   int
	// Groups is 1 for the EXT-BST baseline rows.
	Groups    int
	Algorithm string // "EXT-BST" or "AST-DME"
	Wirelen   float64
	// ReductionPct is the thesis's Reduction column (vs the circuit's
	// EXT-BST row); 0 for baseline rows.
	ReductionPct float64
	// MaxSkewPs is the thesis's "Maximum Skew(ps)" column.
	MaxSkewPs float64
	// CPUSeconds is the thesis's CPU column (1.6 GHz Pentium-4, 2006).
	CPUSeconds float64
}

// TableI is the thesis's Table I: clusters of sink groups.
var TableI = []Row{
	{"r1", 267, 1, "EXT-BST", 1070421, 0, 10, 25},
	{"r1", 267, 4, "AST-DME", 1048432, 2.05, 49, 25},
	{"r1", 267, 6, "AST-DME", 1041671, 2.69, 53, 25},
	{"r1", 267, 8, "AST-DME", 1040952, 2.75, 57, 26},
	{"r1", 267, 10, "AST-DME", 1039556, 2.88, 60, 26},
	{"r2", 598, 1, "EXT-BST", 2169791, 0, 10, 74},
	{"r2", 598, 4, "AST-DME", 2112508, 2.64, 39, 75},
	{"r2", 598, 6, "AST-DME", 2112074, 2.66, 46, 75},
	{"r2", 598, 8, "AST-DME", 2093848, 3.50, 56, 75},
	{"r2", 598, 10, "AST-DME", 2091244, 3.62, 62, 76},
	{"r3", 862, 1, "EXT-BST", 2734959, 0, 10, 94},
	{"r3", 862, 4, "AST-DME", 2664397, 2.58, 45, 96},
	{"r3", 862, 6, "AST-DME", 2647713, 3.19, 63, 98},
	{"r3", 862, 8, "AST-DME", 2644158, 3.32, 67, 98},
	{"r3", 862, 10, "AST-DME", 2646072, 3.25, 66, 98},
	{"r4", 1903, 1, "EXT-BST", 5442046, 0, 10, 263},
	{"r4", 1903, 4, "AST-DME", 5311981, 2.39, 42, 265},
	{"r4", 1903, 6, "AST-DME", 5307627, 2.47, 47, 265},
	{"r4", 1903, 8, "AST-DME", 5279328, 2.99, 56, 266},
	{"r4", 1903, 10, "AST-DME", 5272254, 3.12, 54, 266},
	{"r5", 3101, 1, "EXT-BST", 8033650, 0, 10, 407},
	{"r5", 3101, 4, "AST-DME", 7836825, 2.45, 49, 409},
	{"r5", 3101, 6, "AST-DME", 7799067, 2.92, 53, 409},
	{"r5", 3101, 8, "AST-DME", 7771753, 3.26, 55, 409},
	{"r5", 3101, 10, "AST-DME", 7754078, 3.48, 61, 410},
}

// TableII is the thesis's Table II: intermingled sink groups (the difficult
// instances).
var TableII = []Row{
	{"r1", 267, 1, "EXT-BST", 1070421, 0, 10, 25},
	{"r1", 267, 4, "AST-DME", 969872, 9.39, 98, 25},
	{"r1", 267, 6, "AST-DME", 945353, 11.68, 107, 25},
	{"r1", 267, 8, "AST-DME", 930384, 13.08, 113, 26},
	{"r1", 267, 10, "AST-DME", 926958, 13.40, 121, 26},
	{"r2", 598, 1, "EXT-BST", 2169791, 0, 10, 74},
	{"r2", 598, 4, "AST-DME", 1940437, 10.57, 78, 77},
	{"r2", 598, 6, "AST-DME", 1938564, 10.66, 93, 77},
	{"r2", 598, 8, "AST-DME", 1865821, 14.01, 117, 79},
	{"r2", 598, 10, "AST-DME", 1855198, 14.50, 119, 79},
	{"r3", 862, 1, "EXT-BST", 2734959, 0, 10, 94},
	{"r3", 862, 4, "AST-DME", 2452948, 10.31, 89, 97},
	{"r3", 862, 6, "AST-DME", 2371398, 13.29, 132, 98},
	{"r3", 862, 8, "AST-DME", 2386127, 12.75, 128, 101},
	{"r3", 862, 10, "AST-DME", 2379931, 12.98, 137, 101},
	{"r4", 1903, 1, "EXT-BST", 5442046, 0, 10, 263},
	{"r4", 1903, 4, "AST-DME", 4922763, 9.54, 83, 272},
	{"r4", 1903, 6, "AST-DME", 4785931, 12.06, 95, 272},
	{"r4", 1903, 8, "AST-DME", 4791754, 11.95, 113, 273},
	{"r4", 1903, 10, "AST-DME", 4762357, 12.49, 109, 273},
	{"r5", 3101, 1, "EXT-BST", 8033650, 0, 10, 407},
	{"r5", 3101, 4, "AST-DME", 7247698, 9.78, 98, 411},
	{"r5", 3101, 6, "AST-DME", 7094385, 11.69, 107, 412},
	{"r5", 3101, 8, "AST-DME", 6984476, 13.06, 111, 412},
	{"r5", 3101, 10, "AST-DME", 6915703, 13.92, 122, 413},
}

// Baseline returns the EXT-BST row of a circuit from a table.
func Baseline(table []Row, circuit string) (Row, bool) {
	for _, r := range table {
		if r.Circuit == circuit && r.Algorithm == "EXT-BST" {
			return r, true
		}
	}
	return Row{}, false
}

// Find returns the row for a circuit/groups/algorithm combination.
func Find(table []Row, circuit string, groups int, algorithm string) (Row, bool) {
	for _, r := range table {
		if r.Circuit == circuit && r.Groups == groups && r.Algorithm == algorithm {
			return r, true
		}
	}
	return Row{}, false
}
