package paperdata

import (
	"math"
	"testing"
)

func TestTablesComplete(t *testing.T) {
	for name, table := range map[string][]Row{"I": TableI, "II": TableII} {
		if len(table) != 25 {
			t.Fatalf("table %s has %d rows, want 25", name, len(table))
		}
		for _, circuit := range []string{"r1", "r2", "r3", "r4", "r5"} {
			if _, ok := Baseline(table, circuit); !ok {
				t.Errorf("table %s: no baseline for %s", name, circuit)
			}
			for _, k := range []int{4, 6, 8, 10} {
				if _, ok := Find(table, circuit, k, "AST-DME"); !ok {
					t.Errorf("table %s: missing %s k=%d", name, circuit, k)
				}
			}
		}
	}
}

// TestReductionColumnsConsistent recomputes the thesis's Reduction column
// from its wirelength columns: a transcription check on the embedded data.
func TestReductionColumnsConsistent(t *testing.T) {
	for name, table := range map[string][]Row{"I": TableI, "II": TableII} {
		for _, r := range table {
			if r.Algorithm != "AST-DME" {
				continue
			}
			base, ok := Baseline(table, r.Circuit)
			if !ok {
				t.Fatal("missing baseline")
			}
			want := 100 * (base.Wirelen - r.Wirelen) / base.Wirelen
			if math.Abs(want-r.ReductionPct) > 0.02 {
				t.Errorf("table %s %s k=%d: reduction %v%% but wirelens imply %.2f%%",
					name, r.Circuit, r.Groups, r.ReductionPct, want)
			}
		}
	}
}

// TestPaperTrends encodes the thesis's qualitative claims as assertions on
// its own data: intermingled reductions exceed clustered ones, both grow
// with k on average, and AST-DME's reported skews grow with k.
func TestPaperTrends(t *testing.T) {
	meanReduction := func(table []Row, k int) float64 {
		var sum float64
		var n int
		for _, r := range table {
			if r.Algorithm == "AST-DME" && r.Groups == k {
				sum += r.ReductionPct
				n++
			}
		}
		return sum / float64(n)
	}
	if meanReduction(TableII, 10) <= meanReduction(TableI, 10) {
		t.Error("paper data should show intermingled > clustered reductions")
	}
	if meanReduction(TableII, 10) <= meanReduction(TableII, 4) {
		t.Error("paper data should show reductions growing with k (Table II)")
	}
	var skew4, skew10 float64
	for _, r := range TableII {
		if r.Algorithm != "AST-DME" {
			continue
		}
		if r.Groups == 4 {
			skew4 += r.MaxSkewPs
		}
		if r.Groups == 10 {
			skew10 += r.MaxSkewPs
		}
	}
	if skew10 <= skew4 {
		t.Error("paper data should show skew growing with k")
	}
}
