// Package profutil holds the shared -cpuprofile/-memprofile plumbing of
// the command-line tools, so the perf workflow (route under a profiler,
// read the flame graph, fix, repeat) needs no per-command boilerplate.
package profutil

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling to cpuPath and arranges a heap profile at
// stop time to memPath; either path may be empty to disable that profile.
// The returned stop must be called (typically deferred) on the success
// path — os.Exit bypasses it, so error-path exits lose at most a partial
// profile, never a corrupt run.
func Start(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, err
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "profutil:", err)
				return
			}
			runtime.GC() // settle live objects so the heap profile is sharp
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "profutil:", err)
			}
			f.Close()
		}
	}, nil
}
