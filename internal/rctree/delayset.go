package rctree

// DelaySet maps sink groups to delay intervals as two parallel slices sorted
// by ascending group id. It replaces the map[int]Interval the routers'
// bottom-up bookkeeping originally used: a merge of two sets is one linear
// pass over both (no hashing, no per-node map allocation — the backing
// slices slab-allocate from an arena), lookups are binary searches, and
// every iteration order is the sorted one, which keeps anything derived
// from "first constraint hit" deterministic by construction.
//
// Group ids are stored as int32: they index the instance's group table,
// which is bounded by the sink count. The zero value is an empty set;
// distinguish "never computed" with IsZero (nil backing slice).
type DelaySet struct {
	// Groups holds the group ids, sorted ascending, no duplicates.
	Groups []int32
	// Ivs holds the delay interval of the group at the same index.
	Ivs []Interval
}

// PointDelaySet returns the single-group set {g: iv}.
func PointDelaySet(g int, iv Interval) DelaySet {
	return DelaySet{Groups: []int32{int32(g)}, Ivs: []Interval{iv}}
}

// MakeDelaySet returns an empty set with capacity for n groups.
func MakeDelaySet(n int) DelaySet {
	return DelaySet{Groups: make([]int32, 0, n), Ivs: make([]Interval, 0, n)}
}

// Len returns the number of groups in the set.
func (s DelaySet) Len() int { return len(s.Groups) }

// IsZero reports whether the set was never populated (nil backing slice);
// an empty but allocated set is not zero.
func (s DelaySet) IsZero() bool { return s.Groups == nil }

// At returns the i-th (group, interval) entry in ascending group order.
func (s DelaySet) At(i int) (int, Interval) { return int(s.Groups[i]), s.Ivs[i] }

// Get returns the interval of group g by binary search.
func (s DelaySet) Get(g int) (Interval, bool) {
	lo, hi := 0, len(s.Groups)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if int(s.Groups[mid]) < g {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(s.Groups) && int(s.Groups[lo]) == g {
		return s.Ivs[lo], true
	}
	return Interval{}, false
}

// Reset empties the set keeping its backing capacity.
func (s *DelaySet) Reset() {
	s.Groups = s.Groups[:0]
	s.Ivs = s.Ivs[:0]
}

// Push appends an entry. g must exceed the last group already present.
func (s *DelaySet) Push(g int32, iv Interval) {
	s.Groups = append(s.Groups, g)
	s.Ivs = append(s.Ivs, iv)
}

// CoverLast widens the set's entry for group g — which must be the last
// pushed group — to also cover iv.
func (s *DelaySet) CoverLast(iv Interval) {
	last := len(s.Ivs) - 1
	s.Ivs[last] = Cover(s.Ivs[last], iv)
}

// Insert sets group g to iv, covering the existing interval when g is
// already present and splicing it into sorted position otherwise. Unlike
// Push it accepts groups in any order; use it for accumulation keyed by
// something unsorted (e.g. union roots).
func (s *DelaySet) Insert(g int32, iv Interval) {
	lo, hi := 0, len(s.Groups)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s.Groups[mid] < g {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(s.Groups) && s.Groups[lo] == g {
		s.Ivs[lo] = Cover(s.Ivs[lo], iv)
		return
	}
	s.Groups = append(s.Groups, 0)
	copy(s.Groups[lo+1:], s.Groups[lo:])
	s.Groups[lo] = g
	s.Ivs = append(s.Ivs, Interval{})
	copy(s.Ivs[lo+1:], s.Ivs[lo:])
	s.Ivs[lo] = iv
}

// Overall returns the smallest interval covering every group's interval
// (the zero interval for an empty set).
func (s DelaySet) Overall() Interval {
	if len(s.Ivs) == 0 {
		return Interval{}
	}
	iv := s.Ivs[0]
	for _, d := range s.Ivs[1:] {
		iv = Cover(iv, d)
	}
	return iv
}

// Equal reports whether the two sets hold identical groups and intervals.
func (s DelaySet) Equal(t DelaySet) bool {
	if len(s.Groups) != len(t.Groups) {
		return false
	}
	for i, g := range s.Groups {
		if t.Groups[i] != g || t.Ivs[i] != s.Ivs[i] {
			return false
		}
	}
	return true
}

// MergeDelaysInto writes into dst the merge of a shifted by wa and b shifted
// by wb: the group-sorted union of both sets, covering the two shifted
// intervals of groups present on both sides. dst is reset first and must not
// alias a or b. This is the inner loop of every subtree merge; it runs one
// linear pass and allocates only if dst's capacity is short (slab-allocating
// callers size dst to a.Len()+b.Len() up front).
func MergeDelaysInto(dst *DelaySet, a DelaySet, wa float64, b DelaySet, wb float64) {
	dst.Reset()
	i, j := 0, 0
	for i < len(a.Groups) && j < len(b.Groups) {
		switch {
		case a.Groups[i] < b.Groups[j]:
			dst.Push(a.Groups[i], a.Ivs[i].Shift(wa))
			i++
		case a.Groups[i] > b.Groups[j]:
			dst.Push(b.Groups[j], b.Ivs[j].Shift(wb))
			j++
		default:
			dst.Push(a.Groups[i], Cover(a.Ivs[i].Shift(wa), b.Ivs[j].Shift(wb)))
			i++
			j++
		}
	}
	for ; i < len(a.Groups); i++ {
		dst.Push(a.Groups[i], a.Ivs[i].Shift(wa))
	}
	for ; j < len(b.Groups); j++ {
		dst.Push(b.Groups[j], b.Ivs[j].Shift(wb))
	}
}

// ForEachShared invokes f for every group present in both sets, in
// ascending group order, with both intervals.
func ForEachShared(a, b DelaySet, f func(g int32, ia, ib Interval)) {
	i, j := 0, 0
	for i < len(a.Groups) && j < len(b.Groups) {
		switch {
		case a.Groups[i] < b.Groups[j]:
			i++
		case a.Groups[i] > b.Groups[j]:
			j++
		default:
			f(a.Groups[i], a.Ivs[i], b.Ivs[j])
			i++
			j++
		}
	}
}
