package rctree

import (
	"math/rand"
	"sort"
	"testing"
)

func TestDelaySetBasics(t *testing.T) {
	var s DelaySet
	if !s.IsZero() || s.Len() != 0 {
		t.Fatal("zero value not zero")
	}
	s = MakeDelaySet(4)
	if s.IsZero() {
		t.Fatal("allocated empty set reads as zero")
	}
	s.Push(2, Interval{Lo: 1, Hi: 2})
	s.Push(5, Interval{Lo: 3, Hi: 4})
	s.Push(9, Interval{Lo: 5, Hi: 6})
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	for i, want := range []int{2, 5, 9} {
		g, _ := s.At(i)
		if g != want {
			t.Fatalf("At(%d) group = %d, want %d", i, g, want)
		}
	}
	wantIv := map[int]Interval{2: {Lo: 1, Hi: 2}, 5: {Lo: 3, Hi: 4}, 9: {Lo: 5, Hi: 6}}
	for _, g := range []int{1, 2, 3, 5, 9, 10} {
		iv, ok := s.Get(g)
		want, wantOK := wantIv[g]
		if ok != wantOK || iv != want {
			t.Fatalf("Get(%d) = %v, %v; want %v, %v", g, iv, ok, want, wantOK)
		}
	}
	if ov := s.Overall(); ov != (Interval{Lo: 1, Hi: 6}) {
		t.Fatalf("Overall = %v", ov)
	}
	s.CoverLast(Interval{Lo: 0, Hi: 10})
	if iv, _ := s.Get(9); iv != (Interval{Lo: 0, Hi: 10}) {
		t.Fatalf("CoverLast: %v", iv)
	}
	s.Reset()
	if s.Len() != 0 || s.IsZero() {
		t.Fatal("Reset broken")
	}
}

func TestDelaySetInsertSplicesAndCovers(t *testing.T) {
	var s DelaySet
	for _, g := range []int32{7, 3, 11, 3, 5, 11} {
		s.Insert(g, Interval{Lo: float64(g), Hi: float64(g + 1)})
	}
	wantGroups := []int32{3, 5, 7, 11}
	if s.Len() != len(wantGroups) {
		t.Fatalf("Len = %d, want %d", s.Len(), len(wantGroups))
	}
	for i, g := range wantGroups {
		if s.Groups[i] != g {
			t.Fatalf("Groups[%d] = %d, want %d", i, s.Groups[i], g)
		}
	}
	// Duplicate inserts covered, not replaced.
	if iv, _ := s.Get(3); iv != (Interval{Lo: 3, Hi: 4}) {
		t.Fatalf("Get(3) = %v", iv)
	}
}

func TestDelaySetEqual(t *testing.T) {
	a := PointDelaySet(3, Interval{Lo: 1, Hi: 2})
	b := PointDelaySet(3, Interval{Lo: 1, Hi: 2})
	c := PointDelaySet(4, Interval{Lo: 1, Hi: 2})
	d := PointDelaySet(3, Interval{Lo: 1, Hi: 3})
	if !a.Equal(b) || a.Equal(c) || a.Equal(d) || a.Equal(DelaySet{}) {
		t.Fatal("Equal wrong")
	}
}

// mapMerge is the reference merge the DelaySet kernel replaced: shift both
// sides, cover shared groups, union the key sets — as a plain map.
func mapMerge(a map[int]Interval, wa float64, b map[int]Interval, wb float64) map[int]Interval {
	out := make(map[int]Interval, len(a)+len(b))
	for g, iv := range a {
		out[g] = iv.Shift(wa)
	}
	for g, iv := range b {
		if prev, ok := out[g]; ok {
			out[g] = Cover(prev, iv.Shift(wb))
		} else {
			out[g] = iv.Shift(wb)
		}
	}
	return out
}

func randomDelayMap(r *rand.Rand, maxGroups int) map[int]Interval {
	m := make(map[int]Interval)
	for len(m) < 1+r.Intn(maxGroups) {
		lo := r.NormFloat64() * 100
		m[r.Intn(3*maxGroups)] = Interval{Lo: lo, Hi: lo + r.Float64()*10}
	}
	return m
}

func toDelaySet(m map[int]Interval) DelaySet {
	gs := make([]int, 0, len(m))
	for g := range m {
		gs = append(gs, g)
	}
	sort.Ints(gs)
	s := MakeDelaySet(len(gs))
	for _, g := range gs {
		s.Push(int32(g), m[g])
	}
	return s
}

// TestMergeDelaysMatchesMapMerge is the property test pinning the flat
// kernel to the map semantics it replaced: on random group sets and shifts,
// MergeDelaysInto must produce exactly (bitwise) the same group → interval
// association as the map merge, in sorted group order.
func TestMergeDelaysMatchesMapMerge(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 2000; trial++ {
		ma := randomDelayMap(r, 8)
		mb := randomDelayMap(r, 8)
		wa := r.NormFloat64() * 50
		wb := r.NormFloat64() * 50
		want := mapMerge(ma, wa, mb, wb)

		var got DelaySet
		MergeDelaysInto(&got, toDelaySet(ma), wa, toDelaySet(mb), wb)

		if got.Len() != len(want) {
			t.Fatalf("trial %d: %d groups, want %d", trial, got.Len(), len(want))
		}
		prev := -1
		for i := 0; i < got.Len(); i++ {
			g, iv := got.At(i)
			if g <= prev {
				t.Fatalf("trial %d: groups not strictly ascending at %d", trial, i)
			}
			prev = g
			if w, ok := want[g]; !ok || w != iv {
				t.Fatalf("trial %d group %d: %v, want %v", trial, g, iv, want[g])
			}
		}
	}
}

// TestForEachSharedMatchesMapIntersection pins the shared-group walk to the
// map intersection.
func TestForEachSharedMatchesMapIntersection(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 500; trial++ {
		ma := randomDelayMap(r, 6)
		mb := randomDelayMap(r, 6)
		seen := make(map[int]bool)
		ForEachShared(toDelaySet(ma), toDelaySet(mb), func(g int32, ia, ib Interval) {
			if seen[int(g)] {
				t.Fatalf("trial %d: group %d visited twice", trial, g)
			}
			seen[int(g)] = true
			if ia != ma[int(g)] || ib != mb[int(g)] {
				t.Fatalf("trial %d group %d: wrong intervals", trial, g)
			}
		})
		for g := range ma {
			if _, ok := mb[g]; ok != seen[g] {
				t.Fatalf("trial %d: group %d shared=%v seen=%v", trial, g, ok, seen[g])
			}
		}
	}
}
