package rctree

import "math"

// Interval is a closed range of sink delays [Lo, Hi] within a subtree,
// measured from the subtree root. Width is the subtree's internal skew.
type Interval struct {
	Lo, Hi float64
}

// PointInterval returns the degenerate interval {t}.
func PointInterval(t float64) Interval { return Interval{Lo: t, Hi: t} }

// Width returns Hi − Lo.
func (iv Interval) Width() float64 { return iv.Hi - iv.Lo }

// Shift returns the interval translated by x.
func (iv Interval) Shift(x float64) Interval { return Interval{Lo: iv.Lo + x, Hi: iv.Hi + x} }

// Cover returns the smallest interval containing both a and b.
func Cover(a, b Interval) Interval {
	return Interval{Lo: math.Min(a.Lo, b.Lo), Hi: math.Max(a.Hi, b.Hi)}
}

// Merge holds the outcome of a merge-point solve: the committed edge lengths
// from the new root to the two child roots. Snaked is true when ea+eb
// exceeds the geometric distance d (wire snaking / "sneaking").
type Merge struct {
	Ea, Eb float64
	Snaked bool
}

// Total returns Ea+Eb, the wirelength committed by the merge.
func (mg Merge) Total() float64 { return mg.Ea + mg.Eb }

// clampSplit clamps e into [0, d].
func clampSplit(e, d float64) float64 {
	if e < 0 {
		return 0
	}
	if e > d {
		return d
	}
	return e
}

// Balance solves the classic exact-zero-skew merge (Tsay): subtree A with
// root-to-sink delay ta and load ca merges with subtree B (tb, cb) across
// geometric distance d. It returns the minimal-wirelength edge lengths such
// that ta + WireDelay(ea,ca) == tb + WireDelay(eb,cb), snaking the faster
// side when the balance point falls outside the segment.
func Balance(m Model, d, ta, ca, tb, cb float64) Merge {
	return BalanceTarget(m, d, ta, ca, tb, cb, 0)
}

// BalanceTarget generalizes Balance to a prescribed skew target:
// (ta + WireDelay(ea,ca)) − (tb + WireDelay(eb,cb)) == target.
func BalanceTarget(m Model, d, ta, ca, tb, cb, target float64) Merge {
	if d <= 0 {
		// Roots coincide; any needed difference comes from snaking alone.
		diff := ta - tb - target // how much A leads (is slower) already
		if diff > 0 {
			return Merge{Ea: 0, Eb: m.ExtendForDelay(cb, diff), Snaked: true}
		}
		if diff < 0 {
			return Merge{Ea: m.ExtendForDelay(ca, -diff), Eb: 0, Snaked: true}
		}
		return Merge{}
	}
	// Want X(e) = WireDelay(e,ca) − WireDelay(d−e,cb) = tb − ta + target.
	e := m.SplitForDiff(d, ca, cb, tb-ta+target)
	if e >= 0 && e <= d {
		return Merge{Ea: e, Eb: d - e}
	}
	if e < 0 {
		// Even with all wire on B's side, A is still too slow: extend B.
		eb := m.ExtendForDelay(cb, ta-tb-target)
		return Merge{Ea: 0, Eb: math.Max(eb, d), Snaked: true}
	}
	// Symmetric: extend A.
	ea := m.ExtendForDelay(ca, tb-ta+target)
	return Merge{Ea: math.Max(ea, d), Eb: 0, Snaked: true}
}

// BalanceClamped returns the no-snake merge closest to delay balance: the
// split is the zero-skew balance point clamped into [0, d], so the committed
// wirelength is always exactly d. Used for merges with no skew constraint
// between the two sides (different sink groups), where any residual delay
// difference simply becomes the inter-group offset.
func BalanceClamped(m Model, d, ta, ca, tb, cb float64) Merge {
	if d <= 0 {
		return Merge{}
	}
	e := clampSplit(m.SplitForDiff(d, ca, cb, tb-ta), d)
	return Merge{Ea: e, Eb: d - e}
}

// BoundedBalance solves a bounded-skew (BST-style) merge. Subtree A's sinks
// span delay interval ia (from A's root) with load ca; likewise B. The merged
// subtree's sink-delay spread must not exceed bound. The solver picks the
// minimum-wirelength merge whose spread is within the bound, preferring —
// among equal-wirelength solutions — the one closest to midpoint alignment
// (which minimizes the spread and thus future snaking).
//
// Feasibility: a shift X = WireDelay(ea,ca) − WireDelay(eb,cb) keeps the
// merged spread ≤ bound iff X ∈ [ib.Hi − ia.Lo − bound, ib.Lo − ia.Hi + bound],
// which is non-empty whenever (ia.Width()+ib.Width())/2 ≤ bound. Children
// built under the same bound always satisfy this. If the desired window is
// empty (bound tighter than the children allow), the solver falls back to
// midpoint alignment, minimizing the resulting spread.
func BoundedBalance(m Model, d float64, ia Interval, ca float64, ib Interval, cb, bound float64) Merge {
	xLo := ib.Hi - ia.Lo - bound
	xHi := ib.Lo - ia.Hi + bound
	xMid := (ib.Lo+ib.Hi)/2 - (ia.Lo+ia.Hi)/2 // midpoint alignment
	if xLo > xHi {
		// Infeasible bound; minimize spread instead.
		xLo, xHi = xMid, xMid
	}
	want := clampSplit(xMid-xLo, xHi-xLo) + xLo // xMid clamped into [xLo,xHi]

	if d <= 0 {
		// Coincident roots: any non-zero X is pure snake, so take the
		// feasible X of least magnitude (wire first, spread second).
		x := clampSplit(0-xLo, xHi-xLo) + xLo
		if x > 0 {
			return Merge{Ea: m.ExtendForDelay(ca, x), Eb: 0, Snaked: true}
		}
		if x < 0 {
			return Merge{Ea: 0, Eb: m.ExtendForDelay(cb, -x), Snaked: true}
		}
		return Merge{}
	}

	// Achievable X without snaking is [X(0), X(d)].
	x0 := -m.WireDelay(d, cb)
	xd := m.WireDelay(d, ca)
	switch {
	case xHi < x0:
		// Must slow B beyond the full span: ea=0, eb>d with −WireDelay(eb,cb)=xHi.
		eb := m.ExtendForDelay(cb, -xHi)
		return Merge{Ea: 0, Eb: math.Max(eb, d), Snaked: true}
	case xLo > xd:
		ea := m.ExtendForDelay(ca, xLo)
		return Merge{Ea: math.Max(ea, d), Eb: 0, Snaked: true}
	default:
		// No snaking needed: clamp the preferred X into both windows.
		x := clampSplit(want-x0, math.Min(xHi, xd)-x0) + x0
		if x < xLo { // want below window: take window floor (≥ x0 here)
			x = xLo
		}
		e := clampSplit(m.SplitForDiff(d, ca, cb, x), d)
		return Merge{Ea: e, Eb: d - e}
	}
}

// MergedInterval returns the sink-delay interval of a merged subtree given
// the children intervals and the committed edge lengths.
func MergedInterval(m Model, mg Merge, ia Interval, ca float64, ib Interval, cb float64) Interval {
	wa := m.WireDelay(mg.Ea, ca)
	wb := m.WireDelay(mg.Eb, cb)
	return Cover(ia.Shift(wa), ib.Shift(wb))
}
