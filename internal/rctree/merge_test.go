package rctree

import (
	"math"
	"math/rand"
	"testing"
)

var testElmore = NewElmore(0.03, 0.02) // Ω/unit, fF/unit

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestElmoreWireDelay(t *testing.T) {
	m := NewElmore(1, 1) // 1 Ω/unit, 1 fF/unit → delay in ps = 1e-3 · l(l/2+CL)
	got := m.WireDelay(10, 5)
	want := 1e-3 * 10 * (10.0/2 + 5)
	if !almostEq(got, want, 1e-12) {
		t.Errorf("WireDelay = %v, want %v", got, want)
	}
	if m.WireDelay(0, 100) != 0 {
		t.Error("zero-length wire must have zero delay")
	}
	if m.WireCap(7) != 7 {
		t.Errorf("WireCap = %v", m.WireCap(7))
	}
}

func TestLinearModel(t *testing.T) {
	m := Linear{}
	if m.WireDelay(42, 99) != 42 {
		t.Error("linear delay must equal length")
	}
	if m.WireCap(42) != 0 {
		t.Error("linear model has no wire cap")
	}
	if e := m.SplitForDiff(10, 0, 0, 0); e != 5 {
		t.Errorf("balanced split = %v, want 5", e)
	}
	if l := m.ExtendForDelay(0, 7); l != 7 {
		t.Errorf("extend = %v, want 7", l)
	}
	if l := m.ExtendForDelay(0, -3); l != 0 {
		t.Errorf("extend negative = %v, want 0", l)
	}
}

func TestSplitForDiffConsistent(t *testing.T) {
	models := []Model{testElmore, Linear{}}
	r := rand.New(rand.NewSource(1))
	for _, m := range models {
		for i := 0; i < 2000; i++ {
			d := 1 + r.Float64()*1e5
			ca := r.Float64() * 500
			cb := r.Float64() * 500
			e := r.Float64() * d
			diff := m.WireDelay(e, ca) - m.WireDelay(d-e, cb)
			got := m.SplitForDiff(d, ca, cb, diff)
			if !almostEq(got, e, 1e-6*(1+d)) {
				t.Fatalf("%s: SplitForDiff inverse failed: got %v want %v", m.Name(), got, e)
			}
		}
	}
}

func TestExtendForDelayInverse(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 2000; i++ {
		cl := r.Float64() * 1000
		l := r.Float64() * 1e5
		delay := testElmore.WireDelay(l, cl)
		got := testElmore.ExtendForDelay(cl, delay)
		if !almostEq(got, l, 1e-6*(1+l)) {
			t.Fatalf("ExtendForDelay inverse: got %v want %v (cl=%v)", got, l, cl)
		}
	}
}

func TestBalanceZeroSkew(t *testing.T) {
	models := []Model{testElmore, Linear{}}
	r := rand.New(rand.NewSource(3))
	for _, m := range models {
		for i := 0; i < 3000; i++ {
			d := r.Float64() * 1e5
			ta := r.Float64() * 200
			tb := r.Float64() * 200
			ca := 1 + r.Float64()*500
			cb := 1 + r.Float64()*500
			mg := Balance(m, d, ta, ca, tb, cb)
			if mg.Ea < 0 || mg.Eb < 0 {
				t.Fatalf("%s: negative edge: %+v", m.Name(), mg)
			}
			if mg.Total() < d-1e-9*(1+d) {
				t.Fatalf("%s: total %v < distance %v", m.Name(), mg.Total(), d)
			}
			da := ta + m.WireDelay(mg.Ea, ca)
			db := tb + m.WireDelay(mg.Eb, cb)
			if !almostEq(da, db, 1e-6*(1+da)) {
				t.Fatalf("%s: unbalanced: %v vs %v (mg=%+v d=%v ta=%v tb=%v)",
					m.Name(), da, db, mg, d, ta, tb)
			}
			// Minimality: no snaking unless necessary.
			if mg.Snaked && mg.Ea > 0 && mg.Eb > 0 && mg.Total() > d+1e-9 {
				t.Fatalf("%s: snaked on both sides: %+v", m.Name(), mg)
			}
		}
	}
}

func TestBalanceTargetPrescribed(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for i := 0; i < 2000; i++ {
		d := r.Float64() * 1e5
		ta := r.Float64() * 200
		tb := r.Float64() * 200
		ca := 1 + r.Float64()*500
		cb := 1 + r.Float64()*500
		target := (r.Float64() - 0.5) * 100
		mg := BalanceTarget(testElmore, d, ta, ca, tb, cb, target)
		da := ta + testElmore.WireDelay(mg.Ea, ca)
		db := tb + testElmore.WireDelay(mg.Eb, cb)
		if !almostEq(da-db, target, 1e-6*(1+math.Abs(target)+da)) {
			t.Fatalf("target missed: %v want %v", da-db, target)
		}
	}
}

func TestBalanceSnakingCases(t *testing.T) {
	m := testElmore
	// A far slower than B: all wire on B plus snake.
	mg := Balance(m, 100, 1000, 10, 0, 10)
	if !mg.Snaked || mg.Ea != 0 || mg.Eb <= 100 {
		t.Errorf("expected snake on B: %+v", mg)
	}
	// Coincident roots.
	mg = Balance(m, 0, 5, 10, 5, 10)
	if mg.Total() != 0 || mg.Snaked {
		t.Errorf("coincident equal roots: %+v", mg)
	}
	mg = Balance(m, 0, 10, 10, 5, 10)
	if !mg.Snaked || mg.Ea != 0 || mg.Eb <= 0 {
		t.Errorf("coincident unequal roots: %+v", mg)
	}
	db := m.WireDelay(mg.Eb, 10)
	if !almostEq(db, 5, 1e-9) {
		t.Errorf("snake delay = %v, want 5", db)
	}
}

func TestBalanceClampedNeverSnakes(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 2000; i++ {
		d := r.Float64() * 1e5
		ta := r.Float64() * 2000 // large spreads to force clamping sometimes
		tb := r.Float64() * 2000
		ca := 1 + r.Float64()*500
		cb := 1 + r.Float64()*500
		mg := BalanceClamped(testElmore, d, ta, ca, tb, cb)
		if mg.Snaked {
			t.Fatal("clamped merge must not snake")
		}
		if !almostEq(mg.Total(), d, 1e-9*(1+d)) {
			t.Fatalf("clamped merge wire %v != d %v", mg.Total(), d)
		}
		// The clamped solution is at least as balanced as either endpoint.
		skew := func(ea, eb float64) float64 {
			return math.Abs((ta + testElmore.WireDelay(ea, ca)) - (tb + testElmore.WireDelay(eb, cb)))
		}
		s := skew(mg.Ea, mg.Eb)
		if s > skew(0, d)+1e-9 && s > skew(d, 0)+1e-9 {
			t.Fatalf("clamped skew %v worse than both endpoints", s)
		}
	}
}

func TestBoundedBalanceRespectsBound(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	for i := 0; i < 3000; i++ {
		d := r.Float64() * 1e5
		bound := r.Float64() * 20
		// Children intervals already within bound.
		wa := r.Float64() * bound
		wb := r.Float64() * bound
		ia := Interval{Lo: r.Float64() * 100, Hi: 0}
		ia.Hi = ia.Lo + wa
		ib := Interval{Lo: r.Float64() * 100, Hi: 0}
		ib.Hi = ib.Lo + wb
		ca := 1 + r.Float64()*500
		cb := 1 + r.Float64()*500
		mg := BoundedBalance(testElmore, d, ia, ca, ib, cb, bound)
		if mg.Ea < 0 || mg.Eb < 0 || mg.Total() < d-1e-9*(1+d) {
			t.Fatalf("bad merge %+v (d=%v)", mg, d)
		}
		got := MergedInterval(testElmore, mg, ia, ca, ib, cb)
		if got.Width() > bound+1e-6*(1+bound) {
			t.Fatalf("iter %d: spread %v exceeds bound %v (mg=%+v ia=%v ib=%v)",
				i, got.Width(), bound, mg, ia, ib)
		}
		if !mg.Snaked && !almostEq(mg.Total(), d, 1e-9*(1+d)) {
			t.Fatalf("non-snaked merge has extra wire: %v vs %v", mg.Total(), d)
		}
	}
}

func TestBoundedBalanceZeroBoundEqualsBalance(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 1000; i++ {
		d := r.Float64() * 1e5
		ta := r.Float64() * 200
		tb := r.Float64() * 200
		ca := 1 + r.Float64()*500
		cb := 1 + r.Float64()*500
		a := Balance(testElmore, d, ta, ca, tb, cb)
		b := BoundedBalance(testElmore, d, PointInterval(ta), ca, PointInterval(tb), cb, 0)
		if !almostEq(a.Ea, b.Ea, 1e-6*(1+d)) || !almostEq(a.Eb, b.Eb, 1e-6*(1+d)) {
			t.Fatalf("zero-bound mismatch: %+v vs %+v", a, b)
		}
	}
}

func TestBoundedBalanceSavesWireVersusZeroSkew(t *testing.T) {
	// With a generous bound and a large initial delay difference, the bounded
	// merge should need less wire than the exact-zero-skew merge.
	d := 100.0
	ta, tb := 500.0, 0.0
	ca, cb := 50.0, 50.0
	zs := Balance(testElmore, d, ta, ca, tb, cb)
	bd := BoundedBalance(testElmore, d, PointInterval(ta), ca, PointInterval(tb), cb, 400)
	if !zs.Snaked {
		t.Fatal("test setup: zero-skew merge should snake")
	}
	if bd.Total() >= zs.Total() {
		t.Errorf("bounded merge %v should be shorter than zero-skew %v", bd.Total(), zs.Total())
	}
}

func TestIntervalHelpers(t *testing.T) {
	a := Interval{1, 3}
	b := Interval{2, 5}
	c := Cover(a, b)
	if c != (Interval{1, 5}) {
		t.Errorf("Cover = %v", c)
	}
	if a.Width() != 2 {
		t.Errorf("Width = %v", a.Width())
	}
	if a.Shift(10) != (Interval{11, 13}) {
		t.Errorf("Shift = %v", a.Shift(10))
	}
	if PointInterval(4).Width() != 0 {
		t.Error("point interval has width")
	}
}
