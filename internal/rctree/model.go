// Package rctree implements the interconnect delay models and merge-point
// solvers used by the DME family of clock routers (DME, BST, AST-DME).
//
// Two delay models are provided:
//
//   - Elmore: the first-moment RC delay of a distributed wire modelled as a
//     pi-segment (paper Ch. III). This is the model used by the thesis and by
//     the classic zero-skew / bounded-skew literature.
//   - Linear: the pathlength metric used by the only prior associative-skew
//     work (Chen–Kahng–Qu–Zelikovsky, ICCAD 1999), kept for comparison and
//     for reproducing Figure 1's exact wirelength/skew numbers.
//
// Both models share one crucial property exploited throughout: for a merge
// of two subtrees whose roots are d apart, the delay difference
//
//	X(e) = WireDelay(e, Ca) − WireDelay(d−e, Cb)
//
// is linear in the split position e (for Elmore the quadratic terms cancel),
// so exact split positions are closed-form. Wire snaking (extending an edge
// beyond the geometric distance to slow a too-fast subtree) reduces to a
// single quadratic, solved by ExtendForDelay.
//
// Units: lengths are abstract "units" (think µm); capacitance is fF;
// resistance is Ω/unit; all delays are picoseconds.
package rctree

import (
	"fmt"
	"math"
)

// ohmFemtofaradToPs converts Ω·fF (= 1 femtosecond) to picoseconds.
const ohmFemtofaradToPs = 1e-3

// Model abstracts the delay metric used by merge solvers. Implementations
// must keep X(e) = WireDelay(e,ca) − WireDelay(d−e,cb) linear in e; both the
// Elmore pi-model and the pathlength model satisfy this.
type Model interface {
	// Name identifies the model in reports.
	Name() string
	// WireDelay returns the delay in ps through a wire of the given length
	// driving a downstream capacitance cLoad (fF).
	WireDelay(length, cLoad float64) float64
	// SplitForDiff returns the (unclamped, possibly negative or > d) split
	// position e such that WireDelay(e,ca) − WireDelay(d−e,cb) equals diff.
	// d must be > 0.
	SplitForDiff(d, ca, cb, diff float64) float64
	// ExtendForDelay returns the wire length l ≥ 0 such that
	// WireDelay(l, cLoad) = delay. Non-positive delays return 0.
	ExtendForDelay(cLoad, delay float64) float64
	// WireCap returns the capacitance (fF) contributed by a wire of the
	// given length (zero for the pathlength model).
	WireCap(length float64) float64
	// WireRes returns the resistance (in delay-per-fF units, i.e. scaled so
	// that WireRes·capacitance is ps) of a wire of the given length (zero
	// for the pathlength model).
	WireRes(length float64) float64
	// ElongationFor returns the elongation γ ≥ 0 of an existing tree edge of
	// length edgeLen driving downstream capacitance cDown, with total
	// upstream resistance rUp from the point of interest (typically the
	// subtree root whose delays are being adjusted), such that the delay to
	// every sink below the edge grows by `delay` ps:
	//
	//	WireDelay(γ, cDown + WireCap(edgeLen)) + rUp·WireCap(γ) = delay
	//
	// The rUp term accounts for the added snake capacitance seen through the
	// ancestor path — without it, deep snakes overshoot their target by the
	// ratio of upstream to local resistance.
	ElongationFor(delay, edgeLen, cDown, rUp float64) float64
}

// Elmore is the distributed-RC first-moment delay model. A wire of length l
// driving load CL contributes delay r·l·(c·l/2 + CL) where r, c are the
// per-unit resistance and capacitance.
type Elmore struct {
	// ROhmPerUnit is the wire resistance in Ω per length unit.
	ROhmPerUnit float64
	// CFFPerUnit is the wire capacitance in fF per length unit.
	CFFPerUnit float64
}

// NewElmore returns an Elmore model with the given per-unit wire resistance
// (Ω/unit) and capacitance (fF/unit). Both must be positive.
func NewElmore(rOhmPerUnit, cFFPerUnit float64) Elmore {
	if rOhmPerUnit <= 0 || cFFPerUnit <= 0 {
		panic(fmt.Sprintf("rctree: non-positive wire parameters r=%v c=%v", rOhmPerUnit, cFFPerUnit))
	}
	return Elmore{ROhmPerUnit: rOhmPerUnit, CFFPerUnit: cFFPerUnit}
}

// Name implements Model.
func (Elmore) Name() string { return "elmore" }

// rps returns the resistance scaled so Ω·fF products come out in ps.
func (m Elmore) rps() float64 { return m.ROhmPerUnit * ohmFemtofaradToPs }

// WireDelay implements Model: r·l·(c·l/2 + CL) in ps.
func (m Elmore) WireDelay(length, cLoad float64) float64 {
	return m.rps() * length * (m.CFFPerUnit*length/2 + cLoad)
}

// WireCap implements Model.
func (m Elmore) WireCap(length float64) float64 { return m.CFFPerUnit * length }

// SplitForDiff implements Model. Writing wa(e) = r·e(c·e/2+ca) and
// wb(e) = r(d−e)(c(d−e)/2+cb), the quadratic terms of wa−wb cancel and
//
//	X(e) = X(0) + e·r(c·d + ca + cb), X(0) = −WireDelay(d, cb)
//
// so e = (diff − X(0)) / (r(c·d + ca + cb)).
func (m Elmore) SplitForDiff(d, ca, cb, diff float64) float64 {
	slope := m.rps() * (m.CFFPerUnit*d + ca + cb)
	return (diff + m.WireDelay(d, cb)) / slope
}

// ExtendForDelay implements Model: solves (rc/2)l² + r·cLoad·l = delay.
func (m Elmore) ExtendForDelay(cLoad, delay float64) float64 {
	if delay <= 0 {
		return 0
	}
	r, c := m.rps(), m.CFFPerUnit
	// l = (−r·C + sqrt(r²C² + 2rc·delay)) / (rc)
	disc := r*r*cLoad*cLoad + 2*r*c*delay
	return (math.Sqrt(disc) - r*cLoad) / (r * c)
}

// WireRes implements Model.
func (m Elmore) WireRes(length float64) float64 { return m.rps() * length }

// ElongationFor implements Model: solves
// (rc/2)γ² + (r(cDown + c·edgeLen) + rUp·c)γ = delay.
func (m Elmore) ElongationFor(delay, edgeLen, cDown, rUp float64) float64 {
	if delay <= 0 {
		return 0
	}
	r, c := m.rps(), m.CFFPerUnit
	lin := r*(cDown+c*edgeLen) + rUp*c
	disc := lin*lin + 2*r*c*delay
	return (math.Sqrt(disc) - lin) / (r * c)
}

// Linear is the pathlength delay metric: delay equals geometric wirelength
// and capacitance is ignored. One "time unit" is one length unit.
type Linear struct{}

// Name implements Model.
func (Linear) Name() string { return "pathlength" }

// WireDelay implements Model.
func (Linear) WireDelay(length, _ float64) float64 { return length }

// WireCap implements Model.
func (Linear) WireCap(float64) float64 { return 0 }

// SplitForDiff implements Model: e − (d−e) = diff ⇒ e = (d+diff)/2.
func (Linear) SplitForDiff(d, _, _, diff float64) float64 { return (d + diff) / 2 }

// ExtendForDelay implements Model.
func (Linear) ExtendForDelay(_, delay float64) float64 { return math.Max(delay, 0) }

// WireRes implements Model.
func (Linear) WireRes(float64) float64 { return 0 }

// ElongationFor implements Model.
func (Linear) ElongationFor(delay, _, _, _ float64) float64 { return math.Max(delay, 0) }
