package rctree

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestElmoreConstructorRejectsBadParams(t *testing.T) {
	for _, rc := range [][2]float64{{0, 1}, {1, 0}, {-1, 1}, {1, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewElmore(%v,%v) did not panic", rc[0], rc[1])
				}
			}()
			NewElmore(rc[0], rc[1])
		}()
	}
}

// TestXLinearity: the merge-shift function X(e) = WD(e,ca) − WD(d−e,cb) must
// be linear in e for every model — the property the split solvers rely on.
func TestXLinearity(t *testing.T) {
	models := []Model{NewElmore(0.1, 0.02), Linear{}}
	r := rand.New(rand.NewSource(21))
	for _, m := range models {
		for i := 0; i < 1000; i++ {
			d := 1 + r.Float64()*1e5
			ca := r.Float64() * 500
			cb := r.Float64() * 500
			x := func(e float64) float64 {
				return m.WireDelay(e, ca) - m.WireDelay(d-e, cb)
			}
			e1, e2 := r.Float64()*d, r.Float64()*d
			mid := (e1 + e2) / 2
			want := (x(e1) + x(e2)) / 2
			if math.Abs(x(mid)-want) > 1e-6*(1+math.Abs(want)) {
				t.Fatalf("%s: X not linear: X(mid)=%v, avg=%v", m.Name(), x(mid), want)
			}
		}
	}
}

// TestWireDelayMonotone: delay grows with both length and load.
func TestWireDelayMonotone(t *testing.T) {
	m := NewElmore(0.1, 0.02)
	f := func(l, cl, dl, dc float64) bool {
		l = math.Abs(l)
		cl = math.Abs(cl)
		dl = math.Abs(dl)
		dc = math.Abs(dc)
		return m.WireDelay(l+dl, cl) >= m.WireDelay(l, cl)-1e-12 &&
			m.WireDelay(l, cl+dc) >= m.WireDelay(l, cl)-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestElongationForInverse: ElongationFor must invert the combined
// direct+upstream delay expression.
func TestElongationForInverse(t *testing.T) {
	m := NewElmore(0.1, 0.02)
	r := rand.New(rand.NewSource(22))
	for i := 0; i < 2000; i++ {
		edgeLen := r.Float64() * 1e4
		cDown := r.Float64() * 2000
		rUp := r.Float64() * 5 // ps/fF scale upstream resistance
		gamma := r.Float64() * 1e4
		delay := m.WireDelay(gamma, cDown+m.WireCap(edgeLen)) + rUp*m.WireCap(gamma)
		got := m.ElongationFor(delay, edgeLen, cDown, rUp)
		if math.Abs(got-gamma) > 1e-6*(1+gamma) {
			t.Fatalf("inverse failed: got %v want %v", got, gamma)
		}
	}
	if m.ElongationFor(-5, 1, 1, 1) != 0 {
		t.Error("negative delay must give zero elongation")
	}
}

// TestElongationUpstreamMatters: ignoring upstream resistance must
// overestimate γ (the bug class the term exists to prevent).
func TestElongationUpstreamMatters(t *testing.T) {
	m := NewElmore(0.1, 0.02)
	withUp := m.ElongationFor(50, 1000, 100, 10)
	without := m.ElongationFor(50, 1000, 100, 0)
	if withUp >= without {
		t.Errorf("upstream-aware γ %v should be below naive %v", withUp, without)
	}
}

func TestWireResLinear(t *testing.T) {
	m := NewElmore(0.1, 0.02)
	if math.Abs(m.WireRes(2000)-2*m.WireRes(1000)) > 1e-12 {
		t.Error("WireRes not linear")
	}
	if (Linear{}).WireRes(100) != 0 {
		t.Error("pathlength model has no resistance")
	}
	if (Linear{}).ElongationFor(7, 1, 2, 3) != 7 {
		t.Error("pathlength elongation must equal delay")
	}
}

// TestBalanceSymmetry: swapping the two subtrees mirrors the solution.
func TestBalanceSymmetry(t *testing.T) {
	m := NewElmore(0.1, 0.02)
	r := rand.New(rand.NewSource(23))
	for i := 0; i < 1000; i++ {
		d := r.Float64() * 1e4
		ta, tb := r.Float64()*100, r.Float64()*100
		ca, cb := 1+r.Float64()*300, 1+r.Float64()*300
		ab := Balance(m, d, ta, ca, tb, cb)
		ba := Balance(m, d, tb, cb, ta, ca)
		if math.Abs(ab.Ea-ba.Eb) > 1e-6*(1+d) || math.Abs(ab.Eb-ba.Ea) > 1e-6*(1+d) {
			t.Fatalf("asymmetric: %+v vs %+v", ab, ba)
		}
	}
}
