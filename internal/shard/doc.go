// Package shard routes an instance by spatial decomposition: partition the
// sinks into k spatially compact shards, optionally pre-commit a global
// inter-group offset contract with a pilot pass, route every shard
// concurrently with the core merge engine, then stitch the shard roots with
// the same constraint machinery the intra-shard merges use. It is the
// structural scaling step beyond sub-quadratic pairing and the parallel
// merge wave — the shape that lets one route fan out across cores today and
// across machines later (each shard build is self-contained: a sink subset
// plus a frozen registry snapshot in, a subtree out).
//
// # Partition
//
// Partition cuts the instance by recursive bisection in uv-space (the
// 45°-rotated plane all routing geometry lives in): each step splits the
// current sink set along the longer axis of its uv bounding box at the
// count quantile matching the shard-count split (area bisection of the
// occupied extent, count balance of the population), then snaps the cut to
// the widest placement gap within a small neighborhood of the quantile.
// spatial.DensityCell supplies the density scale that decides whether a gap
// is a genuine cluster boundary (gap ≥ the measured cell edge) worth
// snapping to — on power-law placements the cut then falls between
// clusters instead of through one, which is what keeps cross-shard wire
// low. Every shard is non-empty and the partition depends only on the
// instance and k.
//
// # Per-shard builds and the offset registry
//
// Sink groups are instance-global and may span shards. Each shard build
// enforces the intra-group bound over its own sinks; the relative offsets a
// shard commits between groups are recorded in a private core.Registry
// cloned from one frozen base (prescribed Options.GroupOffsets included).
// Per-shard builds also see core's grid-pairer threshold divided by the
// shard count: PairerAuto's grid-vs-oracle decision is about total instance
// scale, and comparing each shard's 1/k slice against the global constant
// would silently drop mid-size sharded runs (10k sinks at 8 shards) back
// onto the O(n²) scan oracle inside every shard.
// Sharing by frozen snapshot rather than by lock keeps the concurrent phase
// mutex-free and the result independent of goroutine scheduling. Offsets
// committed inside different shards may disagree; reconciliation is the
// stitch's job — unless the pilot pass already aligned them.
//
// # Pilot offset pass
//
// The thesis frames the inter-group skews S_{i,j} as a single global
// contract, specified implicitly or explicitly — not k contracts decided
// independently. Without a pilot, each shard commits its own offsets and
// the stitch windows must reconcile the contradictions, degrading residual
// intra-group skew at shard seams (measured up to ~51 ps on intermingled
// uniform 10k at 8 shards, and into the thousands of ps on clustered
// power-law placements). With core.Options.Pilot, Build decides the
// contract once, up front: it routes a handful of deterministic sink
// samples with the unsharded engine, reads the offsets each commits back
// out of its registry (core.Registry.Offsets), and prescribes the per-group
// median to every shard and to the stitch through the existing GroupOffsets
// machinery. Shards then agree by construction and the measured seam
// residual drops to float noise.
//
// The estimator's accuracy decides the wirelength price, and two properties
// make it cheap (see pilot.go for the measurements): samples are spatially
// compact full-density patches, because offsets are subtree-delay
// differences and Elmore delay grows with sink spacing — a sample spread
// over the die commits offsets inflated by the density ratio, and
// prescribing inflated offsets forces real skew into every shard build —
// and several patches vote by median, because any single region can commit
// an outlier. Prescribing offsets within ~1 ps of the full build's natural
// values costs ≤2% wire over the unpiloted sharded build; prescribing 30 ps
// of sampling noise costs 14%. The pass itself routes a few hundred sinks
// per patch and its cost is reported separately (Result.PilotStats).
//
// # Stitch
//
// The top level routes the k shard roots with core.MergeRoots: the same
// merge bodies as everywhere else — shared-group skew windows, the
// registry leash (on the base registry), joint resolution of still-deferred
// shard roots, and wire sneaking when independently built shards committed
// contradictory offsets. This generalizes the separate-trees-and-stitch
// baseline (internal/stitch, after Chen–Kahng–Qu–Zelikovsky): where the
// baseline stitches per-group trees with unconstrained minimum-distance
// merges, the shard stitch keeps enforcing the intra-group bound across
// every seam, so a sharded route meets the same skew contract as an
// unsharded one. The price is wirelength: shards cannot merge across a cut
// below the top level, and seams between shards sharing groups may need
// balancing or snaking wire. The differential tests in this package pin the
// envelope.
//
// # Determinism
//
// Shards = 1 is bitwise-identical to the unsharded core.Build: the single
// "shard" routes the full sink set through exactly the same code path and
// the stitch is a no-op (the differential test pins wirelength bits and a
// per-sink delay digest); the pilot is off by default, so nothing perturbs
// the identity. Shards > 1 is seeded-deterministic: the partition, the
// pilot samples and their routes, each shard build, and the stitch order
// are pure functions of (instance, options, k), so repeated runs agree
// bit-for-bit at any GOMAXPROCS or worker count — but the routed tree
// legitimately differs from the unsharded one. The pilot's contract uses a
// fixed pilot partition rather than the build's, so it is additionally
// independent of k.
package shard
