// Package shard routes an instance by spatial decomposition: partition the
// sinks into k spatially compact shards, route every shard concurrently with
// the core merge engine, then stitch the shard roots with the same
// constraint machinery the intra-shard merges use. It is the structural
// scaling step beyond sub-quadratic pairing and the parallel merge wave —
// the shape that lets one route fan out across cores today and across
// machines later (each shard build is self-contained: a sink subset plus a
// frozen registry snapshot in, a subtree out).
//
// # Partition
//
// Partition cuts the instance by recursive bisection in uv-space (the
// 45°-rotated plane all routing geometry lives in): each step splits the
// current sink set along the longer axis of its uv bounding box at the
// count quantile matching the shard-count split (area bisection of the
// occupied extent, count balance of the population), then snaps the cut to
// the widest placement gap within a small neighborhood of the quantile.
// spatial.DensityCell supplies the density scale that decides whether a gap
// is a genuine cluster boundary (gap ≥ the measured cell edge) worth
// snapping to — on power-law placements the cut then falls between
// clusters instead of through one, which is what keeps cross-shard wire
// low. Every shard is non-empty and the partition depends only on the
// instance and k.
//
// # Per-shard builds and the offset registry
//
// Sink groups are instance-global and may span shards. Each shard build
// enforces the intra-group bound over its own sinks; the relative offsets a
// shard commits between groups are recorded in a private core.Registry
// cloned from one frozen base (prescribed Options.GroupOffsets included).
// Sharing by frozen snapshot rather than by lock keeps the concurrent phase
// mutex-free and the result independent of goroutine scheduling. Offsets
// committed inside different shards may disagree; reconciliation is the
// stitch's job.
//
// # Stitch
//
// The top level routes the k shard roots with core.MergeRoots: the same
// merge bodies as everywhere else — shared-group skew windows, the
// registry leash (on the base registry), joint resolution of still-deferred
// shard roots, and wire sneaking when independently built shards committed
// contradictory offsets. This generalizes the separate-trees-and-stitch
// baseline (internal/stitch, after Chen–Kahng–Qu–Zelikovsky): where the
// baseline stitches per-group trees with unconstrained minimum-distance
// merges, the shard stitch keeps enforcing the intra-group bound across
// every seam, so a sharded route meets the same skew contract as an
// unsharded one. The price is wirelength: shards cannot merge across a cut
// below the top level, and seams between shards sharing groups may need
// balancing or snaking wire. The differential tests in this package pin the
// envelope.
//
// # Determinism
//
// Shards = 1 is bitwise-identical to the unsharded core.Build: the single
// "shard" routes the full sink set through exactly the same code path and
// the stitch is a no-op (the differential test pins wirelength bits and a
// per-sink delay digest). Shards > 1 is seeded-deterministic: the
// partition, each shard build, and the stitch order are pure functions of
// (instance, options, k), so repeated runs agree bit-for-bit at any
// GOMAXPROCS or worker count — but the routed tree legitimately differs
// from the unsharded one.
package shard
