package shard

// Incremental (ECO) rerouting. A retained sharded build (BuildEco) leaves
// behind an EcoCache: the partition, the frozen base registry with the pilot
// offset contract baked in, and every shard's pre-stitch subtree in the
// remote-dispatch result encoding. Rebuild applies an instio edit script
// (move/reload/add/remove sinks) to the cached instance, derives the dirty
// shard set from the cached partition — an edited sink dirties the shard
// that owns it; an added sink dirties the shard of its nearest surviving
// neighbor, found through an incrementally patched spatial index over the
// sink placements — and re-routes ONLY the dirty shards through the same
// dispatch.Run path the from-scratch pipeline uses (retry, hedging, panic
// containment and remote workers apply unchanged). Clean shards are adopted
// from the cache by decoding their blobs and remapping leaf identity to the
// edited instance; all roots are then re-stitched with MergeRoots against a
// fresh reconstruction of the frozen base, i.e. under the cached pilot
// contract, so the rebuilt tree keeps the from-scratch build's inter-group
// alignment (seam skew at float noise) without re-running the pilot.
//
// The contract is sound because a sub-build is a pure function of
// (instance, sink subset, options, frozen registry): a clean shard's sinks
// are untouched by the edit script, its options and registry are cached, so
// the decoded subtree is bitwise the subtree a from-scratch build of the
// edited instance would produce for that shard. What the contract cannot
// absorb — edits that empty a shard or leave no sink to anchor an addition —
// surfaces as ErrFullBuild; edits that empty a group are rejected by
// EditScript.Apply outright. Every Rebuild result chains: it carries a new
// EcoCache for the edited instance, so ECO sequences compound without ever
// paying a full build.

import (
	"context"
	"errors"
	"fmt"
	"runtime/pprof"
	"sort"
	"strconv"

	"repro/internal/core"
	"repro/internal/ctree"
	"repro/internal/dispatch"
	"repro/internal/geom"
	"repro/internal/instio"
	"repro/internal/obs"
	"repro/internal/spatial"
	"repro/internal/wire"
)

// ErrFullBuild marks an edit script the cached contract cannot absorb
// incrementally (an emptied shard, or no surviving sink to anchor an added
// one). Callers should fall back to a from-scratch BuildEco of the edited
// instance; errors.Is recognizes the sentinel through the wrapping detail.
var ErrFullBuild = errors.New("shard: edits invalidate the cached contract; run a full build")

// EcoCache is a retained incremental-rebuild contract (see the file
// comment). It is produced by BuildEco and by every Rebuild, and survives
// process boundaries through Marshal/UnmarshalEcoCache. A cache is safe to
// Rebuild repeatedly (each call re-derives its scratch state), but not from
// concurrent goroutines.
type EcoCache struct {
	// Instance is the routed instance the contract describes.
	Instance *ctree.Instance
	// Opt is the build's option set (Shards/Pilot included) with the
	// local-only fields stripped; rebuilds re-derive the sub-build and
	// per-shard options from it exactly as the from-scratch pipeline does.
	Opt core.Options
	// Parts is the cached partition: Parts[i] lists shard i's sink IDs.
	Parts [][]int
	// Base is the frozen base registry every shard cloned, with the pilot
	// offsets pre-registered; PilotOffsets is the offset contract itself
	// (nil when the pilot was off) and PilotSinks its routed sample size.
	Base         core.RegistrySnapshot
	PilotOffsets []float64
	PilotSinks   int
	// Blobs[i] is shard i's pre-stitch subtree (wire.BuildResult encoding).
	// A blob decodes against Instance directly unless remaps[i] is set, in
	// which case its leaf sink ids live in the id space of the ancestor
	// instance it was encoded for and remaps[i] carries them forward.
	Blobs [][]byte
	// remaps[i], when non-nil, is the pending leaf renumbering of Blobs[i]:
	// rebuilds chain a clean shard's cached bytes verbatim and merely compose
	// the edit script's renumbering onto this map, instead of paying a
	// decode-rewrite-reencode round trip per hop for subtrees that did not
	// change. The map is applied (and disappears) whenever the blob is next
	// decoded — on rebuild adoption or Marshal materialization.
	remaps [][]int

	// Scratch state, derived lazily per rebuild: the sink→shard map of
	// Parts, and a spatial index over the sink placements used to assign
	// added sinks to shards. The index is patched incrementally as the edit
	// script is walked and handed to the chained cache when sink identity
	// survives the edit (no removals); a consumed or invalidated index is
	// simply rebuilt on the next use.
	sinkShard []int
	idx       *spatial.Index
}

// RebuildOptions carries the local-only knobs of a rebuild — observation and
// cancellation, the two option fields that never live in the cache.
type RebuildOptions struct {
	// Trace, when non-nil, records the rebuild's phase spans (dirty,
	// rebuild, restitch, finalize) with per-dirty-shard child traces.
	Trace *obs.Trace
	// Ctx cancels the rebuild (merge loops and dispatch alike).
	Ctx context.Context
}

// Rebuild re-routes the cached instance under the edit script with the
// default dispatch policy and no tracing. See RebuildDispatch.
func (c *EcoCache) Rebuild(script *instio.EditScript) (*Result, error) {
	return c.RebuildDispatch(script, RebuildOptions{}, dispatch.Options{})
}

// RebuildDispatch is the incremental rebuild (see the file comment): apply
// the edit script, re-route the dirty shards through dispatch.Run, adopt the
// clean shards from the cache, re-stitch under the cached pilot contract.
// The result is a full sharded Result for the edited instance — quality
// metrics, per-shard attribution, dispatch report — plus EcoRebuilt/EcoReused
// recording what was actually re-routed, and a chained EcoCache.
func (c *EcoCache) RebuildDispatch(script *instio.EditScript, ropt RebuildOptions, dopt dispatch.Options) (*Result, error) {
	k := len(c.Parts)
	if k == 0 || len(c.Blobs) != k || c.Instance == nil {
		return nil, fmt.Errorf("shard: malformed eco cache (%d parts, %d blobs)", k, len(c.Blobs))
	}
	tr := ropt.Trace

	// ---- dirty: apply the edits, derive the dirty shard set ----
	dirtyRgn := tr.Begin("dirty")
	var edited *ctree.Instance
	var rm *instio.Remap
	var newParts [][]int
	var dirtyIdx []int
	var removals bool
	if err := dispatch.Protect("dirty", func() error {
		var err error
		edited, rm, err = script.Apply(c.Instance)
		if err != nil {
			return err
		}
		newParts, dirtyIdx, removals, err = c.dirtySet(script, rm)
		return err
	}); err != nil {
		return nil, err
	}
	dirtyRgn.Attr("edits", float64(len(script.Edits))).Attr("shards", float64(len(dirtyIdx))).End()
	tr.Metric("eco_edits", float64(len(script.Edits)))
	tr.Metric("eco_dirty_shards", float64(len(dirtyIdx)))
	tr.Metric("eco_reused_shards", float64(k-len(dirtyIdx)))

	// Re-derive the sub-build and per-shard options exactly as the
	// from-scratch pipeline would for the edited instance.
	subOpt := c.Opt
	subOpt.Shards = 0
	subOpt.Pilot = false
	subOpt.Trace = nil
	subOpt.Ctx = ropt.Ctx
	if c.PilotOffsets != nil {
		subOpt.GroupOffsets = c.PilotOffsets
	}
	base, err := core.NewRegistryFromSnapshot(c.Base)
	if err != nil {
		return nil, err
	}
	shardOpt := deriveShardOpt(subOpt, k)

	// ---- rebuild: dirty shards only, through the dispatch coordinator ----
	m := len(dirtyIdx)
	rebuildRgn := tr.Begin("rebuild").Attr("shards", float64(m))
	dirtyParts := make([][]int, m)
	for j, i := range dirtyIdx {
		dirtyParts[j] = newParts[i]
	}
	shardTraces := make([]*obs.Trace, m)
	if tr != nil {
		for j, i := range dirtyIdx {
			shardTraces[j] = tr.Child("shard" + strconv.Itoa(i))
		}
	}
	local := dispatch.RunnerFunc(func(ctx context.Context, t dispatch.Task) (any, error) {
		so := shardOpt
		so.Ctx = ctx
		if t.Attempt == 0 {
			so.Trace = shardTraces[t.Index]
		}
		reg := base.Clone() // private view of the frozen base
		var sub *core.Subtree
		var err error
		pprof.Do(ctx, pprof.Labels("shard", strconv.Itoa(dirtyIdx[t.Index])), func(context.Context) {
			sub, err = core.BuildSubtree(edited, dirtyParts[t.Index], so, reg)
		})
		if err != nil {
			return nil, err
		}
		return shardOut{sub: sub, reg: reg}, nil
	})
	var runner dispatch.Runner = local
	if dopt.Remote != nil {
		rr, err := newRemoteShardRunner(dopt.Remote, edited, shardOpt, base, dirtyParts, local, dopt.Faults)
		if err != nil {
			return nil, err
		}
		runner = rr
	}
	shardDopt := dopt
	shardDopt.Phase = "shard"
	shardDopt.Trace = tr
	outs, disp, err := dispatch.Run(ropt.Ctx, m, runner, shardDopt)
	for _, st := range shardTraces {
		st.Close()
	}
	rebuildRgn.End()
	if err != nil {
		return nil, err
	}

	// Assemble the full shard set: dirty subtrees from the dispatch, clean
	// subtrees decoded from the cache with leaf identity remapped onto the
	// edited instance. Decoding yields fresh nodes every time, so the cache
	// itself stays reusable.
	subs := make([]*core.Subtree, k)
	regs := make([]*core.Registry, k)
	for j, i := range dirtyIdx {
		so := outs[j].(shardOut)
		subs[i], regs[i] = so.sub, so.reg
	}
	cleanRemap := make([][]int, k) // blob-origin → edited ids, clean shards only
	if err := dispatch.Protect("rebuild", func() error {
		for i := 0; i < k; i++ {
			if subs[i] != nil {
				continue // dirty, freshly built
			}
			// One decode pass lands the subtree directly in the edited id
			// space: the blob's own pending remap (if it was chained past
			// earlier edits) composed with this script's renumbering.
			var pending []int
			if c.remaps != nil {
				pending = c.remaps[i]
			}
			cleanRemap[i] = composeRemap(pending, rm.OldToNew)
			br, err := wire.DecodeResultRemapped(c.Blobs[i], edited, cleanRemap[i])
			if err != nil {
				return fmt.Errorf("shard: cached shard %d: %w", i, err)
			}
			if got := countLeaves(br.Root); got != len(newParts[i]) {
				return fmt.Errorf("shard: cached shard %d: clean subtree has %d leaves, partition expects %d",
					i, got, len(newParts[i]))
			}
			reg, err := core.NewRegistryFromSnapshot(br.Registry)
			if err != nil {
				return fmt.Errorf("shard: cached shard %d: %w", i, err)
			}
			subs[i] = &core.Subtree{Root: br.Root, Stats: br.Stats}
			regs[i] = reg
		}
		return nil
	}); err != nil {
		return nil, err
	}
	roots := make([]*ctree.Node, k)
	for i, s := range subs {
		roots[i] = s.Root
	}

	// Chain the contract BEFORE the stitch mutates the roots, exactly like
	// the retaining build. Only the dirty shards pay an encode: a clean
	// shard's subtree is untouched geometry, so its cached bytes are chained
	// verbatim with the composed renumbering left pending for the next decode.
	newBlobs := make([][]byte, k)
	newRemaps := make([][]int, k)
	chained := false
	if err := dispatch.Protect("retain", func() error {
		for i, s := range subs {
			if cleanRemap[i] != nil {
				newBlobs[i], newRemaps[i] = c.Blobs[i], cleanRemap[i]
				chained = true
				continue
			}
			br := wire.BuildResult{
				Root:       s.Root,
				Stats:      s.Stats,
				Wirelength: roots[i].Wirelength(),
				Registry:   regs[i].Snapshot(),
			}
			b, err := br.Encode()
			if err != nil {
				return err
			}
			newBlobs[i] = b
		}
		return nil
	}); err != nil {
		return nil, err
	}
	if !chained {
		newRemaps = nil
	}

	// ---- restitch: all roots under the cached pilot contract ----
	topReg := base
	if k == 1 {
		topReg = regs[0]
	}
	stitchRgn := tr.Begin("restitch")
	stitchOpt := subOpt
	if tr != nil {
		stitchOpt.Trace = tr.Child("stitch")
	}
	var top *core.Subtree
	err = dispatch.Protect("stitch", func() error {
		var err error
		top, err = core.MergeRoots(edited, roots, stitchOpt, topReg)
		return err
	})
	stitchOpt.Trace.Close()
	stitchRgn.End()
	if err != nil {
		return nil, err
	}

	finRgn := tr.Begin("finalize")
	res := &Result{
		Result: core.Result{
			Instance: edited,
			Root:     top.Root,
			Options:  c.Opt,
		},
		Shards:       make([]ShardInfo, k),
		StitchStats:  top.Stats,
		Parts:        newParts,
		PilotOffsets: c.PilotOffsets,
		PilotSinks:   c.PilotSinks,
		Trace:        tr,
		Dispatch:     disp,
		EcoRebuilt:   dirtyIdx,
		EcoReused:    k - m,
	}
	if err := dispatch.Protect("finalize", func() error {
		return finalizeResult(res, edited, subs, roots, newParts, top, base, core.Stats{})
	}); err != nil {
		return nil, err
	}
	finRgn.End()

	res.Eco = &EcoCache{
		Instance:     edited,
		Opt:          c.Opt,
		Parts:        newParts,
		Base:         c.Base,
		PilotOffsets: c.PilotOffsets,
		PilotSinks:   c.PilotSinks,
		Blobs:        newBlobs,
		remaps:       newRemaps,
	}
	if !removals {
		// Sink identity survived the edits (adds extended it densely), so
		// the patched index is exactly the edited instance's — hand it to
		// the chained cache instead of rebuilding it there. After removals
		// ids shifted and the index is wrong for either cache; drop it.
		res.Eco.idx = c.idx
	}
	// The walked index was mutated by this rebuild; the next use of THIS
	// cache must re-derive it (dirtySet rebuilds a nil index lazily).
	c.idx = nil
	return res, nil
}

// dirtySet walks the edit script and derives the dirty shards and the edited
// partition. Moves, reloads and removals dirty the shard owning the targeted
// sink; an addition is assigned to the shard of its nearest live sink, found
// through the lazily built, incrementally patched spatial index (removed
// sinks are deleted from it before later additions query, moved sinks are
// re-filed at their new placement, and each added sink is filed immediately
// so a subsequent addition can cluster onto it). Returns the partition in
// edited-instance sink ids, the ascending dirty shard indices, and whether
// the script removed any sink.
func (c *EcoCache) dirtySet(script *instio.EditScript, rm *instio.Remap) (newParts [][]int, dirtyIdx []int, removals bool, err error) {
	k := len(c.Parts)
	nOld := len(c.Instance.Sinks)
	if c.sinkShard == nil {
		c.sinkShard = make([]int, nOld)
		for i, p := range c.Parts {
			for _, s := range p {
				c.sinkShard[s] = i
			}
		}
	}
	if c.idx == nil {
		boxes := make([]geom.Rect, nOld)
		for i := range c.Instance.Sinks {
			boxes[i] = geom.RectFromPoint(c.Instance.Sinks[i].Loc)
		}
		c.idx = spatial.New(spatial.DensityCell(boxes))
		c.idx.InsertAll(boxes)
	}

	dirty := make([]bool, k)
	var addShard []int // shard assigned to each addition, in script order
	nextID := nOld     // index ids for additions: dense continuation of the old ids
	for _, e := range script.Edits {
		switch e.Op {
		case instio.OpMove:
			dirty[c.sinkShard[e.Sink]] = true
			c.idx.Delete(e.Sink)
			c.idx.Insert(e.Sink, geom.RectFromPoint(e.Loc))
		case instio.OpReload:
			dirty[c.sinkShard[e.Sink]] = true
		case instio.OpRemove:
			dirty[c.sinkShard[e.Sink]] = true
			c.idx.Delete(e.Sink)
			removals = true
		case instio.OpAdd:
			q := geom.RectFromPoint(e.Loc)
			nb, _, ok := c.idx.Nearest(q, nil, func(id int) float64 {
				return geom.DistRR(q, c.idx.Box(id))
			})
			if !ok {
				return nil, nil, false, fmt.Errorf("%w (no surviving sink to anchor an added one)", ErrFullBuild)
			}
			sh := 0
			if nb < nOld {
				sh = c.sinkShard[nb]
			} else {
				sh = addShard[nb-nOld]
			}
			dirty[sh] = true
			addShard = append(addShard, sh)
			c.idx.Insert(nextID, q)
			nextID++
		}
	}

	// The edited partition: survivors keep their cached shard (a moved sink
	// stays where it was filed — the quality envelope, not the partition,
	// owns placement quality), additions join their assigned shard.
	newParts = make([][]int, k)
	for i, p := range c.Parts {
		np := make([]int, 0, len(p))
		for _, s := range p {
			if ns := rm.OldToNew[s]; ns >= 0 {
				np = append(np, ns)
			}
		}
		newParts[i] = np
	}
	for j, sh := range addShard {
		newParts[sh] = append(newParts[sh], rm.Added[j])
	}
	for i := range newParts {
		if len(newParts[i]) == 0 {
			return nil, nil, false, fmt.Errorf("%w (edits emptied shard %d)", ErrFullBuild, i)
		}
		if dirty[i] {
			dirtyIdx = append(dirtyIdx, i)
		}
	}
	sort.Ints(dirtyIdx)
	return newParts, dirtyIdx, removals, nil
}

// composeRemap carries a pending blob renumbering forward through an edit
// script's old→new map: the result maps the blob's native id space directly
// onto the edited instance (-1 = removed along the way). A nil pending map is
// the identity, so the script's own map passes through unchanged.
func composeRemap(pending, oldToNew []int) []int {
	if pending == nil {
		return oldToNew
	}
	out := make([]int, len(pending))
	for o, m := range pending {
		if m >= 0 {
			out[o] = oldToNew[m]
		} else {
			out[o] = -1
		}
	}
	return out
}

// countLeaves verifies a decoded clean-shard subtree against the partition: a
// leaf-count mismatch means the cache and the edit script disagree about the
// instance, which must surface at adoption rather than as a corrupt tree
// three layers down.
func countLeaves(root *ctree.Node) int {
	leaves := 0
	root.Visit(func(n *ctree.Node) {
		if n.IsLeaf() {
			leaves++
		}
	})
	return leaves
}

// Marshal serializes the cache for a later process (astdme -cache / -eco).
// Chained blobs with pending renumberings are materialized into the
// instance's own id space first — the disk format stays exactly the retained
// build's, and the decode-reencode cost is paid once at the process boundary
// instead of on every in-process hop.
func (c *EcoCache) Marshal() ([]byte, error) {
	blobs := c.Blobs
	if c.remaps != nil {
		blobs = make([][]byte, len(c.Blobs))
		for i, b := range c.Blobs {
			if c.remaps[i] == nil {
				blobs[i] = b
				continue
			}
			br, err := wire.DecodeResultRemapped(b, c.Instance, c.remaps[i])
			if err != nil {
				return nil, fmt.Errorf("shard: chained shard %d: %w", i, err)
			}
			if blobs[i], err = br.Encode(); err != nil {
				return nil, fmt.Errorf("shard: chained shard %d: %w", i, err)
			}
		}
	}
	opt := c.Opt
	opt.Shards = 0
	opt.Pilot = false
	wc := &wire.Cache{
		Shards:     len(c.Parts),
		Pilot:      c.Opt.Pilot,
		Opt:        stripLocalOnly(opt),
		Instance:   c.Instance,
		Parts:      c.Parts,
		Base:       c.Base,
		Offsets:    c.PilotOffsets,
		PilotSinks: c.PilotSinks,
		Blobs:      blobs,
	}
	return wc.Encode()
}

// UnmarshalEcoCache reconstructs a cache serialized by Marshal, through the
// wire layer's defensive validation (partition cover, registry forest,
// option ranges; the shard blobs stay individually sealed and are verified
// when a rebuild decodes them).
func UnmarshalEcoCache(data []byte) (*EcoCache, error) {
	wc, err := wire.DecodeCache(data)
	if err != nil {
		return nil, err
	}
	opt := wc.Opt
	opt.Shards = wc.Shards
	opt.Pilot = wc.Pilot
	return &EcoCache{
		Instance:     wc.Instance,
		Opt:          opt,
		Parts:        wc.Parts,
		Base:         wc.Base,
		PilotOffsets: wc.Offsets,
		PilotSinks:   wc.PilotSinks,
		Blobs:        wc.Blobs,
	}, nil
}
