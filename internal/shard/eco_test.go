package shard

import (
	"errors"
	"fmt"
	"math"
	"os"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/ctree"
	"repro/internal/dispatch"
	"repro/internal/eval"
	"repro/internal/geom"
	"repro/internal/instio"
	"repro/internal/obs"
)

// ecoInstance is the grouped differential workload: an Intermingled grouping
// (every group spans every shard, the difficult seam case) over a power-law
// placement, the distribution the benchmarks report.
func ecoInstance(n, groups int) *ctree.Instance {
	return bench.Intermingled(bench.PowerLaw(n, bench.PowerLawClusters, bench.PowerLawAlpha, 9), groups, 9000+int64(n))
}

// ecoScript builds a small edit script whose dirty set is exactly shards
// {0, 1} of the cached partition: a move, a reload and a removal targeting
// shard 0's sinks, plus an addition placed on top of a shard 1 sink (nearest
// live neighbor therefore lives in shard 1).
func ecoScript(in *ctree.Instance, parts [][]int) *instio.EditScript {
	a, b := parts[0], parts[1]
	mv := in.Sinks[a[0]].Loc
	anchor := in.Sinks[b[0]]
	return &instio.EditScript{Name: "eco-test", Edits: []instio.Edit{
		{Op: instio.OpMove, Sink: a[0], Loc: geom.Point{X: mv.X + 40, Y: mv.Y - 25}},
		{Op: instio.OpReload, Sink: a[1], CapFF: in.Sinks[a[1]].CapFF * 1.7},
		{Op: instio.OpRemove, Sink: a[2]},
		{Op: instio.OpAdd, Loc: geom.Point{X: anchor.Loc.X + 1, Y: anchor.Loc.Y + 1},
			CapFF: anchor.CapFF, Group: anchor.Group},
	}}
}

// TestEcoNoopRebuild pins the rebuild's degenerate case: an empty edit
// script dirties nothing, so the rebuild adopts every cached subtree and
// re-runs only the stitch — and because a sub-build round-trips the wire
// codec bitwise and the stitch is deterministic, the result is bitwise the
// retained build's. This is the foundation the differential tests stand on:
// any drift between the cached contract and the from-scratch pipeline shows
// up here first.
func TestEcoNoopRebuild(t *testing.T) {
	in := ecoInstance(2000, 3)
	full, err := BuildEco(in, core.Options{Shards: 4, Pilot: true}, dispatch.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if full.Eco == nil || len(full.Eco.Blobs) != 4 {
		t.Fatalf("retained build carries no eco contract: %+v", full.Eco)
	}
	res, err := full.Eco.Rebuild(&instio.EditScript{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.EcoRebuilt) != 0 || res.EcoReused != 4 {
		t.Errorf("noop rebuild re-routed %v, reused %d; want none, 4", res.EcoRebuilt, res.EcoReused)
	}
	if wb, rb := math.Float64bits(res.Wirelength), math.Float64bits(full.Wirelength); wb != rb {
		t.Errorf("noop rebuild wirelength bits 0x%016x, want 0x%016x", wb, rb)
	}
	if gh, rh := delayDigest(t, res.Root, in), delayDigest(t, full.Root, in); gh != rh {
		t.Errorf("noop rebuild delay digest 0x%016x, want 0x%016x", gh, rh)
	}
	if res.Eco == nil {
		t.Error("rebuild result does not chain an eco contract")
	}
	for i := range res.Shards {
		if res.Shards[i].Stats != full.Shards[i].Stats {
			t.Errorf("shard %d stats changed on a noop rebuild", i)
		}
	}
}

// ecoDifferential runs the incremental-vs-from-scratch differential at one
// size: retained piloted build at k shards, an edit script dirtying 2 of
// them, then the eval-backed envelope — only the dirty shards rebuilt
// (pinned by the per-shard build counters), wirelength within the sharded
// envelope of the unsharded build of the edited instance, seam skew and
// intra-group skew no worse than a from-scratch piloted sharded build's
// (within float tolerance), and the whole rebuild deterministic.
func ecoDifferential(t *testing.T, n, k int) {
	in := ecoInstance(n, 4)
	full, err := BuildEco(in, core.Options{Shards: k, Pilot: true}, dispatch.Options{})
	if err != nil {
		t.Fatal(err)
	}
	script := ecoScript(in, full.Parts)
	res, err := full.Eco.Rebuild(script)
	if err != nil {
		t.Fatal(err)
	}
	edited := res.Instance

	// Dirty-set pinning: exactly shards {0, 1}, everything else adopted
	// with its cached build counters untouched.
	if len(res.EcoRebuilt) != 2 || res.EcoRebuilt[0] != 0 || res.EcoRebuilt[1] != 1 {
		t.Fatalf("dirty set %v, want [0 1]", res.EcoRebuilt)
	}
	if res.EcoReused != k-2 {
		t.Errorf("reused %d shards, want %d", res.EcoReused, k-2)
	}
	for i := 2; i < k; i++ {
		if res.Shards[i].Stats != full.Shards[i].Stats {
			t.Errorf("clean shard %d was rebuilt: stats %+v, cached %+v", i, res.Shards[i].Stats, full.Shards[i].Stats)
		}
		if res.Shards[i].Sinks != full.Shards[i].Sinks {
			t.Errorf("clean shard %d sink count drifted: %d vs %d", i, res.Shards[i].Sinks, full.Shards[i].Sinks)
		}
	}

	// Quality envelope against the edited instance.
	if err := eval.CheckTree(res.Root, edited); err != nil {
		t.Fatalf("CheckTree: %v", err)
	}
	rep := eval.Analyze(res.Root, edited, core.DefaultModel(), edited.Source)
	if rep.Sinks != len(edited.Sinks) {
		t.Fatalf("reached %d of %d sinks", rep.Sinks, len(edited.Sinks))
	}
	ref, err := core.Build(edited, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ratio := res.Wirelength / ref.Wirelength; ratio > wireEnvelope {
		t.Errorf("wirelength ratio %.4f vs unsharded exceeds envelope %v", ratio, wireEnvelope)
	}
	scratch, err := Build(edited, core.Options{Shards: k, Pilot: true})
	if err != nil {
		t.Fatal(err)
	}
	srep := eval.Analyze(scratch.Root, edited, core.DefaultModel(), edited.Source)
	_, seam := eval.SeamSkew(rep, edited, res.Parts)
	_, sseam := eval.SeamSkew(srep, edited, scratch.Parts)
	// The rebuild reuses the CACHED pilot contract where the scratch build
	// re-runs its pilot on the edited instance; with a handful of edits the
	// two contracts are near-identical, so the seam residual must stay in
	// the scratch build's neighborhood rather than regress toward the
	// unpiloted level.
	if tol := 1e-6 * (1 + sseam); seam > 2*sseam+tol {
		t.Errorf("eco seam skew %v ps vs from-scratch piloted %v ps", seam, sseam)
	}
	if tol := 1e-6 * (1 + srep.MaxGroupSkew); rep.MaxGroupSkew > 2*srep.MaxGroupSkew+tol {
		t.Errorf("eco intra-group skew %v ps vs from-scratch %v ps", rep.MaxGroupSkew, srep.MaxGroupSkew)
	}
	t.Logf("n=%d k=%d: wire ratio %.4f (scratch %.4f), seam %v ps (scratch %v), group skew %v ps (scratch %v)",
		n, k, res.Wirelength/ref.Wirelength, scratch.Wirelength/ref.Wirelength,
		seam, sseam, rep.MaxGroupSkew, srep.MaxGroupSkew)

	// Determinism: the same cache absorbs the same script again (the
	// scratch index was consumed by the first rebuild and is re-derived),
	// bitwise.
	again, err := full.Eco.Rebuild(script)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(again.Wirelength) != math.Float64bits(res.Wirelength) {
		t.Errorf("repeat rebuild wirelength %v != %v", again.Wirelength, res.Wirelength)
	}
	if gh, rh := delayDigest(t, again.Root, edited), delayDigest(t, res.Root, edited); gh != rh {
		t.Errorf("repeat rebuild delay digest 0x%016x, want 0x%016x", gh, rh)
	}
}

// TestEcoDifferential is the tier-1 differential at 10k; the acceptance-size
// run at 100k/8 shards (the benchmark config) is expensive and runs when
// ECO_100K is set — CI's eco job exercises it alongside the race-checked
// tier-1 sizes.
func TestEcoDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("differential needs the 10k grouped build")
	}
	ecoDifferential(t, 10_000, 8)
}

func TestEcoDifferential100k(t *testing.T) {
	if os.Getenv("ECO_100K") == "" {
		t.Skip("set ECO_100K=1 for the acceptance-size differential")
	}
	ecoDifferential(t, 100_000, 8)
}

// TestEcoChainedRebuild pins that rebuilds compound: the chained cache of a
// first rebuild absorbs a second script without a full build, and hands over
// (or re-derives) the spatial scratch state correctly in both the
// ids-preserved and ids-shifted regimes.
func TestEcoChainedRebuild(t *testing.T) {
	in := ecoInstance(3000, 3)
	full, err := BuildEco(in, core.Options{Shards: 4, Pilot: true}, dispatch.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// First script has no removals → sink ids survive → the patched index
	// is handed to the chained cache.
	p := full.Parts
	s1 := &instio.EditScript{Name: "hop1", Edits: []instio.Edit{
		{Op: instio.OpMove, Sink: p[0][0], Loc: geom.Point{X: in.Sinks[p[0][0]].Loc.X + 10, Y: in.Sinks[p[0][0]].Loc.Y}},
		{Op: instio.OpAdd, Loc: in.Sinks[p[2][0]].Loc, CapFF: 1, Group: in.Sinks[p[2][0]].Group},
	}}
	r1, err := full.Eco.Rebuild(s1)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Eco == nil {
		t.Fatal("first rebuild chains no contract")
	}
	// Second script removes through the handed-over index.
	e1 := r1.Instance
	s2 := &instio.EditScript{Name: "hop2", Edits: []instio.Edit{
		{Op: instio.OpRemove, Sink: r1.Parts[1][0]},
		{Op: instio.OpAdd, Loc: e1.Sinks[r1.Parts[3][0]].Loc, CapFF: 1, Group: e1.Sinks[r1.Parts[3][0]].Group},
	}}
	r2, err := r1.Eco.Rebuild(s2)
	if err != nil {
		t.Fatal(err)
	}
	e2 := r2.Instance
	if err := eval.CheckTree(r2.Root, e2); err != nil {
		t.Fatalf("CheckTree after two hops: %v", err)
	}
	rep := eval.Analyze(r2.Root, e2, core.DefaultModel(), e2.Source)
	if rep.Sinks != len(e2.Sinks) {
		t.Fatalf("reached %d of %d sinks", rep.Sinks, len(e2.Sinks))
	}
	ref, err := core.Build(e2, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ratio := r2.Wirelength / ref.Wirelength; ratio > wireEnvelope {
		t.Errorf("two-hop wirelength ratio %.4f exceeds envelope %v", ratio, wireEnvelope)
	}
	// Both hops must agree with a fresh rebuild of the same scripts from a
	// fresh retained build — the handover is an optimization, never a
	// semantic input.
	full2, err := BuildEco(in, core.Options{Shards: 4, Pilot: true}, dispatch.Options{})
	if err != nil {
		t.Fatal(err)
	}
	q1, err := full2.Eco.Rebuild(s1)
	if err != nil {
		t.Fatal(err)
	}
	q2, err := q1.Eco.Rebuild(s2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(q2.Wirelength) != math.Float64bits(r2.Wirelength) {
		t.Errorf("chained rebuild not reproducible: wire %v vs %v", q2.Wirelength, r2.Wirelength)
	}
	if gh, rh := delayDigest(t, q2.Root, e2), delayDigest(t, r2.Root, e2); gh != rh {
		t.Errorf("chained rebuild delay digest 0x%016x, want 0x%016x", gh, rh)
	}
}

// TestEcoCacheRoundTrip pins the persisted contract: Marshal →
// UnmarshalEcoCache → Rebuild produces bitwise the in-process rebuild, so
// astdme -cache/-eco spans process boundaries without quality loss.
func TestEcoCacheRoundTrip(t *testing.T) {
	in := ecoInstance(2000, 3)
	full, err := BuildEco(in, core.Options{Shards: 4, Pilot: true}, dispatch.Options{})
	if err != nil {
		t.Fatal(err)
	}
	blob, err := full.Eco.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	cache, err := UnmarshalEcoCache(blob)
	if err != nil {
		t.Fatal(err)
	}
	script := ecoScript(in, full.Parts)
	want, err := full.Eco.Rebuild(script)
	if err != nil {
		t.Fatal(err)
	}
	got, err := cache.Rebuild(script)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(got.Wirelength) != math.Float64bits(want.Wirelength) {
		t.Errorf("decoded-cache rebuild wire %v != in-process %v", got.Wirelength, want.Wirelength)
	}
	if gh, rh := delayDigest(t, got.Root, got.Instance), delayDigest(t, want.Root, want.Instance); gh != rh {
		t.Errorf("decoded-cache rebuild digest 0x%016x, want 0x%016x", gh, rh)
	}
	// The chained cache carries pending leaf renumberings for the clean
	// shards (the script removed a sink); Marshal must materialize them into
	// the disk format, and a rebuild from the round-tripped bytes must match
	// the in-process chained rebuild bit for bit.
	chainBlob, err := want.Eco.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	chainCache, err := UnmarshalEcoCache(chainBlob)
	if err != nil {
		t.Fatal(err)
	}
	hop := ecoScript(want.Instance, want.Parts)
	want2, err := want.Eco.Rebuild(hop)
	if err != nil {
		t.Fatal(err)
	}
	got2, err := chainCache.Rebuild(hop)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(got2.Wirelength) != math.Float64bits(want2.Wirelength) {
		t.Errorf("materialized-cache rebuild wire %v != chained in-process %v", got2.Wirelength, want2.Wirelength)
	}
	if gh, rh := delayDigest(t, got2.Root, got2.Instance), delayDigest(t, want2.Root, want2.Instance); gh != rh {
		t.Errorf("materialized-cache rebuild digest 0x%016x, want 0x%016x", gh, rh)
	}

	// Corruption anywhere in the container must surface at decode, not as a
	// wrong tree later.
	for _, cut := range []int{1, len(blob) / 2, len(blob) - 1} {
		if _, err := UnmarshalEcoCache(blob[:cut]); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
	flip := append([]byte(nil), blob...)
	flip[len(flip)/3] ^= 0x40
	if _, err := UnmarshalEcoCache(flip); err == nil {
		t.Error("bit flip accepted")
	}
}

// TestEcoInvalidation covers the edits the contract cannot absorb: a script
// that empties a shard reports ErrFullBuild (the caller's cue to rebuild
// from scratch); a script that empties a group is rejected by Apply; a
// malformed cache is rejected up front.
func TestEcoInvalidation(t *testing.T) {
	in := bench.Intermingled(bench.Small(40, 3), 2, 5)
	full, err := BuildEco(in, core.Options{Shards: 4, Pilot: true}, dispatch.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Remove every sink of shard 2 — unless that would empty a group, in
	// which case the group rejection fires first; build the script against
	// the actual partition so it always empties the shard.
	var edits []instio.Edit
	for _, s := range full.Parts[2] {
		edits = append(edits, instio.Edit{Op: instio.OpRemove, Sink: s})
	}
	_, err = full.Eco.Rebuild(&instio.EditScript{Edits: edits})
	if err == nil {
		t.Fatal("emptied shard accepted")
	}
	if !errors.Is(err, ErrFullBuild) {
		// Emptying the shard may have emptied a group first on this tiny
		// instance; that is an Apply validation error, not a fallback cue.
		t.Logf("emptied shard rejected by apply instead: %v", err)
	}

	if _, err := full.Eco.Rebuild(&instio.EditScript{Edits: []instio.Edit{
		{Op: instio.OpMove, Sink: len(in.Sinks) + 5, Loc: geom.Point{X: 1, Y: 1}},
	}}); err == nil {
		t.Error("unknown sink id accepted")
	}

	bad := &EcoCache{Instance: in}
	if _, err := bad.Rebuild(&instio.EditScript{}); err == nil {
		t.Error("malformed cache accepted")
	}

	if _, err := BuildEco(in, core.Options{}, dispatch.Options{}); err == nil {
		t.Error("BuildEco without Shards accepted (nothing to retain against)")
	}
}

// TestEcoDispatchPath pins that rebuilds flow through the dispatch
// coordinator: an injected first-attempt fault on a dirty shard is retried
// and the result is bitwise the fault-free rebuild (attempt counts are the
// only difference).
func TestEcoDispatchPath(t *testing.T) {
	in := ecoInstance(2000, 3)
	full, err := BuildEco(in, core.Options{Shards: 4, Pilot: true}, dispatch.Options{})
	if err != nil {
		t.Fatal(err)
	}
	script := ecoScript(in, full.Parts)
	clean, err := full.Eco.Rebuild(script)
	if err != nil {
		t.Fatal(err)
	}
	faulty, err := full.Eco.RebuildDispatch(script, RebuildOptions{}, dispatch.Options{
		Faults: dispatch.NewFaultPlan().
			ErrorAt("shard", 0, 0, dispatch.MarkTransient(errors.New("injected eco fault"))),
	})
	if err != nil {
		t.Fatal(err)
	}
	if faulty.Dispatch.Retries == 0 || faulty.Dispatch.FaultsInjected == 0 {
		t.Errorf("fault plan not exercised: %+v", faulty.Dispatch)
	}
	if math.Float64bits(faulty.Wirelength) != math.Float64bits(clean.Wirelength) {
		t.Errorf("faulted rebuild diverged: wire %v vs %v", faulty.Wirelength, clean.Wirelength)
	}
	if gh, rh := delayDigest(t, faulty.Root, faulty.Instance), delayDigest(t, clean.Root, clean.Instance); gh != rh {
		t.Errorf("faulted rebuild digest 0x%016x, want 0x%016x", gh, rh)
	}
}

// TestEcoTraceSpans pins the observability contract: a traced rebuild
// records the dirty/rebuild/restitch/finalize phases and per-dirty-shard
// child traces.
func TestEcoTraceSpans(t *testing.T) {
	in := ecoInstance(2000, 3)
	full, err := BuildEco(in, core.Options{Shards: 4, Pilot: true}, dispatch.Options{})
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.New("eco")
	res, err := full.Eco.RebuildDispatch(ecoScript(in, full.Parts), RebuildOptions{Trace: tr}, dispatch.Options{})
	if err != nil {
		t.Fatal(err)
	}
	tr.Close()
	have := map[string]bool{}
	for _, p := range tr.Summary().Phases {
		have[p.Name] = true
	}
	for _, span := range []string{"dirty", "rebuild", "restitch", "finalize"} {
		if !have[span] {
			t.Errorf("rebuild trace missing span %q (have %v)", span, tr.Summary().Phases)
		}
	}
	children := map[string]bool{}
	for _, c := range tr.Children() {
		children[c.Label()] = true
	}
	for _, i := range res.EcoRebuilt {
		if !children[fmt.Sprintf("shard%d", i)] {
			t.Errorf("rebuild trace missing dirty-shard child shard%d (have %v)", i, tr.Children())
		}
	}
	if !children["stitch"] {
		t.Error("rebuild trace missing stitch child")
	}
	if v, ok := tr.MetricValue("eco_dirty_shards"); !ok || int(v) != len(res.EcoRebuilt) {
		t.Errorf("eco_dirty_shards metric = %v, %v; want %d", v, ok, len(res.EcoRebuilt))
	}
}
