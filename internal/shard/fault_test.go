package shard

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/dispatch"
	"repro/internal/obs"
)

// fastFaultOpts keeps injected-fault retries out of test wall time.
func fastFaultOpts(plan *dispatch.FaultPlan) dispatch.Options {
	return dispatch.Options{
		Faults:      plan,
		BackoffBase: time.Microsecond,
		BackoffMax:  time.Millisecond,
	}
}

// seededPlanTasks is the per-phase task count a chaos plan must cover: the
// shard count and the pilot pass's patch fan-out.
func seededPlanTasks(k int) int {
	if k < pilotPatches {
		return pilotPatches
	}
	return k
}

// TestFaultedShardedBitwiseIdentical is the fault suite's acceptance test:
// a grouped piloted 10k build under a seeded fault plan — panics, transient
// errors and stragglers across both dispatch phases — must produce the
// bitwise-identical tree (wirelength bits, per-sink delay digest, aggregate
// stats) of the fault-free build, at every shard count. Every re-execution
// is a pure function of the same inputs, so recovery must be invisible in
// the output and visible only in the dispatch report.
func TestFaultedShardedBitwiseIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	in := groupedInstance("uniform", 10_000, 4)
	for _, k := range []int{2, 4, 8} {
		opt := core.Options{Shards: k, Pilot: true, Pairer: core.PairerGrid}
		ref, err := Build(in, opt)
		if err != nil {
			t.Fatalf("shards=%d: fault-free: %v", k, err)
		}
		plan := dispatch.SeededPlan(int64(100+k), seededPlanTasks(k), 2*time.Millisecond, "pilot", "shard")
		got, err := BuildDispatch(in, opt, fastFaultOpts(plan))
		if err != nil {
			t.Fatalf("shards=%d: faulted build failed: %v", k, err)
		}
		wb, rb := math.Float64bits(got.Wirelength), math.Float64bits(ref.Wirelength)
		if wb != rb {
			t.Errorf("shards=%d: faulted wirelength bits 0x%016x (%v), want 0x%016x (%v)",
				k, wb, got.Wirelength, rb, ref.Wirelength)
		}
		if gh, rh := delayDigest(t, got.Root, in), delayDigest(t, ref.Root, in); gh != rh {
			t.Errorf("shards=%d: faulted delay digest 0x%016x, want 0x%016x", k, gh, rh)
		}
		if got.Stats != ref.Stats {
			t.Errorf("shards=%d: faulted stats %+v, want %+v", k, got.Stats, ref.Stats)
		}
		d := got.Dispatch
		if d.FaultsInjected == 0 {
			t.Errorf("shards=%d: seeded plan (%d faults) injected nothing", k, plan.Len())
		}
		if d.Retries == 0 && d.PanicsRecovered == 0 {
			t.Errorf("shards=%d: no recovery path fired under %d injected faults: %+v", k, d.FaultsInjected, d)
		}
		t.Logf("shards=%d: %+v", k, d)
	}
}

// TestFaultedChaosSeedsSmall sweeps seeds on a small grouped piloted build,
// broadening the (phase, task, attempt) coordinates the suite exercises
// while staying cheap.
func TestFaultedChaosSeedsSmall(t *testing.T) {
	in := bench.Intermingled(bench.Small(600, 21), 3, 55)
	opt := core.Options{Shards: 2, Pilot: true}
	ref, err := Build(in, opt)
	if err != nil {
		t.Fatal(err)
	}
	refWire, refHash := math.Float64bits(ref.Wirelength), delayDigest(t, ref.Root, in)
	for seed := int64(1); seed <= 4; seed++ {
		plan := dispatch.SeededPlan(seed, seededPlanTasks(2), time.Millisecond, "pilot", "shard")
		got, err := BuildDispatch(in, opt, fastFaultOpts(plan))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if w := math.Float64bits(got.Wirelength); w != refWire {
			t.Errorf("seed %d: wirelength bits 0x%016x, want 0x%016x", seed, w, refWire)
		}
		if h := delayDigest(t, got.Root, in); h != refHash {
			t.Errorf("seed %d: delay digest 0x%016x, want 0x%016x", seed, h, refHash)
		}
	}
}

// TestFaultedShardPanicSurfacesAsError pins panic containment at the build
// boundary: a shard whose every execution panics must yield an error naming
// the phase, the task and the attempts spent — never a process crash — and
// the error must unwrap to both the terminal *TaskError and the contained
// *PanicError.
func TestFaultedShardPanicSurfacesAsError(t *testing.T) {
	in := bench.Small(600, 21)
	plan := dispatch.NewFaultPlan().
		PanicAt("shard", 0, 0).
		PanicAt("shard", 0, 1).
		PanicAt("shard", 0, 2)
	_, err := BuildDispatch(in, core.Options{SingleGroup: true, Shards: 2}, fastFaultOpts(plan))
	if err == nil {
		t.Fatal("a shard panicking on every attempt returned nil error")
	}
	var te *dispatch.TaskError
	if !errors.As(err, &te) {
		t.Fatalf("error %T (%v), want *dispatch.TaskError", err, err)
	}
	if te.Phase != "shard" || te.Index != 0 || te.Attempts != 3 {
		t.Errorf("TaskError = phase %q task %d attempts %d, want shard/0/3", te.Phase, te.Index, te.Attempts)
	}
	var pe *dispatch.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("error does not unwrap to *dispatch.PanicError: %v", err)
	}
	if pe.Phase != "shard" || len(pe.Stack) == 0 {
		t.Errorf("PanicError phase %q, stack %d bytes", pe.Phase, len(pe.Stack))
	}
}

// TestFaultedPilotPanicSurfacesAsError is the same contract for the pilot
// phase: a patch build that panics on every attempt surfaces as an error
// naming "pilot".
func TestFaultedPilotPanicSurfacesAsError(t *testing.T) {
	// 120 sinks < pilotPatchSinks: the first sample degenerates to the full
	// set, so the pilot dispatches exactly one patch — task 0.
	in := bench.Intermingled(bench.Small(120, 13), 3, 7)
	plan := dispatch.NewFaultPlan().
		PanicAt("pilot", 0, 0).
		PanicAt("pilot", 0, 1).
		PanicAt("pilot", 0, 2)
	_, err := BuildDispatch(in, core.Options{Shards: 2, Pilot: true}, fastFaultOpts(plan))
	if err == nil {
		t.Fatal("a pilot patch panicking on every attempt returned nil error")
	}
	var te *dispatch.TaskError
	if !errors.As(err, &te) || te.Phase != "pilot" {
		t.Fatalf("error %v, want a *dispatch.TaskError in phase pilot", err)
	}
	if !strings.Contains(err.Error(), "pilot") {
		t.Errorf("error text does not name the pilot phase: %v", err)
	}
}

// TestFaultedTransientRecoversInvisibly checks the retry path alone: one
// transient first-attempt failure retries once and the build output carries
// no trace of it beyond the dispatch report.
func TestFaultedTransientRecoversInvisibly(t *testing.T) {
	in := bench.Small(600, 21)
	opt := core.Options{SingleGroup: true, Shards: 2}
	ref, err := Build(in, opt)
	if err != nil {
		t.Fatal(err)
	}
	plan := dispatch.NewFaultPlan().
		ErrorAt("shard", 1, 0, dispatch.MarkTransient(dispatch.ErrInjected))
	got, err := BuildDispatch(in, opt, fastFaultOpts(plan))
	if err != nil {
		t.Fatal(err)
	}
	if got.Wirelength != ref.Wirelength {
		t.Errorf("retried build wirelength %v, want %v", got.Wirelength, ref.Wirelength)
	}
	d := got.Dispatch
	if d.Retries != 1 || d.FaultsInjected != 1 || d.PanicsRecovered != 0 {
		t.Errorf("dispatch report = %+v, want exactly 1 retry of 1 injected fault", d)
	}
}

// TestFaultedPermanentFailsFast: an unmarked injected error is deterministic
// from the dispatcher's seat and must fail the build after a single attempt.
func TestFaultedPermanentFailsFast(t *testing.T) {
	in := bench.Small(600, 21)
	permanent := errors.New("deterministic option conflict")
	plan := dispatch.NewFaultPlan().ErrorAt("shard", 0, 0, permanent)
	res, err := BuildDispatch(in, core.Options{SingleGroup: true, Shards: 2}, fastFaultOpts(plan))
	if err == nil {
		t.Fatalf("permanent fault returned nil error (res=%v)", res)
	}
	if !errors.Is(err, permanent) {
		t.Errorf("error %v does not unwrap to the injected error", err)
	}
	var te *dispatch.TaskError
	if !errors.As(err, &te) || te.Attempts != 1 {
		t.Errorf("error %v, want a TaskError after exactly 1 attempt", err)
	}
}

// TestShardedCancellation threads context cancellation through the
// dispatcher into the shard builds: a dead context aborts the whole sharded
// build promptly with an error that unwraps to the context's.
func TestShardedCancellation(t *testing.T) {
	in := bench.Small(3000, 17)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	_, err := Build(in, core.Options{SingleGroup: true, Shards: 4, Ctx: ctx})
	if err == nil {
		t.Fatal("sharded build under a dead context returned nil error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("error %v does not unwrap to context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("cancellation took %v to unwind the sharded build", elapsed)
	}
}

// TestHedgedStragglerBitwiseAndObservable injects one straggling shard and
// requires the hedge machinery to (a) fire — observable as Dispatch.Hedges —
// (b) stay bounded at one duplicate per task, and (c) leave the tree
// bitwise-identical to the fault-free build: the hedge races a delayed twin
// of itself, so whichever wins delivers the same bits.
func TestHedgedStragglerBitwiseAndObservable(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	const k = 4
	in := bench.Small(3000, 17)
	opt := core.Options{SingleGroup: true, Shards: k}
	ref, err := Build(in, opt)
	if err != nil {
		t.Fatal(err)
	}
	plan := dispatch.NewFaultPlan().DelayAt("shard", 0, 0, time.Second)
	dopt := dispatch.Options{
		Faults:        plan,
		HedgeQuantile: 0.5,
		HedgeFactor:   2,
		HedgeSlack:    25 * time.Millisecond,
	}
	got, err := BuildDispatch(in, opt, dopt)
	if err != nil {
		t.Fatal(err)
	}
	if w, r := math.Float64bits(got.Wirelength), math.Float64bits(ref.Wirelength); w != r {
		t.Errorf("hedged wirelength bits 0x%016x, want 0x%016x", w, r)
	}
	if gh, rh := delayDigest(t, got.Root, in), delayDigest(t, ref.Root, in); gh != rh {
		t.Errorf("hedged delay digest 0x%016x, want 0x%016x", gh, rh)
	}
	d := got.Dispatch
	if d.Hedges < 1 {
		t.Errorf("straggler did not hedge: %+v", d)
	}
	if d.Hedges > k {
		t.Errorf("Hedges = %d on %d tasks — more than one duplicate somewhere: %+v", d.Hedges, k, d)
	}
	if extra := d.Attempts - k - d.Retries; extra != d.Hedges {
		t.Errorf("attempts %d on %d tasks with %d retries: %d extra executions, want Hedges=%d",
			d.Attempts, k, d.Retries, extra, d.Hedges)
	}
	t.Logf("dispatch: %+v", d)
}

// TestFaultedTracedRun: a traced faulted run must carry the dispatch_*
// metrics on the trace (the longitudinal chaos artifact depends on them) and
// still produce the fault-free tree.
func TestFaultedTracedRun(t *testing.T) {
	in := bench.Intermingled(bench.Small(600, 21), 3, 55)
	opt := core.Options{Shards: 2, Pilot: true}
	ref, err := Build(in, opt)
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.New("chaos")
	topt := opt
	topt.Trace = tr
	plan := dispatch.SeededPlan(3, seededPlanTasks(2), time.Millisecond, "pilot", "shard")
	got, err := BuildDispatch(in, topt, fastFaultOpts(plan))
	if err != nil {
		t.Fatal(err)
	}
	tr.Close()
	if got.Wirelength != ref.Wirelength {
		t.Errorf("traced faulted wirelength %v, want %v", got.Wirelength, ref.Wirelength)
	}
	d := got.Dispatch
	if v, ok := tr.MetricValue("dispatch_faults_injected"); !ok || v != float64(d.FaultsInjected) {
		t.Errorf("trace dispatch_faults_injected = %v (found %v), report says %d", v, ok, d.FaultsInjected)
	}
	if v, _ := tr.MetricValue("dispatch_retries"); v != float64(d.Retries) {
		t.Errorf("trace dispatch_retries = %v, report says %d", v, d.Retries)
	}
	if v, _ := tr.MetricValue("dispatch_panics_recovered"); v != float64(d.PanicsRecovered) {
		t.Errorf("trace dispatch_panics_recovered = %v, report says %d", v, d.PanicsRecovered)
	}
}
