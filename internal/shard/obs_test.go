package shard

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/obs"
)

// TestTracedShardedBitwiseIdentical: tracing the sharded pipeline is purely
// observational — the traced grouped piloted build reproduces the untraced
// one exactly.
func TestTracedShardedBitwiseIdentical(t *testing.T) {
	in := bench.Intermingled(bench.Small(600, 21), 4, 77)
	opt := core.Options{IntraSkewBound: 0, Shards: 3, Pilot: true}
	plain, err := Build(in, opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Trace = obs.New("test")
	traced, err := Build(in, opt)
	if err != nil {
		t.Fatal(err)
	}
	if traced.Wirelength != plain.Wirelength {
		t.Fatalf("traced wirelength %v != untraced %v", traced.Wirelength, plain.Wirelength)
	}
	if traced.Stats != plain.Stats {
		t.Fatalf("traced stats differ:\n%+v\n%+v", traced.Stats, plain.Stats)
	}
	if traced.Trace == nil || plain.Trace != nil {
		t.Fatalf("Result.Trace wiring: traced=%v plain=%v", traced.Trace, plain.Trace)
	}
}

// TestTraceAccountsForWallTime is the tentpole's acceptance scenario: on a
// grouped piloted 10k build (parallel merge wave forced on), the trace's
// top-level phases must account for ≥ 95% of the run's wall time across
// partition/pilot/shards/stitch, report a merge-wave idle fraction, and the
// per-shard child traces must carry their builds' spans and metrics.
func TestTraceAccountsForWallTime(t *testing.T) {
	if testing.Short() {
		t.Skip("10k sink build")
	}
	in := bench.Intermingled(bench.Small(10000, 9), 4, 9009)
	tr := obs.New("acceptance")
	res, err := Build(in, core.Options{
		IntraSkewBound: 0,
		Shards:         4,
		Pilot:          true,
		MergeWorkers:   4, // force the wave on single-CPU CI hosts too
		Trace:          tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := eval.AnalyzeTraced(tr, res.Root, in, core.DefaultModel(), in.Source)
	if rep.Sinks != len(in.Sinks) {
		t.Fatalf("eval reached %d of %d sinks", rep.Sinks, len(in.Sinks))
	}
	tr.Close()

	s := tr.Summary()
	if s.WallMS <= 0 {
		t.Fatal("no wall time recorded")
	}
	if cov := s.CoveredMS / s.WallMS; cov < 0.95 {
		t.Fatalf("phases cover %.1f%% of wall time, want ≥ 95%% (%s)", 100*cov, tr.Report())
	}
	have := map[string]bool{}
	for _, p := range s.Phases {
		have[p.Name] = true
	}
	for _, want := range []string{"partition", "pilot", "shards", "stitch", "finalize", "eval"} {
		if !have[want] {
			t.Errorf("phase %q missing from summary: %+v", want, s.Phases)
		}
	}

	// Per-round merge-wave idle fraction: the wave ran inside the shard
	// builds' child traces; the summary aggregates over descendants.
	if s.MergeWave == nil {
		t.Fatal("merge-wave summary missing (MergeWorkers=4)")
	}
	if s.MergeWave.Rounds < 1 {
		t.Fatalf("no parallel rounds recorded: %+v", s.MergeWave)
	}
	if f := s.MergeWave.IdleFrac; f < 0 || f > 1 {
		t.Fatalf("idle fraction %v outside [0,1]", f)
	}

	// Child traces: pilot, one per shard, stitch — each shard child carrying
	// its build's metrics (per-shard attribution of the counter registry).
	children := map[string]*obs.Trace{}
	for _, c := range tr.Children() {
		children[c.Label()] = c
	}
	for _, want := range []string{"pilot", "shard0", "shard1", "shard2", "shard3", "stitch"} {
		if children[want] == nil {
			t.Fatalf("child trace %q missing (have %v)", want, tr.Children())
		}
	}
	var shardMerges int
	for i, si := range res.Shards {
		c := children["shard"+string(rune('0'+i))]
		v, ok := c.MetricValue("merges")
		if !ok || int(v) != si.Stats.Merges {
			t.Fatalf("shard %d merges metric = %v, %v; want %d", i, v, ok, si.Stats.Merges)
		}
		shardMerges += int(v)
	}
	if shardMerges == 0 {
		t.Fatal("no shard merges attributed")
	}
	if d := tr.Dropped(); d != 0 {
		t.Logf("note: parent trace dropped %d spans", d)
	}
}
