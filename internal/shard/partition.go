package shard

import (
	"sort"

	"repro/internal/ctree"
	"repro/internal/geom"
	"repro/internal/spatial"
)

// gapWindowFrac bounds how far (as a fraction of the subset size) a cut may
// drift from the exact count quantile while snapping to a placement gap:
// population balance is a hard requirement (shard build cost is roughly
// linearithmic in shard size), gap quality a preference.
const gapWindowFrac = 16

// Partition splits the instance's sink IDs into k spatially compact,
// population-balanced shards by recursive bisection in uv-space (see the
// package comment for the cut policy). k must be in [1, len(Sinks)]; every
// returned shard is non-empty, the shards are disjoint, and their union is
// the full sink set. The result is a pure function of (instance, k).
func Partition(in *ctree.Instance, k int) [][]int {
	ids := make([]int, len(in.Sinks))
	for i := range ids {
		ids[i] = i
	}
	out := make([][]int, 0, k)
	var rec func(ids []int, k int)
	rec = func(ids []int, k int) {
		if k == 1 {
			out = append(out, ids)
			return
		}
		k1 := (k + 1) / 2
		cut := bisect(in, ids, k1, k)
		rec(ids[:cut], k1)
		rec(ids[cut:], k-k1)
	}
	rec(ids, k)
	return out
}

// bisect orders ids along the longer uv axis of their bounding box and
// returns the cut index splitting them k1 : k−k1 by count, snapped to the
// widest placement gap within the quantile's neighborhood when that gap is
// at least the subset's DensityCell edge (a genuine inter-cluster void at
// the measured density, not sink-to-sink spacing). ids is sorted in place.
// Coordinates and boxes are precomputed in one pass so the sort comparator
// and the gap scan never re-derive uv transforms.
func bisect(in *ctree.Instance, ids []int, k1, k int) int {
	type keyed struct {
		c  float64
		id int
	}
	entries := make([]keyed, len(ids))
	p0 := geom.ToUV(in.Sinks[ids[0]].Loc)
	minU, maxU, minV, maxV := p0.U, p0.U, p0.V, p0.V
	for i, id := range ids {
		p := geom.ToUV(in.Sinks[id].Loc)
		minU, maxU = min(minU, p.U), max(maxU, p.U)
		minV, maxV = min(minV, p.V), max(maxV, p.V)
		entries[i] = keyed{c: p.U, id: id}
	}
	if maxU-minU < maxV-minV {
		for i, id := range ids {
			entries[i].c = geom.ToUV(in.Sinks[id].Loc).V
		}
	}
	sort.Slice(entries, func(a, b int) bool {
		if entries[a].c != entries[b].c {
			return entries[a].c < entries[b].c
		}
		return entries[a].id < entries[b].id
	})
	for i, e := range entries {
		ids[i] = e.id
	}

	// Count-proportional quantile, clamped so both halves can host their
	// shard counts (each shard needs ≥ 1 sink).
	cut := len(ids) * k1 / k
	cut = max(cut, k1)
	cut = min(cut, len(ids)-(k-k1))

	// Snap to the widest gap within ± len/gapWindowFrac of the quantile,
	// but only when it clears the density scale: DensityCell measures the
	// dense regions' spacing, so a qualifying gap separates clusters.
	w := len(ids) / gapWindowFrac
	if w > 0 {
		boxes := make([]geom.Rect, len(ids))
		for i, id := range ids {
			boxes[i] = geom.RectFromPoint(in.Sinks[id].Loc)
		}
		cell := spatial.DensityCell(boxes)
		lo, hi := max(cut-w, k1), min(cut+w, len(ids)-(k-k1))
		bestGap, bestAt := 0.0, cut
		for c := lo; c <= hi; c++ {
			gap := entries[c].c - entries[c-1].c
			closer := abs(c-cut) < abs(bestAt-cut)
			if gap > bestGap || (gap == bestGap && closer) {
				bestGap, bestAt = gap, c
			}
		}
		if bestGap >= cell {
			cut = bestAt
		}
	}
	return cut
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
