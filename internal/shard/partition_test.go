package shard

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/bench"
	"repro/internal/geom"
)

// TestPartitionCoverageBalanceDeterminism checks the partition contract on
// uniform and power-law placements: the shards are disjoint, cover every
// sink, are population-balanced within the gap-snapping window, and two
// calls agree exactly.
func TestPartitionCoverageBalanceDeterminism(t *testing.T) {
	for _, dist := range []string{"uniform", "powerlaw"} {
		var in = bench.Small(3000, 11)
		if dist == "powerlaw" {
			in = bench.PowerLaw(3000, bench.PowerLawClusters, bench.PowerLawAlpha, 11)
		}
		for _, k := range []int{1, 2, 3, 4, 8, 13} {
			label := fmt.Sprintf("%s/k=%d", dist, k)
			parts := Partition(in, k)
			if len(parts) != k {
				t.Fatalf("%s: %d shards", label, len(parts))
			}
			seen := make([]bool, len(in.Sinks))
			for i, p := range parts {
				if len(p) == 0 {
					t.Fatalf("%s: shard %d empty", label, i)
				}
				// Balance: every bisection step cuts within
				// ±len/gapWindowFrac of the count quantile, so a shard's
				// share drifts at most that fraction per level.
				ideal := float64(len(in.Sinks)) / float64(k)
				if f := float64(len(p)); f < ideal/2 || f > 2*ideal {
					t.Errorf("%s: shard %d has %d sinks, ideal %.0f", label, i, len(p), ideal)
				}
				for _, id := range p {
					if seen[id] {
						t.Fatalf("%s: sink %d in two shards", label, id)
					}
					seen[id] = true
				}
			}
			for id, ok := range seen {
				if !ok {
					t.Fatalf("%s: sink %d unassigned", label, id)
				}
			}
			if again := Partition(in, k); !reflect.DeepEqual(parts, again) {
				t.Errorf("%s: partition not deterministic", label)
			}
		}
	}
}

// TestPartitionSpatiallyCompact sanity-checks that bisection produces
// spatially separated shards on a trivially separable instance: two distant
// clusters split at k=2 must land in different shards.
func TestPartitionSpatiallyCompact(t *testing.T) {
	in := bench.Small(200, 3)
	for i := range in.Sinks {
		if i < 100 {
			in.Sinks[i].Loc = geom.Point{X: float64(i), Y: float64(i % 10)}
		} else {
			in.Sinks[i].Loc = geom.Point{X: 1e6 + float64(i), Y: float64(i % 10)}
		}
	}
	parts := Partition(in, 2)
	for _, p := range parts {
		left := in.Sinks[p[0]].Loc.X < 1e5
		for _, id := range p {
			if (in.Sinks[id].Loc.X < 1e5) != left {
				t.Fatalf("shard mixes the two clusters")
			}
		}
	}
}
