package shard

import (
	"context"
	"fmt"
	"sort"
	"strconv"

	"repro/internal/core"
	"repro/internal/ctree"
	"repro/internal/dispatch"
	"repro/internal/geom"
	"repro/internal/obs"
)

// Pilot sample geometry. The estimator is a median over pilotPatches
// independent patch routes, each of pilotPatchSinks sinks:
//
//   - Patches are *spatially compact at full density*. Offsets are
//     differences of subtree delays and Elmore delay grows with sink
//     spacing, so a sample spread over the die routes at a fraction of the
//     instance's density and commits offsets whose noise floor is inflated
//     by the density ratio (measured on intermingled uniform 50k: a spread
//     n/5 sample commits ~30 ps of offset noise where the full build's
//     natural offsets are under 1 ps, and prescribing that noise forces
//     real skew into every shard for 1.14× the unsharded wire; full-density
//     patches land at ~1 ps and ≤1.02×).
//   - Patches must be a few hundred sinks. Offsets commit where merges
//     first span groups, and in a tiny patch that happens at leaf scale,
//     where single merge imbalances (~20 ps on the 10k instances) dominate;
//     a few hundred sinks push the commits deep enough that the imbalances
//     wash out.
//   - One patch is an unreliable witness — any single region can commit an
//     outlier offset — so the pass routes patches around the shard medians
//     of a fixed pilotPatches-way partition (the same partitioner as the
//     build; an odd count makes the median an element) and takes the
//     per-group median across the estimates, which votes down outliers.
//     Using a fixed pilot partition rather than the build's makes the
//     contract a function of the instance alone: every shard count routes
//     against the same offsets.
//
// pilotGroupPatch is the coverage patch size added, per patch route, for
// every group the patch itself missed (clustered groupings concentrate
// groups spatially, so a compact patch can miss one entirely): enough sinks
// around the group's own centroid to route the group at its local density.
// Coverage guarantees each patch route spans every group, so its root
// commits a complete contract.
const (
	pilotPatches    = 5
	pilotPatchSinks = 256
	pilotGroupPatch = 32
)

// pilotPatchSample returns the deterministic sink-ID sample of one patch
// route: the q sinks of part nearest part's median (u, v), plus a coverage
// patch around the centroid of every group absent from that core patch. The
// result is sorted by sink ID and duplicate-free; q ≥ the instance size
// degenerates to the full ID set.
func pilotPatchSample(in *ctree.Instance, part []int, q int) []int {
	if q >= len(in.Sinks) {
		ids := make([]int, len(in.Sinks))
		for i := range ids {
			ids[i] = i
		}
		return ids
	}
	us := make([]float64, len(part))
	vs := make([]float64, len(part))
	for i, id := range part {
		p := geom.ToUV(in.Sinks[id].Loc)
		us[i], vs[i] = p.U, p.V
	}
	sort.Float64s(us)
	sort.Float64s(vs)
	ids := nearestPatch(in, part, geom.UV{U: us[len(us)/2], V: vs[len(vs)/2]}, q)

	seen := make([]bool, in.NumGroups)
	for _, id := range ids {
		seen[in.Sinks[id].Group] = true
	}
	byGroup := make([][]int, in.NumGroups)
	covered := true
	for _, s := range in.Sinks {
		if !seen[s.Group] {
			byGroup[s.Group] = append(byGroup[s.Group], s.ID)
			covered = false
		}
	}
	if !covered {
		for g := 0; g < in.NumGroups; g++ {
			if members := byGroup[g]; len(members) > 0 {
				c := centroidUV(in, members)
				ids = append(ids, nearestPatch(in, members, c, pilotGroupPatch)...)
			}
		}
	}
	sort.Ints(ids)
	return ids
}

// centroidUV returns the uv centroid of the given sinks.
func centroidUV(in *ctree.Instance, ids []int) geom.UV {
	var c geom.UV
	for _, id := range ids {
		p := geom.ToUV(in.Sinks[id].Loc)
		c.U += p.U
		c.V += p.V
	}
	c.U /= float64(len(ids))
	c.V /= float64(len(ids))
	return c
}

// nearestPatch returns the q candidate sink IDs nearest the uv anchor (ties
// toward the smaller ID): a spatially compact patch at the candidates' own
// placement density. Distances are precomputed once per candidate so the
// comparator never re-derives uv transforms (the retry path sorts whole
// shards). candidates is not mutated.
func nearestPatch(in *ctree.Instance, candidates []int, anchor geom.UV, q int) []int {
	if q > len(candidates) {
		q = len(candidates)
	}
	type keyed struct {
		d2 float64
		id int
	}
	entries := make([]keyed, len(candidates))
	for i, id := range candidates {
		p := geom.ToUV(in.Sinks[id].Loc)
		entries[i] = keyed{d2: (p.U-anchor.U)*(p.U-anchor.U) + (p.V-anchor.V)*(p.V-anchor.V), id: id}
	}
	sort.Slice(entries, func(a, b int) bool {
		if entries[a].d2 != entries[b].d2 {
			return entries[a].d2 < entries[b].d2
		}
		return entries[a].id < entries[b].id
	})
	ids := make([]int, q)
	for i := range ids {
		ids[i] = entries[i].id
	}
	return ids
}

// pilotOut is one patch route's product: the route's cost and the offset
// contract its registry committed (offsErr when it left a group unrelated —
// a valid outcome, not an execution failure: the pass votes without it or
// escalates the patch size).
type pilotOut struct {
	stats   core.Stats
	est     []float64
	offsErr error
}

// runPilot is the pilot offset pass: route pilotPatches deterministic patch
// samples with the unsharded engine (BuildSubtree + MergeRoots on a fresh
// registry each — the exact decomposition of core.Build), read each route's
// committed inter-group offsets back out of its registry, and return the
// per-group median across the estimates in the Options.GroupOffsets form
// for the shard builds and the stitch to enforce. The routed pilot trees
// are discarded; only the offset contract and the pass's cost (stats,
// sinks routed) survive. A patch route whose registry leaves some group
// unrelated contributes no estimate; if no patch yields a complete
// contract, the pass retries with 4× the patch size, ending at the full
// sink set — whose final root spans every group and therefore always
// commits one. opt must be the normalized sub-build options (Shards and
// Pilot cleared, no GroupOffsets).
//
// The patch routes of one escalation round execute through the dispatch
// coordinator (phase "pilot"): concurrently, with panic containment, retry
// and hedging, and every execution on a fresh registry — a patch route is a
// pure function of (instance, sample, options), so the pass's estimates are
// identical whichever attempt delivers them. Estimates are aggregated in
// patch-index order, keeping the median's inputs deterministic.
func runPilot(in *ctree.Instance, opt core.Options, dopt dispatch.Options) (offs []float64, stats core.Stats, sinks int, rep dispatch.Report, err error) {
	p := pilotPatches
	if p > len(in.Sinks) {
		p = len(in.Sinks)
	}
	parts := Partition(in, p)
	dopt.Phase = "pilot"
	dopt.Trace = opt.Trace
	for q := pilotPatchSinks; ; q *= 4 {
		// Samples are computed serially up front: they are cheap relative to
		// their routes, and the first sample that degenerates to the full
		// sink set bounds the dispatch — the parts after it would repeat the
		// identical full route bitwise, so they are never dispatched.
		samples := make([][]int, 0, len(parts))
		for _, part := range parts {
			ids := pilotPatchSample(in, part, q)
			samples = append(samples, ids)
			if len(ids) == len(in.Sinks) {
				break
			}
		}

		// One child trace per patch route (spans and metrics of the patch's
		// own build nest under it; the pilot trace aggregates over children
		// via MetricValue). Only a patch's first attempt records — the trace
		// contract is single-goroutine per node, and retries/hedges may race
		// the attempt they replace.
		patchTraces := make([]*obs.Trace, len(samples))
		if opt.Trace != nil {
			for pi := range patchTraces {
				patchTraces[pi] = opt.Trace.Child("patch" + strconv.Itoa(pi))
			}
		}
		local := dispatch.RunnerFunc(func(ctx context.Context, t dispatch.Task) (any, error) {
			po := opt
			po.Ctx = ctx
			po.Trace = nil
			if t.Attempt == 0 {
				po.Trace = patchTraces[t.Index]
			}
			reg, err := core.NewRegistry(in, po)
			if err != nil {
				return nil, err
			}
			var out pilotOut
			sub, err := core.BuildSubtree(in, samples[t.Index], po, reg)
			if err != nil {
				return nil, err
			}
			out.stats.AddRun(sub.Stats)
			// Commit the patch root (BuildSubtree leaves it deferred):
			// resolving it registers the offsets of every group pair the
			// patch relates, exactly as core.Build's final step would.
			top, err := core.MergeRoots(in, []*ctree.Node{sub.Root}, po, reg)
			if err != nil {
				return nil, err
			}
			out.stats.AddRun(top.Stats)
			out.est, out.offsErr = reg.Offsets()
			return out, nil
		})
		// With a worker pool attached, patch routes ship to routeworkers
		// (KindPatch work units over a fresh-registry snapshot) and degrade
		// back to the local runner when the fleet cannot take them.
		var runner dispatch.Runner = local
		if dopt.Remote != nil {
			rr, rerr := newRemotePilotRunner(dopt.Remote, in, opt, samples, local, dopt.Faults)
			if rerr != nil {
				return nil, stats, sinks, rep, rerr
			}
			runner = rr
		}
		outs, prep, err := dispatch.Run(opt.Ctx, len(samples), runner, dopt)
		rep.Add(prep)
		for _, pt := range patchTraces {
			pt.Close()
		}
		if err != nil {
			return nil, stats, sinks, rep, err
		}

		var ests [][]float64
		for pi, o := range outs {
			out := o.(pilotOut)
			sinks += len(samples[pi])
			stats.AddRun(out.stats)
			if out.offsErr != nil {
				if len(samples[pi]) == len(in.Sinks) {
					// The full instance could not relate every group; no
					// larger sample exists, so no contract can be committed.
					return nil, stats, sinks, rep, fmt.Errorf("shard: pilot could not commit a complete offset contract: %w", out.offsErr)
				}
				continue
			}
			if len(samples[pi]) == len(in.Sinks) {
				// A sample that degenerated to the full sink set routed the
				// exact contract — it outvotes every patch estimate (and the
				// remaining parts were never dispatched).
				ests = [][]float64{out.est}
				break
			}
			ests = append(ests, out.est)
		}
		if len(ests) > 0 {
			offs = make([]float64, in.NumGroups)
			vals := make([]float64, 0, len(ests))
			for g := 1; g < in.NumGroups; g++ {
				vals = vals[:0]
				for _, e := range ests {
					vals = append(vals, e[g])
				}
				sort.Float64s(vals)
				offs[g] = vals[(len(vals)-1)/2]
			}
			return offs, stats, sinks, rep, nil
		}
	}
}
