package shard

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/ctree"
	"repro/internal/eval"
)

// TestPilotSampleContract pins one patch route's sample contract: a compact
// core patch plus coverage of every group, sorted and duplicate-free, near
// the requested size, deterministic, and degenerating to the full ID set
// when the patch size reaches the instance. Clustered groupings exercise
// the coverage patches: a compact patch inside one of 6 spatially confined
// groups cannot reach the other five on its own.
func TestPilotSampleContract(t *testing.T) {
	for _, mk := range []struct {
		name string
		in   *ctree.Instance
	}{
		{"intermingled", bench.Intermingled(bench.PowerLaw(3000, bench.PowerLawClusters, bench.PowerLawAlpha, 11), 5, 77)},
		{"clustered", bench.Clustered(bench.Small(3000, 11), 6)},
	} {
		in := mk.in
		parts := Partition(in, pilotPatches)
		for p, part := range parts {
			ids := pilotPatchSample(in, part, pilotPatchSinks)
			if len(ids) < pilotPatchSinks || len(ids) > pilotPatchSinks+in.NumGroups*pilotGroupPatch {
				t.Errorf("%s/patch=%d: sample size %d outside [%d, %d]", mk.name, p, len(ids),
					pilotPatchSinks, pilotPatchSinks+in.NumGroups*pilotGroupPatch)
			}
			covered := make([]bool, in.NumGroups)
			for i, id := range ids {
				if i > 0 && ids[i-1] >= id {
					t.Fatalf("%s/patch=%d: sample not sorted/unique at %d: %d, %d", mk.name, p, i, ids[i-1], id)
				}
				covered[in.Sinks[id].Group] = true
			}
			for g, ok := range covered {
				if !ok {
					t.Errorf("%s/patch=%d: group %d not represented in the sample", mk.name, p, g)
				}
			}
			// Determinism: same inputs, same sample.
			again := pilotPatchSample(in, part, pilotPatchSinks)
			if len(again) != len(ids) {
				t.Fatalf("%s/patch=%d: sample size changed across calls: %d vs %d", mk.name, p, len(again), len(ids))
			}
			for i := range ids {
				if again[i] != ids[i] {
					t.Fatalf("%s/patch=%d: sample not deterministic at %d: %d vs %d", mk.name, p, i, again[i], ids[i])
				}
			}
		}
		all := pilotPatchSample(in, parts[0], len(in.Sinks))
		if len(all) != len(in.Sinks) {
			t.Errorf("%s: patch size = n returned %d ids, want all %d", mk.name, len(all), len(in.Sinks))
		}
	}
}

// groupedInstance builds the grouped seam-skew instances: an Intermingled
// grouping (the thesis's difficult case — every group spans every shard) over
// uniform and power-law placements.
func groupedInstance(dist string, n int, groups int) *ctree.Instance {
	var base *ctree.Instance
	if dist == "uniform" {
		base = bench.Small(n, 9)
	} else {
		base = bench.PowerLaw(n, bench.PowerLawClusters, bench.PowerLawAlpha, 9)
	}
	return bench.Intermingled(base, groups, 9000+int64(n))
}

// TestPilotSeamSkewImproves is the pilot pass's acceptance test: on grouped
// 10k (and 50k, unless -short) instances at 2/4/8 shards, prescribing the
// pilot's offset contract to every shard must not worsen — and in aggregate
// must strictly improve — the residual intra-group skew across shard seams,
// while wirelength stays within the sharded envelope of the unsharded build.
func TestPilotSeamSkewImproves(t *testing.T) {
	sizes := []int{10_000}
	if !testing.Short() {
		sizes = append(sizes, 50_000)
	}
	var unpilotedSum, pilotedSum float64
	for _, n := range sizes {
		shardCounts := []int{2, 4, 8}
		for _, dist := range []string{"uniform", "powerlaw"} {
			in := groupedInstance(dist, n, 4)
			ref, err := core.Build(in, core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			for _, k := range shardCounts {
				label := fmt.Sprintf("%s/n=%d/shards=%d", dist, n, k)
				seam := map[bool]float64{}
				for _, pilot := range []bool{false, true} {
					res, err := Build(in, core.Options{Shards: k, Pilot: pilot})
					if err != nil {
						t.Fatalf("%s/pilot=%v: %v", label, pilot, err)
					}
					if err := eval.CheckTree(res.Root, in); err != nil {
						t.Fatalf("%s/pilot=%v: CheckTree: %v", label, pilot, err)
					}
					rep := eval.Analyze(res.Root, in, core.DefaultModel(), in.Source)
					_, seam[pilot] = eval.SeamSkew(rep, in, res.Parts)
					if ratio := res.Wirelength / ref.Wirelength; ratio > wireEnvelope {
						t.Errorf("%s/pilot=%v: wirelength ratio %.4f exceeds envelope %v", label, pilot, ratio, wireEnvelope)
					}
					if pilot {
						if res.PilotSinks <= 0 || res.PilotOffsets == nil {
							t.Errorf("%s: pilot ran but reported %d sinks, offsets %v", label, res.PilotSinks, res.PilotOffsets)
						}
						if res.PilotStats.Merges <= 0 {
							t.Errorf("%s: pilot stats empty: %+v", label, res.PilotStats)
						}
					} else if res.PilotSinks != 0 || res.PilotOffsets != nil {
						t.Errorf("%s: unpiloted build reports pilot work (%d sinks)", label, res.PilotSinks)
					}
				}
				// Pointwise: the pilot must never degrade the seam residual
				// (tolerance covers float residue on already-zero seams).
				if tol := 1e-6 * (1 + seam[false]); seam[true] > seam[false]+tol {
					t.Errorf("%s: piloted seam skew %v ps exceeds unpiloted %v ps", label, seam[true], seam[false])
				}
				unpilotedSum += seam[false]
				pilotedSum += seam[true]
				t.Logf("%s: seam skew %v -> %v ps", label, seam[false], seam[true])
			}
		}
	}
	// Aggregate: the pass must actually buy something, not just tie.
	if pilotedSum >= unpilotedSum {
		t.Errorf("pilot did not improve aggregate seam skew: %v ps (piloted) vs %v ps (unpiloted)", pilotedSum, unpilotedSum)
	}
}

// TestPilotFullSampleDegenerates pins the tiny-instance path: when the
// patch size reaches the instance, the first sample degenerates to the full
// sink set, whose route commits the exact contract — the pass must use that
// single estimate and stop, not route the identical full sample once per
// patch (or let earlier partial patches outvote it).
func TestPilotFullSampleDegenerates(t *testing.T) {
	in := bench.Intermingled(bench.Small(120, 13), 3, 7)
	res, err := Build(in, core.Options{Shards: 2, Pilot: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.PilotSinks != len(in.Sinks) {
		t.Errorf("pilot routed %d sinks, want exactly one full route of %d", res.PilotSinks, len(in.Sinks))
	}
	if len(res.PilotOffsets) != in.NumGroups {
		t.Errorf("pilot offsets %v, want %d entries", res.PilotOffsets, in.NumGroups)
	}
}

// TestPilotDeterministicAcrossWorkers extends the Shards > 1 determinism
// guarantee to the piloted pipeline: the pilot sample, the pilot route, the
// prescribed offsets, and the aligned shard builds are all pure functions of
// (instance, options, k), so merge-worker counts cannot leak into the tree.
func TestPilotDeterministicAcrossWorkers(t *testing.T) {
	in := bench.Intermingled(bench.Small(3000, 17), 3, 55)
	opt := core.Options{Shards: 4, Pilot: true}
	var wantWire, wantHash uint64
	var wantOffs []float64
	for _, workers := range []int{1, 4} {
		opt.MergeWorkers = workers
		res, err := Build(in, opt)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		wire := math.Float64bits(res.Wirelength)
		hash := delayDigest(t, res.Root, in)
		if workers == 1 {
			wantWire, wantHash, wantOffs = wire, hash, res.PilotOffsets
			continue
		}
		if wire != wantWire || hash != wantHash {
			t.Errorf("workers=%d diverged: wire 0x%016x vs 0x%016x, digest 0x%016x vs 0x%016x",
				workers, wire, wantWire, hash, wantHash)
		}
		if len(res.PilotOffsets) != len(wantOffs) {
			t.Fatalf("workers=%d: %d pilot offsets vs %d", workers, len(res.PilotOffsets), len(wantOffs))
		}
		for g, o := range res.PilotOffsets {
			if math.Float64bits(o) != math.Float64bits(wantOffs[g]) {
				t.Errorf("workers=%d: pilot offset[%d] = %v vs %v", workers, g, o, wantOffs[g])
			}
		}
	}
}

// TestShardPairerThresholdKeepsGrid is the regression test for the per-shard
// PairerAuto fallback: before the threshold was scaled by the shard count, a
// 10k-sink run at 8 shards put 1250 sinks in each shard — below the global
// GridPairerThreshold — so every shard silently fell back to the O(n²) scan
// oracle. With the scaled threshold each shard selects the grid; the scan
// oracle's very first Multi round alone evaluates n(n−1)/2 candidate pairs,
// so a per-shard scan count below an eighth of that is only reachable by the
// grid engine.
func TestShardPairerThresholdKeepsGrid(t *testing.T) {
	in := bench.Small(10_000, 9)
	res, err := Build(in, core.Options{SingleGroup: true, Shards: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i, si := range res.Shards {
		n := int64(si.Sinks)
		oracleRound := n * (n - 1) / 2
		if si.Stats.PairScans >= oracleRound/8 {
			t.Errorf("shard %d (%d sinks): %d pair scans — at oracle scale (first round alone is %d); grid not selected",
				i, si.Sinks, si.Stats.PairScans, oracleRound)
		}
	}
	// The explicit override reaches the unsharded path too, in both
	// directions: a forced-low threshold turns the grid on below the
	// default, a forced-high one keeps the oracle above it, and the routed
	// trees agree bitwise (the engines are differentially pinned).
	small := bench.Small(600, 21)
	gridded, err := core.ZST(small, core.Options{PairerThreshold: 500})
	if err != nil {
		t.Fatal(err)
	}
	scanned, err := core.ZST(small, core.Options{PairerThreshold: 601})
	if err != nil {
		t.Fatal(err)
	}
	if gridded.Wirelength != scanned.Wirelength {
		t.Errorf("threshold override changed the tree: wire %v (grid) vs %v (scan)", gridded.Wirelength, scanned.Wirelength)
	}
	if gridded.Stats.PairScans >= scanned.Stats.PairScans {
		t.Errorf("PairerThreshold=500 on 600 sinks did not engage the grid: %d scans vs oracle %d",
			gridded.Stats.PairScans, scanned.Stats.PairScans)
	}
}

// TestShardedGroupedWireAccounting pins the shard/stitch wire attribution on
// grouped multi-shard runs, where the stitch both resolves deferred shard
// roots and sneaks wire inside shard subtrees: per-shard wire is measured
// after the stitch, StitchWire is the stitch-created nodes' wire alone, the
// split sums exactly to the total, and StitchWire can never be negative.
func TestShardedGroupedWireAccounting(t *testing.T) {
	in := bench.Intermingled(bench.Small(4000, 5), 4, 41)
	for _, pilot := range []bool{false, true} {
		label := fmt.Sprintf("pilot=%v", pilot)
		res, err := Build(in, core.Options{Shards: 4, Pilot: pilot})
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		if res.StitchWire < 0 {
			t.Errorf("%s: negative stitch wire %v", label, res.StitchWire)
		}
		var shardWire float64
		for _, si := range res.Shards {
			if si.Wirelength < 0 {
				t.Errorf("%s: negative shard wire %v", label, si.Wirelength)
			}
			shardWire += si.Wirelength
		}
		if diff := math.Abs(res.Wirelength - res.SourceWire - shardWire - res.StitchWire); diff > 1e-6*res.Wirelength {
			t.Errorf("%s: wire accounting off by %v (total %v = shards %v + stitch %v + source %v)",
				label, diff, res.Wirelength, shardWire, res.StitchWire, res.SourceWire)
		}
	}
}
