package shard

import (
	"repro/internal/core"
	"repro/internal/ctree"
	"repro/internal/dispatch"
	"repro/internal/wire"
)

// Remote shard dispatch. When dispatch.Options.Remote carries a worker
// pool, BuildDispatch and runPilot wrap their in-process runners in a
// dispatch.RemoteRunner: each task is encoded as an internal/wire work unit
// (sink subset + frozen registry snapshot + the remote-relevant option
// subset), shipped to a routeworker over HTTP, and its result decoded back
// into exactly the value the local runner would have produced. Determinism
// makes the transport invisible — a sub-build is a pure function of its
// inputs, so a remote result is bitwise the local one — and the in-process
// runner stays attached as the degradation path: with no healthy worker the
// build completes locally and Result.Dispatch reports the fallbacks.
//
// Observation never travels: work units are encoded with Trace, Ctx and
// SneakProbe stripped, so worker builds run untraced and the per-shard child
// traces record only locally executed (fallback) attempts.

// newRemoteShardRunner builds the "shard" phase transport: KindBuild work
// units over the frozen base registry, decoded into the same shardOut the
// local runner returns.
func newRemoteShardRunner(pool *dispatch.WorkerPool, in *ctree.Instance, shardOpt core.Options,
	base *core.Registry, parts [][]int, local dispatch.Runner, faults *dispatch.FaultPlan) (*dispatch.RemoteRunner, error) {
	encOpt := stripLocalOnly(shardOpt)
	snap := base.Snapshot()
	return pool.Runner(dispatch.RemoteConfig{
		Phase: "shard",
		Encode: func(t dispatch.Task) ([]byte, error) {
			u := &wire.WorkUnit{
				Kind:     wire.KindBuild,
				Instance: in,
				SinkIDs:  parts[t.Index],
				Opt:      encOpt,
				Registry: snap,
			}
			return u.Encode()
		},
		Decode: func(data []byte) (any, error) {
			br, err := wire.DecodeResult(data, in)
			if err != nil {
				return nil, err
			}
			reg, err := core.NewRegistryFromSnapshot(br.Registry)
			if err != nil {
				return nil, err
			}
			return shardOut{sub: &core.Subtree{Root: br.Root, Stats: br.Stats}, reg: reg}, nil
		},
		Local:  local,
		Faults: faults,
	})
}

// newRemotePilotRunner builds the "pilot" phase transport for one
// escalation round: KindPatch work units over a fresh registry snapshot
// (the pilot's contract — every patch route commits offsets from scratch),
// decoded into the same pilotOut the local runner returns, with the offset
// contract read out of the returned registry state exactly as the local
// path reads its own.
func newRemotePilotRunner(pool *dispatch.WorkerPool, in *ctree.Instance, opt core.Options,
	samples [][]int, local dispatch.Runner, faults *dispatch.FaultPlan) (*dispatch.RemoteRunner, error) {
	encOpt := stripLocalOnly(opt)
	fresh, err := core.NewRegistry(in, encOpt)
	if err != nil {
		return nil, err
	}
	snap := fresh.Snapshot()
	return pool.Runner(dispatch.RemoteConfig{
		Phase: "pilot",
		Encode: func(t dispatch.Task) ([]byte, error) {
			u := &wire.WorkUnit{
				Kind:     wire.KindPatch,
				Instance: in,
				SinkIDs:  samples[t.Index],
				Opt:      encOpt,
				Registry: snap,
			}
			return u.Encode()
		},
		Decode: func(data []byte) (any, error) {
			br, err := wire.DecodeResult(data, in)
			if err != nil {
				return nil, err
			}
			reg, err := core.NewRegistryFromSnapshot(br.Registry)
			if err != nil {
				return nil, err
			}
			var out pilotOut
			out.stats = br.Stats
			out.est, out.offsErr = reg.Offsets()
			return out, nil
		},
		Local:  local,
		Faults: faults,
	})
}

// stripLocalOnly clears the option fields that must not travel in a work
// unit: observation and cancellation stay with the coordinator.
func stripLocalOnly(opt core.Options) core.Options {
	opt.Trace = nil
	opt.Ctx = nil
	opt.SneakProbe = nil
	return opt
}
