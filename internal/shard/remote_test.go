package shard

import (
	"context"
	"math"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/ctree"
	"repro/internal/dispatch"
	"repro/internal/obs"
	"repro/internal/wire"
)

// startWorkers boots n in-process routeworker endpoints and returns their
// listen addresses; they shut down with the test.
func startWorkers(t *testing.T, n int, o wire.ServerOptions) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		srv, err := wire.NewWorkerServer("127.0.0.1:0", o)
		if err != nil {
			t.Fatal(err)
		}
		go srv.Serve()
		t.Cleanup(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			srv.Shutdown(ctx)
		})
		addrs[i] = srv.Addr()
	}
	return addrs
}

func remotePool(t *testing.T, o dispatch.PoolOptions, addrs ...string) *dispatch.WorkerPool {
	t.Helper()
	p, err := dispatch.NewWorkerPool(addrs, o)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	return p
}

func assertIdentical(t *testing.T, label string, got, ref *Result, in *ctree.Instance) {
	t.Helper()
	wb, rb := math.Float64bits(got.Wirelength), math.Float64bits(ref.Wirelength)
	if wb != rb {
		t.Errorf("%s: wirelength bits 0x%016x (%v), want 0x%016x (%v)",
			label, wb, got.Wirelength, rb, ref.Wirelength)
	}
	if gh, rh := delayDigest(t, got.Root, in), delayDigest(t, ref.Root, in); gh != rh {
		t.Errorf("%s: delay digest 0x%016x, want 0x%016x", label, gh, rh)
	}
	if got.Stats != ref.Stats {
		t.Errorf("%s: stats %+v, want %+v", label, got.Stats, ref.Stats)
	}
}

// TestRemoteShardedBitwiseIdentical is the tentpole acceptance test: a
// grouped piloted 10k build whose shard and pilot tasks travel over HTTP to
// localhost workers must be bitwise-identical to the all-in-process build.
// Location transparency is only real if the wire adds nothing and loses
// nothing.
func TestRemoteShardedBitwiseIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	in := groupedInstance("uniform", 10_000, 4)
	addrs := startWorkers(t, 2, wire.ServerOptions{})
	for _, k := range []int{2, 4} {
		opt := core.Options{Shards: k, Pilot: true, Pairer: core.PairerGrid}
		ref, err := Build(in, opt)
		if err != nil {
			t.Fatalf("shards=%d: local: %v", k, err)
		}
		pool := remotePool(t, dispatch.PoolOptions{}, addrs...)
		got, err := BuildDispatch(in, opt, dispatch.Options{Remote: pool})
		if err != nil {
			t.Fatalf("shards=%d: remote: %v", k, err)
		}
		assertIdentical(t, "remote", got, ref, in)
		d := got.Dispatch
		if d.RemoteFallbacks != 0 {
			t.Errorf("shards=%d: %d fallbacks with a healthy fleet", k, d.RemoteFallbacks)
		}
		t.Logf("shards=%d: %+v", k, d)
	}
}

// TestRemoteWorkerKilledMidBuildBitwise kills one of two workers while its
// build is in flight (connections torn down mid-request, the in-process
// equivalent of SIGKILL). The dropped request must fail over to the
// surviving worker inside the same execution and the result must not move.
func TestRemoteWorkerKilledMidBuildBitwise(t *testing.T) {
	in := groupedInstance("uniform", 2_000, 4)
	opt := core.Options{Shards: 2, Pilot: true, Pairer: core.PairerGrid}
	ref, err := Build(in, opt)
	if err != nil {
		t.Fatal(err)
	}
	// The victim stalls each build long enough for the kill to land mid-flight.
	victim := httptest.NewServer(wire.NewHandler(wire.ServerOptions{Stall: 200 * time.Millisecond}))
	survivor := httptest.NewServer(wire.NewHandler(wire.ServerOptions{}))
	defer survivor.Close()
	pool := remotePool(t, dispatch.PoolOptions{}, victim.URL, survivor.URL)
	done := make(chan struct{})
	go func() {
		defer close(done)
		time.Sleep(80 * time.Millisecond)
		victim.CloseClientConnections()
		victim.Close()
	}()
	got, err := BuildDispatch(in, opt, dispatch.Options{
		Remote:      pool,
		BackoffBase: time.Microsecond,
		BackoffMax:  time.Millisecond,
	})
	<-done
	if err != nil {
		t.Fatalf("build did not survive the worker kill: %v", err)
	}
	assertIdentical(t, "after kill", got, ref, in)
	if got.Dispatch.RemoteFallbacks != 0 {
		t.Errorf("fell back to in-process %d times despite a surviving worker", got.Dispatch.RemoteFallbacks)
	}
	t.Logf("dispatch: %+v", got.Dispatch)
}

// TestRemoteFleetDownFallsBackBitwise points the pool at a dead port: every
// task must degrade transparently to the in-process runner, the result must
// be bitwise-identical, and the degradation must be observable — report
// counters and trace metrics both.
func TestRemoteFleetDownFallsBackBitwise(t *testing.T) {
	in := groupedInstance("uniform", 2_000, 4)
	opt := core.Options{Shards: 2, Pilot: true, Pairer: core.PairerGrid}
	ref, err := Build(in, opt)
	if err != nil {
		t.Fatal(err)
	}
	dead := httptest.NewServer(wire.NewHandler(wire.ServerOptions{}))
	deadURL := dead.URL
	dead.Close() // the port now refuses connections
	pool := remotePool(t, dispatch.PoolOptions{BlacklistAfter: 1}, deadURL)
	tr := obs.New("fleet-down")
	optTr := opt
	optTr.Trace = tr
	got, err := BuildDispatch(in, optTr, dispatch.Options{
		Remote:      pool,
		BackoffBase: time.Microsecond,
		BackoffMax:  time.Millisecond,
	})
	tr.Close()
	if err != nil {
		t.Fatalf("build did not degrade gracefully: %v", err)
	}
	assertIdentical(t, "fleet down", got, ref, in)
	d := got.Dispatch
	if d.RemoteFallbacks == 0 {
		t.Error("no remote fallbacks reported with the whole fleet down")
	}
	if d.WorkersLost == 0 {
		t.Error("no workers reported lost after blacklisting the only worker")
	}
	if v, ok := tr.MetricValue(obs.MetricDispatchRemoteFallbacks); !ok || int(v) != d.RemoteFallbacks {
		t.Errorf("trace %s = %v (ok=%v), report says %d", obs.MetricDispatchRemoteFallbacks, v, ok, d.RemoteFallbacks)
	}
	if v, ok := tr.MetricValue(obs.MetricDispatchWorkersLost); !ok || v < 1 {
		t.Errorf("trace %s = %v (ok=%v), want ≥ 1", obs.MetricDispatchWorkersLost, v, ok)
	}
	t.Logf("dispatch: %+v", d)
}

// TestRemoteNetFaultsBitwise injects the network fault family — dropped
// requests and corrupted responses — through the chaos plan and checks the
// coordinator's retry machinery absorbs them without moving the output.
func TestRemoteNetFaultsBitwise(t *testing.T) {
	in := groupedInstance("uniform", 2_000, 4)
	opt := core.Options{Shards: 2, Pairer: core.PairerGrid}
	ref, err := Build(in, opt)
	if err != nil {
		t.Fatal(err)
	}
	addrs := startWorkers(t, 2, wire.ServerOptions{})
	plan := (&dispatch.FaultPlan{}).
		DropAt("shard", 0, 0).
		CorruptAt("shard", 1, 0)
	pool := remotePool(t, dispatch.PoolOptions{}, addrs...)
	dopt := fastFaultOpts(plan)
	dopt.Remote = pool
	got, err := BuildDispatch(in, opt, dopt)
	if err != nil {
		t.Fatalf("build under net faults: %v", err)
	}
	assertIdentical(t, "net faults", got, ref, in)
	d := got.Dispatch
	if d.FaultsInjected < 2 {
		t.Errorf("FaultsInjected = %d, want ≥ 2", d.FaultsInjected)
	}
	if d.Retries < 2 {
		t.Errorf("Retries = %d, want ≥ 2 (each net fault costs one attempt)", d.Retries)
	}
	if d.RemoteFallbacks != 0 {
		t.Errorf("net faults caused %d in-process fallbacks; they must be retried remotely", d.RemoteFallbacks)
	}
	t.Logf("dispatch: %+v", d)
}

// TestRemoteNetChaosSeeds layers seeded network faults over seeded local
// faults — both families at once, as `astdme -chaos -workers` does — on a
// small grouped piloted build across several seeds.
func TestRemoteNetChaosSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	in := groupedInstance("uniform", 800, 4)
	opt := core.Options{Shards: 2, Pilot: true, Pairer: core.PairerGrid}
	ref, err := Build(in, opt)
	if err != nil {
		t.Fatal(err)
	}
	addrs := startWorkers(t, 2, wire.ServerOptions{})
	n := seededPlanTasks(2)
	for seed := int64(1); seed <= 3; seed++ {
		plan := dispatch.SeededPlan(seed, n, time.Millisecond, "pilot", "shard").
			Merge(dispatch.SeededNetPlan(seed, n, "pilot", "shard"))
		pool := remotePool(t, dispatch.PoolOptions{}, addrs...)
		dopt := fastFaultOpts(plan)
		dopt.Remote = pool
		got, err := BuildDispatch(in, opt, dopt)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		assertIdentical(t, "chaos", got, ref, in)
		if got.Dispatch.FaultsInjected == 0 {
			t.Errorf("seed %d: merged chaos plan (%d coords) injected nothing", seed, plan.Len())
		}
	}
}
