package shard

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/ctree"
	"repro/internal/geom"
)

// ShardInfo describes one routed shard of a sharded run.
type ShardInfo struct {
	// Sinks is the shard's sink count.
	Sinks int
	// Wirelength is the committed wire of the shard's subtree (measured
	// after the stitch, so a shard root resolved jointly at stitch time is
	// included).
	Wirelength float64
	// Stats are the shard build's run stats (scans, rebuilds, merges, …).
	Stats core.Stats
}

// Result is a completed sharded routing. The embedded core.Result carries
// the stitched tree and the aggregate stats of every shard plus the stitch.
type Result struct {
	core.Result
	// Shards describes each routed shard in partition order; nil when
	// sharding was off (Options.Shards == 0) and the build was delegated to
	// core.Build unchanged.
	Shards []ShardInfo
	// StitchStats are the top-level stitch's own run stats (also included
	// in the aggregate).
	StitchStats core.Stats
	// StitchWire is the wire committed by the top-level stitch merges: the
	// total tree wire minus the shard subtrees' wire.
	StitchWire float64
}

// Build routes the instance according to opt.Shards: 0 delegates to the
// unsharded core.Build; k ≥ 1 partitions the instance into k shards, routes
// them concurrently against private clones of one frozen offset registry,
// and stitches the shard roots skew-aware with core.MergeRoots. Shards = 1
// is bitwise-identical to core.Build; Shards > 1 is deterministic for fixed
// (instance, options) regardless of scheduling (see the package comment).
func Build(in *ctree.Instance, opt core.Options) (*Result, error) {
	k := opt.Shards
	if k <= 0 {
		res, err := core.Build(in, opt)
		if err != nil {
			return nil, err
		}
		return &Result{Result: *res}, nil
	}
	if err := in.Validate(); err != nil {
		return nil, err
	}
	if k > len(in.Sinks) {
		return nil, fmt.Errorf("shard: %d shards for %d sinks", k, len(in.Sinks))
	}
	if opt.Order.Pairer != nil {
		return nil, fmt.Errorf("shard: Order.Pairer cannot be shared across concurrent shard builds; leave it nil (each build constructs its own engine)")
	}

	// The sub-builds and the stitch route unsharded.
	subOpt := opt
	subOpt.Shards = 0
	base, err := core.NewRegistry(in, subOpt)
	if err != nil {
		return nil, err
	}

	parts := Partition(in, k)
	subs := make([]*core.Subtree, k)
	regs := make([]*core.Registry, k)
	errs := make([]error, k)
	var wg sync.WaitGroup
	for i := range parts {
		regs[i] = base.Clone() // private view of the frozen base
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			subs[i], errs[i] = core.BuildSubtree(in, parts[i], subOpt, regs[i])
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	roots := make([]*ctree.Node, k)
	for i, s := range subs {
		roots[i] = s.Root
	}
	// The stitch routes against the frozen base: offsets committed inside a
	// shard are already baked into its root's delay intervals, and the
	// shards' private registries may disagree — the stitch windows are what
	// reconcile them. With a single shard there is nothing to reconcile, so
	// the stitch adopts the shard's own registry, making the whole pipeline
	// (stats included) exactly the unsharded sequence.
	topReg := base
	if k == 1 {
		topReg = regs[0]
	}
	top, err := core.MergeRoots(in, roots, subOpt, topReg)
	if err != nil {
		return nil, err
	}

	res := &Result{
		Result: core.Result{
			Instance: in,
			Root:     top.Root,
			Options:  opt,
		},
		Shards:      make([]ShardInfo, k),
		StitchStats: top.Stats,
	}
	var agg core.Stats
	var shardWire float64
	for i, s := range subs {
		w := roots[i].Wirelength()
		res.Shards[i] = ShardInfo{Sinks: len(parts[i]), Wirelength: w, Stats: s.Stats}
		shardWire += w
		agg.AddRun(s.Stats)
	}
	agg.AddRun(top.Stats)
	agg.GroupUnions += base.PreUnions()
	res.Stats = agg

	if k > 1 {
		// Internal node IDs were assigned per shard (and restart in the
		// stitch); renumber them densely above the sink IDs so IDs are
		// unique within the run, as core.Build guarantees. Shards = 1 takes
		// the unsharded numbering as-is, preserving bitwise identity.
		next := len(in.Sinks)
		top.Root.Visit(func(n *ctree.Node) {
			if !n.IsLeaf() {
				n.ID = next
				next++
			}
		})
	}

	treeWire := top.Root.Wirelength()
	res.SourceWire = geom.DistRP(top.Root.Region, geom.ToUV(in.Source))
	res.Wirelength = treeWire + res.SourceWire
	res.StitchWire = treeWire - shardWire
	res.Root.Embed(geom.ToUV(in.Source))
	return res, nil
}
