package shard

import (
	"context"
	"fmt"
	"runtime/pprof"
	"strconv"
	"sync"

	"repro/internal/core"
	"repro/internal/ctree"
	"repro/internal/geom"
	"repro/internal/obs"
)

// ShardInfo describes one routed shard of a sharded run.
type ShardInfo struct {
	// Sinks is the shard's sink count.
	Sinks int
	// Wirelength is the committed wire of the shard's subtree, measured
	// after the stitch: a shard root the stitch resolved jointly (a
	// BuildSubtree root is left deferred for exactly that) commits its edges
	// during the stitch but they are the shard's wire, and sneak elongations
	// the stitch applies to edges inside the shard's subtree are included
	// too. Result.StitchWire is then the wire of the stitch-created nodes
	// alone, so Σ ShardInfo.Wirelength + StitchWire equals the tree wire
	// exactly and StitchWire can never be negative (the accounting test in
	// this package pins both on grouped multi-shard runs).
	Wirelength float64
	// Stats are the shard build's run stats (scans, rebuilds, merges, …).
	Stats core.Stats
}

// Result is a completed sharded routing. The embedded core.Result carries
// the stitched tree and the aggregate stats of every shard plus the stitch.
type Result struct {
	core.Result
	// Shards describes each routed shard in partition order; nil when
	// sharding was off (Options.Shards == 0) and the build was delegated to
	// core.Build unchanged.
	Shards []ShardInfo
	// StitchStats are the top-level stitch's own run stats (also included
	// in the aggregate).
	StitchStats core.Stats
	// StitchWire is the wire committed by the top-level stitch merges: the
	// total tree wire minus the shard subtrees' wire (never negative; see
	// ShardInfo.Wirelength for the attribution rules).
	StitchWire float64
	// Parts is the spatial partition backing the shard records: Parts[i]
	// lists shard i's sink IDs in partition order (shard.Partition output).
	// Nil when sharding was off. Consumers use it to attribute per-sink
	// measurements to shards — e.g. eval.SeamSkew's residual intra-group
	// skew across shard seams.
	Parts [][]int
	// PilotOffsets are the inter-group offsets the pilot offset pass
	// prescribed to every shard and the stitch (the Options.GroupOffsets
	// form: entry g is group g's delay minus group 0's, in ps). Nil when
	// the pilot was off or skipped (single-group instance).
	PilotOffsets []float64
	// PilotSinks is the number of sinks the pilot pass routed (0 = no
	// pilot); PilotStats are that route's run stats. Both are included in
	// the aggregate Result.Stats — the pilot is part of the run's cost —
	// and broken out here so its share is observable.
	PilotSinks int
	PilotStats core.Stats
	// Trace is the run's trace node (Options.Trace echoed back; nil when
	// untraced): top-level spans for the partition/pilot/shards/stitch/
	// finalize phases, with the pilot, each shard build, and the stitch
	// recording into child traces ("pilot", "shard0"…, "stitch").
	Trace *obs.Trace
}

// Build routes the instance according to opt.Shards: 0 delegates to the
// unsharded core.Build; k ≥ 1 partitions the instance into k shards, routes
// them concurrently against private clones of one frozen offset registry,
// and stitches the shard roots skew-aware with core.MergeRoots. Shards = 1
// is bitwise-identical to core.Build; Shards > 1 is deterministic for fixed
// (instance, options) regardless of scheduling (see the package comment).
//
// opt.Pilot additionally runs the pilot offset pass before the concurrent
// builds: deterministic full-density sink patches (cut by the same
// partitioner, independent of k) are routed unsharded, and the inter-group
// offsets they commit are prescribed to every shard and to the stitch via
// GroupOffsets, so the shards agree on one global offset contract instead
// of committing k contradictory ones (the package comment has the design).
// The pass is skipped on single-group instances, where no inter-group
// offset exists to prescribe.
func Build(in *ctree.Instance, opt core.Options) (*Result, error) {
	k := opt.Shards
	if k <= 0 {
		res, err := core.Build(in, opt) // rejects a stray opt.Pilot itself
		if err != nil {
			return nil, err
		}
		return &Result{Result: *res, Trace: opt.Trace}, nil
	}
	tr := opt.Trace
	if err := in.Validate(); err != nil {
		return nil, err
	}
	if k > len(in.Sinks) {
		return nil, fmt.Errorf("shard: %d shards for %d sinks", k, len(in.Sinks))
	}
	if opt.Order.Pairer != nil {
		return nil, fmt.Errorf("shard: Order.Pairer cannot be shared across concurrent shard builds; leave it nil (each build constructs its own engine)")
	}

	// The sub-builds and the stitch route unsharded; the pilot pass (which
	// runs before GroupOffsets are prescribed below) validates opt.Pilot's
	// flag compatibility through core's option normalization.
	subOpt := opt
	subOpt.Shards = 0
	subOpt.Pilot = false
	// Pipeline components record into their own child traces below; the
	// parent trace holds the phase spans and stays on this goroutine.
	subOpt.Trace = nil
	if _, err := core.NewRegistry(in, opt); err != nil {
		return nil, err // surface Pilot/GroupOffsets/… option conflicts early
	}

	partRgn := tr.Begin("partition")
	parts := Partition(in, k)
	partRgn.End()

	var pilotOffs []float64
	var pilotStats core.Stats
	pilotSinks := 0
	if opt.Pilot && in.NumGroups > 1 {
		pilotRgn := tr.Begin("pilot")
		pilotOpt := subOpt
		if tr != nil {
			pilotOpt.Trace = tr.Child("pilot")
		}
		var err error
		pilotOffs, pilotStats, pilotSinks, err = runPilot(in, pilotOpt)
		pilotOpt.Trace.Close()
		if err != nil {
			return nil, err
		}
		pilotRgn.Attr("sinks", float64(pilotSinks)).End()
		// From here on the offsets are a prescribed contract: the base
		// registry pre-registers them, so every shard's leash and the
		// stitch's enforce the same inter-group alignment.
		subOpt.GroupOffsets = pilotOffs
	}

	base, err := core.NewRegistry(in, subOpt)
	if err != nil {
		return nil, err
	}

	// Per-shard builds see the grid-pairer threshold scaled by the shard
	// count: PairerAuto's grid-vs-oracle decision is about total instance
	// scale (a shard holds ~1/k of the instance), and comparing each
	// shard's slice against the global constant silently dropped mid-size
	// sharded runs back onto the O(n²) scan oracle inside every shard.
	// k = 1 leaves the threshold untouched, preserving bitwise identity
	// with the unsharded build.
	shardOpt := subOpt
	thr := shardOpt.PairerThreshold
	if thr <= 0 {
		thr = core.GridPairerThreshold
	}
	shardOpt.PairerThreshold = (thr + k - 1) / k
	if k > 1 {
		// A Probe is single-goroutine; concurrent shard builds would race
		// on it. The serial components (pilot, stitch) still record; runs
		// wanting complete sneak capture use Shards ≤ 1.
		shardOpt.SneakProbe = nil
	}

	shardsRgn := tr.Begin("shards").Attr("count", float64(k))
	subs := make([]*core.Subtree, k)
	regs := make([]*core.Registry, k)
	errs := make([]error, k)
	var wg sync.WaitGroup
	for i := range parts {
		regs[i] = base.Clone() // private view of the frozen base
		so := shardOpt
		if tr != nil {
			so.Trace = tr.Child("shard" + strconv.Itoa(i))
		}
		wg.Add(1)
		go func(i int, so core.Options) {
			defer wg.Done()
			// Label the goroutine so -cpuprofile samples attribute to shards.
			pprof.Do(context.Background(), pprof.Labels("shard", strconv.Itoa(i)), func(context.Context) {
				subs[i], errs[i] = core.BuildSubtree(in, parts[i], so, regs[i])
			})
			so.Trace.Close()
		}(i, so)
	}
	wg.Wait()
	shardsRgn.End()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	roots := make([]*ctree.Node, k)
	for i, s := range subs {
		roots[i] = s.Root
	}
	// The stitch routes against the frozen base: offsets committed inside a
	// shard are already baked into its root's delay intervals, and the
	// shards' private registries may disagree — the stitch windows are what
	// reconcile them. With a single shard there is nothing to reconcile, so
	// the stitch adopts the shard's own registry, making the whole pipeline
	// (stats included) exactly the unsharded sequence.
	topReg := base
	if k == 1 {
		topReg = regs[0]
	}
	stitchRgn := tr.Begin("stitch")
	stitchOpt := subOpt
	if tr != nil {
		stitchOpt.Trace = tr.Child("stitch")
	}
	top, err := core.MergeRoots(in, roots, stitchOpt, topReg)
	stitchOpt.Trace.Close()
	stitchRgn.End()
	if err != nil {
		return nil, err
	}

	finRgn := tr.Begin("finalize")
	res := &Result{
		Result: core.Result{
			Instance: in,
			Root:     top.Root,
			Options:  opt,
		},
		Shards:       make([]ShardInfo, k),
		StitchStats:  top.Stats,
		Parts:        parts,
		PilotOffsets: pilotOffs,
		PilotSinks:   pilotSinks,
		PilotStats:   pilotStats,
		Trace:        tr,
	}
	var agg core.Stats
	agg.AddRun(pilotStats) // zero when the pilot was off
	var shardWire float64
	for i, s := range subs {
		w := roots[i].Wirelength()
		res.Shards[i] = ShardInfo{Sinks: len(parts[i]), Wirelength: w, Stats: s.Stats}
		shardWire += w
		agg.AddRun(s.Stats)
	}
	agg.AddRun(top.Stats)
	agg.GroupUnions += base.PreUnions()
	res.Stats = agg

	if k > 1 {
		// Internal node IDs were assigned per shard (and restart in the
		// stitch); renumber them densely above the sink IDs so IDs are
		// unique within the run, as core.Build guarantees. Shards = 1 takes
		// the unsharded numbering as-is, preserving bitwise identity.
		next := len(in.Sinks)
		top.Root.Visit(func(n *ctree.Node) {
			if !n.IsLeaf() {
				n.ID = next
				next++
			}
		})
	}

	treeWire := top.Root.Wirelength()
	res.SourceWire = geom.DistRP(top.Root.Region, geom.ToUV(in.Source))
	res.Wirelength = treeWire + res.SourceWire
	res.StitchWire = treeWire - shardWire
	res.Root.Embed(geom.ToUV(in.Source))
	finRgn.End()
	return res, nil
}
