package shard

import (
	"context"
	"fmt"
	"runtime/pprof"
	"strconv"

	"repro/internal/core"
	"repro/internal/ctree"
	"repro/internal/dispatch"
	"repro/internal/geom"
	"repro/internal/obs"
	"repro/internal/wire"
)

// ShardInfo describes one routed shard of a sharded run.
type ShardInfo struct {
	// Sinks is the shard's sink count.
	Sinks int
	// Wirelength is the committed wire of the shard's subtree, measured
	// after the stitch: a shard root the stitch resolved jointly (a
	// BuildSubtree root is left deferred for exactly that) commits its edges
	// during the stitch but they are the shard's wire, and sneak elongations
	// the stitch applies to edges inside the shard's subtree are included
	// too. Result.StitchWire is then the wire of the stitch-created nodes
	// alone, so Σ ShardInfo.Wirelength + StitchWire equals the tree wire
	// exactly and StitchWire can never be negative (the accounting test in
	// this package pins both on grouped multi-shard runs).
	Wirelength float64
	// Stats are the shard build's run stats (scans, rebuilds, merges, …).
	Stats core.Stats
}

// Result is a completed sharded routing. The embedded core.Result carries
// the stitched tree and the aggregate stats of every shard plus the stitch.
type Result struct {
	core.Result
	// Shards describes each routed shard in partition order; nil when
	// sharding was off (Options.Shards == 0) and the build was delegated to
	// core.Build unchanged.
	Shards []ShardInfo
	// StitchStats are the top-level stitch's own run stats (also included
	// in the aggregate).
	StitchStats core.Stats
	// StitchWire is the wire committed by the top-level stitch merges: the
	// total tree wire minus the shard subtrees' wire (never negative; see
	// ShardInfo.Wirelength for the attribution rules).
	StitchWire float64
	// Parts is the spatial partition backing the shard records: Parts[i]
	// lists shard i's sink IDs in partition order (shard.Partition output).
	// Nil when sharding was off. Consumers use it to attribute per-sink
	// measurements to shards — e.g. eval.SeamSkew's residual intra-group
	// skew across shard seams.
	Parts [][]int
	// PilotOffsets are the inter-group offsets the pilot offset pass
	// prescribed to every shard and the stitch (the Options.GroupOffsets
	// form: entry g is group g's delay minus group 0's, in ps). Nil when
	// the pilot was off or skipped (single-group instance).
	PilotOffsets []float64
	// PilotSinks is the number of sinks the pilot pass routed (0 = no
	// pilot); PilotStats are that route's run stats. Both are included in
	// the aggregate Result.Stats — the pilot is part of the run's cost —
	// and broken out here so its share is observable.
	PilotSinks int
	PilotStats core.Stats
	// Trace is the run's trace node (Options.Trace echoed back; nil when
	// untraced): top-level spans for the partition/pilot/shards/stitch/
	// finalize phases, with the pilot, each shard build, and the stitch
	// recording into child traces ("pilot", "shard0"…, "stitch").
	Trace *obs.Trace
	// Dispatch sums what fault handling cost across the run's dispatched
	// phases (pilot patches + shard builds): attempts, retries, hedged
	// straggler duplicates, contained panics, injected faults, and — under
	// remote dispatch (dispatch.Options.Remote) — tasks that degraded to
	// the in-process fallback and workers lost to blacklisting. All zero on
	// a fault-free run with no stragglers. The same counters are exported
	// as dispatch_* metrics on Trace.
	Dispatch dispatch.Report
	// Eco is the retained incremental-rebuild contract: the partition, the
	// frozen base registry, the pilot offset contract and every shard's
	// pre-stitch subtree, from which EcoCache.Rebuild re-routes an edited
	// instance by rebuilding only the dirty shards. Nil unless the build
	// retained it (BuildEco) or the result itself came from a rebuild
	// (Rebuild results always chain).
	Eco *EcoCache
	// EcoRebuilt lists the shard indices an incremental rebuild re-routed,
	// ascending (nil on a from-scratch build); EcoReused counts the cached
	// subtrees adopted unchanged. The differential tests pin "only dirty
	// shards were rebuilt" on these.
	EcoRebuilt []int
	EcoReused  int
}

// shardOut is one shard execution's product: the built subtree and the
// private registry whose offsets it committed. Both the local runner and
// the remote transport's decoder (remote.go) produce it, so the stitch
// never knows where a shard was routed.
type shardOut struct {
	sub *core.Subtree
	reg *core.Registry
}

// Build routes the instance according to opt.Shards: 0 delegates to the
// unsharded core.Build; k ≥ 1 partitions the instance into k shards, routes
// them concurrently against private clones of one frozen offset registry,
// and stitches the shard roots skew-aware with core.MergeRoots. Shards = 1
// is bitwise-identical to core.Build; Shards > 1 is deterministic for fixed
// (instance, options) regardless of scheduling (see the package comment).
//
// opt.Pilot additionally runs the pilot offset pass before the concurrent
// builds: deterministic full-density sink patches (cut by the same
// partitioner, independent of k) are routed unsharded, and the inter-group
// offsets they commit are prescribed to every shard and to the stitch via
// GroupOffsets, so the shards agree on one global offset contract instead
// of committing k contradictory ones (the package comment has the design).
// The pass is skipped on single-group instances, where no inter-group
// offset exists to prescribe.
//
// Sub-builds execute through the internal/dispatch coordinator under its
// default fault policy: a panicking shard or pilot patch surfaces as an
// error naming the phase (never a process crash), contained crashes retry
// with capped backoff, stragglers are hedged first-result-wins, and
// opt.Ctx cancellation propagates into every merge loop. Determinism is
// unaffected: every execution of a sub-build is a pure function of its
// inputs, so retried and hedged runs are bitwise-identical to undisturbed
// ones. BuildDispatch exposes the policy knobs (and the fault-injection
// harness) directly.
func Build(in *ctree.Instance, opt core.Options) (*Result, error) {
	return BuildDispatch(in, opt, dispatch.Options{})
}

// BuildDispatch is Build with an explicit dispatch policy: dopt tunes the
// fault-tolerance layer (retry budget and backoff, hedging deadline, worker
// cap, fault injection via dopt.Faults). dopt.Phase and dopt.Trace are
// overridden per pipeline phase ("pilot", "shard"); everything else applies
// to every dispatched phase unchanged. The zero value is the default policy
// Build uses.
func BuildDispatch(in *ctree.Instance, opt core.Options, dopt dispatch.Options) (*Result, error) {
	return buildDispatch(in, opt, dopt, false)
}

// BuildEco is BuildDispatch with contract retention: the result additionally
// carries an EcoCache (partition, frozen base registry, pilot offsets,
// per-shard pre-stitch subtree encodings) from which an edited instance can
// be re-routed incrementally (EcoCache.Rebuild). Retention costs one
// serialization pass over the shard subtrees, so it is opt-in rather than
// the Build default. Requires opt.Shards ≥ 1 — the contract is the sharded
// pipeline's, an unsharded build has no partition to reuse.
func BuildEco(in *ctree.Instance, opt core.Options, dopt dispatch.Options) (*Result, error) {
	if opt.Shards <= 0 {
		return nil, fmt.Errorf("shard: eco retention requires Shards ≥ 1 (got %d)", opt.Shards)
	}
	return buildDispatch(in, opt, dopt, true)
}

func buildDispatch(in *ctree.Instance, opt core.Options, dopt dispatch.Options, retain bool) (*Result, error) {
	k := opt.Shards
	if k <= 0 {
		res, err := core.Build(in, opt) // rejects a stray opt.Pilot itself
		if err != nil {
			return nil, err
		}
		return &Result{Result: *res, Trace: opt.Trace}, nil
	}
	tr := opt.Trace
	if err := in.Validate(); err != nil {
		return nil, err
	}
	if k > len(in.Sinks) {
		return nil, fmt.Errorf("shard: %d shards for %d sinks", k, len(in.Sinks))
	}
	if opt.Order.Pairer != nil {
		return nil, fmt.Errorf("shard: Order.Pairer cannot be shared across concurrent shard builds; leave it nil (each build constructs its own engine)")
	}

	// The sub-builds and the stitch route unsharded; the pilot pass (which
	// runs before GroupOffsets are prescribed below) validates opt.Pilot's
	// flag compatibility through core's option normalization.
	subOpt := opt
	subOpt.Shards = 0
	subOpt.Pilot = false
	// Pipeline components record into their own child traces below; the
	// parent trace holds the phase spans and stays on this goroutine.
	subOpt.Trace = nil
	if _, err := core.NewRegistry(in, opt); err != nil {
		return nil, err // surface Pilot/GroupOffsets/… option conflicts early
	}

	partRgn := tr.Begin("partition")
	var parts [][]int
	if err := dispatch.Protect("partition", func() error {
		parts = Partition(in, k)
		return nil
	}); err != nil {
		return nil, err
	}
	partRgn.End()

	var disp dispatch.Report
	var pilotOffs []float64
	var pilotStats core.Stats
	pilotSinks := 0
	if opt.Pilot && in.NumGroups > 1 {
		pilotRgn := tr.Begin("pilot")
		pilotOpt := subOpt
		if tr != nil {
			pilotOpt.Trace = tr.Child("pilot")
		}
		// Protect the pass's serial sections (sampling, median aggregation)
		// too: the dispatcher only contains panics inside patch executions.
		err := dispatch.Protect("pilot", func() error {
			var err error
			var rep dispatch.Report
			pilotOffs, pilotStats, pilotSinks, rep, err = runPilot(in, pilotOpt, dopt)
			disp.Add(rep)
			return err
		})
		pilotOpt.Trace.Close()
		if err != nil {
			return nil, err
		}
		pilotRgn.Attr("sinks", float64(pilotSinks)).End()
		// From here on the offsets are a prescribed contract: the base
		// registry pre-registers them, so every shard's leash and the
		// stitch's enforce the same inter-group alignment.
		subOpt.GroupOffsets = pilotOffs
	}

	base, err := core.NewRegistry(in, subOpt)
	if err != nil {
		return nil, err
	}

	shardOpt := deriveShardOpt(subOpt, k)

	// The shard builds go through the dispatch coordinator: each execution
	// (first attempt, retry or hedge alike) clones the frozen base registry
	// privately and routes its shard from scratch — a pure function of
	// (instance, part, options, base), so whichever execution wins, the
	// adopted subtree is bitwise the one the undisturbed build produces.
	// Only the first attempt records into the per-shard child trace (the
	// trace contract is single-goroutine per node; a retry racing a traced
	// hedge would otherwise interleave writes), so under faults a shard's
	// child trace shows the failed attempt while the metrics-bearing result
	// comes from the winner.
	shardsRgn := tr.Begin("shards").Attr("count", float64(k))
	shardTraces := make([]*obs.Trace, k)
	if tr != nil {
		for i := range shardTraces {
			shardTraces[i] = tr.Child("shard" + strconv.Itoa(i))
		}
	}
	local := dispatch.RunnerFunc(func(ctx context.Context, t dispatch.Task) (any, error) {
		so := shardOpt
		so.Ctx = ctx
		if t.Attempt == 0 {
			so.Trace = shardTraces[t.Index]
		}
		reg := base.Clone() // private view of the frozen base
		var sub *core.Subtree
		var err error
		// Label the goroutine so -cpuprofile samples attribute to shards.
		pprof.Do(ctx, pprof.Labels("shard", strconv.Itoa(t.Index)), func(context.Context) {
			sub, err = core.BuildSubtree(in, parts[t.Index], so, reg)
		})
		if err != nil {
			return nil, err
		}
		return shardOut{sub: sub, reg: reg}, nil
	})
	// With a worker pool attached, shard builds ship to routeworkers and
	// degrade back to the local runner when the fleet cannot take them (see
	// remote.go); the dispatch report picks up the degradation counters
	// after the run drains.
	var runner dispatch.Runner = local
	if dopt.Remote != nil {
		rr, err := newRemoteShardRunner(dopt.Remote, in, shardOpt, base, parts, local, dopt.Faults)
		if err != nil {
			return nil, err
		}
		runner = rr
	}
	shardDopt := dopt
	shardDopt.Phase = "shard"
	shardDopt.Trace = tr
	outs, rep, err := dispatch.Run(opt.Ctx, k, runner, shardDopt)
	disp.Add(rep)
	for _, st := range shardTraces {
		st.Close()
	}
	shardsRgn.End()
	if err != nil {
		return nil, err
	}
	subs := make([]*core.Subtree, k)
	regs := make([]*core.Registry, k)
	for i, out := range outs {
		so := out.(shardOut)
		subs[i], regs[i] = so.sub, so.reg
	}

	roots := make([]*ctree.Node, k)
	for i, s := range subs {
		roots[i] = s.Root
	}

	// Contract retention snapshots every shard subtree BEFORE the stitch:
	// MergeRoots adopts the roots and mutates them in place (deferred-root
	// resolution, sneak elongation), so the reusable form only exists here.
	// The blobs are the remote-dispatch result encoding — decoding one is
	// bitwise the build that produced it, which is what lets a later rebuild
	// adopt clean shards without re-routing them.
	var ecoBlobs [][]byte
	if retain {
		retainRgn := tr.Begin("retain")
		if err := dispatch.Protect("retain", func() error {
			ecoBlobs = make([][]byte, k)
			for i, s := range subs {
				br := wire.BuildResult{
					Root:       s.Root,
					Stats:      s.Stats,
					Wirelength: roots[i].Wirelength(),
					Registry:   regs[i].Snapshot(),
				}
				b, err := br.Encode()
				if err != nil {
					return err
				}
				ecoBlobs[i] = b
			}
			return nil
		}); err != nil {
			return nil, err
		}
		retainRgn.End()
	}

	// The stitch routes against the frozen base: offsets committed inside a
	// shard are already baked into its root's delay intervals, and the
	// shards' private registries may disagree — the stitch windows are what
	// reconcile them. With a single shard there is nothing to reconcile, so
	// the stitch adopts the shard's own registry, making the whole pipeline
	// (stats included) exactly the unsharded sequence.
	topReg := base
	if k == 1 {
		topReg = regs[0]
	}
	stitchRgn := tr.Begin("stitch")
	stitchOpt := subOpt
	if tr != nil {
		stitchOpt.Trace = tr.Child("stitch")
	}
	// The stitch is a single serial merge pass on this goroutine; Protect
	// gives it the same containment guarantee as the dispatched builds — a
	// panic surfaces as an error naming the phase, never a crash.
	var top *core.Subtree
	err = dispatch.Protect("stitch", func() error {
		var err error
		top, err = core.MergeRoots(in, roots, stitchOpt, topReg)
		return err
	})
	stitchOpt.Trace.Close()
	stitchRgn.End()
	if err != nil {
		return nil, err
	}

	finRgn := tr.Begin("finalize")
	res := &Result{
		Result: core.Result{
			Instance: in,
			Root:     top.Root,
			Options:  opt,
		},
		Shards:       make([]ShardInfo, k),
		StitchStats:  top.Stats,
		Parts:        parts,
		PilotOffsets: pilotOffs,
		PilotSinks:   pilotSinks,
		PilotStats:   pilotStats,
		Trace:        tr,
		Dispatch:     disp,
	}
	if err := dispatch.Protect("finalize", func() error {
		return finalizeResult(res, in, subs, roots, parts, top, base, pilotStats)
	}); err != nil {
		return nil, err
	}
	finRgn.End()
	if retain {
		res.Eco = &EcoCache{
			Instance:     in,
			Opt:          stripLocalOnly(opt),
			Parts:        parts,
			Base:         base.Snapshot(),
			PilotOffsets: pilotOffs,
			PilotSinks:   pilotSinks,
			Blobs:        ecoBlobs,
		}
	}
	return res, nil
}

// deriveShardOpt derives the per-shard build options from the sub-build
// options: the grid-pairer threshold is scaled by the shard count —
// PairerAuto's grid-vs-oracle decision is about total instance scale (a
// shard holds ~1/k of the instance), and comparing each shard's slice
// against the global constant silently dropped mid-size sharded runs back
// onto the O(n²) scan oracle inside every shard. k = 1 leaves the threshold
// untouched, preserving bitwise identity with the unsharded build. For
// k > 1 the sneak probe is dropped too: a Probe is single-goroutine, and
// concurrent shard builds would race on it (the serial components — pilot,
// stitch — still record; runs wanting complete sneak capture use Shards ≤ 1).
// Shared by the from-scratch pipeline and the incremental rebuild so the
// dirty shards of a rebuild see exactly the options the original shards saw.
func deriveShardOpt(subOpt core.Options, k int) core.Options {
	shardOpt := subOpt
	thr := shardOpt.PairerThreshold
	if thr <= 0 {
		thr = core.GridPairerThreshold
	}
	shardOpt.PairerThreshold = (thr + k - 1) / k
	if k > 1 {
		shardOpt.SneakProbe = nil
	}
	return shardOpt
}

// finalizeResult assembles the post-stitch bookkeeping shared by the
// from-scratch pipeline and the incremental rebuild: per-shard wire
// attribution, stats aggregation, dense internal-ID renumbering (k > 1) and
// the source embedding. res must arrive with Shards pre-sized to len(subs).
func finalizeResult(res *Result, in *ctree.Instance, subs []*core.Subtree, roots []*ctree.Node,
	parts [][]int, top *core.Subtree, base *core.Registry, pilotStats core.Stats) error {
	k := len(subs)
	var agg core.Stats
	agg.AddRun(pilotStats) // zero when the pilot was off
	var shardWire float64
	for i, s := range subs {
		w := roots[i].Wirelength()
		res.Shards[i] = ShardInfo{Sinks: len(parts[i]), Wirelength: w, Stats: s.Stats}
		shardWire += w
		agg.AddRun(s.Stats)
	}
	agg.AddRun(top.Stats)
	agg.GroupUnions += base.PreUnions()
	res.Stats = agg

	if k > 1 {
		// Internal node IDs were assigned per shard (and restart in the
		// stitch); renumber them densely above the sink IDs so IDs are
		// unique within the run, as core.Build guarantees. Shards = 1 takes
		// the unsharded numbering as-is, preserving bitwise identity.
		next := len(in.Sinks)
		top.Root.Visit(func(n *ctree.Node) {
			if !n.IsLeaf() {
				n.ID = next
				next++
			}
		})
	}

	treeWire := top.Root.Wirelength()
	res.SourceWire = geom.DistRP(top.Root.Region, geom.ToUV(in.Source))
	res.Wirelength = treeWire + res.SourceWire
	res.StitchWire = treeWire - shardWire
	res.Root.Embed(geom.ToUV(in.Source))
	return nil
}
