package shard

import (
	"fmt"
	"hash/fnv"
	"math"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/ctree"
	"repro/internal/eval"
	"repro/internal/order"
)

// hashDelays folds the bit patterns of every per-sink delay into one FNV-64a
// digest, in sink-ID order (the same digest as core's golden tests): any
// single-ULP drift in any sink's delay changes it.
func hashDelays(ds []float64) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, d := range ds {
		bits := math.Float64bits(d)
		for i := 0; i < 8; i++ {
			buf[i] = byte(bits >> (8 * i))
		}
		h.Write(buf[:])
	}
	return h.Sum64()
}

func delayDigest(t *testing.T, root *ctree.Node, in *ctree.Instance) uint64 {
	t.Helper()
	rep := eval.Analyze(root, in, core.DefaultModel(), in.Source)
	return hashDelays(rep.SinkDelay)
}

// TestShardsOneBitwiseIdentical pins the Shards=1 pipeline — partition,
// BuildSubtree over the full sink set, trivial stitch — bitwise to the
// unsharded core.Build across all three batching strategies, ZST and
// grouped AST-DME: same wirelength bits, same per-sink delay digest.
func TestShardsOneBitwiseIdentical(t *testing.T) {
	zst := bench.Small(600, 21)
	grouped := bench.Intermingled(bench.Small(400, 33), 4, 99)
	for _, strategy := range []order.Strategy{order.Multi, order.Greedy, order.GreedyBatch} {
		for _, inst := range []struct {
			name string
			in   *ctree.Instance
			opt  core.Options
		}{
			{"zst", zst, core.Options{SingleGroup: true, Order: order.Config{Strategy: strategy}}},
			{"grouped", grouped, core.Options{Order: order.Config{Strategy: strategy}}},
		} {
			label := fmt.Sprintf("%s/strategy=%v", inst.name, strategy)
			ref, err := core.Build(inst.in, inst.opt)
			if err != nil {
				t.Fatalf("%s: unsharded: %v", label, err)
			}
			opt := inst.opt
			opt.Shards = 1
			got, err := Build(inst.in, opt)
			if err != nil {
				t.Fatalf("%s: sharded: %v", label, err)
			}
			if len(got.Shards) != 1 || got.Shards[0].Sinks != len(inst.in.Sinks) {
				t.Errorf("%s: shard layout %+v, want one full shard", label, got.Shards)
			}
			wb, rb := math.Float64bits(got.Wirelength), math.Float64bits(ref.Wirelength)
			if wb != rb {
				t.Errorf("%s: wirelength bits 0x%016x (%v), want 0x%016x (%v)",
					label, wb, got.Wirelength, rb, ref.Wirelength)
			}
			if gh, rh := delayDigest(t, got.Root, inst.in), delayDigest(t, ref.Root, inst.in); gh != rh {
				t.Errorf("%s: per-sink delay digest 0x%016x, want 0x%016x", label, gh, rh)
			}
			if got.Stats != ref.Stats {
				t.Errorf("%s: aggregate stats %+v, want unsharded %+v", label, got.Stats, ref.Stats)
			}
		}
	}
}

// wireEnvelope is the documented bound on sharded wirelength relative to the
// unsharded build: shards cannot merge across a cut below the top level, so
// sharding trades bounded extra wire for concurrency and partition locality.
// Measured on the 10k/50k uniform and power-law circuits at 2–8 shards the
// overhead stays under 4%; the envelope leaves headroom for seed drift.
const wireEnvelope = 1.08

// TestShardedZeroSkewAndWireEnvelope verifies, with the independent
// evaluator, that sharded zero-skew routes still meet the skew contract —
// the stitch merges shard roots under the same point windows as any
// same-group merge — and that their wirelength stays within the documented
// envelope of the unsharded build, on uniform and power-law placements.
func TestShardedZeroSkewAndWireEnvelope(t *testing.T) {
	sizes := []int{10_000, 50_000}
	if testing.Short() {
		sizes = []int{10_000}
	}
	for _, n := range sizes {
		for _, dist := range []string{"uniform", "powerlaw"} {
			var in *ctree.Instance
			if dist == "uniform" {
				in = bench.Small(n, 9)
			} else {
				in = bench.PowerLaw(n, bench.PowerLawClusters, bench.PowerLawAlpha, 9)
			}
			ref, err := core.ZST(in, core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			for _, k := range []int{2, 4, 8} {
				label := fmt.Sprintf("%s/n=%d/shards=%d", dist, n, k)
				res, err := Build(in, core.Options{SingleGroup: true, Shards: k})
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				if err := eval.CheckTree(res.Root, in); err != nil {
					t.Fatalf("%s: CheckTree: %v", label, err)
				}
				rep := eval.Analyze(res.Root, in, core.DefaultModel(), in.Source)
				if rep.Sinks != n {
					t.Fatalf("%s: reached %d sinks", label, rep.Sinks)
				}
				if tol := 1e-6 * (1 + rep.MaxDelay); rep.GlobalSkew > tol {
					t.Errorf("%s: global skew %v ps exceeds %v", label, rep.GlobalSkew, tol)
				}
				if ratio := res.Wirelength / ref.Wirelength; ratio > wireEnvelope {
					t.Errorf("%s: wirelength ratio %.4f exceeds envelope %v", label, ratio, wireEnvelope)
				}
				if len(res.Shards) != k {
					t.Fatalf("%s: %d shard records", label, len(res.Shards))
				}
				var shardWire float64
				for i, si := range res.Shards {
					if si.Sinks == 0 {
						t.Errorf("%s: shard %d empty", label, i)
					}
					shardWire += si.Wirelength
				}
				if diff := math.Abs(res.Wirelength - res.SourceWire - shardWire - res.StitchWire); diff > 1e-6*res.Wirelength {
					t.Errorf("%s: wire accounting off by %v (total %v = shards %v + stitch %v + source %v)",
						label, diff, res.Wirelength, shardWire, res.StitchWire, res.SourceWire)
				}
				t.Logf("%s: wire ratio %.4f, stitch wire %.0f, scans %d", label,
					res.Wirelength/ref.Wirelength, res.StitchWire, res.Stats.PairScans)
			}
		}
	}
}

// TestShardedGroupedSkew runs the sharded pipeline on grouped AST-DME
// instances: groups span shards, so the stitch must re-align each group's
// per-shard delay intervals through its skew windows (snaking when
// independently built shards committed contradictory offsets). On difficult
// intermingled instances the router's residual-skew escape hatch
// (SneakUnresolved) already fires unsharded, so the eval-backed contract is
// relative: where the unsharded route effectively meets the bound, the
// sharded route must too; where it does not, sharding may degrade the
// residual by at most a bounded factor.
func TestShardedGroupedSkew(t *testing.T) {
	const bound = 50
	in := bench.Intermingled(bench.Small(1000, 5), 2, 41)
	ref, err := core.Build(in, core.Options{IntraSkewBound: bound})
	if err != nil {
		t.Fatal(err)
	}
	refSkew := eval.Analyze(ref.Root, in, core.DefaultModel(), in.Source).MaxGroupSkew
	for _, k := range []int{2, 4} {
		label := fmt.Sprintf("shards=%d", k)
		res, err := Build(in, core.Options{IntraSkewBound: bound, Shards: k})
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		if err := eval.CheckTree(res.Root, in); err != nil {
			t.Fatalf("%s: CheckTree: %v", label, err)
		}
		rep := eval.Analyze(res.Root, in, core.DefaultModel(), in.Source)
		// Absolute: within 10% of the bound (covers sub-ps float residue
		// and the small seam drift measured during development: ≤ 52 ps on
		// this instance at 2–4 shards, bound 50).
		if rep.MaxGroupSkew > 1.1*bound {
			t.Errorf("%s: intra-group skew %v ps exceeds bound %v (+10%%)", label, rep.MaxGroupSkew, bound)
		}
		// Relative: no more than 2× the unsharded residual beyond the bound.
		if over, refOver := rep.MaxGroupSkew-bound, refSkew-bound; over > 0 && over > 2*math.Max(refOver, 1) {
			t.Errorf("%s: bound overshoot %v ps vs unsharded %v ps", label, over, refOver)
		}
		t.Logf("%s: group skew %v (unsharded %v), unresolved %d (stitch %d)",
			label, rep.MaxGroupSkew, refSkew, res.Stats.SneakUnresolved, res.StitchStats.SneakUnresolved)
	}
}

// TestShardedDeterministicAcrossWorkers pins the Shards > 1 guarantee: the
// result is a pure function of (instance, options, k) — per-shard builds run
// on private registry clones and the stitch order is fixed, so no goroutine
// schedule can leak into the tree. Routing at 1 and 4 merge workers (the
// shard goroutines themselves always run concurrently) must agree bitwise.
func TestShardedDeterministicAcrossWorkers(t *testing.T) {
	for _, inst := range []struct {
		name string
		in   *ctree.Instance
		opt  core.Options
	}{
		{"zst", bench.Small(3000, 17), core.Options{SingleGroup: true}},
		{"grouped", bench.Intermingled(bench.Small(800, 23), 3, 55), core.Options{IntraSkewBound: 10}},
	} {
		opt := inst.opt
		opt.Shards = 4
		var wantWire, wantHash uint64
		for _, workers := range []int{1, 4} {
			opt.MergeWorkers = workers
			res, err := Build(inst.in, opt)
			if err != nil {
				t.Fatalf("%s/workers=%d: %v", inst.name, workers, err)
			}
			wire := math.Float64bits(res.Wirelength)
			hash := delayDigest(t, res.Root, inst.in)
			if workers == 1 {
				wantWire, wantHash = wire, hash
				continue
			}
			if wire != wantWire || hash != wantHash {
				t.Errorf("%s: workers=%d diverged: wire 0x%016x vs 0x%016x, digest 0x%016x vs 0x%016x",
					inst.name, workers, wire, wantWire, hash, wantHash)
			}
		}
	}
}

// TestShardsOffDelegates pins Shards=0 to the plain unsharded build with no
// shard records.
func TestShardsOffDelegates(t *testing.T) {
	in := bench.Small(200, 7)
	res, err := Build(in, core.Options{SingleGroup: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Shards != nil {
		t.Errorf("Shards=0 produced shard records: %+v", res.Shards)
	}
	ref, err := core.ZST(in, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Wirelength != ref.Wirelength {
		t.Errorf("delegated wirelength %v != core %v", res.Wirelength, ref.Wirelength)
	}
}

// TestShardErrors covers the argument validation of the sharded pipeline
// and core.Build's refusal to silently ignore Shards.
func TestShardErrors(t *testing.T) {
	in := bench.Small(40, 3)
	if _, err := Build(in, core.Options{SingleGroup: true, Shards: 41}); err == nil {
		t.Error("more shards than sinks accepted")
	}
	if _, err := Build(in, core.Options{SingleGroup: true, Shards: -1}); err == nil {
		t.Error("negative shard count accepted")
	}
	if _, err := core.Build(in, core.Options{SingleGroup: true, Shards: 2}); err == nil {
		t.Error("core.Build accepted Shards > 1 instead of directing to shard.Build")
	}
	if _, err := Build(&ctree.Instance{Name: "bad", NumGroups: 1}, core.Options{Shards: 2}); err == nil {
		t.Error("invalid instance accepted")
	}
	if _, err := Build(in, core.Options{SingleGroup: true, Shards: 2,
		Order: order.Config{Pairer: stubPairer{}}}); err == nil {
		t.Error("caller-supplied Order.Pairer accepted for concurrent shard builds")
	}
	grouped := bench.Intermingled(in, 2, 5)
	if _, err := Build(grouped, core.Options{Pilot: true}); err == nil {
		t.Error("Pilot without Shards accepted (nothing to align)")
	}
	if _, err := Build(in, core.Options{SingleGroup: true, Pilot: true, Shards: 2}); err == nil {
		t.Error("Pilot + SingleGroup accepted")
	}
	if _, err := Build(grouped, core.Options{Pilot: true, Shards: 2,
		GroupOffsets: []float64{0, 1}}); err == nil {
		t.Error("Pilot + explicit GroupOffsets accepted")
	}
}

// stubPairer is a non-nil order.Pairer used only to exercise the sharing
// guard; it is never queried.
type stubPairer struct{}

func (stubPairer) Insert(int)                     {}
func (stubPairer) Delete(int)                     {}
func (stubPairer) Nearest(int) (order.Pair, bool) { return order.Pair{}, false }
func (stubPairer) NearestAll([]int) []order.Pair  { return nil }
func (stubPairer) Scans() int64                   { return 0 }
