package spatial

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
)

// TestEcoChurnMatchesFreshIndex pins the index under the exact churn shape
// the incremental rerouting path produces: a long run of ECO rounds, each a
// clustered batch of moves (delete + re-insert of the SAME id at a shifted
// placement), removals (tombstones) and additions (fresh ids extending the
// id space), with the live count crossing re-cell boundaries in both
// directions so the LiveDrop purge/rebuild machinery fires mid-sequence.
// After every round the churned index must answer Nearest and KNearest
// identically to an index freshly built from the surviving boxes — cell
// geometry and rebuild history are never allowed to leak into results.
func TestEcoChurnMatchesFreshIndex(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	const n = 500
	boxes := make([]geom.Rect, 0, 2*n)
	live := make([]bool, 0, 2*n)
	x := New(25)
	for i := 0; i < n; i++ {
		boxes = append(boxes, randRect(r, 1000, 4))
		live = append(live, true)
		x.Insert(i, boxes[i])
	}

	check := func(tag string) {
		t.Helper()
		// A fresh index over the identical surviving boxes is the oracle:
		// same ids, same boxes, no churn history. Its cell size differs from
		// the churned index's (AutoCell of the survivors vs. the original
		// New(25) grid after rebuilds) — which is the point: results must be
		// a pure function of the live boxes.
		survivors := make([]geom.Rect, 0, len(boxes))
		ids := make([]int, 0, len(boxes))
		for id, a := range live {
			if a {
				survivors = append(survivors, boxes[id])
				ids = append(ids, id)
			}
		}
		fresh := New(AutoCell(survivors))
		for j, id := range ids {
			fresh.Insert(id, survivors[j])
		}
		if x.Len() != fresh.Len() {
			t.Fatalf("%s: Len = %d, fresh %d", tag, x.Len(), fresh.Len())
		}
		for probe := 0; probe < 40; probe++ {
			q := randRect(r, 1000, 4)
			key := func(ix *Index) func(int) float64 {
				return func(id int) float64 { return geom.DistRR(q, ix.Box(id)) }
			}
			gj, gd, gok := x.Nearest(q, nil, key(x))
			wj, wd, wok := fresh.Nearest(q, nil, key(fresh))
			if gok != wok || gj != wj || gd != wd {
				t.Fatalf("%s: Nearest(%v) = (%d, %v, %v), fresh (%d, %v, %v)",
					tag, q, gj, gd, gok, wj, wd, wok)
			}
			gk := x.KNearest(q, 5, nil)
			wk := fresh.KNearest(q, 5, nil)
			if len(gk) != len(wk) {
				t.Fatalf("%s: KNearest lengths %d vs %d", tag, len(gk), len(wk))
			}
			for i := range gk {
				if gk[i] != wk[i] {
					t.Fatalf("%s: KNearest[%d] = %d, fresh %d (%v vs %v)", tag, i, gk[i], wk[i], gk, wk)
				}
			}
		}
	}
	check("initial")

	for round := 0; round < 6; round++ {
		// A clustered ECO: edits target the neighborhood of one focal box,
		// like instio.Perturb's scripts.
		focal := randRect(r, 1000, 4)
		neighbors := x.KNearest(focal, 60, nil)
		for i, id := range neighbors {
			switch {
			case i%5 == 4: // removal
				x.Delete(id)
				live[id] = false
			case i%5 < 3: // move: re-file the same id at a shifted placement
				nb := boxes[id]
				du, dv := (r.Float64()*2-1)*40, (r.Float64()*2-1)*40
				nb.ULo += du
				nb.UHi += du
				nb.VLo += dv
				nb.VHi += dv
				boxes[id] = nb
				x.Delete(id)
				x.Insert(id, nb)
			}
		}
		// Additions: fresh ids past the current space, near the focal box.
		for a := 0; a < 10; a++ {
			id := len(boxes)
			nb := focal
			du, dv := (r.Float64()*2-1)*60, (r.Float64()*2-1)*60
			nb.ULo += du
			nb.UHi += du
			nb.VLo += dv
			nb.VHi += dv
			boxes = append(boxes, nb)
			live = append(live, true)
			x.Insert(id, nb)
		}
		// Every other round, also resurrect a few tombstoned ids — the
		// add-after-remove ECO — at new placements.
		if round%2 == 1 {
			for id := range live {
				if !live[id] && r.Float64() < 0.3 {
					boxes[id] = randRect(r, 1000, 4)
					x.Insert(id, boxes[id])
					live[id] = true
				}
			}
		}
		check("round")
	}

	// Now force the re-cell boundary from above: drain far enough that the
	// live-count halving rebuild must fire, churning survivors on the way.
	dropped, target := 0, 4*x.Len()/5
	for id := 0; id < len(live) && dropped < target; id++ {
		if live[id] {
			x.Delete(id)
			live[id] = false
			dropped++
		}
	}
	if x.Rebuilds().LiveDrop == 0 {
		t.Error("drain never crossed the live-drop re-cell boundary; the test lost its point")
	}
	check("after drain")

	// And from below: mass re-insertion over the drained grid.
	for id := range live {
		if !live[id] && r.Float64() < 0.7 {
			boxes[id] = randRect(r, 1000, 4)
			x.Insert(id, boxes[id])
			live[id] = true
		}
	}
	check("after refill")
	t.Logf("rebuilds: %+v", x.Rebuilds())
}
