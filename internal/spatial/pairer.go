package spatial

import (
	"repro/internal/geom"
	"repro/internal/order"
)

// GridPairer adapts Index to order.Pairer, the pluggable nearest-partner
// contract of the merging queue. It is the default engine above the router's
// size threshold; the all-pairs scan built into package order remains the
// oracle below it and for keys the grid cannot prune exactly.
//
// box supplies the current bounding box of an item at Insert time (for the
// router: the u/v bounds of the node's active region). dist is the exact
// pair distance and key the pair priority; key == nil means priority =
// distance. For exact results key(i,j,d) must be ≥ d for every pair — see
// the package documentation on pruning soundness.
type GridPairer struct {
	idx  *Index
	box  func(id int) geom.Rect
	dist func(i, j int) float64
	key  func(i, j int, d float64) float64
}

var _ order.Pairer = (*GridPairer)(nil)

// NewGridPairer builds a GridPairer over an empty index with the given cell
// edge (see AutoCell).
func NewGridPairer(cell float64, box func(id int) geom.Rect, dist func(i, j int) float64, key func(i, j int, d float64) float64) *GridPairer {
	if key == nil {
		key = func(_, _ int, d float64) float64 { return d }
	}
	return &GridPairer{idx: New(cell), box: box, dist: dist, key: key}
}

// Index exposes the underlying grid (diagnostics and tests).
func (p *GridPairer) Index() *Index { return p.idx }

// Insert files the item under its current bounding box.
func (p *GridPairer) Insert(id int) { p.idx.Insert(id, p.box(id)) }

// Delete retires a merged item.
func (p *GridPairer) Delete(id int) { p.idx.Delete(id) }

// Nearest returns id's best live partner by key, smallest index on ties.
func (p *GridPairer) Nearest(id int) (order.Pair, bool) {
	j, k, ok := p.idx.Nearest(p.idx.Box(id),
		func(c int) bool { return c == id },
		func(c int) float64 { return p.key(id, c, p.dist(id, c)) })
	if !ok {
		return order.Pair{I: id, J: -1}, false
	}
	return order.Pair{Key: k, I: id, J: j}, true
}

// NearestAll shards the batch of queries across CPUs. Queries only read the
// index, and every result is written by position with smallest-index
// tie-breaking, so the output is identical at any GOMAXPROCS.
func (p *GridPairer) NearestAll(ids []int) []order.Pair {
	out := make([]order.Pair, len(ids))
	order.ParallelChunks(len(ids), func(lo, hi int) {
		for t := lo; t < hi; t++ {
			out[t], _ = p.Nearest(ids[t])
		}
	})
	return out
}

// Scans reports cumulative candidate evaluations (the pairing-work metric).
func (p *GridPairer) Scans() int64 { return p.idx.Scans() }
