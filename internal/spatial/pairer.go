package spatial

import (
	"repro/internal/geom"
	"repro/internal/order"
)

// GridPairer adapts Index to order.Pairer, the pluggable nearest-partner
// contract of the merging queue. It is the default engine above the router's
// size threshold; the all-pairs scan built into package order remains the
// oracle below it and for keys the grid cannot prune exactly.
//
// box supplies the current bounding box of an item at Insert time (for the
// router: the u/v bounds of the node's active region). dist is the exact
// pair distance and key the pair priority; key == nil means priority =
// distance. For exact results key(i,j,d) must be ≥ d for every pair — see
// the package documentation on pruning soundness.
type GridPairer struct {
	idx  *Index
	box  func(id int) geom.Rect
	dist func(i, j int) float64
	key  func(i, j int, d float64) float64
	out  []order.Pair
	// prefilled marks ids bulk-inserted at construction (NewGridPairerFor):
	// the queue's initial Insert calls for them are no-ops, since their
	// boxes are already filed and boxes of live items never change.
	prefilled int
}

var _ order.Pairer = (*GridPairer)(nil)
var _ Keyer = (*GridPairer)(nil)

// NewGridPairer builds a GridPairer over an empty index with the given cell
// edge (see AutoCell and DensityCell). The index window is established from
// the first insert; NewGridPairerFor presizes it instead.
func NewGridPairer(cell float64, box func(id int) geom.Rect, dist func(i, j int) float64, key func(i, j int, d float64) float64) *GridPairer {
	if key == nil {
		key = func(_, _ int, d float64) float64 { return d }
	}
	return &GridPairer{idx: New(cell), box: box, dist: dist, key: key}
}

// NewGridPairerFor builds a GridPairer preloaded with the initial
// population under ids 0..len(boxes)-1: density-adapted cell edge
// (DensityCell), a window presized to the boxes' bounding box, and a bulk
// fill, so the merge queue's initial per-item inserts are no-ops and the
// warm-up triggers no rebuilds. box(id) must equal boxes[id] for the
// initial ids.
func NewGridPairerFor(boxes []geom.Rect, box func(id int) geom.Rect, dist func(i, j int) float64, key func(i, j int, d float64) float64) *GridPairer {
	p := NewGridPairer(DensityCell(boxes), box, dist, key)
	if len(boxes) > 0 {
		p.idx = NewBounded(p.idx.cell, boundsOf(boxes))
		p.idx.InsertAll(boxes)
		p.prefilled = len(boxes)
	}
	return p
}

// Index exposes the underlying grid (diagnostics and tests).
func (p *GridPairer) Index() *Index { return p.idx }

// Insert files the item under its current bounding box. The initial ids of
// a preloaded pairer (NewGridPairerFor) are already filed and skip refiling.
func (p *GridPairer) Insert(id int) {
	if id < p.prefilled {
		return
	}
	p.idx.Insert(id, p.box(id))
}

// Delete retires a merged item.
func (p *GridPairer) Delete(id int) { p.idx.Delete(id) }

// PairKey implements Keyer: the configured pair priority over the exact
// pair distance.
func (p *GridPairer) PairKey(self, cand int) float64 {
	return p.key(self, cand, p.dist(self, cand))
}

// Nearest returns id's best live partner by key, smallest index on ties.
func (p *GridPairer) Nearest(id int) (order.Pair, bool) {
	j, k, ok := p.idx.NearestScored(id, p)
	if !ok {
		return order.Pair{I: id, J: -1}, false
	}
	return order.Pair{Key: k, I: id, J: j}, true
}

// NearestAll shards the batch of queries across CPUs. Queries only read the
// index, and every result is written by position with smallest-index
// tie-breaking, so the output is identical at any GOMAXPROCS. The returned
// slice aliases an internal buffer valid until the next call.
func (p *GridPairer) NearestAll(ids []int) []order.Pair {
	if cap(p.out) < len(ids) {
		p.out = make([]order.Pair, len(ids))
	}
	out := p.out[:len(ids)]
	order.ParallelChunks(len(ids), func(lo, hi int) {
		for t := lo; t < hi; t++ {
			out[t], _ = p.Nearest(ids[t])
		}
	})
	return out
}

// Scans reports cumulative candidate evaluations (the pairing-work metric).
func (p *GridPairer) Scans() int64 { return p.idx.Scans() }
