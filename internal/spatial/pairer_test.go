package spatial

import (
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/geom"
	"repro/internal/order"
)

// sim runs a full merge simulation over 2D points under a queue
// configuration: the merged replacement of a pair is the midpoint of its
// parts. Returns the merge sequence and the total of the merge distances
// (a wirelength proxy).
func sim(t *testing.T, cfg order.Config, pts []geom.UV, useGrid bool) ([][2]int, float64) {
	t.Helper()
	p := append([]geom.UV(nil), pts...)
	boxAt := func(id int) geom.Rect { return geom.RectFromUV(p[id]) }
	dist := func(i, j int) float64 { return geom.DistUV(p[i], p[j]) }
	if useGrid {
		boxes := make([]geom.Rect, len(p))
		for i := range boxes {
			boxes[i] = boxAt(i)
		}
		cfg.Pairer = NewGridPairer(AutoCell(boxes), boxAt, dist, cfg.Key)
	}
	q := order.New(cfg, len(pts), dist)
	var seq [][2]int
	var wire float64
	for {
		i, j, ok := q.Next()
		if !ok {
			break
		}
		seq = append(seq, [2]int{i, j})
		wire += geom.DistUV(p[i], p[j])
		p = append(p, geom.UV{U: (p[i].U + p[j].U) / 2, V: (p[i].V + p[j].V) / 2})
		q.Merged(len(p) - 1)
	}
	if len(seq) != len(pts)-1 {
		t.Fatalf("merged %d pairs, want %d", len(seq), len(pts)-1)
	}
	return seq, wire
}

// uniformPts returns tie-free random points (distinct float coordinates make
// exact distance ties vanishingly unlikely).
func uniformPts(n int, seed int64) []geom.UV {
	r := rand.New(rand.NewSource(seed))
	pts := make([]geom.UV, n)
	for i := range pts {
		pts[i] = geom.UV{U: r.Float64() * 1e5, V: r.Float64() * 1e5}
	}
	return pts
}

// latticePts returns points on an integer lattice — rich in exact distance
// ties, exercising the deterministic tie-breaking.
func latticePts(side int) []geom.UV {
	pts := make([]geom.UV, 0, side*side)
	for a := 0; a < side; a++ {
		for b := 0; b < side; b++ {
			pts = append(pts, geom.UV{U: float64(a) * 10, V: float64(b) * 10})
		}
	}
	return pts
}

// TestGridPairerMatchesScan is the pairer-equivalence differential test: the
// grid pairer must produce exactly the oracle's merge sequence and total
// wirelength, for both Greedy and Multi strategies, on tie-free instances.
func TestGridPairerMatchesScan(t *testing.T) {
	for _, st := range []order.Strategy{order.Greedy, order.Multi} {
		for _, n := range []int{2, 3, 50, 400} {
			pts := uniformPts(n, int64(100+n))
			cfg := order.Config{Strategy: st}
			seqScan, wireScan := sim(t, cfg, pts, false)
			seqGrid, wireGrid := sim(t, cfg, pts, true)
			if wireScan != wireGrid {
				t.Fatalf("strategy %v n=%d: wire %v (scan) != %v (grid)", st, n, wireScan, wireGrid)
			}
			for k := range seqScan {
				if seqScan[k] != seqGrid[k] {
					t.Fatalf("strategy %v n=%d: merge %d = %v (scan) != %v (grid)",
						st, n, k, seqScan[k], seqGrid[k])
				}
			}
		}
	}
}

// TestGridPairerMatchesScanUnderTies extends the differential to a
// tie-saturated lattice: both pairers break exact key ties toward the
// smallest index, so even degenerate instances must agree.
func TestGridPairerMatchesScanUnderTies(t *testing.T) {
	for _, st := range []order.Strategy{order.Greedy, order.Multi} {
		pts := latticePts(12)
		cfg := order.Config{Strategy: st}
		seqScan, wireScan := sim(t, cfg, pts, false)
		seqGrid, wireGrid := sim(t, cfg, pts, true)
		if wireScan != wireGrid {
			t.Fatalf("strategy %v: wire %v (scan) != %v (grid)", st, wireScan, wireGrid)
		}
		for k := range seqScan {
			if seqScan[k] != seqGrid[k] {
				t.Fatalf("strategy %v: merge %d = %v (scan) != %v (grid)", st, k, seqScan[k], seqGrid[k])
			}
		}
	}
}

// TestDeterministicAcrossGOMAXPROCS: the parallel batch pairing must yield
// identical merge sequences at any worker count, for both pairers, even on
// tie-rich instances (the reproducibility regression test).
func TestDeterministicAcrossGOMAXPROCS(t *testing.T) {
	pts := latticePts(16) // 256 ≥ the parallel fan-out threshold
	for _, useGrid := range []bool{false, true} {
		prev := runtime.GOMAXPROCS(1)
		seq1, _ := sim(t, order.Config{Strategy: order.Multi}, pts, useGrid)
		runtime.GOMAXPROCS(8)
		seq8, _ := sim(t, order.Config{Strategy: order.Multi}, pts, useGrid)
		runtime.GOMAXPROCS(prev)
		if len(seq1) != len(seq8) {
			t.Fatalf("grid=%v: sequence lengths differ: %d vs %d", useGrid, len(seq1), len(seq8))
		}
		for k := range seq1 {
			if seq1[k] != seq8[k] {
				t.Fatalf("grid=%v: merge %d = %v (1 proc) != %v (8 procs)", useGrid, k, seq1[k], seq8[k])
			}
		}
	}
}

// TestGridPairerScans: the grid must do asymptotically less pairing work
// than the oracle on a uniform instance.
func TestGridPairerScans(t *testing.T) {
	pts := uniformPts(2000, 5)
	p := append([]geom.UV(nil), pts...)
	boxAt := func(id int) geom.Rect { return geom.RectFromUV(p[id]) }
	dist := func(i, j int) float64 { return geom.DistUV(p[i], p[j]) }
	run := func(pairer order.Pairer) int64 {
		q := order.New(order.Config{Strategy: order.Multi, Pairer: pairer}, len(pts), dist)
		for {
			i, j, ok := q.Next()
			if !ok {
				break
			}
			p = append(p, geom.UV{U: (p[i].U + p[j].U) / 2, V: (p[i].V + p[j].V) / 2})
			q.Merged(len(p) - 1)
		}
		return q.Scans()
	}
	boxes := make([]geom.Rect, len(pts))
	for i := range boxes {
		boxes[i] = boxAt(i)
	}
	gridScans := run(NewGridPairer(AutoCell(boxes), boxAt, dist, nil))
	p = append([]geom.UV(nil), pts...)
	scanScans := run(nil)
	if gridScans <= 0 || scanScans <= 0 {
		t.Fatalf("scan counts not recorded: grid=%d scan=%d", gridScans, scanScans)
	}
	if gridScans*10 > scanScans {
		t.Errorf("grid did %d scans vs oracle %d — expected ≥10× fewer", gridScans, scanScans)
	}
	t.Logf("pair scans: grid %d vs oracle %d (%.1f×)", gridScans, scanScans,
		float64(scanScans)/float64(gridScans))
}
