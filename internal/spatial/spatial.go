// Package spatial provides a Manhattan-metric spatial index for the merging
// loci of DME-family clock routers, and the sub-quadratic nearest-partner
// engine (GridPairer) that plugs it into the merging queue of package order.
//
// # Geometry
//
// Items are geom.Rect bounding boxes in the 45°-rotated uv-plane, where the
// Manhattan (L1) distance of the physical plane is the L∞ gap between boxes
// (geom.DistRR). Router regions that are octagons (deferred merging regions)
// index by their u/v bounding rectangle: DistRR over the bounds lower-bounds
// the true octagon distance, which keeps grid pruning sound while the
// router's own distance function stays exact.
//
// # Grid
//
// The index is a uniform bucket grid, after Edahiro's bucket decomposition
// for greedy-DME: square cells of edge `cell`, each holding the ids of the
// items whose boxes overlap it. Insert and Delete are incremental, so merged
// subtrees retire and their replacements register without re-indexing. Items
// spanning more than maxSpanCells cells go to a small overflow list that
// every query scans linearly — oversized regions appear near the top of the
// merge tree, when few items are live, so the list stays short.
//
// Queries run an expanding ring search. Cells at Chebyshev ring r around the
// query's own cells lie at L∞ distance ≥ (r−1)·cell from the query box, so
// the search stops as soon as the best key found under-runs the next ring's
// lower bound. Exactness therefore requires the candidate key to dominate
// the bounding-box distance: true for plain distance (greedy-DME, classic
// DME) and for the router's snaking-aware merge keys, which only add
// non-negative elongation excess to the distance. Keys that can drop below
// the distance (the delay-target bias enhancement) defeat the pruning bound,
// and the router falls back to the all-pairs oracle for them.
//
// Exact key ties break toward the smallest item id. Ties are always visited
// before pruning cuts in (the ring bound is strict), so the tie-break is
// global, matching the all-pairs scan and keeping runs reproducible.
package spatial

import (
	"math"
	"sync/atomic"

	"repro/internal/geom"
)

// maxSpanCells caps the number of grid cells one item may occupy before it
// is moved to the linearly-scanned overflow list.
const maxSpanCells = 64

type cellKey struct{ u, v int32 }

// itemSpan records where an item was filed so Delete can unfile it.
type itemSpan struct {
	cu0, cu1, cv0, cv1 int32
	overflow           bool
	live               bool
}

// Index is the uniform bucket grid. Insert and Delete must be called from a
// single goroutine; Nearest and KNearest are safe to call concurrently with
// each other (but not with Insert/Delete), which the batch pairing of
// GridPairer relies on.
type Index struct {
	cell  float64
	cells map[cellKey][]int32
	spans []itemSpan
	boxes []geom.Rect
	over  []int32 // ids of oversized items
	n     int

	// Cell-coordinate bounds of every bucketed insert ever made, clamping
	// the ring enumeration. They only grow; deletes do not shrink them.
	bounded            bool
	gu0, gu1, gv0, gv1 int32

	scans atomic.Int64
}

// New returns an empty index with the given cell edge (≤ 0 selects 1).
func New(cell float64) *Index {
	if !(cell > 0) {
		cell = 1
	}
	return &Index{cell: cell, cells: make(map[cellKey][]int32)}
}

// AutoCell returns a cell edge targeting about one item per cell: the larger
// edge of the boxes' common bounding box divided by √n. Degenerate inputs
// (no extent) yield 1.
func AutoCell(boxes []geom.Rect) float64 {
	if len(boxes) == 0 {
		return 1
	}
	bb := boxes[0]
	for _, r := range boxes[1:] {
		bb = geom.Union(bb, r)
	}
	edge := math.Max(bb.Width(), bb.Height())
	cell := edge / math.Ceil(math.Sqrt(float64(len(boxes))))
	if !(cell > 0) {
		return 1
	}
	return cell
}

func (x *Index) cellIdx(v float64) int32 {
	return int32(math.Floor(v / x.cell))
}

// Len returns the number of live items.
func (x *Index) Len() int { return x.n }

// Box returns the bounding box item id was inserted with.
func (x *Index) Box(id int) geom.Rect { return x.boxes[id] }

// Scans reports the cumulative number of candidate evaluations across all
// queries.
func (x *Index) Scans() int64 { return x.scans.Load() }

// Insert files item id under bounding box r. Ids may be sparse and only
// grow; re-inserting a live id refiles it under the new box.
func (x *Index) Insert(id int, r geom.Rect) {
	for len(x.spans) <= id {
		x.spans = append(x.spans, itemSpan{})
		x.boxes = append(x.boxes, geom.Rect{})
	}
	if x.spans[id].live {
		x.Delete(id)
	}
	x.boxes[id] = r
	sp := itemSpan{
		cu0: x.cellIdx(r.ULo), cu1: x.cellIdx(r.UHi),
		cv0: x.cellIdx(r.VLo), cv1: x.cellIdx(r.VHi),
		live: true,
	}
	if (int64(sp.cu1-sp.cu0)+1)*(int64(sp.cv1-sp.cv0)+1) > maxSpanCells {
		sp.overflow = true
		x.over = append(x.over, int32(id))
	} else {
		for cu := sp.cu0; cu <= sp.cu1; cu++ {
			for cv := sp.cv0; cv <= sp.cv1; cv++ {
				k := cellKey{cu, cv}
				x.cells[k] = append(x.cells[k], int32(id))
			}
		}
		if !x.bounded {
			x.bounded = true
			x.gu0, x.gu1, x.gv0, x.gv1 = sp.cu0, sp.cu1, sp.cv0, sp.cv1
		} else {
			x.gu0 = min32(x.gu0, sp.cu0)
			x.gu1 = max32(x.gu1, sp.cu1)
			x.gv0 = min32(x.gv0, sp.cv0)
			x.gv1 = max32(x.gv1, sp.cv1)
		}
	}
	x.spans[id] = sp
	x.n++
}

// Delete unfiles item id. Deleting a dead or unknown id is a no-op.
func (x *Index) Delete(id int) {
	if id < 0 || id >= len(x.spans) || !x.spans[id].live {
		return
	}
	sp := x.spans[id]
	if sp.overflow {
		for k, v := range x.over {
			if v == int32(id) {
				last := len(x.over) - 1
				x.over[k] = x.over[last]
				x.over = x.over[:last]
				break
			}
		}
	} else {
		for cu := sp.cu0; cu <= sp.cu1; cu++ {
			for cv := sp.cv0; cv <= sp.cv1; cv++ {
				k := cellKey{cu, cv}
				bucket := x.cells[k]
				for b, v := range bucket {
					if v == int32(id) {
						last := len(bucket) - 1
						bucket[b] = bucket[last]
						x.cells[k] = bucket[:last]
						break
					}
				}
			}
		}
	}
	x.spans[id].live = false
	x.n--
}

// Nearest returns the live item minimizing key(id), excluding ids for which
// skip returns true. For the ring pruning to be exact, key(id) must be ≥ the
// bounding-box distance DistRR(q, Box(id)) — pass the true pair distance, or
// any distance-dominating merge key. Exact key ties break toward the
// smallest id. ok is false when no candidate exists.
//
// Items spanning several cells may be evaluated more than once (the ring
// walk does not deduplicate); key must therefore be pure, which also makes
// Nearest safe to call from concurrent goroutines between index mutations.
func (x *Index) Nearest(q geom.Rect, skip func(int) bool, key func(id int) float64) (best int, bestKey float64, ok bool) {
	best, bestKey = -1, math.Inf(1)
	var scans int64
	consider := func(id32 int32) {
		id := int(id32)
		if skip != nil && skip(id) {
			return
		}
		scans++
		k := key(id)
		if k < bestKey || (k == bestKey && id < best) {
			best, bestKey = id, k
		}
	}
	for _, id := range x.over {
		consider(id)
	}
	if x.bounded {
		qu0, qu1 := x.cellIdx(q.ULo), x.cellIdx(q.UHi)
		qv0, qv1 := x.cellIdx(q.VLo), x.cellIdx(q.VHi)
		visit := func(u0, u1, v0, v1 int32) {
			u0, u1 = max32(u0, x.gu0), min32(u1, x.gu1)
			v0, v1 = max32(v0, x.gv0), min32(v1, x.gv1)
			for cu := u0; cu <= u1; cu++ {
				for cv := v0; cv <= v1; cv++ {
					for _, id := range x.cells[cellKey{cu, cv}] {
						consider(id)
					}
				}
			}
		}
		for r := int32(0); ; r++ {
			// Ring r cells are ≥ (r−1)·cell away from the query box; stop
			// once no unvisited cell can beat the best key. The bound is
			// strict, so equal-key candidates are always visited and the
			// smallest-id tie-break is global.
			if best >= 0 && float64(r-1)*x.cell > bestKey {
				break
			}
			if r == 0 {
				visit(qu0, qu1, qv0, qv1)
			} else {
				visit(qu0-r, qu1+r, qv0-r, qv0-r)     // bottom strip
				visit(qu0-r, qu1+r, qv1+r, qv1+r)     // top strip
				visit(qu0-r, qu0-r, qv0-r+1, qv1+r-1) // left column
				visit(qu1+r, qu1+r, qv0-r+1, qv1+r-1) // right column
			}
			if qu0-r <= x.gu0 && qu1+r >= x.gu1 && qv0-r <= x.gv0 && qv1+r >= x.gv1 {
				break // every bucketed cell visited
			}
		}
	}
	x.scans.Add(scans)
	if best < 0 {
		return -1, 0, false
	}
	return best, bestKey, true
}

// KNearest returns up to k live item ids ordered by ascending bounding-box
// distance to q (exact ties by ascending id), excluding skipped ids. Unlike
// Nearest it ranks by DistRR of the stored boxes directly, which is exact
// for rectangle items (merging segments) and a lower-bound ranking for
// octagon regions indexed by their bounds.
func (x *Index) KNearest(q geom.Rect, k int, skip func(int) bool) []int {
	if k <= 0 {
		return nil
	}
	type cand struct {
		d  float64
		id int
	}
	var heapC []cand // max-heap of the k best so far, worst at [0]
	less := func(a, b cand) bool {
		if a.d != b.d {
			return a.d < b.d
		}
		return a.id < b.id
	}
	down := func() {
		i := 0
		for {
			l, r := 2*i+1, 2*i+2
			w := i
			if l < len(heapC) && less(heapC[w], heapC[l]) {
				w = l
			}
			if r < len(heapC) && less(heapC[w], heapC[r]) {
				w = r
			}
			if w == i {
				return
			}
			heapC[i], heapC[w] = heapC[w], heapC[i]
			i = w
		}
	}
	up := func() {
		i := len(heapC) - 1
		for i > 0 {
			p := (i - 1) / 2
			if !less(heapC[p], heapC[i]) {
				return
			}
			heapC[i], heapC[p] = heapC[p], heapC[i]
			i = p
		}
	}
	seen := make(map[int]bool)
	var scans int64
	consider := func(id32 int32) {
		id := int(id32)
		if seen[id] || (skip != nil && skip(id)) {
			return
		}
		seen[id] = true
		scans++
		c := cand{d: geom.DistRR(q, x.boxes[id]), id: id}
		if len(heapC) < k {
			heapC = append(heapC, c)
			up()
		} else if less(c, heapC[0]) {
			heapC[0] = c
			down()
		}
	}
	for _, id := range x.over {
		consider(id)
	}
	if x.bounded {
		qu0, qu1 := x.cellIdx(q.ULo), x.cellIdx(q.UHi)
		qv0, qv1 := x.cellIdx(q.VLo), x.cellIdx(q.VHi)
		visit := func(u0, u1, v0, v1 int32) {
			u0, u1 = max32(u0, x.gu0), min32(u1, x.gu1)
			v0, v1 = max32(v0, x.gv0), min32(v1, x.gv1)
			for cu := u0; cu <= u1; cu++ {
				for cv := v0; cv <= v1; cv++ {
					for _, id := range x.cells[cellKey{cu, cv}] {
						consider(id)
					}
				}
			}
		}
		for r := int32(0); ; r++ {
			if len(heapC) == k && float64(r-1)*x.cell > heapC[0].d {
				break
			}
			if r == 0 {
				visit(qu0, qu1, qv0, qv1)
			} else {
				visit(qu0-r, qu1+r, qv0-r, qv0-r)
				visit(qu0-r, qu1+r, qv1+r, qv1+r)
				visit(qu0-r, qu0-r, qv0-r+1, qv1+r-1)
				visit(qu1+r, qu1+r, qv0-r+1, qv1+r-1)
			}
			if qu0-r <= x.gu0 && qu1+r >= x.gu1 && qv0-r <= x.gv0 && qv1+r >= x.gv1 {
				break
			}
		}
	}
	x.scans.Add(scans)
	// Heap-sort ascending.
	out := make([]int, len(heapC))
	for i := len(heapC) - 1; i >= 0; i-- {
		out[i] = heapC[0].id
		last := len(heapC) - 1
		heapC[0] = heapC[last]
		heapC = heapC[:last]
		down()
	}
	return out
}

func min32(a, b int32) int32 {
	if a < b {
		return a
	}
	return b
}

func max32(a, b int32) int32 {
	if a > b {
		return a
	}
	return b
}
