// Package spatial provides a Manhattan-metric spatial index for the merging
// loci of DME-family clock routers, and the sub-quadratic nearest-partner
// engine (GridPairer) that plugs it into the merging queue of package order.
//
// # Geometry
//
// Items are geom.Rect bounding boxes in the 45°-rotated uv-plane, where the
// Manhattan (L1) distance of the physical plane is the L∞ gap between boxes
// (geom.DistRR). Router regions that are octagons (deferred merging regions)
// index by their u/v bounding rectangle: DistRR over the bounds lower-bounds
// the true octagon distance, which keeps grid pruning sound while the
// router's own distance function stays exact.
//
// # Grid
//
// The index is a uniform bucket grid, after Edahiro's bucket decomposition
// for greedy-DME: square cells of edge `cell` over a dense array window,
// each holding the ids of the items whose boxes overlap it. Items whose
// boxes fall outside the window are filed clamped to the window edge, which
// is sound (they are discovered no later than their true distance warrants)
// and self-correcting (enough clamped items trigger a re-windowing rebuild).
// Items spanning more than maxSpanCells cells go to a small overflow list
// that every query scans linearly — oversized regions appear near the top of
// the merge tree, when few items are live, so the list stays short.
//
// # Amortized deletion and re-cell
//
// Delete is a tombstone: the item is marked dead in O(1) and its bucket
// entries are purged lazily, either when dead entries outnumber live ones
// (a full sweep, amortized O(1) per delete) or at the next rebuild. Queries
// skip dead entries. The grid re-cells itself as the live set evolves, on
// two complementary triggers: when the live count falls to half its peak
// since the last build — merge rounds halve the live set and fatten the
// survivors — and when the measured scan rate degrades, i.e. a rolling
// window of queries averages more than scanRateFactor times the candidate
// evaluations per query measured just after the last rebuild (the
// population schedule alone can leave the grid mis-celled for a long
// stretch when the live-drop threshold lands at an unlucky phase; the
// scan-rate trigger watches the actual query work instead). Rebuilds re-fit
// the window and re-measure the cell with DensityCell, keeping bucket
// occupancy near the sweet spot on clustered (power-law) placements where a
// global extent/√n cell is far too coarse for the dense clusters. All
// rebuild triggers are driven by deterministic counters — maintained by the
// single mutating goroutine, or (the query counters) read only between
// mutations — and cell size never affects query results, so merge sequences
// remain exactly reproducible. Rebuilds are counted by trigger in
// RebuildStats (see Rebuilds), which the router surfaces in its run stats.
//
// Queries run an expanding ring search. Cells at Chebyshev ring r around the
// query's own cells lie at L∞ distance ≥ (r−1)·cell from the query box, so
// the search stops as soon as the best key found under-runs the next ring's
// lower bound. Exactness therefore requires the candidate key to dominate
// the bounding-box distance: true for plain distance (greedy-DME, classic
// DME) and for the router's snaking-aware merge keys, which only add
// non-negative elongation excess to the distance. Keys that can drop below
// the distance (the delay-target bias enhancement) defeat the pruning bound,
// and the router falls back to the all-pairs oracle for them.
//
// Exact key ties break toward the smallest item id. Ties are always visited
// before pruning cuts in (the ring bound is strict), so the tie-break is
// global, matching the all-pairs scan and keeping runs reproducible.
package spatial

import (
	"math"
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/geom"
	"repro/internal/obs"
)

// maxSpanCells caps the number of grid cells one item may occupy before it
// is moved to the linearly-scanned overflow list.
const maxSpanCells = 64

// Rebuild-policy constants. The thresholds are deliberately coarse powers of
// two: every trigger is amortized against the mutations that tripped it.
const (
	// windowPad inflates a rebuilt window by this many cells per side, so
	// regions drifting slightly past the live bounding box stay unclamped.
	windowPad = 2
	// purgeSlack delays the dead-entry sweep until tombstones outnumber
	// live filed entries by this margin (avoids thrashing tiny indices).
	purgeSlack = 64
	// clampSlack is the minimum number of edge-clamped live items before a
	// re-windowing rebuild is considered.
	clampSlack = 32
	// recellMinLive disables re-cell rebuilds for tiny live sets, where any
	// cell size is fine and rebuild bookkeeping would dominate.
	recellMinLive = 32
	// maxCellsPerItem caps the dense window at this many cells per live
	// item; DensityCell's estimate is floored so the array stays O(n).
	maxCellsPerItem = 8

	// Scan-rate rebuild policy (see maybeRebuild and scanRateExceeded).
	// The live-drop trigger re-cells on a fixed population schedule and
	// trusts DensityCell's estimate outright; when that estimate runs too
	// coarse for an instance — measured on the power-law 50k circuit,
	// whose candidate evaluations per query ran ~5× the 100k circuit's
	// from the very first round — every bucket of the hot clusters is fat
	// and stays fat through every scheduled rebuild. The scan-rate trigger
	// watches the work directly: after each rebuild the mean candidate
	// evaluations per query over the first scanBaselineQueries queries
	// become the baseline, and whenever a later window of scanRateWindow
	// queries averages more than scanRateFactor times that baseline —
	// clamped into [scanRateFloor, scanRateCap], so noise on a cheap grid
	// never fires and a baseline that is itself degenerate cannot excuse
	// the degeneracy — the index re-cells with the cell estimate trimmed
	// by half (cellTrim, floored at cellTrimMin: the scan counter only
	// sees candidate evaluations, so a too-fine cell — whose cost is
	// walking empty cells — must be bounded a priori). The trim persists
	// across later live-drop rebuilds; the feedback is self-limiting
	// because a successful trim drops the measured rate below the
	// re-trigger threshold.
	scanBaselineQueries = 64
	scanRateWindow      = 256
	scanRateFactor      = 3
	// scanRateFloor/scanRateCap clamp the firing threshold (candidate
	// evaluations per query). A well-celled grid measures ~2-4 items per
	// visited bucket over ~9-12 visited cells, i.e. ~32/query; below that
	// a 3×-baseline excess is noise, and a rolling mean beyond 3× that
	// norm indicates fat buckets no matter what the baseline says.
	scanRateFloor = 32
	scanRateCap   = 96
	// cellTrimMin bounds the persistent cell-estimate trim.
	cellTrimMin = 0.25

	// Cell-walk (un-trim) policy: the scan counter only sees candidate
	// evaluations, so it is blind to the cost of an over-fine grid — rings
	// of empty cells walked per query. The cell-walk trigger watches that
	// cost directly (cells visited per query, same baseline/window cadence
	// as the scan trigger) and, when it fires on a trimmed grid, doubles
	// cellTrim back toward 1 and re-cells: the trim that once paid for
	// itself (fat clusters) can turn persistently over-fine as the live set
	// thins and regions fatten. The trigger is armed only while
	// cellTrim < 1 — an untrimmed grid walking many cells means DensityCell
	// itself chose that cell, and doubling past its estimate is not this
	// trigger's business. cellWalkFloor is the minimum cells/query worth
	// reacting to (a well-celled query walks ~9-25); cellWalkCap is the
	// absolute arm applied to the baseline chunk itself, mirroring
	// scanRateCap (a static over-fine grid never drifts 3× beyond its own
	// baseline, so only the absolute arm can catch it).
	cellWalkFloor = 64
	cellWalkCap   = 256
)

// rateSignal classifies the query-rate trigger's verdict.
type rateSignal int

const (
	rateNone   rateSignal = iota
	rateCoarse            // candidate scans/query degraded: cell too coarse
	rateFine              // cells walked/query degraded on a trimmed grid: cell too fine
)

// RebuildStats counts index rebuilds by trigger: the live count halving
// (LiveDrop), too many items clamped at the window edge (EdgeClamp), the
// rolling candidate-scan rate exceeding the post-rebuild baseline
// (ScanRate: cell too coarse, trim halved), and the rolling cells-walked
// rate exceeding it on a trimmed grid (CellWalk: cell too fine, trim
// doubled back toward 1).
type RebuildStats struct {
	LiveDrop, EdgeClamp, ScanRate, CellWalk int
}

// Total returns the total rebuild count.
func (r RebuildStats) Total() int { return r.LiveDrop + r.EdgeClamp + r.ScanRate + r.CellWalk }

// Add accumulates another index's rebuild counts (aggregation across the
// per-shard indices of a sharded run).
func (r *RebuildStats) Add(o RebuildStats) {
	r.LiveDrop += o.LiveDrop
	r.EdgeClamp += o.EdgeClamp
	r.ScanRate += o.ScanRate
	r.CellWalk += o.CellWalk
}

// spanState tracks how an item relates to the bucket array.
type spanState uint8

const (
	spanEmpty spanState = iota // not filed anywhere
	spanLive                   // filed and alive
	spanTomb                   // dead, bucket entries not yet purged
)

// itemSpan records where an item was filed so refiles and rebuilds can
// unfile it. Cell coordinates are window-relative and already clamped.
type itemSpan struct {
	cu0, cu1, cv0, cv1 int32
	overflow           bool
	state              spanState
}

// cellCount returns the number of bucket entries the span occupies.
func (sp itemSpan) cellCount() int {
	if sp.overflow {
		return 0
	}
	return int(sp.cu1-sp.cu0+1) * int(sp.cv1-sp.cv0+1)
}

// Index is the uniform bucket grid. Insert and Delete must be called from a
// single goroutine; Nearest, NearestScored and KNearest are safe to call
// concurrently with each other (but not with Insert/Delete), which the batch
// pairing of GridPairer relies on.
type Index struct {
	cell float64
	// Window: cells[cu + cv*w] holds the bucket of window-relative cell
	// (cu, cv); (ou, ov) is the absolute cell coordinate of (0, 0).
	ou, ov int32
	w, h   int32
	cells  [][]int32
	spans  []itemSpan
	boxes  []geom.Rect
	over   []int32 // ids of oversized items (eagerly maintained)
	n      int     // live items

	// Amortization counters (single-writer).
	liveFiled int // bucket entries of live items
	deadFiled int // bucket entries of tombstoned items
	clamped   int // live inserts clamped at the window edge since last build
	peakLive  int // max live count since last rebuild (re-cell trigger)

	// Query-rate trigger state (single-writer; the cumulative counters it
	// reads are atomics, but they are only inspected between mutations,
	// after all concurrent queries have completed, so every decision is
	// deterministic). buildQueries/buildScans/buildCells snapshot the
	// cumulative counters at the last rebuild; baseRate and baseCellRate
	// are the post-rebuild baselines (scans/query and cells-walked/query;
	// 0 while still being established); ckQueries/ckScans/ckCells
	// checkpoint the rolling window shared by both directions.
	buildQueries, buildScans, buildCells int64
	baseRate, baseCellRate               float64
	ckQueries, ckScans, ckCells          int64
	// cellTrim scales every DensityCell estimate; scan-rate rebuilds halve
	// it (down to cellTrimMin) when the measured rate says the estimate
	// runs too coarse for this instance. 0 means 1 (never trimmed).
	cellTrim float64

	rebuilds RebuildStats
	// rebuildTime accumulates wall time spent inside rebuild. Measured
	// unconditionally (two clock reads per rebuild, no allocations) so
	// traced callers can attribute pairing time to index maintenance.
	rebuildTime time.Duration

	countBuf []int32 // bulk-fill scratch: per-cell entry counts

	// entrySlab backs bucket growth: when an append outgrows a bucket's
	// capacity, the doubled backing comes from this chunked slab instead of
	// its own heap allocation. After a bulk build every bucket sits at exact
	// capacity, so without the slab nearly every post-build insert pays a
	// malloc; with it, growth costs only the copy. Abandoned backings (the
	// outgrown originals, and every bucket on rebuild) simply become garbage
	// with their chunk.
	entrySlab []int32

	scans       atomic.Int64
	queries     atomic.Int64 // Nearest/NearestScored/KNearest calls (rate triggers)
	cellsWalked atomic.Int64 // grid cells visited across all queries (cell-walk trigger)
}

// New returns an empty index with the given cell edge (≤ 0 selects 1). The
// window is established from the first insert and re-fitted by amortized
// rebuilds as items land outside it; callers that know the population up
// front should prefer NewBounded, which avoids the warm-up rebuilds.
func New(cell float64) *Index {
	if !(cell > 0) {
		cell = 1
	}
	return &Index{cell: cell}
}

// NewBounded returns an empty index presized to the given bounding box, so
// inserts within it never trigger a re-windowing rebuild.
func NewBounded(cell float64, bb geom.Rect) *Index {
	x := New(cell)
	x.setWindow(x.cellIdx(bb.ULo)-windowPad, x.cellIdx(bb.UHi)+windowPad,
		x.cellIdx(bb.VLo)-windowPad, x.cellIdx(bb.VHi)+windowPad)
	return x
}

// AutoCell returns a cell edge targeting about one item per cell: the larger
// edge of the boxes' common bounding box divided by √n. Degenerate inputs
// (no extent) yield 1. For clustered placements DensityCell adapts better.
func AutoCell(boxes []geom.Rect) float64 {
	if len(boxes) == 0 {
		return 1
	}
	bb := boundsOf(boxes)
	edge := math.Max(bb.Width(), bb.Height())
	cell := edge / math.Ceil(math.Sqrt(float64(len(boxes))))
	if !(cell > 0) {
		return 1
	}
	return cell
}

// DensityCell estimates a cell edge from the measured point density instead
// of the global extent: it samples up to 256 boxes at a fixed stride,
// computes each sample's nearest-neighbor distance within the sample, takes
// the 25th percentile (biasing toward the dense regions that dominate query
// cost), and rescales by √(sample/n) — nearest-neighbor spacing scales with
// 1/√density, so the thinned sample overestimates it by exactly that
// factor. The estimate is floored so the dense window stays at most
// maxCellsPerItem cells per item, and raised to the samples' median box
// edge so fattened regions keep spanning O(1) cells. On uniform placements
// this lands near AutoCell; on power-law placements it is several times
// finer, which keeps the hot clusters' buckets small.
func DensityCell(boxes []geom.Rect) float64 {
	n := len(boxes)
	if n == 0 {
		return 1
	}
	bb := boundsOf(boxes)
	// Sample size: capped at 256, scaled down as 4√n for small populations
	// so the O(s²) pass stays a vanishing fraction of the build it serves.
	s := int(4 * math.Sqrt(float64(n)))
	if s > 256 {
		s = 256
	}
	if s < 16 {
		s = 16
	}
	if s > n {
		s = n
	}
	stride := n / s
	nn := make([]float64, 0, s)
	edges := make([]float64, 0, s)
	for a := 0; a < s; a++ {
		i := a * stride
		best := math.Inf(1)
		for b := 0; b < s; b++ {
			if b == a {
				continue
			}
			if d := geom.DistRR(boxes[i], boxes[b*stride]); d < best {
				best = d
			}
		}
		if !math.IsInf(best, 1) {
			nn = append(nn, best)
		}
		edges = append(edges, math.Max(boxes[i].Width(), boxes[i].Height()))
	}
	sort.Float64s(nn)
	sort.Float64s(edges)
	var cell float64
	if len(nn) > 0 {
		// 25th-percentile sample spacing, rescaled to the full population
		// and doubled: about 2-4 items per cell in the dense regions.
		cell = 2 * nn[len(nn)/4] * math.Sqrt(float64(s)/float64(n))
	}
	// Floor: keep the dense window at O(n) cells.
	area := bb.Width() * bb.Height()
	if floor := math.Sqrt(area / float64(maxCellsPerItem*n)); cell < floor {
		cell = floor
	}
	// Fat regions should span O(1) cells, not maxSpanCells.
	if med := edges[len(edges)/2]; cell < med {
		cell = med
	}
	if !(cell > 0) {
		return AutoCell(boxes)
	}
	return cell
}

func boundsOf(boxes []geom.Rect) geom.Rect {
	bb := boxes[0]
	for _, r := range boxes[1:] {
		bb = geom.Union(bb, r)
	}
	return bb
}

func (x *Index) cellIdx(v float64) int32 {
	return int32(math.Floor(v / x.cell))
}

// setWindow allocates the dense bucket array for absolute cell range
// [u0, u1] × [v0, v1].
func (x *Index) setWindow(u0, u1, v0, v1 int32) {
	x.ou, x.ov = u0, v0
	x.w, x.h = u1-u0+1, v1-v0+1
	x.cells = make([][]int32, int(x.w)*int(x.h))
}

// Len returns the number of live items.
func (x *Index) Len() int { return x.n }

// Cell returns the current cell edge (diagnostics; it changes on re-cell
// rebuilds).
func (x *Index) Cell() float64 { return x.cell }

// Box returns the bounding box item id was inserted with.
func (x *Index) Box(id int) geom.Rect { return x.boxes[id] }

// Scans reports the cumulative number of candidate evaluations across all
// queries.
func (x *Index) Scans() int64 { return x.scans.Load() }

// Rebuilds reports how many times the index rebuilt itself, by trigger.
func (x *Index) Rebuilds() RebuildStats { return x.rebuilds }

// RebuildTime reports the cumulative wall time spent rebuilding the index.
func (x *Index) RebuildTime() time.Duration { return x.rebuildTime }

// clampSpan converts box r to a window-relative, clamped cell span.
// clamped reports whether any side was cut by the window edge.
func (x *Index) clampSpan(r geom.Rect) (sp itemSpan, clamped bool) {
	cu0, cu1 := x.cellIdx(r.ULo)-x.ou, x.cellIdx(r.UHi)-x.ou
	cv0, cv1 := x.cellIdx(r.VLo)-x.ov, x.cellIdx(r.VHi)-x.ov
	if cu0 < 0 || cv0 < 0 || cu1 >= x.w || cv1 >= x.h {
		clamped = true
	}
	sp.cu0 = clamp32(cu0, 0, x.w-1)
	sp.cu1 = clamp32(cu1, sp.cu0, x.w-1)
	sp.cv0 = clamp32(cv0, 0, x.h-1)
	sp.cv1 = clamp32(cv1, sp.cv0, x.h-1)
	return sp, clamped
}

// file writes the span's id into its buckets.
func (x *Index) file(id int32, sp itemSpan) {
	for cv := sp.cv0; cv <= sp.cv1; cv++ {
		row := cv * x.w
		for cu := sp.cu0; cu <= sp.cu1; cu++ {
			x.appendEntry(row+cu, id)
		}
	}
}

// entrySlabMin is the chunk size (entries) of the bucket-growth slab.
const entrySlabMin = 1 << 14

// appendEntry appends id to bucket c, growing an out-of-capacity bucket out
// of the entry slab rather than a per-bucket heap allocation.
func (x *Index) appendEntry(c int32, id int32) {
	b := x.cells[c]
	if len(b) == cap(b) {
		n := 2 * len(b)
		if n < 4 {
			n = 4
		}
		if cap(x.entrySlab)-len(x.entrySlab) < n {
			sz := entrySlabMin
			if n > sz {
				sz = n
			}
			x.entrySlab = make([]int32, 0, sz)
		}
		l := len(x.entrySlab)
		nb := x.entrySlab[l : l+len(b) : l+n]
		x.entrySlab = x.entrySlab[:l+n]
		copy(nb, b)
		b = nb
	}
	x.cells[c] = append(b, id)
}

// unfile removes id's bucket (or overflow) entries eagerly, adjusting the
// filed counters for the span's previous state. Used on refile and on
// resurrecting a tombstoned id; bulk removal goes through purge/rebuild.
func (x *Index) unfile(id int) {
	sp := x.spans[id]
	if sp.state == spanEmpty {
		return
	}
	if sp.overflow {
		for k, v := range x.over {
			if v == int32(id) {
				last := len(x.over) - 1
				x.over[k] = x.over[last]
				x.over = x.over[:last]
				break
			}
		}
	} else {
		for cv := sp.cv0; cv <= sp.cv1; cv++ {
			row := cv * x.w
			for cu := sp.cu0; cu <= sp.cu1; cu++ {
				bucket := x.cells[row+cu]
				for b, v := range bucket {
					if v == int32(id) {
						last := len(bucket) - 1
						bucket[b] = bucket[last]
						x.cells[row+cu] = bucket[:last]
						break
					}
				}
			}
		}
		if sp.state == spanLive {
			x.liveFiled -= sp.cellCount()
		} else {
			x.deadFiled -= sp.cellCount()
		}
	}
	x.spans[id].state = spanEmpty
}

// Insert files item id under bounding box r. Ids may be sparse and only
// grow; re-inserting a live id refiles it under the new box.
func (x *Index) Insert(id int, r geom.Rect) {
	for len(x.spans) <= id {
		x.spans = append(x.spans, itemSpan{})
		x.boxes = append(x.boxes, geom.Rect{})
	}
	switch x.spans[id].state {
	case spanLive:
		x.unfile(id)
		x.n--
	case spanTomb:
		// Resurrected id: drop the stale tombstoned entries now, or the
		// purge sweep would mistake them for the new live filing.
		x.unfile(id)
	}
	x.boxes[id] = r
	if x.w == 0 {
		x.setWindow(x.cellIdx(r.ULo)-windowPad, x.cellIdx(r.UHi)+windowPad,
			x.cellIdx(r.VLo)-windowPad, x.cellIdx(r.VHi)+windowPad)
	}
	sp, clamped := x.clampSpan(r)
	sp.state = spanLive
	if sp.cellCount() > maxSpanCells {
		sp.overflow = true
		x.over = append(x.over, int32(id))
	} else {
		x.file(int32(id), sp)
		x.liveFiled += sp.cellCount()
		if clamped {
			x.clamped++
		}
	}
	x.spans[id] = sp
	x.n++
	if x.n > x.peakLive {
		x.peakLive = x.n
	}
	x.maybeRebuild()
}

// InsertAll bulk-files boxes under ids 0..len(boxes)-1 into an empty or
// fresh index, equivalent to inserting them one by one but building every
// bucket at exact capacity in one counting pass (two allocations total
// instead of per-bucket append growth). Panics if any of the ids is
// already filed.
func (x *Index) InsertAll(boxes []geom.Rect) {
	if len(boxes) == 0 {
		return
	}
	for len(x.spans) < len(boxes) {
		x.spans = append(x.spans, itemSpan{})
		x.boxes = append(x.boxes, geom.Rect{})
	}
	ids := make([]int32, len(boxes))
	for i, r := range boxes {
		if x.spans[i].state != spanEmpty {
			panic("spatial: InsertAll over filed ids")
		}
		ids[i] = int32(i)
		x.boxes[i] = r
	}
	if x.w == 0 {
		bb := boundsOf(boxes)
		x.setWindow(x.cellIdx(bb.ULo)-windowPad, x.cellIdx(bb.UHi)+windowPad,
			x.cellIdx(bb.VLo)-windowPad, x.cellIdx(bb.VHi)+windowPad)
	}
	x.bulkFile(ids, boxes)
	x.n += len(boxes)
	if x.n > x.peakLive {
		x.peakLive = x.n
	}
}

// Delete unfiles item id. Deleting a dead or unknown id is a no-op. Bucket
// entries are tombstoned, not removed: the sweep happens lazily once dead
// entries outnumber live ones, so Delete is O(1) amortized regardless of
// how many cells the item spanned.
func (x *Index) Delete(id int) {
	if id < 0 || id >= len(x.spans) || x.spans[id].state != spanLive {
		return
	}
	sp := x.spans[id]
	if sp.overflow {
		x.unfile(id) // overflow list is scanned by every query: keep it tight
	} else {
		x.spans[id].state = spanTomb
		c := sp.cellCount()
		x.liveFiled -= c
		x.deadFiled += c
	}
	x.n--
	x.maybeRebuild()
}

// maybeRebuild applies the amortized maintenance policy; see the package
// comment. Called after every mutation; all triggers compare counters
// maintained by the single mutating goroutine — the scan-rate trigger also
// reads the cumulative query counters, which are stable between mutations —
// so behavior is deterministic.
func (x *Index) maybeRebuild() {
	switch {
	case x.n >= recellMinLive && 2*x.n <= x.peakLive:
		x.rebuilds.LiveDrop++
		x.rebuild(true)
	case x.clamped > clampSlack && 8*x.clamped > x.n:
		x.rebuilds.EdgeClamp++
		x.rebuild(false)
	default:
		switch x.rateTrigger() {
		case rateCoarse:
			x.rebuilds.ScanRate++
			if x.cellTrim == 0 {
				x.cellTrim = 1
			}
			if x.cellTrim > cellTrimMin {
				x.cellTrim /= 2
			}
			x.rebuild(true)
		case rateFine:
			x.rebuilds.CellWalk++
			if x.cellTrim *= 2; x.cellTrim > 1 {
				x.cellTrim = 1
			}
			x.rebuild(true)
		default:
			if x.deadFiled > x.liveFiled+purgeSlack {
				x.purge()
			}
		}
	}
}

// rateTrigger implements the bidirectional query-rate rebuild trigger. It
// establishes baselines — candidate scans/query and cells-walked/query —
// over the first scanBaselineQueries queries after a rebuild, then compares
// each subsequent scanRateWindow-query window's means against
// scanRateFactor times the baselines. The scan direction (cell too coarse)
// has its firing threshold clamped into [scanRateFloor, scanRateCap]; the
// cell-walk direction (cell too fine) fires only on a trimmed grid, above
// max(factor × baseline, cellWalkFloor), with the absolute cellWalkCap arm
// on the baseline chunk (see the policy constants). The coarse direction
// takes priority when both would fire. Advancing the baseline and window
// checkpoints mutates single-writer state, so this must only be called from
// the mutating goroutine (maybeRebuild).
func (x *Index) rateTrigger() rateSignal {
	if x.n < recellMinLive {
		return rateNone
	}
	qs, ss, cs := x.queries.Load(), x.scans.Load(), x.cellsWalked.Load()
	// Once the trim is floored, a rebuild cannot make the cell any finer:
	// the absolute arm is withdrawn (otherwise an instance whose intrinsic
	// rate exceeds the cap at every cell size would trip a futile O(n)
	// rebuild after every baseline window for the rest of the run), and
	// only genuine drift beyond the measured baseline can still fire.
	// Symmetrically, the fine direction is armed only while a trim is in
	// effect — undoing the trim is all it is allowed to do.
	trimFloored := x.cellTrim > 0 && x.cellTrim <= cellTrimMin
	trimmed := x.cellTrim > 0 && x.cellTrim < 1
	if x.baseRate == 0 {
		if dq := qs - x.buildQueries; dq >= scanBaselineQueries {
			x.baseRate = float64(ss-x.buildScans) / float64(dq)
			if x.baseRate < 1 {
				x.baseRate = 1 // degenerate windows: avoid a zero baseline
			}
			x.baseCellRate = float64(cs-x.buildCells) / float64(dq)
			if x.baseCellRate < 1 {
				x.baseCellRate = 1
			}
			x.ckQueries, x.ckScans, x.ckCells = qs, ss, cs
			// The absolute arms apply to the baseline chunk itself: the
			// router's queries arrive in one burst per merge round, and
			// population-triggered rebuilds can recur before a second
			// burst — if the first post-rebuild burst already runs beyond
			// a cap, waiting for a window to confirm it means never
			// firing at all.
			if x.baseRate > scanRateCap && !trimFloored {
				return rateCoarse
			}
			if trimmed && x.baseCellRate > cellWalkCap {
				return rateFine
			}
		}
		return rateNone
	}
	dq := qs - x.ckQueries
	if dq < scanRateWindow {
		return rateNone
	}
	scanRate := float64(ss-x.ckScans) / float64(dq)
	cellRate := float64(cs-x.ckCells) / float64(dq)
	x.ckQueries, x.ckScans, x.ckCells = qs, ss, cs
	threshold := scanRateFactor * x.baseRate
	if threshold < scanRateFloor {
		threshold = scanRateFloor
	}
	if threshold > scanRateCap && !trimFloored {
		threshold = scanRateCap
	}
	if scanRate > threshold {
		return rateCoarse
	}
	cellThreshold := scanRateFactor * x.baseCellRate
	if cellThreshold < cellWalkFloor {
		cellThreshold = cellWalkFloor
	}
	if trimmed && cellRate > cellThreshold {
		return rateFine
	}
	return rateNone
}

// purge sweeps tombstoned entries out of every bucket. Cost is one pass
// over the filed entries, amortized against the deletes that created them.
func (x *Index) purge() {
	for c, bucket := range x.cells {
		kept := bucket[:0]
		for _, id := range bucket {
			if x.spans[id].state == spanLive {
				kept = append(kept, id)
			}
		}
		x.cells[c] = kept
	}
	for id := range x.spans {
		if x.spans[id].state == spanTomb {
			x.spans[id].state = spanEmpty
		}
	}
	x.deadFiled = 0
}

// rebuild re-files every live item under a fresh window fitted to the live
// bounding box — with a re-measured DensityCell edge when recell is set —
// dropping all tombstones. Triggered when the live count halves (regions
// have fattened and thinned: time to re-adapt the cell) or when too many
// items sit clamped at the window edge.
func (x *Index) rebuild(recell bool) {
	start := obs.Now()
	defer func() { x.rebuildTime += obs.Since(start) }()
	live := make([]int32, 0, x.n)
	liveBoxes := make([]geom.Rect, 0, x.n)
	for id := range x.spans {
		if x.spans[id].state == spanLive {
			live = append(live, int32(id))
			liveBoxes = append(liveBoxes, x.boxes[id])
		} else {
			x.spans[id].state = spanEmpty
		}
	}
	x.over = x.over[:0]
	x.liveFiled, x.deadFiled, x.clamped = 0, 0, 0
	x.peakLive = x.n
	// Restart the query-rate triggers: new window, new cell, new baselines.
	x.buildQueries, x.buildScans, x.buildCells = x.queries.Load(), x.scans.Load(), x.cellsWalked.Load()
	x.baseRate, x.ckQueries, x.ckScans = 0, 0, 0
	x.baseCellRate, x.ckCells = 0, 0
	if len(live) == 0 {
		x.w, x.h, x.cells = 0, 0, nil
		return
	}
	if recell && len(live) >= recellMinLive {
		x.cell = DensityCell(liveBoxes)
		if x.cellTrim > 0 {
			x.cell *= x.cellTrim
		}
	}
	bb := boundsOf(liveBoxes)
	x.setWindow(x.cellIdx(bb.ULo)-windowPad, x.cellIdx(bb.UHi)+windowPad,
		x.cellIdx(bb.VLo)-windowPad, x.cellIdx(bb.VHi)+windowPad)
	x.bulkFile(live, liveBoxes)
}

// bulkFile files the given items into the (fresh) bucket array with a
// counting pass over one flat backing slice, instead of growing each bucket
// by appends: two allocations however many cells and items are involved.
func (x *Index) bulkFile(ids []int32, boxes []geom.Rect) {
	if cap(x.countBuf) < len(x.cells) {
		x.countBuf = make([]int32, len(x.cells))
	}
	counts := x.countBuf[:len(x.cells)]
	for i := range counts {
		counts[i] = 0
	}
	total := 0
	for k, id := range ids {
		sp, _ := x.clampSpan(boxes[k])
		sp.state = spanLive
		if sp.cellCount() > maxSpanCells {
			sp.overflow = true
			x.over = append(x.over, id)
		} else {
			total += sp.cellCount()
			for cv := sp.cv0; cv <= sp.cv1; cv++ {
				row := cv * x.w
				for cu := sp.cu0; cu <= sp.cu1; cu++ {
					counts[row+cu]++
				}
			}
		}
		x.spans[id] = sp
	}
	flat := make([]int32, 0, total)
	for c, cnt := range counts {
		if cnt > 0 {
			// Length 0, capacity cnt: x.file appends in place.
			x.cells[c] = flat[len(flat) : len(flat) : len(flat)+int(cnt)]
			flat = flat[:len(flat)+int(cnt)]
		}
	}
	for _, id := range ids {
		sp := x.spans[id]
		if !sp.overflow {
			x.file(id, sp)
			x.liveFiled += sp.cellCount()
		}
	}
}

// Keyer scores candidate items against a fixed query item. It exists so the
// hot pairing path can run without allocating per-query closures: the
// implementation (typically a pairer) is bound once and reused for every
// query.
type Keyer interface {
	// PairKey returns the pair priority of (self, cand). For exact ring
	// pruning it must be ≥ DistRR of the two items' boxes.
	PairKey(self, cand int) float64
}

// NearestScored returns the live item minimizing k.PairKey(self, ·),
// excluding self and dead items. Exact key ties break toward the smallest
// id; ok is false when no candidate exists. The query box is self's own
// stored box. Items spanning several cells may be evaluated more than once
// (the ring walk does not deduplicate), so PairKey must be pure — which
// also makes NearestScored safe to call from concurrent goroutines between
// index mutations.
func (x *Index) NearestScored(self int, k Keyer) (best int, bestKey float64, ok bool) {
	q := x.boxes[self]
	best, bestKey = -1, math.Inf(1)
	x.queries.Add(1)
	var scans, cells int64
	for _, id32 := range x.over {
		id := int(id32)
		if id == self {
			continue
		}
		scans++
		if key := k.PairKey(self, id); key < bestKey || (key == bestKey && id < best) {
			best, bestKey = id, key
		}
	}
	if x.w > 0 {
		qu0 := clamp32(x.cellIdx(q.ULo)-x.ou, 0, x.w-1)
		qu1 := clamp32(x.cellIdx(q.UHi)-x.ou, qu0, x.w-1)
		qv0 := clamp32(x.cellIdx(q.VLo)-x.ov, 0, x.h-1)
		qv1 := clamp32(x.cellIdx(q.VHi)-x.ov, qv0, x.h-1)
		for r := int32(0); ; r++ {
			// Ring r cells are ≥ (r−1)·cell away from the query box; stop
			// once no unvisited cell can beat the best key. The bound is
			// strict, so equal-key candidates are always visited and the
			// smallest-id tie-break is global.
			if best >= 0 && float64(r-1)*x.cell > bestKey {
				break
			}
			u0, u1 := qu0-r, qu1+r
			v0, v1 := qv0-r, qv1+r
			var strips [4][4]int32
			nstrips := x.ringStrips(&strips, u0, u1, v0, v1, r)
			for s := 0; s < nstrips; s++ {
				st := strips[s]
				for cv := st[2]; cv <= st[3]; cv++ {
					row := cv * x.w
					for cu := st[0]; cu <= st[1]; cu++ {
						cells++
						for _, id32 := range x.cells[row+cu] {
							id := int(id32)
							if id == self || x.spans[id].state != spanLive {
								continue
							}
							scans++
							if key := k.PairKey(self, id); key < bestKey || (key == bestKey && id < best) {
								best, bestKey = id, key
							}
						}
					}
				}
			}
			if u0 <= 0 && v0 <= 0 && u1 >= x.w-1 && v1 >= x.h-1 {
				break // every cell visited
			}
		}
	}
	x.scans.Add(scans)
	x.cellsWalked.Add(cells)
	if best < 0 {
		return -1, 0, false
	}
	return best, bestKey, true
}

// ringStrips writes the window-clamped cell strips of Chebyshev ring r
// around [u0+r, u1−r] × [v0+r, v1−r] (i.e. the expanded box minus its
// interior) into strips, returning how many are non-empty. Ring 0 is the
// whole query box. Each strip is {cu0, cu1, cv0, cv1}.
//
// The surrounding expanding-ring loop is deliberately written out in each
// of NearestScored, Nearest and KNearest rather than abstracted behind a
// per-candidate callback: the candidate visit is the hot instruction of
// the whole router, and an escaping closure or interface dispatch here is
// exactly the per-query allocation the Keyer path exists to avoid. The
// three copies must stay in sync — in particular the strict ring bound
// ((r−1)·cell > best, which keeps smallest-id tie-breaking global) and the
// whole-window coverage break.
func (x *Index) ringStrips(strips *[4][4]int32, u0, u1, v0, v1, r int32) int {
	n := 0
	add := func(a0, a1, b0, b1 int32) {
		// Intersect with the window; strips entirely outside vanish.
		if a0 < 0 {
			a0 = 0
		}
		if a1 > x.w-1 {
			a1 = x.w - 1
		}
		if b0 < 0 {
			b0 = 0
		}
		if b1 > x.h-1 {
			b1 = x.h - 1
		}
		if a0 > a1 || b0 > b1 {
			return
		}
		strips[n] = [4]int32{a0, a1, b0, b1}
		n++
	}
	if r == 0 {
		add(u0, u1, v0, v1)
		return n
	}
	add(u0, u1, v0, v0)     // bottom strip
	add(u0, u1, v1, v1)     // top strip
	add(u0, u0, v0+1, v1-1) // left column
	add(u1, u1, v0+1, v1-1) // right column
	return n
}

// Nearest returns the live item minimizing key(id), excluding ids for which
// skip returns true. For the ring pruning to be exact, key(id) must be ≥ the
// bounding-box distance DistRR(q, Box(id)) — pass the true pair distance, or
// any distance-dominating merge key. Exact key ties break toward the
// smallest id. ok is false when no candidate exists.
//
// Items spanning several cells may be evaluated more than once (the ring
// walk does not deduplicate); key must therefore be pure, which also makes
// Nearest safe to call from concurrent goroutines between index mutations.
// Hot callers that query an indexed item against its peers should prefer
// NearestScored, which avoids the per-call closures.
func (x *Index) Nearest(q geom.Rect, skip func(int) bool, key func(id int) float64) (best int, bestKey float64, ok bool) {
	best, bestKey = -1, math.Inf(1)
	x.queries.Add(1)
	var scans, cells int64
	consider := func(id32 int32) {
		id := int(id32)
		if x.spans[id].state != spanLive {
			return
		}
		if skip != nil && skip(id) {
			return
		}
		scans++
		k := key(id)
		if k < bestKey || (k == bestKey && id < best) {
			best, bestKey = id, k
		}
	}
	for _, id := range x.over {
		consider(id)
	}
	if x.w > 0 {
		qu0 := clamp32(x.cellIdx(q.ULo)-x.ou, 0, x.w-1)
		qu1 := clamp32(x.cellIdx(q.UHi)-x.ou, qu0, x.w-1)
		qv0 := clamp32(x.cellIdx(q.VLo)-x.ov, 0, x.h-1)
		qv1 := clamp32(x.cellIdx(q.VHi)-x.ov, qv0, x.h-1)
		for r := int32(0); ; r++ {
			if best >= 0 && float64(r-1)*x.cell > bestKey {
				break
			}
			u0, u1 := qu0-r, qu1+r
			v0, v1 := qv0-r, qv1+r
			var strips [4][4]int32
			nstrips := x.ringStrips(&strips, u0, u1, v0, v1, r)
			for s := 0; s < nstrips; s++ {
				st := strips[s]
				for cv := st[2]; cv <= st[3]; cv++ {
					row := cv * x.w
					for cu := st[0]; cu <= st[1]; cu++ {
						cells++
						for _, id := range x.cells[row+cu] {
							consider(id)
						}
					}
				}
			}
			if u0 <= 0 && v0 <= 0 && u1 >= x.w-1 && v1 >= x.h-1 {
				break
			}
		}
	}
	x.scans.Add(scans)
	x.cellsWalked.Add(cells)
	if best < 0 {
		return -1, 0, false
	}
	return best, bestKey, true
}

// KNearest returns up to k live item ids ordered by ascending bounding-box
// distance to q (exact ties by ascending id), excluding skipped ids. Unlike
// Nearest it ranks by DistRR of the stored boxes directly, which is exact
// for rectangle items (merging segments) and a lower-bound ranking for
// octagon regions indexed by their bounds.
func (x *Index) KNearest(q geom.Rect, k int, skip func(int) bool) []int {
	if k <= 0 {
		return nil
	}
	// Counted like Nearest/NearestScored so the scan-rate trigger's
	// scans-per-query accounting stays consistent for mixed workloads
	// (a k-query legitimately evaluates more candidates, but omitting it
	// from the denominator would inflate the measured rate instead).
	x.queries.Add(1)
	type cand struct {
		d  float64
		id int
	}
	var heapC []cand // max-heap of the k best so far, worst at [0]
	less := func(a, b cand) bool {
		if a.d != b.d {
			return a.d < b.d
		}
		return a.id < b.id
	}
	down := func() {
		i := 0
		for {
			l, r := 2*i+1, 2*i+2
			w := i
			if l < len(heapC) && less(heapC[w], heapC[l]) {
				w = l
			}
			if r < len(heapC) && less(heapC[w], heapC[r]) {
				w = r
			}
			if w == i {
				return
			}
			heapC[i], heapC[w] = heapC[w], heapC[i]
			i = w
		}
	}
	up := func() {
		i := len(heapC) - 1
		for i > 0 {
			p := (i - 1) / 2
			if !less(heapC[p], heapC[i]) {
				return
			}
			heapC[i], heapC[p] = heapC[p], heapC[i]
			i = p
		}
	}
	seen := make(map[int]bool)
	var scans, cells int64
	consider := func(id32 int32) {
		id := int(id32)
		if x.spans[id].state != spanLive {
			return
		}
		if seen[id] || (skip != nil && skip(id)) {
			return
		}
		seen[id] = true
		scans++
		c := cand{d: geom.DistRR(q, x.boxes[id]), id: id}
		if len(heapC) < k {
			heapC = append(heapC, c)
			up()
		} else if less(c, heapC[0]) {
			heapC[0] = c
			down()
		}
	}
	for _, id := range x.over {
		consider(id)
	}
	if x.w > 0 {
		qu0 := clamp32(x.cellIdx(q.ULo)-x.ou, 0, x.w-1)
		qu1 := clamp32(x.cellIdx(q.UHi)-x.ou, qu0, x.w-1)
		qv0 := clamp32(x.cellIdx(q.VLo)-x.ov, 0, x.h-1)
		qv1 := clamp32(x.cellIdx(q.VHi)-x.ov, qv0, x.h-1)
		for r := int32(0); ; r++ {
			if len(heapC) == k && float64(r-1)*x.cell > heapC[0].d {
				break
			}
			u0, u1 := qu0-r, qu1+r
			v0, v1 := qv0-r, qv1+r
			var strips [4][4]int32
			nstrips := x.ringStrips(&strips, u0, u1, v0, v1, r)
			for s := 0; s < nstrips; s++ {
				st := strips[s]
				for cv := st[2]; cv <= st[3]; cv++ {
					row := cv * x.w
					for cu := st[0]; cu <= st[1]; cu++ {
						cells++
						for _, id := range x.cells[row+cu] {
							consider(id)
						}
					}
				}
			}
			if u0 <= 0 && v0 <= 0 && u1 >= x.w-1 && v1 >= x.h-1 {
				break
			}
		}
	}
	x.scans.Add(scans)
	x.cellsWalked.Add(cells)
	// Heap-sort ascending.
	out := make([]int, len(heapC))
	for i := len(heapC) - 1; i >= 0; i-- {
		out[i] = heapC[0].id
		last := len(heapC) - 1
		heapC[0] = heapC[last]
		heapC = heapC[:last]
		down()
	}
	return out
}

func clamp32(x, lo, hi int32) int32 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
