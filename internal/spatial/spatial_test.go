package spatial

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
)

// randRect returns a small random rectangle in uv-space.
func randRect(r *rand.Rand, span, ext float64) geom.Rect {
	u := r.Float64() * span
	v := r.Float64() * span
	return geom.Rect{ULo: u, UHi: u + r.Float64()*ext, VLo: v, VHi: v + r.Float64()*ext}
}

// bruteNearest is the oracle: linear scan over live boxes by DistRR.
func bruteNearest(boxes []geom.Rect, live []bool, q geom.Rect, skip func(int) bool) (int, float64) {
	best, bestD := -1, math.Inf(1)
	for j, alive := range live {
		if !alive || (skip != nil && skip(j)) {
			continue
		}
		d := geom.DistRR(q, boxes[j])
		if d < bestD || (d == bestD && j < best) {
			best, bestD = j, d
		}
	}
	return best, bestD
}

func TestNearestMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	const n = 300
	boxes := make([]geom.Rect, n)
	live := make([]bool, n)
	x := New(40) // span 1000 / ~25 cells
	for i := range boxes {
		boxes[i] = randRect(r, 1000, 30)
		live[i] = true
		x.Insert(i, boxes[i])
	}
	check := func() {
		for i := range boxes {
			if !live[i] {
				continue
			}
			skip := func(j int) bool { return j == i }
			wantJ, wantD := bruteNearest(boxes, live, boxes[i], skip)
			gotJ, gotD, ok := x.Nearest(boxes[i], skip, func(j int) float64 {
				return geom.DistRR(boxes[i], boxes[j])
			})
			if wantJ < 0 {
				if ok {
					t.Fatalf("item %d: got %d, want none", i, gotJ)
				}
				continue
			}
			if !ok || gotJ != wantJ || gotD != wantD {
				t.Fatalf("item %d: got (%d, %v), want (%d, %v)", i, gotJ, gotD, wantJ, wantD)
			}
		}
	}
	check()
	// Interleave deletes and re-inserts, re-checking invariants.
	for round := 0; round < 3; round++ {
		for k := 0; k < n/4; k++ {
			i := r.Intn(n)
			if live[i] {
				x.Delete(i)
				live[i] = false
			}
		}
		for k := 0; k < n/8; k++ {
			i := r.Intn(n)
			if !live[i] {
				boxes[i] = randRect(r, 1000, 30)
				x.Insert(i, boxes[i])
				live[i] = true
			}
		}
		check()
	}
}

func TestNearestOverflowItems(t *testing.T) {
	// Items far larger than maxSpanCells cells must still be found exactly.
	x := New(10)
	boxes := []geom.Rect{
		{ULo: 0, UHi: 5000, VLo: 0, VHi: 5000}, // oversized → overflow list
		{ULo: 6000, UHi: 6001, VLo: 0, VHi: 1},
		{ULo: 9000, UHi: 9001, VLo: 0, VHi: 1},
	}
	for i, b := range boxes {
		x.Insert(i, b)
	}
	for i := range boxes {
		skip := func(j int) bool { return j == i }
		live := []bool{true, true, true}
		wantJ, wantD := bruteNearest(boxes, live, boxes[i], skip)
		gotJ, gotD, ok := x.Nearest(boxes[i], skip, func(j int) float64 {
			return geom.DistRR(boxes[i], boxes[j])
		})
		if !ok || gotJ != wantJ || gotD != wantD {
			t.Fatalf("item %d: got (%d, %v, %v), want (%d, %v)", i, gotJ, gotD, ok, wantJ, wantD)
		}
	}
	// Deleting an overflow item removes it from consideration.
	x.Delete(0)
	gotJ, _, ok := x.Nearest(boxes[1], func(j int) bool { return j == 1 }, func(j int) float64 {
		return geom.DistRR(boxes[1], boxes[j])
	})
	if !ok || gotJ != 2 {
		t.Fatalf("after delete: got (%d, %v), want item 2", gotJ, ok)
	}
}

func TestKNearestMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	const n = 200
	boxes := make([]geom.Rect, n)
	x := New(50)
	for i := range boxes {
		boxes[i] = randRect(r, 1000, 20)
		x.Insert(i, boxes[i])
	}
	for _, k := range []int{1, 3, 8, n + 5} {
		for trial := 0; trial < 20; trial++ {
			q := randRect(r, 1000, 20)
			got := x.KNearest(q, k, nil)
			// Oracle: sort all by (dist, id), take k.
			type cand struct {
				d  float64
				id int
			}
			all := make([]cand, n)
			for i := range boxes {
				all[i] = cand{d: geom.DistRR(q, boxes[i]), id: i}
			}
			for a := 1; a < len(all); a++ { // insertion sort (stable, simple)
				for b := a; b > 0 && (all[b].d < all[b-1].d || (all[b].d == all[b-1].d && all[b].id < all[b-1].id)); b-- {
					all[b], all[b-1] = all[b-1], all[b]
				}
			}
			want := k
			if want > n {
				want = n
			}
			if len(got) != want {
				t.Fatalf("k=%d: got %d results, want %d", k, len(got), want)
			}
			for i := range got {
				if got[i] != all[i].id {
					t.Fatalf("k=%d trial %d: result[%d] = %d, want %d", k, trial, i, got[i], all[i].id)
				}
			}
		}
	}
}

func TestAutoCell(t *testing.T) {
	if c := AutoCell(nil); c != 1 {
		t.Errorf("AutoCell(nil) = %v, want 1", c)
	}
	pt := geom.RectFromPoint(geom.Point{X: 3, Y: 4})
	if c := AutoCell([]geom.Rect{pt}); c != 1 {
		t.Errorf("AutoCell(point) = %v, want 1", c)
	}
	boxes := []geom.Rect{
		{ULo: 0, UHi: 0, VLo: 0, VHi: 0},
		{ULo: 100, UHi: 100, VLo: 100, VHi: 100},
		{ULo: 50, UHi: 50, VLo: 20, VHi: 20},
		{ULo: 10, UHi: 10, VLo: 90, VHi: 90},
	}
	c := AutoCell(boxes)
	if c <= 0 || c > 100 {
		t.Errorf("AutoCell = %v, want in (0, 100]", c)
	}
}

func TestInsertDeleteBookkeeping(t *testing.T) {
	x := New(10)
	x.Insert(0, geom.Rect{ULo: 0, UHi: 1, VLo: 0, VHi: 1})
	x.Insert(5, geom.Rect{ULo: 20, UHi: 21, VLo: 0, VHi: 1}) // sparse id
	if x.Len() != 2 {
		t.Fatalf("Len = %d, want 2", x.Len())
	}
	x.Delete(3) // unknown id: no-op
	x.Delete(0)
	x.Delete(0) // double delete: no-op
	if x.Len() != 1 {
		t.Fatalf("Len after deletes = %d, want 1", x.Len())
	}
	// Re-insert with a new box refiles.
	x.Insert(5, geom.Rect{ULo: 500, UHi: 501, VLo: 500, VHi: 501})
	if x.Len() != 1 {
		t.Fatalf("Len after refile = %d, want 1", x.Len())
	}
	j, _, ok := x.Nearest(geom.Rect{ULo: 499, UHi: 499, VLo: 499, VHi: 499}, nil,
		func(id int) float64 { return geom.DistRR(x.Box(id), geom.Rect{ULo: 499, UHi: 499, VLo: 499, VHi: 499}) })
	if !ok || j != 5 {
		t.Fatalf("Nearest after refile = (%d, %v), want 5", j, ok)
	}
	if x.Scans() <= 0 {
		t.Error("Scans not counted")
	}
}

// TestTombstoneChurn hammers the lazy-deletion machinery: mass deletes
// (forcing tombstone purges and live-drop re-cell rebuilds) interleaved with
// inserts and re-inserts of previously tombstoned ids, checking Nearest
// against brute force throughout.
func TestTombstoneChurn(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	const n = 600
	boxes := make([]geom.Rect, n)
	live := make([]bool, n)
	x := New(25)
	for i := range boxes {
		boxes[i] = randRect(r, 1000, 10)
		live[i] = true
		x.Insert(i, boxes[i])
	}
	check := func(tag string) {
		t.Helper()
		nLive := 0
		for _, a := range live {
			if a {
				nLive++
			}
		}
		if x.Len() != nLive {
			t.Fatalf("%s: Len = %d, want %d", tag, x.Len(), nLive)
		}
		for i := range boxes {
			if !live[i] {
				continue
			}
			skip := func(j int) bool { return j == i }
			wantJ, wantD := bruteNearest(boxes, live, boxes[i], skip)
			gotJ, gotD, ok := x.Nearest(boxes[i], skip, func(j int) float64 {
				return geom.DistRR(boxes[i], boxes[j])
			})
			if wantJ < 0 {
				if ok {
					t.Fatalf("%s: item %d: got %d, want none", tag, i, gotJ)
				}
				continue
			}
			if !ok || gotJ != wantJ || gotD != wantD {
				t.Fatalf("%s: item %d: got (%d, %v), want (%d, %v)", tag, i, gotJ, gotD, wantJ, wantD)
			}
		}
	}
	check("initial")
	// Delete 80% — drives the live count through several halvings, so both
	// the purge sweep and the re-cell rebuild must fire.
	for i := 0; i < n; i++ {
		if r.Float64() < 0.8 && live[i] {
			x.Delete(i)
			live[i] = false
		}
	}
	check("after mass delete")
	// Resurrect some tombstoned ids under new boxes.
	for i := 0; i < n/4; i++ {
		id := r.Intn(n)
		if !live[id] {
			boxes[id] = randRect(r, 1000, 10)
			x.Insert(id, boxes[id])
			live[id] = true
		}
	}
	check("after resurrection")
	// Drain to a handful.
	for i := 0; i < n; i++ {
		if live[i] && x.Len() > 3 {
			x.Delete(i)
			live[i] = false
		}
	}
	check("after drain")
}

// TestInsertAllMatchesIncremental: the bulk fill must be observationally
// identical to one-by-one inserts.
func TestInsertAllMatchesIncremental(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	const n = 400
	boxes := make([]geom.Rect, n)
	for i := range boxes {
		boxes[i] = randRect(r, 2000, 15)
	}
	bulk := NewBounded(30, geom.Rect{ULo: 0, UHi: 2015, VLo: 0, VHi: 2015})
	bulk.InsertAll(boxes)
	inc := NewBounded(30, geom.Rect{ULo: 0, UHi: 2015, VLo: 0, VHi: 2015})
	for i, b := range boxes {
		inc.Insert(i, b)
	}
	if bulk.Len() != inc.Len() {
		t.Fatalf("Len %d != %d", bulk.Len(), inc.Len())
	}
	for i := range boxes {
		skip := func(j int) bool { return j == i }
		key := func(j int) float64 { return geom.DistRR(boxes[i], boxes[j]) }
		bj, bd, bok := bulk.Nearest(boxes[i], skip, key)
		ij, id, iok := inc.Nearest(boxes[i], skip, key)
		if bj != ij || bd != id || bok != iok {
			t.Fatalf("item %d: bulk (%d,%v,%v) != incremental (%d,%v,%v)", i, bj, bd, bok, ij, id, iok)
		}
	}
}

// TestDensityCell: sane on degenerate inputs, and finer than AutoCell on a
// clustered placement (the property the power-law instances rely on).
func TestDensityCell(t *testing.T) {
	if c := DensityCell(nil); c != 1 {
		t.Errorf("DensityCell(nil) = %v, want 1", c)
	}
	pt := geom.RectFromPoint(geom.Point{X: 1, Y: 2})
	if c := DensityCell([]geom.Rect{pt, pt}); !(c > 0) {
		t.Errorf("DensityCell(coincident points) = %v, want > 0", c)
	}
	// 2000 points in tight clusters spread over a wide die.
	r := rand.New(rand.NewSource(5))
	var clustered []geom.Rect
	for c := 0; c < 10; c++ {
		cx, cy := r.Float64()*1e6, r.Float64()*1e6
		for k := 0; k < 200; k++ {
			p := geom.Point{X: cx + r.NormFloat64()*500, Y: cy + r.NormFloat64()*500}
			clustered = append(clustered, geom.RectFromPoint(p))
		}
	}
	dc, ac := DensityCell(clustered), AutoCell(clustered)
	if !(dc > 0) || dc >= ac {
		t.Errorf("DensityCell = %v, want in (0, AutoCell=%v)", dc, ac)
	}
}

// TestScanRateRebuildFiresOnFatBuckets drives the scan-rate trigger: an
// index built with a deliberately coarse cell over a dense cluster piles
// every item into a handful of buckets, so each query evaluates ~n
// candidates — far beyond the firing cap. The first mutation after the
// baseline burst must re-cell with a trimmed (finer) cell, and results must
// stay exact throughout.
func TestScanRateRebuildFiresOnFatBuckets(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	const n = 600
	boxes := make([]geom.Rect, n)
	live := make([]bool, n)
	x := New(1e6) // one giant cell: every query scans every item
	for i := range boxes {
		u, v := r.Float64()*1000, r.Float64()*1000
		boxes[i] = geom.Rect{ULo: u, UHi: u, VLo: v, VHi: v}
		live[i] = true
		x.Insert(i, boxes[i])
	}
	coarse := x.Cell()
	query := func() {
		for i := 0; i < n; i++ {
			if !live[i] {
				continue
			}
			skip := func(j int) bool { return j == i }
			wantJ, wantD := bruteNearest(boxes, live, boxes[i], skip)
			gotJ, gotD, ok := x.Nearest(boxes[i], skip, func(j int) float64 {
				return geom.DistRR(boxes[i], boxes[j])
			})
			if !ok || gotJ != wantJ || gotD != wantD {
				t.Fatalf("item %d: got (%d, %v), want (%d, %v)", i, gotJ, gotD, wantJ, wantD)
			}
		}
	}
	query() // baseline burst: well over scanBaselineQueries queries, ~n scans each
	x.Delete(0)
	live[0] = false // mutation: maybeRebuild sees the degenerate rate
	rb := x.Rebuilds()
	if rb.ScanRate != 1 {
		t.Fatalf("scan-rate rebuilds = %d (stats %+v), want 1", rb.ScanRate, rb)
	}
	if x.Cell() >= coarse {
		t.Fatalf("cell %v not refined below the coarse %v", x.Cell(), coarse)
	}
	query() // exactness preserved across the re-cell
}

// TestCellWalkRebuildUndoesOverFineTrim drives the opposite direction of the
// query-rate trigger: a trimmed index whose cell is far too fine for the
// live population walks rings of empty cells on every query. The first
// mutation after the baseline burst must un-trim (double cellTrim) and
// re-cell coarser, classified as a CellWalk rebuild, with results exact
// throughout.
func TestCellWalkRebuildUndoesOverFineTrim(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	const n = 200
	boxes := make([]geom.Rect, n)
	live := make([]bool, n)
	// Point items spread over 200×200 with a 0.5 cell: mean spacing ~14, so
	// every nearest-neighbor query walks hundreds of near-empty cells.
	x := New(0.5)
	x.cellTrim = 0.25 // as if scan-rate rebuilds had trimmed a past estimate
	for i := range boxes {
		u, v := r.Float64()*200, r.Float64()*200
		boxes[i] = geom.Rect{ULo: u, UHi: u, VLo: v, VHi: v}
		live[i] = true
		x.Insert(i, boxes[i])
	}
	fine := x.Cell()
	query := func() {
		for i := 0; i < n; i++ {
			if !live[i] {
				continue
			}
			skip := func(j int) bool { return j == i }
			wantJ, wantD := bruteNearest(boxes, live, boxes[i], skip)
			gotJ, gotD, ok := x.Nearest(boxes[i], skip, func(j int) float64 {
				return geom.DistRR(boxes[i], boxes[j])
			})
			if !ok || gotJ != wantJ || gotD != wantD {
				t.Fatalf("item %d: got (%d, %v), want (%d, %v)", i, gotJ, gotD, wantJ, wantD)
			}
		}
	}
	query() // baseline burst: cells-walked/query far beyond cellWalkCap
	x.Delete(0)
	live[0] = false // mutation: maybeRebuild sees the over-fine rate
	rb := x.Rebuilds()
	if rb.CellWalk != 1 {
		t.Fatalf("cell-walk rebuilds = %d (stats %+v), want 1", rb.CellWalk, rb)
	}
	if x.cellTrim != 0.5 {
		t.Fatalf("cellTrim = %v after un-trim, want 0.5", x.cellTrim)
	}
	if x.Cell() <= fine {
		t.Fatalf("cell %v not coarsened above the over-fine %v", x.Cell(), fine)
	}
	if rb.Total() != rb.LiveDrop+rb.EdgeClamp+rb.ScanRate+rb.CellWalk {
		t.Fatalf("Total inconsistent: %+v", rb)
	}
	query() // exactness preserved across the re-cell
}

// TestCellWalkRebuildRequiresTrim pins the arming rule: the same over-fine
// walking pattern on an UNtrimmed index must not fire the cell-walk trigger
// — an untrimmed cell is DensityCell's own estimate, and undoing the trim is
// all the trigger is allowed to do.
func TestCellWalkRebuildRequiresTrim(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	const n = 200
	x := New(0.5) // cellTrim stays 0 (never trimmed)
	boxes := make([]geom.Rect, n)
	live := make([]bool, n)
	for i := range boxes {
		u, v := r.Float64()*200, r.Float64()*200
		boxes[i] = geom.Rect{ULo: u, UHi: u, VLo: v, VHi: v}
		live[i] = true
		x.Insert(i, boxes[i])
	}
	for i := 0; i < n; i++ {
		skip := func(j int) bool { return j == i }
		x.Nearest(boxes[i], skip, func(j int) float64 {
			return geom.DistRR(boxes[i], boxes[j])
		})
	}
	x.Delete(0)
	if rb := x.Rebuilds(); rb.CellWalk != 0 {
		t.Fatalf("cell-walk rebuild fired on an untrimmed index: %+v", rb)
	}
}

// TestRebuildStatsCountLiveDrop pins the trigger classification of the
// population-schedule rebuild.
func TestRebuildStatsCountLiveDrop(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	x := New(40)
	const n = 100
	for i := 0; i < n; i++ {
		x.Insert(i, randRect(r, 1000, 10))
	}
	for i := 0; i < n/2; i++ {
		x.Delete(i)
	}
	rb := x.Rebuilds()
	if rb.LiveDrop < 1 {
		t.Fatalf("live-drop rebuilds = %d (stats %+v), want >= 1", rb.LiveDrop, rb)
	}
	if rb.Total() != rb.LiveDrop+rb.EdgeClamp+rb.ScanRate {
		t.Fatalf("Total inconsistent: %+v", rb)
	}
}
