// Package spicelite is a small transient circuit simulator for tree-shaped
// RC networks, standing in for the SPICE runs the thesis uses to validate
// the Elmore delay model (Chapter III: "we compare the Elmore based skew
// with SPICE simulation results").
//
// An embedded clock tree is discretized into RC segments (each wire piece a
// resistance with half its capacitance lumped at each end, sink loads at the
// leaves). The network is driven by an ideal voltage step through a driver
// resistance, and integrated with the backward-Euler method. Because the
// network is a tree, every implicit solve is done exactly in O(n) by one
// leaf-to-root elimination pass and one root-to-leaf back-substitution —
// the same structure SPICE-family tools exploit for RC interconnect.
//
// The quantity of interest is the 50%-crossing time at each sink; the thesis
// argues (and TestElmoreVsTransient* verifies) that while absolute Elmore
// delays can be off, *skews* — delay differences — agree closely, because
// the model error largely cancels in the subtraction.
package spicelite

import (
	"fmt"
	"math"

	"repro/internal/ctree"
	"repro/internal/geom"
)

// Params configures the discretization and integration.
type Params struct {
	// ROhmPerUnit and CFFPerUnit are the wire parasitics (must match the
	// delay model used for routing for a meaningful comparison).
	ROhmPerUnit, CFFPerUnit float64
	// DriverOhm is the source driver resistance (default 100 Ω).
	DriverOhm float64
	// SegLen is the maximum RC segment length (default: wire length / 4,
	// at most 2000 units).
	SegLen float64
	// Steps is the number of backward-Euler steps (default 4000).
	Steps int
	// Horizon is the simulated time in ps (default: 12× the largest Elmore
	// estimate, chosen automatically).
	Horizon float64
	// RampPs is the input transition time: the source ramps linearly from 0
	// to Vdd over this many ps (0 = ideal step).
	RampPs float64
}

type node struct {
	parent int     // index of parent node, -1 for the root
	res    float64 // resistance (Ω) of the edge to the parent
	cap    float64 // grounded capacitance (fF)
	sink   int     // sink ID for leaf nodes, -1 otherwise
}

// Result holds per-sink 50% threshold delays in ps.
type Result struct {
	// Delay maps sink ID to the 50%-crossing time (ps).
	Delay []float64
	// Slew maps sink ID to the 10%→90% transition time (ps).
	Slew []float64
	// Nodes is the size of the discretized network.
	Nodes int
	// Steps is the number of time steps integrated.
	Steps int
}

// Skew returns max−min over all sink delays.
func (r *Result) Skew() float64 {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, d := range r.Delay {
		lo = math.Min(lo, d)
		hi = math.Max(hi, d)
	}
	return hi - lo
}

// Simulate runs a transient analysis of an embedded clock tree and returns
// the 50% threshold delay of every sink. The tree must be embedded (Placed).
func Simulate(root *ctree.Node, in *ctree.Instance, p Params) (*Result, error) {
	if p.ROhmPerUnit <= 0 || p.CFFPerUnit <= 0 {
		return nil, fmt.Errorf("spicelite: wire parasitics must be positive")
	}
	if p.DriverOhm <= 0 {
		p.DriverOhm = 100
	}
	if p.Steps <= 0 {
		p.Steps = 4000
	}
	if !root.Placed {
		return nil, fmt.Errorf("spicelite: tree not embedded")
	}

	// Build the discretized network. Node 0 is the tree root.
	nodes := []node{{parent: -1, res: p.DriverOhm, cap: 0, sink: -1}}
	var build func(parentIdx int, tn *ctree.Node)
	addWire := func(from int, length float64) int {
		if length <= 0 {
			return from // zero-length edge: no RC segment
		}
		segs := 1
		maxSeg := p.SegLen
		if maxSeg <= 0 {
			maxSeg = math.Min(length/4+1, 2000)
		}
		if length > maxSeg {
			segs = int(math.Ceil(length / maxSeg))
		}
		segLen := length / float64(segs)
		segRes := p.ROhmPerUnit * segLen
		segCap := p.CFFPerUnit * segLen
		cur := from
		for s := 0; s < segs; s++ {
			nodes[cur].cap += segCap / 2
			nodes = append(nodes, node{parent: cur, res: segRes, cap: segCap / 2, sink: -1})
			cur = len(nodes) - 1
		}
		return cur
	}
	build = func(parentIdx int, tn *ctree.Node) {
		if tn.IsLeaf() {
			nodes[parentIdx].cap += tn.Sink.CapFF
			if nodes[parentIdx].sink >= 0 {
				// Two sinks collapsed onto one electrical node (both edges
				// zero length): record via an explicit zero-R alias node.
				nodes = append(nodes, node{parent: parentIdx, res: 1e-6, cap: 0, sink: tn.Sink.ID})
				return
			}
			nodes[parentIdx].sink = tn.Sink.ID
			return
		}
		l := addWire(parentIdx, tn.EdgeL)
		build(l, tn.Left)
		r := addWire(parentIdx, tn.EdgeR)
		build(r, tn.Right)
	}
	// Source wire from the clock source to the embedded root.
	srcWire := geom.DistUV(geom.ToUV(in.Source), root.Loc)
	top := addWire(0, srcWire)
	build(top, root)

	horizon := p.Horizon
	if horizon <= 0 {
		// Rough Elmore bound of the whole net for auto-scaling: total R
		// times total C is a safe overestimate of the slowest node.
		var rTot, cTot float64
		for _, nd := range nodes {
			rTot += nd.res
			cTot += nd.cap
		}
		horizon = 3 * rTot * cTot * 1e-3 // Ω·fF → ps
	}
	h := horizon / float64(p.Steps)

	// Backward Euler: (G + C/h)·v_{t+h} = C/h·v_t + b, solved per step by
	// tree elimination. Precompute the elimination coefficients, which are
	// constant because the matrix is constant:
	// for each node i (children first): denom_i = cap_i/h + 1/res_i + Σ_ch k_ch
	// where k_ch = (1/res_ch)·(1 - (1/res_ch)/denom_ch).
	n := len(nodes)
	children := make([][]int, n)
	for i := 1; i < n; i++ {
		children[nodes[i].parent] = append(children[nodes[i].parent], i)
	}
	order := make([]int, 0, n) // children before parents
	var post func(i int)
	post = func(i int) {
		for _, c := range children[i] {
			post(c)
		}
		order = append(order, i)
	}
	post(0)

	invRes := make([]float64, n)
	for i := range nodes {
		invRes[i] = 1 / nodes[i].res
	}
	denom := make([]float64, n)
	for _, i := range order {
		d := nodes[i].cap/h*1e-3 + invRes[i] // cap/h in fF/ps → Ω⁻¹·1e-3 scaling
		for _, c := range children[i] {
			d += invRes[c] * (1 - invRes[c]/denom[c])
		}
		denom[i] = d
	}

	v := make([]float64, n)   // node voltages, start at 0
	rhs := make([]float64, n) // per-step right-hand side
	acc := make([]float64, n) // eliminated RHS accumulations
	cross := make([]float64, len(in.Sinks))
	lo10 := make([]float64, len(in.Sinks))
	hi90 := make([]float64, len(in.Sinks))
	for i := range cross {
		cross[i] = math.NaN()
		lo10[i] = math.NaN()
		hi90[i] = math.NaN()
	}
	const vdd = 1.0
	prev := make([]float64, n)

	for step := 1; step <= p.Steps; step++ {
		copy(prev, v)
		for i := range nodes {
			rhs[i] = nodes[i].cap / h * 1e-3 * v[i]
		}
		vsrc := vdd
		if p.RampPs > 0 {
			vsrc = math.Min(float64(step)*h/p.RampPs, 1) * vdd
		}
		rhs[0] += invRes[0] * vsrc // driver to the (stepped or ramped) source
		// Eliminate leaves → root.
		copy(acc, rhs)
		for _, i := range order {
			for _, c := range children[i] {
				acc[i] += invRes[c] * acc[c] / denom[c]
			}
		}
		// Back-substitute root → leaves.
		v[0] = acc[0] / denom[0]
		for k := len(order) - 2; k >= 0; k-- {
			i := order[k]
			p := nodes[i].parent
			v[i] = (acc[i] + invRes[i]*v[p]) / denom[i]
		}
		// Record threshold crossings with linear interpolation.
		t := float64(step) * h
		for i, nd := range nodes {
			if nd.sink < 0 {
				continue
			}
			record := func(dst []float64, thresh float64) {
				if !math.IsNaN(dst[nd.sink]) || v[i] < thresh {
					return
				}
				frac := 1.0
				if v[i] != prev[i] {
					frac = (thresh - prev[i]) / (v[i] - prev[i])
				}
				dst[nd.sink] = t - h + frac*h
			}
			record(lo10, 0.1*vdd)
			record(cross, vdd/2)
			record(hi90, 0.9*vdd)
		}
	}
	for id, c := range cross {
		if math.IsNaN(c) {
			return nil, fmt.Errorf("spicelite: sink %d did not cross 50%% within the horizon %g ps", id, horizon)
		}
	}
	slew := make([]float64, len(in.Sinks))
	for id := range slew {
		if math.IsNaN(hi90[id]) || math.IsNaN(lo10[id]) {
			slew[id] = math.NaN() // 90% not reached within the horizon
			continue
		}
		slew[id] = hi90[id] - lo10[id]
	}
	return &Result{Delay: cross, Slew: slew, Nodes: n, Steps: p.Steps}, nil
}
