package spicelite

import (
	"math"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/ctree"
	"repro/internal/eval"
	"repro/internal/geom"
)

const (
	testR = 0.1
	testC = 0.02
)

func simulateTree(t *testing.T, n int, seed int64) (*Result, *eval.Report) {
	t.Helper()
	in := bench.Small(n, seed)
	res, err := core.ZST(in, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sim, err := Simulate(res.Root, in, Params{ROhmPerUnit: testR, CFFPerUnit: testC})
	if err != nil {
		t.Fatal(err)
	}
	rep := eval.Analyze(res.Root, in, core.DefaultModel(), in.Source)
	return sim, rep
}

func TestSingleWireDelayAgainstAnalytic(t *testing.T) {
	// One sink driven through one wire: the transient 50% delay of a
	// distributed RC line is ≈ 0.4·RC + 0.7·(RdC + RCl + RdCl...); here we
	// only require the simulated delay to land in the right ballpark of the
	// Elmore estimate (0.35×..1.1× is the classic range for 50% crossing).
	in := &ctree.Instance{
		Name:      "wire",
		Sinks:     []ctree.Sink{{ID: 0, Loc: geom.Point{X: 20000, Y: 0}, CapFF: 20}},
		Source:    geom.Point{X: 0, Y: 0},
		NumGroups: 1,
	}
	res, err := core.ZST(in, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sim, err := Simulate(res.Root, in, Params{ROhmPerUnit: testR, CFFPerUnit: testC, DriverOhm: 1})
	if err != nil {
		t.Fatal(err)
	}
	elmore := core.DefaultModel().WireDelay(20000, 20)
	ratio := sim.Delay[0] / elmore
	if ratio < 0.3 || ratio > 1.2 {
		t.Errorf("50%% delay %v vs Elmore %v (ratio %.2f) out of plausible range", sim.Delay[0], elmore, ratio)
	}
}

func TestElmoreVsTransientSkewSmall(t *testing.T) {
	// The thesis's Ch. III claim: Elmore delay errors largely cancel in
	// skew. A zero-skew (by Elmore) tree must show small transient skew
	// relative to its absolute delays.
	sim, rep := simulateTree(t, 40, 3)
	if rep.GlobalSkew > 1e-6*(1+rep.MaxDelay) {
		t.Fatalf("test setup: Elmore skew %v not ~0", rep.GlobalSkew)
	}
	relSkew := sim.Skew() / sim.Delay[0]
	if relSkew > 0.05 {
		t.Errorf("transient skew %.3g ps is %.1f%% of delay %.3g ps — cancellation failed",
			sim.Skew(), 100*relSkew, sim.Delay[0])
	}
	t.Logf("transient delay ≈ %.0f ps, transient skew = %.2f ps, Elmore skew = %.2g ps",
		sim.Delay[0], sim.Skew(), rep.GlobalSkew)
}

func TestTransientDelaysCorrelateWithElmore(t *testing.T) {
	in := bench.Small(25, 8)
	res, err := core.EXTBST(in, 500, core.Options{}) // loose bound: delays differ
	if err != nil {
		t.Fatal(err)
	}
	sim, err := Simulate(res.Root, in, Params{ROhmPerUnit: testR, CFFPerUnit: testC})
	if err != nil {
		t.Fatal(err)
	}
	rep := eval.Analyze(res.Root, in, core.DefaultModel(), in.Source)
	// Rank correlation: the sink ordering by Elmore and by transient delay
	// must broadly agree (count concordant pairs).
	concordant, total := 0, 0
	for i := range rep.SinkDelay {
		for j := i + 1; j < len(rep.SinkDelay); j++ {
			de := rep.SinkDelay[i] - rep.SinkDelay[j]
			dt := sim.Delay[i] - sim.Delay[j]
			if math.Abs(de) < 1 { // below a ps: ties, skip
				continue
			}
			total++
			if de*dt > 0 {
				concordant++
			}
		}
	}
	if total > 0 && float64(concordant)/float64(total) < 0.8 {
		t.Errorf("only %d/%d pairs concordant between Elmore and transient", concordant, total)
	}
}

func TestSimulateValidation(t *testing.T) {
	in := bench.Small(5, 1)
	res, err := core.ZST(in, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Simulate(res.Root, in, Params{}); err == nil {
		t.Error("missing parasitics accepted")
	}
	res.Root.Visit(func(n *ctree.Node) { n.Placed = false })
	if _, err := Simulate(res.Root, in, Params{ROhmPerUnit: testR, CFFPerUnit: testC}); err == nil {
		t.Error("unembedded tree accepted")
	}
}

func TestVoltagesMonotoneToVdd(t *testing.T) {
	// All sinks must eventually cross 50%: Simulate errors otherwise, so a
	// successful run over several seeds doubles as a stability test.
	for _, seed := range []int64{1, 2, 3} {
		sim, _ := simulateTree(t, 15, seed)
		for id, d := range sim.Delay {
			if d <= 0 || math.IsNaN(d) {
				t.Fatalf("seed %d: sink %d delay %v", seed, id, d)
			}
		}
	}
}

func TestRampInputDelaysCrossing(t *testing.T) {
	in := bench.Small(10, 2)
	res, err := core.ZST(in, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	step, err := Simulate(res.Root, in, Params{ROhmPerUnit: testR, CFFPerUnit: testC})
	if err != nil {
		t.Fatal(err)
	}
	ramp, err := Simulate(res.Root, in, Params{ROhmPerUnit: testR, CFFPerUnit: testC, RampPs: 400})
	if err != nil {
		t.Fatal(err)
	}
	// A slow input ramp must delay every 50% crossing, roughly by half the
	// ramp for delays well beyond the ramp.
	for id := range step.Delay {
		if ramp.Delay[id] <= step.Delay[id] {
			t.Fatalf("sink %d: ramp delay %v not above step delay %v", id, ramp.Delay[id], step.Delay[id])
		}
	}
	// Threshold-crossing skew is nearly input-shape invariant for a linear
	// network (exactly invariant only for shifted identical waveforms; a few
	// ps of shape interaction and step-size noise are expected).
	if math.Abs(ramp.Skew()-step.Skew()) > 2+0.1*step.Skew() {
		t.Errorf("skew changed with input shape: %v vs %v", ramp.Skew(), step.Skew())
	}
}

func TestSlewMeasured(t *testing.T) {
	in := bench.Small(10, 3)
	res, err := core.ZST(in, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sim, err := Simulate(res.Root, in, Params{ROhmPerUnit: testR, CFFPerUnit: testC})
	if err != nil {
		t.Fatal(err)
	}
	for id, s := range sim.Slew {
		if math.IsNaN(s) {
			t.Logf("sink %d: 90%% not reached in horizon", id)
			continue
		}
		if s <= 0 {
			t.Fatalf("sink %d: non-positive slew %v", id, s)
		}
		// RC responses are slower from 10 to 90% than from 0 to 50%.
		if s < sim.Delay[id]*0.3 {
			t.Errorf("sink %d: slew %v implausibly small vs delay %v", id, s, sim.Delay[id])
		}
	}
}
