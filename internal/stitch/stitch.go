// Package stitch implements the separate-trees-and-stitch baseline for
// associative skew routing, in the style of the only prior work
// (Chen–Kahng–Qu–Zelikovsky, ICCAD 1999) as characterized by the thesis's
// Chapter IV: build a zero-skew tree for each sink group separately, then
// stitch the per-group roots together with unconstrained merges.
//
// On instances whose groups are geometrically intermingled the per-group
// trees overlap each other's territory, wasting wire — the observation
// (thesis Fig. 2) motivating AST-DME's simultaneous treatment of all groups.
// The package exists to reproduce that comparison.
package stitch

import (
	"repro/internal/core"
	"repro/internal/ctree"
	"repro/internal/eval"
	"repro/internal/geom"
	"repro/internal/order"
	"repro/internal/rctree"
)

// Options configures the stitch baseline.
type Options struct {
	// Model is the delay model; nil selects core.DefaultModel().
	Model rctree.Model
	// IntraSkewBound is the per-group skew bound (ps) used for the per-group
	// zero-skew trees (0 = exact).
	IntraSkewBound float64
	// Order configures the merging order of the per-group builds.
	Order order.Config
}

// Result is a completed stitch routing.
type Result struct {
	// Instance is the routed instance.
	Instance *ctree.Instance
	// Root is the stitched tree (group subtrees merged at their roots).
	Root *ctree.Node
	// Wirelength is the total committed wirelength including the source
	// connection.
	Wirelength float64
	// GroupWire is the wirelength of each per-group subtree.
	GroupWire []float64
	// StitchWire is the wire spent connecting the group roots (and source).
	StitchWire float64
}

// Build routes each group separately as a zero-skew (or bounded) tree, then
// stitches the group roots with unconstrained minimum-distance merges.
func Build(in *ctree.Instance, opt Options) (*Result, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	if opt.Model == nil {
		opt.Model = core.DefaultModel()
	}

	// Route each group on its own sub-instance, then transplant the subtree
	// onto the original sinks (IDs are preserved through the Sink pointers
	// of the sub-instance, so remap by position).
	roots := make([]*ctree.Node, in.NumGroups)
	res := &Result{Instance: in, GroupWire: make([]float64, in.NumGroups)}
	for g := 0; g < in.NumGroups; g++ {
		sub := &ctree.Instance{
			Name:      in.Name,
			Source:    in.Source,
			NumGroups: 1,
		}
		var backRefs []int
		for i, s := range in.Sinks {
			if s.Group != g {
				continue
			}
			sc := s
			sc.ID = len(sub.Sinks)
			sc.Group = 0
			sub.Sinks = append(sub.Sinks, sc)
			backRefs = append(backRefs, i)
		}
		r, err := core.Build(sub, core.Options{
			Model:       opt.Model,
			SingleGroup: true,
			GlobalBound: opt.IntraSkewBound,
			Order:       opt.Order,
		})
		if err != nil {
			return nil, err
		}
		// Point the leaves back at the original instance's sinks so that
		// evaluation against the full instance works.
		r.Root.Visit(func(n *ctree.Node) {
			if n.IsLeaf() {
				orig := &in.Sinks[backRefs[n.Sink.ID]]
				n.Sink = orig
				n.Groups = []int{orig.Group}
			} else {
				n.Groups = []int{g}
			}
		})
		roots[g] = r.Root
		res.GroupWire[g] = r.Root.Wirelength()
	}

	// Stitch the group roots: repeated unconstrained nearest merges, wire
	// equal to the root distances (no balancing between groups).
	m := opt.Model
	active := append([]*ctree.Node(nil), roots...)
	for len(active) > 1 {
		bi, bj := 0, 1
		best := geom.DistRR(active[0].Region, active[1].Region)
		for i := 0; i < len(active); i++ {
			for j := i + 1; j < len(active); j++ {
				if d := geom.DistRR(active[i].Region, active[j].Region); d < best {
					best, bi, bj = d, i, j
				}
			}
		}
		na, nb := active[bi], active[bj]
		d := best
		mg := rctree.BalanceClamped(m, d, na.OverallDelay().Hi, na.Cap, nb.OverallDelay().Hi, nb.Cap)
		c := &ctree.Node{
			Left: na, Right: nb,
			EdgeL: mg.Ea, EdgeR: mg.Eb,
			Region: geom.MergeLocus(na.Region, nb.Region, mg.Ea, mg.Eb),
			Cap:    na.Cap + nb.Cap + m.WireCap(d),
			Groups: ctree.UnionGroups(na.Groups, nb.Groups),
		}
		c.Recompute(m)
		res.StitchWire += d
		active[bi] = c
		active = append(active[:bj], active[bj+1:]...)
	}
	res.Root = active[0]
	res.Root.Embed(geom.ToUV(in.Source))
	res.StitchWire += geom.DistRP(res.Root.Region, geom.ToUV(in.Source))
	res.Wirelength = res.Root.Wirelength() + geom.DistRP(res.Root.Region, geom.ToUV(in.Source))
	return res, nil
}

// Analyze measures the stitched tree with the shared evaluator.
func (r *Result) Analyze(m rctree.Model) *eval.Report {
	if m == nil {
		m = core.DefaultModel()
	}
	return eval.Analyze(r.Root, r.Instance, m, r.Instance.Source)
}
