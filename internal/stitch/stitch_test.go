package stitch

import (
	"math"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/ctree"
	"repro/internal/eval"
	"repro/internal/geom"
	"repro/internal/shard"
)

func TestStitchZeroIntraGroupSkew(t *testing.T) {
	in := bench.Intermingled(bench.Small(80, 4), 3, 17)
	res, err := Build(in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := eval.CheckTree(res.Root, in); err != nil {
		t.Fatalf("CheckTree: %v", err)
	}
	rep := res.Analyze(nil)
	if rep.Sinks != len(in.Sinks) {
		t.Fatalf("reached %d sinks", rep.Sinks)
	}
	// Per-group trees are exact zero-skew; stitching adds only common path.
	if rep.MaxGroupSkew > 1e-6*(1+rep.MaxDelay) {
		t.Errorf("intra-group skew %v", rep.MaxGroupSkew)
	}
	if res.Wirelength <= 0 {
		t.Error("no wire")
	}
	var groupsWire float64
	for _, wlen := range res.GroupWire {
		groupsWire += wlen
	}
	if diff := res.Wirelength - groupsWire - res.StitchWire; diff > 1e-6*res.Wirelength || diff < -1e-6*res.Wirelength {
		t.Errorf("wire accounting: total %v vs groups %v + stitch %v", res.Wirelength, groupsWire, res.StitchWire)
	}
}

func TestStitchWorseThanASTOnIntermingled(t *testing.T) {
	// The thesis's Ch. IV observation: separate trees overlap on
	// intermingled instances, so stitching costs more wire than AST-DME's
	// simultaneous merging. Aggregate over seeds for a stable comparison.
	var stitchSum, astSum float64
	for _, seed := range []int64{1, 2, 3} {
		in := bench.Intermingled(bench.Small(120, seed), 5, seed*7)
		st, err := Build(in, Options{})
		if err != nil {
			t.Fatal(err)
		}
		ast, err := core.Build(in, core.Options{IntraSkewBound: 10})
		if err != nil {
			t.Fatal(err)
		}
		stitchSum += st.Wirelength
		astSum += ast.Wirelength
	}
	if astSum >= stitchSum {
		t.Errorf("AST-DME %v not below stitch %v on intermingled groups", astSum, stitchSum)
	}
}

func TestStitchFig2Shape(t *testing.T) {
	// Thesis Fig. 2: four collinear sinks, alternating groups. Building
	// per-group trees and stitching wastes wire versus merging neighbors
	// across groups; the thesis quotes savings up to one third.
	in := &ctree.Instance{
		Name: "fig2",
		Sinks: []ctree.Sink{
			{ID: 0, Loc: geom.Point{X: 0, Y: 0}, CapFF: 10, Group: 0},
			{ID: 1, Loc: geom.Point{X: 100, Y: 0}, CapFF: 10, Group: 1},
			{ID: 2, Loc: geom.Point{X: 200, Y: 0}, CapFF: 10, Group: 0},
			{ID: 3, Loc: geom.Point{X: 300, Y: 0}, CapFF: 10, Group: 1},
		},
		Source:    geom.Point{X: 150, Y: 0},
		NumGroups: 2,
	}
	st, err := Build(in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ast, err := core.Build(in, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ast.Wirelength >= st.Wirelength {
		t.Fatalf("AST %v not below stitch %v", ast.Wirelength, st.Wirelength)
	}
	saving := (st.Wirelength - ast.Wirelength) / st.Wirelength
	if saving < 0.2 {
		t.Errorf("Fig.2 saving = %.1f%%, want ≥ 20%%", saving*100)
	}
	t.Logf("Fig.2: stitch=%v ast=%v saving=%.1f%%", st.Wirelength, ast.Wirelength, saving*100)
}

// TestStitchGridPairedLargeInstance exercises the stitch baseline at a
// scale where each per-group build crosses core.GridPairerThreshold, so the
// per-group trees route through the spatial grid pairer rather than the
// all-pairs scan the small tests use: tree structure, per-group zero skew
// and the wire accounting must all survive the engine switch.
func TestStitchGridPairedLargeInstance(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	in := bench.Intermingled(bench.Small(5000, 31), 2, 77) // 2500 sinks/group ≥ threshold
	res, err := Build(in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := eval.CheckTree(res.Root, in); err != nil {
		t.Fatalf("CheckTree: %v", err)
	}
	rep := res.Analyze(nil)
	if rep.Sinks != len(in.Sinks) {
		t.Fatalf("reached %d sinks", rep.Sinks)
	}
	if rep.MaxGroupSkew > 1e-6*(1+rep.MaxDelay) {
		t.Errorf("intra-group skew %v on grid-paired per-group trees", rep.MaxGroupSkew)
	}
	var groupsWire float64
	for _, wlen := range res.GroupWire {
		groupsWire += wlen
	}
	if diff := math.Abs(res.Wirelength - groupsWire - res.StitchWire); diff > 1e-6*res.Wirelength {
		t.Errorf("wire accounting: total %v vs groups %v + stitch %v", res.Wirelength, groupsWire, res.StitchWire)
	}
}

// TestStitchAgreesWithShardTopLevel is the regression pinning the stitch
// baseline and the sharded pipeline's top-level merge to the same result
// where their contracts coincide: on a single-group instance the stitch
// builds one ZST tree and stitches nothing, and shard.Build with one shard
// routes the same tree through core's stitch machinery — wirelength and the
// per-sink delays must agree bitwise with each other and with core.ZST.
func TestStitchAgreesWithShardTopLevel(t *testing.T) {
	in := bench.Small(3000, 13) // one group, above the grid-pairer threshold
	st, err := Build(in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sh, err := shard.Build(in, core.Options{SingleGroup: true, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	zst, err := core.ZST(in, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sw, zw := math.Float64bits(st.Wirelength), math.Float64bits(zst.Wirelength); sw != zw {
		t.Errorf("stitch wirelength bits 0x%016x != ZST 0x%016x", sw, zw)
	}
	if hw, zw := math.Float64bits(sh.Wirelength), math.Float64bits(zst.Wirelength); hw != zw {
		t.Errorf("shard top-level wirelength bits 0x%016x != ZST 0x%016x", hw, zw)
	}
	m := core.DefaultModel()
	stDelays := eval.Analyze(st.Root, in, m, in.Source).SinkDelay
	shDelays := eval.Analyze(sh.Root, in, m, in.Source).SinkDelay
	for i := range stDelays {
		if stDelays[i] != shDelays[i] {
			t.Fatalf("sink %d delay: stitch %v != shard %v", i, stDelays[i], shDelays[i])
		}
	}
}

func TestStitchSingleGroupEqualsZST(t *testing.T) {
	in := bench.Small(60, 11) // one group
	st, err := Build(in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	zst, err := core.ZST(in, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if d := st.Wirelength - zst.Wirelength; d > 1e-6*zst.Wirelength || d < -1e-6*zst.Wirelength {
		t.Errorf("single group stitch %v != ZST %v", st.Wirelength, zst.Wirelength)
	}
}

func TestStitchRejectsInvalid(t *testing.T) {
	if _, err := Build(&ctree.Instance{Name: "bad", NumGroups: 1}, Options{}); err == nil {
		t.Error("invalid instance accepted")
	}
}
