// Package svgplot renders embedded clock trees as standalone SVG documents:
// sinks colored by group, tree wires as L-shaped (Manhattan) routes, the
// clock source, and optionally the merging-region rectangles. It is used by
// the example programs and cmd/drawtree to visualize the structures behind
// the thesis's figures.
package svgplot

import (
	"fmt"
	"io"
	"math"

	"repro/internal/ctree"
	"repro/internal/geom"
)

// Options controls rendering.
type Options struct {
	// WidthPx is the output width in pixels (default 900; height follows
	// the data aspect ratio).
	WidthPx float64
	// ShowRegions draws the committed merging loci of internal nodes.
	ShowRegions bool
	// Title is drawn at the top-left when non-empty.
	Title string
}

// palette is a qualitative color cycle for sink groups.
var palette = []string{
	"#1f77b4", "#ff7f0e", "#2ca02c", "#d62728", "#9467bd",
	"#8c564b", "#e377c2", "#7f7f7f", "#bcbd22", "#17becf",
}

// GroupColor returns the render color of a group.
func GroupColor(g int) string { return palette[g%len(palette)] }

// Render writes the SVG document for an embedded tree.
func Render(w io.Writer, root *ctree.Node, in *ctree.Instance, opt Options) error {
	if !root.Placed {
		return fmt.Errorf("svgplot: tree not embedded")
	}
	if opt.WidthPx <= 0 {
		opt.WidthPx = 900
	}
	xmin, ymin, xmax, ymax := bounds(root, in)
	span := math.Max(xmax-xmin, 1)
	vspan := math.Max(ymax-ymin, 1)
	pad := 0.04 * span
	scale := opt.WidthPx / (span + 2*pad)
	heightPx := (vspan + 2*pad) * scale

	// SVG y grows downward; flip.
	px := func(p geom.Point) (float64, float64) {
		return (p.X - xmin + pad) * scale, heightPx - (p.Y-ymin+pad)*scale
	}

	if _, err := fmt.Fprintf(w,
		`<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f">`+"\n",
		opt.WidthPx, heightPx, opt.WidthPx, heightPx); err != nil {
		return err
	}
	fmt.Fprintf(w, `<rect width="100%%" height="100%%" fill="white"/>`+"\n")

	// Wires: L-shaped route between embedded endpoints. Snaked edges are
	// longer than the geometric distance; annotate them with a thicker
	// stroke rather than drawing literal serpentines.
	var emit func(n *ctree.Node)
	emit = func(n *ctree.Node) {
		if n.IsLeaf() {
			return
		}
		for _, side := range []ctree.Side{ctree.SideL, ctree.SideR} {
			ref := ctree.EdgeRef{Parent: n, Side: side}
			child := ref.Child()
			a := geom.ToXY(n.Loc)
			b := geom.ToXY(child.Loc)
			ax, ay := px(a)
			bx, by := px(b)
			width, color := 1.0, "#555"
			if ref.Len() > geom.DistUV(n.Loc, child.Loc)+1e-6 {
				width, color = 2.2, "#c22" // snaked wire
			}
			fmt.Fprintf(w,
				`<polyline points="%.1f,%.1f %.1f,%.1f %.1f,%.1f" fill="none" stroke="%s" stroke-width="%.1f"/>`+"\n",
				ax, ay, bx, ay, bx, by, color, width)
			emit(child)
		}
	}
	emit(root)

	if opt.ShowRegions {
		root.Visit(func(n *ctree.Node) {
			if n.IsLeaf() || n.Region.IsPoint() {
				return
			}
			c := n.Region.Corners()
			fmt.Fprintf(w, `<polygon points="`)
			for _, p := range c {
				x, y := px(p)
				fmt.Fprintf(w, "%.1f,%.1f ", x, y)
			}
			fmt.Fprintf(w, `" fill="#88c" fill-opacity="0.15" stroke="#88c" stroke-width="0.5"/>`+"\n")
		})
	}

	// Sinks, colored by group.
	for _, s := range in.Sinks {
		x, y := px(s.Loc)
		fmt.Fprintf(w, `<circle cx="%.1f" cy="%.1f" r="3" fill="%s"><title>sink %d group %d</title></circle>`+"\n",
			x, y, GroupColor(s.Group), s.ID, s.Group)
	}
	// Source.
	sx, sy := px(in.Source)
	fmt.Fprintf(w, `<rect x="%.1f" y="%.1f" width="9" height="9" fill="black"><title>source</title></rect>`+"\n",
		sx-4.5, sy-4.5)

	if opt.Title != "" {
		fmt.Fprintf(w, `<text x="10" y="20" font-family="monospace" font-size="14">%s</text>`+"\n", opt.Title)
	}
	_, err := fmt.Fprintln(w, `</svg>`)
	return err
}

// bounds returns the drawing extents covering sinks, source and embedding.
func bounds(root *ctree.Node, in *ctree.Instance) (xmin, ymin, xmax, ymax float64) {
	xmin, ymin = math.Inf(1), math.Inf(1)
	xmax, ymax = math.Inf(-1), math.Inf(-1)
	grow := func(p geom.Point) {
		xmin = math.Min(xmin, p.X)
		xmax = math.Max(xmax, p.X)
		ymin = math.Min(ymin, p.Y)
		ymax = math.Max(ymax, p.Y)
	}
	for _, s := range in.Sinks {
		grow(s.Loc)
	}
	grow(in.Source)
	root.Visit(func(n *ctree.Node) {
		if n.Placed {
			grow(geom.ToXY(n.Loc))
		}
	})
	return
}
