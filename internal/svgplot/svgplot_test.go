package svgplot

import (
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/ctree"
)

func TestRenderProducesWellFormedSVG(t *testing.T) {
	in := bench.Intermingled(bench.Small(30, 2), 3, 5)
	res, err := core.Build(in, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := Render(&sb, res.Root, in, Options{Title: "test", ShowRegions: true}); err != nil {
		t.Fatal(err)
	}
	svg := sb.String()
	for _, want := range []string{"<svg", "</svg>", "<circle", "<polyline", "test"} {
		if !strings.Contains(svg, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	if n := strings.Count(svg, "<circle"); n != len(in.Sinks) {
		t.Errorf("%d circles for %d sinks", n, len(in.Sinks))
	}
	// One polyline per tree edge.
	if n := strings.Count(svg, "<polyline"); n != 2*(len(in.Sinks)-1) {
		t.Errorf("%d polylines for %d edges", n, 2*(len(in.Sinks)-1))
	}
}

func TestRenderRejectsUnembedded(t *testing.T) {
	in := bench.Small(5, 1)
	res, err := core.ZST(in, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res.Root.Visit(func(n *ctree.Node) { n.Placed = false })
	var sb strings.Builder
	if err := Render(&sb, res.Root, in, Options{}); err == nil {
		t.Error("unembedded tree accepted")
	}
}

func TestGroupColorsCycle(t *testing.T) {
	if GroupColor(0) == "" || GroupColor(3) == "" {
		t.Error("empty colors")
	}
	if GroupColor(0) != GroupColor(len(palette)) {
		t.Error("palette does not cycle")
	}
}
