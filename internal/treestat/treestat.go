// Package treestat computes structural statistics of routed clock trees:
// depth, balance, wire distribution by level, snaking overhead. The numbers
// back the analysis sections of EXPERIMENTS.md (e.g. how much wirelength
// lives at the bottom levels, where the associative-skew freedom acts).
package treestat

import (
	"fmt"
	"io"
	"math"
	"sort"

	"repro/internal/ctree"
	"repro/internal/geom"
)

// Stats summarizes one routed tree.
type Stats struct {
	// Sinks and Internal count the node kinds; Depth is the maximum
	// root-to-leaf edge count.
	Sinks, Internal, Depth int
	// TotalWire is the committed tree wirelength (without source wire).
	TotalWire float64
	// SnakeWire is the committed wire in excess of the geometric child
	// distances (wire snaking / sneaking); SnakedEdges counts the merges
	// carrying any.
	SnakeWire   float64
	SnakedEdges int
	// WireByLevel is the committed wirelength of merges at each level,
	// where a merge's level is the height of its taller child subtree
	// (leaf merges are level 0).
	WireByLevel []float64
	// MeanImbalance is the average |size(left)−size(right)| / size(node)
	// over internal nodes: 0 for perfectly balanced trees.
	MeanImbalance float64
}

// Collect walks the routed tree.
func Collect(root *ctree.Node) *Stats {
	s := &Stats{}
	var walk func(n *ctree.Node) (height, size int)
	walk = func(n *ctree.Node) (int, int) {
		if n.IsLeaf() {
			s.Sinks++
			return 0, 1
		}
		s.Internal++
		hl, szl := walk(n.Left)
		hr, szr := walk(n.Right)
		h := 1 + max(hl, hr)
		level := max(hl, hr)
		for len(s.WireByLevel) <= level {
			s.WireByLevel = append(s.WireByLevel, 0)
		}
		wire := n.EdgeL + n.EdgeR
		s.WireByLevel[level] += wire
		s.TotalWire += wire
		d := geom.DistRR(n.Left.Region, n.Right.Region)
		if excess := wire - d; excess > 1e-9*(1+wire) {
			s.SnakeWire += excess
			s.SnakedEdges++
		}
		sz := szl + szr
		s.MeanImbalance += math.Abs(float64(szl-szr)) / float64(sz)
		if h > s.Depth {
			s.Depth = h
		}
		return h, sz
	}
	walk(root)
	if s.Internal > 0 {
		s.MeanImbalance /= float64(s.Internal)
	}
	return s
}

// BottomFraction returns the fraction of tree wire committed by merges at
// levels < k.
func (s *Stats) BottomFraction(k int) float64 {
	if s.TotalWire == 0 {
		return 0
	}
	var w float64
	for l, lw := range s.WireByLevel {
		if l < k {
			w += lw
		}
	}
	return w / s.TotalWire
}

// Write renders the statistics as a small report.
func (s *Stats) Write(w io.Writer) {
	fmt.Fprintf(w, "sinks %d, internal %d, depth %d\n", s.Sinks, s.Internal, s.Depth)
	fmt.Fprintf(w, "wire %.0f (snaked %.0f over %d edges, %.2f%%)\n",
		s.TotalWire, s.SnakeWire, s.SnakedEdges, 100*s.SnakeWire/math.Max(s.TotalWire, 1))
	fmt.Fprintf(w, "mean size imbalance %.3f\n", s.MeanImbalance)
	fmt.Fprintf(w, "wire by level:")
	for l, lw := range s.WireByLevel {
		fmt.Fprintf(w, " L%d:%.0f%%", l, 100*lw/math.Max(s.TotalWire, 1))
		if l >= 11 {
			fmt.Fprintf(w, " …")
			break
		}
	}
	fmt.Fprintln(w)
}

// LevelQuantile returns the level below which fraction q of the wire lies.
func (s *Stats) LevelQuantile(q float64) int {
	target := q * s.TotalWire
	var acc float64
	levels := make([]int, len(s.WireByLevel))
	for i := range levels {
		levels[i] = i
	}
	sort.Ints(levels)
	for _, l := range levels {
		acc += s.WireByLevel[l]
		if acc >= target {
			return l
		}
	}
	return len(s.WireByLevel) - 1
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
