package treestat

import (
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
)

func TestCollectOnRoutedTree(t *testing.T) {
	in := bench.Small(64, 3)
	res, err := core.ZST(in, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := Collect(res.Root)
	if s.Sinks != 64 || s.Internal != 63 {
		t.Fatalf("counts: %d sinks %d internal", s.Sinks, s.Internal)
	}
	if s.Depth < 6 { // a 64-leaf binary tree is at least 6 deep
		t.Errorf("depth %d", s.Depth)
	}
	if s.TotalWire <= 0 {
		t.Error("no wire")
	}
	var sum float64
	for _, w := range s.WireByLevel {
		sum += w
	}
	if d := sum - s.TotalWire; d > 1e-6*s.TotalWire || d < -1e-6*s.TotalWire {
		t.Errorf("level wire %v != total %v", sum, s.TotalWire)
	}
	if s.MeanImbalance < 0 || s.MeanImbalance > 1 {
		t.Errorf("imbalance %v", s.MeanImbalance)
	}
	if f := s.BottomFraction(3); f <= 0 || f > 1 {
		t.Errorf("bottom fraction %v", f)
	}
	if s.BottomFraction(s.Depth+1) < 0.999 {
		t.Error("full-depth fraction should be 1")
	}
	if q := s.LevelQuantile(0.5); q < 0 || q >= len(s.WireByLevel) {
		t.Errorf("median level %d", q)
	}

	var sb strings.Builder
	s.Write(&sb)
	if !strings.Contains(sb.String(), "wire by level") {
		t.Error("report text missing")
	}
}

func TestSnakeAccounting(t *testing.T) {
	in := bench.Small(100, 7)
	res, err := core.ZST(in, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := Collect(res.Root)
	if s.SnakeWire < 0 {
		t.Error("negative snake wire")
	}
	if s.SnakedEdges == 0 && s.SnakeWire > 0 {
		t.Error("snake wire without snaked edges")
	}
	// Zero-skew trees on random instances practically always snake a little.
	if s.SnakedEdges == 0 {
		t.Log("note: no snaked edges on this seed")
	}
}
