package wire

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"reflect"

	"repro/internal/core"
)

// writer accumulates a message body; seal appends the FNV-64a checksum of
// everything written.
type writer struct {
	b []byte
}

func (w *writer) raw(p []byte) { w.b = append(w.b, p...) }
func (w *writer) u8(v byte)    { w.b = append(w.b, v) }

func (w *writer) u16(v uint16) {
	w.b = binary.LittleEndian.AppendUint16(w.b, v)
}

func (w *writer) uv(v uint64) {
	w.b = binary.AppendUvarint(w.b, v)
}

func (w *writer) iv(v int64) {
	w.b = binary.AppendVarint(w.b, v)
}

// f64 writes the IEEE-754 bit pattern verbatim: the codec never passes a
// float through arithmetic or text, which is what makes round-trips bitwise.
func (w *writer) f64(v float64) {
	w.b = binary.LittleEndian.AppendUint64(w.b, math.Float64bits(v))
}

func (w *writer) bool(v bool) {
	if v {
		w.u8(1)
	} else {
		w.u8(0)
	}
}

func (w *writer) str(s string) {
	w.uv(uint64(len(s)))
	w.b = append(w.b, s...)
}

// seal appends the checksum trailer and returns the finished message.
func (w *writer) seal() []byte {
	h := fnv.New64a()
	h.Write(w.b)
	return binary.LittleEndian.AppendUint64(w.b, h.Sum64())
}

// reader walks a sealed message with a sticky error: after any failure all
// further reads return zero values, so decode paths can batch their error
// checks. It never panics on arbitrary input — every read is bounds-checked.
type reader struct {
	b   []byte
	off int
	err error
}

// open verifies length, magic, checksum and version, and positions a reader
// over the body (checksum trailer excluded).
func open(data []byte, magic [4]byte) (*reader, error) {
	if len(data) < len(magic)+2+8 {
		return nil, fmt.Errorf("wire: message truncated (%d bytes)", len(data))
	}
	body, trailer := data[:len(data)-8], data[len(data)-8:]
	h := fnv.New64a()
	h.Write(body)
	if got, want := binary.LittleEndian.Uint64(trailer), h.Sum64(); got != want {
		return nil, fmt.Errorf("wire: checksum mismatch (message corrupted in transit)")
	}
	r := &reader{b: body}
	var m [4]byte
	copy(m[:], body[:4])
	r.off = 4
	if m != magic {
		return nil, fmt.Errorf("wire: bad magic %q", m[:])
	}
	if v := r.u16(); v != Version {
		return nil, fmt.Errorf("wire: version %d, this build speaks %d", v, Version)
	}
	return r, nil
}

func (r *reader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

func (r *reader) remaining() int { return len(r.b) - r.off }

// done reports the sticky error, or leftover-byte trailing garbage.
func (r *reader) done() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.b) {
		return fmt.Errorf("wire: %d trailing bytes after message", len(r.b)-r.off)
	}
	return nil
}

func (r *reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.remaining() < n {
		r.fail(fmt.Errorf("wire: message truncated at offset %d", r.off))
		return nil
	}
	p := r.b[r.off : r.off+n]
	r.off += n
	return p
}

func (r *reader) u8() byte {
	p := r.take(1)
	if p == nil {
		return 0
	}
	return p[0]
}

func (r *reader) u16() uint16 {
	p := r.take(2)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(p)
}

func (r *reader) uv() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		r.fail(fmt.Errorf("wire: bad varint at offset %d", r.off))
		return 0
	}
	r.off += n
	return v
}

func (r *reader) iv() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.b[r.off:])
	if n <= 0 {
		r.fail(fmt.Errorf("wire: bad varint at offset %d", r.off))
		return 0
	}
	r.off += n
	return v
}

func (r *reader) f64() float64 {
	p := r.take(8)
	if p == nil {
		return 0
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(p))
}

func (r *reader) bool() bool {
	switch r.u8() {
	case 0:
		return false
	case 1:
		return true
	default:
		r.fail(fmt.Errorf("wire: bad boolean at offset %d", r.off-1))
		return false
	}
}

func (r *reader) str(max int) string {
	n := int(r.uv())
	if r.err != nil {
		return ""
	}
	if n < 0 || n > max || n > r.remaining() {
		r.fail(fmt.Errorf("wire: string length %d exceeds payload", n))
		return ""
	}
	return string(r.take(n))
}

// ---- stats ----

// encodeStats/decodeStats walk core.Stats reflectively, field by field in
// declaration order (ints as varints, float64s as bit patterns, nested
// structs recursively). Reflection keeps the codec drift-proof: a field
// added to Stats is carried automatically, and a field of an unsupported
// kind fails loudly at encode time instead of being silently dropped.
func encodeStats(w *writer, s core.Stats) error {
	return encodeStruct(w, reflect.ValueOf(s))
}

func encodeStruct(w *writer, v reflect.Value) error {
	for i := 0; i < v.NumField(); i++ {
		f := v.Field(i)
		switch f.Kind() {
		case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
			w.iv(f.Int())
		case reflect.Float64:
			w.f64(f.Float())
		case reflect.Struct:
			if err := encodeStruct(w, f); err != nil {
				return err
			}
		default:
			return fmt.Errorf("wire: stats field %s has unsupported kind %s",
				v.Type().Field(i).Name, f.Kind())
		}
	}
	return nil
}

func decodeStats(r *reader, s *core.Stats) error {
	if err := decodeStruct(r, reflect.ValueOf(s).Elem()); err != nil {
		return err
	}
	return r.err
}

func decodeStruct(r *reader, v reflect.Value) error {
	for i := 0; i < v.NumField(); i++ {
		f := v.Field(i)
		switch f.Kind() {
		case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
			x := r.iv()
			if f.OverflowInt(x) {
				return fmt.Errorf("wire: stats field %s overflows", v.Type().Field(i).Name)
			}
			f.SetInt(x)
		case reflect.Float64:
			f.SetFloat(r.f64())
		case reflect.Struct:
			if err := decodeStruct(r, f); err != nil {
				return err
			}
		default:
			return fmt.Errorf("wire: stats field %s has unsupported kind %s",
				v.Type().Field(i).Name, f.Kind())
		}
	}
	return nil
}
