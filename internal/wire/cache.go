package wire

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/ctree"
)

// magicCache tags a persisted eco contract (shard.EcoCache's serialized
// form): everything a later process needs to rebuild an edited instance
// incrementally — the routed instance, the sub-build options, the partition,
// the frozen base registry, the pilot offset contract and the per-shard
// pre-stitch subtree encodings (each itself a sealed result message).
var magicCache = [4]byte{'A', 'S', 'T', 'C'}

// Cache is the serialization container for an incremental-rebuild contract.
// It deliberately carries only core/ctree values so the codec stays below
// the shard package (which converts to and from its EcoCache).
type Cache struct {
	// Shards is the cached partition's shard count (== len(Parts) ==
	// len(Blobs)); Pilot records whether the pilot offset pass produced
	// Offsets. Both travel outside Opt: encodeOptions rejects sharding
	// options by design (a work unit is always an unsharded sub-build).
	Shards int
	Pilot  bool
	// Opt is the build's option set with the sharding and local-only fields
	// stripped (Shards/Pilot live above; Trace/Ctx/SneakProbe never travel).
	Opt      core.Options
	Instance *ctree.Instance
	Parts    [][]int
	// Base is the frozen base registry every shard cloned (pilot offsets
	// pre-registered); Offsets is the pilot contract itself (nil when the
	// pilot was off); PilotSinks its routed sample size.
	Base       core.RegistrySnapshot
	Offsets    []float64
	PilotSinks int
	// Blobs[i] is shard i's pre-stitch subtree as a sealed result message
	// (the Encode output of a BuildResult), decodable against Instance.
	Blobs [][]byte
}

// Encode serializes the cache. Like every wire message it is versioned,
// magic-tagged and checksummed; the per-shard blobs keep their own seals, so
// a cache survives exactly one level of nesting without re-hashing payloads.
func (c *Cache) Encode() ([]byte, error) {
	if c.Instance == nil {
		return nil, fmt.Errorf("wire: cache without instance")
	}
	if c.Shards != len(c.Parts) || c.Shards != len(c.Blobs) {
		return nil, fmt.Errorf("wire: cache with %d shards, %d parts, %d blobs",
			c.Shards, len(c.Parts), len(c.Blobs))
	}
	w := &writer{}
	w.raw(magicCache[:])
	w.u16(Version)
	w.uv(uint64(c.Shards))
	w.bool(c.Pilot)
	if err := encodeOptions(w, c.Opt); err != nil {
		return nil, err
	}
	encodeSnapshot(w, c.Base)
	encodeInstance(w, c.Instance)
	for _, p := range c.Parts {
		w.uv(uint64(len(p)))
		for _, id := range p {
			if id < 0 || id >= len(c.Instance.Sinks) {
				return nil, fmt.Errorf("wire: cache part sink id %d out of range", id)
			}
			w.uv(uint64(id))
		}
	}
	w.bool(c.Offsets != nil)
	if c.Offsets != nil {
		w.uv(uint64(len(c.Offsets)))
		for _, v := range c.Offsets {
			w.f64(v)
		}
	}
	w.iv(int64(c.PilotSinks))
	for _, b := range c.Blobs {
		w.uv(uint64(len(b)))
		w.raw(b)
	}
	return w.seal(), nil
}

// DecodeCache parses and validates a cache: counts against the payload, the
// partition as an exact cover of the instance's sinks (every id in exactly
// one non-empty part), the pilot offsets against the group count, and the
// registry snapshot through the executor's forest validation. The shard
// blobs stay sealed — they are verified individually when a rebuild decodes
// them, so a cache open stays cheap.
func DecodeCache(data []byte) (*Cache, error) {
	r, err := open(data, magicCache)
	if err != nil {
		return nil, err
	}
	c := &Cache{Shards: int(r.uv())}
	if r.err != nil {
		return nil, r.err
	}
	if c.Shards <= 0 || c.Shards > r.remaining() {
		return nil, fmt.Errorf("wire: cache shard count %d exceeds payload", c.Shards)
	}
	c.Pilot = r.bool()
	c.Opt, err = decodeOptions(r)
	if err != nil {
		return nil, err
	}
	c.Base = decodeSnapshot(r)
	c.Instance, err = decodeInstance(r)
	if err != nil {
		return nil, err
	}
	n := len(c.Instance.Sinks)
	if c.Shards > n {
		return nil, fmt.Errorf("wire: cache with %d shards over %d sinks", c.Shards, n)
	}
	seen := make([]bool, n)
	covered := 0
	c.Parts = make([][]int, c.Shards)
	for i := range c.Parts {
		m := int(r.uv())
		if r.err != nil {
			return nil, r.err
		}
		if m <= 0 || m > n-covered {
			return nil, fmt.Errorf("wire: cache part %d with %d sinks does not fit the instance", i, m)
		}
		c.Parts[i] = make([]int, m)
		for j := range c.Parts[i] {
			id := int(r.uv())
			if r.err != nil {
				return nil, r.err
			}
			if id < 0 || id >= n {
				return nil, fmt.Errorf("wire: cache part sink id %d out of range", id)
			}
			if seen[id] {
				return nil, fmt.Errorf("wire: cache partition files sink %d twice", id)
			}
			seen[id] = true
			c.Parts[i][j] = id
		}
		covered += m
	}
	if covered != n {
		return nil, fmt.Errorf("wire: cache partition covers %d of %d sinks", covered, n)
	}
	if r.bool() {
		ng := int(r.uv())
		if r.err != nil {
			return nil, r.err
		}
		if ng != c.Instance.NumGroups {
			return nil, fmt.Errorf("wire: cache pilot offsets over %d groups for instance with %d",
				ng, c.Instance.NumGroups)
		}
		c.Offsets = make([]float64, ng)
		for i := range c.Offsets {
			c.Offsets[i] = r.f64()
		}
	}
	c.PilotSinks = int(r.iv())
	if r.err == nil && c.PilotSinks < 0 {
		return nil, fmt.Errorf("wire: cache with %d pilot sinks", c.PilotSinks)
	}
	c.Blobs = make([][]byte, c.Shards)
	for i := range c.Blobs {
		m := int(r.uv())
		if r.err != nil {
			return nil, r.err
		}
		if m <= 0 || m > r.remaining() {
			return nil, fmt.Errorf("wire: cache blob %d length %d exceeds payload", i, m)
		}
		c.Blobs[i] = append([]byte(nil), r.take(m)...)
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	if _, err := core.NewRegistryFromSnapshot(c.Base); err != nil {
		return nil, fmt.Errorf("wire: %w", err)
	}
	if len(c.Base.Parent) != c.Instance.NumGroups {
		return nil, fmt.Errorf("wire: cache registry over %d groups for instance with %d",
			len(c.Base.Parent), c.Instance.NumGroups)
	}
	return c, nil
}
