package wire

import (
	"reflect"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
)

// buildCache constructs a realistic cache container: a grouped instance
// split into two parts, a registry with pilot offsets pre-registered, and
// per-part subtree blobs produced by the worker-side executor.
func buildCache(t *testing.T) *Cache {
	t.Helper()
	in := bench.Intermingled(bench.Small(120, 7), 3, 11)
	opt := core.Options{IntraSkewBound: 2, GroupOffsets: []float64{0, 1.5, -0.25}}
	reg, err := core.NewRegistry(in, opt)
	if err != nil {
		t.Fatal(err)
	}
	parts := [][]int{{}, {}}
	for i := range in.Sinks {
		parts[i%2] = append(parts[i%2], i)
	}
	blobs := make([][]byte, 2)
	for i, p := range parts {
		u := &WorkUnit{Kind: KindBuild, Instance: in, SinkIDs: p, Opt: opt, Registry: reg.Snapshot()}
		br, err := Execute(u)
		if err != nil {
			t.Fatal(err)
		}
		if blobs[i], err = br.Encode(); err != nil {
			t.Fatal(err)
		}
	}
	return &Cache{
		Shards:     2,
		Pilot:      true,
		Opt:        opt,
		Instance:   in,
		Parts:      parts,
		Base:       reg.Snapshot(),
		Offsets:    []float64{0, 1.5, -0.25},
		PilotSinks: 40,
		Blobs:      blobs,
	}
}

// TestCacheRoundTrip pins decode(encode(c)) == c field for field, including
// the nested (still individually sealed) shard blobs.
func TestCacheRoundTrip(t *testing.T) {
	c := buildCache(t)
	data, err := c.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeCache(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Shards != c.Shards || got.Pilot != c.Pilot || got.PilotSinks != c.PilotSinks {
		t.Errorf("header: %d/%v/%d, want %d/%v/%d",
			got.Shards, got.Pilot, got.PilotSinks, c.Shards, c.Pilot, c.PilotSinks)
	}
	if !reflect.DeepEqual(got.Opt, c.Opt) {
		t.Errorf("options did not round-trip:\n got %+v\nwant %+v", got.Opt, c.Opt)
	}
	if !reflect.DeepEqual(got.Parts, c.Parts) {
		t.Error("partition did not round-trip")
	}
	if !reflect.DeepEqual(got.Base, c.Base) {
		t.Error("registry snapshot did not round-trip")
	}
	if !reflect.DeepEqual(got.Offsets, c.Offsets) {
		t.Errorf("offsets %v, want %v", got.Offsets, c.Offsets)
	}
	if !reflect.DeepEqual(got.Instance.Sinks, c.Instance.Sinks) {
		t.Error("instance did not round-trip")
	}
	for i := range c.Blobs {
		if _, err := DecodeResult(got.Blobs[i], got.Instance); err != nil {
			t.Errorf("blob %d no longer decodes: %v", i, err)
		}
	}
}

// TestCacheEncodeRejects covers the writer-side invariants: count
// mismatches, missing instance, out-of-range partition ids.
func TestCacheEncodeRejects(t *testing.T) {
	c := buildCache(t)
	c.Shards = 3
	if _, err := c.Encode(); err == nil {
		t.Error("shard/part count mismatch accepted")
	}
	c = buildCache(t)
	c.Instance = nil
	if _, err := c.Encode(); err == nil {
		t.Error("missing instance accepted")
	}
	c = buildCache(t)
	c.Parts[0][0] = len(c.Instance.Sinks)
	if _, err := c.Encode(); err == nil {
		t.Error("out-of-range part id accepted")
	}
}

// TestCacheDecodeRejects covers the defensive reader: truncation anywhere,
// payload corruption, a partition that is not an exact cover, and offsets
// over the wrong group count all fail at decode — a cache never produces a
// silently wrong rebuild contract.
func TestCacheDecodeRejects(t *testing.T) {
	c := buildCache(t)
	data, err := c.Encode()
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{0, 3, 16, len(data) / 2, len(data) - 1} {
		if _, err := DecodeCache(data[:cut]); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
	for _, at := range []int{4, len(data) / 3, len(data) - 9} {
		bad := append([]byte(nil), data...)
		bad[at] ^= 0x08
		if _, err := DecodeCache(bad); err == nil {
			t.Errorf("corruption at %d accepted", at)
		}
	}

	// A partition that drops a sink is rejected as an incomplete cover.
	c = buildCache(t)
	c.Parts[1] = c.Parts[1][:len(c.Parts[1])-1]
	if data, err = c.Encode(); err == nil {
		if _, err := DecodeCache(data); err == nil {
			t.Error("partition dropping a sink accepted")
		}
	}
	// Offsets over the wrong group count.
	c = buildCache(t)
	c.Offsets = []float64{0, 1}
	if data, err = c.Encode(); err == nil {
		if _, err := DecodeCache(data); err == nil {
			t.Error("offsets over wrong group count accepted")
		}
	}
}
