package wire

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/ctree"
)

// Execute runs a decoded work unit exactly the way the in-process pipeline
// would: a private registry reconstructed from the shipped snapshot, then
// the same core entry points over the same inputs. Determinism makes this
// location-transparent — the result is bitwise what the coordinator's own
// runner would have produced.
func Execute(u *WorkUnit) (*BuildResult, error) {
	reg, err := core.NewRegistryFromSnapshot(u.Registry)
	if err != nil {
		return nil, err
	}
	switch u.Kind {
	case KindBuild:
		sub, err := core.BuildSubtree(u.Instance, u.SinkIDs, u.Opt, reg)
		if err != nil {
			return nil, err
		}
		return &BuildResult{
			Root:       sub.Root,
			Stats:      sub.Stats,
			Wirelength: sub.Root.Wirelength(),
			Registry:   reg.Snapshot(),
		}, nil
	case KindPatch:
		// The pilot patch pair: sample build, then the single-root stitch
		// that resolves a deferred root — mirroring shard's pilot runner.
		sub, err := core.BuildSubtree(u.Instance, u.SinkIDs, u.Opt, reg)
		if err != nil {
			return nil, err
		}
		var st core.Stats
		st.AddRun(sub.Stats)
		top, err := core.MergeRoots(u.Instance, []*ctree.Node{sub.Root}, u.Opt, reg)
		if err != nil {
			return nil, err
		}
		st.AddRun(top.Stats)
		return &BuildResult{
			Root:       top.Root,
			Stats:      st,
			Wirelength: top.Root.Wirelength(),
			Registry:   reg.Snapshot(),
		}, nil
	}
	return nil, fmt.Errorf("wire: unknown work kind %d", u.Kind)
}
