package wire

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"time"

	"repro/internal/dispatch"
)

// maxRequestBytes bounds one work-unit upload (a defensive cap, far above
// any real instance encoding).
const maxRequestBytes = 1 << 30

// ServerOptions configures a worker endpoint.
type ServerOptions struct {
	// Stall, when positive, sleeps that long after decoding each work unit
	// and before executing it. It exists for fault drills: a stalled worker
	// gives a test (or the CI remote job) a deterministic window in which
	// to SIGKILL the process mid-build and exercise the coordinator's
	// failover path. Zero in production.
	Stall time.Duration
}

// NewHandler returns the worker HTTP handler:
//
//	GET  /healthz — liveness, probed by dispatch.WorkerPool
//	POST /build   — one work unit in, one build result out
//
// Status discipline (the contract dispatch.RemoteRunner keys off):
// 400 undecodable request; 422 deterministic build failure (the worker is
// healthy — retrying elsewhere reproduces it); 500 contained handler panic.
// A panic in the build never crashes the worker process.
func NewHandler(o ServerOptions) http.Handler {
	return newHandler(Execute, o)
}

// newHandler takes the executor as a parameter so tests can inject panicking
// or failing builds without constructing poisoned work units.
func newHandler(exec func(*WorkUnit) (*BuildResult, error), o ServerOptions) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(dispatch.PathHealthz, func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet && r.Method != http.MethodHead {
			http.Error(w, "healthz is GET", http.StatusMethodNotAllowed)
			return
		}
		io.WriteString(w, "ok\n")
	})
	mux.HandleFunc(dispatch.PathBuild, func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "build is POST", http.StatusMethodNotAllowed)
			return
		}
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxRequestBytes))
		if err != nil {
			http.Error(w, fmt.Sprintf("read request: %v", err), http.StatusBadRequest)
			return
		}
		u, err := DecodeWork(body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if o.Stall > 0 {
			t := time.NewTimer(o.Stall) //lint:nondet-ok Stall is test-only fault injection; request timing never reaches the encoded bytes
			select {
			case <-t.C:
			case <-r.Context().Done():
				t.Stop()
				return
			}
		}
		var res *BuildResult
		err = dispatch.Protect("worker", func() error {
			var e error
			res, e = exec(u)
			return e
		})
		if err != nil {
			var pe *dispatch.PanicError
			if errors.As(err, &pe) {
				// The panic is contained — the process survives — but the
				// request failed for a server-side reason, so the pool
				// counts it against this worker.
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			http.Error(w, err.Error(), http.StatusUnprocessableEntity)
			return
		}
		out, err := res.Encode()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Write(out)
	})
	return mux
}

// WorkerServer hosts the worker handler on a TCP listener; cmd/routeworker
// wraps it with signal handling, and tests run it in-process.
type WorkerServer struct {
	ln  net.Listener
	srv *http.Server
}

// NewWorkerServer listens on addr (e.g. "127.0.0.1:0") and prepares the
// server; Serve starts it.
func NewWorkerServer(addr string, o ServerOptions) (*WorkerServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &WorkerServer{ln: ln, srv: &http.Server{Handler: NewHandler(o)}}, nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *WorkerServer) Addr() string { return s.ln.Addr().String() }

// Serve blocks serving requests until Shutdown (returning
// http.ErrServerClosed) or a listener error.
func (s *WorkerServer) Serve() error { return s.srv.Serve(s.ln) }

// Shutdown drains gracefully: the listener closes immediately, in-flight
// builds run to completion (or until ctx expires), then Serve returns.
func (s *WorkerServer) Shutdown(ctx context.Context) error { return s.srv.Shutdown(ctx) }
