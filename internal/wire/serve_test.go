package wire

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func postBuild(t *testing.T, h http.Handler, body []byte) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "http://worker/build", bytes.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func TestHandlerServesBuild(t *testing.T) {
	h := NewHandler(ServerOptions{})
	u := buildWork(t, KindBuild)
	body, err := u.Encode()
	if err != nil {
		t.Fatal(err)
	}
	rec := postBuild(t, h, body)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body %q", rec.Code, rec.Body.String())
	}
	res, err := DecodeResult(rec.Body.Bytes(), u.Instance)
	if err != nil {
		t.Fatal(err)
	}
	if res.Root == nil || res.Wirelength <= 0 {
		t.Fatalf("implausible result: root=%v wl=%v", res.Root, res.Wirelength)
	}
}

func TestHandlerRejectsGarbageWith400(t *testing.T) {
	h := NewHandler(ServerOptions{})
	for _, body := range [][]byte{nil, []byte("not a work unit"), []byte("ASTW\x00\x00")} {
		if rec := postBuild(t, h, body); rec.Code != http.StatusBadRequest {
			t.Errorf("garbage body %q → %d, want 400", body, rec.Code)
		}
	}
}

func TestHandlerHealthz(t *testing.T) {
	h := NewHandler(ServerOptions{})
	req := httptest.NewRequest(http.MethodGet, "http://worker/healthz", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "ok") {
		t.Fatalf("healthz = %d %q", rec.Code, rec.Body.String())
	}
	req = httptest.NewRequest(http.MethodPost, "http://worker/healthz", nil)
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST /healthz = %d, want 405", rec.Code)
	}
}

// TestHandlerContainsPanicAs500 pins the worker's survival contract: a
// panicking build answers 500 and the handler keeps serving.
func TestHandlerContainsPanicAs500(t *testing.T) {
	boom := func(u *WorkUnit) (*BuildResult, error) { panic("routing exploded") }
	h := newHandler(boom, ServerOptions{})
	u := buildWork(t, KindBuild)
	body, err := u.Encode()
	if err != nil {
		t.Fatal(err)
	}
	rec := postBuild(t, h, body)
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("panicking build = %d, want 500", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "routing exploded") {
		t.Errorf("500 body does not name the panic: %q", rec.Body.String())
	}
	// The process (here: the handler) is still alive and healthy.
	req := httptest.NewRequest(http.MethodGet, "http://worker/healthz", nil)
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatal("handler dead after contained panic")
	}
}

func TestHandlerBuildErrorIs422(t *testing.T) {
	fail := func(u *WorkUnit) (*BuildResult, error) { return nil, errors.New("infeasible skew bound") }
	h := newHandler(fail, ServerOptions{})
	u := buildWork(t, KindBuild)
	body, err := u.Encode()
	if err != nil {
		t.Fatal(err)
	}
	rec := postBuild(t, h, body)
	if rec.Code != http.StatusUnprocessableEntity {
		t.Fatalf("deterministic build failure = %d, want 422", rec.Code)
	}
}

// TestServerDrainsInFlightBuild pins graceful shutdown: Shutdown called while
// a stalled build is in flight must let that build finish and deliver 200.
func TestServerDrainsInFlightBuild(t *testing.T) {
	srv, err := NewWorkerServer("127.0.0.1:0", ServerOptions{Stall: 300 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve() }()

	u := buildWork(t, KindBuild)
	body, err := u.Encode()
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	var code int
	var respErr error
	go func() {
		defer wg.Done()
		resp, err := http.Post(fmt.Sprintf("http://%s/build", srv.Addr()), "application/octet-stream", bytes.NewReader(body))
		if err != nil {
			respErr = err
			return
		}
		code = resp.StatusCode
		resp.Body.Close()
	}()
	time.Sleep(100 * time.Millisecond) // let the request reach the stall window
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	wg.Wait()
	if respErr != nil {
		t.Fatalf("in-flight request dropped during drain: %v", respErr)
	}
	if code != http.StatusOK {
		t.Fatalf("in-flight build answered %d during drain, want 200", code)
	}
	if err := <-serveErr; !errors.Is(err, http.ErrServerClosed) {
		t.Fatalf("Serve returned %v, want ErrServerClosed", err)
	}
}
