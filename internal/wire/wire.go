// Package wire is the remote-dispatch serialization layer: a compact,
// deterministic, versioned binary codec for the sharded pipeline's work
// units (a sink subset plus a frozen registry snapshot and the
// remote-relevant subset of core.Options, inbound) and for built subtrees
// (nodes, delay sets, stats, registry state, outbound). The codec's
// contract is the pipeline's determinism contract made portable: decoding
// an encoding reproduces the value bitwise — floats travel as their IEEE
// bit patterns and are never recomputed — so a sub-build executed by a
// remote worker is indistinguishable from the in-process build, byte for
// byte. Every message carries a magic tag, a format version, and a trailing
// FNV-64a checksum; decoders are defensive end to end (bounds-checked
// counts, no panics on arbitrary input), so a corrupted or malicious
// payload yields an error, never a crash — the dispatch layer classifies
// such errors as transient and re-dispatches.
//
// Observation does not travel: Options.Trace, Options.Ctx and
// Options.SneakProbe are deliberately not encoded (a worker build runs
// untraced; the coordinator owns tracing and cancellation).
package wire

import (
	"fmt"
	"math"
	"slices"

	"repro/internal/core"
	"repro/internal/ctree"
	"repro/internal/geom"
	"repro/internal/order"
	"repro/internal/rctree"
)

// Version tags the wire format. Bump on any layout change; decoders reject
// other versions outright rather than guessing.
const Version uint16 = 1

// Message magic tags (work unit vs result), so one can never decode as the
// other.
var (
	magicWork   = [4]byte{'A', 'S', 'T', 'W'}
	magicResult = [4]byte{'A', 'S', 'T', 'R'}
)

// Work-unit kinds.
const (
	// KindBuild is a shard sub-build: BuildSubtree over the sink subset.
	KindBuild = 1
	// KindPatch is a pilot patch: BuildSubtree over the sample followed by
	// a single-root MergeRoots, the pair the pilot's local runner performs.
	KindPatch = 2
)

// Defensive decode limits. These bound allocations against adversarial
// counts; real payloads sit far below them.
const (
	maxNameLen = 4096
	// minimum encoded bytes per repeated element, used to bound counts
	// against the remaining payload before allocating.
	minSinkBytes  = 25 // 3 floats + group varint
	minNodeBytes  = 32
	minEntryBytes = 8
)

// WorkUnit is one remote task: route SinkIDs of Instance under Opt against
// a private registry reconstructed from Registry.
type WorkUnit struct {
	Kind     int
	Instance *ctree.Instance
	SinkIDs  []int
	Opt      core.Options
	Registry core.RegistrySnapshot
}

// BuildResult is a worker's product: the built (unembedded) subtree, its
// stats, its wirelength as built, and the worker-side registry's final
// state (the offsets the sub-build committed, which the coordinator reads
// back).
type BuildResult struct {
	Root       *ctree.Node
	Stats      core.Stats
	Wirelength float64
	Registry   core.RegistrySnapshot
}

// EncodeWork serializes a work unit. It errors on options the format cannot
// carry faithfully (closure-valued order overrides, non-Elmore models,
// nested sharding) rather than silently dropping them.
func (u *WorkUnit) Encode() ([]byte, error) {
	if u.Instance == nil {
		return nil, fmt.Errorf("wire: work unit without instance")
	}
	if u.Kind != KindBuild && u.Kind != KindPatch {
		return nil, fmt.Errorf("wire: unknown work kind %d", u.Kind)
	}
	w := &writer{}
	w.raw(magicWork[:])
	w.u16(Version)
	w.u8(byte(u.Kind))
	if err := encodeOptions(w, u.Opt); err != nil {
		return nil, err
	}
	encodeSnapshot(w, u.Registry)
	encodeInstance(w, u.Instance)
	w.uv(uint64(len(u.SinkIDs)))
	for _, id := range u.SinkIDs {
		if id < 0 || id >= len(u.Instance.Sinks) {
			return nil, fmt.Errorf("wire: sink id %d out of range", id)
		}
		w.uv(uint64(id))
	}
	return w.seal(), nil
}

// DecodeWork parses and validates a work unit: version and checksum first,
// then every count and index against the instance, and the registry
// snapshot through the same forest validation the executor will apply.
func DecodeWork(data []byte) (*WorkUnit, error) {
	r, err := open(data, magicWork)
	if err != nil {
		return nil, err
	}
	u := &WorkUnit{Kind: int(r.u8())}
	if r.err == nil && u.Kind != KindBuild && u.Kind != KindPatch {
		return nil, fmt.Errorf("wire: unknown work kind %d", u.Kind)
	}
	u.Opt, err = decodeOptions(r)
	if err != nil {
		return nil, err
	}
	u.Registry = decodeSnapshot(r)
	u.Instance, err = decodeInstance(r)
	if err != nil {
		return nil, err
	}
	n := int(r.uv())
	if r.err != nil {
		return nil, r.err
	}
	if n < 0 || n > len(u.Instance.Sinks) {
		return nil, fmt.Errorf("wire: %d sink ids for %d sinks", n, len(u.Instance.Sinks))
	}
	if n > 0 {
		u.SinkIDs = make([]int, n)
		seen := make([]bool, len(u.Instance.Sinks))
		for i := range u.SinkIDs {
			id := int(r.uv())
			if r.err != nil {
				return nil, r.err
			}
			if id < 0 || id >= len(u.Instance.Sinks) {
				return nil, fmt.Errorf("wire: sink id %d out of range", id)
			}
			if seen[id] {
				return nil, fmt.Errorf("wire: duplicate sink id %d", id)
			}
			seen[id] = true
			u.SinkIDs[i] = id
		}
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	if _, err := core.NewRegistryFromSnapshot(u.Registry); err != nil {
		return nil, fmt.Errorf("wire: %w", err)
	}
	if len(u.Registry.Parent) != u.Instance.NumGroups {
		return nil, fmt.Errorf("wire: registry over %d groups for instance with %d",
			len(u.Registry.Parent), u.Instance.NumGroups)
	}
	return u, nil
}

// Encode serializes a build result.
func (b *BuildResult) Encode() ([]byte, error) {
	if b.Root == nil {
		return nil, fmt.Errorf("wire: result without root")
	}
	w := &writer{}
	w.raw(magicResult[:])
	w.u16(Version)
	if err := encodeTree(w, b.Root); err != nil {
		return nil, err
	}
	if err := encodeStats(w, b.Stats); err != nil {
		return nil, err
	}
	w.f64(b.Wirelength)
	encodeSnapshot(w, b.Registry)
	return w.seal(), nil
}

// DecodeResult parses a build result against the instance the work was cut
// from (leaf nodes resolve their sink pointers into it).
func DecodeResult(data []byte, in *ctree.Instance) (*BuildResult, error) {
	return DecodeResultRemapped(data, in, nil)
}

// DecodeResultRemapped parses a build result whose leaf sink ids live in an
// OLDER id space than the instance's: remap[old] names the sink of in that
// old id became (-1 = removed, which a retained subtree must not reference).
// The incremental-rerouting cache uses this to adopt a clean shard's blob
// across instance edits in a single decode pass — no decode-rewrite-reencode
// round trip. A nil remap is the identity (plain DecodeResult).
func DecodeResultRemapped(data []byte, in *ctree.Instance, remap []int) (*BuildResult, error) {
	if in == nil {
		return nil, fmt.Errorf("wire: decode result without instance")
	}
	r, err := open(data, magicResult)
	if err != nil {
		return nil, err
	}
	b := &BuildResult{}
	b.Root, err = decodeTree(r, in, remap)
	if err != nil {
		return nil, err
	}
	if err := decodeStats(r, &b.Stats); err != nil {
		return nil, err
	}
	b.Wirelength = r.f64()
	b.Registry = decodeSnapshot(r)
	if err := r.done(); err != nil {
		return nil, err
	}
	if _, err := core.NewRegistryFromSnapshot(b.Registry); err != nil {
		return nil, fmt.Errorf("wire: %w", err)
	}
	return b, nil
}

// ---- options ----

// encodeOptions writes the remote-relevant subset of core.Options. Trace,
// Ctx and SneakProbe are intentionally skipped (observation stays with the
// coordinator); anything else the format cannot represent is an error.
func encodeOptions(w *writer, o core.Options) error {
	switch m := o.Model.(type) {
	case nil:
		w.u8(0)
	case rctree.Elmore:
		w.u8(1)
		w.f64(m.ROhmPerUnit)
		w.f64(m.CFFPerUnit)
	default:
		return fmt.Errorf("wire: model %q is not serializable", o.Model.Name())
	}
	if o.Order.Key != nil || o.Order.Pairer != nil {
		return fmt.Errorf("wire: order overrides (Key/Pairer closures) are not serializable")
	}
	if o.Shards > 0 || o.Pilot {
		return fmt.Errorf("wire: nested sharding options do not travel (Shards=%d Pilot=%v)", o.Shards, o.Pilot)
	}
	w.f64(o.IntraSkewBound)
	w.f64(o.InterSkewBound)
	w.bool(o.SingleGroup)
	w.f64(o.GlobalBound)
	w.iv(int64(o.Order.Strategy))
	w.f64(o.Order.BatchFraction)
	w.iv(int64(o.Pairer))
	w.iv(int64(o.PairerThreshold))
	w.f64(o.DelayTargetBias)
	w.bool(o.EndpointSplit)
	w.uv(uint64(len(o.PairConstraints)))
	for _, pc := range o.PairConstraints {
		w.iv(int64(pc.I))
		w.iv(int64(pc.J))
		w.f64(pc.MinPs)
		w.f64(pc.MaxPs)
	}
	w.bool(o.GroupOffsets != nil)
	if o.GroupOffsets != nil {
		w.uv(uint64(len(o.GroupOffsets)))
		for _, v := range o.GroupOffsets {
			w.f64(v)
		}
	}
	w.iv(int64(o.MaxSneakIter))
	w.f64(o.SneakCostCap)
	w.iv(int64(o.MergeWorkers))
	return nil
}

func decodeOptions(r *reader) (core.Options, error) {
	var o core.Options
	switch k := r.u8(); {
	case r.err != nil:
	case k == 0:
	case k == 1:
		rr, c := r.f64(), r.f64()
		if r.err == nil {
			if !(rr > 0 && c > 0) || math.IsInf(rr, 0) || math.IsInf(c, 0) {
				return o, fmt.Errorf("wire: bad elmore parameters r=%v c=%v", rr, c)
			}
			o.Model = rctree.NewElmore(rr, c)
		}
	default:
		return o, fmt.Errorf("wire: unknown model tag %d", k)
	}
	o.IntraSkewBound = r.f64()
	o.InterSkewBound = r.f64()
	o.SingleGroup = r.bool()
	o.GlobalBound = r.f64()
	o.Order.Strategy = order.Strategy(r.iv())
	o.Order.BatchFraction = r.f64()
	o.Pairer = core.PairerMode(r.iv())
	o.PairerThreshold = int(r.iv())
	o.DelayTargetBias = r.f64()
	o.EndpointSplit = r.bool()
	npc := int(r.uv())
	if r.err != nil {
		return o, r.err
	}
	if npc < 0 || npc > r.remaining()/minEntryBytes {
		return o, fmt.Errorf("wire: pair-constraint count %d exceeds payload", npc)
	}
	for i := 0; i < npc; i++ {
		pc := core.PairConstraint{I: int(r.iv()), J: int(r.iv()), MinPs: r.f64(), MaxPs: r.f64()}
		if r.err != nil {
			return o, r.err
		}
		o.PairConstraints = append(o.PairConstraints, pc)
	}
	if r.bool() {
		ng := int(r.uv())
		if r.err != nil {
			return o, r.err
		}
		if ng < 0 || ng > r.remaining()/minEntryBytes+1 {
			return o, fmt.Errorf("wire: group-offset count %d exceeds payload", ng)
		}
		o.GroupOffsets = make([]float64, ng)
		for i := range o.GroupOffsets {
			o.GroupOffsets[i] = r.f64()
		}
	}
	o.MaxSneakIter = int(r.iv())
	o.SneakCostCap = r.f64()
	o.MergeWorkers = int(r.iv())
	if r.err != nil {
		return o, r.err
	}
	if o.Order.Strategy < order.Multi || o.Order.Strategy > order.GreedyBatch {
		return o, fmt.Errorf("wire: unknown order strategy %d", o.Order.Strategy)
	}
	if o.Pairer < core.PairerAuto || o.Pairer > core.PairerGrid {
		return o, fmt.Errorf("wire: unknown pairer mode %d", o.Pairer)
	}
	if o.PairerThreshold < 0 || o.MaxSneakIter < 0 {
		return o, fmt.Errorf("wire: negative option (pairer threshold %d, sneak iter %d)",
			o.PairerThreshold, o.MaxSneakIter)
	}
	if o.MergeWorkers < 0 || o.MergeWorkers > 1<<16 {
		return o, fmt.Errorf("wire: merge workers %d out of range", o.MergeWorkers)
	}
	for _, f := range []float64{o.IntraSkewBound, o.InterSkewBound, o.GlobalBound,
		o.Order.BatchFraction, o.DelayTargetBias, o.SneakCostCap} {
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return o, fmt.Errorf("wire: non-finite option value %v", f)
		}
	}
	return o, nil
}

// ---- registry snapshot ----

func encodeSnapshot(w *writer, s core.RegistrySnapshot) {
	w.uv(uint64(len(s.Parent)))
	for _, p := range s.Parent {
		w.uv(uint64(p))
	}
	for _, v := range s.Off {
		w.f64(v)
	}
	w.iv(int64(s.PreUnions))
}

// decodeSnapshot reads the raw snapshot; structural validation (forest,
// ranges) is core.NewRegistryFromSnapshot's job and the message decoders
// invoke it before returning.
func decodeSnapshot(r *reader) core.RegistrySnapshot {
	var s core.RegistrySnapshot
	n := int(r.uv())
	if r.err != nil {
		return s
	}
	if n < 0 || n > r.remaining() {
		r.fail(fmt.Errorf("wire: registry group count %d exceeds payload", n))
		return s
	}
	s.Parent = make([]int, n)
	for i := range s.Parent {
		s.Parent[i] = int(r.uv())
	}
	s.Off = make([]float64, n)
	for i := range s.Off {
		s.Off[i] = r.f64()
	}
	s.PreUnions = int(r.iv())
	return s
}

// ---- instance ----

func encodeInstance(w *writer, in *ctree.Instance) {
	w.str(in.Name)
	w.f64(in.Source.X)
	w.f64(in.Source.Y)
	w.iv(int64(in.NumGroups))
	w.uv(uint64(len(in.Sinks)))
	for i := range in.Sinks {
		s := &in.Sinks[i]
		w.f64(s.Loc.X)
		w.f64(s.Loc.Y)
		w.f64(s.CapFF)
		w.iv(int64(s.Group))
	}
}

func decodeInstance(r *reader) (*ctree.Instance, error) {
	in := &ctree.Instance{Name: r.str(maxNameLen)}
	in.Source = geom.Point{X: r.f64(), Y: r.f64()}
	in.NumGroups = int(r.iv())
	n := int(r.uv())
	if r.err != nil {
		return nil, r.err
	}
	if n <= 0 || n > r.remaining()/minSinkBytes+1 {
		return nil, fmt.Errorf("wire: sink count %d exceeds payload", n)
	}
	in.Sinks = make([]ctree.Sink, n)
	for i := range in.Sinks {
		s := &in.Sinks[i]
		s.ID = i
		s.Loc = geom.Point{X: r.f64(), Y: r.f64()}
		s.CapFF = r.f64()
		s.Group = int(r.iv())
		if r.err != nil {
			return nil, r.err
		}
		for _, f := range []float64{s.Loc.X, s.Loc.Y, s.CapFF} {
			if math.IsNaN(f) || math.IsInf(f, 0) {
				return nil, fmt.Errorf("wire: non-finite coordinate on sink %d", i)
			}
		}
	}
	if math.IsNaN(in.Source.X) || math.IsInf(in.Source.X, 0) ||
		math.IsNaN(in.Source.Y) || math.IsInf(in.Source.Y, 0) {
		return nil, fmt.Errorf("wire: non-finite source location")
	}
	if err := in.Validate(); err != nil {
		return nil, fmt.Errorf("wire: %w", err)
	}
	return in, nil
}

// ---- node tree ----

// Node record flags.
const (
	nodeLeaf     = 1 << 0
	nodePlaced   = 1 << 1
	nodeDeferred = 1 << 2
	nodeHandles  = 1 << 3
)

// handleFix is a handle reference read before its target node existed; it
// resolves after the whole pre-order is reconstructed.
type handleFix struct {
	node  *ctree.Node
	group int
	idx   int // pre-order index of the handle edge's parent node
	side  ctree.Side
}

// encodeTree writes the subtree as a pre-order sequence of flat records;
// handle references name their parent node by pre-order index, so the
// format needs no pointers and decoding needs no recursion.
func encodeTree(w *writer, root *ctree.Node) error {
	// Pre-order index every node first so handles can refer across the tree.
	index := map[*ctree.Node]int{}
	var nodes []*ctree.Node
	stack := []*ctree.Node{root}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if n == nil {
			return fmt.Errorf("wire: nil node in tree")
		}
		if _, dup := index[n]; dup {
			return fmt.Errorf("wire: node %d appears twice in tree", n.ID)
		}
		index[n] = len(nodes)
		nodes = append(nodes, n)
		if n.IsLeaf() {
			if n.Left != nil || n.Right != nil {
				return fmt.Errorf("wire: leaf %d has children", n.ID)
			}
			continue
		}
		if n.Left == nil || n.Right == nil {
			return fmt.Errorf("wire: internal node %d missing a child", n.ID)
		}
		// Push right first so the left subtree pops (and encodes) first —
		// records must appear in pre-order.
		stack = append(stack, n.Right, n.Left)
	}
	w.uv(uint64(len(nodes)))
	for _, n := range nodes {
		if err := encodeNode(w, n, index); err != nil {
			return err
		}
	}
	return nil
}

func encodeNode(w *writer, n *ctree.Node, index map[*ctree.Node]int) error {
	var flags byte
	if n.IsLeaf() {
		flags |= nodeLeaf
	}
	if n.Placed {
		flags |= nodePlaced
	}
	if n.Deferred {
		flags |= nodeDeferred
	}
	if len(n.Handles) > 0 {
		flags |= nodeHandles
	}
	w.u8(flags)
	w.iv(int64(n.ID))
	if n.IsLeaf() {
		w.uv(uint64(n.Sink.ID))
	}
	w.f64(n.EdgeL)
	w.f64(n.EdgeR)
	w.f64(n.Region.ULo)
	w.f64(n.Region.UHi)
	w.f64(n.Region.VLo)
	w.f64(n.Region.VHi)
	w.f64(n.Cap)
	w.uv(uint64(len(n.Groups)))
	for _, g := range n.Groups {
		w.iv(int64(g))
	}
	if len(n.Delay.Groups) != len(n.Delay.Ivs) {
		return fmt.Errorf("wire: node %d delay set with %d groups, %d intervals",
			n.ID, len(n.Delay.Groups), len(n.Delay.Ivs))
	}
	w.bool(!n.Delay.IsZero())
	w.uv(uint64(n.Delay.Len()))
	for i := 0; i < n.Delay.Len(); i++ {
		g, iv := n.Delay.At(i)
		w.iv(int64(g))
		w.f64(iv.Lo)
		w.f64(iv.Hi)
	}
	if flags&nodeHandles != 0 {
		// Sorted by group: map iteration order must not leak into the bytes
		// (same tree, same bytes — the determinism contract).
		groups := make([]int, 0, len(n.Handles))
		for g := range n.Handles {
			groups = append(groups, g)
		}
		slices.Sort(groups)
		w.uv(uint64(len(groups)))
		for _, g := range groups {
			ref := n.Handles[g]
			pi, ok := index[ref.Parent]
			if !ok {
				return fmt.Errorf("wire: node %d handle for group %d points outside the tree", n.ID, g)
			}
			w.iv(int64(g))
			w.uv(uint64(pi))
			w.u8(byte(ref.Side))
		}
	}
	w.f64(n.Loc.U)
	w.f64(n.Loc.V)
	if flags&nodeDeferred != 0 {
		w.f64(n.DefD)
		w.f64(n.DefELo)
		w.f64(n.DefEHi)
		for _, f := range []float64{n.DefRegion.ULo, n.DefRegion.UHi, n.DefRegion.VLo, n.DefRegion.VHi,
			n.DefRegion.SLo, n.DefRegion.SHi, n.DefRegion.TLo, n.DefRegion.THi} {
			w.f64(f)
		}
	}
	return nil
}

// decodeTree reconstructs the pre-order iteratively (a stack of open
// internal nodes, never the goroutine stack — adversarially deep chains
// cannot overflow it).
func decodeTree(r *reader, in *ctree.Instance, remap []int) (*ctree.Node, error) {
	count := int(r.uv())
	if r.err != nil {
		return nil, r.err
	}
	if count <= 0 || count > r.remaining()/minNodeBytes+1 {
		return nil, fmt.Errorf("wire: node count %d exceeds payload", count)
	}
	nodes := make([]*ctree.Node, 0, count)
	var open []*ctree.Node // internal nodes still missing a child
	var root *ctree.Node
	var fixes []handleFix
	for i := 0; i < count; i++ {
		if root != nil && len(open) == 0 {
			return nil, fmt.Errorf("wire: node record %d after the tree completed", i)
		}
		n, err := decodeNode(r, in, remap, &fixes)
		if err != nil {
			return nil, err
		}
		if root == nil {
			root = n
		} else {
			top := open[len(open)-1]
			if top.Left == nil {
				top.Left = n
			} else {
				top.Right = n
				open = open[:len(open)-1]
			}
		}
		nodes = append(nodes, n)
		if !n.IsLeaf() {
			open = append(open, n)
		}
	}
	if len(open) > 0 {
		return nil, fmt.Errorf("wire: tree truncated, %d internal nodes missing children", len(open))
	}
	for _, fx := range fixes {
		if fx.idx < 0 || fx.idx >= len(nodes) {
			return nil, fmt.Errorf("wire: handle parent index %d out of range", fx.idx)
		}
		parent := nodes[fx.idx]
		if fx.side != ctree.SideL && fx.side != ctree.SideR {
			return nil, fmt.Errorf("wire: handle with bad side %d", fx.side)
		}
		if (fx.side == ctree.SideL && parent.Left == nil) || (fx.side == ctree.SideR && parent.Right == nil) {
			return nil, fmt.Errorf("wire: handle edge (%d, side %d) does not exist", fx.idx, fx.side)
		}
		if fx.node.Handles == nil {
			fx.node.Handles = make(map[int]ctree.EdgeRef)
		}
		fx.node.Handles[fx.group] = ctree.EdgeRef{Parent: parent, Side: fx.side}
	}
	return root, nil
}

func decodeNode(r *reader, in *ctree.Instance, remap []int, fixes *[]handleFix) (*ctree.Node, error) {
	flags := r.u8()
	if r.err != nil {
		return nil, r.err
	}
	n := &ctree.Node{ID: int(r.iv())}
	if flags&nodeLeaf != 0 {
		sid := int(r.uv())
		if r.err != nil {
			return nil, r.err
		}
		if remap != nil {
			if sid < 0 || sid >= len(remap) || remap[sid] < 0 {
				return nil, fmt.Errorf("wire: leaf sink id %d has no image under the remap", sid)
			}
			// Leaf identity follows the sink into the new id space.
			sid = remap[sid]
			n.ID = sid
		}
		if sid < 0 || sid >= len(in.Sinks) {
			return nil, fmt.Errorf("wire: leaf sink id %d out of range", sid)
		}
		n.Sink = &in.Sinks[sid]
	}
	n.EdgeL = r.f64()
	n.EdgeR = r.f64()
	n.Region = geom.Rect{ULo: r.f64(), UHi: r.f64(), VLo: r.f64(), VHi: r.f64()}
	n.Cap = r.f64()
	ng := int(r.uv())
	if r.err != nil {
		return nil, r.err
	}
	if ng < 0 || ng > r.remaining() {
		return nil, fmt.Errorf("wire: group count %d exceeds payload", ng)
	}
	if ng > 0 {
		n.Groups = make([]int, ng)
		for i := range n.Groups {
			n.Groups[i] = int(r.iv())
			if i > 0 && r.err == nil && n.Groups[i] <= n.Groups[i-1] {
				return nil, fmt.Errorf("wire: node %d groups not ascending", n.ID)
			}
		}
	}
	hasDelay := r.bool()
	nd := int(r.uv())
	if r.err != nil {
		return nil, r.err
	}
	if nd < 0 || nd > r.remaining()/minEntryBytes+1 {
		return nil, fmt.Errorf("wire: delay count %d exceeds payload", nd)
	}
	if hasDelay {
		n.Delay = rctree.DelaySet{Groups: make([]int32, nd), Ivs: make([]rctree.Interval, nd)}
		for i := 0; i < nd; i++ {
			g := r.iv()
			if g < math.MinInt32 || g > math.MaxInt32 {
				return nil, fmt.Errorf("wire: delay group %d out of int32 range", g)
			}
			n.Delay.Groups[i] = int32(g)
			n.Delay.Ivs[i] = rctree.Interval{Lo: r.f64(), Hi: r.f64()}
			if i > 0 && r.err == nil && n.Delay.Groups[i] <= n.Delay.Groups[i-1] {
				return nil, fmt.Errorf("wire: node %d delay groups not ascending", n.ID)
			}
		}
	} else if nd != 0 {
		return nil, fmt.Errorf("wire: zero delay set with %d entries", nd)
	}
	if flags&nodeHandles != 0 {
		nh := int(r.uv())
		if r.err != nil {
			return nil, r.err
		}
		if nh <= 0 || nh > r.remaining()/3+1 {
			return nil, fmt.Errorf("wire: handle count %d exceeds payload", nh)
		}
		last := math.MinInt
		for i := 0; i < nh; i++ {
			g := int(r.iv())
			idx := int(r.uv())
			side := ctree.Side(r.u8())
			if r.err != nil {
				return nil, r.err
			}
			if g <= last {
				return nil, fmt.Errorf("wire: node %d handles not ascending", n.ID)
			}
			last = g
			*fixes = append(*fixes, handleFix{node: n, group: g, idx: idx, side: side})
		}
	}
	n.Loc = geom.UV{U: r.f64(), V: r.f64()}
	n.Placed = flags&nodePlaced != 0
	if flags&nodeDeferred != 0 {
		n.Deferred = true
		n.DefD = r.f64()
		n.DefELo = r.f64()
		n.DefEHi = r.f64()
		n.DefRegion = geom.Octagon{
			ULo: r.f64(), UHi: r.f64(), VLo: r.f64(), VHi: r.f64(),
			SLo: r.f64(), SHi: r.f64(), TLo: r.f64(), THi: r.f64(),
		}
	}
	return n, r.err
}
