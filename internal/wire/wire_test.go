package wire

import (
	"bytes"
	"hash/fnv"
	"math"
	"reflect"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/ctree"
	"repro/internal/eval"
)

// buildWork constructs a realistic grouped work unit: an intermingled
// 4-group instance, a sink subset, a registry with some committed state.
func buildWork(t *testing.T, kind int) *WorkUnit {
	t.Helper()
	in := bench.Intermingled(bench.Small(300, 7), 4, 11)
	opt := core.Options{IntraSkewBound: 2}
	reg, err := core.NewRegistry(in, opt)
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]int, 0, len(in.Sinks)/2)
	for i := 0; i < len(in.Sinks); i += 2 {
		ids = append(ids, i)
	}
	if kind == KindPatch {
		ids = nil // a patch routes its full sample; nil = all sinks
	}
	return &WorkUnit{Kind: kind, Instance: in, SinkIDs: ids, Opt: opt, Registry: reg.Snapshot()}
}

func digestTree(t *testing.T, root *ctree.Node, in *ctree.Instance) uint64 {
	t.Helper()
	rep := eval.Analyze(root, in, core.DefaultModel(), in.Source)
	h := fnv.New64a()
	var buf [8]byte
	for _, d := range rep.SinkDelay {
		bits := math.Float64bits(d)
		for i := 0; i < 8; i++ {
			buf[i] = byte(bits >> (8 * i))
		}
		h.Write(buf[:])
	}
	return h.Sum64()
}

// TestWorkUnitRoundTrip pins decode(encode(u)) == u for the fields that
// matter, including float bit patterns.
func TestWorkUnitRoundTrip(t *testing.T) {
	u := buildWork(t, KindBuild)
	u.Opt.Model = core.DefaultModel()
	u.Opt.PairConstraints = []core.PairConstraint{{I: 0, J: 2, MinPs: -3.5, MaxPs: 7.25}}
	u.Opt.GroupOffsets = nil
	data, err := u.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeWork(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind != u.Kind {
		t.Errorf("kind = %d, want %d", got.Kind, u.Kind)
	}
	if !reflect.DeepEqual(got.SinkIDs, u.SinkIDs) {
		t.Error("sink ids did not round-trip")
	}
	if !reflect.DeepEqual(got.Registry, u.Registry) {
		t.Errorf("registry did not round-trip: %+v vs %+v", got.Registry, u.Registry)
	}
	if !reflect.DeepEqual(got.Opt, u.Opt) {
		t.Errorf("options did not round-trip:\n got %+v\nwant %+v", got.Opt, u.Opt)
	}
	if got.Instance.Name != u.Instance.Name || got.Instance.NumGroups != u.Instance.NumGroups ||
		got.Instance.Source != u.Instance.Source || !reflect.DeepEqual(got.Instance.Sinks, u.Instance.Sinks) {
		t.Error("instance did not round-trip")
	}
	// Determinism of the encoding itself: same value, same bytes.
	data2, err := u.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, data2) {
		t.Error("encoding is not deterministic")
	}
}

// TestResultRoundTripThroughFullBuild is the golden contract: a real
// BuildSubtree product — delay sets, handles, deferred root, stats,
// registry — survives encode/decode bitwise. The decoded subtree then
// finishes the pipeline (MergeRoots + Embed) side by side with the
// original, and the two trees agree on wirelength bits, per-sink delay
// digest, and stats.
func TestResultRoundTripThroughFullBuild(t *testing.T) {
	u := buildWork(t, KindBuild)
	ref, err := Execute(u) // the worker-side path over the original structs
	if err != nil {
		t.Fatal(err)
	}
	data, err := ref.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeResult(data, u.Instance)
	if err != nil {
		t.Fatal(err)
	}
	if got.Stats != ref.Stats {
		t.Errorf("stats did not round-trip:\n got %+v\nwant %+v", got.Stats, ref.Stats)
	}
	if math.Float64bits(got.Wirelength) != math.Float64bits(ref.Wirelength) {
		t.Errorf("wirelength bits differ: %x vs %x",
			math.Float64bits(got.Wirelength), math.Float64bits(ref.Wirelength))
	}
	if !reflect.DeepEqual(got.Registry, ref.Registry) {
		t.Error("registry state did not round-trip")
	}

	// Drive both roots through the stitch and compare the final trees.
	finish := func(root *ctree.Node) (*core.Subtree, *core.Registry) {
		reg, err := core.NewRegistryFromSnapshot(got.Registry)
		if err != nil {
			t.Fatal(err)
		}
		top, err := core.MergeRoots(u.Instance, []*ctree.Node{root}, u.Opt, reg)
		if err != nil {
			t.Fatal(err)
		}
		return top, reg
	}
	refTop, _ := finish(ref.Root)
	gotTop, _ := finish(got.Root)
	if refTop.Stats != gotTop.Stats {
		t.Errorf("stitch stats diverge: %+v vs %+v", gotTop.Stats, refTop.Stats)
	}
	refW := math.Float64bits(refTop.Root.Wirelength())
	gotW := math.Float64bits(gotTop.Root.Wirelength())
	if refW != gotW {
		t.Errorf("stitched wirelength bits differ: %x vs %x", gotW, refW)
	}
	if dr, dg := digestTree(t, refTop.Root, u.Instance), digestTree(t, gotTop.Root, u.Instance); dr != dg {
		t.Errorf("per-sink delay digests differ: %x vs %x", dg, dr)
	}
}

func TestDecodeRejectsVersionFlip(t *testing.T) {
	u := buildWork(t, KindBuild)
	data, err := u.Encode()
	if err != nil {
		t.Fatal(err)
	}
	// The version lives right after the 4-byte magic; flip it and reseal
	// (an honest version mismatch, not transit corruption).
	bad := append([]byte(nil), data[:len(data)-8]...)
	bad[4] ^= 0xFF
	w := &writer{b: bad}
	if _, err := DecodeWork(w.seal()); err == nil {
		t.Fatal("flipped version accepted")
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	u := buildWork(t, KindBuild)
	data, err := u.Encode()
	if err != nil {
		t.Fatal(err)
	}
	for _, off := range []int{7, len(data) / 2, len(data) - 9, len(data) - 1} {
		bad := append([]byte(nil), data...)
		bad[off] ^= 0x40
		if _, err := DecodeWork(bad); err == nil {
			t.Errorf("bit flip at %d accepted", off)
		}
	}
	if _, err := DecodeWork(data[:len(data)/3]); err == nil {
		t.Error("truncated message accepted")
	}
	if _, err := DecodeWork(nil); err == nil {
		t.Error("empty message accepted")
	}
}

func TestWorkCannotDecodeAsResult(t *testing.T) {
	u := buildWork(t, KindBuild)
	data, err := u.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeResult(data, u.Instance); err == nil {
		t.Fatal("work unit decoded as a result")
	}
}

func TestEncodeRejectsUnserializableOptions(t *testing.T) {
	u := buildWork(t, KindBuild)
	u.Opt.Order.Key = func(i, j int, d float64) float64 { return d }
	if _, err := u.Encode(); err == nil {
		t.Error("Order.Key closure encoded")
	}
	u = buildWork(t, KindBuild)
	u.Opt.Shards = 4
	if _, err := u.Encode(); err == nil {
		t.Error("nested Shards encoded")
	}
	u = buildWork(t, KindBuild)
	u.Opt.Pilot = true
	if _, err := u.Encode(); err == nil {
		t.Error("nested Pilot encoded")
	}
}

// FuzzDecodeWork asserts the decoder's no-crash contract on arbitrary
// bytes, and full round-trip fidelity on valid encodings.
func FuzzDecodeWork(f *testing.F) {
	u := &WorkUnit{}
	func() {
		in := bench.Intermingled(bench.Small(40, 3), 2, 5)
		reg, err := core.NewRegistry(in, core.Options{})
		if err != nil {
			f.Fatal(err)
		}
		u = &WorkUnit{Kind: KindBuild, Instance: in, SinkIDs: []int{0, 3, 9}, Registry: reg.Snapshot()}
	}()
	seed, err := u.Encode()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add(seed[:len(seed)-8])
	f.Add([]byte("ASTW"))
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := DecodeWork(data) // must never panic
		if err != nil {
			return
		}
		// Whatever decoded must re-encode and decode to the same thing.
		again, err := got.Encode()
		if err != nil {
			t.Fatalf("decoded unit fails to re-encode: %v", err)
		}
		got2, err := DecodeWork(again)
		if err != nil {
			t.Fatalf("re-encoded unit fails to decode: %v", err)
		}
		if !reflect.DeepEqual(got.Registry, got2.Registry) || !reflect.DeepEqual(got.SinkIDs, got2.SinkIDs) {
			t.Fatal("round-trip through re-encode diverged")
		}
	})
}

// FuzzDecodeResult asserts the result decoder's no-crash contract,
// including the iterative tree reconstruction and handle resolution.
func FuzzDecodeResult(f *testing.F) {
	in := bench.Intermingled(bench.Small(40, 3), 2, 5)
	reg, err := core.NewRegistry(in, core.Options{})
	if err != nil {
		f.Fatal(err)
	}
	u := &WorkUnit{Kind: KindBuild, Instance: in, Opt: core.Options{}, Registry: reg.Snapshot()}
	ref, err := Execute(u)
	if err != nil {
		f.Fatal(err)
	}
	seed, err := ref.Encode()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte("ASTR"))
	f.Fuzz(func(t *testing.T, data []byte) {
		br, err := DecodeResult(data, in) // must never panic
		if err != nil {
			return
		}
		if br.Root == nil {
			t.Fatal("decoded result with nil root")
		}
	})
}
